examples/coalition_connectivity.ml: Connectivity Core Generators Graph List Printf Random Refnet_graph
