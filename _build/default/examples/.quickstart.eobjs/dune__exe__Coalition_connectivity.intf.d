examples/coalition_connectivity.mli:
