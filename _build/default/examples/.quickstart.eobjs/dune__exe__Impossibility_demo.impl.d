examples/impossibility_demo.ml: Core Generators Graph List Printf Random Refnet_graph
