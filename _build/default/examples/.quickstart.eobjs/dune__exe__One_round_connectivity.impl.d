examples/one_round_connectivity.ml: Connectivity Core Degeneracy Generators Graph List Printf Random Refnet_graph
