examples/one_round_connectivity.mli:
