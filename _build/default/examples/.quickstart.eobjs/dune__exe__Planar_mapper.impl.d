examples/planar_mapper.ml: Core Generators Gio Graph List Printf Random Refnet_graph
