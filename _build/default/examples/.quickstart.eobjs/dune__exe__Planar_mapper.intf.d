examples/planar_mapper.mli:
