examples/quickstart.ml: Bipartite Connectivity Core Distance Generators Graph Printf Refnet_graph
