examples/quickstart.mli:
