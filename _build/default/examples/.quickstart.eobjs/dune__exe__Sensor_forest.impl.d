examples/sensor_forest.ml: Connectivity Core Generators Graph List Printf Random Refnet_graph String
