examples/sensor_forest.mli:
