(* Coalition connectivity — the conclusion's O(k log n) observation.

   Scenario: a federation of k datacenters, each internally aware of its
   own machines' link tables.  Machines still send individual
   O(k log n)-bit messages to an external auditor, but machines of one
   datacenter may pool their knowledge first.  The auditor must decide
   whether the federation-wide network is connected.

   Protocol: each datacenter owns the edges whose smaller endpoint it
   hosts, computes a spanning forest of them, and spreads the forest
   across its members' messages; the auditor unions the forests.

   Run with:  dune exec examples/coalition_connectivity.exe *)

open Refnet_graph

let audit name g ~parts =
  let n = Graph.order g in
  let partition = Core.Coalition.partition_by_ranges ~n ~parts in
  let verdict, t = Core.Coalition.run Core.Connectivity_parts.decide g ~parts:partition in
  let truth = Connectivity.is_connected g in
  Printf.printf "  %-28s k=%2d  verdict=%-5b truth=%-5b %s  (max %d bits/node, bound %d)\n" name
    parts verdict truth
    (if verdict = truth then "OK " else "BUG")
    t.Core.Simulator.max_bits
    (Core.Connectivity_parts.per_node_bound ~n ~parts)

let () =
  let rng = Random.State.make [| 99 |] in
  let n = 96 in

  print_endline "Federated connectivity audit (n = 96 machines):";
  let healthy = Generators.random_connected rng n 0.05 in
  List.iter (fun parts -> audit "healthy federation" healthy ~parts) [ 2; 4; 8 ];

  (* Sever one datacenter's uplinks: remove all edges leaving the first
     quarter of machines. *)
  let partitioned =
    Graph.of_edges n
      (List.filter (fun (u, v) -> (u <= n / 4) = (v <= n / 4)) (Graph.edges healthy))
  in
  List.iter (fun parts -> audit "severed uplink" partitioned ~parts) [ 2; 4; 8 ];

  (* Near-threshold random graphs: the verdict must track the truth on
     both sides. *)
  print_endline "\nNear the connectivity threshold (p ~ ln n / n):";
  let p = log (float_of_int n) /. float_of_int n in
  for trial = 1 to 6 do
    let g = Generators.gnp rng n p in
    audit (Printf.sprintf "G(96, ln n / n) trial %d" trial) g ~parts:4
  done;

  print_endline "\nBit budget as the federation fragments (same graph, more parts):";
  List.iter (fun parts -> audit "budget sweep" healthy ~parts) [ 1; 2; 3; 6; 12; 24 ]
