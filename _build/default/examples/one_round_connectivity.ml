(* The paper's main open question, from three directions.

   "The main open question is the existence of a one-round frugal
   protocol deciding if a graph is connected."  This example runs the
   three partial answers the library implements side by side:

   1. bounded-degeneracy detour — if the class is sparse, reconstruct
      the whole graph in one O(k^2 log n)-bit round and read
      connectivity off the reconstruction (Theorem 5 + referee
      post-processing);
   2. coalition protocol — O(k log n) bits/node deterministically, but
      in the strengthened model where the k parts pool their knowledge
      (the paper's conclusion);
   3. public-coin sketches — one round, no coalitions, O(log^3 n)
      bits/node, randomized with one-sided error (the AGM answer that
      appeared a year after the paper).

   Run with:  dune exec examples/one_round_connectivity.exe *)

open Refnet_graph

let () =
  let rng = Random.State.make [| 314159 |] in
  let n = 64 in
  let connected = Generators.random_connected rng n 0.06 in
  let disconnected =
    Graph.disjoint_union
      (Generators.random_connected rng 32 0.12)
      (Generators.random_connected rng 32 0.12)
  in

  let show name verdict truth bits note =
    Printf.printf "  %-34s verdict=%-5b truth=%-5b %s %6d bits/node  %s\n" name verdict truth
      (if verdict = truth then "OK " else "ERR")
      bits note
  in

  List.iter
    (fun (label, g) ->
      Printf.printf "\n%s (n = %d, m = %d):\n" label (Graph.order g) (Graph.size g);
      let truth = Connectivity.is_connected g in

      (* 1. Reconstruct-then-check, valid because the instance happens to
         be sparse. *)
      let k = max 1 (Degeneracy.degeneracy g) in
      let p1 = Core.Recognition.reconstruct_and_check ~k ~check:Connectivity.is_connected () in
      let out1, t1 = Core.Simulator.run p1 g in
      show
        (Printf.sprintf "reconstruct at k=%d + check" k)
        (out1 = Some true) truth t1.Core.Simulator.max_bits "(needs bounded degeneracy)";

      (* 2. Coalitions of pooled knowledge. *)
      let parts = 4 in
      let partition = Core.Coalition.partition_by_ranges ~n:(Graph.order g) ~parts in
      let out2, t2 = Core.Coalition.run Core.Connectivity_parts.decide g ~parts:partition in
      show
        (Printf.sprintf "coalition protocol (%d parts)" parts)
        out2 truth t2.Core.Simulator.max_bits "(needs pooled parts)";

      (* 3. Randomized sketches: plain one-round model, public coins. *)
      let out3, t3 = Core.Simulator.run (Core.Sketch_connectivity.protocol ~seed:2026 ()) g in
      show "public-coin sketches" out3 truth t3.Core.Simulator.max_bits
        "(randomized, one-sided)")
    [ ("Connected instance", connected); ("Disconnected instance", disconnected) ];

  Printf.printf
    "\nNo entry decides connectivity deterministically with O(log n)-bit messages\n\
     in the plain model — the paper conjectures none exists.  Sketch messages\n\
     grow polylogarithmically (%d bits at n=4096, %d at n=65536) and overtake\n\
     the n-bit trivial message near n = 65536.\n"
    (Core.Sketch_connectivity.message_bits ~n:4096 ())
    (Core.Sketch_connectivity.message_bits ~n:65536 ())
