(* Topology mapper for planar interconnects.

   Scenario: a network operator wants a full map of a deployed mesh whose
   topology is known to be planar (degeneracy at most 5) but whose exact
   wiring is unknown.  One frugal round suffices: each device sends the
   Algorithm 3 power-sum digest with k = 5 and the referee rebuilds the
   wiring, exports it as DOT/graph6, and audits structural properties.

   Run with:  dune exec examples/planar_mapper.exe *)

open Refnet_graph

let map_one name g ~k =
  let protocol = Core.Degeneracy_protocol.reconstruct ~k () in
  let out, t = Core.Simulator.run protocol g in
  match out with
  | Some h when Graph.equal g h ->
    Printf.printf "%-26s n=%4d m=%5d  k=%d  %4d bits/node (%.1f x log n)  [exact]\n" name
      (Graph.order g) (Graph.size g) k t.Core.Simulator.max_bits
      (Core.Simulator.frugality_ratio t)
  | Some _ -> Printf.printf "%-26s MISMATCH\n" name
  | None ->
    Printf.printf "%-26s n=%4d  k=%d  rejected (degeneracy above the planar budget)\n" name
      (Graph.order g) k

let () =
  let rng = Random.State.make [| 11; 22; 33 |] in
  print_endline "Planar topology mapping with the k = 5 (planar) budget:";
  map_one "ring (C64)" (Generators.cycle 64) ~k:5;
  map_one "8x8 mesh" (Generators.grid 8 8) ~k:5;
  map_one "8x8 torus" (Generators.torus 8 8) ~k:5;
  map_one "apollonian backbone" (Generators.random_apollonian rng 128) ~k:5;
  map_one "outerplanar ring-of-trees" (Generators.random_maximal_outerplanar rng 96) ~k:5;
  print_endline "\nNon-planar controls (the protocol refuses rather than guessing):";
  map_one "K8 crossbar" (Generators.complete 8) ~k:5;
  map_one "6-cube" (Generators.hypercube 6) ~k:5;

  (* Tighter budgets save bits when the class is known more precisely. *)
  print_endline "\nBudget tuning on the same 8x8 mesh (grids are 2-degenerate):";
  List.iter (fun k -> map_one (Printf.sprintf "8x8 mesh at k=%d" k) (Generators.grid 8 8) ~k)
    [ 2; 3; 5 ];

  (* Export the recovered map for external tooling. *)
  let g = Generators.random_apollonian rng 12 in
  match fst (Core.Simulator.run (Core.Degeneracy_protocol.reconstruct ~k:3 ()) g) with
  | Some h ->
    Printf.printf "\nRecovered 12-node backbone, graph6: %s\n" (Gio.to_graph6 h);
    print_endline "DOT export:";
    print_string (Gio.to_dot ~name:"backbone" h)
  | None -> print_endline "BUG: mapping failed"
