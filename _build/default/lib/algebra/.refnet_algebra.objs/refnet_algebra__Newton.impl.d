lib/algebra/newton.ml: Array Bigint List Poly Refnet_bigint
