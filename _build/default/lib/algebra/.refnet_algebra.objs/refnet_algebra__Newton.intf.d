lib/algebra/newton.mli: Bigint Poly Refnet_bigint
