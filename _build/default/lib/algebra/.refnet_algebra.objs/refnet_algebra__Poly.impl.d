lib/algebra/poly.ml: Array Bigint Format List Refnet_bigint
