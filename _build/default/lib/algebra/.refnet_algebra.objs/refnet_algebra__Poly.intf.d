lib/algebra/poly.mli: Bigint Format Refnet_bigint
