lib/algebra/power_sum.ml: Array Bigint Buffer Hashtbl List Nat Newton Poly Refnet_bigint Stdlib
