lib/algebra/power_sum.mli: Nat Refnet_bigint
