lib/algebra/vandermonde.ml: Array List Nat Refnet_bigint
