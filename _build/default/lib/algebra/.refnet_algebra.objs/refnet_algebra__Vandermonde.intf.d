lib/algebra/vandermonde.mli: Nat Refnet_bigint
