(** Newton's identities between power sums and elementary symmetric
    functions, over exact integers.

    For values [x_1 .. x_d], write [p_m = sum x_i^m] (power sums) and
    [e_m = sum of products of m distinct x_i] (elementary symmetric
    functions).  Newton's identities,

    {[ m * e_m = sum_{i=1..m} (-1)^(i-1) e_(m-i) * p_i ]}

    relate the two for [m <= d].  The divisions by [m] are exact because
    the [e_m] are integers — {!Refnet_bigint.Bigint.div_exact} enforces
    this as a runtime invariant.

    This is what lets the referee decode a power-sum message without the
    [O(n^k)] lookup table of the paper's Lemma 3: from [p_1..p_d] it
    recovers [e_1..e_d], forms the monic polynomial whose roots are the
    neighbour identifiers, and extracts the roots. *)

open Refnet_bigint

(** [elementary_of_power_sums p] maps [[p_1; ...; p_d]] to
    [[e_1; ...; e_d]].  The empty list maps to the empty list.
    @raise Invalid_argument if the input is not a valid power-sum sequence
    of integers (an inexact division is encountered). *)
val elementary_of_power_sums : Bigint.t list -> Bigint.t list

(** [power_sums_of_elementary e ~upto] maps [[e_1; ...; e_d]] to
    [[p_1; ...; p_upto]], taking [e_m = 0] for [m > d]. *)
val power_sums_of_elementary : Bigint.t list -> upto:int -> Bigint.t list

(** [power_sums values ~upto] computes [[p_1; ...; p_upto]] directly from
    the values; reference implementation used by tests and encoders. *)
val power_sums : Bigint.t list -> upto:int -> Bigint.t list

(** [elementary values] computes [[e_1; ...; e_d]] directly by expanding
    the product [(1 + x_1 t)...(1 + x_d t)]; reference implementation. *)
val elementary : Bigint.t list -> Bigint.t list

(** [polynomial_from_power_sums p] is the monic polynomial
    [x^d - e_1 x^(d-1) + e_2 x^(d-2) - ...] whose roots are exactly the
    [d] values underlying the power sums [p = [p_1; ...; p_d]]. *)
val polynomial_from_power_sums : Bigint.t list -> Poly.t
