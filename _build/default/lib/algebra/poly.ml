open Refnet_bigint

type t = Bigint.t array
(* Little-endian coefficients, canonical: last entry non-zero; zero is [||]. *)

let zero : t = [||]
let one : t = [| Bigint.one |]

let normalize (c : Bigint.t array) : t =
  let len = ref (Array.length c) in
  while !len > 0 && Bigint.is_zero c.(!len - 1) do
    decr len
  done;
  if !len = Array.length c then c else Array.sub c 0 !len

let of_coeffs c = normalize (Array.copy c)
let to_coeffs (p : t) = Array.copy p

let degree (p : t) = Array.length p - 1

let coeff (p : t) i = if i >= 0 && i < Array.length p then p.(i) else Bigint.zero

let is_zero (p : t) = Array.length p = 0

let equal (p : t) (q : t) =
  Array.length p = Array.length q
  &&
  let rec go i = i >= Array.length p || (Bigint.equal p.(i) q.(i) && go (i + 1)) in
  go 0

let constant c = normalize [| c |]

let monomial c i =
  if i < 0 then invalid_arg "Poly.monomial: negative exponent";
  if Bigint.is_zero c then zero
  else begin
    let r = Array.make (i + 1) Bigint.zero in
    r.(i) <- c;
    r
  end

let add (p : t) (q : t) : t =
  let n = max (Array.length p) (Array.length q) in
  normalize (Array.init n (fun i -> Bigint.add (coeff p i) (coeff q i)))

let neg (p : t) : t = Array.map Bigint.neg p

let sub p q = add p (neg q)

let mul (p : t) (q : t) : t =
  if is_zero p || is_zero q then zero
  else begin
    let r = Array.make (Array.length p + Array.length q - 1) Bigint.zero in
    Array.iteri
      (fun i pi ->
        if not (Bigint.is_zero pi) then
          Array.iteri (fun j qj -> r.(i + j) <- Bigint.add r.(i + j) (Bigint.mul pi qj)) q)
      p;
    normalize r
  end

let scale c (p : t) : t =
  if Bigint.is_zero c then zero else normalize (Array.map (Bigint.mul c) p)

let eval (p : t) x =
  let acc = ref Bigint.zero in
  for i = Array.length p - 1 downto 0 do
    acc := Bigint.add (Bigint.mul !acc x) p.(i)
  done;
  !acc

let derivative (p : t) : t =
  if Array.length p <= 1 then zero
  else normalize (Array.init (Array.length p - 1) (fun i -> Bigint.mul (Bigint.of_int (i + 1)) p.(i + 1)))

let from_roots roots =
  List.fold_left (fun acc r -> mul acc (of_coeffs [| Bigint.neg r; Bigint.one |])) one roots

let deflate (p : t) r =
  (* Synthetic division: p(x) = (x - r) q(x) when p(r) = 0. *)
  let d = degree p in
  if d < 1 then invalid_arg "Poly.deflate: degree too small";
  let q = Array.make d Bigint.zero in
  let carry = ref p.(d) in
  for i = d - 1 downto 0 do
    q.(i) <- !carry;
    carry := Bigint.add p.(i) (Bigint.mul r !carry)
  done;
  if not (Bigint.is_zero !carry) then invalid_arg "Poly.deflate: not a root";
  normalize q

let integer_roots_in p ~lo ~hi =
  let rec go p x acc =
    if x > hi || degree p < 1 then List.rev acc
    else begin
      let bx = Bigint.of_int x in
      if Bigint.is_zero (eval p bx) then go (deflate p bx) (x + 1) (x :: acc)
      else go p (x + 1) acc
    end
  in
  go p lo []

let pp fmt (p : t) =
  if is_zero p then Format.pp_print_string fmt "0"
  else begin
    let first = ref true in
    for i = Array.length p - 1 downto 0 do
      if not (Bigint.is_zero p.(i)) then begin
        if not !first then Format.pp_print_string fmt " + ";
        first := false;
        if i = 0 then Bigint.pp fmt p.(i)
        else if Bigint.equal p.(i) Bigint.one then Format.fprintf fmt "x^%d" i
        else Format.fprintf fmt "%a*x^%d" Bigint.pp p.(i) i
      end
    done
  end
