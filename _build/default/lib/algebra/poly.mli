(** Dense univariate polynomials with {!Refnet_bigint.Bigint} coefficients.

    Coefficient of [x^i] is stored at index [i]; the representation is
    canonical (no zero leading coefficient).  These polynomials carry the
    neighbourhood-decoding step of the degeneracy protocol: the decoder
    rebuilds the monic polynomial whose roots are the neighbour
    identifiers. *)

open Refnet_bigint

type t

(** The zero polynomial (degree [-1] by convention). *)
val zero : t

val one : t

(** [of_coeffs c] builds a polynomial from little-endian coefficients. *)
val of_coeffs : Bigint.t array -> t

(** [to_coeffs p] is the canonical little-endian coefficient array. *)
val to_coeffs : t -> Bigint.t array

(** [degree p] is the degree, [-1] for the zero polynomial. *)
val degree : t -> int

(** [coeff p i] is the coefficient of [x^i] ([zero] beyond the degree). *)
val coeff : t -> int -> Bigint.t

val is_zero : t -> bool
val equal : t -> t -> bool

(** [constant c] is the degree-0 (or zero) polynomial [c]. *)
val constant : Bigint.t -> t

(** [monomial c i] is [c * x^i]. *)
val monomial : Bigint.t -> int -> t

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val neg : t -> t

(** [scale c p] multiplies every coefficient by [c]. *)
val scale : Bigint.t -> t -> t

(** [eval p x] is [p(x)] by Horner's rule. *)
val eval : t -> Bigint.t -> Bigint.t

(** [derivative p] is the formal derivative. *)
val derivative : t -> t

(** [from_roots roots] is the monic polynomial [prod (x - r)]. *)
val from_roots : Bigint.t list -> t

(** [deflate p r] divides [p] by [(x - r)].
    @raise Invalid_argument if [r] is not a root of [p]. *)
val deflate : t -> Bigint.t -> t

(** [integer_roots_in p ~lo ~hi] is the increasing list of integer roots of
    [p] in the interval [lo..hi], each listed once, found by trial
    evaluation with deflation.  Intended for root sets known to be simple,
    as produced by {!from_roots} over distinct values. *)
val integer_roots_in : t -> lo:int -> hi:int -> int list

val pp : Format.formatter -> t -> unit
