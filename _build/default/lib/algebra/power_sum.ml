open Refnet_bigint

type encoding = Nat.t array

let check_ids ids k =
  let sorted = List.sort_uniq Stdlib.compare ids in
  if List.length sorted <> List.length ids then invalid_arg "Power_sum.encode: repeated id";
  List.iter (fun i -> if i <= 0 then invalid_arg "Power_sum.encode: non-positive id") ids;
  if List.length ids > k then invalid_arg "Power_sum.encode: more ids than k"

let encode ~k ids =
  if k < 0 then invalid_arg "Power_sum.encode: negative k";
  check_ids ids k;
  Array.init k (fun p ->
      List.fold_left (fun acc i -> Nat.add acc (Nat.pow (Nat.of_int i) (p + 1))) Nat.zero ids)

let subtract enc ~id ~upto =
  if id <= 0 then invalid_arg "Power_sum.subtract: non-positive id";
  if upto > Array.length enc then invalid_arg "Power_sum.subtract: upto exceeds encoding";
  Array.mapi
    (fun p b ->
      if p < upto then begin
        let ip = Nat.pow (Nat.of_int id) (p + 1) in
        if Nat.compare b ip < 0 then invalid_arg "Power_sum.subtract: id not a member";
        Nat.sub b ip
      end
      else b)
    enc

let decode ~n ~deg enc =
  if deg < 0 || deg > Array.length enc then invalid_arg "Power_sum.decode: bad degree";
  if deg = 0 then Some []
  else begin
    let sums = List.init deg (fun p -> Bigint.of_nat enc.(p)) in
    match Newton.polynomial_from_power_sums sums with
    | poly ->
      let roots = Poly.integer_roots_in poly ~lo:1 ~hi:n in
      if List.length roots = deg then begin
        (* Root extraction can in principle return spurious factorizations
           for malformed input; re-encode to confirm. *)
        let check = encode ~k:deg roots in
        let matches = ref true in
        Array.iteri (fun p b -> if not (Nat.equal b enc.(p)) then matches := false) check;
        if !matches then Some roots else None
      end
      else None
    | exception Invalid_argument _ -> None
  end

module Table = struct
  module Key = struct
    type t = string
    let of_encoding (enc : encoding) ~deg =
      let buf = Buffer.create 32 in
      for p = 0 to deg - 1 do
        Buffer.add_string buf (Nat.to_string enc.(p));
        Buffer.add_char buf ','
      done;
      Buffer.contents buf
  end

  type t = { n : int; k : int; table : (Key.t, int list) Hashtbl.t }

  let build ~n ~k =
    if n < 0 || k < 0 then invalid_arg "Power_sum.Table.build: negative parameter";
    let table = Hashtbl.create 1024 in
    (* Enumerate subsets of {1..n} of size exactly d for d = 0..k. *)
    let rec subsets first remaining acc =
      if remaining = 0 then begin
        let ids = List.rev acc in
        let enc = encode ~k:(List.length ids) ids in
        Hashtbl.replace table (Key.of_encoding enc ~deg:(List.length ids)) ids
      end
      else
        for i = first to n - remaining + 1 do
          subsets (i + 1) (remaining - 1) (i :: acc)
        done
    in
    for d = 0 to min k n do
      subsets 1 d []
    done;
    { n; k; table }

  let entries t = Hashtbl.length t.table

  let lookup t enc ~deg =
    if deg < 0 || deg > t.k then None
    else Hashtbl.find_opt t.table (Key.of_encoding enc ~deg)
end
