open Refnet_bigint

type t = { k : int; n : int; rows : Nat.t array array }
(* rows.(p - 1).(i - 1) = i^p *)

let make ~k ~n =
  if k < 1 || n < 1 then invalid_arg "Vandermonde.make: parameters must be positive";
  let rows =
    Array.init k (fun p -> Array.init n (fun i -> Nat.pow (Nat.of_int (i + 1)) (p + 1)))
  in
  { k; n; rows }

let k a = a.k
let n a = a.n

let entry a ~p ~i =
  if p < 1 || p > a.k || i < 1 || i > a.n then invalid_arg "Vandermonde.entry: out of range";
  a.rows.(p - 1).(i - 1)

let apply a positions =
  List.iter
    (fun i -> if i < 1 || i > a.n then invalid_arg "Vandermonde.apply: position out of range")
    positions;
  Array.init a.k (fun p ->
      List.fold_left (fun acc i -> Nat.add acc (a.rows.(p).(i - 1))) Nat.zero positions)

let max_entry a = a.rows.(a.k - 1).(a.n - 1)
