(** The matrix [A(k, n)] of the paper's Definition 3: [A_{p,i} = i^p] for
    [i = 1..n] and [p = 1..k].

    {!Power_sum.encode} computes the product [A . x] without materializing
    the matrix; this module materializes it so tests can cross-check the
    two, and so documentation-level experiments can inspect the entries
    (they bound the message size in Lemma 2: every entry is at most
    [n^k]). *)

open Refnet_bigint

type t

(** [make ~k ~n] builds [A(k, n)].  Memory is [O(k n)] bigints. *)
val make : k:int -> n:int -> t

val k : t -> int
val n : t -> int

(** [entry a ~p ~i] is [i^p], for [1 <= p <= k] and [1 <= i <= n].
    @raise Invalid_argument out of range. *)
val entry : t -> p:int -> i:int -> Nat.t

(** [apply a x] is the product [A . x] for an incidence vector [x] of
    length [n] over [{0,1}], given as the increasing list of set
    positions (1-based). *)
val apply : t -> int list -> Nat.t array

(** [max_entry a] is [n^k], the largest entry, governing Lemma 2's
    per-coordinate bound of [(k+1) log n] bits. *)
val max_entry : t -> Nat.t
