lib/bigint/bigint.ml: Format Hashtbl Nat Stdlib String
