lib/bigint/nat.ml: Array Buffer Char Format Hashtbl Printf Stdlib String
