(** Arbitrary-precision signed integers built on {!Nat}.

    Needed by the Newton-identities decoder, whose intermediate elementary
    symmetric computations alternate signs even though inputs and outputs
    are non-negative. *)

type t

val zero : t
val one : t
val minus_one : t

val of_int : int -> t

(** [to_int n] converts to a native integer.
    @raise Failure on overflow. *)
val to_int : t -> int

val to_int_opt : t -> int option

(** [of_nat n] embeds a natural number. *)
val of_nat : Nat.t -> t

(** [to_nat n] is the magnitude of a non-negative value.
    @raise Invalid_argument if [n < 0]. *)
val to_nat : t -> Nat.t

(** [sign n] is [-1], [0] or [1]. *)
val sign : t -> int

val neg : t -> t
val abs : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t

(** [divmod a b] is euclidean-style division truncated toward zero, like
    OCaml's native [(/)] and [mod]: [a = q*b + r] with [|r| < |b|] and [r]
    carrying the sign of [a].
    @raise Division_by_zero if [b] is zero. *)
val divmod : t -> t -> t * t

val div : t -> t -> t
val rem : t -> t -> t

(** [div_exact a b] is [a / b] when [b] divides [a].
    @raise Invalid_argument when the division has a remainder; used by the
    Newton decoder where divisibility is a correctness invariant. *)
val div_exact : t -> t -> t

(** [pow base e] is [base{^e}] for [e >= 0]. *)
val pow : t -> int -> t

val equal : t -> t -> bool
val compare : t -> t -> int
val is_zero : t -> bool

val of_string : string -> t
val to_string : t -> string
val pp : Format.formatter -> t -> unit
val hash : t -> int
