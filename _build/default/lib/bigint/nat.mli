(** Arbitrary-precision natural numbers.

    Values are immutable.  This module exists because the degeneracy
    protocol's power sums reach [n^(k+1)], which overflows native 63-bit
    integers for realistic [n] and [k], and the container provides no
    bignum package.  The representation is a little-endian array of
    base-2{^30} digits with no trailing zero digit. *)

type t

val zero : t
val one : t

(** [of_int v] converts a non-negative native integer.
    @raise Invalid_argument if [v < 0]. *)
val of_int : int -> t

(** [to_int n] converts back to a native integer.
    @raise Failure if [n] exceeds [max_int]. *)
val to_int : t -> int

(** [to_int_opt n] is [Some v] when [n] fits a native integer. *)
val to_int_opt : t -> int option

val is_zero : t -> bool
val equal : t -> t -> bool

(** [compare a b] is the numeric order. *)
val compare : t -> t -> int

val add : t -> t -> t

(** [sub a b] is [a - b].  @raise Invalid_argument if [a < b]. *)
val sub : t -> t -> t

val mul : t -> t -> t

(** [divmod a b] is [(a / b, a mod b)] with euclidean semantics.
    @raise Division_by_zero if [b] is zero. *)
val divmod : t -> t -> t * t

val div : t -> t -> t
val rem : t -> t -> t

(** [pow base e] is [base{^e}].  [pow zero 0] is [one]. *)
val pow : t -> int -> t

(** [shift_left n k] is [n * 2{^k}]. *)
val shift_left : t -> int -> t

(** [shift_right n k] is [n / 2{^k}]. *)
val shift_right : t -> int -> t

(** [num_bits n] is [0] for zero and [floor(log2 n) + 1] otherwise. *)
val num_bits : t -> int

(** [of_string s] parses a decimal string.
    @raise Invalid_argument on the empty string or non-digit characters. *)
val of_string : string -> t

(** [to_string n] is the decimal rendering. *)
val to_string : t -> string

val pp : Format.formatter -> t -> unit

(** [hash n] is a structural hash compatible with [equal]. *)
val hash : t -> int

(** Smallest digits first; exposed for tests and for bit-exact message
    serialization. *)
val to_digits : t -> int array

(** [of_digits d] builds a value from base-2{^30} digits, normalizing
    trailing zeros.  @raise Invalid_argument if a digit is out of range. *)
val of_digits : int array -> t
