lib/bits/bit_reader.ml: Bitvec
