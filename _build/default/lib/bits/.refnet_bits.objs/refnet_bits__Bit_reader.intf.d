lib/bits/bit_reader.mli: Bitvec
