lib/bits/bit_writer.ml: Bitvec Bytes Char
