lib/bits/bit_writer.mli: Bitvec
