lib/bits/bitvec.ml: Array Bytes Char Format List Stdlib String
