lib/bits/bitvec.mli: Format
