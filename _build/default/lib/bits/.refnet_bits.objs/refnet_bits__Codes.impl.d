lib/bits/codes.ml: Bit_reader Bit_writer
