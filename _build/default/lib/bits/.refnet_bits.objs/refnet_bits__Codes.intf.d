lib/bits/codes.mli: Bit_reader Bit_writer
