type t = { bits : Bitvec.t; mutable pos : int }

exception Exhausted

let of_bitvec v = { bits = v; pos = 0 }

let remaining r = Bitvec.length r.bits - r.pos

let position r = r.pos

let read_bit r =
  if r.pos >= Bitvec.length r.bits then raise Exhausted;
  let b = Bitvec.get r.bits r.pos in
  r.pos <- r.pos + 1;
  b

let read_bits r ~width =
  if width < 0 || width > 62 then invalid_arg "Bit_reader.read_bits: bad width";
  if remaining r < width then raise Exhausted;
  let acc = ref 0 in
  for _ = 1 to width do
    acc := (!acc lsl 1) lor (if read_bit r then 1 else 0)
  done;
  !acc

let read_bitvec r ~len =
  if len < 0 then invalid_arg "Bit_reader.read_bitvec: negative length";
  if remaining r < len then raise Exhausted;
  let v = Bitvec.create len in
  for i = 0 to len - 1 do
    if read_bit r then Bitvec.set v i
  done;
  v
