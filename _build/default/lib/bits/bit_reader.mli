(** Sequential reader over a bit vector produced by {!Bit_writer}. *)

type t

exception Exhausted
(** Raised when reading past the end of the stream. *)

(** [of_bitvec v] reads [v] from bit 0. *)
val of_bitvec : Bitvec.t -> t

(** [remaining r] is the number of unread bits. *)
val remaining : t -> int

(** [position r] is the number of bits consumed so far. *)
val position : t -> int

(** [read_bit r] consumes one bit.  @raise Exhausted at end of stream. *)
val read_bit : t -> bool

(** [read_bits r ~width] consumes [width] bits written most-significant
    first and returns their value.
    @raise Invalid_argument if [width < 0] or [width > 62].
    @raise Exhausted if fewer than [width] bits remain. *)
val read_bits : t -> width:int -> int

(** [read_bitvec r ~len] consumes [len] bits into a fresh vector. *)
val read_bitvec : t -> len:int -> Bitvec.t
