type t = { mutable buf : Bytes.t; mutable len : int }

let create () = { buf = Bytes.make 16 '\000'; len = 0 }

let length w = w.len

let ensure w extra =
  let needed = (w.len + extra + 7) / 8 in
  if needed > Bytes.length w.buf then begin
    let cap = max needed (2 * Bytes.length w.buf) in
    let buf = Bytes.make cap '\000' in
    Bytes.blit w.buf 0 buf 0 (Bytes.length w.buf);
    w.buf <- buf
  end

let add_bit w b =
  ensure w 1;
  if b then begin
    let i = w.len in
    Bytes.set w.buf (i / 8) (Char.chr (Char.code (Bytes.get w.buf (i / 8)) lor (1 lsl (i mod 8))))
  end;
  w.len <- w.len + 1

let add_bits w ~value ~width =
  if width < 0 || width > 62 then invalid_arg "Bit_writer.add_bits: bad width";
  if value < 0 then invalid_arg "Bit_writer.add_bits: negative value";
  if width < 62 && value lsr width <> 0 then
    invalid_arg "Bit_writer.add_bits: value does not fit";
  for i = width - 1 downto 0 do
    add_bit w (value land (1 lsl i) <> 0)
  done

let add_bitvec w v =
  for i = 0 to Bitvec.length v - 1 do
    add_bit w (Bitvec.get v i)
  done

let get_bit w i = Char.code (Bytes.get w.buf (i / 8)) land (1 lsl (i mod 8)) <> 0

let append w w' =
  ensure w w'.len;
  for i = 0 to w'.len - 1 do
    add_bit w (get_bit w' i)
  done

let contents w =
  let v = Bitvec.create w.len in
  for i = 0 to w.len - 1 do
    if get_bit w i then Bitvec.set v i
  done;
  v
