(** Append-only bit stream writer.

    Messages in the referee model are genuine bit strings; the writer is
    how local functions produce them while the simulator charges their
    exact length.  Bits are appended most-significant first within each
    value, and the stream is read back in the same order by
    {!Bit_reader}. *)

type t

(** [create ()] is an empty stream. *)
val create : unit -> t

(** [length w] is the number of bits written so far. *)
val length : t -> int

(** [add_bit w b] appends one bit. *)
val add_bit : t -> bool -> unit

(** [add_bits w ~value ~width] appends the [width] low-order bits of
    [value], most significant first.
    @raise Invalid_argument if [width < 0], [width > 62], [value < 0], or
    [value] does not fit in [width] bits. *)
val add_bits : t -> value:int -> width:int -> unit

(** [add_bitvec w v] appends the bits of [v] in index order. *)
val add_bitvec : t -> Bitvec.t -> unit

(** [append w w'] appends the whole contents of [w'] to [w]. *)
val append : t -> t -> unit

(** [contents w] freezes the stream into a bit vector of length
    [length w].  The writer remains usable. *)
val contents : t -> Bitvec.t
