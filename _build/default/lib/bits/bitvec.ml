type t = { len : int; words : Bytes.t }

let bits_per_word = 8

let word_count n = (n + bits_per_word - 1) / bits_per_word

let create n =
  if n < 0 then invalid_arg "Bitvec.create: negative length";
  { len = n; words = Bytes.make (word_count n) '\000' }

let length v = v.len

let check v i name =
  if i < 0 || i >= v.len then invalid_arg ("Bitvec." ^ name ^ ": index out of bounds")

let get v i =
  check v i "get";
  Char.code (Bytes.get v.words (i / 8)) land (1 lsl (i mod 8)) <> 0

let set v i =
  check v i "set";
  let w = i / 8 in
  Bytes.set v.words w (Char.chr (Char.code (Bytes.get v.words w) lor (1 lsl (i mod 8))))

let clear v i =
  check v i "clear";
  let w = i / 8 in
  Bytes.set v.words w (Char.chr (Char.code (Bytes.get v.words w) land lnot (1 lsl (i mod 8)) land 0xff))

let assign v i b = if b then set v i else clear v i

let copy v = { len = v.len; words = Bytes.copy v.words }

(* Number of set bits of a byte, by nibble table. *)
let nibble_pop = [| 0; 1; 1; 2; 1; 2; 2; 3; 1; 2; 2; 3; 2; 3; 3; 4 |]

let byte_pop c = nibble_pop.(c land 0xf) + nibble_pop.(c lsr 4)

let popcount v =
  let acc = ref 0 in
  for w = 0 to Bytes.length v.words - 1 do
    acc := !acc + byte_pop (Char.code (Bytes.get v.words w))
  done;
  !acc

let equal u v = u.len = v.len && Bytes.equal u.words v.words

let compare u v =
  let c = Stdlib.compare u.len v.len in
  if c <> 0 then c else Bytes.compare u.words v.words

let iter_set v f =
  for w = 0 to Bytes.length v.words - 1 do
    let c = Char.code (Bytes.get v.words w) in
    if c <> 0 then
      for b = 0 to 7 do
        if c land (1 lsl b) <> 0 then f ((w * 8) + b)
      done
  done

let fold_set v init f =
  let acc = ref init in
  iter_set v (fun i -> acc := f !acc i);
  !acc

let to_list v = List.rev (fold_set v [] (fun acc i -> i :: acc))

let of_list n l =
  let v = create n in
  List.iter (fun i -> set v i) l;
  v

let same_length u v name =
  if u.len <> v.len then invalid_arg ("Bitvec." ^ name ^ ": length mismatch")

let map2 name op u v =
  same_length u v name;
  let r = create u.len in
  for w = 0 to Bytes.length u.words - 1 do
    let c = op (Char.code (Bytes.get u.words w)) (Char.code (Bytes.get v.words w)) in
    Bytes.set r.words w (Char.chr (c land 0xff))
  done;
  r

let union u v = map2 "union" ( lor ) u v
let inter u v = map2 "inter" ( land ) u v
let diff u v = map2 "diff" (fun a b -> a land lnot b) u v

let complement v =
  let r = create v.len in
  for w = 0 to Bytes.length v.words - 1 do
    Bytes.set r.words w (Char.chr (lnot (Char.code (Bytes.get v.words w)) land 0xff))
  done;
  (* Trailing bits beyond [len] must stay clear so that [equal] and
     [popcount] remain meaningful. *)
  let extra = (word_count v.len * 8) - v.len in
  if extra > 0 && v.len > 0 then begin
    let w = Bytes.length r.words - 1 in
    let mask = (1 lsl (8 - extra)) - 1 in
    Bytes.set r.words w (Char.chr (Char.code (Bytes.get r.words w) land mask))
  end;
  r

let is_empty v =
  let rec go w = w >= Bytes.length v.words || (Bytes.get v.words w = '\000' && go (w + 1)) in
  go 0

let subset u v =
  same_length u v "subset";
  let rec go w =
    w >= Bytes.length u.words
    ||
    let a = Char.code (Bytes.get u.words w) and b = Char.code (Bytes.get v.words w) in
    a land lnot b = 0 && go (w + 1)
  in
  go 0

let to_string v = String.init v.len (fun i -> if get v i then '1' else '0')

let pp fmt v = Format.pp_print_string fmt (to_string v)
