(** Packed bit vectors.

    A [Bitvec.t] is a fixed-length vector of bits indexed from [0] to
    [length - 1].  In this library bit vectors mainly represent incidence
    vectors of vertex sets: bit [i - 1] is set when vertex [i] belongs to
    the set (vertices are numbered from 1, as in the paper).  The structure
    is mutable; all mutating operations are in-place. *)

type t

(** [create n] is a vector of [n] bits, all clear.
    @raise Invalid_argument if [n < 0]. *)
val create : int -> t

(** [length v] is the number of bits of [v]. *)
val length : t -> int

(** [get v i] is bit [i].
    @raise Invalid_argument if [i] is out of bounds. *)
val get : t -> int -> bool

(** [set v i] sets bit [i]. *)
val set : t -> int -> unit

(** [clear v i] clears bit [i]. *)
val clear : t -> int -> unit

(** [assign v i b] sets bit [i] to [b]. *)
val assign : t -> int -> bool -> unit

(** [copy v] is a fresh vector equal to [v]. *)
val copy : t -> t

(** [popcount v] is the number of set bits. *)
val popcount : t -> int

(** [equal u v] is true when [u] and [v] have the same length and the same
    bits. *)
val equal : t -> t -> bool

(** [compare] is a total order compatible with [equal]. *)
val compare : t -> t -> int

(** [iter_set v f] applies [f] to the index of every set bit, in
    increasing order. *)
val iter_set : t -> (int -> unit) -> unit

(** [fold_set v init f] folds [f] over the indices of set bits in
    increasing order. *)
val fold_set : t -> 'a -> ('a -> int -> 'a) -> 'a

(** [to_list v] is the increasing list of indices of set bits. *)
val to_list : t -> int list

(** [of_list n l] is the [n]-bit vector whose set bits are exactly the
    elements of [l].
    @raise Invalid_argument if an element is out of bounds. *)
val of_list : int -> int list -> t

(** [union u v] is the bitwise or of [u] and [v].
    @raise Invalid_argument on length mismatch. *)
val union : t -> t -> t

(** [inter u v] is the bitwise and of [u] and [v]. *)
val inter : t -> t -> t

(** [diff u v] has the bits of [u] that are not in [v]. *)
val diff : t -> t -> t

(** [complement v] flips every bit of [v]. *)
val complement : t -> t

(** [is_empty v] is true when no bit is set. *)
val is_empty : t -> bool

(** [subset u v] is true when every set bit of [u] is set in [v]. *)
val subset : t -> t -> bool

(** [pp] prints the vector as a ['0'/'1'] string, bit 0 leftmost. *)
val pp : Format.formatter -> t -> unit

(** [to_string v] is the ['0'/'1'] rendering of [v]. *)
val to_string : t -> string
