let bits_needed v =
  if v < 0 then invalid_arg "Codes.bits_needed: negative";
  let rec go acc v = if v = 0 then acc else go (acc + 1) (v lsr 1) in
  go 0 v

let id_width n = max 1 (bits_needed n)

let write_fixed w ~width v = Bit_writer.add_bits w ~value:v ~width

let read_fixed r ~width = Bit_reader.read_bits r ~width

let write_unary w v =
  if v < 0 then invalid_arg "Codes.write_unary: negative";
  for _ = 1 to v do
    Bit_writer.add_bit w true
  done;
  Bit_writer.add_bit w false

let read_unary r =
  let rec go acc = if Bit_reader.read_bit r then go (acc + 1) else acc in
  go 0

let write_gamma w v =
  if v < 1 then invalid_arg "Codes.write_gamma: value < 1";
  let width = bits_needed v - 1 in
  write_unary w width;
  Bit_writer.add_bits w ~value:(v - (1 lsl width)) ~width

let read_gamma r =
  let width = read_unary r in
  (1 lsl width) lor Bit_reader.read_bits r ~width

let write_delta w v =
  if v < 1 then invalid_arg "Codes.write_delta: value < 1";
  let width = bits_needed v - 1 in
  write_gamma w (width + 1);
  Bit_writer.add_bits w ~value:(v - (1 lsl width)) ~width

let read_delta r =
  let width = read_gamma r - 1 in
  (1 lsl width) lor Bit_reader.read_bits r ~width

let write_nonneg w v =
  if v < 0 then invalid_arg "Codes.write_nonneg: negative";
  write_gamma w (v + 1)

let read_nonneg r = read_gamma r - 1
