(** Integer codes over bit streams.

    Every encoder has a matching decoder; round-tripping is tested by
    property tests.  All encoders write to a {!Bit_writer} and all
    decoders read from a {!Bit_reader}, so code lengths are charged to
    message sizes automatically.

    Width conventions follow the paper: identifiers in a graph of [n]
    nodes are written fixed-width on [id_width n] = ceil(log2 (n + 1))
    bits, so that any identifier in [0..n] fits. *)

(** [bits_needed v] is the number of bits of the binary representation of
    [v]: [0] for [0], and [floor(log2 v) + 1] otherwise.
    @raise Invalid_argument if [v < 0]. *)
val bits_needed : int -> int

(** [id_width n] is the fixed width used for identifiers in [0..n]. *)
val id_width : int -> int

(** [write_fixed w ~width v] writes [v] on exactly [width] bits. *)
val write_fixed : Bit_writer.t -> width:int -> int -> unit

(** [read_fixed r ~width] reads a fixed-width value. *)
val read_fixed : Bit_reader.t -> width:int -> int

(** [write_unary w v] writes [v] as [v] one-bits followed by a zero. *)
val write_unary : Bit_writer.t -> int -> unit

(** [read_unary r] decodes a unary value. *)
val read_unary : Bit_reader.t -> int

(** [write_gamma w v] writes [v >= 1] in Elias gamma code
    (2 floor(log2 v) + 1 bits).
    @raise Invalid_argument if [v < 1]. *)
val write_gamma : Bit_writer.t -> int -> unit

(** [read_gamma r] decodes an Elias gamma value. *)
val read_gamma : Bit_reader.t -> int

(** [write_delta w v] writes [v >= 1] in Elias delta code
    (log v + O(log log v) bits). *)
val write_delta : Bit_writer.t -> int -> unit

(** [read_delta r] decodes an Elias delta value. *)
val read_delta : Bit_reader.t -> int

(** [write_nonneg w v] writes an arbitrary [v >= 0] self-delimiting, as
    the gamma code of [v + 1]. *)
val write_nonneg : Bit_writer.t -> int -> unit

(** [read_nonneg r] decodes a value written by {!write_nonneg}. *)
val read_nonneg : Bit_reader.t -> int
