lib/core/bipartite_reduction.ml: Array Bipartite Bounded_degree Graph List Message Protocol Reduction Refnet_bits Refnet_graph
