lib/core/bipartite_reduction.mli: Protocol Refnet_graph
