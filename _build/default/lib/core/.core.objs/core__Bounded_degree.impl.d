lib/core/bounded_degree.ml: Array Bit_reader Bit_writer Bitvec Bounds Codes Graph List Message Printf Protocol Refnet_bits Refnet_graph
