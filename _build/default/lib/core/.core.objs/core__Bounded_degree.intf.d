lib/core/bounded_degree.mli: Protocol Refnet_graph
