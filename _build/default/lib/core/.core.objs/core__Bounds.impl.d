lib/core/bounds.ml:
