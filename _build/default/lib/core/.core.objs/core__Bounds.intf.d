lib/core/bounds.mli:
