lib/core/coalition.ml: Array Graph List Message Refnet_graph Simulator Stdlib
