lib/core/coalition.mli: Message Refnet_graph Simulator
