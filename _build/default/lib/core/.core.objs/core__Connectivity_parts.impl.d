lib/core/connectivity_parts.ml: Array Bit_reader Bit_writer Bounds Coalition Codes Connectivity Graph Hashtbl List Message Refnet_bits Refnet_graph Spanning
