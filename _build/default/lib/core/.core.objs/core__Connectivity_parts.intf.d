lib/core/connectivity_parts.mli: Coalition Message
