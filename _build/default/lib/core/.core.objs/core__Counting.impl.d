lib/core/counting.ml: Bounds Enumerate Float Refnet_graph
