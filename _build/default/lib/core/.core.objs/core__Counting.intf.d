lib/core/counting.mli:
