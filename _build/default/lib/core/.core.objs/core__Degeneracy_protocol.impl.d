lib/core/degeneracy_protocol.ml: Array Bit_reader Bit_writer Bounds Codes Graph List Message Nat Nat_codec Power_sum Printf Protocol Queue Refnet_algebra Refnet_bigint Refnet_bits Refnet_graph
