lib/core/degeneracy_protocol.mli: Power_sum Protocol Refnet_algebra Refnet_graph
