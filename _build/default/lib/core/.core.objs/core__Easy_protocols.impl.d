lib/core/easy_protocols.ml: Array Bit_writer Bounds Codes List Message Protocol Refnet_bits Stdlib
