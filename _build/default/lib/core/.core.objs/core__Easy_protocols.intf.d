lib/core/easy_protocols.mli: Protocol
