lib/core/fooling.ml: Bit_reader Bitvec Bounds Buffer Enumerate Graph Hashtbl Message Printf Protocol Refnet_bits Refnet_graph
