lib/core/fooling.mli: Graph Message Protocol Refnet_graph
