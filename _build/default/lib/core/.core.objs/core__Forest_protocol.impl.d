lib/core/forest_protocol.ml: Array Bit_reader Bit_writer Bounds Codes Graph List Message Option Protocol Queue Refnet_bits Refnet_graph
