lib/core/forest_protocol.mli: Protocol Refnet_graph
