lib/core/gadgets.ml: Graph List Refnet_graph
