lib/core/gadgets.mli: Graph Refnet_graph
