lib/core/generalized_degeneracy.ml: Array Bit_reader Bit_writer Bounds Codes Degeneracy_protocol Graph List Message Nat_codec Option Power_sum Printf Protocol Refnet_algebra Refnet_bits Refnet_graph
