lib/core/message.ml: Bit_reader Bit_writer Bitvec List Refnet_bits
