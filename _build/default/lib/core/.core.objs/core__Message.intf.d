lib/core/message.mli: Bit_reader Bit_writer Bitvec Format Refnet_bits
