lib/core/multi_round.ml: Array Bit_writer Bounds Codes Degeneracy_protocol Graph List Message Protocol Refnet_bits Refnet_graph Stdlib
