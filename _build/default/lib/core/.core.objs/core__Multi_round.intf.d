lib/core/multi_round.mli: Message Protocol Refnet_graph
