lib/core/nat_codec.ml: Array Bit_reader Bit_writer Nat Refnet_bigint Refnet_bits
