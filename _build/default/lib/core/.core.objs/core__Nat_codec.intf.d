lib/core/nat_codec.mli: Bit_reader Bit_writer Nat Refnet_bigint Refnet_bits
