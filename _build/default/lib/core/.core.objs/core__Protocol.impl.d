lib/core/protocol.ml: Message
