lib/core/protocol.mli: Message
