lib/core/protocol_search.ml: Array Bit_writer Codes Enumerate Graph List Message Printf Protocol Refnet_bits Refnet_graph
