lib/core/protocol_search.mli: Protocol Refnet_graph
