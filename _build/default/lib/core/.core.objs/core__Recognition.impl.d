lib/core/recognition.ml: Degeneracy_protocol Forest_protocol Option Printf Protocol
