lib/core/recognition.mli: Degeneracy_protocol Protocol Refnet_graph
