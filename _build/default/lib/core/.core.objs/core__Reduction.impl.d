lib/core/reduction.ml: Array Bit_reader Bit_writer Bounded_degree Codes Cycles Distance Gadgets Graph List Message Protocol Refnet_bits Refnet_graph
