lib/core/reduction.mli: Graph Message Protocol Refnet_bits Refnet_graph
