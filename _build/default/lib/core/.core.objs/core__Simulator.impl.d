lib/core/simulator.ml: Array Format Graph Message Protocol Random Refnet_graph
