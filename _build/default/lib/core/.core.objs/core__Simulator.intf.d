lib/core/simulator.mli: Format Message Protocol Random Refnet_graph
