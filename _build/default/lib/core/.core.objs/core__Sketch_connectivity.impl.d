lib/core/sketch_connectivity.ml: Array Bit_writer Hashtbl L0_sampler List Message Printf Protocol Random Refnet_bits Refnet_graph Refnet_sketch Union_find
