lib/core/sketch_connectivity.mli: Protocol
