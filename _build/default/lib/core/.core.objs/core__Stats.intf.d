lib/core/stats.mli: Format Simulator
