(** The paper's "ongoing work" remark, made concrete: {e the existence of
    a frugal one-round protocol for bipartiteness implies the existence
    of a frugal one-round protocol deciding if a bipartite graph is
    connected.}

    Construction.  For a bipartite input [G] and two vertices [s, t] of
    the {e same} colour class, build [G''_{s,t}] on [n + 2] vertices:
    [G] plus a 2-vertex bridge [s - (n+1) - (n+2) - t].  Any [s..t] path
    inside [G] has even length (same class), so closing it through the
    3-edge bridge yields an odd cycle:

    - [s] and [t] connected in [G]  =>  [G''] has an odd cycle (not
      bipartite);
    - [s] and [t] in different components  =>  [G''] is bipartite
      (recolour [t]'s component).

    A bipartiteness oracle Γ therefore answers same-component queries
    for all same-class pairs, which determines connectivity: [G] is
    connected iff each colour class is internally one component and some
    edge joins the classes (plus the degenerate cases handled below).
    The local blow-up matches Algorithm 2's pattern: each node sends
    three Γ-messages ([m0] plain, [ms] as [s], [mt] as [t]), because its
    gadget neighbourhood takes one of only three shapes.

    The input's bipartition must be known to the nodes (the paper's
    Theorem 3 setting: parts [{1..n/2}], [{n/2+1..n}]) — nodes of one
    class only ever play [s]/[t] roles within their class. *)

(** [connectivity ~oracle ~left ~right] is the Δ protocol deciding
    connectivity of bipartite graphs whose colour classes are the given
    vertex sets.  Correct whenever the input respects the classes and
    the oracle decides bipartiteness at sizes [n + 2]. *)
val connectivity :
  oracle:bool Protocol.t -> left:int list -> right:int list -> bool Protocol.t

(** [bipartiteness_oracle] — full-information reference oracle. *)
val bipartiteness_oracle : bool Protocol.t

(** [odd_cycle_gadget g s t] is [G''_{s,t}]; exposed for tests.
    @raise Invalid_argument if [s = t] or out of range. *)
val odd_cycle_gadget : Refnet_graph.Graph.t -> int -> int -> Refnet_graph.Graph.t
