open Refnet_bits
open Refnet_graph

let message_bits ~max_degree n =
  let w = Bounds.id_bits n in
  w + (max_degree * w)

let reconstruct ~max_degree : Graph.t option Protocol.t =
  if max_degree < 0 then invalid_arg "Bounded_degree.reconstruct: negative bound";
  let local ~n ~id:_ ~neighbors =
    let w = Bounds.id_bits n in
    let wr = Bit_writer.create () in
    let d = List.length neighbors in
    if d > max_degree then begin
      (* Signal overflow in-band with the reserved degree value. *)
      Codes.write_fixed wr ~width:w 0;
      Message.of_writer wr
    end
    else begin
      Codes.write_fixed wr ~width:w (d + 1);
      List.iter (fun u -> Codes.write_fixed wr ~width:w u) neighbors;
      Message.of_writer wr
    end
  in
  let global ~n msgs =
    let w = Bounds.id_bits n in
    let b = Graph.Builder.create n in
    let ok = ref true in
    Array.iteri
      (fun i msg ->
        if !ok then begin
          match
            let r = Message.reader msg in
            let tag = Codes.read_fixed r ~width:w in
            if tag = 0 then None
            else begin
              let d = tag - 1 in
              Some (List.init d (fun _ -> Codes.read_fixed r ~width:w))
            end
          with
          | None -> ok := false
          | Some nbrs ->
            List.iter
              (fun u ->
                if u < 1 || u > n || u = i + 1 then ok := false
                else Graph.Builder.add_edge b (i + 1) u)
              nbrs
          | exception Bit_reader.Exhausted -> ok := false
        end)
      msgs;
    if !ok then Some (Graph.Builder.build b) else None
  in
  { name = Printf.sprintf "bounded-degree-%d" max_degree; local; global }

let full_information : Graph.t Protocol.t =
  let local ~n ~id:_ ~neighbors =
    let v = Bitvec.create n in
    List.iter (fun u -> Bitvec.set v (u - 1)) neighbors;
    v
  in
  let global ~n msgs =
    let b = Graph.Builder.create n in
    Array.iteri
      (fun i row ->
        Bitvec.iter_set row (fun j -> if i < j then Graph.Builder.add_edge b (i + 1) (j + 1)))
      msgs;
    Graph.Builder.build b
  in
  { name = "full-information"; local; global }
