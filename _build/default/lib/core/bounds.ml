let id_bits n =
  let rec go acc v = if v = 0 then acc else go (acc + 1) (v lsr 1) in
  max 1 (go 0 n)

let forest_message_bits n = 4 * id_bits n

let degeneracy_message_bits ~k n =
  let w = id_bits n in
  (2 + (k * (k + 3) / 2)) * w

let generalized_message_bits ~k n =
  let w = id_bits n in
  (2 + (k * (k + 3))) * w

let lemma1_budget ~c n = float_of_int (c * n * id_bits n)

let square_free_growth_exponent n = float_of_int n ** 1.5

let reduction_blowup_square ~bits n = bits (2 * n)

let reduction_blowup_diameter ~bits n = 3 * bits (n + 3)

let reduction_blowup_triangle ~bits n = 2 * bits (n + 1)
