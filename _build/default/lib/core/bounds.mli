(** Closed-form bounds quoted by the paper, as executable formulas.

    Benches print measured values against these, and tests assert that
    implementations stay within them. *)

(** [id_bits n] is [ceil(log2 (n + 1))] — bits to name a vertex of an
    [n]-node network (also the unit "log n" of frugality). *)
val id_bits : int -> int

(** [forest_message_bits n] bounds the Section III.A triple
    (ID, degree, sum of neighbour IDs): the paper says "less than
    [4 log n]"; the exact fixed-width layout is
    [id_bits + id_bits + 2*id_bits]. *)
val forest_message_bits : int -> int

(** [degeneracy_message_bits ~k n] bounds Algorithm 3's message
    (ID, degree, b_1..b_k) with [b_p <= n^(p+1)] on [(p+1) * id_bits]
    bits: total [2*id_bits + sum_{p=1..k} (p+1)*id_bits]
    [= (2 + k(k+3)/2) * id_bits] — the concrete form of Lemma 2's
    [O(k^2 log n)]. *)
val degeneracy_message_bits : k:int -> int -> int

(** [generalized_message_bits ~k n] doubles the power-sum payload (both
    the neighbourhood and its complement are encoded, with complement
    sums bounded by [n^(p+1)] as well). *)
val generalized_message_bits : k:int -> int -> int

(** [lemma1_budget ~c n] is the total information [c * n * id_bits n]
    received by the referee from a frugal protocol with per-message
    bound [c * id_bits n]; a family with [log2 g(n)] above this budget
    cannot be reconstructed (Lemma 1). *)
val lemma1_budget : c:int -> int -> float

(** [square_free_growth_exponent n] is [n^(3/2)], the Kleitman–Winston
    growth exponent for labelled square-free graphs, up to constants. *)
val square_free_growth_exponent : int -> float

(** [reduction_blowup_square ~bits n] maps an oracle message bound
    [bits(n)] to Δ's bound [bits(2n)] (Theorem 1's accounting). *)
val reduction_blowup_square : bits:(int -> int) -> int -> int

(** [reduction_blowup_diameter ~bits n] is [3 * bits(n + 3)]
    (Theorem 2). *)
val reduction_blowup_diameter : bits:(int -> int) -> int -> int

(** [reduction_blowup_triangle ~bits n] is [2 * bits(n + 1)]
    (Theorem 3). *)
val reduction_blowup_triangle : bits:(int -> int) -> int -> int
