open Refnet_graph

type family = Square_free | Triangle_free | All_graphs | Bipartite_fixed_halves

let family_name = function
  | Square_free -> "square-free"
  | Triangle_free -> "triangle-free"
  | All_graphs -> "all graphs"
  | Bipartite_fixed_halves -> "bipartite (fixed halves)"

let log2_family_size family n =
  match family with
  | All_graphs -> float_of_int (n * (n - 1) / 2)
  | Bipartite_fixed_halves -> float_of_int ((n / 2) * (n - (n / 2)))
  | Square_free -> Float.log2 (float_of_int (Enumerate.count_square_free n))
  | Triangle_free -> Float.log2 (float_of_int (Enumerate.count_triangle_free n))

let budget ~c n = Bounds.lemma1_budget ~c n

let reconstructible ~c family n = log2_family_size family n <= budget ~c n

let crossover ~c family ~max_n =
  let rec go n =
    if n > max_n then None
    else if not (reconstructible ~c family n) then Some n
    else go (n + 1)
  in
  go 1
