(** Lemma 1 made concrete.

    A frugal one-round protocol delivers at most [c * n * log n] bits to
    the referee, so it can tell apart at most [2^(c n log n)] graphs; a
    family [F] with [log2 |F_n|] growing faster cannot be reconstructed.
    The impossibility theorems instantiate [F] with square-free graphs
    ([2^Theta(n^{3/2})], Kleitman–Winston), all graphs
    ([2^(n(n-1)/2)]), and balanced bipartite graphs ([2^(n^2/4)]).

    At laptop scale the exact counts come from {!Refnet_graph.Enumerate};
    the asymptotic families' exponents are closed-form. *)

type family = Square_free | Triangle_free | All_graphs | Bipartite_fixed_halves

(** [log2_family_size family n] is [log2 g(n)] — exact by enumeration for
    [Square_free]/[Triangle_free] (practical for [n <= 7]), closed form
    for [All_graphs] ([n(n-1)/2]) and [Bipartite_fixed_halves]
    ([floor(n/2) * ceil(n/2)] cross pairs).
    @raise Invalid_argument when enumeration is out of range. *)
val log2_family_size : family -> int -> float

(** [budget ~c n] is Lemma 1's information budget [c * n * id_bits n]. *)
val budget : c:int -> int -> float

(** [reconstructible ~c family n] is [log2 g(n) <= budget] — necessary
    for a frugal protocol with constant [c] to reconstruct the family at
    size [n]. *)
val reconstructible : c:int -> family -> int -> bool

(** [crossover ~c family ~max_n] is the smallest [n <= max_n] where the
    family outgrows the budget, if any.  For [All_graphs] and
    [Bipartite_fixed_halves] this uses closed forms, so large [max_n] is
    fine; enumerated families are capped by {!Refnet_graph.Enumerate}. *)
val crossover : c:int -> family -> max_n:int -> int option

(** [family_name f] for reports. *)
val family_name : family -> string
