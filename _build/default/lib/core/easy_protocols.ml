open Refnet_bits

let degree_message ~n ~neighbors =
  let w = Bit_writer.create () in
  Codes.write_fixed w ~width:(Bounds.id_bits n) (List.length neighbors);
  Message.of_writer w

let read_degree ~n msg = Codes.read_fixed (Message.reader msg) ~width:(Bounds.id_bits n)

let degrees ~n msgs = Array.to_list (Array.map (read_degree ~n) msgs)

let degree_sequence : int list Protocol.t =
  {
    name = "degree-sequence";
    local = (fun ~n ~id:_ ~neighbors -> degree_message ~n ~neighbors);
    global =
      (fun ~n msgs -> List.sort (fun a b -> Stdlib.compare b a) (degrees ~n msgs));
  }

let on_degrees name f : 'a Protocol.t =
  {
    name;
    local = (fun ~n ~id:_ ~neighbors -> degree_message ~n ~neighbors);
    global = (fun ~n msgs -> f (degrees ~n msgs));
  }

let edge_count = on_degrees "edge-count" (fun ds -> List.fold_left ( + ) 0 ds / 2)

let has_edge = on_degrees "has-edge" (List.exists (fun d -> d > 0))

let max_degree = on_degrees "max-degree" (List.fold_left max 0)

let min_degree =
  on_degrees "min-degree" (function [] -> 0 | d :: rest -> List.fold_left min d rest)

let is_regular =
  on_degrees "is-regular" (function [] -> true | d :: rest -> List.for_all (( = ) d) rest)

let has_isolated_vertex = on_degrees "has-isolated" (List.exists (( = ) 0))

let has_universal_vertex : bool Protocol.t =
  {
    name = "has-universal";
    local = (fun ~n ~id:_ ~neighbors -> degree_message ~n ~neighbors);
    global = (fun ~n msgs -> List.exists (fun d -> d = n - 1) (degrees ~n msgs));
  }

let all_degrees_even = on_degrees "all-degrees-even" (List.for_all (fun d -> d land 1 = 0))

let sum_of_ids_check : bool Protocol.t =
  {
    name = "handshake-fingerprint";
    local =
      (fun ~n ~id:_ ~neighbors ->
        let w = Bit_writer.create () in
        Codes.write_fixed w ~width:(Bounds.id_bits n) (List.length neighbors);
        Codes.write_fixed w ~width:(2 * Bounds.id_bits n) (List.fold_left ( + ) 0 neighbors);
        Message.of_writer w);
    global =
      (fun ~n msgs ->
        (* Each edge {u,v} contributes u + v to the total of neighbour-ID
           sums, and also u + v to sum over nodes of deg * id when
           viewed from the other side; the two totals must agree. *)
        let w = Bounds.id_bits n in
        let total_sums = ref 0 and weighted_degrees = ref 0 in
        Array.iteri
          (fun i msg ->
            let r = Message.reader msg in
            let deg = Codes.read_fixed r ~width:w in
            let s = Codes.read_fixed r ~width:(2 * w) in
            total_sums := !total_sums + s;
            weighted_degrees := !weighted_degrees + (deg * (i + 1)))
          msgs;
        !total_sums = !weighted_degrees);
  }
