(** The easy side of the landscape: properties that {e are} computable in
    one frugal round.

    The paper's negative results make the contrast sharp — a node cannot
    tell {e which} of its neighbours matter, so subgraph patterns beyond
    a single edge are hard — but anything determined by the degree
    multiset travels in one [O(log n)]-bit message per node.  These
    protocols are the baseline against which the hardness results are
    interesting at all, and the bench's T17 table lines them up.

    Every protocol here sends exactly the node's degree (plus, for
    {!sum_of_ids_check}, the neighbour-ID sum of the forest protocol),
    so all messages are at most [2 id_bits n] bits. *)

(** [degree_sequence] — the referee learns the exact degree multiset,
    sorted non-increasing. *)
val degree_sequence : int list Protocol.t

(** [edge_count] — [m], by the handshake lemma. *)
val edge_count : int Protocol.t

(** [has_edge] — "does the network have any link at all?", one bit per
    node. *)
val has_edge : bool Protocol.t

(** [max_degree] / [min_degree]. *)
val max_degree : int Protocol.t

val min_degree : int Protocol.t

(** [is_regular] — all degrees equal. *)
val is_regular : bool Protocol.t

(** [has_isolated_vertex]. *)
val has_isolated_vertex : bool Protocol.t

(** [has_universal_vertex] — some node adjacent to all others. *)
val has_universal_vertex : bool Protocol.t

(** [could_be_eulerian] — connected-if-nonzero-degrees assumed aside:
    checks that every degree is even and at most one "odd component"
    signal appears.  (Full Eulerianity needs connectivity — exactly the
    open question — so this decides the degree-parity part.) *)
val all_degrees_even : bool Protocol.t

(** [sum_of_ids_check] — a consistency fingerprint: referee verifies
    that the multiset of neighbour-ID sums is consistent with the degree
    sequence via the handshake identity
    [sum_v (sum of N(v)) = sum_v deg(v) * ... ] — concretely it checks
    [sum_v S(v) = sum_v deg(v) * ID(v)] is even-handed: each edge
    [{u,v}] contributes [u + v] to both sides. *)
val sum_of_ids_check : bool Protocol.t
