open Refnet_bits
open Refnet_graph

let message_bits = Bounds.forest_message_bits

let local ~n ~id ~neighbors =
  let w = Bounds.id_bits n in
  let wr = Bit_writer.create () in
  Codes.write_fixed wr ~width:w id;
  Codes.write_fixed wr ~width:w (List.length neighbors);
  (* Sum of at most n identifiers of at most n: fits 2w bits. *)
  Codes.write_fixed wr ~width:(2 * w) (List.fold_left ( + ) 0 neighbors);
  Message.of_writer wr

exception Malformed

let parse ~n msgs =
  let w = Bounds.id_bits n in
  let deg = Array.make n 0 and sum = Array.make n 0 in
  Array.iteri
    (fun i msg ->
      let r = Message.reader msg in
      let id = Codes.read_fixed r ~width:w in
      if id <> i + 1 then raise Malformed;
      deg.(i) <- Codes.read_fixed r ~width:w;
      sum.(i) <- Codes.read_fixed r ~width:(2 * w);
      if deg.(i) > n - 1 then raise Malformed)
    msgs;
  (deg, sum)

let global ~n msgs =
  match parse ~n msgs with
  | exception Malformed -> None
  | exception Bit_reader.Exhausted -> None
  | deg, sum ->
    let removed = Array.make n false in
    let b = Graph.Builder.create n in
    (* Queue of candidate prune points; stale entries are skipped. *)
    let queue = Queue.create () in
    for v = 1 to n do
      if deg.(v - 1) <= 1 then Queue.add v queue
    done;
    let processed = ref 0 in
    let ok = ref true in
    while !ok && not (Queue.is_empty queue) do
      let v = Queue.pop queue in
      if not removed.(v - 1) then begin
        if deg.(v - 1) = 1 then begin
          let u = sum.(v - 1) in
          if u < 1 || u > n || u = v || removed.(u - 1) || deg.(u - 1) = 0 then ok := false
          else begin
            Graph.Builder.add_edge b v u;
            deg.(u - 1) <- deg.(u - 1) - 1;
            sum.(u - 1) <- sum.(u - 1) - v;
            if deg.(u - 1) <= 1 then Queue.add u queue
          end
        end
        else if deg.(v - 1) <> 0 || sum.(v - 1) <> 0 then ok := false;
        if !ok then begin
          removed.(v - 1) <- true;
          incr processed
        end
      end
    done;
    if !ok && !processed = n then Some (Graph.Builder.build b) else None

let reconstruct : Graph.t option Protocol.t =
  { name = "forest-reconstruct"; local; global }

let recognize : bool Protocol.t =
  Protocol.rename "forest-recognize" (Protocol.map_output Option.is_some reconstruct)
