(** The Section III.A protocol: one-round reconstruction of forests.

    Each node sends the triple (identifier, degree, sum of neighbour
    identifiers) — under [4 log n] bits.  The referee repeatedly prunes a
    leaf: a degree-1 triple pins its unique neighbour (the sum {e is} the
    neighbour), and the neighbour's triple is patched as if the leaf had
    never existed.  If pruning stalls before the graph is exhausted, the
    input contained a cycle. *)

(** [reconstruct] outputs [Some g] when the input is a forest, [None]
    when it contains a cycle (or messages are inconsistent). *)
val reconstruct : Refnet_graph.Graph.t option Protocol.t

(** [recognize] decides "is the input a forest?" with the same
    messages. *)
val recognize : bool Protocol.t

(** [message_bits n] is the exact fixed-width message length used at
    size [n] (= {!Bounds.forest_message_bits}). *)
val message_bits : int -> int
