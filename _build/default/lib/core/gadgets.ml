open Refnet_graph

let check g s t name =
  let n = Graph.order g in
  if s < 1 || s > n || t < 1 || t > n || s = t then
    invalid_arg ("Gadgets." ^ name ^ ": bad vertex pair")

let square g s t =
  check g s t "square";
  let n = Graph.order g in
  let extra =
    ((n + s, n + t) :: List.init n (fun i -> (i + 1, n + i + 1)))
  in
  Graph.add_edges (Graph.add_vertices g n) extra

let diameter g s t =
  check g s t "diameter";
  let n = Graph.order g in
  let extra =
    ((s, n + 1) :: (t, n + 2) :: List.init n (fun v -> (v + 1, n + 3)))
  in
  Graph.add_edges (Graph.add_vertices g 3) extra

let triangle g s t =
  check g s t "triangle";
  let n = Graph.order g in
  Graph.add_edges (Graph.add_vertices g 1) [ (s, n + 1); (t, n + 1) ]

let square_fictitious ~n ~s ~t j =
  if j <= n || j > 2 * n then invalid_arg "Gadgets.square_fictitious: not a fictitious vertex";
  if j = n + s then [ s; n + t ]
  else if j = n + t then [ t; n + s ]
  else [ j - n ]

let diameter_fictitious ~n ~s ~t j =
  if j = n + 1 then [ s ]
  else if j = n + 2 then [ t ]
  else if j = n + 3 then List.init n (fun i -> i + 1)
  else invalid_arg "Gadgets.diameter_fictitious: not a fictitious vertex"

let triangle_fictitious ~n ~s ~t j =
  if j = n + 1 then [ min s t; max s t ]
  else invalid_arg "Gadgets.triangle_fictitious: not a fictitious vertex"
