(** The paper's "generalized degeneracy" extension (end of Section III):
    reconstruction of graphs that can be peeled by repeatedly removing a
    vertex of degree at most [k] {e either in the remaining graph or in
    its complement}, "by encoding both the neighborhood and the
    non-neighborhood of each vertex".

    Each node sends (ID, degree, power sums of its neighbourhood, power
    sums of its non-neighbourhood).  The referee tracks, for every
    remaining vertex, both encodings relative to the remaining vertex
    set: pruning a vertex [y] patches its neighbours' neighbourhood sums
    and its non-neighbours' complement sums — the referee knows which is
    which because it has just decoded [N(y)].  A vertex is prunable when
    its remaining degree is at most [k] (decode the neighbourhood) or at
    least [r - 1 - k] where [r] counts remaining vertices (decode the
    complement and take the rest).

    Dense graphs — complements of forests, near-cliques — become
    reconstructible this way even though their plain degeneracy is
    [Theta(n)]. *)

(** [reconstruct ?decoder ~k ()] outputs [Some g] whenever the input's
    generalized degeneracy is at most [k]. *)
val reconstruct :
  ?decoder:Degeneracy_protocol.decoder -> k:int -> unit -> Refnet_graph.Graph.t option Protocol.t

(** [recognize ?decoder k] decides "generalized degeneracy <= k". *)
val recognize : ?decoder:Degeneracy_protocol.decoder -> int -> bool Protocol.t

(** [message_bits ~k n] — exactly double the power-sum payload of the
    plain protocol plus the shared header. *)
val message_bits : k:int -> int -> int
