open Refnet_bits

type t = Bitvec.t

let bits = Bitvec.length

let of_writer = Bit_writer.contents

let reader = Bit_reader.of_bitvec

let empty = Bitvec.create 0

let concat ms =
  let w = Bit_writer.create () in
  List.iter (fun m -> Bit_writer.add_bitvec w m) ms;
  Bit_writer.contents w

let equal = Bitvec.equal

let pp = Bitvec.pp
