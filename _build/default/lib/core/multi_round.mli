(** Multi-round referee protocols — the paper's closing question
    ("investigate properties that can(not) be decided by a frugal
    protocol with fixed number of rounds") as an executable framework.

    The model extends Definition 1 the obvious way: in each round every
    node sends an [O(log n)]-bit message to the referee, then the referee
    broadcasts an [O(log n)]-bit reply heard by all nodes (the referee is
    a universal vertex, so a broadcast is one message per incident edge
    with identical content).  Nodes carry state between rounds.

    {!Adaptive_degeneracy} demonstrates the power of even one extra
    round: the one-round protocol of Theorem 5 must fix [k] in advance —
    every node needs it to size the power sums — whereas two rounds
    reconstruct {e any} graph with message sizes matched to its actual
    degeneracy: round 1 ships the degree sequence, the referee derives an
    upper bound [k-hat >= degeneracy(G)] from it and broadcasts it, and
    round 2 is Algorithm 3 at [k = k-hat]. *)

type node_state
(** Opaque per-node memory between rounds. *)

type 'a t = {
  name : string;
  rounds : int;
  init : n:int -> id:int -> neighbors:int list -> node_state;
      (** Initial node state from the node's local knowledge. *)
  send : round:int -> node_state -> Message.t * node_state;
      (** Per-round message; may update the state. *)
  receive : round:int -> broadcast:Message.t -> node_state -> node_state;
      (** Deliver the referee's broadcast after a round. *)
  referee : round:int -> n:int -> Message.t array -> Message.t;
      (** Referee's broadcast for rounds [1 .. rounds - 1]. *)
  output : n:int -> Message.t array -> 'a;
      (** Final decision from the last round's messages. *)
}

(** Node state constructors for protocol implementations. *)
val make_state : n:int -> id:int -> neighbors:int list -> extra:Message.t list -> node_state

val state_n : node_state -> int
val state_id : node_state -> int
val state_neighbors : node_state -> int list

(** [state_extra s] is the list of broadcasts (and anything [send]
    stashed) most recent first. *)
val state_extra : node_state -> Message.t list

(** [push_extra s m] stores a message in the state. *)
val push_extra : node_state -> Message.t -> node_state

type transcript = {
  rounds : int;
  per_round_max_bits : int list;  (** node messages, per round *)
  broadcast_bits : int list;      (** referee broadcasts, per round *)
  max_bits : int;                 (** largest node message overall *)
}

(** [run p g] executes the rounds and collects exact bit accounting.
    @raise Invalid_argument if [p.rounds < 1]. *)
val run : 'a t -> Refnet_graph.Graph.t -> 'a * transcript

(** [of_one_round p] lifts a one-round protocol into the framework
    (identity embedding; the referee broadcast list is empty). *)
val of_one_round : 'a Protocol.t -> 'a t

(** The two-round adaptive reconstruction described above. *)
module Adaptive_degeneracy : sig
  (** [degree_bound degrees] is the referee's round-1 inference: the
      largest [d] such that at least [d + 1] nodes have degree at least
      [d] — an upper bound on the degeneracy computable from degrees
      alone (any subgraph of minimum degree [delta] has [delta + 1]
      vertices of degree at least [delta] in [G]). *)
  val degree_bound : int array -> int

  (** [protocol ()] reconstructs arbitrary graphs in two rounds with
      round-2 messages of [O(k_hat^2 log n)] bits. *)
  val protocol : unit -> Refnet_graph.Graph.t option t
end
