open Refnet_bits
open Refnet_bigint

let write w ~width v =
  if Nat.num_bits v > width then invalid_arg "Nat_codec.write: value does not fit";
  let digits = Nat.to_digits v in
  let bit i =
    let d = i / 30 and o = i mod 30 in
    d < Array.length digits && digits.(d) land (1 lsl o) <> 0
  in
  for i = width - 1 downto 0 do
    Bit_writer.add_bit w (bit i)
  done

let read r ~width =
  if width < 0 then invalid_arg "Nat_codec.read: negative width";
  let digits = Array.make ((width / 30) + 1) 0 in
  for i = width - 1 downto 0 do
    if Bit_reader.read_bit r then digits.(i / 30) <- digits.(i / 30) lor (1 lsl (i mod 30))
  done;
  Nat.of_digits digits
