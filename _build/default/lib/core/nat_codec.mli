(** Fixed-width serialization of {!Refnet_bigint.Nat} values into
    messages.

    The degeneracy protocol's power sums are bounded by [n^(p+1)], so a
    coordinate fits in [(p+1) * ceil(log2(n+1))] bits; the caller picks
    the width from that bound and the codec enforces it. *)

open Refnet_bits
open Refnet_bigint

(** [write w ~width v] appends [v] on exactly [width] bits, most
    significant first.
    @raise Invalid_argument if [v] needs more than [width] bits. *)
val write : Bit_writer.t -> width:int -> Nat.t -> unit

(** [read r ~width] reads a value written by {!write}. *)
val read : Bit_reader.t -> width:int -> Nat.t
