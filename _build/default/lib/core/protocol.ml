type 'a t = {
  name : string;
  local : n:int -> id:int -> neighbors:int list -> Message.t;
  global : n:int -> Message.t array -> 'a;
}

let map_output f p = { p with global = (fun ~n msgs -> f (p.global ~n msgs)) }

let rename name p = { p with name }
