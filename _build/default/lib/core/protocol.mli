(** One-round protocols (the paper's Definition 1).

    A protocol is a family of pairs [(local_n, global_n)]: the local
    function maps a node's knowledge — its identifier, its neighbour set
    and the network size [n] — to a message, and the global function maps
    the [n] collected messages to the output.  Following the paper, the
    local function must be evaluable at {e any} pair [(i, N)] with
    [N ⊆ {1..n}], not only pairs arising from an actual input graph; the
    reduction protocols of Section II exploit exactly this by evaluating
    an oracle's local function on fictitious gadget vertices.

    The output type is a parameter: reconstruction protocols produce
    [Graph.t option], decision protocols produce [bool].  This mirrors
    the paper's untyped [{0,1}*] output without forcing callers to
    re-parse bit strings. *)

type 'a t = {
  name : string;  (** for reports and transcripts *)
  local : n:int -> id:int -> neighbors:int list -> Message.t;
      (** [Γ^l_n(i, N)]: the message node [i] sends when its neighbour
          set is [N] in a network of size [n].  [N] is a {e set}; by
          convention callers (the simulator, the reductions) always pass
          it as a strictly increasing list, and implementations must be
          pure — same inputs, same message. *)
  global : n:int -> Message.t array -> 'a;
      (** [Γ^g_n]: referee decoding; [messages.(i - 1)] is node [i]'s
          message (the referee knows [n] and waits for all messages, so
          indexing by identifier is faithful to the model). *)
}

(** [map_output f p] is [p] with [f] applied to the global result. *)
val map_output : ('a -> 'b) -> 'a t -> 'b t

(** [rename name p]. *)
val rename : string -> 'a t -> 'a t
