(** Exhaustive search over {e all} one-round protocols at small scale.

    Lemma 1 rules protocols out by counting, but is silent when the
    budget formally suffices.  At tiny [n] the whole protocol space is
    finite: a local function for node [i] is just a table from its
    [2^(n-1)] possible neighbourhoods to one of [2^b] messages, and a
    decision protocol exists iff some choice of tables {e separates}
    every pair of graphs on which the property differs (the referee can
    then be taken to be any function constant on message-vector
    classes).  This module decides that existence question exactly, by
    backtracking with per-pair constraint propagation:

    - {!search_decider} — does any [n]-node protocol with [colors]
      distinct message values per node decide the property?
    - {!search_reconstructor} — can the message vectors distinguish
      {e all} graphs (one-round reconstruction)?

    Either a concrete witness protocol comes back — runnable through
    {!to_protocol} — or [Impossible] is a machine-checked universal
    lower bound over every protocol of that shape, deterministic
    referees and all.  Fixed-length messages of [log2 colors] bits are
    assumed; variable-length messages with at most that many bits only
    add more colours, so [Impossible] at [colors = 2^b + 2^(b-1) + ...]
    covers them.

    Search cost grows like [colors^(n * 2^(n-1))]; [n <= 4] with
    [colors <= 4] is comfortable, [n = 5] is out of reach. *)

type witness = int array array
(** [w.(i - 1).(mask)] is the message value node [i] sends when its
    neighbourhood, encoded as a bitmask over the other vertices in
    increasing order, is [mask]. *)

type result =
  | Found of witness
  | Impossible  (** no protocol of this shape exists — exhaustively verified *)
  | Aborted  (** node budget exhausted before the search finished *)

(** [search_decider ~n ~colors ~property ()] explores all assignments.
    [budget] caps backtracking nodes (default 20 million).
    @raise Invalid_argument if [n < 1], [n > 4] or [colors < 1]. *)
val search_decider :
  ?budget:int -> n:int -> colors:int -> property:(Refnet_graph.Graph.t -> bool) -> unit -> result

(** [search_reconstructor ~n ~colors ()] — injectivity on all [2^C(n,2)]
    graphs. *)
val search_reconstructor : ?budget:int -> n:int -> colors:int -> unit -> result

(** [search_family_reconstructor ~n ~colors ~family ()] — injectivity
    restricted to the graphs satisfying [family]: exactly Lemma 1's
    setting ("a protocol reconstructing graphs in G"), decided
    exhaustively.  Lemma 1 gives impossibility when
    [log2 |family| > n log2 colors]; this search also settles the cases
    counting leaves open. *)
val search_family_reconstructor :
  ?budget:int -> n:int -> colors:int -> family:(Refnet_graph.Graph.t -> bool) -> unit -> result

(** [to_protocol ~n ~colors w ~property] wraps a witness as a runnable
    {!Protocol.t}: nodes send their table entries on
    [ceil(log2 colors)] bits and the referee classifies the message
    vector by comparing against all graphs (exhaustively — this is a
    tiny-[n] device). *)
val to_protocol :
  n:int -> colors:int -> witness -> property:(Refnet_graph.Graph.t -> bool) -> bool Protocol.t

(** [neighborhood_mask ~id neighbors] — the table index used by
    witnesses: bit [j] set when the [j]-th other vertex (in increasing
    order) is a neighbour. *)
val neighborhood_mask : n:int -> id:int -> int list -> int
