let degeneracy_at_most ?decoder k =
  Protocol.rename
    (Printf.sprintf "degeneracy<=%d" k)
    (Protocol.map_output Option.is_some (Degeneracy_protocol.reconstruct ?decoder ~k ()))

let is_forest = Forest_protocol.recognize

let reconstruct_and_check ?decoder ~k ~check () =
  Protocol.rename
    (Printf.sprintf "reconstruct-%d-and-check" k)
    (Protocol.map_output (Option.map check) (Degeneracy_protocol.reconstruct ?decoder ~k ()))
