(** Recognition protocols derived from reconstruction (end of the paper's
    Section III: "our protocol can also be turned into a recognition
    protocol ... rejecting if, during the pruning process, we find no
    vertex of degree at most k").

    Each recognizer runs the corresponding reconstruction global function
    and accepts exactly when it completes. *)

(** [degeneracy_at_most ?decoder k] decides "degeneracy(G) <= k" in one
    frugal round. *)
val degeneracy_at_most :
  ?decoder:Degeneracy_protocol.decoder -> int -> bool Protocol.t

(** [is_forest] — alias of {!Forest_protocol.recognize}. *)
val is_forest : bool Protocol.t

(** [reconstruct_and_check ?decoder ~k ~check ()] reconstructs and then
    applies an arbitrary graph predicate at the referee — how any
    decidable property of a bounded-degeneracy class becomes one-round
    decidable (the referee has the whole graph).  Output [None] when
    reconstruction fails. *)
val reconstruct_and_check :
  ?decoder:Degeneracy_protocol.decoder ->
  k:int ->
  check:(Refnet_graph.Graph.t -> bool) ->
  unit ->
  bool option Protocol.t
