type summary = {
  runs : int;
  max_bits : int;
  mean_max_bits : float;
  mean_total_bits : float;
  max_ratio : float;
}

let summarize ts =
  if ts = [] then invalid_arg "Stats.summarize: no transcripts";
  let runs = List.length ts in
  let max_bits = List.fold_left (fun acc t -> max acc t.Simulator.max_bits) 0 ts in
  let sum_max = List.fold_left (fun acc t -> acc + t.Simulator.max_bits) 0 ts in
  let sum_total = List.fold_left (fun acc t -> acc + t.Simulator.total_bits) 0 ts in
  let max_ratio =
    List.fold_left (fun acc t -> Float.max acc (Simulator.frugality_ratio t)) 0.0 ts
  in
  {
    runs;
    max_bits;
    mean_max_bits = float_of_int sum_max /. float_of_int runs;
    mean_total_bits = float_of_int sum_total /. float_of_int runs;
    max_ratio;
  }

let pp_summary fmt s =
  Format.fprintf fmt "runs=%d max=%db mean-max=%.1fb mean-total=%.1fb worst-ratio=%.2f"
    s.runs s.max_bits s.mean_max_bits s.mean_total_bits s.max_ratio
