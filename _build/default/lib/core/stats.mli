(** Aggregation of message-size measurements across runs — the raw
    material of the Lemma 2 experiment tables. *)

type summary = {
  runs : int;
  max_bits : int;       (** largest single message over all runs *)
  mean_max_bits : float;(** mean over runs of each run's max message *)
  mean_total_bits : float;
  max_ratio : float;    (** worst measured [max_bits / log2 n] *)
}

(** [summarize ts] aggregates transcripts (which may have different [n];
    ratios normalize per-run).
    @raise Invalid_argument on the empty list. *)
val summarize : Simulator.transcript list -> summary

val pp_summary : Format.formatter -> summary -> unit
