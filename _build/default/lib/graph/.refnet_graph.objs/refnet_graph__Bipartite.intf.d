lib/graph/bipartite.mli: Graph
