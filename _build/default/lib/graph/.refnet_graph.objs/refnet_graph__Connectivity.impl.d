lib/graph/connectivity.ml: Array Graph List Traversal
