lib/graph/cycles.ml: Array Bitvec Graph List Queue Refnet_bits
