lib/graph/cycles.mli: Graph
