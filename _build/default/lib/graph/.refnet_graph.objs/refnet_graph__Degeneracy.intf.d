lib/graph/degeneracy.mli: Graph
