lib/graph/distance.ml: Array Graph Traversal
