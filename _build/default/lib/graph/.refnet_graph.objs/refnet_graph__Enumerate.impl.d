lib/graph/enumerate.ml: Array Cycles Graph
