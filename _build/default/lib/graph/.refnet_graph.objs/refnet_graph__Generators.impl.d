lib/graph/generators.ml: Array Connectivity Graph Hashtbl List Random Stdlib
