lib/graph/gio.ml: Buffer Bytes Char Graph List Printf String
