lib/graph/graph.ml: Array Bitvec Format List Refnet_bits Stdlib
