lib/graph/graph.mli: Bitvec Format Refnet_bits
