lib/graph/parameters.ml: Array Degeneracy Graph List Printf Stdlib
