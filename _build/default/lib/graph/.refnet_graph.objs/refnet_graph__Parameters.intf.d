lib/graph/parameters.mli: Graph
