lib/graph/product.ml: Graph
