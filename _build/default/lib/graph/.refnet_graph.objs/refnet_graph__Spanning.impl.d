lib/graph/spanning.ml: Connectivity Graph List Union_find
