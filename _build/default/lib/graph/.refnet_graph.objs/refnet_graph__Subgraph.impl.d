lib/graph/subgraph.ml: Array Generators Graph List Stdlib
