lib/graph/treewidth.ml: Array Bytes Char Graph List
