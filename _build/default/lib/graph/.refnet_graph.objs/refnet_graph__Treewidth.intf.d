lib/graph/treewidth.mli: Graph
