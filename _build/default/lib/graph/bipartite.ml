let bipartition g =
  let n = Graph.order g in
  let colour = Array.make n (-1) in
  let ok = ref true in
  for src = 1 to n do
    if colour.(src - 1) < 0 then begin
      colour.(src - 1) <- 0;
      let queue = Queue.create () in
      Queue.add src queue;
      while not (Queue.is_empty queue) do
        let u = Queue.pop queue in
        List.iter
          (fun v ->
            if colour.(v - 1) < 0 then begin
              colour.(v - 1) <- 1 - colour.(u - 1);
              Queue.add v queue
            end
            else if colour.(v - 1) = colour.(u - 1) then ok := false)
          (Graph.neighbors g u)
      done
    end
  done;
  if not !ok then None
  else begin
    let a = ref [] and b = ref [] in
    for v = n downto 1 do
      if colour.(v - 1) = 0 then a := v :: !a else b := v :: !b
    done;
    Some (!a, !b)
  end

let is_bipartite g = bipartition g <> None

let respects_parts g ~left ~right =
  let n = Graph.order g in
  let side = Array.make n (-1) in
  let place s v =
    if v < 1 || v > n || side.(v - 1) >= 0 then
      invalid_arg "Bipartite.respects_parts: not a partition";
    side.(v - 1) <- s
  in
  List.iter (place 0) left;
  List.iter (place 1) right;
  if Array.exists (fun s -> s < 0) side then
    invalid_arg "Bipartite.respects_parts: not a partition";
  let ok = ref true in
  Graph.iter_edges g (fun u v -> if side.(u - 1) = side.(v - 1) then ok := false);
  !ok
