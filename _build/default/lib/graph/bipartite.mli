(** Bipartiteness testing and bipartition extraction. *)

(** [bipartition g] is [Some (a, b)] when [g] is bipartite, with [a] and
    [b] the two colour classes as increasing lists ([a] contains vertex 1
    or the smallest vertex of each component).  [None] when [g] has an odd
    cycle. *)
val bipartition : Graph.t -> (int list * int list) option

(** [is_bipartite g] tests 2-colourability. *)
val is_bipartite : Graph.t -> bool

(** [respects_parts g ~left ~right] checks that every edge of [g] joins
    [left] to [right] — the shape Theorem 3 requires ("bipartite graphs
    with parts [{1..n/2}] and [{n/2+1..n}]").
    @raise Invalid_argument if [left] and [right] do not partition the
    vertices. *)
val respects_parts : Graph.t -> left:int list -> right:int list -> bool
