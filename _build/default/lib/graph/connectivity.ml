let components g =
  let n = Graph.order g in
  let comp = Array.make n (-1) in
  let next = ref 0 in
  for v = 1 to n do
    if comp.(v - 1) < 0 then begin
      let id = !next in
      incr next;
      List.iter (fun u -> comp.(u - 1) <- id) (Traversal.bfs_order g v)
    end
  done;
  comp

let component_count g =
  let comp = components g in
  Array.fold_left (fun acc c -> max acc (c + 1)) 0 comp

let is_connected g = component_count g <= 1

let component_members g =
  let comp = components g in
  let count = Array.fold_left (fun acc c -> max acc (c + 1)) 0 comp in
  let buckets = Array.make count [] in
  for v = Graph.order g downto 1 do
    buckets.(comp.(v - 1)) <- v :: buckets.(comp.(v - 1))
  done;
  Array.to_list buckets

let same_component g u v =
  let comp = components g in
  comp.(u - 1) = comp.(v - 1)
