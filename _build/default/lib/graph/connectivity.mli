(** Connected components. *)

(** [components g] labels vertices with component indices: result [c] has
    [c.(v - 1)] in [0..count-1], numbered by smallest member. *)
val components : Graph.t -> int array

(** [component_count g] is the number of connected components; [0] for the
    empty graph. *)
val component_count : Graph.t -> int

(** [is_connected g] — the empty graph and singletons are connected. *)
val is_connected : Graph.t -> bool

(** [component_members g] lists the components as increasing vertex
    lists, ordered by smallest member. *)
val component_members : Graph.t -> int list list

(** [same_component g u v] tests whether [u] and [v] are connected. *)
val same_component : Graph.t -> int -> int -> bool
