(** Small-cycle detection: triangles (C3), squares (C4), girth.

    Theorems 1 and 3 of the paper concern deciding the presence of a
    square or a triangle as a (not necessarily induced) subgraph; these
    are the referee-side "ground truth" deciders used by the gadget
    experiments. *)

(** [find_triangle g] is a triangle [(u, v, w)] with [u < v < w], if one
    exists. *)
val find_triangle : Graph.t -> (int * int * int) option

(** [has_triangle g] tests for a triangle subgraph. *)
val has_triangle : Graph.t -> bool

(** [triangle_count g] counts triangles. *)
val triangle_count : Graph.t -> int

(** [find_square g] is a 4-cycle [(a, b, c, d)] in cyclic order, if one
    exists (not necessarily induced). *)
val find_square : Graph.t -> (int * int * int * int) option

(** [has_square g] tests for a 4-cycle subgraph. *)
val has_square : Graph.t -> bool

(** [girth g] is the length of a shortest cycle, [None] for forests. *)
val girth : Graph.t -> int option

(** [is_acyclic g] — equivalent to [girth g = None]. *)
val is_acyclic : Graph.t -> bool
