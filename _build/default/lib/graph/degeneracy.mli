(** Degeneracy and elimination orders (the paper's Definition 2).

    [G] has degeneracy [k] when there is an ordering [(r_1, ..., r_n)] of
    the vertices such that each [r_i] has degree at most [k] in the
    subgraph induced by [{r_1, ..., r_i}] — equivalently, repeatedly
    removing a minimum-degree vertex never meets degree above [k].

    Forests have degeneracy 1, planar graphs at most 5, treewidth-[k]
    graphs at most [k]. *)

(** [degeneracy g] is the degeneracy number, [0] for edgeless graphs.
    Computed in [O(n + m)] by bucketed min-degree peeling. *)
val degeneracy : Graph.t -> int

(** [elimination_order g] is an ordering [(r_1, ..., r_n)] witnessing
    [degeneracy g], listed in removal order [r_n] first — i.e. the head
    is removed first, matching the referee's pruning order. *)
val elimination_order : Graph.t -> int list

(** [is_elimination_order g ~k order] verifies Definition 2 for removal
    order [order] (head removed first): every removed vertex must have
    at most [k] neighbours among the not-yet-removed.
    @raise Invalid_argument when [order] is not a permutation. *)
val is_elimination_order : Graph.t -> k:int -> int list -> bool

(** [core_numbers g] assigns each vertex its coreness: [c.(v - 1)] is the
    largest [j] such that [v] belongs to the [j]-core. *)
val core_numbers : Graph.t -> int array

(** [generalized_degeneracy g] is the "generalized degeneracy" of the
    paper's Section III: peel, at every step, a vertex of degree at most
    [k] either in the remaining graph or in its complement; the
    smallest [k] for which this empties the graph.  Dense graphs (e.g.
    complements of forests) get small values. *)
val generalized_degeneracy : Graph.t -> int

(** [generalized_elimination_order g ~k] is a removal order (head first)
    witnessing generalized degeneracy at most [k], where each element is
    [(v, side)] with [side] indicating whether [v] was small-degree in
    the graph ([`Graph]) or in its complement ([`Complement]).  [None]
    when the peeling gets stuck. *)
val generalized_elimination_order :
  Graph.t -> k:int -> (int * [ `Graph | `Complement ]) list option
