let pairwise g =
  Array.init (Graph.order g) (fun i -> Traversal.bfs_distances g (i + 1))

let eccentricity g v =
  let dist = Traversal.bfs_distances g v in
  Array.fold_left
    (fun acc d -> if d < 0 then max_int else max acc d)
    0 dist

let diameter g =
  let n = Graph.order g in
  if n = 0 then None
  else begin
    let rec go v acc =
      if v > n then Some acc
      else begin
        let e = eccentricity g v in
        if e = max_int then None else go (v + 1) (max acc e)
      end
    in
    go 1 0
  end

let radius g =
  let n = Graph.order g in
  if n = 0 then None
  else begin
    let rec go v acc =
      if v > n then if acc = max_int then None else Some acc
      else begin
        let e = eccentricity g v in
        if e = max_int then None else go (v + 1) (min acc e)
      end
    in
    go 1 max_int
  end

let diameter_at_most g d =
  let n = Graph.order g in
  let rec go v = v > n || (eccentricity g v <= d && go (v + 1)) in
  n = 0 || go 1

let distance g u v =
  let dist = Traversal.bfs_distances g u in
  if dist.(v - 1) < 0 then None else Some dist.(v - 1)
