(** Hop distances, eccentricities, diameter.

    Theorem 2 of the paper concerns deciding "diameter at most 3" — the
    gadget experiments check diameters with {!diameter} and the early-exit
    {!diameter_at_most}. *)

(** [pairwise g] is the distance matrix: entry [(u - 1, v - 1)] is the
    hop distance, [-1] when disconnected.  [O(n (n + m))]. *)
val pairwise : Graph.t -> int array array

(** [eccentricity g v] is the largest distance from [v] to a reachable
    vertex; raises [Invalid_argument] on out-of-range [v]. *)
val eccentricity : Graph.t -> int -> int

(** [diameter g] is the largest eccentricity; [None] when [g] is
    disconnected (infinite diameter) or empty. *)
val diameter : Graph.t -> int option

(** [radius g] is the smallest eccentricity, [None] as for diameter. *)
val radius : Graph.t -> int option

(** [diameter_at_most g d] decides [diameter <= d] with early exit —
    disconnected graphs answer [false]. *)
val diameter_at_most : Graph.t -> int -> bool

(** [distance g u v] is the hop distance, [None] when disconnected. *)
val distance : Graph.t -> int -> int -> int option
