let all_edge_slots n =
  let acc = ref [] in
  for u = n downto 1 do
    for v = n downto u + 1 do
      acc := (u, v) :: !acc
    done
  done;
  !acc

let iter n f =
  if n < 0 then invalid_arg "Enumerate.iter: negative order";
  if n > 10 then invalid_arg "Enumerate.iter: order too large to enumerate";
  let slots = Array.of_list (all_edge_slots n) in
  let total_masks = 1 lsl Array.length slots in
  for mask = 0 to total_masks - 1 do
    let edges = ref [] in
    Array.iteri (fun i e -> if mask land (1 lsl i) <> 0 then edges := e :: !edges) slots;
    f (Graph.of_edges n !edges)
  done

let count n ~where =
  let acc = ref 0 in
  iter n (fun g -> if where g then incr acc);
  !acc

let count_square_free n = count n ~where:(fun g -> not (Cycles.has_square g))

let count_triangle_free n = count n ~where:(fun g -> not (Cycles.has_triangle g))

let count_bipartite_between ~half =
  let n = 2 * half in
  count n ~where:(fun g ->
      let ok = ref true in
      Graph.iter_edges g (fun u v -> if (u <= half) = (v <= half) then ok := false);
      !ok)
