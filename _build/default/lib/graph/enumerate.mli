(** Exhaustive enumeration of labelled graphs on [1..n].

    Lemma 1 of the paper bounds what any frugal one-round protocol can
    reconstruct by [log g(n) = O(n log n)] where [g(n)] counts the family.
    These enumerators make the counting argument concrete at small [n]:
    counting square-free graphs exhibits the [2^Theta(n^{3/2})] growth
    from Kleitman–Winston that the impossibility proofs lean on.

    There are [2^(n(n-1)/2)] labelled graphs, so [n <= 7] is the practical
    envelope for full sweeps (2^21 graphs); [n = 8] (2^28) is minutes, not
    seconds. *)

(** [iter n f] applies [f] to every labelled graph on [1..n], in
    edge-mask order.
    @raise Invalid_argument if [n < 0] or [n > 10] (guard against
    accidental explosion). *)
val iter : int -> (Graph.t -> unit) -> unit

(** [count n ~where] counts graphs satisfying the predicate. *)
val count : int -> where:(Graph.t -> bool) -> int

(** [count_square_free n] counts labelled graphs with no 4-cycle. *)
val count_square_free : int -> int

(** [count_triangle_free n] counts labelled graphs with no triangle. *)
val count_triangle_free : int -> int

(** [count_bipartite_between ~half] counts the bipartite graphs with fixed
    parts [{1..half}] and [{half+1..2*half}] — there are [2^(half^2)];
    used to sanity-check Theorem 3's counting step. *)
val count_bipartite_between : half:int -> int

(** [all_edge_slots n] is the list of vertex pairs [(u, v)], [u < v], in
    the mask order used by {!iter}; exposed for tests. *)
val all_edge_slots : int -> (int * int) list
