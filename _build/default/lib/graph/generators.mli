(** Graph family generators.

    Deterministic families take no state; random families take an explicit
    [Random.State.t] so experiments are reproducible from seeds.  All
    generators return labelled graphs on [1..n]; where a class has a
    natural construction order, labels follow it (useful when tests want a
    known elimination order).

    Degeneracy cheat-sheet (exercised by tests): trees/forests 1, maximal
    outerplanar 2, [k]-trees and Apollonian networks [k] (3), grids 2,
    hypercube of dimension [d] has degeneracy [d]. *)

val path : int -> Graph.t
val cycle : int -> Graph.t
val complete : int -> Graph.t

(** [complete_bipartite a b] has parts [{1..a}] and [{a+1..a+b}]. *)
val complete_bipartite : int -> int -> Graph.t

(** [star n] is [K_{1,n-1}] centred on vertex 1. *)
val star : int -> Graph.t

(** [wheel n] is a cycle on [2..n] plus hub 1; requires [n >= 4]. *)
val wheel : int -> Graph.t

(** [grid w h] is the [w] by [h] king-free grid; vertex [(x, y)] (0-based)
    is labelled [y*w + x + 1]. *)
val grid : int -> int -> Graph.t

(** [torus w h] wraps the grid in both directions; [w, h >= 3] to stay
    simple. *)
val torus : int -> int -> Graph.t

(** [hypercube d] is the [d]-cube on [2^d] vertices; vertex labels are
    [bits + 1]. *)
val hypercube : int -> Graph.t

val petersen : unit -> Graph.t

(** [complete_binary_tree n] on [n] vertices with root 1, children of [i]
    at [2i] and [2i + 1]. *)
val complete_binary_tree : int -> Graph.t

(** [caterpillar ~spine ~legs] is a path of [spine] vertices with [legs]
    pendant leaves on each spine vertex. *)
val caterpillar : spine:int -> legs:int -> Graph.t

(** [gnp rng n p] is Erdős–Rényi [G(n, p)]. *)
val gnp : Random.State.t -> int -> float -> Graph.t

(** [random_tree rng n] is uniform over labelled trees (Prüfer decode). *)
val random_tree : Random.State.t -> int -> Graph.t

(** [random_forest rng n ~trees] partitions [1..n] into [trees] groups
    and builds a random tree on each.
    @raise Invalid_argument if [trees < 1] or [trees > n]. *)
val random_forest : Random.State.t -> int -> trees:int -> Graph.t

(** [random_k_degenerate rng n ~k] builds vertices in label order, each
    new vertex choosing up to [k] random earlier neighbours (exactly
    [min k (i-1)] for vertex [i], so the graph is dense in its class).
    The natural order [n, n-1, ..., 1] is a witness of degeneracy ≤ k. *)
val random_k_degenerate : Random.State.t -> int -> k:int -> Graph.t

(** [random_k_tree rng n ~k] is a random [k]-tree: a [(k+1)]-clique plus
    vertices each completing a random existing [k]-clique.  Treewidth and
    degeneracy exactly [k] (for [n > k]).
    @raise Invalid_argument if [n < k + 1]. *)
val random_k_tree : Random.State.t -> int -> k:int -> Graph.t

(** [random_apollonian rng n] is a random planar 3-tree (Apollonian
    network): repeated insertion of a vertex into a random triangular
    face.  Planar, degeneracy 3.  Requires [n >= 3]. *)
val random_apollonian : Random.State.t -> int -> Graph.t

(** [random_maximal_outerplanar rng n] triangulates the polygon
    [1 - 2 - ... - n - 1] with random ears; degeneracy 2.  Requires
    [n >= 3]. *)
val random_maximal_outerplanar : Random.State.t -> int -> Graph.t

(** [random_bipartite rng ~left ~right p] keeps each of the [left*right]
    cross edges independently with probability [p]; parts are
    [{1..left}] and [{left+1..left+right}]. *)
val random_bipartite : Random.State.t -> left:int -> right:int -> float -> Graph.t

(** [random_connected rng n p] draws [G(n, p)] and, if disconnected, adds
    one random edge between consecutive components, yielding a connected
    graph that is [G(n, p)] plus a sparse patch. *)
val random_connected : Random.State.t -> int -> float -> Graph.t

(** [random_square_free rng n ~attempts] draws edges in random order,
    keeping an edge when it closes no 4-cycle; a maximal-ish square-free
    graph used by the Theorem 1 experiments. *)
val random_square_free : Random.State.t -> int -> attempts:int -> Graph.t

(** [random_regular rng n ~d] samples a simple [d]-regular graph by the
    pairing model with rejection.
    @raise Invalid_argument if [n * d] is odd or [d >= n].  May loop for
    dense parameters; intended for [d <= ~8]. *)
val random_regular : Random.State.t -> int -> d:int -> Graph.t
