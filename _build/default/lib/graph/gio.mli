(** Graph serialization: edge lists, Graphviz DOT, and graph6.

    graph6 is the standard compact ASCII interchange format (McKay's
    nauty): useful for pasting reconstructed topologies into external
    tools, and its encoder/decoder pair doubles as a strong round-trip
    test for the graph structure itself. *)

(** [to_edge_list g] is a line-oriented rendering: first line ["n m"],
    then one ["u v"] line per edge with [u < v]. *)
val to_edge_list : Graph.t -> string

(** [of_edge_list s] parses {!to_edge_list} output.
    @raise Invalid_argument on malformed input. *)
val of_edge_list : string -> Graph.t

(** [to_dot g] renders an undirected Graphviz graph. *)
val to_dot : ?name:string -> Graph.t -> string

(** [to_graph6 g] encodes in graph6 (supports [n <= 258047]).
    @raise Invalid_argument beyond the supported range. *)
val to_graph6 : Graph.t -> string

(** [of_graph6 s] decodes a graph6 string.
    @raise Invalid_argument on malformed input. *)
val of_graph6 : string -> Graph.t
