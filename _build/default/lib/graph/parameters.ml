let average_degree g =
  let n = Graph.order g in
  if n = 0 then 0.0 else 2.0 *. float_of_int (Graph.size g) /. float_of_int n

let density g =
  let n = Graph.order g in
  if n < 2 then 0.0
  else float_of_int (Graph.size g) /. float_of_int (n * (n - 1) / 2)

let h_index g =
  let degrees = List.sort (fun a b -> Stdlib.compare b a) (List.map (Graph.degree g) (Graph.vertices g)) in
  let rec go h = function
    | d :: rest when d >= h + 1 -> go (h + 1) rest
    | _ -> h
  in
  go 0 degrees

let max_core g =
  let cores = Degeneracy.core_numbers g in
  Array.fold_left max 0 cores

let arboricity_bounds g =
  let d = Degeneracy.degeneracy g in
  if d = 0 then (0, 0) else (((d + 1) + 1) / 2, d)

let summary g =
  Printf.sprintf
    "n=%d m=%d avg-deg=%.2f density=%.3f max-deg=%d h-index=%d degeneracy=%d gen-degeneracy=%d"
    (Graph.order g) (Graph.size g) (average_degree g) (density g) (Graph.max_degree g)
    (h_index g) (Degeneracy.degeneracy g)
    (Degeneracy.generalized_degeneracy g)
