(** Sparseness parameters around degeneracy.

    The paper situates degeneracy in a hierarchy — forests 1, planar
    ≤ 5, treewidth-k graphs ≤ k, H-minor-free bounded.  These helpers
    expose the neighbouring quantities so experiments and the CLI can
    report where an input sits. *)

(** [average_degree g] is [2m / n]; [0.] for the empty graph. *)
val average_degree : Graph.t -> float

(** [density g] is [m / (n choose 2)]; [0.] when undefined. *)
val density : Graph.t -> float

(** [h_index g] is the largest [h] with at least [h] vertices of degree
    at least [h] — sits between average degree / 2 and max degree, and
    upper-bounds nothing but is a familiar sparseness proxy. *)
val h_index : Graph.t -> int

(** [max_core g] is the largest [j] with a non-empty [j]-core — equal to
    the degeneracy; exposed as a cross-check. *)
val max_core : Graph.t -> int

(** [arboricity_bounds g] is [(lo, hi)] with
    [lo = max over computed cores of ceil((j + 1) / 2)]-style bound via
    degeneracy: [ceil((d + 1) / 2) <= arboricity <= d] for degeneracy
    [d] (Nash-Williams sandwich).  [(0, 0)] on edgeless graphs. *)
val arboricity_bounds : Graph.t -> int * int

(** [summary g] is a one-line human-readable parameter report. *)
val summary : Graph.t -> string
