let pair_label ~n1 a b = ((b - 1) * n1) + a

let unpair_label ~n1 v =
  let b = ((v - 1) / n1) + 1 in
  let a = ((v - 1) mod n1) + 1 in
  (a, b)

let build g h edge_rule =
  let n1 = Graph.order g and n2 = Graph.order h in
  let b = Graph.Builder.create (n1 * n2) in
  (* Enumerate unordered pairs of product vertices via the rule, which
     only consults component adjacency. *)
  for a1 = 1 to n1 do
    for b1 = 1 to n2 do
      for a2 = 1 to n1 do
        for b2 = 1 to n2 do
          let u = pair_label ~n1 a1 b1 and v = pair_label ~n1 a2 b2 in
          if u < v && edge_rule a1 b1 a2 b2 then Graph.Builder.add_edge b u v
        done
      done
    done
  done;
  Graph.Builder.build b

let cartesian g h =
  build g h (fun a1 b1 a2 b2 ->
      (a1 = a2 && Graph.has_edge h b1 b2) || (b1 = b2 && Graph.has_edge g a1 a2))

let tensor g h =
  build g h (fun a1 b1 a2 b2 -> Graph.has_edge g a1 a2 && Graph.has_edge h b1 b2)

let strong g h =
  build g h (fun a1 b1 a2 b2 ->
      (a1 = a2 && Graph.has_edge h b1 b2)
      || (b1 = b2 && Graph.has_edge g a1 a2)
      || (Graph.has_edge g a1 a2 && Graph.has_edge h b1 b2))

let power ~op g d =
  if d < 1 then invalid_arg "Product.power: need d >= 1";
  let rec go acc i = if i = d then acc else go (op acc g) (i + 1) in
  go g 1
