(** Graph products.

    The interconnection topologies the model cares about are mostly
    products: grids are path products, tori are cycle products, the
    hypercube is an iterated [K2] product.  Besides generating them
    uniformly, products give the test suite strong structural oracles
    ([grid w h = path w □ path h], etc.).

    Vertex [(a, b)] of a product of graphs with [n1] and [n2] vertices
    is labelled [(b - 1) * n1 + a]. *)

(** [cartesian g h] — edges between [(a,b)] and [(a',b')] when
    ([a = a'] and [b ~ b']) or ([b = b'] and [a ~ a']). *)
val cartesian : Graph.t -> Graph.t -> Graph.t

(** [tensor g h] — edges when [a ~ a'] and [b ~ b'] (categorical
    product). *)
val tensor : Graph.t -> Graph.t -> Graph.t

(** [strong g h] — union of the two above. *)
val strong : Graph.t -> Graph.t -> Graph.t

(** [pair_label ~n1 a b] and [unpair_label ~n1 v] convert between
    coordinates and labels. *)
val pair_label : n1:int -> int -> int -> int

val unpair_label : n1:int -> int -> int * int

(** [power ~op g d] iterates a product [d - 1] times ([power g 1 = g]).
    @raise Invalid_argument if [d < 1]. *)
val power : op:(Graph.t -> Graph.t -> Graph.t) -> Graph.t -> int -> Graph.t
