let forest_of_edges ~n edges =
  let uf = Union_find.create n in
  List.fold_left
    (fun acc (u, v) ->
      if u < 1 || u > n || v < 1 || v > n then
        invalid_arg "Spanning.forest_of_edges: endpoint out of range";
      if u = v then invalid_arg "Spanning.forest_of_edges: self-loop";
      if Union_find.union uf (u - 1) (v - 1) then (min u v, max u v) :: acc else acc)
    [] edges
  |> List.rev

let spanning_forest g = forest_of_edges ~n:(Graph.order g) (Graph.edges g)

let is_forest g =
  Graph.size g + Connectivity.component_count g = Graph.order g
