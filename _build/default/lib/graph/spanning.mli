(** Spanning forests.

    The coalition connectivity protocol (paper's conclusion) rests on the
    forest-union lemma: if the edge set is partitioned and each class is
    replaced by a spanning forest of the subgraph it induces, the union
    preserves connectivity.  {!forest_of_edges} is the per-coalition step;
    {!spanning_forest} the plain graph version. *)

(** [spanning_forest g] is a maximal cycle-free subset of [g]'s edges
    ([n - c] edges for [c] components), each as [(u, v)] with [u < v]. *)
val spanning_forest : Graph.t -> (int * int) list

(** [forest_of_edges ~n edges] computes a spanning forest of the graph on
    [1..n] whose edge multiset is [edges] (duplicates and either
    orientation tolerated).
    @raise Invalid_argument on loops or out-of-range endpoints. *)
val forest_of_edges : n:int -> (int * int) list -> (int * int) list

(** [is_forest g] tests acyclicity by edge count per component. *)
val is_forest : Graph.t -> bool
