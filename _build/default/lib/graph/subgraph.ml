(* Backtracking embedding search with degree pruning.  Pattern vertices
   are assigned in descending-degree order so dense pattern vertices fail
   fast. *)

let embedding_search ~pattern g ~induced ~on_found =
  let np = Graph.order pattern and ng = Graph.order g in
  if np = 0 then on_found [||]
  else if np <= ng then begin
    (* Assignment order: pattern vertices by descending degree, ties by
       connectivity to already-placed vertices (simple static order keeps
       the code clear; degree order alone prunes well at these sizes). *)
    let order =
      List.sort
        (fun a b -> Stdlib.compare (Graph.degree pattern b) (Graph.degree pattern a))
        (Graph.vertices pattern)
      |> Array.of_list
    in
    let assignment = Array.make np 0 in
    (* assignment.(p - 1) = image of pattern vertex p, 0 if unset *)
    let used = Array.make ng false in
    let compatible p v =
      (* All already-assigned pattern neighbours/non-neighbours of p must
         map consistently. *)
      Graph.degree pattern p <= Graph.degree g v
      && List.for_all
           (fun q ->
             let img = assignment.(q - 1) in
             img = 0 || Graph.has_edge g v img)
           (Graph.neighbors pattern p)
      && ((not induced)
         ||
         let ok = ref true in
         for q = 1 to np do
           let img = assignment.(q - 1) in
           if img <> 0 && q <> p && (not (Graph.has_edge pattern p q)) && Graph.has_edge g v img
           then ok := false
         done;
         !ok)
    in
    let rec place idx =
      if idx >= np then on_found (Array.copy assignment)
      else begin
        let p = order.(idx) in
        for v = 1 to ng do
          if (not used.(v - 1)) && compatible p v then begin
            assignment.(p - 1) <- v;
            used.(v - 1) <- true;
            place (idx + 1);
            assignment.(p - 1) <- 0;
            used.(v - 1) <- false
          end
        done
      end
    in
    place 0
  end

exception Found of int array

let find ~pattern g =
  match embedding_search ~pattern g ~induced:false ~on_found:(fun a -> raise (Found a)) with
  | () -> None
  | exception Found a -> Some a

let contains ~pattern g = find ~pattern g <> None

let count ~pattern g =
  let acc = ref 0 in
  embedding_search ~pattern g ~induced:false ~on_found:(fun _ -> incr acc);
  !acc

let induced_contains ~pattern g =
  match embedding_search ~pattern g ~induced:true ~on_found:(fun a -> raise (Found a)) with
  | () -> false
  | exception Found _ -> true

let path_pattern n = Generators.path n

let cycle_pattern n = Generators.cycle n

let clique_pattern n = Generators.complete n

let star_pattern n = Generators.star n
