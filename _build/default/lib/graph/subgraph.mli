(** Generic (not necessarily induced) subgraph containment.

    Section II of the paper opens with the general question "does [G]
    admit [S] as a subgraph?" and proves hardness for two instances
    (squares, triangles).  This module decides the question for any
    small pattern by backtracking, so experiments can sweep over
    patterns and tests can cross-check the specialized detectors in
    {!Cycles}. *)

(** [contains ~pattern g] is true when some injective map from the
    pattern's vertices to [g]'s vertices sends every pattern edge to an
    edge of [g].  Exponential in [order pattern]; intended for patterns
    of at most ~8 vertices. *)
val contains : pattern:Graph.t -> Graph.t -> bool

(** [find ~pattern g] returns a witness embedding: position [i - 1]
    holds the [g]-vertex that pattern vertex [i] maps to. *)
val find : pattern:Graph.t -> Graph.t -> int array option

(** [count ~pattern g] counts the injective embeddings (labelled copies
    — every automorphism of the pattern is counted separately). *)
val count : pattern:Graph.t -> Graph.t -> int

(** [induced_contains ~pattern g] requires non-edges to map to
    non-edges as well (induced containment). *)
val induced_contains : pattern:Graph.t -> Graph.t -> bool

(** Common patterns, for convenience and the hardness sweep. *)
val path_pattern : int -> Graph.t

val cycle_pattern : int -> Graph.t
val clique_pattern : int -> Graph.t
val star_pattern : int -> Graph.t
