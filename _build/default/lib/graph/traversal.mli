(** Breadth-first and depth-first traversal. *)

(** [bfs_distances g src] is an array [d] with [d.(v - 1)] the hop
    distance from [src] to [v], or [-1] when unreachable.
    @raise Invalid_argument if [src] is out of range. *)
val bfs_distances : Graph.t -> int -> int array

(** [bfs_order g src] is the list of vertices reachable from [src] in
    visit order, starting with [src]. *)
val bfs_order : Graph.t -> int -> int list

(** [bfs_tree g src] is the list of tree edges [(parent, child)]
    discovered by the BFS. *)
val bfs_tree : Graph.t -> int -> (int * int) list

(** [dfs_order g src] is the preorder of the DFS from [src]. *)
val dfs_order : Graph.t -> int -> int list
