(* Subset DP over elimination orders, with bitmask adjacency.  All sets
   are int masks over bits 0..n-1 (vertex v <-> bit v-1). *)

let adjacency_masks g =
  let n = Graph.order g in
  Array.init n (fun i ->
      List.fold_left (fun acc u -> acc lor (1 lsl (u - 1))) 0 (Graph.neighbors g (i + 1)))

let popcount =
  let rec go acc m = if m = 0 then acc else go (acc + 1) (m land (m - 1)) in
  fun m -> go 0 m

(* Vertices outside [s] (and /= v) reachable from v through s only. *)
let cost_mask adj s v =
  let self = 1 lsl (v - 1) in
  let rec go visited frontier =
    if frontier = 0 then visited
    else begin
      let visited = visited lor frontier in
      (* Only frontier vertices inside the eliminated set conduct. *)
      let conduct = frontier land s in
      let expand = ref 0 in
      let m = ref conduct in
      while !m <> 0 do
        let bit = !m land - !m in
        let w = popcount (bit - 1) in
        expand := !expand lor adj.(w);
        m := !m land lnot bit
      done;
      go visited (!expand land lnot visited)
    end
  in
  let visited = go self adj.(v - 1) in
  popcount (visited land lnot s land lnot self)

let elimination_cost g ~eliminated v =
  let adj = adjacency_masks g in
  let s = List.fold_left (fun acc u -> acc lor (1 lsl (u - 1))) 0 eliminated in
  if s land (1 lsl (v - 1)) <> 0 then
    invalid_arg "Treewidth.elimination_cost: vertex already eliminated";
  cost_mask adj s v

let width_of_order g order =
  let adj = adjacency_masks g in
  let s = ref 0 and worst = ref 0 in
  List.iter
    (fun v ->
      worst := max !worst (cost_mask adj !s v);
      s := !s lor (1 lsl (v - 1)))
    order;
  !worst

let treewidth g =
  let n = Graph.order g in
  if n > 22 then invalid_arg "Treewidth.treewidth: order above the 2^n DP guard";
  if n = 0 then 0
  else begin
    let adj = adjacency_masks g in
    let size = 1 lsl n in
    let tw = Bytes.make size '\000' in
    (* tw.(s) = minimal width of an order eliminating exactly the set s
       first; widths fit a byte for n <= 22. *)
    for s = 1 to size - 1 do
      let best = ref max_int in
      let m = ref s in
      while !m <> 0 do
        let bit = !m land - !m in
        let v = popcount (bit - 1) + 1 in
        let rest = s land lnot bit in
        let candidate =
          max (Char.code (Bytes.get tw rest)) (cost_mask adj rest v)
        in
        if candidate < !best then best := candidate;
        m := !m land lnot bit
      done;
      Bytes.set tw s (Char.chr !best)
    done;
    Char.code (Bytes.get tw (size - 1))
  end
