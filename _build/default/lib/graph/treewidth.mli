(** Exact treewidth of small graphs.

    The paper places degeneracy below treewidth ("the degeneracy of a
    graph is upper bounded by its treewidth") and motivates the
    degeneracy protocol through treewidth-bounded classes.  This module
    computes exact treewidth by the elimination-order dynamic program of
    Bodlaender–Fomin–Koster–Kratsch–Thilikos over vertex subsets
    ([O(2^n · n^2)] time and [O(2^n)] space), so tests and experiments
    can verify those relationships on concrete graphs.

    For a set [S] of already-eliminated vertices and a next victim [v],
    the cost of eliminating [v] is the number of vertices outside
    [S ∪ {v}] reachable from [v] through [S] — exactly [v]'s degree in
    the graph where [S] has been eliminated with fill-in. *)

(** [treewidth g] — exact.  Guarded to [order g <= 22] (the table has
    [2^n] entries).
    @raise Invalid_argument beyond the guard. *)
val treewidth : Graph.t -> int

(** [elimination_cost g ~eliminated v] is the DP's step cost: the number
    of vertices outside [eliminated] and different from [v] reachable
    from [v] using intermediate vertices taken only from [eliminated].
    Exposed for tests. *)
val elimination_cost : Graph.t -> eliminated:int list -> int -> int

(** [width_of_order g order] is the width of a concrete elimination
    order (head eliminated first): the max step cost.  Any order's width
    upper-bounds the treewidth, with equality for some order. *)
val width_of_order : Graph.t -> int list -> int
