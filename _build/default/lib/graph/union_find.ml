type t = { parent : int array; rank : int array; mutable sets : int }

let create n = { parent = Array.init n (fun i -> i); rank = Array.make n 0; sets = n }

let rec find u i =
  let p = u.parent.(i) in
  if p = i then i
  else begin
    let root = find u p in
    u.parent.(i) <- root;
    root
  end

let union u i j =
  let ri = find u i and rj = find u j in
  if ri = rj then false
  else begin
    let ri, rj = if u.rank.(ri) < u.rank.(rj) then (rj, ri) else (ri, rj) in
    u.parent.(rj) <- ri;
    if u.rank.(ri) = u.rank.(rj) then u.rank.(ri) <- u.rank.(ri) + 1;
    u.sets <- u.sets - 1;
    true
  end

let same u i j = find u i = find u j

let count u = u.sets
