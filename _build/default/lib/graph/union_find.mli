(** Disjoint-set forest with union by rank and path compression. *)

type t

(** [create n] has singletons [0..n-1]. *)
val create : int -> t

(** [find u i] is the representative of [i]'s set. *)
val find : t -> int -> int

(** [union u i j] merges the sets of [i] and [j]; returns [true] when the
    sets were distinct. *)
val union : t -> int -> int -> bool

(** [same u i j] tests whether [i] and [j] share a set. *)
val same : t -> int -> int -> bool

(** [count u] is the current number of sets. *)
val count : t -> int
