lib/sketch/field.ml:
