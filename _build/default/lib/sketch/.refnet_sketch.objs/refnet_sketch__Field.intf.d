lib/sketch/field.mli:
