lib/sketch/hash.ml: Array Field Random
