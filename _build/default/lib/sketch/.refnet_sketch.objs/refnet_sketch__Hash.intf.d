lib/sketch/hash.mli: Random
