lib/sketch/l0_sampler.ml: Array Field Hash One_sparse Random
