lib/sketch/l0_sampler.mli: Random Refnet_bits
