lib/sketch/one_sparse.ml: Codes Field Refnet_bits
