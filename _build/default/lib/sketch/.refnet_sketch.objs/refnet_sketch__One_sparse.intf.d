lib/sketch/one_sparse.mli: Refnet_bits
