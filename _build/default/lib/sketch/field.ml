type t = int

let p = (1 lsl 31) - 1

let of_int v =
  let r = v mod p in
  if r < 0 then r + p else r

let zero = 0
let one = 1

let add a b =
  let s = a + b in
  if s >= p then s - p else s

let sub a b = if a >= b then a - b else a + p - b

let neg a = if a = 0 then 0 else p - a

(* a, b < 2^31 so a * b < 2^62 fits. *)
let mul a b = a * b mod p

let pow b e =
  if e < 0 then invalid_arg "Field.pow: negative exponent";
  let rec go acc b e =
    if e = 0 then acc
    else go (if e land 1 = 1 then mul acc b else acc) (mul b b) (e lsr 1)
  in
  go one b e

let inv x = if x = 0 then raise Division_by_zero else pow x (p - 2)

let equal (a : int) (b : int) = a = b
