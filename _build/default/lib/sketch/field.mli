(** Arithmetic in GF(p) for the Mersenne prime [p = 2^31 - 1].

    The linear-sketch machinery needs a field where products of two
    elements still fit a native 63-bit integer ([p^2 < 2^62]), so the
    whole sketch path stays allocation-free. *)

type t = int
(** Invariant: [0 <= x < p]. *)

val p : int

(** [of_int v] reduces an arbitrary native integer (possibly negative). *)
val of_int : int -> t

val zero : t
val one : t
val add : t -> t -> t
val sub : t -> t -> t
val neg : t -> t
val mul : t -> t -> t

(** [pow b e] for [e >= 0]. *)
val pow : t -> int -> t

(** [inv x] — multiplicative inverse. @raise Division_by_zero on zero. *)
val inv : t -> t

(** [equal] on canonical representatives. *)
val equal : t -> t -> bool
