type t = { a : int; b : int }

let create rng =
  let a = 1 + Random.State.full_int rng (Field.p - 1) in
  let b = Random.State.full_int rng Field.p in
  { a; b }

let apply h x = Field.add (Field.mul h.a (Field.of_int x)) h.b

let level h x ~max_level =
  let v = apply h x in
  let rec go j v = if j >= max_level || v land 1 = 1 then j else go (j + 1) (v lsr 1) in
  go 0 v

let seed_family ~seed ~count =
  let rng = Random.State.make [| 0x53e7c4; seed |] in
  Array.init count (fun _ -> create rng)
