(** Seeded pairwise-independent hash functions over GF(2^31 - 1).

    [h(x) = a x + b mod p] with [(a, b)] drawn from the seed.  Public
    randomness in the sketching protocol is exactly a shared seed: every
    node derives the same hash functions from it, which is what makes
    the node sketches summable at the referee. *)

type t

(** [create rng] draws [a <> 0] and [b]. *)
val create : Random.State.t -> t

(** [apply h x] for [x >= 0]. *)
val apply : t -> int -> int

(** [level h x ~max_level] is the sub-sampling level of [x]: the number
    of low-order zero bits of [apply h x], capped at [max_level].  Item
    [x] participates in levels [0 .. level]; a uniform hash lands at
    level [j] with probability about [2^-j]. *)
val level : t -> int -> max_level:int -> int

(** [seed_family ~seed ~count] derives [count] independent hash
    functions deterministically from an integer seed — the protocol's
    public coin tape. *)
val seed_family : seed:int -> count:int -> t array
