type t = { hash : Hash.t; z : int; sketches : One_sparse.t array }

let create ~rng ~levels =
  if levels < 1 then invalid_arg "L0_sampler.create: need at least one level";
  let hash = Hash.create rng in
  let z = 1 + Random.State.full_int rng (Field.p - 1) in
  { hash; z; sketches = Array.init levels (fun _ -> One_sparse.create ~z) }

let levels t = Array.length t.sketches

let update t ~index ~delta =
  let l = Hash.level t.hash index ~max_level:(levels t - 1) in
  let sketches =
    Array.mapi
      (fun j s -> if j <= l then One_sparse.update s ~index ~delta else s)
      t.sketches
  in
  { t with sketches }

let combine a b =
  if a.hash <> b.hash || a.z <> b.z || levels a <> levels b then
    invalid_arg "L0_sampler.combine: samplers from different seed positions";
  { a with sketches = Array.map2 One_sparse.combine a.sketches b.sketches }

let sample t =
  (* Prefer sparser (higher) levels: scan from the top. *)
  let rec go j =
    if j < 0 then None
    else begin
      match One_sparse.recover t.sketches.(j) with
      | Some hit -> Some hit
      | None -> go (j - 1)
    end
  in
  go (levels t - 1)

let write w t = Array.iter (fun s -> One_sparse.write w s) t.sketches

let read r ~template =
  {
    template with
    sketches = Array.map (fun _ -> One_sparse.read r ~z:template.z) template.sketches;
  }

let bits ~levels = levels * One_sparse.bits
