(** ℓ₀-sampler: a linear sketch from which one uniform-ish non-zero
    coordinate of a vector can be recovered with constant probability.

    Construction (Ahn–Guha–McGregor style): a seeded hash assigns every
    index a geometric level ([Pr\[level >= j\] ~ 2^-j]); the sampler keeps
    one {!One_sparse} sketch per level over the indices of at least that
    level.  If the vector has [s] non-zeros, the level ~[log2 s] keeps
    about one of them, and its 1-sparse recovery succeeds.

    Everything is linear in the vector, so {!combine} of two nodes'
    samplers equals the sampler of the summed vector — the heart of the
    one-round connectivity protocol: the referee adds up the samplers of
    a whole component and samples an outgoing edge, internal edges
    having cancelled. *)

type t

(** [create ~rng ~levels] draws the hash and the fingerprint point.
    [levels] should be about [log2 dim + 2]. *)
val create : rng:Random.State.t -> levels:int -> t

(** [update t ~index ~delta] — linear coordinate update. *)
val update : t -> index:int -> delta:int -> t

(** [combine a b] — requires both built by the same [create] call (same
    seed position), enforced structurally.
    @raise Invalid_argument otherwise. *)
val combine : t -> t -> t

(** [sample t] is [Some (index, value)] when some level's sketch passes
    1-sparse recovery; [None] when the vector looks zero or recovery
    fails at every level. *)
val sample : t -> (int * int) option

(** [levels t]. *)
val levels : t -> int

(** Serialization: [levels * One_sparse.bits] bits; the hash/fingerprint
    parameters travel via the shared seed, not the message. *)
val write : Refnet_bits.Bit_writer.t -> t -> unit

(** [read r ~template] reads a sampler serialized by {!write}, taking
    hash parameters from [template] (a fresh sampler from the same seed
    position). *)
val read : Refnet_bits.Bit_reader.t -> template:t -> t

val bits : levels:int -> int
