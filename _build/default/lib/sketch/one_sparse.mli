(** 1-sparse recovery sketch.

    A linear summary of an integer vector [x] (indices [0 .. dim - 1])
    from which the single non-zero coordinate can be recovered exactly
    when [x] is 1-sparse, and non-1-sparseness is detected with
    probability [1 - deg/p] via a Schwartz–Zippel style fingerprint:

    - [s0 = sum_i x_i]
    - [s1 = sum_i i * x_i]
    - [s2 = sum_i x_i * z^i]  in GF(p), for a seeded evaluation point [z].

    If [x = c * e_i] then [s1 = c * i] and [s2 = c * z^i]; the recovery
    checks the fingerprint before answering.  All operations are linear,
    so sketches of different vectors add componentwise — the property
    the connectivity protocol exploits when the referee sums the
    sketches of a whole component. *)

type t

(** [create ~z] is the zero sketch with evaluation point [z]. *)
val create : z:int -> t

(** [update t ~index ~delta] adds [delta] (usually [+1] or [-1]) to
    coordinate [index].
    @raise Invalid_argument on negative index. *)
val update : t -> index:int -> delta:int -> t

(** [combine a b] is the sketch of the summed vectors.
    @raise Invalid_argument if the evaluation points differ. *)
val combine : t -> t -> t

(** [is_zero t] — true when the sketch is identically zero (the vector
    is zero, or an improbable fingerprint collision). *)
val is_zero : t -> bool

(** [recover t] is [Some (index, value)] when the sketch passes the
    1-sparse fingerprint test, [None] otherwise.  Values are returned
    in the symmetric range [-(p-1)/2 .. (p-1)/2] (edge vectors only ever
    hold ±1 and small sums). *)
val recover : t -> (int * int) option

(** Serialization: exactly [3 * 31] bits. *)
val write : Refnet_bits.Bit_writer.t -> t -> unit

val read : Refnet_bits.Bit_reader.t -> z:int -> t

val bits : int
