test/test_bigint.ml: Alcotest Bigint List Nat Printf QCheck2 QCheck_alcotest Refnet_bigint
