test/test_bipartite.ml: Alcotest Bipartite Connectivity Generators Graph Hashtbl List QCheck2 QCheck_alcotest Random Refnet_graph
