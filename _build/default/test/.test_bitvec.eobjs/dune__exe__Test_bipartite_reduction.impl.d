test/test_bipartite_reduction.ml: Alcotest Bipartite Connectivity Core Generators Graph List QCheck2 QCheck_alcotest Random Refnet_graph
