test/test_bipartite_reduction.mli:
