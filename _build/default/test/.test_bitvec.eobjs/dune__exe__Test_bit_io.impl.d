test/test_bit_io.ml: Alcotest Bit_reader Bit_writer Bitvec Codes List Printf QCheck2 QCheck_alcotest Refnet_bits
