test/test_bit_io.mli:
