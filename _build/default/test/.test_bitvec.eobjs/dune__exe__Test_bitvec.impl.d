test/test_bitvec.ml: Alcotest Bitvec List QCheck2 QCheck_alcotest Refnet_bits
