test/test_bounded_degree.ml: Alcotest Core Generators Graph List QCheck2 QCheck_alcotest Random Refnet_graph
