test/test_bounded_degree.mli:
