test/test_connectivity_parts.ml: Alcotest Array Connectivity Core Generators Graph List Printf QCheck2 QCheck_alcotest Random Refnet_graph
