test/test_connectivity_parts.mli:
