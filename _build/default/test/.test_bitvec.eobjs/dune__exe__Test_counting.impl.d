test/test_counting.ml: Alcotest Core Float List
