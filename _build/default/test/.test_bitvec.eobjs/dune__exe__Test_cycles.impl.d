test/test_cycles.ml: Alcotest Cycles Generators Graph List QCheck2 QCheck_alcotest Random Refnet_graph
