test/test_degeneracy.ml: Alcotest Array Degeneracy Generators Graph Hashtbl List QCheck2 QCheck_alcotest Random Refnet_graph
