test/test_degeneracy.mli:
