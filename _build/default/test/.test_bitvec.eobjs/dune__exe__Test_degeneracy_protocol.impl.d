test/test_degeneracy_protocol.ml: Alcotest Core Degeneracy Generators Graph List QCheck2 QCheck_alcotest Random Refnet_algebra Refnet_graph
