test/test_degeneracy_protocol.mli:
