test/test_easy_protocols.ml: Alcotest Core Generators Graph List QCheck2 QCheck_alcotest Random Refnet_graph
