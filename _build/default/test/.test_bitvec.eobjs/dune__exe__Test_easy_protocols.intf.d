test/test_easy_protocols.mli:
