test/test_enumerate.ml: Alcotest Connectivity Cycles Enumerate Gio Hashtbl List Printf Refnet_graph Spanning
