test/test_fooling.ml: Alcotest Array Core Cycles Degeneracy Enumerate Generators Graph List Printf QCheck2 QCheck_alcotest Refnet_graph
