test/test_fooling.mli:
