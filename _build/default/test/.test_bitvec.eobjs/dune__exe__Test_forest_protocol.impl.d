test/test_forest_protocol.ml: Alcotest Core Cycles Generators Graph List QCheck2 QCheck_alcotest Random Refnet_graph
