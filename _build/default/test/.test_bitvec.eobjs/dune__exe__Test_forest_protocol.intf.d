test/test_forest_protocol.mli:
