test/test_fuzz.ml: Alcotest Array Bitvec Core Generators Graph Hashtbl List Printexc Random Refnet_bits Refnet_graph Spanning
