test/test_gadgets.ml: Alcotest Core Cycles Distance Generators Graph List Printf QCheck2 QCheck_alcotest Random Refnet_graph
