test/test_generalized.ml: Alcotest Core Degeneracy Generators Graph List QCheck2 QCheck_alcotest Random Refnet_graph
