test/test_generalized.mli:
