test/test_generators.ml: Alcotest Bipartite Connectivity Cycles Degeneracy Distance Generators Graph List Printf Random Refnet_graph Spanning
