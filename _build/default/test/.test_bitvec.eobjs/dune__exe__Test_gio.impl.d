test/test_gio.ml: Alcotest Generators Gio Graph List QCheck2 QCheck_alcotest Random Refnet_graph String
