test/test_gio.mli:
