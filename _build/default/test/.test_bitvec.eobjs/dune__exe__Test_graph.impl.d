test/test_graph.ml: Alcotest Array Bitvec Graph List QCheck2 QCheck_alcotest Refnet_bits Refnet_graph
