test/test_model.ml: Alcotest Array Bit_reader Bit_writer Codes Core Generators Graph List Nat QCheck2 QCheck_alcotest Random Refnet_bigint Refnet_bits Refnet_graph
