test/test_multi_round.ml: Alcotest Array Core Degeneracy Generators Graph List QCheck2 QCheck_alcotest Random Refnet_graph
