test/test_multi_round.mli:
