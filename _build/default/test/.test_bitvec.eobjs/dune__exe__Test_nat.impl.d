test/test_nat.ml: Alcotest List Nat QCheck2 QCheck_alcotest Refnet_bigint String
