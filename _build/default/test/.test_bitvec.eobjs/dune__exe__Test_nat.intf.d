test/test_nat.mli:
