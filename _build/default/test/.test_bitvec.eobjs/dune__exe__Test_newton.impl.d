test/test_newton.ml: Alcotest Bigint Fmt List Newton Poly Printf QCheck2 QCheck_alcotest Refnet_algebra Refnet_bigint
