test/test_newton.mli:
