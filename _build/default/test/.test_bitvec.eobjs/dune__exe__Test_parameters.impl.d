test/test_parameters.ml: Alcotest Degeneracy Generators Graph List Parameters Refnet_graph String
