test/test_parameters.mli:
