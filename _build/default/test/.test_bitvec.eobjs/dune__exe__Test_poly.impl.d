test/test_poly.ml: Alcotest Array Bigint List Poly Printf QCheck2 QCheck_alcotest Refnet_algebra Refnet_bigint
