test/test_power_sum.ml: Alcotest Array List Nat Power_sum Printf QCheck2 QCheck_alcotest Refnet_algebra Refnet_bigint String Vandermonde
