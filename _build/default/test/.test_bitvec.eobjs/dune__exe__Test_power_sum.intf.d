test/test_power_sum.mli:
