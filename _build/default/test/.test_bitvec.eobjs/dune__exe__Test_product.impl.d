test/test_product.ml: Alcotest Bipartite Connectivity Core Degeneracy Distance Generators Graph List Printf Product QCheck2 QCheck_alcotest Random Refnet_graph
