test/test_protocol_search.ml: Alcotest Connectivity Core Cycles Enumerate List Refnet_graph Spanning
