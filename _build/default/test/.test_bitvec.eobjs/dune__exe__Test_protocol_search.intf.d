test/test_protocol_search.mli:
