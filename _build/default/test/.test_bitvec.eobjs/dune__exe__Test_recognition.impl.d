test/test_recognition.ml: Alcotest Connectivity Core Degeneracy Generators Graph List QCheck2 QCheck_alcotest Random Refnet_graph
