test/test_recognition.mli:
