test/test_reduction.ml: Alcotest Core Cycles Generators Graph List QCheck2 QCheck_alcotest Random Refnet_graph
