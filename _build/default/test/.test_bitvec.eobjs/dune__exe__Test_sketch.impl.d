test/test_sketch.ml: Alcotest Array Field Hash L0_sampler List One_sparse QCheck2 QCheck_alcotest Random Refnet_bits Refnet_sketch
