test/test_sketch_connectivity.ml: Alcotest Connectivity Core Generators Graph List Printf QCheck2 QCheck_alcotest Random Refnet_graph
