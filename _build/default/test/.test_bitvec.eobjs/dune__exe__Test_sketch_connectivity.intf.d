test/test_sketch_connectivity.mli:
