test/test_spanning.ml: Alcotest Array Connectivity Generators Graph List QCheck2 QCheck_alcotest Random Refnet_graph Spanning Union_find
