test/test_spanning.mli:
