test/test_subgraph.ml: Alcotest Array Cycles Generators Graph List Printf QCheck2 QCheck_alcotest Random Refnet_graph Subgraph
