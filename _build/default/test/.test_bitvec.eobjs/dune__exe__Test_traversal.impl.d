test/test_traversal.ml: Alcotest Array Connectivity Distance Generators Graph List QCheck2 QCheck_alcotest Random Refnet_graph Traversal
