test/test_treewidth.ml: Alcotest Cycles Degeneracy Generators Graph List Printf QCheck2 QCheck_alcotest Random Refnet_graph Treewidth
