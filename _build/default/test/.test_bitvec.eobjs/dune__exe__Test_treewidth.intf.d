test/test_treewidth.mli:
