open Refnet_bigint

let big = Alcotest.testable (fun fmt n -> Bigint.pp fmt n) Bigint.equal

let of_i = Bigint.of_int

let test_signs () =
  Alcotest.(check int) "pos" 1 (Bigint.sign (of_i 5));
  Alcotest.(check int) "neg" (-1) (Bigint.sign (of_i (-5)));
  Alcotest.(check int) "zero" 0 (Bigint.sign Bigint.zero);
  Alcotest.check big "neg" (of_i (-5)) (Bigint.neg (of_i 5));
  Alcotest.check big "abs" (of_i 5) (Bigint.abs (of_i (-5)))

let test_add_mixed_signs () =
  Alcotest.check big "3 + -5" (of_i (-2)) (Bigint.add (of_i 3) (of_i (-5)));
  Alcotest.check big "-3 + 5" (of_i 2) (Bigint.add (of_i (-3)) (of_i 5));
  Alcotest.check big "-3 + -5" (of_i (-8)) (Bigint.add (of_i (-3)) (of_i (-5)));
  Alcotest.check big "5 + -5" Bigint.zero (Bigint.add (of_i 5) (of_i (-5)))

let test_sub () =
  Alcotest.check big "3 - 5" (of_i (-2)) (Bigint.sub (of_i 3) (of_i 5));
  Alcotest.check big "-3 - -5" (of_i 2) (Bigint.sub (of_i (-3)) (of_i (-5)))

let test_mul_signs () =
  Alcotest.check big "-3 * 5" (of_i (-15)) (Bigint.mul (of_i (-3)) (of_i 5));
  Alcotest.check big "-3 * -5" (of_i 15) (Bigint.mul (of_i (-3)) (of_i (-5)));
  Alcotest.check big "0 * -5" Bigint.zero (Bigint.mul Bigint.zero (of_i (-5)))

let test_divmod_truncation () =
  (* Matches OCaml's native / and mod on all sign combinations. *)
  List.iter
    (fun (a, b) ->
      let q, r = Bigint.divmod (of_i a) (of_i b) in
      Alcotest.check big (Printf.sprintf "%d / %d" a b) (of_i (a / b)) q;
      Alcotest.check big (Printf.sprintf "%d mod %d" a b) (of_i (a mod b)) r)
    [ (7, 2); (-7, 2); (7, -2); (-7, -2); (6, 3); (-6, 3) ]

let test_div_exact () =
  Alcotest.check big "exact" (of_i (-4)) (Bigint.div_exact (of_i 12) (of_i (-3)));
  Alcotest.check_raises "inexact" (Invalid_argument "Bigint.div_exact: inexact division")
    (fun () -> ignore (Bigint.div_exact (of_i 7) (of_i 2)))

let test_pow () =
  Alcotest.check big "(-2)^3" (of_i (-8)) (Bigint.pow (of_i (-2)) 3);
  Alcotest.check big "(-2)^4" (of_i 16) (Bigint.pow (of_i (-2)) 4);
  Alcotest.check big "0^0" Bigint.one (Bigint.pow Bigint.zero 0)

let test_string () =
  Alcotest.(check string) "neg" "-123456789012345678901" (Bigint.to_string (Bigint.of_string "-123456789012345678901"));
  Alcotest.check big "roundtrip" (of_i (-42)) (Bigint.of_string "-42")

let test_compare () =
  Alcotest.(check bool) "-5 < 3" true (Bigint.compare (of_i (-5)) (of_i 3) < 0);
  Alcotest.(check bool) "-5 < -3" true (Bigint.compare (of_i (-5)) (of_i (-3)) < 0);
  Alcotest.(check bool) "5 > 3" true (Bigint.compare (of_i 5) (of_i 3) > 0)

let test_nat_embedding () =
  Alcotest.check big "of_nat" (of_i 9) (Bigint.of_nat (Nat.of_int 9));
  Alcotest.(check string) "to_nat" "9" (Nat.to_string (Bigint.to_nat (of_i 9)));
  Alcotest.check_raises "to_nat negative" (Invalid_argument "Bigint.to_nat: negative")
    (fun () -> ignore (Bigint.to_nat (of_i (-1))))

let gen_big =
  QCheck2.Gen.(
    map
      (fun (s, a, b) ->
        let v =
          Bigint.add
            (Bigint.mul (of_i a) (Bigint.pow (of_i 2) 50))
            (of_i b)
        in
        if s then v else Bigint.neg v)
      (triple bool (int_bound 1_000_000) (int_bound 1_000_000)))

let prop_ring_distributes =
  QCheck2.Test.make ~name:"a(b+c) = ab+ac (signed)" ~count:300
    (QCheck2.Gen.triple gen_big gen_big gen_big) (fun (a, b, c) ->
      Bigint.equal (Bigint.mul a (Bigint.add b c))
        (Bigint.add (Bigint.mul a b) (Bigint.mul a c)))

let prop_divmod =
  QCheck2.Test.make ~name:"a = qb + r, |r| < |b|, sign r = sign a" ~count:300
    (QCheck2.Gen.pair gen_big gen_big) (fun (a, b) ->
      QCheck2.assume (not (Bigint.is_zero b));
      let q, r = Bigint.divmod a b in
      Bigint.equal a (Bigint.add (Bigint.mul q b) r)
      && Bigint.compare (Bigint.abs r) (Bigint.abs b) < 0
      && (Bigint.is_zero r || Bigint.sign r = Bigint.sign a))

let prop_neg_involutive =
  QCheck2.Test.make ~name:"neg (neg a) = a" ~count:300 gen_big (fun a ->
      Bigint.equal a (Bigint.neg (Bigint.neg a)))

let prop_string_roundtrip =
  QCheck2.Test.make ~name:"decimal roundtrip (signed)" ~count:300 gen_big (fun a ->
      Bigint.equal a (Bigint.of_string (Bigint.to_string a)))

let () =
  Alcotest.run "bigint"
    [
      ( "unit",
        [
          Alcotest.test_case "signs" `Quick test_signs;
          Alcotest.test_case "add mixed signs" `Quick test_add_mixed_signs;
          Alcotest.test_case "sub" `Quick test_sub;
          Alcotest.test_case "mul signs" `Quick test_mul_signs;
          Alcotest.test_case "divmod truncates like native" `Quick test_divmod_truncation;
          Alcotest.test_case "div_exact" `Quick test_div_exact;
          Alcotest.test_case "pow" `Quick test_pow;
          Alcotest.test_case "strings" `Quick test_string;
          Alcotest.test_case "compare" `Quick test_compare;
          Alcotest.test_case "nat embedding" `Quick test_nat_embedding;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_ring_distributes; prop_divmod; prop_neg_involutive; prop_string_roundtrip ] );
    ]
