open Refnet_graph

let test_bipartition_path () =
  match Bipartite.bipartition (Generators.path 4) with
  | None -> Alcotest.fail "path is bipartite"
  | Some (a, b) ->
    Alcotest.(check (list int)) "evens/odds" [ 1; 3 ] a;
    Alcotest.(check (list int)) "other side" [ 2; 4 ] b

let test_even_cycle () =
  Alcotest.(check bool) "C6" true (Bipartite.is_bipartite (Generators.cycle 6));
  Alcotest.(check bool) "C7" false (Bipartite.is_bipartite (Generators.cycle 7))

let test_disconnected () =
  let g = Graph.of_edges 6 [ (1, 2); (4, 5); (5, 6); (6, 4) ] in
  Alcotest.(check bool) "odd component poisons" false (Bipartite.is_bipartite g);
  let h = Graph.of_edges 5 [ (1, 2); (4, 5) ] in
  Alcotest.(check bool) "all even" true (Bipartite.is_bipartite h)

let test_known_families () =
  Alcotest.(check bool) "K34" true (Bipartite.is_bipartite (Generators.complete_bipartite 3 4));
  Alcotest.(check bool) "grid" true (Bipartite.is_bipartite (Generators.grid 5 4));
  Alcotest.(check bool) "hypercube" true (Bipartite.is_bipartite (Generators.hypercube 5));
  Alcotest.(check bool) "K4" false (Bipartite.is_bipartite (Generators.complete 4));
  Alcotest.(check bool) "petersen" false (Bipartite.is_bipartite (Generators.petersen ()))

let test_empty () =
  Alcotest.(check bool) "empty" true (Bipartite.is_bipartite (Graph.empty 0));
  Alcotest.(check bool) "edgeless" true (Bipartite.is_bipartite (Graph.empty 5))

let test_respects_parts () =
  let g = Generators.complete_bipartite 2 2 in
  Alcotest.(check bool) "yes" true (Bipartite.respects_parts g ~left:[ 1; 2 ] ~right:[ 3; 4 ]);
  Alcotest.(check bool) "no" false (Bipartite.respects_parts g ~left:[ 1; 3 ] ~right:[ 2; 4 ]);
  Alcotest.check_raises "bad partition"
    (Invalid_argument "Bipartite.respects_parts: not a partition") (fun () ->
      ignore (Bipartite.respects_parts g ~left:[ 1 ] ~right:[ 3; 4 ]))

let gen_bipartite =
  QCheck2.Gen.(
    bind (pair (int_range 1 10) (int_range 1 10)) (fun (l, r) ->
        map
          (fun seed ->
            (l, Refnet_graph.Generators.random_bipartite (Random.State.make [| seed |]) ~left:l ~right:r 0.4))
          int))

let prop_generated_bipartite_accepted =
  QCheck2.Test.make ~name:"random bipartite graphs pass" ~count:200 gen_bipartite
    (fun (_, g) -> Bipartite.is_bipartite g)

let prop_coloring_valid =
  QCheck2.Test.make ~name:"returned bipartition is a proper 2-colouring" ~count:200
    gen_bipartite (fun (_, g) ->
      match Bipartite.bipartition g with
      | None -> false
      | Some (a, b) ->
        let side = Hashtbl.create 16 in
        List.iter (fun v -> Hashtbl.replace side v 0) a;
        List.iter (fun v -> Hashtbl.replace side v 1) b;
        let ok = ref (List.length a + List.length b = Graph.order g) in
        Graph.iter_edges g (fun u v ->
            if Hashtbl.find side u = Hashtbl.find side v then ok := false);
        !ok)

let prop_odd_cycle_rejected =
  QCheck2.Test.make ~name:"adding an odd chord inside one part breaks bipartiteness" ~count:100
    gen_bipartite (fun (l, g) ->
      QCheck2.assume (l >= 2);
      let g' = Graph.add_edges g [ (1, 2) ] in
      (* 1 and 2 are on the same side; any 2-colouring must now fail
         whenever they are connected through the bipartite part... the
         direct edge alone already forces them apart, so the original
         bipartition is invalid; is_bipartite may still succeed only if a
         different valid colouring exists, which requires 1 and 2 to be in
         different components of g. *)
      if Connectivity.same_component g 1 2 then not (Bipartite.is_bipartite g')
      else true)

let () =
  Alcotest.run "bipartite"
    [
      ( "unit",
        [
          Alcotest.test_case "path bipartition" `Quick test_bipartition_path;
          Alcotest.test_case "even/odd cycles" `Quick test_even_cycle;
          Alcotest.test_case "disconnected" `Quick test_disconnected;
          Alcotest.test_case "known families" `Quick test_known_families;
          Alcotest.test_case "empty" `Quick test_empty;
          Alcotest.test_case "respects_parts" `Quick test_respects_parts;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_generated_bipartite_accepted; prop_coloring_valid; prop_odd_cycle_rejected ] );
    ]
