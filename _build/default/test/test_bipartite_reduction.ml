open Refnet_graph

let halves n =
  let half = n / 2 in
  (List.init half (fun i -> i + 1), List.init (n - half) (fun i -> half + i + 1))

let decide g =
  let n = Graph.order g in
  let left, right = halves n in
  let delta =
    Core.Bipartite_reduction.connectivity ~oracle:Core.Bipartite_reduction.bipartiteness_oracle
      ~left ~right
  in
  fst (Core.Simulator.run delta g)

let test_gadget_shape () =
  let g = Generators.complete_bipartite 2 2 in
  let g' = Core.Bipartite_reduction.odd_cycle_gadget g 1 2 in
  Alcotest.(check int) "order + 2" 6 (Graph.order g');
  Alcotest.(check bool) "bridge 1" true (Graph.has_edge g' 1 5);
  Alcotest.(check bool) "bridge mid" true (Graph.has_edge g' 5 6);
  Alcotest.(check bool) "bridge 2" true (Graph.has_edge g' 6 2)

let test_gadget_parity () =
  (* Same-class pair, connected -> odd cycle; disconnected -> bipartite. *)
  let g = Graph.of_edges 6 [ (1, 4); (2, 4); (3, 6) ] in
  (* classes {1,2,3} / {4,5,6}: 1 and 2 connected through 4; 3 apart. *)
  Alcotest.(check bool) "connected pair breaks bipartiteness" false
    (Bipartite.is_bipartite (Core.Bipartite_reduction.odd_cycle_gadget g 1 2));
  Alcotest.(check bool) "disconnected pair stays bipartite" true
    (Bipartite.is_bipartite (Core.Bipartite_reduction.odd_cycle_gadget g 1 3))

let test_connected_bipartite () =
  Alcotest.(check bool) "K33" true (decide (Generators.complete_bipartite 3 3));
  let r = Random.State.make [| 5 |] in
  let g = Generators.random_bipartite r ~left:5 ~right:5 0.6 in
  Alcotest.(check bool) "dense random bipartite" (Connectivity.is_connected g) (decide g)

let test_disconnected_bipartite () =
  (* Two disjoint K22-style blocks laid out to respect halves
     {1..4} / {5..8}: block A = {1,2}x{5,6}, block B = {3,4}x{7,8}. *)
  let g = Graph.of_edges 8 [ (1, 5); (2, 6); (1, 6); (3, 7); (4, 8); (3, 8) ] in
  Alcotest.(check bool) "two blocks" false (decide g);
  Alcotest.(check bool) "isolated vertex" false
    (decide (Graph.of_edges 6 [ (1, 4); (2, 4); (2, 5); (3, 5) ] |> fun g ->
             Graph.add_vertices g 0))

let test_small_cases () =
  Alcotest.(check bool) "empty" true (decide (Graph.empty 0));
  Alcotest.(check bool) "singleton" true (decide (Graph.empty 1));
  Alcotest.(check bool) "one edge" true (decide (Graph.of_edges 2 [ (1, 2) ]));
  Alcotest.(check bool) "two isolated" false (decide (Graph.empty 2))

let test_blowup_is_three_messages () =
  let n = 10 in
  let g = Generators.random_bipartite (Random.State.make [| 7 |]) ~left:5 ~right:5 0.5 in
  let left, right = halves n in
  let delta =
    Core.Bipartite_reduction.connectivity ~oracle:Core.Bipartite_reduction.bipartiteness_oracle
      ~left ~right
  in
  let _, t = Core.Simulator.run delta g in
  (* Three (n+2)-bit oracle messages + framing + degree header. *)
  Alcotest.(check bool) "at least 3 x (n+2)" true (t.Core.Simulator.max_bits >= 3 * (n + 2));
  Alcotest.(check bool) "framing logarithmic" true
    (t.Core.Simulator.max_bits <= (3 * (n + 2)) + (4 * ((2 * Core.Bounds.id_bits (n + 2)) + 1)))

let prop_matches_truth =
  QCheck2.Test.make ~name:"Δ-connectivity = true connectivity on bipartite inputs" ~count:60
    QCheck2.Gen.(triple (int_range 1 7) (int_range 0 10) int)
    (fun (half, p10, seed) ->
      let rng = Random.State.make [| seed; half; p10 |] in
      let g = Generators.random_bipartite rng ~left:half ~right:half (float_of_int p10 /. 10.0) in
      decide g = Connectivity.is_connected g)

let prop_parity_argument =
  QCheck2.Test.make ~name:"gadget bipartite iff same-class pair disconnected" ~count:80
    QCheck2.Gen.(triple (int_range 2 8) (int_range 0 10) int)
    (fun (half, p10, seed) ->
      let rng = Random.State.make [| seed; half; p10 |] in
      let g = Generators.random_bipartite rng ~left:half ~right:half (float_of_int p10 /. 10.0) in
      (* Pick two left-class vertices. *)
      let s = 1 and t = 2 in
      Bipartite.is_bipartite (Core.Bipartite_reduction.odd_cycle_gadget g s t)
      = not (Connectivity.same_component g s t))

let () =
  Alcotest.run "bipartite_reduction"
    [
      ( "gadget",
        [
          Alcotest.test_case "shape" `Quick test_gadget_shape;
          Alcotest.test_case "parity" `Quick test_gadget_parity;
        ] );
      ( "Δ-connectivity",
        [
          Alcotest.test_case "connected inputs" `Quick test_connected_bipartite;
          Alcotest.test_case "disconnected inputs" `Quick test_disconnected_bipartite;
          Alcotest.test_case "small cases" `Quick test_small_cases;
          Alcotest.test_case "3x blow-up" `Quick test_blowup_is_three_messages;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest [ prop_matches_truth; prop_parity_argument ] );
    ]
