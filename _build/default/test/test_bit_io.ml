open Refnet_bits

let test_writer_basics () =
  let w = Bit_writer.create () in
  Alcotest.(check int) "empty" 0 (Bit_writer.length w);
  Bit_writer.add_bit w true;
  Bit_writer.add_bit w false;
  Bit_writer.add_bit w true;
  Alcotest.(check int) "three bits" 3 (Bit_writer.length w);
  Alcotest.(check string) "contents" "101" (Bitvec.to_string (Bit_writer.contents w))

let test_add_bits_msb_first () =
  let w = Bit_writer.create () in
  Bit_writer.add_bits w ~value:5 ~width:4;
  Alcotest.(check string) "0101" "0101" (Bitvec.to_string (Bit_writer.contents w))

let test_add_bits_guards () =
  let w = Bit_writer.create () in
  Alcotest.check_raises "does not fit"
    (Invalid_argument "Bit_writer.add_bits: value does not fit") (fun () ->
      Bit_writer.add_bits w ~value:16 ~width:4);
  Alcotest.check_raises "negative" (Invalid_argument "Bit_writer.add_bits: negative value")
    (fun () -> Bit_writer.add_bits w ~value:(-1) ~width:4)

let test_append () =
  let a = Bit_writer.create () and b = Bit_writer.create () in
  Bit_writer.add_bits a ~value:3 ~width:2;
  Bit_writer.add_bits b ~value:1 ~width:2;
  Bit_writer.append a b;
  Alcotest.(check string) "1101" "1101" (Bitvec.to_string (Bit_writer.contents a))

let test_reader_roundtrip () =
  let w = Bit_writer.create () in
  Bit_writer.add_bits w ~value:42 ~width:7;
  Bit_writer.add_bit w true;
  Bit_writer.add_bits w ~value:3 ~width:2;
  let r = Bit_reader.of_bitvec (Bit_writer.contents w) in
  Alcotest.(check int) "value" 42 (Bit_reader.read_bits r ~width:7);
  Alcotest.(check bool) "bit" true (Bit_reader.read_bit r);
  Alcotest.(check int) "tail" 3 (Bit_reader.read_bits r ~width:2);
  Alcotest.(check int) "exhausted" 0 (Bit_reader.remaining r)

let test_reader_exhaustion () =
  let r = Bit_reader.of_bitvec (Bitvec.create 2) in
  ignore (Bit_reader.read_bits r ~width:2);
  Alcotest.check_raises "end" Bit_reader.Exhausted (fun () -> ignore (Bit_reader.read_bit r))

let test_bitvec_payload () =
  let w = Bit_writer.create () in
  let payload = Bitvec.of_list 9 [ 0; 4; 8 ] in
  Bit_writer.add_bitvec w payload;
  let r = Bit_reader.of_bitvec (Bit_writer.contents w) in
  Alcotest.(check bool) "roundtrip" true (Bitvec.equal payload (Bit_reader.read_bitvec r ~len:9))

let test_bits_needed () =
  Alcotest.(check int) "0" 0 (Codes.bits_needed 0);
  Alcotest.(check int) "1" 1 (Codes.bits_needed 1);
  Alcotest.(check int) "7" 3 (Codes.bits_needed 7);
  Alcotest.(check int) "8" 4 (Codes.bits_needed 8)

let test_id_width () =
  Alcotest.(check int) "n=1" 1 (Codes.id_width 1);
  Alcotest.(check int) "n=7" 3 (Codes.id_width 7);
  Alcotest.(check int) "n=8" 4 (Codes.id_width 8);
  Alcotest.(check int) "n=0" 1 (Codes.id_width 0)

let roundtrip_code write read v =
  let w = Bit_writer.create () in
  write w v;
  let r = Bit_reader.of_bitvec (Bit_writer.contents w) in
  let v' = read r in
  Alcotest.(check int) "decoded" v v';
  Alcotest.(check int) "fully consumed" 0 (Bit_reader.remaining r)

let test_unary () = List.iter (roundtrip_code Codes.write_unary Codes.read_unary) [ 0; 1; 5; 17 ]

let test_gamma () =
  List.iter (roundtrip_code Codes.write_gamma Codes.read_gamma) [ 1; 2; 3; 4; 100; 4097 ]

let test_gamma_length () =
  (* gamma(v) takes exactly 2 floor(log2 v) + 1 bits. *)
  List.iter
    (fun v ->
      let w = Bit_writer.create () in
      Codes.write_gamma w v;
      Alcotest.(check int)
        (Printf.sprintf "len gamma %d" v)
        ((2 * (Codes.bits_needed v - 1)) + 1)
        (Bit_writer.length w))
    [ 1; 2; 7; 8; 1000 ]

let test_delta () =
  List.iter (roundtrip_code Codes.write_delta Codes.read_delta) [ 1; 2; 3; 9; 511; 70000 ]

let test_nonneg () =
  List.iter (roundtrip_code Codes.write_nonneg Codes.read_nonneg) [ 0; 1; 63; 64; 12345 ]

let test_mixed_stream () =
  let w = Bit_writer.create () in
  Codes.write_gamma w 9;
  Codes.write_fixed w ~width:5 17;
  Codes.write_delta w 33;
  Codes.write_nonneg w 0;
  let r = Bit_reader.of_bitvec (Bit_writer.contents w) in
  Alcotest.(check int) "gamma" 9 (Codes.read_gamma r);
  Alcotest.(check int) "fixed" 17 (Codes.read_fixed r ~width:5);
  Alcotest.(check int) "delta" 33 (Codes.read_delta r);
  Alcotest.(check int) "nonneg" 0 (Codes.read_nonneg r)

let prop_gamma_roundtrip =
  QCheck2.Test.make ~name:"gamma roundtrip" ~count:500
    QCheck2.Gen.(int_range 1 1_000_000)
    (fun v ->
      let w = Bit_writer.create () in
      Codes.write_gamma w v;
      Codes.read_gamma (Bit_reader.of_bitvec (Bit_writer.contents w)) = v)

let prop_delta_roundtrip =
  QCheck2.Test.make ~name:"delta roundtrip" ~count:500
    QCheck2.Gen.(int_range 1 1_000_000)
    (fun v ->
      let w = Bit_writer.create () in
      Codes.write_delta w v;
      Codes.read_delta (Bit_reader.of_bitvec (Bit_writer.contents w)) = v)

let prop_fixed_roundtrip =
  QCheck2.Test.make ~name:"fixed roundtrip at minimal width" ~count:500
    QCheck2.Gen.(int_range 0 1_000_000)
    (fun v ->
      let width = max 1 (Codes.bits_needed v) in
      let w = Bit_writer.create () in
      Codes.write_fixed w ~width v;
      Codes.read_fixed (Bit_reader.of_bitvec (Bit_writer.contents w)) ~width = v)

let prop_concat_streams =
  QCheck2.Test.make ~name:"sequential values decode in order" ~count:200
    QCheck2.Gen.(list_size (int_range 0 30) (int_range 0 10_000))
    (fun vs ->
      let w = Bit_writer.create () in
      List.iter (Codes.write_nonneg w) vs;
      let r = Bit_reader.of_bitvec (Bit_writer.contents w) in
      List.for_all (fun v -> Codes.read_nonneg r = v) vs)

let () =
  Alcotest.run "bit_io"
    [
      ( "writer/reader",
        [
          Alcotest.test_case "writer basics" `Quick test_writer_basics;
          Alcotest.test_case "msb first" `Quick test_add_bits_msb_first;
          Alcotest.test_case "guards" `Quick test_add_bits_guards;
          Alcotest.test_case "append" `Quick test_append;
          Alcotest.test_case "roundtrip" `Quick test_reader_roundtrip;
          Alcotest.test_case "exhaustion" `Quick test_reader_exhaustion;
          Alcotest.test_case "bitvec payload" `Quick test_bitvec_payload;
        ] );
      ( "codes",
        [
          Alcotest.test_case "bits_needed" `Quick test_bits_needed;
          Alcotest.test_case "id_width" `Quick test_id_width;
          Alcotest.test_case "unary" `Quick test_unary;
          Alcotest.test_case "gamma" `Quick test_gamma;
          Alcotest.test_case "gamma length" `Quick test_gamma_length;
          Alcotest.test_case "delta" `Quick test_delta;
          Alcotest.test_case "nonneg" `Quick test_nonneg;
          Alcotest.test_case "mixed stream" `Quick test_mixed_stream;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_gamma_roundtrip; prop_delta_roundtrip; prop_fixed_roundtrip; prop_concat_streams ]
      );
    ]
