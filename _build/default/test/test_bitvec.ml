open Refnet_bits

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let test_create_empty () =
  let v = Bitvec.create 10 in
  check_int "length" 10 (Bitvec.length v);
  check_int "popcount" 0 (Bitvec.popcount v);
  check "is_empty" true (Bitvec.is_empty v)

let test_set_get_clear () =
  let v = Bitvec.create 20 in
  Bitvec.set v 0;
  Bitvec.set v 7;
  Bitvec.set v 8;
  Bitvec.set v 19;
  check "bit 0" true (Bitvec.get v 0);
  check "bit 7" true (Bitvec.get v 7);
  check "bit 8" true (Bitvec.get v 8);
  check "bit 19" true (Bitvec.get v 19);
  check "bit 1" false (Bitvec.get v 1);
  check_int "popcount" 4 (Bitvec.popcount v);
  Bitvec.clear v 8;
  check "cleared" false (Bitvec.get v 8);
  check_int "popcount after clear" 3 (Bitvec.popcount v)

let test_assign () =
  let v = Bitvec.create 3 in
  Bitvec.assign v 1 true;
  check "assigned" true (Bitvec.get v 1);
  Bitvec.assign v 1 false;
  check "unassigned" false (Bitvec.get v 1)

let test_bounds () =
  let v = Bitvec.create 5 in
  Alcotest.check_raises "get -1" (Invalid_argument "Bitvec.get: index out of bounds")
    (fun () -> ignore (Bitvec.get v (-1)));
  Alcotest.check_raises "get 5" (Invalid_argument "Bitvec.get: index out of bounds")
    (fun () -> ignore (Bitvec.get v 5));
  Alcotest.check_raises "negative length" (Invalid_argument "Bitvec.create: negative length")
    (fun () -> ignore (Bitvec.create (-1)))

let test_to_of_list () =
  let v = Bitvec.of_list 12 [ 0; 3; 11 ] in
  Alcotest.(check (list int)) "roundtrip" [ 0; 3; 11 ] (Bitvec.to_list v);
  check_int "popcount" 3 (Bitvec.popcount v)

let test_iter_order () =
  let v = Bitvec.of_list 30 [ 29; 2; 14 ] in
  let seen = ref [] in
  Bitvec.iter_set v (fun i -> seen := i :: !seen);
  Alcotest.(check (list int)) "increasing" [ 2; 14; 29 ] (List.rev !seen)

let test_setops () =
  let u = Bitvec.of_list 10 [ 1; 2; 3 ] in
  let v = Bitvec.of_list 10 [ 3; 4 ] in
  Alcotest.(check (list int)) "union" [ 1; 2; 3; 4 ] (Bitvec.to_list (Bitvec.union u v));
  Alcotest.(check (list int)) "inter" [ 3 ] (Bitvec.to_list (Bitvec.inter u v));
  Alcotest.(check (list int)) "diff" [ 1; 2 ] (Bitvec.to_list (Bitvec.diff u v));
  check "subset yes" true (Bitvec.subset (Bitvec.of_list 10 [ 1; 3 ]) u);
  check "subset no" false (Bitvec.subset v u)

let test_length_mismatch () =
  Alcotest.check_raises "union mismatch" (Invalid_argument "Bitvec.union: length mismatch")
    (fun () -> ignore (Bitvec.union (Bitvec.create 3) (Bitvec.create 4)))

let test_complement_trailing_bits () =
  (* Length not a multiple of 8: trailing bits must stay clear. *)
  let v = Bitvec.of_list 11 [ 0; 10 ] in
  let c = Bitvec.complement v in
  check_int "popcount" 9 (Bitvec.popcount c);
  check "bit 0 off" false (Bitvec.get c 0);
  check "bit 5 on" true (Bitvec.get c 5);
  check "double complement" true (Bitvec.equal v (Bitvec.complement c))

let test_copy_independent () =
  let v = Bitvec.of_list 8 [ 1 ] in
  let c = Bitvec.copy v in
  Bitvec.set c 2;
  check "original untouched" false (Bitvec.get v 2);
  check "copy changed" true (Bitvec.get c 2)

let test_equal_compare () =
  let u = Bitvec.of_list 6 [ 0; 5 ] in
  let v = Bitvec.of_list 6 [ 0; 5 ] in
  check "equal" true (Bitvec.equal u v);
  check_int "compare eq" 0 (Bitvec.compare u v);
  Bitvec.set v 1;
  check "not equal" false (Bitvec.equal u v)

let test_to_string () =
  Alcotest.(check string) "render" "0101" (Bitvec.to_string (Bitvec.of_list 4 [ 1; 3 ]))

let bit_list_gen =
  QCheck2.Gen.(
    bind (int_range 1 64) (fun n ->
        map (fun l -> (n, List.sort_uniq compare (List.map (fun i -> abs i mod n) l)))
          (list_size (int_range 0 64) int)))

let prop_roundtrip =
  QCheck2.Test.make ~name:"of_list/to_list roundtrip" ~count:200 bit_list_gen
    (fun (n, l) -> Bitvec.to_list (Bitvec.of_list n l) = l)

let prop_popcount =
  QCheck2.Test.make ~name:"popcount = |to_list|" ~count:200 bit_list_gen
    (fun (n, l) -> Bitvec.popcount (Bitvec.of_list n l) = List.length l)

let prop_union_inter_sizes =
  QCheck2.Test.make ~name:"|A| + |B| = |A∪B| + |A∩B|" ~count:200
    QCheck2.Gen.(pair bit_list_gen bit_list_gen)
    (fun ((n1, l1), (n2, l2)) ->
      let n = max n1 n2 in
      let a = Bitvec.of_list n l1 and b = Bitvec.of_list n l2 in
      Bitvec.popcount a + Bitvec.popcount b
      = Bitvec.popcount (Bitvec.union a b) + Bitvec.popcount (Bitvec.inter a b))

let () =
  Alcotest.run "bitvec"
    [
      ( "unit",
        [
          Alcotest.test_case "create empty" `Quick test_create_empty;
          Alcotest.test_case "set/get/clear" `Quick test_set_get_clear;
          Alcotest.test_case "assign" `Quick test_assign;
          Alcotest.test_case "bounds checking" `Quick test_bounds;
          Alcotest.test_case "to/of list" `Quick test_to_of_list;
          Alcotest.test_case "iter order" `Quick test_iter_order;
          Alcotest.test_case "set operations" `Quick test_setops;
          Alcotest.test_case "length mismatch" `Quick test_length_mismatch;
          Alcotest.test_case "complement trailing bits" `Quick test_complement_trailing_bits;
          Alcotest.test_case "copy independent" `Quick test_copy_independent;
          Alcotest.test_case "equal/compare" `Quick test_equal_compare;
          Alcotest.test_case "to_string" `Quick test_to_string;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_roundtrip; prop_popcount; prop_union_inter_sizes ] );
    ]
