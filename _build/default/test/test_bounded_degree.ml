open Refnet_graph

let graph_opt =
  Alcotest.option (Alcotest.testable (fun fmt g -> Graph.pp fmt g) Graph.equal)

let run ~d g = fst (Core.Simulator.run (Core.Bounded_degree.reconstruct ~max_degree:d) g)

let test_reconstructs_low_degree () =
  List.iter
    (fun (name, d, g) -> Alcotest.check graph_opt name (Some g) (run ~d g))
    [
      ("cycle", 2, Generators.cycle 10);
      ("grid", 4, Generators.grid 4 4);
      ("petersen", 3, Generators.petersen ());
      ("edgeless", 0, Graph.empty 6);
    ]

let test_rejects_over_degree () =
  Alcotest.check graph_opt "star blows the bound" None (run ~d:3 (Generators.star 8));
  Alcotest.check graph_opt "exact bound passes" (Some (Generators.star 8))
    (run ~d:7 (Generators.star 8))

let test_message_size_grows_with_degree () =
  let g = Generators.star 64 in
  let _, t = Core.Simulator.run (Core.Bounded_degree.reconstruct ~max_degree:63) g in
  (* The centre ships 63 identifiers: message size is linear in degree,
     which is why this baseline is not frugal in general. *)
  Alcotest.(check bool) "centre message is large" true
    (t.Core.Simulator.max_bits >= 63 * Core.Bounds.id_bits 64);
  Alcotest.(check bool) "not frugal at c=8" false (Core.Simulator.is_frugal t ~c:8)

let test_full_information () =
  let g = Generators.gnp (Random.State.make [| 3 |]) 20 0.5 in
  let out, t = Core.Simulator.run Core.Bounded_degree.full_information g in
  Alcotest.(check bool) "exact" true (Graph.equal g out);
  Alcotest.(check int) "n bits each" 20 t.Core.Simulator.max_bits

let prop_within_bound_roundtrip =
  QCheck2.Test.make ~name:"max-degree-bounded graphs reconstruct" ~count:100
    QCheck2.Gen.(pair (int_range 1 30) int)
    (fun (n, seed) ->
      let rng = Random.State.make [| seed; n |] in
      let g = Generators.gnp rng n 0.2 in
      run ~d:(Graph.max_degree g) g = Some g)

let prop_full_information_always_exact =
  QCheck2.Test.make ~name:"full information protocol is the identity" ~count:100
    QCheck2.Gen.(pair (int_range 0 25) int)
    (fun (n, seed) ->
      let rng = Random.State.make [| seed; n |] in
      let g = Generators.gnp rng n 0.5 in
      Graph.equal g (fst (Core.Simulator.run Core.Bounded_degree.full_information g)))

let () =
  Alcotest.run "bounded_degree"
    [
      ( "unit",
        [
          Alcotest.test_case "reconstructs low degree" `Quick test_reconstructs_low_degree;
          Alcotest.test_case "rejects over bound" `Quick test_rejects_over_degree;
          Alcotest.test_case "message size linear in degree" `Quick test_message_size_grows_with_degree;
          Alcotest.test_case "full information" `Quick test_full_information;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_within_bound_roundtrip; prop_full_information_always_exact ] );
    ]
