open Refnet_graph

let decide g ~parts =
  let partition = Core.Coalition.partition_by_ranges ~n:(Graph.order g) ~parts in
  Core.Coalition.run Core.Connectivity_parts.decide g ~parts:partition

let test_connected_families () =
  List.iter
    (fun (name, g) ->
      List.iter
        (fun parts ->
          Alcotest.(check bool) (Printf.sprintf "%s/%d" name parts) true (fst (decide g ~parts)))
        [ 1; 2; 3; 5 ])
    [
      ("cycle", Generators.cycle 15);
      ("grid", Generators.grid 5 4);
      ("tree", Generators.random_tree (Random.State.make [| 1 |]) 20);
    ]

let test_disconnected_families () =
  List.iter
    (fun (name, g) ->
      List.iter
        (fun parts ->
          Alcotest.(check bool) (Printf.sprintf "%s/%d" name parts) false (fst (decide g ~parts)))
        [ 1; 2; 4 ])
    [
      ("two cliques", Graph.disjoint_union (Generators.complete 5) (Generators.complete 4));
      ("isolated vertex", Graph.add_vertices (Generators.cycle 8) 1);
      ("edgeless", Graph.empty 6);
    ]

let test_boundary_heavy_partition () =
  (* A complete bipartite graph split exactly along the parts puts every
     edge on the boundary; the forest-union argument must still hold. *)
  let g = Generators.complete_bipartite 6 6 in
  Alcotest.(check bool) "crossing split" true (fst (decide g ~parts:2))

let test_message_budget () =
  let n = 64 in
  let g = Generators.random_connected (Random.State.make [| 2 |]) n 0.08 in
  List.iter
    (fun parts ->
      let _, t = decide g ~parts in
      Alcotest.(check bool)
        (Printf.sprintf "within closed-form bound at %d parts" parts)
        true
        (t.Core.Simulator.max_bits <= Core.Connectivity_parts.per_node_bound ~n ~parts))
    [ 2; 4; 8 ]

let test_per_member_messages_cover_members () =
  let g = Generators.cycle 9 in
  let view =
    {
      Core.Coalition.members = [ 2; 3; 4 ];
      neighborhoods = List.map (fun v -> (v, Graph.neighbors g v)) [ 2; 3; 4 ];
    }
  in
  let msgs = Core.Connectivity_parts.spanning_forest_messages ~n:9 view in
  Alcotest.(check (list int)) "one message per member" [ 2; 3; 4 ]
    (List.map fst msgs |> List.sort compare)

let prop_matches_referee_truth =
  QCheck2.Test.make ~name:"coalition verdict = real connectivity" ~count:150
    QCheck2.Gen.(triple (int_range 1 40) (int_range 1 6) int)
    (fun (n, parts, seed) ->
      let rng = Random.State.make [| seed; n; parts |] in
      let g = Generators.gnp rng n 0.08 in
      let parts = min parts n in
      fst (decide g ~parts) = Connectivity.is_connected g)

let prop_random_partitions =
  (* Contiguous ranges are just a convenience; correctness must hold for
     ANY partition of the vertices into coalitions. *)
  QCheck2.Test.make ~name:"arbitrary partitions give the true verdict" ~count:100
    QCheck2.Gen.(triple (int_range 2 30) (int_range 1 5) int)
    (fun (n, parts, seed) ->
      let rng = Random.State.make [| seed; n; parts |] in
      let g = Generators.gnp rng n 0.12 in
      let parts = min parts n in
      (* Deal vertices into buckets at random, then drop empties. *)
      let buckets = Array.make parts [] in
      List.iter
        (fun v ->
          let b = Random.State.int rng parts in
          buckets.(b) <- v :: buckets.(b))
        (Graph.vertices g);
      let partition = List.filter (fun l -> l <> []) (Array.to_list buckets) in
      fst (Core.Coalition.run Core.Connectivity_parts.decide g ~parts:partition)
      = Connectivity.is_connected g)

let prop_partition_invariance =
  QCheck2.Test.make ~name:"verdict independent of the number of parts" ~count:80
    QCheck2.Gen.(pair (int_range 2 30) int)
    (fun (n, seed) ->
      let rng = Random.State.make [| seed; n |] in
      let g = Generators.gnp rng n 0.12 in
      let verdicts = List.map (fun parts -> fst (decide g ~parts)) [ 1; 2; min 5 n ] in
      match verdicts with
      | v :: rest -> List.for_all (fun x -> x = v) rest
      | [] -> false)

let () =
  Alcotest.run "connectivity_parts"
    [
      ( "unit",
        [
          Alcotest.test_case "connected families" `Quick test_connected_families;
          Alcotest.test_case "disconnected families" `Quick test_disconnected_families;
          Alcotest.test_case "boundary-heavy partition" `Quick test_boundary_heavy_partition;
          Alcotest.test_case "message budget" `Quick test_message_budget;
          Alcotest.test_case "messages cover members" `Quick test_per_member_messages_cover_members;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_matches_referee_truth; prop_random_partitions; prop_partition_invariance ] );
    ]
