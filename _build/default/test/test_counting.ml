let test_family_names () =
  Alcotest.(check string) "sf" "square-free" (Core.Counting.family_name Core.Counting.Square_free);
  Alcotest.(check string) "all" "all graphs" (Core.Counting.family_name Core.Counting.All_graphs)

let test_log2_all_graphs () =
  Alcotest.(check (float 0.0001)) "n=4" 6.0
    (Core.Counting.log2_family_size Core.Counting.All_graphs 4);
  Alcotest.(check (float 0.0001)) "n=10" 45.0
    (Core.Counting.log2_family_size Core.Counting.All_graphs 10)

let test_log2_bipartite () =
  Alcotest.(check (float 0.0001)) "n=6" 9.0
    (Core.Counting.log2_family_size Core.Counting.Bipartite_fixed_halves 6);
  (* Odd n: floor(n/2) * ceil(n/2) cross pairs. *)
  Alcotest.(check (float 0.0001)) "n=5" 6.0
    (Core.Counting.log2_family_size Core.Counting.Bipartite_fixed_halves 5)

let test_log2_enumerated () =
  (* log2 of the exact enumerated counts. *)
  Alcotest.(check (float 0.0001)) "square-free n=3" 3.0
    (Core.Counting.log2_family_size Core.Counting.Square_free 3);
  Alcotest.(check (float 0.0001)) "triangle-free n=4" (Float.log2 41.0)
    (Core.Counting.log2_family_size Core.Counting.Triangle_free 4)

let test_budget () =
  Alcotest.(check (float 0.0001)) "c=2 n=8" (2.0 *. 8.0 *. 4.0) (Core.Counting.budget ~c:2 8)

let test_reconstructible_small () =
  (* At small n everything fits in the budget with a decent constant. *)
  Alcotest.(check bool) "all graphs n=4, c=3" true
    (Core.Counting.reconstructible ~c:3 Core.Counting.All_graphs 4);
  (* But all graphs at large n blow any constant: n(n-1)/2 vs c n log n. *)
  Alcotest.(check bool) "all graphs n=200, c=3" false
    (Core.Counting.reconstructible ~c:3 Core.Counting.All_graphs 200)

let test_crossover_all_graphs () =
  (* n(n-1)/2 > c * n * ceil(log2(n+1)) first happens near n ~ 2c log n;
     for c=1 that is n = 17: 136 > 17 * 5 = 85 ... actually already at
     smaller n; just verify the crossover is consistent with the
     definition. *)
  match Core.Counting.crossover ~c:1 Core.Counting.All_graphs ~max_n:100 with
  | None -> Alcotest.fail "must cross"
  | Some n ->
    Alcotest.(check bool) "not reconstructible at n" false
      (Core.Counting.reconstructible ~c:1 Core.Counting.All_graphs n);
    Alcotest.(check bool) "reconstructible just below" true
      (n = 1 || Core.Counting.reconstructible ~c:1 Core.Counting.All_graphs (n - 1))

let test_crossover_none_within_range () =
  (* With an absurd constant nothing crosses early. *)
  Alcotest.(check (option int)) "no crossover" None
    (Core.Counting.crossover ~c:1000 Core.Counting.All_graphs ~max_n:50)

let test_square_free_growth_shape () =
  (* Kleitman–Winston: log2 g(n) grows like n^1.5 — strictly faster than
     n log n; verify the ratio (log2 g)/(n log2 n) increases over the
     enumerable range while (log2 g)/n^1.5 stays bounded. *)
  let ratio_nlogn = ref [] and ratio_n15 = ref [] in
  for n = 4 to 7 do
    let lg = Core.Counting.log2_family_size Core.Counting.Square_free n in
    ratio_nlogn := (lg /. (float_of_int n *. Float.log2 (float_of_int n))) :: !ratio_nlogn;
    ratio_n15 := (lg /. Core.Bounds.square_free_growth_exponent n) :: !ratio_n15
  done;
  let increasing l = List.for_all2 (fun a b -> a < b) (List.tl l) (List.rev (List.tl (List.rev l))) in
  ignore increasing;
  (* n^1.5 ratio bounded by 1 in this range. *)
  List.iter (fun r -> Alcotest.(check bool) "bounded by n^1.5" true (r < 1.0)) !ratio_n15;
  (* and the n log n ratio at n=7 exceeds the one at n=4: the family
     outgrows any frugal budget. *)
  match (!ratio_nlogn, List.rev !ratio_nlogn) with
  | last :: _, first :: _ ->
    Alcotest.(check bool) "outgrows n log n" true (last > first)
  | _ -> Alcotest.fail "range empty"

let () =
  Alcotest.run "counting"
    [
      ( "unit",
        [
          Alcotest.test_case "family names" `Quick test_family_names;
          Alcotest.test_case "log2 all graphs" `Quick test_log2_all_graphs;
          Alcotest.test_case "log2 bipartite" `Quick test_log2_bipartite;
          Alcotest.test_case "log2 enumerated" `Quick test_log2_enumerated;
          Alcotest.test_case "budget" `Quick test_budget;
          Alcotest.test_case "reconstructible" `Quick test_reconstructible_small;
          Alcotest.test_case "crossover consistent" `Quick test_crossover_all_graphs;
          Alcotest.test_case "crossover absent" `Quick test_crossover_none_within_range;
          Alcotest.test_case "square-free growth shape" `Quick test_square_free_growth_shape;
        ] );
    ]
