open Refnet_graph

let test_triangle_detection () =
  Alcotest.(check bool) "K3" true (Cycles.has_triangle (Generators.complete 3));
  Alcotest.(check bool) "C4" false (Cycles.has_triangle (Generators.cycle 4));
  Alcotest.(check bool) "tree" false (Cycles.has_triangle (Generators.complete_binary_tree 7));
  Alcotest.(check bool) "petersen" false (Cycles.has_triangle (Generators.petersen ()))

let test_find_triangle_witness () =
  let g = Graph.of_edges 5 [ (1, 2); (2, 3); (4, 5); (3, 5); (2, 5); (3, 2) ] in
  match Cycles.find_triangle g with
  | None -> Alcotest.fail "expected a triangle"
  | Some (u, v, w) ->
    Alcotest.(check bool) "ordered" true (u < v && v < w);
    Alcotest.(check bool) "uv" true (Graph.has_edge g u v);
    Alcotest.(check bool) "vw" true (Graph.has_edge g v w);
    Alcotest.(check bool) "uw" true (Graph.has_edge g u w)

let test_triangle_count () =
  Alcotest.(check int) "K4 has 4" 4 (Cycles.triangle_count (Generators.complete 4));
  Alcotest.(check int) "K5 has 10" 10 (Cycles.triangle_count (Generators.complete 5));
  Alcotest.(check int) "C5 has 0" 0 (Cycles.triangle_count (Generators.cycle 5));
  Alcotest.(check int) "wheel 5 has 4" 4 (Cycles.triangle_count (Generators.wheel 5))

let test_square_detection () =
  Alcotest.(check bool) "C4" true (Cycles.has_square (Generators.cycle 4));
  Alcotest.(check bool) "C5" false (Cycles.has_square (Generators.cycle 5));
  Alcotest.(check bool) "K4 contains C4" true (Cycles.has_square (Generators.complete 4));
  Alcotest.(check bool) "grid" true (Cycles.has_square (Generators.grid 3 3));
  Alcotest.(check bool) "K3" false (Cycles.has_square (Generators.complete 3));
  Alcotest.(check bool) "petersen (girth 5)" false (Cycles.has_square (Generators.petersen ()));
  Alcotest.(check bool) "tree" false (Cycles.has_square (Generators.random_tree (Random.State.make [| 3 |]) 20))

let test_find_square_witness () =
  let g = Generators.grid 4 4 in
  match Cycles.find_square g with
  | None -> Alcotest.fail "expected a square"
  | Some (a, b, c, d) ->
    Alcotest.(check bool) "cyclic edges" true
      (Graph.has_edge g a b && Graph.has_edge g b c && Graph.has_edge g c d
     && Graph.has_edge g d a);
    Alcotest.(check bool) "four distinct" true
      (List.length (List.sort_uniq compare [ a; b; c; d ]) = 4)

let test_girth () =
  Alcotest.(check (option int)) "C7" (Some 7) (Cycles.girth (Generators.cycle 7));
  Alcotest.(check (option int)) "K4" (Some 3) (Cycles.girth (Generators.complete 4));
  Alcotest.(check (option int)) "grid" (Some 4) (Cycles.girth (Generators.grid 3 3));
  Alcotest.(check (option int)) "forest" None (Cycles.girth (Generators.complete_binary_tree 7));
  Alcotest.(check (option int)) "hypercube" (Some 4) (Cycles.girth (Generators.hypercube 3))

let test_acyclic () =
  Alcotest.(check bool) "path" true (Cycles.is_acyclic (Generators.path 6));
  Alcotest.(check bool) "cycle" false (Cycles.is_acyclic (Generators.cycle 6))

(* Oracle: brute-force subgraph C4 detection over all vertex 4-tuples. *)
let brute_square g =
  let n = Graph.order g in
  let found = ref false in
  for a = 1 to n do
    for b = 1 to n do
      for c = 1 to n do
        for d = 1 to n do
          if
            (not !found) && a <> b && a <> c && a <> d && b <> c && b <> d && c <> d
            && Graph.has_edge g a b && Graph.has_edge g b c && Graph.has_edge g c d
            && Graph.has_edge g d a
          then found := true
        done
      done
    done
  done;
  !found

let brute_triangle g =
  let n = Graph.order g in
  let found = ref false in
  for a = 1 to n do
    for b = a + 1 to n do
      for c = b + 1 to n do
        if Graph.has_edge g a b && Graph.has_edge g b c && Graph.has_edge g a c then found := true
      done
    done
  done;
  !found

let gen_small =
  QCheck2.Gen.(
    bind (int_range 1 9) (fun n ->
        map
          (fun seed ->
            Refnet_graph.Generators.gnp (Random.State.make [| seed; n * 131 |]) n 0.35)
          int))

let prop_square_matches_brute =
  QCheck2.Test.make ~name:"has_square agrees with brute force" ~count:200 gen_small (fun g ->
      Cycles.has_square g = brute_square g)

let prop_triangle_matches_brute =
  QCheck2.Test.make ~name:"has_triangle agrees with brute force" ~count:200 gen_small (fun g ->
      Cycles.has_triangle g = brute_triangle g)

let prop_girth_consistent =
  QCheck2.Test.make ~name:"girth 3 iff triangle; girth <= 4 iff triangle or square" ~count:200
    gen_small (fun g ->
      let girth = Cycles.girth g in
      let tri = Cycles.has_triangle g and sq = Cycles.has_square g in
      (girth = Some 3) = tri
      && (match girth with Some d when d <= 4 -> tri || sq | Some _ -> not (tri || sq) | None -> not (tri || sq)))

let () =
  Alcotest.run "cycles"
    [
      ( "unit",
        [
          Alcotest.test_case "triangle detection" `Quick test_triangle_detection;
          Alcotest.test_case "triangle witness" `Quick test_find_triangle_witness;
          Alcotest.test_case "triangle count" `Quick test_triangle_count;
          Alcotest.test_case "square detection" `Quick test_square_detection;
          Alcotest.test_case "square witness" `Quick test_find_square_witness;
          Alcotest.test_case "girth" `Quick test_girth;
          Alcotest.test_case "acyclic" `Quick test_acyclic;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_square_matches_brute; prop_triangle_matches_brute; prop_girth_consistent ] );
    ]
