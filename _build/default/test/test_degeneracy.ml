open Refnet_graph

let test_known_values () =
  Alcotest.(check int) "edgeless" 0 (Degeneracy.degeneracy (Graph.empty 5));
  Alcotest.(check int) "path" 1 (Degeneracy.degeneracy (Generators.path 6));
  Alcotest.(check int) "tree" 1 (Degeneracy.degeneracy (Generators.complete_binary_tree 15));
  Alcotest.(check int) "cycle" 2 (Degeneracy.degeneracy (Generators.cycle 9));
  Alcotest.(check int) "K5" 4 (Degeneracy.degeneracy (Generators.complete 5));
  Alcotest.(check int) "K33" 3 (Degeneracy.degeneracy (Generators.complete_bipartite 3 3));
  Alcotest.(check int) "grid" 2 (Degeneracy.degeneracy (Generators.grid 5 5));
  Alcotest.(check int) "petersen" 3 (Degeneracy.degeneracy (Generators.petersen ()))

let test_elimination_order_witnesses () =
  List.iter
    (fun (name, g) ->
      let k = Degeneracy.degeneracy g in
      let order = Degeneracy.elimination_order g in
      Alcotest.(check bool) (name ^ " witness valid") true
        (Degeneracy.is_elimination_order g ~k order);
      Alcotest.(check bool)
        (name ^ " not valid for k-1")
        (k = 0)
        (k = 0 || Degeneracy.is_elimination_order g ~k:(k - 1) order))
    [
      ("cycle", Generators.cycle 8);
      ("K5", Generators.complete 5);
      ("grid", Generators.grid 4 4);
      ("petersen", Generators.petersen ());
    ]

let test_is_elimination_order_guards () =
  let g = Generators.path 3 in
  Alcotest.check_raises "wrong length"
    (Invalid_argument "Degeneracy.is_elimination_order: wrong length") (fun () ->
      ignore (Degeneracy.is_elimination_order g ~k:1 [ 1; 2 ]));
  Alcotest.check_raises "not a permutation"
    (Invalid_argument "Degeneracy.is_elimination_order: not a permutation") (fun () ->
      ignore (Degeneracy.is_elimination_order g ~k:1 [ 1; 1; 2 ]))

let test_bad_order_rejected () =
  (* Removing the star centre first sees full degree. *)
  let g = Generators.star 5 in
  Alcotest.(check bool) "centre-first fails k=1" false
    (Degeneracy.is_elimination_order g ~k:1 [ 1; 2; 3; 4; 5 ]);
  Alcotest.(check bool) "leaves-first works k=1" true
    (Degeneracy.is_elimination_order g ~k:1 [ 2; 3; 4; 5; 1 ])

let test_core_numbers () =
  (* A K4 with a pendant: K4 vertices have coreness 3, pendant 1. *)
  let g = Graph.of_edges 5 [ (1, 2); (1, 3); (1, 4); (2, 3); (2, 4); (3, 4); (4, 5) ] in
  let cores = Degeneracy.core_numbers g in
  Alcotest.(check int) "pendant" 1 cores.(4);
  List.iter (fun v -> Alcotest.(check int) "clique" 3 cores.(v - 1)) [ 1; 2; 3; 4 ]

let test_generalized_small_on_dense () =
  (* Complement of a path has huge plain degeneracy but generalized 1. *)
  let g = Graph.complement (Generators.path 12) in
  Alcotest.(check bool) "plain is large" true (Degeneracy.degeneracy g > 5);
  Alcotest.(check int) "generalized" 1 (Degeneracy.generalized_degeneracy g)

let test_generalized_on_sparse_matches () =
  (* On sparse graphs the generalized value can only be smaller or equal. *)
  List.iter
    (fun g ->
      Alcotest.(check bool) "gd <= d" true
        (Degeneracy.generalized_degeneracy g <= Degeneracy.degeneracy g))
    [ Generators.grid 4 4; Generators.cycle 9; Generators.petersen () ]

let test_generalized_clique () =
  Alcotest.(check int) "clique is generalized-0" 0
    (Degeneracy.generalized_degeneracy (Generators.complete 8));
  Alcotest.(check int) "edgeless is 0" 0 (Degeneracy.generalized_degeneracy (Graph.empty 8))

let test_generalized_order () =
  let g = Graph.complement (Generators.cycle 10) in
  match Degeneracy.generalized_elimination_order g ~k:2 with
  | None -> Alcotest.fail "complement of cycle peels at k=2"
  | Some order ->
    Alcotest.(check int) "full length" 10 (List.length order);
    (* Replay the order and verify each step's side claim. *)
    let removed = Hashtbl.create 16 in
    let remaining = ref 10 in
    List.iter
      (fun (v, side) ->
        let live_deg =
          List.fold_left
            (fun acc u -> if Hashtbl.mem removed u then acc else acc + 1)
            0 (Graph.neighbors g v)
        in
        (match side with
        | `Graph -> Alcotest.(check bool) "graph side small" true (live_deg <= 2)
        | `Complement ->
          Alcotest.(check bool) "complement side small" true (!remaining - 1 - live_deg <= 2));
        Hashtbl.replace removed v ();
        decr remaining)
      order

let test_generalized_order_rejects () =
  (* The Petersen graph is 3-regular on 10 vertices: plain degree 3,
     complement degree 6 — nothing peels at k = 2. *)
  Alcotest.(check bool) "stuck" true
    (Degeneracy.generalized_elimination_order (Generators.petersen ()) ~k:2 = None)

let gen_graph =
  QCheck2.Gen.(
    bind (int_range 1 20) (fun n ->
        map
          (fun seed -> Refnet_graph.Generators.gnp (Random.State.make [| seed; n |]) n 0.3)
          int))

let prop_degeneracy_bounds =
  QCheck2.Test.make ~name:"min degree <= degeneracy <= max degree" ~count:200 gen_graph
    (fun g ->
      let d = Degeneracy.degeneracy g in
      Graph.min_degree g <= d && d <= Graph.max_degree g)

let prop_witness_always_valid =
  QCheck2.Test.make ~name:"elimination order witnesses the degeneracy" ~count:200 gen_graph
    (fun g ->
      Degeneracy.is_elimination_order g ~k:(Degeneracy.degeneracy g)
        (Degeneracy.elimination_order g))

let prop_core_max_is_degeneracy =
  QCheck2.Test.make ~name:"max core number = degeneracy" ~count:200 gen_graph (fun g ->
      let cores = Degeneracy.core_numbers g in
      Array.fold_left max 0 cores = Degeneracy.degeneracy g)

let prop_subgraph_monotone =
  QCheck2.Test.make ~name:"degeneracy is monotone under vertex deletion" ~count:100 gen_graph
    (fun g ->
      QCheck2.assume (Graph.order g >= 2);
      let h, _ = Graph.remove_vertex g 1 in
      Degeneracy.degeneracy h <= Degeneracy.degeneracy g)

let prop_generalized_le_plain =
  QCheck2.Test.make ~name:"generalized degeneracy <= plain degeneracy" ~count:200 gen_graph
    (fun g -> Degeneracy.generalized_degeneracy g <= Degeneracy.degeneracy g)

let prop_generalized_complement_invariant =
  QCheck2.Test.make ~name:"generalized degeneracy is complement-invariant" ~count:100 gen_graph
    (fun g ->
      Degeneracy.generalized_degeneracy g
      = Degeneracy.generalized_degeneracy (Graph.complement g))

let () =
  Alcotest.run "degeneracy"
    [
      ( "unit",
        [
          Alcotest.test_case "known values" `Quick test_known_values;
          Alcotest.test_case "elimination order witnesses" `Quick test_elimination_order_witnesses;
          Alcotest.test_case "guards" `Quick test_is_elimination_order_guards;
          Alcotest.test_case "bad order rejected" `Quick test_bad_order_rejected;
          Alcotest.test_case "core numbers" `Quick test_core_numbers;
          Alcotest.test_case "generalized on dense" `Quick test_generalized_small_on_dense;
          Alcotest.test_case "generalized <= plain (families)" `Quick test_generalized_on_sparse_matches;
          Alcotest.test_case "generalized clique" `Quick test_generalized_clique;
          Alcotest.test_case "generalized order replay" `Quick test_generalized_order;
          Alcotest.test_case "generalized order rejects" `Quick test_generalized_order_rejects;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_degeneracy_bounds;
            prop_witness_always_valid;
            prop_core_max_is_degeneracy;
            prop_subgraph_monotone;
            prop_generalized_le_plain;
            prop_generalized_complement_invariant;
          ] );
    ]
