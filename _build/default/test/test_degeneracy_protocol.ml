open Refnet_graph

let graph_opt =
  Alcotest.option (Alcotest.testable (fun fmt g -> Graph.pp fmt g) Graph.equal)

let run ?decoder ~k g =
  fst (Core.Simulator.run (Core.Degeneracy_protocol.reconstruct ?decoder ~k ()) g)

let test_k1_on_forests () =
  let g = Generators.caterpillar ~spine:5 ~legs:3 in
  Alcotest.check graph_opt "caterpillar" (Some g) (run ~k:1 g)

let test_k2_families () =
  List.iter
    (fun (name, g) -> Alcotest.check graph_opt name (Some g) (run ~k:2 g))
    [
      ("cycle", Generators.cycle 12);
      ("grid", Generators.grid 4 5);
      ("outerplanar", Generators.random_maximal_outerplanar (Random.State.make [| 2 |]) 18);
    ]

let test_k3_families () =
  List.iter
    (fun (name, g) -> Alcotest.check graph_opt name (Some g) (run ~k:3 g))
    [
      ("apollonian", Generators.random_apollonian (Random.State.make [| 3 |]) 25);
      ("petersen", Generators.petersen ());
      ("3-tree", Generators.random_k_tree (Random.State.make [| 4 |]) 20 ~k:3);
    ]

let test_k5_planar_budget () =
  (* Planar graphs have degeneracy <= 5; Apollonian networks (3-degenerate)
     must in particular pass with the planar budget k = 5. *)
  let g = Generators.random_apollonian (Random.State.make [| 5 |]) 30 in
  Alcotest.check graph_opt "planar budget" (Some g) (run ~k:5 g)

let test_overbudget_rejected () =
  (* K6 has degeneracy 5: k=4 must reject, k=5 must reconstruct. *)
  let g = Generators.complete 6 in
  Alcotest.check graph_opt "k=4 rejects K6" None (run ~k:4 g);
  Alcotest.check graph_opt "k=5 accepts K6" (Some g) (run ~k:5 g)

let test_edge_cases () =
  Alcotest.check graph_opt "empty graph" (Some (Graph.empty 4)) (run ~k:2 (Graph.empty 4));
  Alcotest.check graph_opt "single vertex" (Some (Graph.empty 1)) (run ~k:1 (Graph.empty 1));
  Alcotest.check graph_opt "single edge" (Some (Graph.of_edges 2 [ (1, 2) ]))
    (run ~k:1 (Graph.of_edges 2 [ (1, 2) ]))

let test_k_larger_than_needed () =
  (* Overshooting k must not hurt correctness, only message size. *)
  let g = Generators.cycle 9 in
  List.iter (fun k -> Alcotest.check graph_opt "cycle" (Some g) (run ~k g)) [ 2; 3; 4; 6 ]

let test_table_decoder_agrees () =
  let table = Refnet_algebra.Power_sum.Table.build ~n:14 ~k:2 in
  let decoder = Core.Degeneracy_protocol.table_decoder table in
  let g = Generators.random_maximal_outerplanar (Random.State.make [| 7 |]) 14 in
  Alcotest.check graph_opt "table decoder" (Some g) (run ~decoder ~k:2 g);
  Alcotest.check graph_opt "newton decoder" (Some g) (run ~k:2 g)

let test_message_size_at_bound () =
  let k = 3 in
  let g = Generators.random_k_tree (Random.State.make [| 11 |]) 50 ~k in
  let _, t = Core.Simulator.run (Core.Degeneracy_protocol.reconstruct ~k ()) g in
  Alcotest.(check int) "exact layout width"
    (Core.Degeneracy_protocol.message_bits ~k 50)
    t.Core.Simulator.max_bits

let test_compact_layout_same_output () =
  let r = Random.State.make [| 17 |] in
  List.iter
    (fun (k, g) ->
      let fixed = fst (Core.Simulator.run (Core.Degeneracy_protocol.reconstruct ~k ()) g) in
      let compact =
        fst
          (Core.Simulator.run
             (Core.Degeneracy_protocol.reconstruct ~layout:Core.Degeneracy_protocol.Compact ~k ())
             g)
      in
      Alcotest.check graph_opt "layouts agree" fixed compact;
      Alcotest.check graph_opt "and are exact" (Some g) compact)
    [
      (1, Generators.random_tree r 40);
      (2, Generators.grid 5 5);
      (3, Generators.random_apollonian r 30);
    ]

let test_compact_layout_saves_bits_on_stars () =
  (* A star at k = 3: leaves have degree 1 and tiny power sums, which
     the fixed layout pads to the k = 3 worst case. *)
  let g = Generators.star 100 in
  let size layout =
    (snd (Core.Simulator.run (Core.Degeneracy_protocol.reconstruct ~layout ~k:3 ()) g))
      .Core.Simulator.total_bits
  in
  Alcotest.(check bool) "compact strictly smaller" true
    (size Core.Degeneracy_protocol.Compact < size Core.Degeneracy_protocol.Fixed)

let test_invalid_k () =
  Alcotest.check_raises "k=0" (Invalid_argument "Degeneracy_protocol.reconstruct: k must be positive")
    (fun () -> ignore (Core.Degeneracy_protocol.reconstruct ~k:0 ()))

let prop_k_degenerate_roundtrip =
  QCheck2.Test.make ~name:"random k-degenerate graphs reconstruct exactly" ~count:80
    QCheck2.Gen.(triple (int_range 1 40) (int_range 1 4) int)
    (fun (n, k, seed) ->
      let rng = Random.State.make [| seed; n; k |] in
      let g = Generators.random_k_degenerate rng n ~k in
      run ~k g = Some g)

let prop_rejects_iff_degeneracy_exceeds_k =
  QCheck2.Test.make ~name:"accepts iff degeneracy <= k" ~count:100
    QCheck2.Gen.(triple (int_range 1 16) (int_range 1 3) int)
    (fun (n, k, seed) ->
      let rng = Random.State.make [| seed; n; k |] in
      let g = Generators.gnp rng n 0.4 in
      let result = run ~k g in
      if Degeneracy.degeneracy g <= k then result = Some g else result = None)

let prop_gnp_sparse_roundtrip =
  QCheck2.Test.make ~name:"sparse G(n,p) reconstructs with its own degeneracy" ~count:50
    QCheck2.Gen.(pair (int_range 2 30) int)
    (fun (n, seed) ->
      let rng = Random.State.make [| seed; n |] in
      let g = Generators.gnp rng n 0.15 in
      let k = max 1 (Degeneracy.degeneracy g) in
      run ~k g = Some g)

let () =
  Alcotest.run "degeneracy_protocol"
    [
      ( "reconstruction",
        [
          Alcotest.test_case "k=1 forests" `Quick test_k1_on_forests;
          Alcotest.test_case "k=2 families" `Quick test_k2_families;
          Alcotest.test_case "k=3 families" `Quick test_k3_families;
          Alcotest.test_case "k=5 planar budget" `Quick test_k5_planar_budget;
          Alcotest.test_case "over budget rejected" `Quick test_overbudget_rejected;
          Alcotest.test_case "edge cases" `Quick test_edge_cases;
          Alcotest.test_case "k larger than needed" `Quick test_k_larger_than_needed;
          Alcotest.test_case "table decoder agrees" `Quick test_table_decoder_agrees;
          Alcotest.test_case "message size at bound" `Quick test_message_size_at_bound;
          Alcotest.test_case "compact layout agrees" `Quick test_compact_layout_same_output;
          Alcotest.test_case "compact layout saves bits" `Quick test_compact_layout_saves_bits_on_stars;
          Alcotest.test_case "invalid k" `Quick test_invalid_k;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_k_degenerate_roundtrip;
            prop_rejects_iff_degeneracy_exceeds_k;
            prop_gnp_sparse_roundtrip;
          ] );
    ]
