open Refnet_graph

let run p g = fst (Core.Simulator.run p g)

let test_degree_sequence () =
  Alcotest.(check (list int)) "star" [ 6; 1; 1; 1; 1; 1; 1 ]
    (run Core.Easy_protocols.degree_sequence (Generators.star 7));
  Alcotest.(check (list int)) "empty" [] (run Core.Easy_protocols.degree_sequence (Graph.empty 0))

let test_edge_count () =
  Alcotest.(check int) "petersen" 15 (run Core.Easy_protocols.edge_count (Generators.petersen ()));
  Alcotest.(check int) "edgeless" 0 (run Core.Easy_protocols.edge_count (Graph.empty 9))

let test_has_edge () =
  Alcotest.(check bool) "yes" true (run Core.Easy_protocols.has_edge (Generators.path 2));
  Alcotest.(check bool) "no" false (run Core.Easy_protocols.has_edge (Graph.empty 5))

let test_extremal_degrees () =
  let g = Generators.wheel 7 in
  Alcotest.(check int) "max (hub)" 6 (run Core.Easy_protocols.max_degree g);
  Alcotest.(check int) "min (rim)" 3 (run Core.Easy_protocols.min_degree g)

let test_regular () =
  Alcotest.(check bool) "cycle" true (run Core.Easy_protocols.is_regular (Generators.cycle 8));
  Alcotest.(check bool) "petersen" true (run Core.Easy_protocols.is_regular (Generators.petersen ()));
  Alcotest.(check bool) "path" false (run Core.Easy_protocols.is_regular (Generators.path 4));
  Alcotest.(check bool) "empty graph" true (run Core.Easy_protocols.is_regular (Graph.empty 0))

let test_isolated_universal () =
  Alcotest.(check bool) "isolated yes" true
    (run Core.Easy_protocols.has_isolated_vertex (Graph.add_vertices (Generators.path 3) 1));
  Alcotest.(check bool) "isolated no" false
    (run Core.Easy_protocols.has_isolated_vertex (Generators.cycle 4));
  Alcotest.(check bool) "universal yes" true
    (run Core.Easy_protocols.has_universal_vertex (Generators.star 6));
  Alcotest.(check bool) "universal no" false
    (run Core.Easy_protocols.has_universal_vertex (Generators.cycle 5))

let test_degrees_even () =
  Alcotest.(check bool) "cycle even" true
    (run Core.Easy_protocols.all_degrees_even (Generators.cycle 9));
  Alcotest.(check bool) "path odd ends" false
    (run Core.Easy_protocols.all_degrees_even (Generators.path 5))

let test_fingerprint_accepts_real_graphs () =
  List.iter
    (fun g -> Alcotest.(check bool) "consistent" true (run Core.Easy_protocols.sum_of_ids_check g))
    [ Generators.petersen (); Generators.grid 4 4; Graph.empty 3 ]

let test_all_messages_frugal () =
  let g = Generators.complete 64 in
  (* Degree-only protocols: one id width; the fingerprint adds a 2-width
     neighbour sum. *)
  Alcotest.(check bool) "degree-sequence" true
    ((snd (Core.Simulator.run Core.Easy_protocols.degree_sequence g)).Core.Simulator.max_bits
    <= Core.Bounds.id_bits 64);
  Alcotest.(check bool) "fingerprint" true
    ((snd (Core.Simulator.run Core.Easy_protocols.sum_of_ids_check g)).Core.Simulator.max_bits
    <= 3 * Core.Bounds.id_bits 64)

let gen_graph =
  QCheck2.Gen.(
    bind (int_range 1 30) (fun n ->
        map (fun seed -> Generators.gnp (Random.State.make [| seed; n |]) n 0.3) int))

let prop_edge_count_exact =
  QCheck2.Test.make ~name:"edge count = m" ~count:200 gen_graph (fun g ->
      run Core.Easy_protocols.edge_count g = Graph.size g)

let prop_degree_sequence_exact =
  QCheck2.Test.make ~name:"degree sequence matches" ~count:200 gen_graph (fun g ->
      run Core.Easy_protocols.degree_sequence g = Graph.degree_sequence g)

let prop_extremes_exact =
  QCheck2.Test.make ~name:"max/min degree match" ~count:200 gen_graph (fun g ->
      run Core.Easy_protocols.max_degree g = Graph.max_degree g
      && run Core.Easy_protocols.min_degree g = Graph.min_degree g)

let prop_fingerprint_sound =
  QCheck2.Test.make ~name:"handshake fingerprint holds on every graph" ~count:200 gen_graph
    (fun g -> run Core.Easy_protocols.sum_of_ids_check g)

let () =
  Alcotest.run "easy_protocols"
    [
      ( "unit",
        [
          Alcotest.test_case "degree sequence" `Quick test_degree_sequence;
          Alcotest.test_case "edge count" `Quick test_edge_count;
          Alcotest.test_case "has edge" `Quick test_has_edge;
          Alcotest.test_case "extremal degrees" `Quick test_extremal_degrees;
          Alcotest.test_case "regularity" `Quick test_regular;
          Alcotest.test_case "isolated / universal" `Quick test_isolated_universal;
          Alcotest.test_case "degrees even" `Quick test_degrees_even;
          Alcotest.test_case "fingerprint accepts" `Quick test_fingerprint_accepts_real_graphs;
          Alcotest.test_case "frugality" `Quick test_all_messages_frugal;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_edge_count_exact;
            prop_degree_sequence_exact;
            prop_extremes_exact;
            prop_fingerprint_sound;
          ] );
    ]
