open Refnet_graph

let test_total_counts () =
  (* 2^(n choose 2) labelled graphs. *)
  Alcotest.(check int) "n=0" 1 (Enumerate.count 0 ~where:(fun _ -> true));
  Alcotest.(check int) "n=1" 1 (Enumerate.count 1 ~where:(fun _ -> true));
  Alcotest.(check int) "n=3" 8 (Enumerate.count 3 ~where:(fun _ -> true));
  Alcotest.(check int) "n=4" 64 (Enumerate.count 4 ~where:(fun _ -> true))

let test_connected_counts () =
  (* OEIS A001187: 1, 1, 1, 4, 38, 728 connected labelled graphs. *)
  Alcotest.(check int) "n=2" 1 (Enumerate.count 2 ~where:Connectivity.is_connected);
  Alcotest.(check int) "n=3" 4 (Enumerate.count 3 ~where:Connectivity.is_connected);
  Alcotest.(check int) "n=4" 38 (Enumerate.count 4 ~where:Connectivity.is_connected);
  Alcotest.(check int) "n=5" 728 (Enumerate.count 5 ~where:Connectivity.is_connected)

let test_tree_counts () =
  (* Cayley: n^(n-2) labelled trees. *)
  let is_tree g = Connectivity.is_connected g && Spanning.is_forest g in
  Alcotest.(check int) "n=3" 3 (Enumerate.count 3 ~where:is_tree);
  Alcotest.(check int) "n=4" 16 (Enumerate.count 4 ~where:is_tree);
  Alcotest.(check int) "n=5" 125 (Enumerate.count 5 ~where:is_tree)

let test_square_free_counts () =
  (* OEIS A006786-style labelled C4-free counts; small values are easy to
     confirm by hand: all 8 graphs on 3 vertices are C4-free; on 4
     vertices only graphs containing one of the 3 labelled C4s (each C4
     subgraph forces ...) — verified against an independent brute count
     below. *)
  Alcotest.(check int) "n=3" 8 (Enumerate.count_square_free 3);
  let brute n =
    Enumerate.count n ~where:(fun g -> not (Cycles.has_square g))
  in
  List.iter
    (fun n ->
      Alcotest.(check int) (Printf.sprintf "n=%d" n) (brute n) (Enumerate.count_square_free n))
    [ 4; 5 ]

let test_triangle_free_counts () =
  (* OEIS A006785 (labelled triangle-free): 1, 2, 7, 41, 388, 5789... *)
  Alcotest.(check int) "n=2" 2 (Enumerate.count_triangle_free 2);
  Alcotest.(check int) "n=3" 7 (Enumerate.count_triangle_free 3);
  Alcotest.(check int) "n=4" 41 (Enumerate.count_triangle_free 4);
  Alcotest.(check int) "n=5" 388 (Enumerate.count_triangle_free 5)

let test_bipartite_fixed_parts () =
  (* 2^(half^2) bipartite graphs with fixed halves. *)
  Alcotest.(check int) "half=1" 2 (Enumerate.count_bipartite_between ~half:1);
  Alcotest.(check int) "half=2" 16 (Enumerate.count_bipartite_between ~half:2)

let test_edge_slots () =
  Alcotest.(check (list (pair int int))) "n=3" [ (1, 2); (1, 3); (2, 3) ]
    (Enumerate.all_edge_slots 3);
  Alcotest.(check int) "n=5 count" 10 (List.length (Enumerate.all_edge_slots 5))

let test_guard () =
  Alcotest.check_raises "too large" (Invalid_argument "Enumerate.iter: order too large to enumerate")
    (fun () -> Enumerate.iter 11 (fun _ -> ()))

let test_iter_distinct () =
  (* Every enumerated graph is distinct. *)
  let seen = Hashtbl.create 100 in
  Enumerate.iter 4 (fun g ->
      let key = Gio.to_graph6 g in
      Alcotest.(check bool) "fresh" false (Hashtbl.mem seen key);
      Hashtbl.replace seen key ());
  Alcotest.(check int) "total" 64 (Hashtbl.length seen)

let () =
  Alcotest.run "enumerate"
    [
      ( "counts",
        [
          Alcotest.test_case "total" `Quick test_total_counts;
          Alcotest.test_case "connected (A001187)" `Quick test_connected_counts;
          Alcotest.test_case "trees (Cayley)" `Quick test_tree_counts;
          Alcotest.test_case "square-free" `Quick test_square_free_counts;
          Alcotest.test_case "triangle-free (A006785)" `Quick test_triangle_free_counts;
          Alcotest.test_case "bipartite fixed parts" `Quick test_bipartite_fixed_parts;
        ] );
      ( "mechanics",
        [
          Alcotest.test_case "edge slots" `Quick test_edge_slots;
          Alcotest.test_case "size guard" `Quick test_guard;
          Alcotest.test_case "all graphs distinct" `Quick test_iter_distinct;
        ] );
    ]
