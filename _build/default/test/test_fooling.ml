open Refnet_graph

let test_truncate_clips () =
  let p = Core.Fooling.truncate ~budget:2 Core.Reduction.square_oracle in
  let g = Generators.complete 16 in
  let msgs = Core.Simulator.local_phase p g in
  let limit = 2 * Core.Bounds.id_bits 16 in
  Array.iter
    (fun m -> Alcotest.(check bool) "clipped" true (Core.Message.bits m <= limit))
    msgs

let test_truncate_preserves_short_messages () =
  (* Degree-sum style message already below the budget: untouched. *)
  let p = Core.Fooling.truncate ~budget:8 Core.Forest_protocol.reconstruct in
  let g = Generators.path 10 in
  let original = Core.Simulator.local_phase Core.Forest_protocol.reconstruct g in
  let clipped = Core.Simulator.local_phase p g in
  Array.iteri
    (fun i m -> Alcotest.(check bool) "unchanged" true (Core.Message.equal m original.(i)))
    clipped

let test_truncated_square_oracle_fooled () =
  (* The full-information square oracle ships n bits; clipped to
     1 * log n bits it must confuse two graphs that differ on squareness
     already at n = 4 or 5. *)
  let found = ref None in
  (try
     for n = 4 to 5 do
       match
         Core.Fooling.fooling_pair_for ~n ~budget:1 Core.Reduction.square_oracle
           ~property:Cycles.has_square
       with
       | Some pair ->
         found := Some (n, pair);
         raise Exit
       | None -> ()
     done
   with Exit -> ());
  match !found with
  | None -> Alcotest.fail "expected a fooling pair for the clipped oracle"
  | Some (n, pair) ->
    Alcotest.(check bool) "properties differ" true (pair.Core.Fooling.out1 <> pair.Core.Fooling.out2);
    Alcotest.(check bool) "graphs differ" false (Graph.equal pair.Core.Fooling.g1 pair.Core.Fooling.g2);
    (* And the clipped local functions really agree on the two graphs. *)
    let clipped = Core.Fooling.truncate ~budget:1 Core.Reduction.square_oracle in
    let v g = Core.Simulator.local_phase clipped g in
    let m1 = v pair.Core.Fooling.g1 and m2 = v pair.Core.Fooling.g2 in
    Array.iteri
      (fun i m ->
        Alcotest.(check bool) (Printf.sprintf "message %d/%d equal" (i + 1) n) true
          (Core.Message.equal m m2.(i)))
      m1

let test_full_information_never_fooled () =
  (* Unclipped, the incidence-vector messages separate all graphs. *)
  for n = 2 to 5 do
    Alcotest.(check bool)
      (Printf.sprintf "n=%d" n)
      true
      (Core.Fooling.find_pair ~n ~property:Cycles.has_square
         ~local:Core.Reduction.square_oracle.Core.Protocol.local (Enumerate.iter n)
      = None)
  done

let test_degeneracy_protocol_certified_on_its_class () =
  (* Over all graphs of degeneracy <= 2 on 5 vertices, the Algorithm 3
     messages are collision-free with respect to graph identity (full
     reconstruction implies this; the certificate checks it directly). *)
  let enum f =
    Enumerate.iter 5 (fun g -> if Degeneracy.degeneracy g <= 2 then f g)
  in
  let p = Core.Degeneracy_protocol.reconstruct ~k:2 () in
  Alcotest.(check bool) "no collisions" true
    (Core.Fooling.certify ~n:5 ~property:(fun g -> Graph.edges g)
       ~local:p.Core.Protocol.local enum
    = None)

let test_vector_count_capacity () =
  (* The clipped oracle's capacity collapses far below the 2^10 graphs
     at n = 5. *)
  let clipped = Core.Fooling.truncate ~budget:1 Core.Reduction.square_oracle in
  let capacity =
    Core.Fooling.vector_count ~n:5 ~local:clipped.Core.Protocol.local (Enumerate.iter 5)
  in
  let total = Enumerate.count 5 ~where:(fun _ -> true) in
  Alcotest.(check bool) "capacity below family size" true (capacity < total);
  (* The unclipped oracle distinguishes everything. *)
  let full =
    Core.Fooling.vector_count ~n:5 ~local:Core.Reduction.square_oracle.Core.Protocol.local
      (Enumerate.iter 5)
  in
  Alcotest.(check int) "full capacity" total full

let prop_truncation_monotone =
  QCheck2.Test.make ~name:"smaller budgets never increase capacity" ~count:10
    QCheck2.Gen.(int_range 0 100)
    (fun _ ->
      let cap b =
        let p = Core.Fooling.truncate ~budget:b Core.Reduction.square_oracle in
        Core.Fooling.vector_count ~n:4 ~local:p.Core.Protocol.local (Enumerate.iter 4)
      in
      let c1 = cap 1 and c2 = cap 2 and c3 = cap 3 in
      c1 <= c2 && c2 <= c3)

let () =
  Alcotest.run "fooling"
    [
      ( "truncation",
        [
          Alcotest.test_case "clips" `Quick test_truncate_clips;
          Alcotest.test_case "preserves short messages" `Quick test_truncate_preserves_short_messages;
        ] );
      ( "fooling pairs",
        [
          Alcotest.test_case "clipped square oracle fooled" `Quick test_truncated_square_oracle_fooled;
          Alcotest.test_case "full information never fooled" `Quick test_full_information_never_fooled;
          Alcotest.test_case "degeneracy protocol certified" `Quick
            test_degeneracy_protocol_certified_on_its_class;
          Alcotest.test_case "vector capacity" `Quick test_vector_count_capacity;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest [ prop_truncation_monotone ]);
    ]
