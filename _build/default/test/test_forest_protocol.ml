open Refnet_graph

let graph_opt =
  Alcotest.option (Alcotest.testable (fun fmt g -> Graph.pp fmt g) Graph.equal)

let run g = fst (Core.Simulator.run Core.Forest_protocol.reconstruct g)

let test_reconstruct_path () =
  let g = Generators.path 7 in
  Alcotest.check graph_opt "path" (Some g) (run g)

let test_reconstruct_star () =
  let g = Generators.star 9 in
  Alcotest.check graph_opt "star" (Some g) (run g)

let test_reconstruct_binary_tree () =
  let g = Generators.complete_binary_tree 31 in
  Alcotest.check graph_opt "binary tree" (Some g) (run g)

let test_reconstruct_forest_with_isolated () =
  let g = Graph.of_edges 8 [ (1, 2); (2, 3); (5, 6) ] in
  Alcotest.check graph_opt "forest" (Some g) (run g)

let test_reconstruct_edgeless () =
  let g = Graph.empty 5 in
  Alcotest.check graph_opt "edgeless" (Some g) (run g)

let test_single_vertex () =
  Alcotest.check graph_opt "singleton" (Some (Graph.empty 1)) (run (Graph.empty 1))

let test_cycle_rejected () =
  Alcotest.check graph_opt "cycle" None (run (Generators.cycle 5));
  Alcotest.check graph_opt "tree + cycle mix" None
    (run (Graph.disjoint_union (Generators.path 3) (Generators.cycle 4)))

let test_recognizer () =
  let accepts g = fst (Core.Simulator.run Core.Forest_protocol.recognize g) in
  Alcotest.(check bool) "forest yes" true (accepts (Generators.caterpillar ~spine:3 ~legs:2));
  Alcotest.(check bool) "cycle no" false (accepts (Generators.cycle 6));
  Alcotest.(check bool) "K4 no" false (accepts (Generators.complete 4))

let test_message_size_exact () =
  let g = Generators.random_tree (Random.State.make [| 5 |]) 200 in
  let _, t = Core.Simulator.run Core.Forest_protocol.reconstruct g in
  Alcotest.(check int) "every message at the bound"
    (Core.Forest_protocol.message_bits 200) t.Core.Simulator.max_bits;
  (* The paper's claim: under 4 log n bits. *)
  Alcotest.(check bool) "within 4 log n" true (Core.Simulator.is_frugal t ~c:4)

let test_relabelled_trees () =
  (* Labels are load-bearing; reconstruction must preserve them. *)
  let g = Generators.path 6 in
  let h = Graph.relabel g [| 4; 2; 6; 1; 5; 3 |] in
  Alcotest.check graph_opt "relabelled" (Some h) (run h)

let prop_random_forests_roundtrip =
  QCheck2.Test.make ~name:"every random forest reconstructs exactly" ~count:150
    QCheck2.Gen.(triple (int_range 1 60) (int_range 1 5) int)
    (fun (n, trees, seed) ->
      let rng = Random.State.make [| seed; n; trees |] in
      let g = Generators.random_forest rng n ~trees:(min trees n) in
      run g = Some g)

let prop_any_cyclic_graph_rejected =
  QCheck2.Test.make ~name:"graphs with a cycle are rejected" ~count:150
    QCheck2.Gen.(pair (int_range 3 30) int)
    (fun (n, seed) ->
      let rng = Random.State.make [| seed; n |] in
      let g = Generators.gnp rng n 0.4 in
      QCheck2.assume (not (Cycles.is_acyclic g));
      run g = None)

let prop_async_stable =
  QCheck2.Test.make ~name:"async delivery reconstructs identically" ~count:50
    QCheck2.Gen.(pair (int_range 1 40) int)
    (fun (n, seed) ->
      let rng = Random.State.make [| seed |] in
      let g = Generators.random_tree rng n in
      let out, _ = Core.Simulator.run_async ~rng Core.Forest_protocol.reconstruct g in
      out = Some g)

let () =
  Alcotest.run "forest_protocol"
    [
      ( "reconstruction",
        [
          Alcotest.test_case "path" `Quick test_reconstruct_path;
          Alcotest.test_case "star" `Quick test_reconstruct_star;
          Alcotest.test_case "binary tree" `Quick test_reconstruct_binary_tree;
          Alcotest.test_case "forest with isolated vertices" `Quick test_reconstruct_forest_with_isolated;
          Alcotest.test_case "edgeless" `Quick test_reconstruct_edgeless;
          Alcotest.test_case "single vertex" `Quick test_single_vertex;
          Alcotest.test_case "cycles rejected" `Quick test_cycle_rejected;
          Alcotest.test_case "recognizer" `Quick test_recognizer;
          Alcotest.test_case "message size exact" `Quick test_message_size_exact;
          Alcotest.test_case "relabelled trees" `Quick test_relabelled_trees;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_random_forests_roundtrip; prop_any_cyclic_graph_rejected; prop_async_stable ] );
    ]
