open Refnet_graph

let graph_opt =
  Alcotest.option (Alcotest.testable (fun fmt g -> Graph.pp fmt g) Graph.equal)

let run ~k g = fst (Core.Simulator.run (Core.Generalized_degeneracy.reconstruct ~k ()) g)

let test_dense_complements () =
  (* Complements of 1-degenerate graphs have generalized degeneracy 1 but
     plain degeneracy about n - 2: the plain protocol is useless, the
     generalized one reconstructs. *)
  List.iter
    (fun (name, g) ->
      let c = Graph.complement g in
      Alcotest.check graph_opt name (Some c) (run ~k:2 c))
    [
      ("complement of path", Generators.path 12);
      ("complement of star", Generators.star 10);
      ("complement of forest", Generators.random_forest (Random.State.make [| 8 |]) 12 ~trees:3);
    ]

let test_clique () =
  let g = Generators.complete 9 in
  Alcotest.check graph_opt "K9 at k=0" (Some g) (run ~k:0 g);
  Alcotest.check graph_opt "edgeless at k=0" (Some (Graph.empty 9)) (run ~k:0 (Graph.empty 9))

let test_sparse_still_works () =
  (* Generalized k dominates plain k, so plain families still pass. *)
  List.iter
    (fun (name, g) -> Alcotest.check graph_opt name (Some g) (run ~k:2 g))
    [ ("cycle", Generators.cycle 10); ("grid", Generators.grid 3 4) ]

let test_mixed_graph () =
  (* A clique joined to pendant leaves: plain degeneracy is high (clique),
     generalized peels leaves from the sparse side and clique vertices
     from the dense side only once the leaves are gone... the combined
     structure still needs k >= the mixing width. *)
  let clique = Generators.complete 8 in
  let g = Graph.add_edges (Graph.add_vertices clique 3) [ (1, 9); (2, 10); (3, 11) ] in
  let gd = Degeneracy.generalized_degeneracy g in
  Alcotest.check graph_opt "reconstructs at its own gd" (Some g) (run ~k:gd g)

let test_rejects_below () =
  let g = Generators.petersen () in
  (* gd(Petersen) = 3: plain degree 3 everywhere, complement 6-regular. *)
  Alcotest.(check int) "petersen gd" 3 (Degeneracy.generalized_degeneracy g);
  Alcotest.check graph_opt "k=2 rejects" None (run ~k:2 g);
  Alcotest.check graph_opt "k=3 accepts" (Some g) (run ~k:3 g)

let test_recognize () =
  let accepts k g = fst (Core.Simulator.run (Core.Generalized_degeneracy.recognize k) g) in
  Alcotest.(check bool) "dense yes" true (accepts 1 (Graph.complement (Generators.path 10)));
  Alcotest.(check bool) "petersen no at 2" false (accepts 2 (Generators.petersen ()))

let test_message_size () =
  let k = 2 and n = 40 in
  let g = Graph.complement (Generators.path n) in
  let _, t = Core.Simulator.run (Core.Generalized_degeneracy.reconstruct ~k ()) g in
  Alcotest.(check int) "exact layout"
    (Core.Generalized_degeneracy.message_bits ~k n)
    t.Core.Simulator.max_bits

let prop_matches_generalized_degeneracy =
  QCheck2.Test.make ~name:"accepts iff generalized degeneracy <= k" ~count:80
    QCheck2.Gen.(triple (int_range 1 12) (int_range 0 3) int)
    (fun (n, k, seed) ->
      let rng = Random.State.make [| seed; n; k |] in
      let g = Generators.gnp rng n 0.5 in
      let result = run ~k g in
      if Degeneracy.generalized_degeneracy g <= k then result = Some g else result = None)

let prop_complement_symmetry =
  QCheck2.Test.make ~name:"reconstructs g iff reconstructs complement" ~count:60
    QCheck2.Gen.(pair (int_range 1 12) int)
    (fun (n, seed) ->
      let rng = Random.State.make [| seed; n |] in
      let g = Generators.gnp rng n 0.5 in
      let k = Degeneracy.generalized_degeneracy g in
      run ~k g = Some g && run ~k (Graph.complement g) = Some (Graph.complement g))

let () =
  Alcotest.run "generalized_degeneracy"
    [
      ( "unit",
        [
          Alcotest.test_case "dense complements" `Quick test_dense_complements;
          Alcotest.test_case "clique at k=0" `Quick test_clique;
          Alcotest.test_case "sparse still works" `Quick test_sparse_still_works;
          Alcotest.test_case "mixed graph" `Quick test_mixed_graph;
          Alcotest.test_case "rejects below threshold" `Quick test_rejects_below;
          Alcotest.test_case "recognize" `Quick test_recognize;
          Alcotest.test_case "message size" `Quick test_message_size;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_matches_generalized_degeneracy; prop_complement_symmetry ] );
    ]
