open Refnet_graph

let rng () = Random.State.make [| 42; 7 |]

let test_path () =
  let g = Generators.path 5 in
  Alcotest.(check int) "size" 4 (Graph.size g);
  Alcotest.(check int) "degeneracy" 1 (Degeneracy.degeneracy g);
  Alcotest.(check bool) "connected" true (Connectivity.is_connected g);
  Alcotest.(check int) "singleton path" 0 (Graph.size (Generators.path 1))

let test_cycle () =
  let g = Generators.cycle 6 in
  Alcotest.(check int) "size" 6 (Graph.size g);
  Alcotest.(check int) "max degree" 2 (Graph.max_degree g);
  Alcotest.(check (option int)) "girth" (Some 6) (Cycles.girth g);
  Alcotest.(check int) "degeneracy" 2 (Degeneracy.degeneracy g)

let test_complete () =
  let g = Generators.complete 6 in
  Alcotest.(check int) "size" 15 (Graph.size g);
  Alcotest.(check int) "degeneracy" 5 (Degeneracy.degeneracy g);
  Alcotest.(check (option int)) "diameter" (Some 1) (Distance.diameter g)

let test_complete_bipartite () =
  let g = Generators.complete_bipartite 3 4 in
  Alcotest.(check int) "size" 12 (Graph.size g);
  Alcotest.(check bool) "bipartite" true (Bipartite.is_bipartite g);
  Alcotest.(check bool) "has square" true (Cycles.has_square g);
  Alcotest.(check bool) "no triangle" false (Cycles.has_triangle g)

let test_star () =
  let g = Generators.star 7 in
  Alcotest.(check int) "center degree" 6 (Graph.degree g 1);
  Alcotest.(check int) "degeneracy" 1 (Degeneracy.degeneracy g)

let test_wheel () =
  let g = Generators.wheel 6 in
  Alcotest.(check int) "size" 10 (Graph.size g);
  Alcotest.(check bool) "triangle" true (Cycles.has_triangle g);
  Alcotest.(check int) "degeneracy" 3 (Degeneracy.degeneracy g)

let test_grid () =
  let g = Generators.grid 4 3 in
  Alcotest.(check int) "order" 12 (Graph.order g);
  Alcotest.(check int) "size" 17 (Graph.size g);
  Alcotest.(check int) "degeneracy" 2 (Degeneracy.degeneracy g);
  Alcotest.(check bool) "bipartite" true (Bipartite.is_bipartite g);
  Alcotest.(check bool) "square" true (Cycles.has_square g)

let test_torus () =
  let g = Generators.torus 4 4 in
  Alcotest.(check int) "4-regular" 4 (Graph.min_degree g);
  Alcotest.(check int) "size" 32 (Graph.size g);
  Alcotest.(check bool) "connected" true (Connectivity.is_connected g)

let test_hypercube () =
  let g = Generators.hypercube 4 in
  Alcotest.(check int) "order" 16 (Graph.order g);
  Alcotest.(check int) "size" 32 (Graph.size g);
  Alcotest.(check bool) "bipartite" true (Bipartite.is_bipartite g);
  Alcotest.(check (option int)) "diameter = dimension" (Some 4) (Distance.diameter g);
  Alcotest.(check int) "degeneracy" 4 (Degeneracy.degeneracy g)

let test_petersen () =
  let g = Generators.petersen () in
  Alcotest.(check int) "order" 10 (Graph.order g);
  Alcotest.(check int) "size" 15 (Graph.size g);
  Alcotest.(check int) "3-regular" 3 (Graph.max_degree g);
  Alcotest.(check (option int)) "girth 5" (Some 5) (Cycles.girth g);
  Alcotest.(check (option int)) "diameter 2" (Some 2) (Distance.diameter g)

let test_binary_tree () =
  let g = Generators.complete_binary_tree 15 in
  Alcotest.(check bool) "is forest" true (Spanning.is_forest g);
  Alcotest.(check bool) "connected" true (Connectivity.is_connected g)

let test_caterpillar () =
  let g = Generators.caterpillar ~spine:4 ~legs:2 in
  Alcotest.(check int) "order" 12 (Graph.order g);
  Alcotest.(check bool) "forest" true (Spanning.is_forest g);
  Alcotest.(check bool) "connected" true (Connectivity.is_connected g)

let test_gnp_extremes () =
  let g0 = Generators.gnp (rng ()) 20 0.0 in
  Alcotest.(check int) "p=0 empty" 0 (Graph.size g0);
  let g1 = Generators.gnp (rng ()) 20 1.0 in
  Alcotest.(check int) "p=1 complete" 190 (Graph.size g1)

let test_random_tree () =
  let r = rng () in
  for n = 1 to 30 do
    let g = Generators.random_tree r n in
    Alcotest.(check int) (Printf.sprintf "n=%d edges" n) (n - 1) (Graph.size g);
    Alcotest.(check bool) (Printf.sprintf "n=%d connected" n) true (Connectivity.is_connected g);
    Alcotest.(check bool) (Printf.sprintf "n=%d acyclic" n) true (Cycles.is_acyclic g)
  done

let test_random_forest () =
  let r = rng () in
  for trees = 1 to 6 do
    let g = Generators.random_forest r 24 ~trees in
    Alcotest.(check bool) "forest" true (Spanning.is_forest g);
    Alcotest.(check int)
      (Printf.sprintf "%d components" trees)
      trees
      (Connectivity.component_count g)
  done

let test_random_k_degenerate () =
  let r = rng () in
  List.iter
    (fun k ->
      let g = Generators.random_k_degenerate r 40 ~k in
      Alcotest.(check bool)
        (Printf.sprintf "k=%d bound" k)
        true
        (Degeneracy.degeneracy g <= k);
      (* Construction wires each vertex past k+1 to exactly k earlier
         ones, so the bound is tight. *)
      Alcotest.(check int) (Printf.sprintf "k=%d tight" k) k (Degeneracy.degeneracy g))
    [ 1; 2; 3; 5 ]

let test_random_k_tree () =
  let r = rng () in
  List.iter
    (fun k ->
      let g = Generators.random_k_tree r 30 ~k in
      Alcotest.(check int) (Printf.sprintf "k=%d degeneracy" k) k (Degeneracy.degeneracy g);
      Alcotest.(check int)
        (Printf.sprintf "k=%d edges" k)
        ((k * (k + 1) / 2) + ((30 - k - 1) * k))
        (Graph.size g);
      Alcotest.(check bool) "connected" true (Connectivity.is_connected g))
    [ 1; 2; 3; 4 ]

let test_random_apollonian () =
  let r = rng () in
  let g = Generators.random_apollonian r 40 in
  Alcotest.(check int) "degeneracy 3" 3 (Degeneracy.degeneracy g);
  (* Planar triangulations have exactly 3n - 6 edges. *)
  Alcotest.(check int) "3n-6 edges" ((3 * 40) - 6) (Graph.size g);
  Alcotest.(check bool) "connected" true (Connectivity.is_connected g)

let test_random_maximal_outerplanar () =
  let r = rng () in
  let g = Generators.random_maximal_outerplanar r 25 in
  (* Maximal outerplanar graphs have exactly 2n - 3 edges, degeneracy 2. *)
  Alcotest.(check int) "2n-3 edges" ((2 * 25) - 3) (Graph.size g);
  Alcotest.(check int) "degeneracy 2" 2 (Degeneracy.degeneracy g);
  Alcotest.(check bool) "has triangle" true (Cycles.has_triangle g)

let test_random_bipartite () =
  let r = rng () in
  let g = Generators.random_bipartite r ~left:6 ~right:7 0.5 in
  Alcotest.(check int) "order" 13 (Graph.order g);
  Alcotest.(check bool) "parts respected" true
    (Bipartite.respects_parts g ~left:[ 1; 2; 3; 4; 5; 6 ] ~right:[ 7; 8; 9; 10; 11; 12; 13 ])

let test_random_connected () =
  let r = rng () in
  for _ = 1 to 10 do
    let g = Generators.random_connected r 30 0.02 in
    Alcotest.(check bool) "connected" true (Connectivity.is_connected g)
  done

let test_random_square_free () =
  let r = rng () in
  let g = Generators.random_square_free r 20 ~attempts:400 in
  Alcotest.(check bool) "no square" false (Cycles.has_square g);
  Alcotest.(check bool) "non-trivial" true (Graph.size g > 10)

let () =
  Alcotest.run "generators"
    [
      ( "deterministic families",
        [
          Alcotest.test_case "path" `Quick test_path;
          Alcotest.test_case "cycle" `Quick test_cycle;
          Alcotest.test_case "complete" `Quick test_complete;
          Alcotest.test_case "complete bipartite" `Quick test_complete_bipartite;
          Alcotest.test_case "star" `Quick test_star;
          Alcotest.test_case "wheel" `Quick test_wheel;
          Alcotest.test_case "grid" `Quick test_grid;
          Alcotest.test_case "torus" `Quick test_torus;
          Alcotest.test_case "hypercube" `Quick test_hypercube;
          Alcotest.test_case "petersen" `Quick test_petersen;
          Alcotest.test_case "binary tree" `Quick test_binary_tree;
          Alcotest.test_case "caterpillar" `Quick test_caterpillar;
        ] );
      ( "random families",
        [
          Alcotest.test_case "gnp extremes" `Quick test_gnp_extremes;
          Alcotest.test_case "random tree" `Quick test_random_tree;
          Alcotest.test_case "random forest" `Quick test_random_forest;
          Alcotest.test_case "random k-degenerate" `Quick test_random_k_degenerate;
          Alcotest.test_case "random k-tree" `Quick test_random_k_tree;
          Alcotest.test_case "random apollonian" `Quick test_random_apollonian;
          Alcotest.test_case "random maximal outerplanar" `Quick test_random_maximal_outerplanar;
          Alcotest.test_case "random bipartite" `Quick test_random_bipartite;
          Alcotest.test_case "random connected" `Quick test_random_connected;
          Alcotest.test_case "random square-free" `Quick test_random_square_free;
        ] );
    ]
