open Refnet_graph

let graph = Alcotest.testable (fun fmt g -> Graph.pp fmt g) Graph.equal

let test_edge_list_roundtrip () =
  let g = Generators.petersen () in
  Alcotest.check graph "roundtrip" g (Gio.of_edge_list (Gio.to_edge_list g));
  let e = Graph.empty 4 in
  Alcotest.check graph "edgeless" e (Gio.of_edge_list (Gio.to_edge_list e))

let test_edge_list_malformed () =
  Alcotest.check_raises "empty" (Invalid_argument "Gio.of_edge_list: empty input") (fun () ->
      ignore (Gio.of_edge_list "  \n "));
  Alcotest.check_raises "count mismatch"
    (Invalid_argument "Gio.of_edge_list: edge count mismatch") (fun () ->
      ignore (Gio.of_edge_list "3 2\n1 2\n"));
  Alcotest.check_raises "bad ints" (Invalid_argument "Gio.of_edge_list: bad integers")
    (fun () -> ignore (Gio.of_edge_list "x y\n"))

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

let test_dot_output () =
  let s = Gio.to_dot ~name:"demo" (Graph.of_edges 3 [ (1, 2) ]) in
  Alcotest.(check bool) "header" true (String.length s > 10 && String.sub s 0 10 = "graph demo");
  Alcotest.(check bool) "edge present" true (contains ~needle:"1 -- 2;" s)

let test_graph6_known_values () =
  (* K3 encodes as "Bw" and P3 (1-2-3) as "Bo"? Check against nauty
     conventions: n=3 -> 'B'; K3 upper triangle bits (1,2)(1,3)(2,3) =
     111 -> 111000 -> 56 + 63 = 119 = 'w'. *)
  Alcotest.(check string) "K3" "Bw" (Gio.to_graph6 (Generators.complete 3));
  Alcotest.(check string) "empty n=5" "D??" (Gio.to_graph6 (Graph.empty 5))

let test_graph6_roundtrip_families () =
  List.iter
    (fun g -> Alcotest.check graph "roundtrip" g (Gio.of_graph6 (Gio.to_graph6 g)))
    [
      Generators.petersen ();
      Generators.grid 4 5;
      Generators.complete 7;
      Graph.empty 1;
      Graph.empty 0;
      Generators.cycle 63;
      Generators.path 64;
    ]

let test_graph6_large_n_header () =
  (* n > 62 switches to the 4-byte header. *)
  let g = Generators.path 80 in
  let s = Gio.to_graph6 g in
  Alcotest.(check char) "marker" '~' s.[0];
  Alcotest.check graph "roundtrip" g (Gio.of_graph6 s)

let test_graph6_invalid () =
  Alcotest.check_raises "empty" (Invalid_argument "Gio.of_graph6: empty input") (fun () ->
      ignore (Gio.of_graph6 ""));
  Alcotest.check_raises "truncated" (Invalid_argument "Gio.of_graph6: truncated input")
    (fun () -> ignore (Gio.of_graph6 "D"))

let gen_graph =
  QCheck2.Gen.(
    bind (int_range 1 40) (fun n ->
        map
          (fun seed -> Refnet_graph.Generators.gnp (Random.State.make [| seed; n |]) n 0.25)
          int))

let prop_graph6_roundtrip =
  QCheck2.Test.make ~name:"graph6 roundtrip" ~count:200 gen_graph (fun g ->
      Graph.equal g (Gio.of_graph6 (Gio.to_graph6 g)))

let prop_edge_list_roundtrip =
  QCheck2.Test.make ~name:"edge list roundtrip" ~count:200 gen_graph (fun g ->
      Graph.equal g (Gio.of_edge_list (Gio.to_edge_list g)))

let prop_graph6_length =
  QCheck2.Test.make ~name:"graph6 length is header + ceil(C(n,2)/6)" ~count:200 gen_graph
    (fun g ->
      let n = Graph.order g in
      let header = if n <= 62 then 1 else 4 in
      String.length (Gio.to_graph6 g) = header + ((n * (n - 1) / 2) + 5) / 6)

let () =
  Alcotest.run "gio"
    [
      ( "edge list / dot",
        [
          Alcotest.test_case "roundtrip" `Quick test_edge_list_roundtrip;
          Alcotest.test_case "malformed" `Quick test_edge_list_malformed;
          Alcotest.test_case "dot output" `Quick test_dot_output;
        ] );
      ( "graph6",
        [
          Alcotest.test_case "known values" `Quick test_graph6_known_values;
          Alcotest.test_case "family roundtrips" `Quick test_graph6_roundtrip_families;
          Alcotest.test_case "large n header" `Quick test_graph6_large_n_header;
          Alcotest.test_case "invalid input" `Quick test_graph6_invalid;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_graph6_roundtrip; prop_edge_list_roundtrip; prop_graph6_length ] );
    ]
