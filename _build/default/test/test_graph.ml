open Refnet_graph
open Refnet_bits

let graph = Alcotest.testable (fun fmt g -> Graph.pp fmt g) Graph.equal

let test_empty () =
  let g = Graph.empty 5 in
  Alcotest.(check int) "order" 5 (Graph.order g);
  Alcotest.(check int) "size" 0 (Graph.size g);
  Alcotest.(check int) "degree" 0 (Graph.degree g 3);
  Alcotest.(check (list int)) "vertices" [ 1; 2; 3; 4; 5 ] (Graph.vertices g)

let test_of_edges () =
  let g = Graph.of_edges 4 [ (1, 2); (2, 3); (3, 1); (2, 1) ] in
  Alcotest.(check int) "size dedups" 3 (Graph.size g);
  Alcotest.(check bool) "1-2" true (Graph.has_edge g 1 2);
  Alcotest.(check bool) "2-1 symmetric" true (Graph.has_edge g 2 1);
  Alcotest.(check bool) "1-4" false (Graph.has_edge g 1 4);
  Alcotest.(check (list int)) "neighbors sorted" [ 1; 3 ] (Graph.neighbors g 2)

let test_guards () =
  Alcotest.check_raises "loop" (Invalid_argument "Graph.Builder.add_edge: self-loop")
    (fun () -> ignore (Graph.of_edges 3 [ (2, 2) ]));
  Alcotest.check_raises "range" (Invalid_argument "Graph.Builder: vertex out of range")
    (fun () -> ignore (Graph.of_edges 3 [ (1, 4) ]));
  let g = Graph.empty 3 in
  Alcotest.check_raises "has_edge range" (Invalid_argument "Graph.has_edge: vertex out of range")
    (fun () -> ignore (Graph.has_edge g 0 1))

let test_builder_incremental () =
  let b = Graph.Builder.create 3 in
  Graph.Builder.add_edge b 1 2;
  let g1 = Graph.Builder.build b in
  Graph.Builder.add_edge b 2 3;
  let g2 = Graph.Builder.build b in
  Alcotest.(check int) "snapshot unaffected" 1 (Graph.size g1);
  Alcotest.(check int) "later build sees more" 2 (Graph.size g2)

let test_edges_order () =
  let g = Graph.of_edges 4 [ (3, 4); (1, 3); (1, 2) ] in
  Alcotest.(check (list (pair int int))) "lex order" [ (1, 2); (1, 3); (3, 4) ] (Graph.edges g)

let test_neighborhood_bitvec () =
  let g = Graph.of_edges 5 [ (2, 4); (2, 5) ] in
  Alcotest.(check (list int)) "incidence" [ 3; 4 ] (Bitvec.to_list (Graph.neighborhood g 2))

let test_degrees () =
  let g = Graph.of_edges 5 [ (1, 2); (1, 3); (1, 4); (2, 3) ] in
  Alcotest.(check int) "max" 3 (Graph.max_degree g);
  Alcotest.(check int) "min" 0 (Graph.min_degree g);
  Alcotest.(check (list int)) "sequence" [ 3; 2; 2; 1; 0 ] (Graph.degree_sequence g)

let test_equal () =
  let g = Graph.of_edges 3 [ (1, 2) ] in
  let h = Graph.of_edges 3 [ (2, 1) ] in
  Alcotest.check graph "same edges" g h;
  Alcotest.(check bool) "different order" false (Graph.equal g (Graph.empty 4));
  Alcotest.(check bool) "different edges" false (Graph.equal g (Graph.empty 3))

let test_complement () =
  let g = Graph.of_edges 4 [ (1, 2); (3, 4) ] in
  let c = Graph.complement g in
  Alcotest.(check int) "sizes add to C(4,2)" 6 (Graph.size g + Graph.size c);
  Alcotest.(check bool) "flipped" true (Graph.has_edge c 1 3);
  Alcotest.(check bool) "flipped off" false (Graph.has_edge c 1 2);
  Alcotest.check graph "involution" g (Graph.complement c)

let test_induced () =
  let g = Graph.of_edges 5 [ (1, 2); (2, 3); (3, 4); (4, 5) ] in
  let h, map = Graph.induced g [ 2; 3; 5 ] in
  Alcotest.(check int) "order" 3 (Graph.order h);
  Alcotest.(check int) "size" 1 (Graph.size h);
  Alcotest.(check bool) "2-3 kept" true (Graph.has_edge h 1 2);
  Alcotest.(check (array int)) "label map" [| 2; 3; 5 |] map

let test_remove_vertex () =
  let g = Graph.of_edges 4 [ (1, 2); (2, 3); (3, 4) ] in
  let h, map = Graph.remove_vertex g 2 in
  Alcotest.(check int) "order" 3 (Graph.order h);
  Alcotest.(check int) "size" 1 (Graph.size h);
  Alcotest.(check (array int)) "map" [| 1; 3; 4 |] map

let test_relabel () =
  let g = Graph.of_edges 3 [ (1, 2) ] in
  let h = Graph.relabel g [| 3; 1; 2 |] in
  Alcotest.(check bool) "3-1" true (Graph.has_edge h 3 1);
  Alcotest.(check bool) "no 1-2" false (Graph.has_edge h 1 2);
  Alcotest.check_raises "not a permutation" (Invalid_argument "Graph.relabel: not a permutation")
    (fun () -> ignore (Graph.relabel g [| 1; 1; 2 |]))

let test_disjoint_union () =
  let g = Graph.of_edges 2 [ (1, 2) ] in
  let h = Graph.of_edges 3 [ (1, 3) ] in
  let u = Graph.disjoint_union g h in
  Alcotest.(check int) "order" 5 (Graph.order u);
  Alcotest.(check bool) "g edge" true (Graph.has_edge u 1 2);
  Alcotest.(check bool) "h edge shifted" true (Graph.has_edge u 3 5)

let test_add_vertices_edges () =
  let g = Graph.add_vertices (Graph.of_edges 2 [ (1, 2) ]) 2 in
  Alcotest.(check int) "order" 4 (Graph.order g);
  let g = Graph.add_edges g [ (3, 4) ] in
  Alcotest.(check bool) "new edge" true (Graph.has_edge g 3 4);
  Alcotest.(check bool) "old kept" true (Graph.has_edge g 1 2)

let test_is_subgraph () =
  let g = Graph.of_edges 3 [ (1, 2) ] in
  let h = Graph.of_edges 3 [ (1, 2); (2, 3) ] in
  Alcotest.(check bool) "subgraph" true (Graph.is_subgraph g h);
  Alcotest.(check bool) "not super" false (Graph.is_subgraph h g)

let gen_graph =
  QCheck2.Gen.(
    bind (int_range 1 30) (fun n ->
        map
          (fun pairs ->
            let edges =
              List.filter_map
                (fun (a, b) ->
                  let u = 1 + (abs a mod n) and v = 1 + (abs b mod n) in
                  if u = v then None else Some (u, v))
                pairs
            in
            Graph.of_edges n edges)
          (list_size (int_range 0 60) (pair int int))))

let prop_handshake =
  QCheck2.Test.make ~name:"sum of degrees = 2m" ~count:200 gen_graph (fun g ->
      Graph.fold_vertices g 0 (fun acc v -> acc + Graph.degree g v) = 2 * Graph.size g)

let prop_complement_involution =
  QCheck2.Test.make ~name:"complement involutive" ~count:200 gen_graph (fun g ->
      Graph.equal g (Graph.complement (Graph.complement g)))

let prop_relabel_preserves_size =
  QCheck2.Test.make ~name:"relabel preserves size and degree multiset" ~count:200 gen_graph
    (fun g ->
      let n = Graph.order g in
      let perm = Array.init n (fun i -> i + 1) in
      (* Reverse permutation: deterministic yet non-trivial. *)
      let perm = Array.map (fun v -> n + 1 - v) perm in
      let h = Graph.relabel g perm in
      Graph.size h = Graph.size g && Graph.degree_sequence h = Graph.degree_sequence g)

let prop_neighbors_symmetric =
  QCheck2.Test.make ~name:"u in N(v) iff v in N(u)" ~count:200 gen_graph (fun g ->
      List.for_all
        (fun v -> List.for_all (fun u -> List.mem v (Graph.neighbors g u)) (Graph.neighbors g v))
        (Graph.vertices g))

let () =
  Alcotest.run "graph"
    [
      ( "unit",
        [
          Alcotest.test_case "empty" `Quick test_empty;
          Alcotest.test_case "of_edges" `Quick test_of_edges;
          Alcotest.test_case "guards" `Quick test_guards;
          Alcotest.test_case "builder snapshots" `Quick test_builder_incremental;
          Alcotest.test_case "edges order" `Quick test_edges_order;
          Alcotest.test_case "neighborhood bitvec" `Quick test_neighborhood_bitvec;
          Alcotest.test_case "degrees" `Quick test_degrees;
          Alcotest.test_case "equality" `Quick test_equal;
          Alcotest.test_case "complement" `Quick test_complement;
          Alcotest.test_case "induced" `Quick test_induced;
          Alcotest.test_case "remove vertex" `Quick test_remove_vertex;
          Alcotest.test_case "relabel" `Quick test_relabel;
          Alcotest.test_case "disjoint union" `Quick test_disjoint_union;
          Alcotest.test_case "add vertices/edges" `Quick test_add_vertices_edges;
          Alcotest.test_case "is_subgraph" `Quick test_is_subgraph;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_handshake;
            prop_complement_involution;
            prop_relabel_preserves_size;
            prop_neighbors_symmetric;
          ] );
    ]
