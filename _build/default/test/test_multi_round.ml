open Refnet_graph

let graph_opt =
  Alcotest.option (Alcotest.testable (fun fmt g -> Graph.pp fmt g) Graph.equal)

let test_degree_bound_values () =
  (* Star K_{1,5}: degrees 5,1,1,1,1,1 -> only 2 vertices of degree >= 1,
     so bound = 1 (matches degeneracy). *)
  Alcotest.(check int) "star" 1 (Core.Multi_round.Adaptive_degeneracy.degree_bound [| 5; 1; 1; 1; 1; 1 |]);
  (* K4: degrees all 3 -> 4 vertices of degree >= 3 -> bound 3. *)
  Alcotest.(check int) "K4" 3 (Core.Multi_round.Adaptive_degeneracy.degree_bound [| 3; 3; 3; 3 |]);
  Alcotest.(check int) "edgeless" 0 (Core.Multi_round.Adaptive_degeneracy.degree_bound [| 0; 0 |]);
  Alcotest.(check int) "empty" 0 (Core.Multi_round.Adaptive_degeneracy.degree_bound [||])

let test_degree_bound_dominates_degeneracy () =
  List.iter
    (fun g ->
      let degrees = Array.of_list (List.map (Graph.degree g) (Graph.vertices g)) in
      Alcotest.(check bool) "bound >= degeneracy" true
        (Core.Multi_round.Adaptive_degeneracy.degree_bound degrees >= Degeneracy.degeneracy g))
    [
      Generators.petersen ();
      Generators.grid 4 4;
      Generators.complete 6;
      Generators.random_apollonian (Random.State.make [| 5 |]) 20;
    ]

let run_adaptive g =
  Core.Multi_round.run (Core.Multi_round.Adaptive_degeneracy.protocol ()) g

let test_adaptive_reconstructs_without_k () =
  (* The paper's protocol needs k known a priori; two rounds discover it. *)
  List.iter
    (fun (name, g) ->
      let out, _ = run_adaptive g in
      Alcotest.check graph_opt name (Some g) out)
    [
      ("tree", Generators.random_tree (Random.State.make [| 1 |]) 25);
      ("grid", Generators.grid 4 4);
      ("K6 (dense!)", Generators.complete 6);
      ("petersen", Generators.petersen ());
      ("empty", Graph.empty 5);
    ]

let test_adaptive_transcript_shape () =
  let g = Generators.grid 4 4 in
  let _, t = run_adaptive g in
  Alcotest.(check int) "two rounds" 2 t.Core.Multi_round.rounds;
  (match t.Core.Multi_round.per_round_max_bits with
  | [ r1; r2 ] ->
    (* Round 1 is one degree (log n bits); round 2 is the Algorithm 3
       message at the inferred k-hat. *)
    Alcotest.(check int) "round 1 is a degree" (Core.Bounds.id_bits 16) r1;
    Alcotest.(check bool) "round 2 carries power sums" true (r2 > r1)
  | _ -> Alcotest.fail "expected two rounds");
  Alcotest.(check int) "one broadcast" 1 (List.length t.Core.Multi_round.broadcast_bits)

let test_adaptive_bits_track_sparseness () =
  (* A path and a clique of the same order: the adaptive protocol spends
     far fewer round-2 bits on the path. *)
  let _, tp = run_adaptive (Generators.path 12) in
  let _, tc = run_adaptive (Generators.complete 12) in
  Alcotest.(check bool) "path cheaper than clique" true
    (tp.Core.Multi_round.max_bits < tc.Core.Multi_round.max_bits)

let test_of_one_round_embedding () =
  let lifted = Core.Multi_round.of_one_round Core.Forest_protocol.reconstruct in
  let g = Generators.random_tree (Random.State.make [| 2 |]) 15 in
  let out, t = Core.Multi_round.run lifted g in
  Alcotest.check graph_opt "same output" (Some g) out;
  Alcotest.(check int) "single round" 1 t.Core.Multi_round.rounds;
  Alcotest.(check int) "no broadcast" 0 (List.length t.Core.Multi_round.broadcast_bits);
  Alcotest.(check int) "same message size" (Core.Forest_protocol.message_bits 15)
    t.Core.Multi_round.max_bits

let prop_adaptive_on_gnp =
  QCheck2.Test.make ~name:"adaptive 2-round reconstructs arbitrary G(n,p)" ~count:60
    QCheck2.Gen.(triple (int_range 1 20) (int_range 1 9) int)
    (fun (n, p10, seed) ->
      let rng = Random.State.make [| seed; n; p10 |] in
      let g = Generators.gnp rng n (float_of_int p10 /. 10.0) in
      fst (run_adaptive g) = Some g)

let prop_khat_scales_budget =
  QCheck2.Test.make ~name:"round-2 bits follow the k-hat budget formula" ~count:40
    QCheck2.Gen.(pair (int_range 2 20) int)
    (fun (n, seed) ->
      let rng = Random.State.make [| seed; n |] in
      let g = Generators.gnp rng n 0.3 in
      let degrees = Array.of_list (List.map (Graph.degree g) (Graph.vertices g)) in
      let k = max 1 (Core.Multi_round.Adaptive_degeneracy.degree_bound degrees) in
      let _, t = run_adaptive g in
      match t.Core.Multi_round.per_round_max_bits with
      | [ _; r2 ] -> r2 = Core.Degeneracy_protocol.message_bits ~k n
      | _ -> false)

let () =
  Alcotest.run "multi_round"
    [
      ( "degree bound",
        [
          Alcotest.test_case "values" `Quick test_degree_bound_values;
          Alcotest.test_case "dominates degeneracy" `Quick test_degree_bound_dominates_degeneracy;
        ] );
      ( "adaptive protocol",
        [
          Alcotest.test_case "reconstructs without knowing k" `Quick
            test_adaptive_reconstructs_without_k;
          Alcotest.test_case "transcript shape" `Quick test_adaptive_transcript_shape;
          Alcotest.test_case "bits track sparseness" `Quick test_adaptive_bits_track_sparseness;
          Alcotest.test_case "one-round embedding" `Quick test_of_one_round_embedding;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest [ prop_adaptive_on_gnp; prop_khat_scales_budget ] );
    ]
