open Refnet_bigint

let nat = Alcotest.testable (fun fmt n -> Nat.pp fmt n) Nat.equal

let of_i = Nat.of_int

let test_of_to_int () =
  List.iter
    (fun v -> Alcotest.(check int) (string_of_int v) v (Nat.to_int (of_i v)))
    [ 0; 1; 2; 1073741823; 1073741824; max_int ]

let test_of_int_negative () =
  Alcotest.check_raises "negative" (Invalid_argument "Nat.of_int: negative") (fun () ->
      ignore (of_i (-3)))

let test_to_int_overflow () =
  let huge = Nat.pow (of_i 2) 80 in
  Alcotest.(check (option int)) "overflow" None (Nat.to_int_opt huge)

let test_add_carries () =
  (* Force carries across digit boundaries: (2^30 - 1) + 1 = 2^30. *)
  let a = of_i ((1 lsl 30) - 1) in
  Alcotest.check nat "carry" (of_i (1 lsl 30)) (Nat.add a Nat.one)

let test_sub () =
  Alcotest.check nat "simple" (of_i 7) (Nat.sub (of_i 10) (of_i 3));
  Alcotest.check nat "borrow" (of_i ((1 lsl 30) - 1)) (Nat.sub (of_i (1 lsl 30)) Nat.one);
  Alcotest.check nat "to zero" Nat.zero (Nat.sub (of_i 5) (of_i 5));
  Alcotest.check_raises "negative result" (Invalid_argument "Nat.sub: result would be negative")
    (fun () -> ignore (Nat.sub (of_i 3) (of_i 4)))

let test_mul_small () =
  Alcotest.check nat "6*7" (of_i 42) (Nat.mul (of_i 6) (of_i 7));
  Alcotest.check nat "zero" Nat.zero (Nat.mul Nat.zero (of_i 7))

let test_mul_large () =
  (* (2^31 + 3)^2 = 2^62 + 6*2^31 + 9, beyond native precision when
     combined further; check against string arithmetic. *)
  let a = Nat.add (Nat.pow (of_i 2) 31) (of_i 3) in
  let sq = Nat.mul a a in
  Alcotest.(check string) "square" "4611686031312289801" (Nat.to_string sq)

let test_pow () =
  Alcotest.check nat "2^10" (of_i 1024) (Nat.pow (of_i 2) 10);
  Alcotest.check nat "x^0" Nat.one (Nat.pow (of_i 99) 0);
  Alcotest.check nat "0^0" Nat.one (Nat.pow Nat.zero 0);
  Alcotest.check nat "0^5" Nat.zero (Nat.pow Nat.zero 5);
  Alcotest.(check string) "10^30" ("1" ^ String.make 30 '0') (Nat.to_string (Nat.pow (of_i 10) 30))

let test_divmod_small () =
  let q, r = Nat.divmod (of_i 47) (of_i 5) in
  Alcotest.check nat "q" (of_i 9) q;
  Alcotest.check nat "r" (of_i 2) r

let test_divmod_multi_digit () =
  (* Exercise Knuth algorithm D with multi-digit divisors. *)
  let a = Nat.of_string "123456789012345678901234567890" in
  let b = Nat.of_string "987654321987654321" in
  let q, r = Nat.divmod a b in
  Alcotest.check nat "reconstruct" a (Nat.add (Nat.mul q b) r);
  Alcotest.(check bool) "r < b" true (Nat.compare r b < 0);
  Alcotest.(check string) "q" "124999998748" (Nat.to_string q)

let test_divmod_addback_case () =
  (* Divisor with a huge top digit triggers the rare add-back branch for
     some dividends; sweep a band of dividends to hit it. *)
  let b = Nat.sub (Nat.pow (of_i 2) 60) Nat.one in
  for i = 0 to 50 do
    let a = Nat.add (Nat.mul (Nat.pow (of_i 2) 90) (of_i (i + 1))) (of_i i) in
    let q, r = Nat.divmod a b in
    Alcotest.check nat "a = qb + r" a (Nat.add (Nat.mul q b) r);
    Alcotest.(check bool) "r < b" true (Nat.compare r b < 0)
  done

let test_div_by_zero () =
  Alcotest.check_raises "zero" Division_by_zero (fun () -> ignore (Nat.divmod (of_i 3) Nat.zero))

let test_shifts () =
  Alcotest.check nat "left" (of_i 40) (Nat.shift_left (of_i 5) 3);
  Alcotest.check nat "right" (of_i 5) (Nat.shift_right (of_i 40) 3);
  Alcotest.check nat "right to zero" Nat.zero (Nat.shift_right (of_i 40) 10);
  Alcotest.check nat "cross-digit" (Nat.pow (of_i 2) 45) (Nat.shift_left Nat.one 45);
  Alcotest.check nat "cross-digit back" Nat.one (Nat.shift_right (Nat.pow (of_i 2) 45) 45)

let test_num_bits () =
  Alcotest.(check int) "0" 0 (Nat.num_bits Nat.zero);
  Alcotest.(check int) "1" 1 (Nat.num_bits Nat.one);
  Alcotest.(check int) "2^45" 46 (Nat.num_bits (Nat.pow (of_i 2) 45))

let test_string_roundtrip () =
  List.iter
    (fun s -> Alcotest.(check string) s s (Nat.to_string (Nat.of_string s)))
    [ "0"; "1"; "999999999"; "1000000000"; "123456789012345678901234567890" ]

let test_of_string_invalid () =
  Alcotest.check_raises "empty" (Invalid_argument "Nat.of_string: empty") (fun () ->
      ignore (Nat.of_string ""));
  Alcotest.check_raises "letters" (Invalid_argument "Nat.of_string: not a digit") (fun () ->
      ignore (Nat.of_string "12a"))

let test_compare_order () =
  Alcotest.(check bool) "lt" true (Nat.compare (of_i 3) (of_i 5) < 0);
  Alcotest.(check bool) "gt" true (Nat.compare (Nat.pow (of_i 2) 64) (of_i 5) > 0);
  Alcotest.(check bool) "eq" true (Nat.compare (of_i 7) (of_i 7) = 0)

let test_digits_roundtrip () =
  let v = Nat.of_string "340282366920938463463374607431768211456" in
  Alcotest.check nat "roundtrip" v (Nat.of_digits (Nat.to_digits v));
  Alcotest.check_raises "bad digit" (Invalid_argument "Nat.of_digits: digit out of range")
    (fun () -> ignore (Nat.of_digits [| 1 lsl 30 |]))

let test_karatsuba_agrees () =
  (* Numbers big enough to take the Karatsuba path (>= 32 digits each);
     verified against a decimal identity: (10^k - 1)^2 = 10^2k - 2*10^k + 1. *)
  let k = 320 in
  let ten_k = Nat.pow (of_i 10) k in
  let a = Nat.sub ten_k Nat.one in
  let expected = Nat.add (Nat.sub (Nat.pow (of_i 10) (2 * k)) (Nat.shift_left ten_k 1)) Nat.one in
  Alcotest.check nat "karatsuba identity" expected (Nat.mul a a)

let gen_nat =
  QCheck2.Gen.(
    map
      (fun (a, b, c) ->
        Nat.add
          (Nat.mul (of_i (abs a)) (Nat.pow (of_i 2) 45))
          (Nat.add (Nat.mul (of_i (abs b)) (of_i 1_000_003)) (of_i (abs c))))
      (triple (int_bound 1_000_000) (int_bound 1_000_000) (int_bound 1_000_000)))

let prop_add_commutes =
  QCheck2.Test.make ~name:"add commutes" ~count:300 (QCheck2.Gen.pair gen_nat gen_nat)
    (fun (a, b) -> Nat.equal (Nat.add a b) (Nat.add b a))

let prop_add_associates =
  QCheck2.Test.make ~name:"add associates" ~count:300
    (QCheck2.Gen.triple gen_nat gen_nat gen_nat) (fun (a, b, c) ->
      Nat.equal (Nat.add a (Nat.add b c)) (Nat.add (Nat.add a b) c))

let prop_mul_distributes =
  QCheck2.Test.make ~name:"mul distributes over add" ~count:200
    (QCheck2.Gen.triple gen_nat gen_nat gen_nat) (fun (a, b, c) ->
      Nat.equal (Nat.mul a (Nat.add b c)) (Nat.add (Nat.mul a b) (Nat.mul a c)))

let prop_sub_add_inverse =
  QCheck2.Test.make ~name:"(a+b)-b = a" ~count:300 (QCheck2.Gen.pair gen_nat gen_nat)
    (fun (a, b) -> Nat.equal a (Nat.sub (Nat.add a b) b))

let prop_divmod_invariant =
  QCheck2.Test.make ~name:"a = (a/b)*b + a mod b, a mod b < b" ~count:300
    (QCheck2.Gen.pair gen_nat gen_nat) (fun (a, b) ->
      let b = Nat.add b Nat.one in
      let q, r = Nat.divmod a b in
      Nat.equal a (Nat.add (Nat.mul q b) r) && Nat.compare r b < 0)

let prop_string_roundtrip =
  QCheck2.Test.make ~name:"decimal roundtrip" ~count:200 gen_nat (fun a ->
      Nat.equal a (Nat.of_string (Nat.to_string a)))

let prop_shift_is_pow2 =
  QCheck2.Test.make ~name:"shift_left k = mul 2^k" ~count:200
    QCheck2.Gen.(pair gen_nat (int_range 0 100))
    (fun (a, k) -> Nat.equal (Nat.shift_left a k) (Nat.mul a (Nat.pow (of_i 2) k)))

let () =
  Alcotest.run "nat"
    [
      ( "unit",
        [
          Alcotest.test_case "of/to int" `Quick test_of_to_int;
          Alcotest.test_case "of_int negative" `Quick test_of_int_negative;
          Alcotest.test_case "to_int overflow" `Quick test_to_int_overflow;
          Alcotest.test_case "add carries" `Quick test_add_carries;
          Alcotest.test_case "sub" `Quick test_sub;
          Alcotest.test_case "mul small" `Quick test_mul_small;
          Alcotest.test_case "mul large" `Quick test_mul_large;
          Alcotest.test_case "pow" `Quick test_pow;
          Alcotest.test_case "divmod small" `Quick test_divmod_small;
          Alcotest.test_case "divmod multi-digit" `Quick test_divmod_multi_digit;
          Alcotest.test_case "divmod add-back band" `Quick test_divmod_addback_case;
          Alcotest.test_case "division by zero" `Quick test_div_by_zero;
          Alcotest.test_case "shifts" `Quick test_shifts;
          Alcotest.test_case "num_bits" `Quick test_num_bits;
          Alcotest.test_case "string roundtrip" `Quick test_string_roundtrip;
          Alcotest.test_case "of_string invalid" `Quick test_of_string_invalid;
          Alcotest.test_case "compare" `Quick test_compare_order;
          Alcotest.test_case "digits roundtrip" `Quick test_digits_roundtrip;
          Alcotest.test_case "karatsuba agrees" `Quick test_karatsuba_agrees;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_add_commutes;
            prop_add_associates;
            prop_mul_distributes;
            prop_sub_add_inverse;
            prop_divmod_invariant;
            prop_string_roundtrip;
            prop_shift_is_pow2;
          ] );
    ]
