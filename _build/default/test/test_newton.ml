open Refnet_bigint
open Refnet_algebra

let big_list =
  Alcotest.testable (Fmt.Dump.list (fun fmt v -> Bigint.pp fmt v)) (List.equal Bigint.equal)

let of_l = List.map Bigint.of_int

let test_power_sums_direct () =
  (* values {1,2,3}: p1 = 6, p2 = 14, p3 = 36 *)
  Alcotest.check big_list "p1..p3" (of_l [ 6; 14; 36 ])
    (Newton.power_sums (of_l [ 1; 2; 3 ]) ~upto:3)

let test_elementary_direct () =
  (* values {1,2,3}: e1 = 6, e2 = 11, e3 = 6 *)
  Alcotest.check big_list "e1..e3" (of_l [ 6; 11; 6 ]) (Newton.elementary (of_l [ 1; 2; 3 ]))

let test_identity_roundtrip () =
  let values = of_l [ 2; 5; 7; 11 ] in
  let p = Newton.power_sums values ~upto:4 in
  Alcotest.check big_list "elementary via Newton" (Newton.elementary values)
    (Newton.elementary_of_power_sums p);
  Alcotest.check big_list "power sums back" p
    (Newton.power_sums_of_elementary (Newton.elementary values) ~upto:4)

let test_empty () =
  Alcotest.check big_list "empty e" [] (Newton.elementary_of_power_sums []);
  Alcotest.check big_list "empty p" [] (Newton.power_sums [] ~upto:0)

let test_power_sums_beyond_degree () =
  (* p_m for m above the number of values still follows the recurrence:
     3 + 4 = 7, 9 + 16 = 25, 27 + 64 = 91, 81 + 256 = 337. *)
  let values = of_l [ 3; 4 ] in
  Alcotest.check big_list "p1..p4" (of_l [ 7; 25; 91; 337 ])
    (Newton.power_sums_of_elementary (Newton.elementary values) ~upto:4)

let test_polynomial_from_power_sums () =
  let values = of_l [ 1; 4; 6 ] in
  let p = Newton.power_sums values ~upto:3 in
  let poly = Newton.polynomial_from_power_sums p in
  Alcotest.(check int) "degree" 3 (Poly.degree poly);
  List.iter
    (fun v ->
      Alcotest.(check bool)
        (Printf.sprintf "root %s" (Bigint.to_string v))
        true
        (Bigint.is_zero (Poly.eval poly v)))
    values;
  Alcotest.(check bool) "5 is not a root" false (Bigint.is_zero (Poly.eval poly (Bigint.of_int 5)))

let gen_values =
  QCheck2.Gen.(
    bind (int_range 0 7) (fun d ->
        map
          (fun l ->
            List.sort_uniq compare (List.map (fun v -> 1 + (abs v mod 200)) l)
            |> List.map Bigint.of_int)
          (list_size (return d) int)))

let prop_newton_inverts =
  QCheck2.Test.make ~name:"elementary_of_power_sums inverts power_sums" ~count:300 gen_values
    (fun values ->
      let d = List.length values in
      let p = Newton.power_sums values ~upto:d in
      List.equal Bigint.equal (Newton.elementary values) (Newton.elementary_of_power_sums p))

let prop_poly_roots_are_values =
  QCheck2.Test.make ~name:"polynomial_from_power_sums has exactly the values as roots"
    ~count:300 gen_values (fun values ->
      let d = List.length values in
      let p = Newton.power_sums values ~upto:d in
      let poly = Newton.polynomial_from_power_sums p in
      let roots = Poly.integer_roots_in poly ~lo:1 ~hi:200 in
      List.equal Bigint.equal (List.map Bigint.of_int roots) values)

let prop_wright_injectivity =
  (* Theorem 4 (Wright): distinct sets have distinct power-sum vectors
     p_1..p_k for k at least the set size. *)
  QCheck2.Test.make ~name:"equal power sums imply equal sets (Wright)" ~count:300
    (QCheck2.Gen.pair gen_values gen_values) (fun (a, b) ->
      let k = max (List.length a) (List.length b) in
      let pa = Newton.power_sums a ~upto:k and pb = Newton.power_sums b ~upto:k in
      List.equal Bigint.equal pa pb = List.equal Bigint.equal a b)

let () =
  Alcotest.run "newton"
    [
      ( "unit",
        [
          Alcotest.test_case "power sums direct" `Quick test_power_sums_direct;
          Alcotest.test_case "elementary direct" `Quick test_elementary_direct;
          Alcotest.test_case "identity roundtrip" `Quick test_identity_roundtrip;
          Alcotest.test_case "empty" `Quick test_empty;
          Alcotest.test_case "beyond degree" `Quick test_power_sums_beyond_degree;
          Alcotest.test_case "polynomial from power sums" `Quick test_polynomial_from_power_sums;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_newton_inverts; prop_poly_roots_are_values; prop_wright_injectivity ] );
    ]
