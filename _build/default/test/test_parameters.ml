open Refnet_graph

let test_average_degree () =
  Alcotest.(check (float 0.0001)) "cycle" 2.0 (Parameters.average_degree (Generators.cycle 7));
  Alcotest.(check (float 0.0001)) "K5" 4.0 (Parameters.average_degree (Generators.complete 5));
  Alcotest.(check (float 0.0001)) "empty" 0.0 (Parameters.average_degree (Graph.empty 0))

let test_density () =
  Alcotest.(check (float 0.0001)) "complete" 1.0 (Parameters.density (Generators.complete 6));
  Alcotest.(check (float 0.0001)) "edgeless" 0.0 (Parameters.density (Graph.empty 6));
  Alcotest.(check (float 0.0001)) "two thirds" (2.0 /. 3.0)
    (Parameters.density (Graph.of_edges 3 [ (1, 2); (2, 3) ]));
  Alcotest.(check (float 0.0001)) "singleton" 0.0 (Parameters.density (Graph.empty 1))

let test_h_index () =
  (* Star: one vertex of degree n-1, rest degree 1 -> h = 1. *)
  Alcotest.(check int) "star" 1 (Parameters.h_index (Generators.star 8));
  Alcotest.(check int) "cycle" 2 (Parameters.h_index (Generators.cycle 5));
  Alcotest.(check int) "K5" 4 (Parameters.h_index (Generators.complete 5));
  Alcotest.(check int) "edgeless" 0 (Parameters.h_index (Graph.empty 4))

let test_max_core_is_degeneracy () =
  List.iter
    (fun g ->
      Alcotest.(check int) "equal" (Degeneracy.degeneracy g) (Parameters.max_core g))
    [ Generators.petersen (); Generators.grid 4 4; Generators.complete 6 ]

let test_arboricity_bounds () =
  (* Trees: degeneracy 1 -> arboricity exactly 1. *)
  let lo, hi = Parameters.arboricity_bounds (Generators.complete_binary_tree 15) in
  Alcotest.(check int) "tree lo" 1 lo;
  Alcotest.(check int) "tree hi" 1 hi;
  (* K7: arboricity = ceil(m / (n - 1)) = ceil(21 / 6) = 4. *)
  let lo, hi = Parameters.arboricity_bounds (Generators.complete 7) in
  Alcotest.(check bool) "K7 sandwich contains 4" true (lo <= 4 && 4 <= hi);
  Alcotest.(check (pair int int)) "edgeless" (0, 0) (Parameters.arboricity_bounds (Graph.empty 5))

let test_summary_mentions_fields () =
  let s = Parameters.summary (Generators.grid 3 3) in
  List.iter
    (fun needle ->
      let contains =
        let nl = String.length needle and hl = String.length s in
        let rec go i = i + nl <= hl && (String.sub s i nl = needle || go (i + 1)) in
        go 0
      in
      Alcotest.(check bool) needle true contains)
    [ "n=9"; "m=12"; "degeneracy=2" ]

let () =
  Alcotest.run "parameters"
    [
      ( "unit",
        [
          Alcotest.test_case "average degree" `Quick test_average_degree;
          Alcotest.test_case "density" `Quick test_density;
          Alcotest.test_case "h-index" `Quick test_h_index;
          Alcotest.test_case "max core = degeneracy" `Quick test_max_core_is_degeneracy;
          Alcotest.test_case "arboricity sandwich" `Quick test_arboricity_bounds;
          Alcotest.test_case "summary" `Quick test_summary_mentions_fields;
        ] );
    ]
