open Refnet_bigint
open Refnet_algebra

let poly = Alcotest.testable (fun fmt p -> Poly.pp fmt p) Poly.equal
let big = Alcotest.testable (fun fmt n -> Bigint.pp fmt n) Bigint.equal

let of_i = Bigint.of_int
let p_of l = Poly.of_coeffs (Array.of_list (List.map of_i l))

let test_degree_normalization () =
  Alcotest.(check int) "zero" (-1) (Poly.degree Poly.zero);
  Alcotest.(check int) "constant" 0 (Poly.degree Poly.one);
  Alcotest.(check int) "trailing zeros dropped" 1 (Poly.degree (p_of [ 1; 2; 0; 0 ]));
  Alcotest.check poly "constant zero collapses" Poly.zero (Poly.constant Bigint.zero)

let test_coeff_access () =
  let p = p_of [ 5; 0; 7 ] in
  Alcotest.check big "c0" (of_i 5) (Poly.coeff p 0);
  Alcotest.check big "c1" Bigint.zero (Poly.coeff p 1);
  Alcotest.check big "c2" (of_i 7) (Poly.coeff p 2);
  Alcotest.check big "beyond" Bigint.zero (Poly.coeff p 9)

let test_arith () =
  let p = p_of [ 1; 2 ] and q = p_of [ 3; -2 ] in
  Alcotest.check poly "add cancels" (p_of [ 4 ]) (Poly.add p q);
  Alcotest.check poly "sub" (p_of [ -2; 4 ]) (Poly.sub p q);
  (* (1 + 2x)(3 - 2x) = 3 + 4x - 4x^2 *)
  Alcotest.check poly "mul" (p_of [ 3; 4; -4 ]) (Poly.mul p q);
  Alcotest.check poly "mul by zero" Poly.zero (Poly.mul p Poly.zero);
  Alcotest.check poly "scale" (p_of [ 2; 4 ]) (Poly.scale (of_i 2) p)

let test_eval_horner () =
  (* p(x) = x^3 - 6x^2 + 11x - 6 = (x-1)(x-2)(x-3) *)
  let p = p_of [ -6; 11; -6; 1 ] in
  List.iter
    (fun r -> Alcotest.check big (Printf.sprintf "root %d" r) Bigint.zero (Poly.eval p (of_i r)))
    [ 1; 2; 3 ];
  Alcotest.check big "p(0)" (of_i (-6)) (Poly.eval p Bigint.zero);
  Alcotest.check big "p(4)" (of_i 6) (Poly.eval p (of_i 4))

let test_from_roots () =
  let p = Poly.from_roots [ of_i 1; of_i 2; of_i 3 ] in
  Alcotest.check poly "expanded" (p_of [ -6; 11; -6; 1 ]) p;
  Alcotest.check poly "no roots" Poly.one (Poly.from_roots [])

let test_derivative () =
  Alcotest.check poly "d/dx (x^3 + 2x)" (p_of [ 2; 0; 3 ]) (Poly.derivative (p_of [ 0; 2; 0; 1 ]));
  Alcotest.check poly "constant" Poly.zero (Poly.derivative (p_of [ 9 ]))

let test_deflate () =
  let p = Poly.from_roots [ of_i 2; of_i 5 ] in
  Alcotest.check poly "remove 2" (Poly.from_roots [ of_i 5 ]) (Poly.deflate p (of_i 2));
  Alcotest.check_raises "not a root" (Invalid_argument "Poly.deflate: not a root") (fun () ->
      ignore (Poly.deflate p (of_i 3)))

let test_integer_roots () =
  let p = Poly.from_roots [ of_i 4; of_i 9; of_i 30 ] in
  Alcotest.(check (list int)) "all found" [ 4; 9; 30 ] (Poly.integer_roots_in p ~lo:1 ~hi:64);
  Alcotest.(check (list int)) "window" [ 4; 9 ] (Poly.integer_roots_in p ~lo:1 ~hi:10);
  Alcotest.(check (list int)) "none" [] (Poly.integer_roots_in Poly.one ~lo:1 ~hi:10)

let gen_roots =
  QCheck2.Gen.(
    bind (int_range 0 6) (fun d ->
        map
          (fun l -> List.sort_uniq compare (List.map (fun v -> 1 + (abs v mod 50)) l))
          (list_size (return d) int)))

let prop_from_roots_vanishes =
  QCheck2.Test.make ~name:"from_roots vanishes exactly on roots" ~count:200 gen_roots
    (fun roots ->
      let p = Poly.from_roots (List.map of_i roots) in
      List.for_all (fun r -> Bigint.is_zero (Poly.eval p (of_i r))) roots
      && Poly.integer_roots_in p ~lo:1 ~hi:50 = roots)

let prop_mul_eval_homomorphism =
  QCheck2.Test.make ~name:"(pq)(x) = p(x)q(x)" ~count:200
    QCheck2.Gen.(triple gen_roots gen_roots (int_range (-20) 20))
    (fun (r1, r2, x) ->
      let p = Poly.from_roots (List.map of_i r1) and q = Poly.from_roots (List.map of_i r2) in
      let x = of_i x in
      Bigint.equal (Poly.eval (Poly.mul p q) x) (Bigint.mul (Poly.eval p x) (Poly.eval q x)))

let () =
  Alcotest.run "poly"
    [
      ( "unit",
        [
          Alcotest.test_case "degree/normalization" `Quick test_degree_normalization;
          Alcotest.test_case "coeff access" `Quick test_coeff_access;
          Alcotest.test_case "arithmetic" `Quick test_arith;
          Alcotest.test_case "eval (Horner)" `Quick test_eval_horner;
          Alcotest.test_case "from_roots" `Quick test_from_roots;
          Alcotest.test_case "derivative" `Quick test_derivative;
          Alcotest.test_case "deflate" `Quick test_deflate;
          Alcotest.test_case "integer roots" `Quick test_integer_roots;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_from_roots_vanishes; prop_mul_eval_homomorphism ] );
    ]
