open Refnet_bigint
open Refnet_algebra

let nat = Alcotest.testable (fun fmt v -> Nat.pp fmt v) Nat.equal

let test_encode_values () =
  let enc = Power_sum.encode ~k:3 [ 2; 5 ] in
  Alcotest.check nat "p1" (Nat.of_int 7) enc.(0);
  Alcotest.check nat "p2" (Nat.of_int 29) enc.(1);
  Alcotest.check nat "p3" (Nat.of_int 133) enc.(2)

let test_encode_empty () =
  let enc = Power_sum.encode ~k:2 [] in
  Alcotest.check nat "p1" Nat.zero enc.(0);
  Alcotest.check nat "p2" Nat.zero enc.(1)

let test_encode_guards () =
  Alcotest.check_raises "repeat" (Invalid_argument "Power_sum.encode: repeated id") (fun () ->
      ignore (Power_sum.encode ~k:3 [ 1; 1 ]));
  Alcotest.check_raises "non-positive" (Invalid_argument "Power_sum.encode: non-positive id")
    (fun () -> ignore (Power_sum.encode ~k:3 [ 0 ]));
  Alcotest.check_raises "too many" (Invalid_argument "Power_sum.encode: more ids than k")
    (fun () -> ignore (Power_sum.encode ~k:1 [ 1; 2 ]))

let test_encode_matches_vandermonde () =
  let a = Vandermonde.make ~k:4 ~n:20 in
  let ids = [ 3; 7; 20 ] in
  let via_matrix = Vandermonde.apply a ids in
  let direct = Power_sum.encode ~k:4 ids in
  Array.iteri
    (fun p v -> Alcotest.check nat (Printf.sprintf "coordinate %d" (p + 1)) v direct.(p))
    via_matrix

let test_subtract_is_removal () =
  let enc = Power_sum.encode ~k:3 [ 2; 5; 9 ] in
  let enc' = Power_sum.subtract enc ~id:5 ~upto:3 in
  let expected = Power_sum.encode ~k:3 [ 2; 9 ] in
  Array.iteri (fun p v -> Alcotest.check nat (Printf.sprintf "p%d" (p + 1)) v enc'.(p)) expected

let test_subtract_non_member () =
  (* Removing a non-member can underflow a coordinate — flagged. *)
  let enc = Power_sum.encode ~k:2 [ 1 ] in
  Alcotest.check_raises "underflow" (Invalid_argument "Power_sum.subtract: id not a member")
    (fun () -> ignore (Power_sum.subtract enc ~id:9 ~upto:2))

let test_decode_exact () =
  let enc = Power_sum.encode ~k:4 [ 4; 17; 23; 42 ] in
  Alcotest.(check (option (list int))) "decoded" (Some [ 4; 17; 23; 42 ])
    (Power_sum.decode ~n:64 ~deg:4 enc)

let test_decode_prefix () =
  (* A degree-2 vertex decodes from the first two coordinates even when
     the message carries more. *)
  let enc = Power_sum.encode ~k:5 [ 6; 13 ] in
  Alcotest.(check (option (list int))) "decoded" (Some [ 6; 13 ])
    (Power_sum.decode ~n:20 ~deg:2 enc)

let test_decode_empty () =
  Alcotest.(check (option (list int))) "empty" (Some [])
    (Power_sum.decode ~n:10 ~deg:0 (Power_sum.encode ~k:2 []))

let test_decode_malformed () =
  (* p1 = 5, p2 = 7 cannot be the power sums of two distinct positive
     integers (5 = a+b, 7 = a^2+b^2 has no integer solution). *)
  let enc = [| Nat.of_int 5; Nat.of_int 7 |] in
  Alcotest.(check (option (list int))) "rejected" None (Power_sum.decode ~n:10 ~deg:2 enc)

let test_decode_bad_degree () =
  Alcotest.check_raises "deg > k" (Invalid_argument "Power_sum.decode: bad degree") (fun () ->
      ignore (Power_sum.decode ~n:10 ~deg:3 (Power_sum.encode ~k:2 [])))

let test_table_matches_newton () =
  let n = 12 and k = 3 in
  let table = Power_sum.Table.build ~n ~k in
  (* Every subset of size <= k decodes identically via both decoders. *)
  let rec subsets first remaining acc f =
    if remaining = 0 then f (List.rev acc)
    else
      for i = first to n - remaining + 1 do
        subsets (i + 1) (remaining - 1) (i :: acc) f
      done
  in
  for d = 0 to k do
    subsets 1 d [] (fun ids ->
        let enc = Power_sum.encode ~k ids in
        Alcotest.(check (option (list int)))
          (Printf.sprintf "table [%s]" (String.concat ";" (List.map string_of_int ids)))
          (Some ids)
          (Power_sum.Table.lookup table enc ~deg:d);
        Alcotest.(check (option (list int)))
          (Printf.sprintf "newton [%s]" (String.concat ";" (List.map string_of_int ids)))
          (Some ids)
          (Power_sum.decode ~n ~deg:d enc))
  done

let test_table_entries () =
  (* n=5, k=2: C(5,0) + C(5,1) + C(5,2) = 1 + 5 + 10. *)
  let table = Power_sum.Table.build ~n:5 ~k:2 in
  Alcotest.(check int) "entries" 16 (Power_sum.Table.entries table)

let gen_subset =
  QCheck2.Gen.(
    bind (int_range 1 128) (fun n ->
        bind (int_range 0 6) (fun d ->
            map
              (fun l ->
                let ids =
                  List.sort_uniq compare (List.map (fun v -> 1 + (abs v mod n)) l)
                in
                (n, ids))
              (list_size (return (min d n)) int))))

let prop_decode_inverts_encode =
  QCheck2.Test.make ~name:"decode . encode = id" ~count:300 gen_subset (fun (n, ids) ->
      let k = max 1 (List.length ids) in
      let enc = Power_sum.encode ~k ids in
      Power_sum.decode ~n ~deg:(List.length ids) enc = Some ids)

let prop_subtract_then_decode =
  QCheck2.Test.make ~name:"subtract member then decode" ~count:300 gen_subset
    (fun (n, ids) ->
      QCheck2.assume (ids <> []);
      let k = List.length ids in
      let enc = Power_sum.encode ~k ids in
      let victim = List.nth ids (List.length ids / 2) in
      let enc' = Power_sum.subtract enc ~id:victim ~upto:k in
      let rest = List.filter (fun i -> i <> victim) ids in
      Power_sum.decode ~n ~deg:(List.length rest) enc' = Some rest)

let () =
  Alcotest.run "power_sum"
    [
      ( "unit",
        [
          Alcotest.test_case "encode values" `Quick test_encode_values;
          Alcotest.test_case "encode empty" `Quick test_encode_empty;
          Alcotest.test_case "encode guards" `Quick test_encode_guards;
          Alcotest.test_case "encode = Vandermonde apply" `Quick test_encode_matches_vandermonde;
          Alcotest.test_case "subtract removes member" `Quick test_subtract_is_removal;
          Alcotest.test_case "subtract non-member" `Quick test_subtract_non_member;
          Alcotest.test_case "decode exact" `Quick test_decode_exact;
          Alcotest.test_case "decode prefix" `Quick test_decode_prefix;
          Alcotest.test_case "decode empty" `Quick test_decode_empty;
          Alcotest.test_case "decode malformed" `Quick test_decode_malformed;
          Alcotest.test_case "decode bad degree" `Quick test_decode_bad_degree;
          Alcotest.test_case "table = newton (exhaustive small)" `Quick test_table_matches_newton;
          Alcotest.test_case "table entry count" `Quick test_table_entries;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_decode_inverts_encode; prop_subtract_then_decode ] );
    ]
