open Refnet_graph

let graph = Alcotest.testable (fun fmt g -> Graph.pp fmt g) Graph.equal

let test_labels_roundtrip () =
  for n1 = 1 to 5 do
    for a = 1 to n1 do
      for b = 1 to 4 do
        let v = Product.pair_label ~n1 a b in
        Alcotest.(check (pair int int)) "inverse" (a, b) (Product.unpair_label ~n1 v)
      done
    done
  done

let test_grid_is_path_product () =
  (* grid w h labels (x, y) as y*w + x + 1 = pair_label over path w. *)
  Alcotest.check graph "4x3"
    (Generators.grid 4 3)
    (Product.cartesian (Generators.path 4) (Generators.path 3))

let test_torus_is_cycle_product () =
  Alcotest.check graph "C4 x C3 sizes"
    (Generators.torus 4 3)
    (Product.cartesian (Generators.cycle 4) (Generators.cycle 3))

let test_hypercube_is_k2_power () =
  let k2 = Generators.complete 2 in
  let cube = Product.power ~op:Product.cartesian k2 4 in
  (* Same degree sequence, order, size and bipartite structure: the label
     conventions differ, so compare invariants. *)
  let h = Generators.hypercube 4 in
  Alcotest.(check int) "order" (Graph.order h) (Graph.order cube);
  Alcotest.(check int) "size" (Graph.size h) (Graph.size cube);
  Alcotest.(check (list int)) "degrees" (Graph.degree_sequence h) (Graph.degree_sequence cube);
  Alcotest.(check (option int)) "diameter" (Distance.diameter h) (Distance.diameter cube);
  Alcotest.(check bool) "bipartite" true (Bipartite.is_bipartite cube)

let test_cartesian_properties () =
  let g = Generators.cycle 5 and h = Generators.path 3 in
  let p = Product.cartesian g h in
  Alcotest.(check int) "order multiplies" 15 (Graph.order p);
  (* |E(G□H)| = |E(G)| |V(H)| + |V(G)| |E(H)| *)
  Alcotest.(check int) "edge formula" ((5 * 3) + (5 * 2)) (Graph.size p);
  Alcotest.(check bool) "connected" true (Connectivity.is_connected p)

let test_tensor_properties () =
  let g = Generators.cycle 5 and h = Generators.path 3 in
  let p = Product.tensor g h in
  (* |E(G x H)| = 2 |E(G)| |E(H)| *)
  Alcotest.(check int) "edge formula" (2 * 5 * 2) (Graph.size p);
  (* Tensor with bipartite factor is bipartite. *)
  Alcotest.(check bool) "bipartite factor" true (Bipartite.is_bipartite (Product.tensor g (Generators.path 2)))

let test_strong_is_union () =
  let g = Generators.path 3 and h = Generators.path 2 in
  let c = Product.cartesian g h and t = Product.tensor g h and s = Product.strong g h in
  Alcotest.(check int) "sizes add (disjoint edge sets)" (Graph.size c + Graph.size t)
    (Graph.size s);
  Alcotest.(check bool) "cartesian subgraph" true (Graph.is_subgraph c s);
  Alcotest.(check bool) "tensor subgraph" true (Graph.is_subgraph t s)

let test_power_guard () =
  Alcotest.check_raises "d=0" (Invalid_argument "Product.power: need d >= 1") (fun () ->
      ignore (Product.power ~op:Product.cartesian (Generators.path 2) 0))

let test_random_regular () =
  let r = Random.State.make [| 8 |] in
  List.iter
    (fun (n, d) ->
      let g = Generators.random_regular r n ~d in
      Alcotest.(check int) (Printf.sprintf "(%d,%d) min" n d) d (Graph.min_degree g);
      Alcotest.(check int) (Printf.sprintf "(%d,%d) max" n d) d (Graph.max_degree g))
    [ (8, 3); (10, 4); (12, 2); (7, 0); (6, 5) ];
  Alcotest.check_raises "odd nd" (Invalid_argument "Generators.random_regular: n * d must be even")
    (fun () -> ignore (Generators.random_regular r 5 ~d:3));
  Alcotest.check_raises "d too big" (Invalid_argument "Generators.random_regular: need 0 <= d < n")
    (fun () -> ignore (Generators.random_regular r 4 ~d:4))

let prop_cartesian_degree_sum =
  QCheck2.Test.make ~name:"deg_{G□H}(a,b) = deg_G(a) + deg_H(b)" ~count:60
    QCheck2.Gen.(pair int int)
    (fun (s1, s2) ->
      let g = Generators.gnp (Random.State.make [| s1 |]) 5 0.5 in
      let h = Generators.gnp (Random.State.make [| s2 |]) 4 0.5 in
      let p = Product.cartesian g h in
      let ok = ref true in
      for a = 1 to 5 do
        for b = 1 to 4 do
          if Graph.degree p (Product.pair_label ~n1:5 a b) <> Graph.degree g a + Graph.degree h b
          then ok := false
        done
      done;
      !ok)

let prop_product_protocol_roundtrip =
  (* Products of sparse graphs stay sparse-ish: the degeneracy protocol
     reconstructs them at their own degeneracy — an integration check
     between the product substrate and the core protocol. *)
  QCheck2.Test.make ~name:"cartesian products reconstruct at their degeneracy" ~count:20
    QCheck2.Gen.int (fun seed ->
      let g = Generators.random_tree (Random.State.make [| seed |]) 4 in
      let h = Generators.random_tree (Random.State.make [| seed + 1 |]) 4 in
      let p = Product.cartesian g h in
      let k = max 1 (Degeneracy.degeneracy p) in
      fst (Core.Simulator.run (Core.Degeneracy_protocol.reconstruct ~k ()) p) = Some p)

let () =
  Alcotest.run "product"
    [
      ( "unit",
        [
          Alcotest.test_case "label roundtrip" `Quick test_labels_roundtrip;
          Alcotest.test_case "grid = path product" `Quick test_grid_is_path_product;
          Alcotest.test_case "torus = cycle product" `Quick test_torus_is_cycle_product;
          Alcotest.test_case "hypercube = K2 power" `Quick test_hypercube_is_k2_power;
          Alcotest.test_case "cartesian formulas" `Quick test_cartesian_properties;
          Alcotest.test_case "tensor formulas" `Quick test_tensor_properties;
          Alcotest.test_case "strong = union" `Quick test_strong_is_union;
          Alcotest.test_case "power guard" `Quick test_power_guard;
          Alcotest.test_case "random regular" `Quick test_random_regular;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_cartesian_degree_sum; prop_product_protocol_roundtrip ] );
    ]
