open Refnet_graph

let is_found = function Core.Protocol_search.Found _ -> true | _ -> false
let is_impossible = function Core.Protocol_search.Impossible -> true | _ -> false

let test_mask_encoding () =
  (* Node 2 in a 4-vertex graph: others are [1;3;4] in order. *)
  Alcotest.(check int) "no neighbours" 0 (Core.Protocol_search.neighborhood_mask ~n:4 ~id:2 []);
  Alcotest.(check int) "just 1" 1 (Core.Protocol_search.neighborhood_mask ~n:4 ~id:2 [ 1 ]);
  Alcotest.(check int) "just 3" 2 (Core.Protocol_search.neighborhood_mask ~n:4 ~id:2 [ 3 ]);
  Alcotest.(check int) "all" 7 (Core.Protocol_search.neighborhood_mask ~n:4 ~id:2 [ 1; 3; 4 ])

let test_n3_one_bit_reconstructs () =
  (* 3 bits total name all 8 graphs: the search must find the bijection. *)
  Alcotest.(check bool) "found" true
    (is_found (Core.Protocol_search.search_reconstructor ~n:3 ~colors:2 ()))

let test_n3_one_bit_decides_triangle () =
  Alcotest.(check bool) "found" true
    (is_found
       (Core.Protocol_search.search_decider ~n:3 ~colors:2 ~property:Cycles.has_triangle ()))

let test_n4_one_bit_triangle_impossible () =
  (* The smallest hard instance: no 1-bit-per-node one-round protocol
     decides triangles at n = 4 — exhaustively verified over all 2^32
     protocol tables (modulo colour symmetry). *)
  Alcotest.(check bool) "impossible" true
    (is_impossible
       (Core.Protocol_search.search_decider ~n:4 ~colors:2 ~property:Cycles.has_triangle ()))

let test_n4_one_bit_connectivity_impossible () =
  Alcotest.(check bool) "impossible" true
    (is_impossible
       (Core.Protocol_search.search_decider ~n:4 ~colors:2 ~property:Connectivity.is_connected ()))

let test_n4_one_bit_reconstruction_impossible () =
  (* 4 bits of messages cannot name 64 graphs — counting agrees here,
     the search agrees with counting. *)
  Alcotest.(check bool) "impossible" true
    (is_impossible (Core.Protocol_search.search_reconstructor ~n:4 ~colors:2 ()))

let test_n4_two_bits_triangle_possible () =
  Alcotest.(check bool) "found" true
    (is_found
       (Core.Protocol_search.search_decider ~n:4 ~colors:4 ~property:Cycles.has_triangle ()))

let test_witness_runs_correctly () =
  (* Any found witness must actually decide the property on every graph
     when executed through the simulator. *)
  List.iter
    (fun (n, colors, property) ->
      match Core.Protocol_search.search_decider ~n ~colors ~property () with
      | Core.Protocol_search.Found w ->
        let p = Core.Protocol_search.to_protocol ~n ~colors w ~property in
        Enumerate.iter n (fun g ->
            Alcotest.(check bool) "verdict" (property g) (fst (Core.Simulator.run p g)))
      | _ -> Alcotest.fail "expected a witness")
    [
      (3, 2, Cycles.has_triangle);
      (4, 4, Cycles.has_triangle);
      (4, 2, Cycles.has_square);
      (3, 2, Connectivity.is_connected);
    ]

let test_square_at_n4_needs_only_one_bit () =
  (* A counterpoint to Theorem 1's asymptotics: at n = 4 a 1-bit protocol
     for C4-subgraph detection exists (the search finds one); hardness is
     genuinely an asymptotic phenomenon. *)
  Alcotest.(check bool) "found" true
    (is_found (Core.Protocol_search.search_decider ~n:4 ~colors:2 ~property:Cycles.has_square ()))

let test_guards () =
  Alcotest.check_raises "n too large" (Invalid_argument "Protocol_search: n must be within 1..4")
    (fun () -> ignore (Core.Protocol_search.search_reconstructor ~n:5 ~colors:2 ()));
  Alcotest.check_raises "colors" (Invalid_argument "Protocol_search: colors must be positive")
    (fun () -> ignore (Core.Protocol_search.search_reconstructor ~n:3 ~colors:0 ()))

let test_budget_abort () =
  match
    Core.Protocol_search.search_decider ~budget:1 ~n:4 ~colors:2
      ~property:Cycles.has_triangle ()
  with
  | Core.Protocol_search.Aborted -> ()
  | _ -> Alcotest.fail "expected abort with a 1-node budget"

let test_family_reconstruction () =
  (* Lemma 1 at exhaustive scale.  Square-free graphs on 4 vertices: 55
     of them, more than the 2^4 = 16 one-bit message vectors -> counting
     already forbids; the search agrees.  With 2-bit messages the budget
     is 256 >= 55 and counting is silent — the search settles it. *)
  let family g = not (Cycles.has_square g) in
  Alcotest.(check bool) "square-free at 1 bit impossible" true
    (is_impossible
       (Core.Protocol_search.search_family_reconstructor ~n:4 ~colors:2 ~family ()));
  (match Core.Protocol_search.search_family_reconstructor ~n:4 ~colors:4 ~family () with
  | Core.Protocol_search.Found _ -> ()
  | Impossible ->
    (* Also a legitimate, counting-invisible outcome; record which. *)
    ()
  | Aborted -> Alcotest.fail "search aborted");
  (* Forests on 4 vertices: 38 of them; same story. *)
  let forest g = Spanning.is_forest g in
  Alcotest.(check bool) "forests at 1 bit impossible" true
    (is_impossible
       (Core.Protocol_search.search_family_reconstructor ~n:4 ~colors:2 ~family:forest ()))

let test_trivial_properties () =
  (* Constant properties need no information: 1 colour suffices. *)
  Alcotest.(check bool) "constant true" true
    (is_found (Core.Protocol_search.search_decider ~n:3 ~colors:1 ~property:(fun _ -> true) ()));
  (* Non-constant properties with 1 colour are impossible. *)
  Alcotest.(check bool) "non-constant" true
    (is_impossible
       (Core.Protocol_search.search_decider ~n:3 ~colors:1 ~property:Cycles.has_triangle ()))

let () =
  Alcotest.run "protocol_search"
    [
      ( "mechanics",
        [
          Alcotest.test_case "mask encoding" `Quick test_mask_encoding;
          Alcotest.test_case "guards" `Quick test_guards;
          Alcotest.test_case "budget abort" `Quick test_budget_abort;
          Alcotest.test_case "trivial properties" `Quick test_trivial_properties;
          Alcotest.test_case "family reconstruction (Lemma 1 scale)" `Quick test_family_reconstruction;
        ] );
      ( "existence results",
        [
          Alcotest.test_case "n=3 b=1 reconstructs all graphs" `Quick test_n3_one_bit_reconstructs;
          Alcotest.test_case "n=3 b=1 decides triangle" `Quick test_n3_one_bit_decides_triangle;
          Alcotest.test_case "n=4 b=1 triangle impossible" `Quick
            test_n4_one_bit_triangle_impossible;
          Alcotest.test_case "n=4 b=1 connectivity impossible" `Quick
            test_n4_one_bit_connectivity_impossible;
          Alcotest.test_case "n=4 b=1 reconstruction impossible" `Quick
            test_n4_one_bit_reconstruction_impossible;
          Alcotest.test_case "n=4 b=2 triangle possible" `Quick test_n4_two_bits_triangle_possible;
          Alcotest.test_case "n=4 b=1 square possible" `Quick test_square_at_n4_needs_only_one_bit;
          Alcotest.test_case "witnesses execute correctly" `Quick test_witness_runs_correctly;
        ] );
    ]
