open Refnet_graph

let accepts ?decoder k g = fst (Core.Simulator.run (Core.Recognition.degeneracy_at_most ?decoder k) g)

let test_accepts_within_budget () =
  Alcotest.(check bool) "forest at 1" true (accepts 1 (Generators.complete_binary_tree 15));
  Alcotest.(check bool) "grid at 2" true (accepts 2 (Generators.grid 4 4));
  Alcotest.(check bool) "apollonian at 3" true
    (accepts 3 (Generators.random_apollonian (Random.State.make [| 1 |]) 20))

let test_rejects_above_budget () =
  Alcotest.(check bool) "cycle at 1" false (accepts 1 (Generators.cycle 6));
  Alcotest.(check bool) "K5 at 3" false (accepts 3 (Generators.complete 5));
  Alcotest.(check bool) "petersen at 2" false (accepts 2 (Generators.petersen ()))

let test_threshold_is_sharp () =
  (* For each family, acceptance flips exactly at the true degeneracy. *)
  List.iter
    (fun g ->
      let d = max 1 (Degeneracy.degeneracy g) in
      Alcotest.(check bool) "at degeneracy" true (accepts d g);
      if d > 1 then Alcotest.(check bool) "below degeneracy" false (accepts (d - 1) g))
    [
      Generators.cycle 7;
      Generators.complete 6;
      Generators.grid 3 5;
      Generators.petersen ();
      Generators.wheel 8;
    ]

let test_is_forest_alias () =
  Alcotest.(check bool) "tree" true
    (fst (Core.Simulator.run Core.Recognition.is_forest (Generators.path 5)));
  Alcotest.(check bool) "cycle" false
    (fst (Core.Simulator.run Core.Recognition.is_forest (Generators.cycle 5)))

let test_reconstruct_and_check () =
  (* Once the referee has the graph it can decide anything: e.g. "is the
     input connected?" over degeneracy-2 inputs. *)
  let p = Core.Recognition.reconstruct_and_check ~k:2 ~check:Connectivity.is_connected () in
  Alcotest.(check (option bool)) "connected grid" (Some true)
    (fst (Core.Simulator.run p (Generators.grid 3 3)));
  Alcotest.(check (option bool)) "two cycles" (Some false)
    (fst (Core.Simulator.run p (Graph.disjoint_union (Generators.cycle 4) (Generators.cycle 3))));
  Alcotest.(check (option bool)) "over budget" None
    (fst (Core.Simulator.run p (Generators.complete 5)))

let prop_recognizer_matches_degeneracy =
  QCheck2.Test.make ~name:"recognizer decides degeneracy <= k exactly" ~count:120
    QCheck2.Gen.(triple (int_range 1 15) (int_range 1 4) int)
    (fun (n, k, seed) ->
      let rng = Random.State.make [| seed; n; k |] in
      let g = Generators.gnp rng n 0.45 in
      accepts k g = (Degeneracy.degeneracy g <= k))

let () =
  Alcotest.run "recognition"
    [
      ( "unit",
        [
          Alcotest.test_case "accepts within budget" `Quick test_accepts_within_budget;
          Alcotest.test_case "rejects above budget" `Quick test_rejects_above_budget;
          Alcotest.test_case "threshold sharp" `Quick test_threshold_is_sharp;
          Alcotest.test_case "is_forest alias" `Quick test_is_forest_alias;
          Alcotest.test_case "reconstruct and check" `Quick test_reconstruct_and_check;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest [ prop_recognizer_matches_degeneracy ]);
    ]
