(* Sketch substrate: field, hashing, 1-sparse recovery, l0 sampling. *)
open Refnet_sketch

let test_field_axioms () =
  Alcotest.(check int) "p is 2^31-1" 2147483647 Field.p;
  Alcotest.(check int) "add wraps" 0 (Field.add (Field.p - 1) 1);
  Alcotest.(check int) "sub wraps" (Field.p - 1) (Field.sub 0 1);
  Alcotest.(check int) "neg zero" 0 (Field.neg 0);
  Alcotest.(check int) "of_int negative" (Field.p - 5) (Field.of_int (-5));
  Alcotest.(check int) "mul" 6 (Field.mul 2 3);
  Alcotest.(check int) "pow" 1024 (Field.pow 2 10);
  Alcotest.(check int) "fermat" 1 (Field.pow 7 (Field.p - 1))

let test_field_inverse () =
  List.iter
    (fun x -> Alcotest.(check int) (string_of_int x) 1 (Field.mul x (Field.inv x)))
    [ 1; 2; 12345; Field.p - 1 ];
  Alcotest.check_raises "zero" Division_by_zero (fun () -> ignore (Field.inv 0))

let test_hash_deterministic () =
  let f1 = Hash.seed_family ~seed:99 ~count:5 in
  let f2 = Hash.seed_family ~seed:99 ~count:5 in
  for i = 0 to 4 do
    for x = 0 to 50 do
      Alcotest.(check int) "same seed same hash" (Hash.apply f1.(i) x) (Hash.apply f2.(i) x)
    done
  done;
  let g = Hash.seed_family ~seed:100 ~count:1 in
  let differs = ref false in
  for x = 0 to 50 do
    if Hash.apply g.(0) x <> Hash.apply f1.(0) x then differs := true
  done;
  Alcotest.(check bool) "different seed differs" true !differs

let test_hash_levels_geometric () =
  let h = (Hash.seed_family ~seed:7 ~count:1).(0) in
  let counts = Array.make 4 0 in
  for x = 0 to 9999 do
    let l = Hash.level h x ~max_level:3 in
    counts.(l) <- counts.(l) + 1
  done;
  (* Roughly half at level 0, quarter at level 1, ... *)
  Alcotest.(check bool) "level 0 about half" true (counts.(0) > 4000 && counts.(0) < 6000);
  Alcotest.(check bool) "level 1 about quarter" true (counts.(1) > 1800 && counts.(1) < 3200);
  Alcotest.(check bool) "monotone decrease" true (counts.(0) > counts.(1) && counts.(1) > counts.(2))

let sparse_sketch pairs =
  List.fold_left
    (fun acc (index, delta) -> One_sparse.update acc ~index ~delta)
    (One_sparse.create ~z:12345) pairs

let test_one_sparse_recovers () =
  (match One_sparse.recover (sparse_sketch [ (42, 1) ]) with
  | Some (42, 1) -> ()
  | _ -> Alcotest.fail "positive singleton");
  (match One_sparse.recover (sparse_sketch [ (7, -1) ]) with
  | Some (7, -1) -> ()
  | _ -> Alcotest.fail "negative singleton");
  match One_sparse.recover (sparse_sketch [ (1000000, 3) ]) with
  | Some (1000000, 3) -> ()
  | _ -> Alcotest.fail "weighted singleton"

let test_one_sparse_rejects () =
  Alcotest.(check bool) "zero vector" true (One_sparse.recover (sparse_sketch []) = None);
  Alcotest.(check bool) "cancelled" true
    (One_sparse.recover (sparse_sketch [ (5, 1); (5, -1) ]) = None);
  (* Two survivors: fingerprint must reject (w.h.p.). *)
  Alcotest.(check bool) "2-sparse rejected" true
    (One_sparse.recover (sparse_sketch [ (3, 1); (9, 1) ]) = None);
  Alcotest.(check bool) "opposite signs rejected" true
    (One_sparse.recover (sparse_sketch [ (3, 1); (9, -1) ]) = None)

let test_one_sparse_linear () =
  let a = sparse_sketch [ (3, 1); (8, 1) ] in
  let b = sparse_sketch [ (3, -1) ] in
  match One_sparse.recover (One_sparse.combine a b) with
  | Some (8, 1) -> ()
  | _ -> Alcotest.fail "combination should cancel to a singleton"

let test_one_sparse_serialization () =
  let s = sparse_sketch [ (77, -1) ] in
  let w = Refnet_bits.Bit_writer.create () in
  One_sparse.write w s;
  Alcotest.(check int) "93 bits" One_sparse.bits (Refnet_bits.Bit_writer.length w);
  let s' =
    One_sparse.read (Refnet_bits.Bit_reader.of_bitvec (Refnet_bits.Bit_writer.contents w)) ~z:12345
  in
  match One_sparse.recover s' with
  | Some (77, -1) -> ()
  | _ -> Alcotest.fail "roundtrip recovery"

let fresh_sampler ?(seed = 11) ?(levels = 12) () =
  let rng = Random.State.make [| seed |] in
  L0_sampler.create ~rng ~levels

let test_l0_samples_member () =
  let support = [ 17; 230; 4095; 9; 512 ] in
  let s =
    List.fold_left (fun acc i -> L0_sampler.update acc ~index:i ~delta:1) (fresh_sampler ())
      support
  in
  match L0_sampler.sample s with
  | Some (i, 1) -> Alcotest.(check bool) "member" true (List.mem i support)
  | Some _ -> Alcotest.fail "wrong value"
  | None -> Alcotest.fail "sampler should succeed on a 5-sparse vector"

let test_l0_zero_vector () =
  Alcotest.(check bool) "empty" true (L0_sampler.sample (fresh_sampler ()) = None);
  let s =
    L0_sampler.update
      (L0_sampler.update (fresh_sampler ()) ~index:3 ~delta:1)
      ~index:3 ~delta:(-1)
  in
  Alcotest.(check bool) "cancelled" true (L0_sampler.sample s = None)

let test_l0_linearity_cancels () =
  (* Two overlapping sets; shared indices with opposite signs vanish. *)
  let a =
    List.fold_left (fun acc i -> L0_sampler.update acc ~index:i ~delta:1)
      (fresh_sampler ~seed:21 ()) [ 5; 11; 99 ]
  in
  let b =
    List.fold_left (fun acc i -> L0_sampler.update acc ~index:i ~delta:(-1))
      (fresh_sampler ~seed:21 ()) [ 5; 11 ]
  in
  match L0_sampler.sample (L0_sampler.combine a b) with
  | Some (99, 1) -> ()
  | _ -> Alcotest.fail "only 99 survives"

let test_l0_combine_guard () =
  let a = fresh_sampler ~seed:1 () and b = fresh_sampler ~seed:2 () in
  Alcotest.check_raises "different seeds"
    (Invalid_argument "L0_sampler.combine: samplers from different seed positions") (fun () ->
      ignore (L0_sampler.combine a b))

let test_l0_serialization () =
  let s = L0_sampler.update (fresh_sampler ~seed:31 ()) ~index:100 ~delta:1 in
  let w = Refnet_bits.Bit_writer.create () in
  L0_sampler.write w s;
  Alcotest.(check int) "size" (L0_sampler.bits ~levels:12) (Refnet_bits.Bit_writer.length w);
  let s' =
    L0_sampler.read
      (Refnet_bits.Bit_reader.of_bitvec (Refnet_bits.Bit_writer.contents w))
      ~template:(fresh_sampler ~seed:31 ())
  in
  match L0_sampler.sample s' with
  | Some (100, 1) -> ()
  | _ -> Alcotest.fail "roundtrip sample"

let prop_one_sparse_exact =
  QCheck2.Test.make ~name:"1-sparse vectors always recover exactly" ~count:300
    QCheck2.Gen.(pair (int_range 0 1_000_000) (int_range 1 100))
    (fun (i, c) ->
      match One_sparse.recover (sparse_sketch [ (i, c) ]) with
      | Some (i', c') -> i' = i && c' = c
      | None -> false)

let prop_l0_sample_correct_sign =
  QCheck2.Test.make ~name:"sampled coordinate is a true support member with its sign" ~count:200
    QCheck2.Gen.(
      pair (int_range 0 1000)
        (list_size (int_range 1 40) (int_range 0 100_000)))
    (fun (seed, raw) ->
      let support = List.sort_uniq compare raw in
      let s =
        List.fold_left
          (fun acc i -> L0_sampler.update acc ~index:i ~delta:1)
          (fresh_sampler ~seed ~levels:20 ())
          support
      in
      match L0_sampler.sample s with
      | Some (i, 1) -> List.mem i support
      | Some _ -> false
      | None -> true (* allowed to fail, never to lie *))

let prop_l0_success_rate =
  QCheck2.Test.make ~name:"sampler succeeds on most non-zero vectors" ~count:1
    QCheck2.Gen.unit (fun () ->
      let successes = ref 0 in
      let trials = 200 in
      for seed = 1 to trials do
        let support = List.init ((seed mod 37) + 1) (fun i -> (i * 97) + seed) in
        let s =
          List.fold_left
            (fun acc i -> L0_sampler.update acc ~index:i ~delta:1)
            (fresh_sampler ~seed ~levels:20 ())
            support
        in
        if L0_sampler.sample s <> None then incr successes
      done;
      !successes > trials * 7 / 10)

let () =
  Alcotest.run "sketch"
    [
      ( "field",
        [
          Alcotest.test_case "axioms" `Quick test_field_axioms;
          Alcotest.test_case "inverse" `Quick test_field_inverse;
        ] );
      ( "hash",
        [
          Alcotest.test_case "deterministic from seed" `Quick test_hash_deterministic;
          Alcotest.test_case "geometric levels" `Quick test_hash_levels_geometric;
        ] );
      ( "one-sparse",
        [
          Alcotest.test_case "recovers singletons" `Quick test_one_sparse_recovers;
          Alcotest.test_case "rejects non-singletons" `Quick test_one_sparse_rejects;
          Alcotest.test_case "linearity" `Quick test_one_sparse_linear;
          Alcotest.test_case "serialization" `Quick test_one_sparse_serialization;
        ] );
      ( "l0-sampler",
        [
          Alcotest.test_case "samples a member" `Quick test_l0_samples_member;
          Alcotest.test_case "zero vector" `Quick test_l0_zero_vector;
          Alcotest.test_case "linear cancellation" `Quick test_l0_linearity_cancels;
          Alcotest.test_case "combine guard" `Quick test_l0_combine_guard;
          Alcotest.test_case "serialization" `Quick test_l0_serialization;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_one_sparse_exact; prop_l0_sample_correct_sign; prop_l0_success_rate ] );
    ]
