open Refnet_graph

let decide ?(seed = 4242) g =
  fst (Core.Simulator.run (Core.Sketch_connectivity.protocol ~seed ()) g)

let test_edge_index_roundtrip () =
  let idx = ref (-1) in
  for v = 2 to 40 do
    for u = 1 to v - 1 do
      let i = Core.Sketch_connectivity.edge_index ~u ~v in
      Alcotest.(check int) "dense and increasing" (!idx + 1) i;
      idx := i;
      Alcotest.(check (pair int int)) "inverse" (u, v) (Core.Sketch_connectivity.edge_of_index i)
    done
  done

let test_edge_index_symmetric () =
  Alcotest.(check int) "orientation-free"
    (Core.Sketch_connectivity.edge_index ~u:3 ~v:11)
    (Core.Sketch_connectivity.edge_index ~u:11 ~v:3)

let test_connected_families () =
  List.iter
    (fun (name, g) -> Alcotest.(check bool) name true (decide g))
    [
      ("path", Generators.path 20);
      ("cycle", Generators.cycle 17);
      ("grid", Generators.grid 5 5);
      ("star", Generators.star 30);
      ("tree", Generators.random_tree (Random.State.make [| 3 |]) 40);
      ("complete", Generators.complete 12);
      ("singleton", Graph.empty 1);
      ("empty", Graph.empty 0);
    ]

let test_disconnected_families_never_pass () =
  (* One-sided error: disconnection is detected with certainty up to
     fingerprint collisions; check across many seeds. *)
  let graphs =
    [
      ("two cliques", Graph.disjoint_union (Generators.complete 6) (Generators.complete 5));
      ("isolated vertex", Graph.add_vertices (Generators.cycle 9) 1);
      ("edgeless", Graph.empty 7);
      ("three parts", Graph.disjoint_union (Generators.path 4) (Graph.disjoint_union (Generators.cycle 3) (Generators.path 2)));
    ]
  in
  List.iter
    (fun (name, g) ->
      for seed = 1 to 25 do
        Alcotest.(check bool) (Printf.sprintf "%s seed %d" name seed) false (decide ~seed g)
      done)
    graphs

let test_connected_high_success_rate () =
  let rng = Random.State.make [| 77 |] in
  let successes = ref 0 in
  let trials = 50 in
  for seed = 1 to trials do
    let g = Generators.random_connected rng 30 0.1 in
    if decide ~seed g then incr successes
  done;
  Alcotest.(check bool)
    (Printf.sprintf "%d/%d connected verdicts" !successes trials)
    true
    (!successes >= trials - 2)

let test_message_size_polylog () =
  (* O(log^3 n) bits: at n = 256 the sketch messages must beat the n-bit
     incidence vector baseline... they do not yet at this constant-heavy
     size, but they must grow by at most ~(log n)^3 between doublings. *)
  let b256 = Core.Sketch_connectivity.message_bits ~n:256 () in
  let b512 = Core.Sketch_connectivity.message_bits ~n:512 () in
  Alcotest.(check bool) "subquadratic growth between doublings" true
    (float_of_int b512 /. float_of_int b256 < 1.5);
  (* The crossover against the n-bit full-information message. *)
  Alcotest.(check bool) "polylog beats n for large n" true
    (Core.Sketch_connectivity.message_bits ~n:65536 () < 65536)

let test_exact_transcript_size () =
  let n = 20 in
  let g = Generators.cycle n in
  let _, t = Core.Simulator.run (Core.Sketch_connectivity.protocol ~seed:1 ()) g in
  Alcotest.(check int) "every node at the formula size"
    (Core.Sketch_connectivity.message_bits ~n ())
    t.Core.Simulator.max_bits

let test_seed_is_shared_randomness () =
  (* Different seeds may flip failure cases but must agree on the truth
     of easy instances; and identical seeds are deterministic. *)
  let g = Generators.grid 4 4 in
  Alcotest.(check bool) "deterministic" (decide ~seed:5 g) (decide ~seed:5 g)

let prop_matches_truth_mostly =
  QCheck2.Test.make ~name:"sketch verdict: sound on disconnected, complete w.h.p." ~count:100
    QCheck2.Gen.(triple (int_range 2 25) (int_range 0 10) int)
    (fun (n, p10, seed) ->
      let rng = Random.State.make [| seed; n; p10 |] in
      let g = Generators.gnp rng n (float_of_int p10 /. 10.0) in
      let verdict = decide ~seed:(abs seed + 1) g in
      if Connectivity.is_connected g then true (* completeness tested statistically above *)
      else verdict = false)

let prop_rounds_monotone =
  QCheck2.Test.make ~name:"more Borůvka rounds never hurt" ~count:30
    QCheck2.Gen.(pair (int_range 2 20) int)
    (fun (n, seed) ->
      let rng = Random.State.make [| seed; n |] in
      let g = Generators.random_connected rng n 0.15 in
      let run rounds =
        fst (Core.Simulator.run (Core.Sketch_connectivity.protocol ~seed:9 ~rounds ()) g)
      in
      (not (run 3)) || run 8)

let () =
  Alcotest.run "sketch_connectivity"
    [
      ( "edge indexing",
        [
          Alcotest.test_case "roundtrip" `Quick test_edge_index_roundtrip;
          Alcotest.test_case "symmetric" `Quick test_edge_index_symmetric;
        ] );
      ( "protocol",
        [
          Alcotest.test_case "connected families" `Quick test_connected_families;
          Alcotest.test_case "disconnected never pass" `Quick test_disconnected_families_never_pass;
          Alcotest.test_case "high success rate" `Quick test_connected_high_success_rate;
          Alcotest.test_case "polylog message size" `Quick test_message_size_polylog;
          Alcotest.test_case "exact transcript size" `Quick test_exact_transcript_size;
          Alcotest.test_case "shared-seed determinism" `Quick test_seed_is_shared_randomness;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest [ prop_matches_truth_mostly; prop_rounds_monotone ]
      );
    ]
