open Refnet_graph

let test_spanning_forest_tree_count () =
  let g = Generators.cycle 6 in
  Alcotest.(check int) "n-1 edges" 5 (List.length (Spanning.spanning_forest g));
  let f = Graph.of_edges 7 [ (1, 2); (3, 4); (4, 5) ] in
  Alcotest.(check int) "n - components" 3 (List.length (Spanning.spanning_forest f))

let test_spanning_forest_edges_real () =
  let g = Generators.grid 3 3 in
  List.iter
    (fun (u, v) -> Alcotest.(check bool) "edge exists" true (Graph.has_edge g u v))
    (Spanning.spanning_forest g)

let test_forest_of_edges_duplicates () =
  let forest = Spanning.forest_of_edges ~n:3 [ (1, 2); (2, 1); (2, 3); (3, 2); (1, 3) ] in
  Alcotest.(check int) "two edges" 2 (List.length forest)

let test_forest_of_edges_guards () =
  Alcotest.check_raises "loop" (Invalid_argument "Spanning.forest_of_edges: self-loop")
    (fun () -> ignore (Spanning.forest_of_edges ~n:3 [ (2, 2) ]));
  Alcotest.check_raises "range"
    (Invalid_argument "Spanning.forest_of_edges: endpoint out of range") (fun () ->
      ignore (Spanning.forest_of_edges ~n:3 [ (1, 4) ]))

let test_is_forest () =
  Alcotest.(check bool) "tree" true (Spanning.is_forest (Generators.random_tree (Random.State.make [| 1 |]) 12));
  Alcotest.(check bool) "cycle" false (Spanning.is_forest (Generators.cycle 5));
  Alcotest.(check bool) "empty" true (Spanning.is_forest (Graph.empty 4))

let test_union_find () =
  let uf = Union_find.create 5 in
  Alcotest.(check int) "initial sets" 5 (Union_find.count uf);
  Alcotest.(check bool) "fresh union" true (Union_find.union uf 0 1);
  Alcotest.(check bool) "repeat union" false (Union_find.union uf 1 0);
  ignore (Union_find.union uf 2 3);
  Alcotest.(check int) "after merges" 3 (Union_find.count uf);
  Alcotest.(check bool) "same" true (Union_find.same uf 0 1);
  Alcotest.(check bool) "not same" false (Union_find.same uf 0 2)

let gen_graph =
  QCheck2.Gen.(
    bind (int_range 1 24) (fun n ->
        map
          (fun seed -> Refnet_graph.Generators.gnp (Random.State.make [| seed; n * 7 |]) n 0.2)
          int))

let prop_forest_preserves_connectivity =
  QCheck2.Test.make ~name:"spanning forest has the same components" ~count:200 gen_graph
    (fun g ->
      let f = Graph.of_edges (Graph.order g) (Spanning.spanning_forest g) in
      Connectivity.components g = Connectivity.components f)

let prop_forest_is_acyclic =
  QCheck2.Test.make ~name:"spanning forest is a forest" ~count:200 gen_graph (fun g ->
      Spanning.is_forest (Graph.of_edges (Graph.order g) (Spanning.spanning_forest g)))

(* The forest-union lemma backing the coalition connectivity protocol:
   partition the edges arbitrarily, take per-class spanning forests, the
   union preserves the component structure. *)
let prop_forest_union_lemma =
  QCheck2.Test.make ~name:"union of per-class spanning forests preserves components"
    ~count:200
    QCheck2.Gen.(pair gen_graph (int_range 1 5))
    (fun (g, classes) ->
      let n = Graph.order g in
      let buckets = Array.make classes [] in
      List.iteri (fun i e -> buckets.(i mod classes) <- e :: buckets.(i mod classes)) (Graph.edges g);
      let union_edges =
        Array.to_list buckets |> List.concat_map (fun es -> Spanning.forest_of_edges ~n es)
      in
      let h = Graph.of_edges n union_edges in
      Connectivity.components g = Connectivity.components h)

let () =
  Alcotest.run "spanning"
    [
      ( "unit",
        [
          Alcotest.test_case "forest edge counts" `Quick test_spanning_forest_tree_count;
          Alcotest.test_case "forest edges exist" `Quick test_spanning_forest_edges_real;
          Alcotest.test_case "duplicate edges" `Quick test_forest_of_edges_duplicates;
          Alcotest.test_case "guards" `Quick test_forest_of_edges_guards;
          Alcotest.test_case "is_forest" `Quick test_is_forest;
          Alcotest.test_case "union-find" `Quick test_union_find;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_forest_preserves_connectivity; prop_forest_is_acyclic; prop_forest_union_lemma ]
      );
    ]
