open Refnet_graph

let test_contains_basic () =
  let g = Generators.petersen () in
  Alcotest.(check bool) "C5 in petersen" true (Subgraph.contains ~pattern:(Subgraph.cycle_pattern 5) g);
  Alcotest.(check bool) "no C4 (girth 5)" false (Subgraph.contains ~pattern:(Subgraph.cycle_pattern 4) g);
  Alcotest.(check bool) "no K3" false (Subgraph.contains ~pattern:(Subgraph.clique_pattern 3) g);
  Alcotest.(check bool) "P4" true (Subgraph.contains ~pattern:(Subgraph.path_pattern 4) g);
  Alcotest.(check bool) "claw" true (Subgraph.contains ~pattern:(Subgraph.star_pattern 4) g)

let test_contains_edge_cases () =
  let g = Generators.path 3 in
  Alcotest.(check bool) "empty pattern" true (Subgraph.contains ~pattern:(Graph.empty 0) g);
  Alcotest.(check bool) "single vertex" true (Subgraph.contains ~pattern:(Graph.empty 1) g);
  Alcotest.(check bool) "pattern too big" false
    (Subgraph.contains ~pattern:(Subgraph.path_pattern 4) g);
  (* Edgeless pattern on <= n vertices always embeds. *)
  Alcotest.(check bool) "3 isolated" true (Subgraph.contains ~pattern:(Graph.empty 3) g)

let test_find_witness_valid () =
  let g = Generators.grid 3 3 in
  let pattern = Subgraph.cycle_pattern 4 in
  match Subgraph.find ~pattern g with
  | None -> Alcotest.fail "grid contains C4"
  | Some a ->
    Graph.iter_edges pattern (fun u v ->
        Alcotest.(check bool)
          (Printf.sprintf "edge %d-%d mapped" u v)
          true
          (Graph.has_edge g a.(u - 1) a.(v - 1)));
    let images = Array.to_list a in
    Alcotest.(check int) "injective" 4 (List.length (List.sort_uniq compare images))

let test_count_known () =
  (* Labelled copies: K3 in K3 = 3! = 6 embeddings; C4 in C4 = 8
     (4 rotations x 2 reflections). *)
  Alcotest.(check int) "K3 in K3" 6
    (Subgraph.count ~pattern:(Subgraph.clique_pattern 3) (Generators.complete 3));
  Alcotest.(check int) "C4 in C4" 8
    (Subgraph.count ~pattern:(Subgraph.cycle_pattern 4) (Generators.cycle 4));
  (* Edges (P2) in K4: 2 * C(4,2) = 12 ordered pairs. *)
  Alcotest.(check int) "P2 in K4" 12
    (Subgraph.count ~pattern:(Subgraph.path_pattern 2) (Generators.complete 4));
  (* Triangles in K4: 4 triangles x 6 labelled embeddings. *)
  Alcotest.(check int) "K3 in K4" 24
    (Subgraph.count ~pattern:(Subgraph.clique_pattern 3) (Generators.complete 4))

let test_induced () =
  (* C4 is a subgraph of K4 but not an induced one. *)
  let k4 = Generators.complete 4 in
  Alcotest.(check bool) "C4 subgraph of K4" true
    (Subgraph.contains ~pattern:(Subgraph.cycle_pattern 4) k4);
  Alcotest.(check bool) "C4 not induced in K4" false
    (Subgraph.induced_contains ~pattern:(Subgraph.cycle_pattern 4) k4);
  Alcotest.(check bool) "C4 induced in grid" true
    (Subgraph.induced_contains ~pattern:(Subgraph.cycle_pattern 4) (Generators.grid 2 2));
  (* P3 induced in a path but not in a triangle. *)
  Alcotest.(check bool) "P3 induced in P3" true
    (Subgraph.induced_contains ~pattern:(Subgraph.path_pattern 3) (Generators.path 3));
  Alcotest.(check bool) "P3 not induced in K3" false
    (Subgraph.induced_contains ~pattern:(Subgraph.path_pattern 3) (Generators.complete 3))

let gen_small =
  QCheck2.Gen.(
    bind (int_range 1 9) (fun n ->
        map (fun seed -> Generators.gnp (Random.State.make [| seed; n |]) n 0.4) int))

let prop_matches_cycles_triangle =
  QCheck2.Test.make ~name:"K3 pattern agrees with Cycles.has_triangle" ~count:150 gen_small
    (fun g -> Subgraph.contains ~pattern:(Subgraph.clique_pattern 3) g = Cycles.has_triangle g)

let prop_matches_cycles_square =
  QCheck2.Test.make ~name:"C4 pattern agrees with Cycles.has_square" ~count:150 gen_small
    (fun g -> Subgraph.contains ~pattern:(Subgraph.cycle_pattern 4) g = Cycles.has_square g)

let prop_monotone_in_edges =
  QCheck2.Test.make ~name:"adding edges never destroys containment" ~count:100 gen_small
    (fun g ->
      let pattern = Subgraph.path_pattern 3 in
      let denser = Graph.add_edges g (if Graph.order g >= 2 then [ (1, Graph.order g) ] else []) in
      QCheck2.assume (Graph.order g >= 2 && not (Graph.has_edge g 1 (Graph.order g)));
      (not (Subgraph.contains ~pattern g)) || Subgraph.contains ~pattern denser)

let prop_count_matches_triangle_count =
  (* Each unordered triangle has 3! labelled embeddings. *)
  QCheck2.Test.make ~name:"K3 embedding count = 6 * triangle count" ~count:100 gen_small
    (fun g ->
      Subgraph.count ~pattern:(Subgraph.clique_pattern 3) g = 6 * Cycles.triangle_count g)

let prop_induced_implies_subgraph =
  QCheck2.Test.make ~name:"induced containment implies containment" ~count:100 gen_small
    (fun g ->
      let pattern = Subgraph.path_pattern 3 in
      (not (Subgraph.induced_contains ~pattern g)) || Subgraph.contains ~pattern g)

let () =
  Alcotest.run "subgraph"
    [
      ( "unit",
        [
          Alcotest.test_case "basics" `Quick test_contains_basic;
          Alcotest.test_case "edge cases" `Quick test_contains_edge_cases;
          Alcotest.test_case "witness valid" `Quick test_find_witness_valid;
          Alcotest.test_case "known counts" `Quick test_count_known;
          Alcotest.test_case "induced" `Quick test_induced;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_matches_cycles_triangle;
            prop_matches_cycles_square;
            prop_monotone_in_edges;
            prop_count_matches_triangle_count;
            prop_induced_implies_subgraph;
          ] );
    ]
