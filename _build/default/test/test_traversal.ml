open Refnet_graph

let test_bfs_distances_path () =
  let g = Generators.path 5 in
  Alcotest.(check (array int)) "from 1" [| 0; 1; 2; 3; 4 |] (Traversal.bfs_distances g 1);
  Alcotest.(check (array int)) "from 3" [| 2; 1; 0; 1; 2 |] (Traversal.bfs_distances g 3)

let test_bfs_unreachable () =
  let g = Graph.of_edges 4 [ (1, 2) ] in
  Alcotest.(check (array int)) "isolated at -1" [| 0; 1; -1; -1 |] (Traversal.bfs_distances g 1)

let test_bfs_order () =
  let g = Generators.star 5 in
  Alcotest.(check (list int)) "center first, leaves in id order" [ 1; 2; 3; 4; 5 ]
    (Traversal.bfs_order g 1)

let test_bfs_tree () =
  let g = Generators.cycle 4 in
  let t = Traversal.bfs_tree g 1 in
  Alcotest.(check int) "3 tree edges" 3 (List.length t);
  List.iter (fun (u, v) -> Alcotest.(check bool) "tree edge real" true (Graph.has_edge g u v)) t

let test_dfs_order () =
  let g = Generators.path 4 in
  Alcotest.(check (list int)) "left to right" [ 1; 2; 3; 4 ] (Traversal.dfs_order g 1);
  Alcotest.(check (list int)) "from the middle" [ 2; 1; 3; 4 ] (Traversal.dfs_order g 2)

let test_source_guard () =
  Alcotest.check_raises "out of range" (Invalid_argument "Traversal: source out of range")
    (fun () -> ignore (Traversal.bfs_distances (Graph.empty 3) 4))

let test_components () =
  let g = Graph.of_edges 6 [ (1, 2); (2, 3); (5, 6) ] in
  Alcotest.(check int) "count" 3 (Connectivity.component_count g);
  Alcotest.(check bool) "not connected" false (Connectivity.is_connected g);
  Alcotest.(check (list (list int))) "members" [ [ 1; 2; 3 ]; [ 4 ]; [ 5; 6 ] ]
    (Connectivity.component_members g);
  Alcotest.(check bool) "same" true (Connectivity.same_component g 1 3);
  Alcotest.(check bool) "different" false (Connectivity.same_component g 1 5)

let test_empty_graph_connectivity () =
  Alcotest.(check bool) "empty connected" true (Connectivity.is_connected (Graph.empty 0));
  Alcotest.(check bool) "singleton connected" true (Connectivity.is_connected (Graph.empty 1))

let test_distance_matrix () =
  let g = Generators.cycle 5 in
  let d = Distance.pairwise g in
  Alcotest.(check int) "d(1,3)" 2 d.(0).(2);
  Alcotest.(check int) "d(1,4)" 2 d.(0).(3);
  Alcotest.(check int) "symmetric" d.(2).(0) d.(0).(2)

let test_diameter_radius () =
  let g = Generators.path 7 in
  Alcotest.(check (option int)) "diameter" (Some 6) (Distance.diameter g);
  Alcotest.(check (option int)) "radius" (Some 3) (Distance.radius g);
  Alcotest.(check (option int)) "disconnected" None (Distance.diameter (Graph.empty 3));
  Alcotest.(check (option int)) "single vertex" (Some 0) (Distance.diameter (Graph.empty 1))

let test_diameter_at_most () =
  let g = Generators.cycle 8 in
  Alcotest.(check bool) "diam 4 <= 4" true (Distance.diameter_at_most g 4);
  Alcotest.(check bool) "diam 4 <= 3" false (Distance.diameter_at_most g 3);
  Alcotest.(check bool) "disconnected never" false (Distance.diameter_at_most (Graph.empty 2) 5)

let test_eccentricity () =
  let g = Generators.star 6 in
  Alcotest.(check int) "center" 1 (Distance.eccentricity g 1);
  Alcotest.(check int) "leaf" 2 (Distance.eccentricity g 4)

let test_distance_pair () =
  let g = Generators.grid 3 3 in
  Alcotest.(check (option int)) "corner to corner" (Some 4) (Distance.distance g 1 9);
  Alcotest.(check (option int)) "disconnected" None (Distance.distance (Graph.empty 2) 1 2)

let gen_connected =
  QCheck2.Gen.(
    bind (int_range 2 24) (fun n ->
        map
          (fun seed ->
            let rng = Random.State.make [| seed; n |] in
            Refnet_graph.Generators.random_connected rng n 0.15)
          int))

let prop_bfs_matches_pairwise =
  QCheck2.Test.make ~name:"bfs distances agree with the full matrix" ~count:100 gen_connected
    (fun g ->
      let d = Distance.pairwise g in
      let ok = ref true in
      List.iter
        (fun v ->
          let row = Traversal.bfs_distances g v in
          if row <> d.(v - 1) then ok := false)
        (Graph.vertices g);
      !ok)

let prop_triangle_inequality =
  QCheck2.Test.make ~name:"hop metric triangle inequality" ~count:80 gen_connected (fun g ->
      let d = Distance.pairwise g in
      let n = Graph.order g in
      let ok = ref true in
      for u = 0 to n - 1 do
        for v = 0 to n - 1 do
          for w = 0 to n - 1 do
            if d.(u).(v) > d.(u).(w) + d.(w).(v) then ok := false
          done
        done
      done;
      !ok)

let prop_diameter_is_max =
  QCheck2.Test.make ~name:"diameter = max pairwise distance" ~count:80 gen_connected (fun g ->
      let d = Distance.pairwise g in
      let m = Array.fold_left (fun acc row -> Array.fold_left max acc row) 0 d in
      Distance.diameter g = Some m)

let () =
  Alcotest.run "traversal"
    [
      ( "bfs/dfs",
        [
          Alcotest.test_case "bfs distances on a path" `Quick test_bfs_distances_path;
          Alcotest.test_case "bfs unreachable" `Quick test_bfs_unreachable;
          Alcotest.test_case "bfs order" `Quick test_bfs_order;
          Alcotest.test_case "bfs tree" `Quick test_bfs_tree;
          Alcotest.test_case "dfs order" `Quick test_dfs_order;
          Alcotest.test_case "source guard" `Quick test_source_guard;
        ] );
      ( "connectivity",
        [
          Alcotest.test_case "components" `Quick test_components;
          Alcotest.test_case "empty graphs" `Quick test_empty_graph_connectivity;
        ] );
      ( "distance",
        [
          Alcotest.test_case "pairwise matrix" `Quick test_distance_matrix;
          Alcotest.test_case "diameter/radius" `Quick test_diameter_radius;
          Alcotest.test_case "diameter_at_most" `Quick test_diameter_at_most;
          Alcotest.test_case "eccentricity" `Quick test_eccentricity;
          Alcotest.test_case "distance pair" `Quick test_distance_pair;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_bfs_matches_pairwise; prop_triangle_inequality; prop_diameter_is_max ] );
    ]
