open Refnet_graph

let test_known_values () =
  Alcotest.(check int) "empty" 0 (Treewidth.treewidth (Graph.empty 0));
  Alcotest.(check int) "edgeless" 0 (Treewidth.treewidth (Graph.empty 5));
  Alcotest.(check int) "single edge" 1 (Treewidth.treewidth (Graph.of_edges 2 [ (1, 2) ]));
  Alcotest.(check int) "path" 1 (Treewidth.treewidth (Generators.path 8));
  Alcotest.(check int) "tree" 1 (Treewidth.treewidth (Generators.complete_binary_tree 15));
  Alcotest.(check int) "cycle" 2 (Treewidth.treewidth (Generators.cycle 9));
  Alcotest.(check int) "K5" 4 (Treewidth.treewidth (Generators.complete 5));
  Alcotest.(check int) "K33" 3 (Treewidth.treewidth (Generators.complete_bipartite 3 3))

let test_grid_treewidth () =
  (* tw(grid w x h) = min(w, h) for grids with both sides >= 2. *)
  Alcotest.(check int) "2x5" 2 (Treewidth.treewidth (Generators.grid 2 5));
  Alcotest.(check int) "3x4" 3 (Treewidth.treewidth (Generators.grid 3 4));
  Alcotest.(check int) "4x4" 4 (Treewidth.treewidth (Generators.grid 4 4))

let test_k_tree_treewidth () =
  (* k-trees have treewidth exactly k. *)
  let r = Random.State.make [| 3 |] in
  List.iter
    (fun k ->
      Alcotest.(check int)
        (Printf.sprintf "%d-tree" k)
        k
        (Treewidth.treewidth (Generators.random_k_tree r 12 ~k)))
    [ 1; 2; 3; 4 ]

let test_petersen () =
  Alcotest.(check int) "petersen" 4 (Treewidth.treewidth (Generators.petersen ()))

let test_guard () =
  Alcotest.check_raises "too large" (Invalid_argument "Treewidth.treewidth: order above the 2^n DP guard")
    (fun () -> ignore (Treewidth.treewidth (Graph.empty 23)))

let test_elimination_cost () =
  (* Path 1-2-3: eliminating 2 first connects 1 and 3 (cost counts both),
     then eliminating the ends costs 1 each through fill. *)
  let g = Generators.path 3 in
  Alcotest.(check int) "middle first" 2 (Treewidth.elimination_cost g ~eliminated:[] 2);
  Alcotest.(check int) "end first" 1 (Treewidth.elimination_cost g ~eliminated:[] 1);
  Alcotest.(check int) "end after middle" 1 (Treewidth.elimination_cost g ~eliminated:[ 2 ] 1);
  Alcotest.check_raises "already eliminated"
    (Invalid_argument "Treewidth.elimination_cost: vertex already eliminated") (fun () ->
      ignore (Treewidth.elimination_cost g ~eliminated:[ 2 ] 2))

let test_width_of_order () =
  let g = Generators.cycle 5 in
  (* Any order of a cycle has width exactly 2. *)
  Alcotest.(check int) "natural order" 2 (Treewidth.width_of_order g [ 1; 2; 3; 4; 5 ]);
  Alcotest.(check int) "another order" 2 (Treewidth.width_of_order g [ 3; 1; 5; 2; 4 ]);
  (* A path eliminated from the middle is worse than end-first. *)
  let p = Generators.path 5 in
  Alcotest.(check int) "ends first width 1" 1 (Treewidth.width_of_order p [ 1; 2; 3; 4; 5 ]);
  Alcotest.(check bool) "middle first costs 2" true
    (Treewidth.width_of_order p [ 3; 2; 4; 1; 5 ] >= 2)

let gen_small =
  QCheck2.Gen.(
    bind (int_range 1 10) (fun n ->
        map (fun seed -> Generators.gnp (Random.State.make [| seed; n * 3 |]) n 0.35) int))

let prop_degeneracy_below_treewidth =
  (* The paper's inequality: degeneracy <= treewidth. *)
  QCheck2.Test.make ~name:"degeneracy <= treewidth" ~count:120 gen_small (fun g ->
      Degeneracy.degeneracy g <= Treewidth.treewidth g)

let prop_any_order_upper_bounds =
  QCheck2.Test.make ~name:"every elimination order upper-bounds treewidth" ~count:120 gen_small
    (fun g ->
      let order = Graph.vertices g in
      Treewidth.width_of_order g order >= Treewidth.treewidth g)

let prop_treewidth_bounds =
  QCheck2.Test.make ~name:"treewidth between clique-ish lower and n-1" ~count:120 gen_small
    (fun g ->
      let tw = Treewidth.treewidth g in
      let n = Graph.order g in
      tw <= n - 1
      && (not (Cycles.has_triangle g)) || tw >= (if Cycles.has_triangle g then 2 else 0))

let prop_subgraph_monotone =
  QCheck2.Test.make ~name:"treewidth monotone under vertex removal" ~count:80 gen_small
    (fun g ->
      QCheck2.assume (Graph.order g >= 2);
      let h, _ = Graph.remove_vertex g 1 in
      Treewidth.treewidth h <= Treewidth.treewidth g)

let () =
  Alcotest.run "treewidth"
    [
      ( "unit",
        [
          Alcotest.test_case "known values" `Quick test_known_values;
          Alcotest.test_case "grids" `Quick test_grid_treewidth;
          Alcotest.test_case "k-trees" `Quick test_k_tree_treewidth;
          Alcotest.test_case "petersen" `Quick test_petersen;
          Alcotest.test_case "size guard" `Quick test_guard;
          Alcotest.test_case "elimination cost" `Quick test_elimination_cost;
          Alcotest.test_case "width of order" `Quick test_width_of_order;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_degeneracy_below_treewidth;
            prop_any_order_upper_bounds;
            prop_treewidth_bounds;
            prop_subgraph_monotone;
          ] );
    ]
