(* Experiment harness: regenerates every figure and quantitative claim of
   the paper (see DESIGN.md section 4 for the experiment index and
   EXPERIMENTS.md for paper-vs-measured commentary).

   Usage:
     main.exe            run every experiment table + timing benches
     main.exe tables     only the experiment tables (fast)
     main.exe timings    only the Bechamel timing benches
     main.exe scaling    multicore scaling: sequential vs 2/4/8 domains,
                         results written to BENCH_refnet.json
     main.exe faults     fault campaign: hardened-vs-plain absorb cost and
                         crash-rate degradation, written to BENCH_refnet.json
     main.exe metrics    metrics-overhead microbench: unobserved runs pay
                         nothing, live registries stay under 5%, written to
                         BENCH_refnet.json
     main.exe graphsource  Graph_source campaign: backend transcript
                         equivalence at n = 512, then forest recognition on
                         an implicit path at n = 10^3..10^6 with a chunked
                         referee feed, peak-heap gated, written to
                         BENCH_refnet.json
     main.exe bcc        broadcast congested clique: connectivity rounds-vs-bits
                         sweep over the implicit families with oracle-checked
                         verdicts, one-round anchors, and engine transcript
                         equivalence, written to BENCH_refnet.json
     main.exe serve      referee daemon campaign (D1): clean session
                         throughput, then a chaos sweep with rising faulty
                         fractions gated on zero lies / zero quarantine
                         escapes, written to BENCH_refnet.json
     main.exe flight     flight-recorder overhead (D2): the chaos selftest
                         with rings on vs off, median-of-ratios overhead
                         gated under 5%, written to BENCH_refnet.json *)

open Refnet_graph

let rng () = Random.State.make [| 0xbeef; 0xcafe |]

let line = String.make 78 '-'

let section id title =
  Printf.printf "\n%s\n%s  %s\n%s\n" line id title line

(* ------------------------------------------------------------------ *)
(* F1: diameter gadget (paper Figure 1)                                 *)
(* ------------------------------------------------------------------ *)

let experiment_f1 () =
  section "F1" "Diameter gadget G'_{s,t} (Theorem 2, Figure 1)";
  Printf.printf
    "Base graph G + pendants on s,t + universal vertex: diam <= 3 iff {s,t} in E.\n\n";
  let r = rng () in
  Printf.printf "%6s %6s %8s %10s %12s\n" "n" "p" "pairs" "violations" "edge-pairs";
  List.iter
    (fun (n, p) ->
      let g = Generators.gnp r n p in
      let pairs = ref 0 and violations = ref 0 and edges = ref 0 in
      for s = 1 to n do
        for t = s + 1 to n do
          incr pairs;
          let verdict = Distance.diameter_at_most (Core.Gadgets.diameter g s t) 3 in
          if Graph.has_edge g s t then incr edges;
          if verdict <> Graph.has_edge g s t then incr violations
        done
      done;
      Printf.printf "%6d %6.2f %8d %10d %12d\n" n p !pairs !violations !edges)
    [ (8, 0.2); (8, 0.5); (12, 0.3); (16, 0.25); (20, 0.15) ];
  (* The figure's concrete observation: the critical pair is the two
     pendant vertices n+1, n+2. *)
  let g = Generators.path 7 in
  let adjacent = Core.Gadgets.diameter g 1 2 and non_adjacent = Core.Gadgets.diameter g 1 7 in
  Printf.printf
    "\nFigure-1 witness on P7: d(n+1, n+2) = %s with edge {1,2}, %s without edge {1,7}\n"
    (match Distance.distance adjacent 8 9 with Some d -> string_of_int d | None -> "inf")
    (match Distance.distance non_adjacent 8 9 with Some d -> string_of_int d | None -> "inf")

(* ------------------------------------------------------------------ *)
(* F2: triangle gadget (paper Figure 2)                                 *)
(* ------------------------------------------------------------------ *)

let experiment_f2 () =
  section "F2" "Triangle gadget G'_{s,t} (Theorem 3, Figure 2)";
  Printf.printf "Bipartite G + apex adjacent to {s,t}: triangle iff {s,t} in E.\n\n";
  let r = rng () in
  Printf.printf "%6s %6s %8s %10s %12s\n" "n" "p" "pairs" "violations" "edge-pairs";
  List.iter
    (fun (half, p) ->
      let g = Generators.random_bipartite r ~left:half ~right:half p in
      let n = 2 * half in
      let pairs = ref 0 and violations = ref 0 and edges = ref 0 in
      for s = 1 to n do
        for t = s + 1 to n do
          incr pairs;
          let verdict = Cycles.has_triangle (Core.Gadgets.triangle g s t) in
          if Graph.has_edge g s t then incr edges;
          if verdict <> Graph.has_edge g s t then incr violations
        done
      done;
      Printf.printf "%6d %6.2f %8d %10d %12d\n" n p !pairs !violations !edges)
    [ (4, 0.4); (6, 0.5); (8, 0.3); (10, 0.5) ]

(* ------------------------------------------------------------------ *)
(* T1: Lemma 2 message sizes                                            *)
(* ------------------------------------------------------------------ *)

let experiment_t1 () =
  section "T1" "Message size of Algorithm 3 vs the Lemma 2 bound O(k^2 log n)";
  Printf.printf "%6s %4s %12s %12s %14s\n" "n" "k" "measured(b)" "layout(b)" "bits/log n";
  let r = rng () in
  List.iter
    (fun n ->
      List.iter
        (fun k ->
          let g = Generators.random_k_degenerate r n ~k in
          let _, t = Core.Simulator.run (Core.Degeneracy_protocol.reconstruct ~k ()) g in
          Printf.printf "%6d %4d %12d %12d %14.2f\n" n k t.Core.Simulator.max_bits
            (Core.Degeneracy_protocol.message_bits ~k n)
            (Core.Simulator.frugality_ratio t))
        [ 1; 2; 3; 5 ])
    [ 64; 256; 1024 ]

(* ------------------------------------------------------------------ *)
(* T2: Theorem 5 reconstruction across graph classes                    *)
(* ------------------------------------------------------------------ *)

let experiment_t2 () =
  section "T2" "One-round reconstruction across bounded-degeneracy classes (Theorem 5)";
  Printf.printf "%-22s %6s %4s %8s %10s %12s\n" "class" "n" "k" "exact" "max-bits" "runs";
  let r = rng () in
  let runs = 5 in
  let trial name k make =
    let exact = ref 0 and bits = ref 0 in
    for _ = 1 to runs do
      let g = make () in
      let out, t = Core.Simulator.run (Core.Degeneracy_protocol.reconstruct ~k ()) g in
      if out = Some g then incr exact;
      bits := max !bits t.Core.Simulator.max_bits
    done;
    (name, k, !exact, !bits)
  in
  let n = 100 in
  List.iter
    (fun (name, k, exact, bits) ->
      Printf.printf "%-22s %6d %4d %7d/%d %10d %12d\n" name n k exact runs bits runs)
    [
      trial "random forest" 1 (fun () -> Generators.random_forest r n ~trees:4);
      trial "maximal outerplanar" 2 (fun () -> Generators.random_maximal_outerplanar r n);
      trial "grid (planar)" 2 (fun () -> Generators.grid 10 10);
      trial "apollonian (planar)" 3 (fun () -> Generators.random_apollonian r n);
      trial "planar budget k=5" 5 (fun () -> Generators.random_apollonian r n);
      trial "3-tree (treewidth 3)" 3 (fun () -> Generators.random_k_tree r n ~k:3);
      trial "random 4-degenerate" 4 (fun () -> Generators.random_k_degenerate r n ~k:4);
    ]

(* ------------------------------------------------------------------ *)
(* T3: Lemma 1 counting                                                 *)
(* ------------------------------------------------------------------ *)

let experiment_t3 () =
  section "T3" "Lemma 1: family sizes vs the frugal information budget";
  let c = 4 in
  Printf.printf "(budget constant c = %d, i.e. messages of c log n bits)\n\n" c;
  Printf.printf "%4s %18s %18s %12s %10s\n" "n" "log2 #square-free" "budget c*n*log n" "fits?"
    "n^1.5";
  for n = 2 to 7 do
    let lg = Core.Counting.log2_family_size Core.Counting.Square_free n in
    let budget = Core.Counting.budget ~c n in
    Printf.printf "%4d %18.1f %18.1f %12s %10.1f\n" n lg budget
      (if lg <= budget then "yes" else "NO")
      (Core.Bounds.square_free_growth_exponent n)
  done;
  Printf.printf "\nClosed-form families (crossover = first n where the family outgrows c=%d):\n" c;
  List.iter
    (fun (name, fam) ->
      match Core.Counting.crossover ~c fam ~max_n:4096 with
      | Some n -> Printf.printf "  %-28s crossover at n = %d\n" name n
      | None -> Printf.printf "  %-28s no crossover below 4096\n" name)
    [
      ("all graphs (Theorem 2)", Core.Counting.All_graphs);
      ("bipartite halves (Theorem 3)", Core.Counting.Bipartite_fixed_halves);
    ]

(* ------------------------------------------------------------------ *)
(* T4/T5/T6: the reduction protocols                                    *)
(* ------------------------------------------------------------------ *)

let experiment_reductions () =
  section "T4-T6" "Reduction protocols Δ (Theorems 1-3): reconstruction via gadget oracles";
  Printf.printf "%-12s %6s %8s %12s %12s %8s\n" "reduction" "n" "exact" "Δ bits" "oracle(n)b"
    "blowup";
  let r = rng () in
  let row name delta oracle_bits g =
    let n = Graph.order g in
    let out, t = Core.Simulator.run delta g in
    Printf.printf "%-12s %6d %8s %12d %12d %7.2fx\n" name n
      (if Graph.equal out g then "yes" else "NO")
      t.Core.Simulator.max_bits (oracle_bits n)
      (float_of_int t.Core.Simulator.max_bits /. float_of_int (oracle_bits n))
  in
  let id_bits n = n in
  List.iter
    (fun n ->
      let tree = Generators.random_tree r n in
      row "square" (Core.Reduction.square Core.Reduction.square_oracle) id_bits tree;
      let any = Generators.gnp r n 0.4 in
      row "diameter" (Core.Reduction.diameter Core.Reduction.diameter3_oracle) id_bits any;
      let bip = Generators.random_bipartite r ~left:(n / 2) ~right:(n - (n / 2)) 0.5 in
      row "triangle" (Core.Reduction.triangle Core.Reduction.triangle_oracle) id_bits bip)
    [ 8; 12; 16 ];
  Printf.printf
    "\n(oracle = full-information decider, n bits/node; paper predicts blowups of\n\
    \ k(2n)/k(n) = 2x, 3k(n+3)/k(n) ~ 3x, 2k(n+1)/k(n) ~ 2x — plus O(log n) framing)\n"

(* ------------------------------------------------------------------ *)
(* T7: coalition connectivity                                           *)
(* ------------------------------------------------------------------ *)

let experiment_t7 () =
  section "T7" "Coalition connectivity (conclusion): O(k log n) bits per node";
  let n = 64 in
  let r = rng () in
  Printf.printf "%6s %6s %10s %12s %12s %10s\n" "parts" "runs" "correct" "max-bits" "bound(b)"
    "k*log n";
  List.iter
    (fun parts ->
      let runs = 20 in
      let correct = ref 0 and bits = ref 0 in
      for _ = 1 to runs do
        let g = Generators.gnp r n 0.05 in
        let partition = Core.Coalition.partition_by_ranges ~n ~parts in
        let verdict, t = Core.Coalition.run Core.Connectivity_parts.decide g ~parts:partition in
        if verdict = Connectivity.is_connected g then incr correct;
        bits := max !bits t.Core.Simulator.max_bits
      done;
      Printf.printf "%6d %6d %8d/%d %12d %12d %10d\n" parts runs !correct runs !bits
        (Core.Connectivity_parts.per_node_bound ~n ~parts)
        (parts * Core.Bounds.id_bits n))
    [ 1; 2; 4; 8; 16 ]

(* ------------------------------------------------------------------ *)
(* T9: generalized degeneracy on dense graphs                           *)
(* ------------------------------------------------------------------ *)

let experiment_t9 () =
  section "T9" "Generalized degeneracy: dense graphs the plain protocol cannot touch";
  let r = rng () in
  Printf.printf "%-24s %6s %8s %8s %10s %10s\n" "class" "n" "plain-d" "gen-d" "plain@k=2"
    "gen@k=2";
  List.iter
    (fun (name, g) ->
      let plain = Degeneracy.degeneracy g and gen = Degeneracy.generalized_degeneracy g in
      let plain_ok =
        fst (Core.Simulator.run (Core.Degeneracy_protocol.reconstruct ~k:2 ()) g) = Some g
      in
      let gen_ok =
        fst (Core.Simulator.run (Core.Generalized_degeneracy.reconstruct ~k:2 ()) g) = Some g
      in
      Printf.printf "%-24s %6d %8d %8d %10s %10s\n" name (Graph.order g) plain gen
        (if plain_ok then "yes" else "no")
        (if gen_ok then "yes" else "no"))
    [
      ("complement of tree", Graph.complement (Generators.random_tree r 40));
      ("complement of cycle", Graph.complement (Generators.cycle 40));
      ("near-clique (K40 - M)", Graph.complement (Generators.random_forest r 40 ~trees:20));
      ("grid (sparse control)", Generators.grid 6 6);
    ]

(* ------------------------------------------------------------------ *)
(* T10: recognition thresholds                                          *)
(* ------------------------------------------------------------------ *)

let experiment_t10 () =
  section "T10" "Recognition protocol: accept iff degeneracy <= k";
  let families =
    [
      ("tree", Generators.complete_binary_tree 31);
      ("cycle", Generators.cycle 20);
      ("outerplanar", Generators.random_maximal_outerplanar (rng ()) 20);
      ("apollonian", Generators.random_apollonian (rng ()) 20);
      ("K6", Generators.complete 6);
      ("petersen", Generators.petersen ());
    ]
  in
  Printf.printf "%-14s %6s |" "family" "deg";
  List.iter (fun k -> Printf.printf " k=%d" k) [ 1; 2; 3; 4; 5 ];
  print_newline ();
  List.iter
    (fun (name, g) ->
      Printf.printf "%-14s %6d |" name (Degeneracy.degeneracy g);
      List.iter
        (fun k ->
          let ok = fst (Core.Simulator.run (Core.Recognition.degeneracy_at_most k) g) in
          Printf.printf "  %s " (if ok then "+" else "-"))
        [ 1; 2; 3; 4; 5 ];
      print_newline ())
    families

(* ------------------------------------------------------------------ *)
(* T11: adaptive two-round protocol (Section IV, "more rounds")         *)
(* ------------------------------------------------------------------ *)

let experiment_t11 () =
  section "T11" "Two rounds beat one: adaptive reconstruction with unknown k";
  Printf.printf
    "Round 1: degrees -> referee infers k-hat -> round 2: Algorithm 3 at k-hat.\n\n";
  Printf.printf "%-22s %6s %8s %8s %12s %12s\n" "graph" "n" "deg(G)" "k-hat" "r2 bits"
    "exact";
  let r = rng () in
  List.iter
    (fun (name, g) ->
      let degrees =
        Array.of_list (List.map (Graph.degree g) (Graph.vertices g))
      in
      let k_hat = Core.Bcc.Adaptive_degeneracy.degree_bound degrees in
      let out, t = Core.Bcc.run (Core.Bcc.Adaptive_degeneracy.protocol ()) g in
      let r2 = t.Core.Bcc.per_round_max_bits.(1) in
      Printf.printf "%-22s %6d %8d %8d %12d %12s\n" name (Graph.order g)
        (Degeneracy.degeneracy g) k_hat r2
        (if out = Some g then "yes" else "NO"))
    [
      ("random tree", Generators.random_tree r 64);
      ("8x8 grid", Generators.grid 8 8);
      ("apollonian", Generators.random_apollonian r 64);
      ("G(64, 0.1)", Generators.gnp r 64 0.1);
      ("G(64, 0.5)", Generators.gnp r 64 0.5);
      ("K16 (worst case)", Generators.complete 16);
    ]

(* ------------------------------------------------------------------ *)
(* T12: bipartiteness => bipartite connectivity (ongoing-work remark)   *)
(* ------------------------------------------------------------------ *)

let experiment_t12 () =
  section "T12" "Reduction: bipartiteness oracle decides bipartite connectivity";
  let r = rng () in
  Printf.printf "%6s %6s %8s %10s %12s\n" "n" "p" "runs" "correct" "Δ bits";
  List.iter
    (fun (half, p) ->
      let n = 2 * half in
      let left = List.init half (fun i -> i + 1) in
      let right = List.init half (fun i -> half + i + 1) in
      let delta =
        Core.Bipartite_reduction.connectivity
          ~oracle:Core.Bipartite_reduction.bipartiteness_oracle ~left ~right
      in
      let runs = 10 in
      let correct = ref 0 and bits = ref 0 in
      for _ = 1 to runs do
        let g = Generators.random_bipartite r ~left:half ~right:half p in
        let verdict, t = Core.Simulator.run delta g in
        if verdict = Connectivity.is_connected g then incr correct;
        bits := max !bits t.Core.Simulator.max_bits
      done;
      Printf.printf "%6d %6.2f %8d %8d/%d %12d\n" n p runs !correct runs !bits)
    [ (4, 0.3); (6, 0.4); (8, 0.25); (8, 0.5) ]

(* ------------------------------------------------------------------ *)
(* T13: fooling pairs — Lemma 1 constructively                          *)
(* ------------------------------------------------------------------ *)

let experiment_t13 () =
  section "T13" "Fooling pairs: capacity of clipped protocols vs family size";
  Printf.printf
    "Clip the (correct, non-frugal) square oracle to b*log n bits and count the\n\
     distinct message vectors it can produce over all graphs on n vertices.\n\n";
  Printf.printf "%4s %10s %14s %14s %14s\n" "n" "graphs" "cap b=1" "cap b=2" "fooled(b=1)";
  for n = 3 to 5 do
    let total = Enumerate.count n ~where:(fun _ -> true) in
    let cap b =
      let p = Core.Fooling.truncate ~budget:b Core.Reduction.square_oracle in
      Core.Fooling.vector_count ~n ~local:p.Core.Protocol.local (Enumerate.iter n)
    in
    let fooled =
      match
        Core.Fooling.fooling_pair_for ~n ~budget:1 Core.Reduction.square_oracle
          ~property:Cycles.has_square
      with
      | Some _ -> "yes"
      | None -> "no"
    in
    Printf.printf "%4d %10d %14d %14d %14s\n" n total (cap 1) (cap 2) fooled
  done

(* ------------------------------------------------------------------ *)
(* T14: ablation — Newton decoder vs Lemma 3 lookup table               *)
(* ------------------------------------------------------------------ *)

let experiment_t14 () =
  section "T14" "Ablation: Newton-identities decoder vs the Lemma 3 lookup table";
  Printf.printf "%6s %4s %14s %16s %16s\n" "n" "k" "table entries" "table build(ms)"
    "decode agree";
  let r = rng () in
  List.iter
    (fun (n, k) ->
      let t0 = Sys.time () in
      let table = Refnet_algebra.Power_sum.Table.build ~n ~k in
      let build_ms = 1000.0 *. (Sys.time () -. t0) in
      let g = Generators.random_k_degenerate r n ~k in
      let via_table =
        fst
          (Core.Simulator.run
             (Core.Degeneracy_protocol.reconstruct
                ~decoder:(Core.Degeneracy_protocol.table_decoder table)
                ~k ())
             g)
      in
      let via_newton =
        fst (Core.Simulator.run (Core.Degeneracy_protocol.reconstruct ~k ()) g)
      in
      Printf.printf "%6d %4d %14d %16.1f %16s\n" n k
        (Refnet_algebra.Power_sum.Table.entries table)
        build_ms
        (if via_table = via_newton && via_table = Some g then "yes" else "NO"))
    [ (16, 2); (32, 2); (16, 3); (24, 3) ];
  Printf.printf
    "\n(The table needs O(n^k) space — the Newton decoder removes that wall;\n\
    \ both are exact by Wright's theorem.)\n"

(* ------------------------------------------------------------------ *)
(* T15: hardness sweep over subgraph patterns S                         *)
(* ------------------------------------------------------------------ *)

let experiment_t15 () =
  section "T15" "Section II framing: 'does G admit S as a subgraph?' across patterns";
  Printf.printf
    "Clip the full-information oracle to 1 log n bits/node and hunt fooling pairs\n\
     for each pattern S over all graphs on n = 5 vertices.  The paper: hardness\n\
     holds for most S 'not reduced to an edge'; an edge is decidable with 1 bit.\n\n";
  let n = 5 in
  let patterns =
    [
      ("edge (P2)", Subgraph.path_pattern 2);
      ("path P3", Subgraph.path_pattern 3);
      ("triangle", Subgraph.clique_pattern 3);
      ("square C4", Subgraph.cycle_pattern 4);
      ("path P4", Subgraph.path_pattern 4);
      ("claw K13", Subgraph.star_pattern 4);
      ("K4", Subgraph.clique_pattern 4);
    ]
  in
  Printf.printf "%-12s %14s %14s\n" "pattern S" "fooled(b=1)" "fooled(b=2)";
  List.iter
    (fun (name, pattern) ->
      let fooled b =
        match
          Core.Fooling.fooling_pair_for ~n ~budget:b Core.Reduction.square_oracle
            ~property:(fun g -> Subgraph.contains ~pattern g)
        with
        | Some _ -> "yes"
        | None -> "no"
      in
      Printf.printf "%-12s %14s %14s\n" name (fooled 1) (fooled 2))
    patterns;
  (* The contrast: a purpose-built 1-bit protocol decides S = edge for
     every graph — the case the paper excludes from its hardness claim. *)
  let edge_protocol : bool Core.Protocol.t =
    {
      name = "has-edge (1 bit)";
      local =
        (fun v ->
          let w = Refnet_bits.Bit_writer.create () in
          Refnet_bits.Bit_writer.add_bit w (Core.View.deg v > 0);
          Core.Message.of_writer w);
      referee =
        Core.Protocol.streaming
          ~init:(fun ~n:_ -> false)
          ~absorb:(fun ~n:_ acc ~id:_ m ->
            acc || Refnet_bits.Bit_reader.read_bit (Core.Message.reader m))
          ~finish:(fun ~n:_ acc -> acc);
    }
  in
  let collision =
    Core.Fooling.find_pair ~n
      ~property:(fun g -> Subgraph.contains ~pattern:(Subgraph.path_pattern 2) g)
      ~local:edge_protocol.Core.Protocol.local (Enumerate.iter n)
  in
  Printf.printf "\n1-bit edge protocol over all %d graphs on n=%d: fooling pair %s\n"
    (Enumerate.count n ~where:(fun _ -> true))
    n
    (match collision with Some _ -> "FOUND (bug!)" | None -> "impossible — S = edge is easy")

(* ------------------------------------------------------------------ *)
(* T16: the open question — randomized one-round connectivity           *)
(* ------------------------------------------------------------------ *)

let experiment_t16 () =
  section "T16" "Open question: one-round connectivity via public-coin graph sketches";
  Printf.printf
    "AGM-style l0-sampler sketches give a randomized one-round protocol with\n\
     O(log^3 n) bits/node: sound on disconnected inputs, complete w.h.p.\n\n";
  let r = rng () in
  Printf.printf "%6s %8s %14s %14s %12s %12s\n" "n" "runs" "conn correct" "disc correct"
    "bits/node" "n bits";
  List.iter
    (fun n ->
      let runs = 15 in
      let conn_ok = ref 0 and disc_ok = ref 0 in
      for seed = 1 to runs do
        let p = Core.Sketch_connectivity.protocol ~seed () in
        let g_conn = Generators.random_connected r n 0.08 in
        if fst (Core.Simulator.run p g_conn) then incr conn_ok;
        let g_disc =
          Graph.disjoint_union
            (Generators.random_connected r (n / 2) 0.15)
            (Generators.random_connected r (n - (n / 2)) 0.15)
        in
        if not (fst (Core.Simulator.run p g_disc)) then incr disc_ok
      done;
      Printf.printf "%6d %8d %11d/%d %11d/%d %12d %12d\n" n runs !conn_ok runs !disc_ok runs
        (Core.Sketch_connectivity.message_bits ~n ())
        n)
    [ 16; 32; 64; 128 ];
  Printf.printf
    "\n(messages are polylog: they grow ~(log n)^3 while the trivial incidence\n\
    \ message grows ~n; crossover near n = 65536 at these constants.  The\n\
    \ paper's conjecture — no deterministic O(log n)-bit protocol — stands.)\n"

(* ------------------------------------------------------------------ *)
(* T17: what IS easy in one round                                       *)
(* ------------------------------------------------------------------ *)

let experiment_t17 () =
  section "T17" "The easy landscape: degree-determined properties in one round";
  Printf.printf
    "Anything a node can compute from deg(v) travels in one id-width message;\n\
     contrast with T13/T15 where even 'is there a square' needs Omega(n) bits.\n\n";
  let r = rng () in
  let n = 128 in
  Printf.printf "%-22s %12s %10s\n" "property" "bits/node" "correct";
  let g = Generators.gnp r n 0.07 in
  let check name p truth =
    let out, t = Core.Simulator.run p g in
    Printf.printf "%-22s %12d %10s\n" name t.Core.Simulator.max_bits
      (if out = truth then "yes" else "NO")
  in
  check "edge count" Core.Easy_protocols.edge_count (Graph.size g);
  check "max degree" Core.Easy_protocols.max_degree (Graph.max_degree g);
  check "min degree" Core.Easy_protocols.min_degree (Graph.min_degree g);
  check "is regular" Core.Easy_protocols.is_regular false;
  check "has isolated vertex" Core.Easy_protocols.has_isolated_vertex
    (List.exists (fun v -> Graph.degree g v = 0) (Graph.vertices g));
  check "all degrees even" Core.Easy_protocols.all_degrees_even
    (List.for_all (fun v -> Graph.degree g v land 1 = 0) (Graph.vertices g));
  let seq, t = Core.Simulator.run Core.Easy_protocols.degree_sequence g in
  Printf.printf "%-22s %12d %10s\n" "degree sequence" t.Core.Simulator.max_bits
    (if seq = Graph.degree_sequence g then "yes" else "NO")

(* ------------------------------------------------------------------ *)
(* T18: wire-format ablation — fixed vs compact message layout          *)
(* ------------------------------------------------------------------ *)

let experiment_t18 () =
  section "T18" "Ablation: fixed-width layout (the paper's) vs compact gamma-coded layout";
  Printf.printf
    "Both layouts carry the same power sums and decode identically; the compact\n\
     one pays per-field length headers to stop padding small values.\n\n";
  let r = rng () in
  Printf.printf "%-24s %6s %4s %12s %12s %12s %9s\n" "graph" "n" "k" "fixed max" "compact max"
    "compact avg" "saving";
  List.iter
    (fun (name, k, g) ->
      let n = Graph.order g in
      let run layout =
        snd (Core.Simulator.run (Core.Degeneracy_protocol.reconstruct ~layout ~k ()) g)
      in
      let tf = run Core.Degeneracy_protocol.Fixed in
      let tc = run Core.Degeneracy_protocol.Compact in
      Printf.printf "%-24s %6d %4d %12d %12d %12.1f %8.1f%%\n" name n k
        tf.Core.Simulator.max_bits tc.Core.Simulator.max_bits
        (float_of_int tc.Core.Simulator.total_bits /. float_of_int n)
        (100.0
        *. (1.0
           -. float_of_int tc.Core.Simulator.total_bits
              /. float_of_int tf.Core.Simulator.total_bits)))
    [
      ("star (skewed degrees)", 3, Generators.star 256);
      ("random tree", 1, Generators.random_tree r 256);
      ("grid 16x16", 2, Generators.grid 16 16);
      ("apollonian", 3, Generators.random_apollonian r 256);
      ("4-tree (uniform, dense)", 4, Generators.random_k_tree r 256 ~k:4);
    ];
  Printf.printf
    "\n(The fixed layout is data-oblivious — its very uniformity is what lets the\n\
    \ referee parse without trusting senders; compact trades that for bits.)\n"

(* ------------------------------------------------------------------ *)
(* T19: exhaustive protocol search — the smallest hard instances        *)
(* ------------------------------------------------------------------ *)

let experiment_t19 () =
  section "T19" "Exhaustive search over ALL one-round protocols at n = 3, 4";
  Printf.printf
    "Lemma 1 bounds by counting; at tiny n the full protocol space is finite and\n\
     the question 'does ANY b-bit protocol exist?' is decidable outright.\n\n";
  let show n colors what result =
    Printf.printf "%4d %8d  %-28s %s\n" n colors what
      (match result with
      | Core.Protocol_search.Found _ -> "protocol EXISTS (witness found)"
      | Impossible -> "IMPOSSIBLE for every protocol"
      | Aborted -> "search aborted")
  in
  Printf.printf "%4s %8s  %-28s %s\n" "n" "colors" "goal" "verdict";
  show 3 2 "reconstruct all graphs" (Core.Protocol_search.search_reconstructor ~n:3 ~colors:2 ());
  show 3 2 "decide triangle" (Core.Protocol_search.search_decider ~n:3 ~colors:2 ~property:Cycles.has_triangle ());
  show 4 2 "decide triangle" (Core.Protocol_search.search_decider ~n:4 ~colors:2 ~property:Cycles.has_triangle ());
  show 4 2 "decide connectivity" (Core.Protocol_search.search_decider ~n:4 ~colors:2 ~property:Connectivity.is_connected ());
  show 4 2 "decide C4-subgraph" (Core.Protocol_search.search_decider ~n:4 ~colors:2 ~property:Cycles.has_square ());
  show 4 2 "decide bipartiteness" (Core.Protocol_search.search_decider ~n:4 ~colors:2 ~property:Bipartite.is_bipartite ());
  show 4 2 "decide diameter<=2" (Core.Protocol_search.search_decider ~n:4 ~colors:2 ~property:(fun g -> Distance.diameter_at_most g 2) ());
  show 4 2 "reconstruct all graphs" (Core.Protocol_search.search_reconstructor ~n:4 ~colors:2 ());
  show 4 4 "decide triangle" (Core.Protocol_search.search_decider ~n:4 ~colors:4 ~property:Cycles.has_triangle ());
  show 4 4 "decide connectivity" (Core.Protocol_search.search_decider ~n:4 ~colors:4 ~property:Connectivity.is_connected ());
  Printf.printf
    "\n(n = 3: one bit per node exactly names all 8 graphs — everything is easy.\n\
    \ n = 4: triangles and connectivity become impossible at one bit, decidable\n\
    \ at two; C4 stays 1-bit-easy at this size — the Theorem 1 hardness is an\n\
    \ asymptotic phenomenon.)\n"

(* ------------------------------------------------------------------ *)
(* T8: Bechamel timing benches                                          *)
(* ------------------------------------------------------------------ *)

let timing_benches () =
  section "T8" "Timing (Bechamel): local O(n) encode, global O(n^2) decode";
  let open Bechamel in
  let r = rng () in
  let mk_local n k =
    let g = Generators.random_k_degenerate r n ~k in
    let p = Core.Degeneracy_protocol.reconstruct ~k () in
    Test.make
      ~name:(Printf.sprintf "local/n=%d/k=%d" n k)
      (Staged.stage (fun () -> ignore (Core.Simulator.local_phase p g)))
  in
  let mk_global n k =
    let g = Generators.random_k_degenerate r n ~k in
    let p = Core.Degeneracy_protocol.reconstruct ~k () in
    let msgs = Core.Simulator.local_phase p g in
    Test.make
      ~name:(Printf.sprintf "global/n=%d/k=%d" n k)
      (Staged.stage (fun () -> ignore (Core.Protocol.apply p ~n msgs)))
  in
  let mk_forest n =
    let g = Generators.random_tree r n in
    Test.make
      ~name:(Printf.sprintf "forest/n=%d" n)
      (Staged.stage (fun () -> ignore (Core.Simulator.run Core.Forest_protocol.reconstruct g)))
  in
  let mk_gadget n =
    let g = Generators.gnp r n 0.3 in
    Test.make
      ~name:(Printf.sprintf "diameter-gadget/n=%d" n)
      (Staged.stage (fun () ->
           ignore (Distance.diameter_at_most (Core.Gadgets.diameter g 1 2) 3)))
  in
  let mk_sketch n =
    let g = Generators.random_connected r n 0.1 in
    let p = Core.Sketch_connectivity.protocol ~seed:7 () in
    Test.make
      ~name:(Printf.sprintf "sketch-connectivity/n=%d" n)
      (Staged.stage (fun () -> ignore (Core.Simulator.run p g)))
  in
  let mk_compact n k =
    let g = Generators.random_k_degenerate r n ~k in
    let p = Core.Degeneracy_protocol.reconstruct ~layout:Core.Degeneracy_protocol.Compact ~k () in
    Test.make
      ~name:(Printf.sprintf "compact-local/n=%d/k=%d" n k)
      (Staged.stage (fun () -> ignore (Core.Simulator.local_phase p g)))
  in
  let tests =
    [
      mk_local 256 2; mk_local 512 2; mk_local 1024 2; mk_local 512 4;
      mk_global 64 2; mk_global 128 2; mk_global 256 2; mk_global 128 4;
      mk_forest 1024; mk_forest 4096;
      mk_gadget 64; mk_gadget 128;
      mk_sketch 32; mk_sketch 64;
      mk_compact 512 2;
    ]
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |]
  in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.25) ~kde:(Some 100) () in
  Printf.printf "%-28s %16s\n" "bench" "ns/run";
  List.iter
    (fun test ->
      let raw = Benchmark.all cfg instances (Test.make_grouped ~name:"" ~fmt:"%s%s" [ test ]) in
      let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
      Hashtbl.iter
        (fun name ols_result ->
          match Analyze.OLS.estimates ols_result with
          | Some [ est ] -> Printf.printf "%-28s %16.0f\n" name est
          | _ -> Printf.printf "%-28s %16s\n" name "n/a")
        results)
    tests

(* ------------------------------------------------------------------ *)
(* S1/S2: multicore scaling of the simulation engine                    *)
(* ------------------------------------------------------------------ *)

let widths = [ 1; 2; 4; 8 ]

let wall f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

(* Best of [reps] timed runs (first call outside the timer warms the
   pool and the code paths). *)
let time_best ~reps f =
  ignore (f ());
  let best = ref infinity in
  for _ = 1 to reps do
    let _, dt = wall f in
    if dt < !best then best := dt
  done;
  !best

type scaling_row = { workload : string; params : (string * string) list; times : (int * float) list; identical : bool }

let scaling_degeneracy () =
  let n = 1024 and k = 5 in
  Printf.printf "\nS1: degeneracy reconstruction (T1/T2-style), n=%d, k=%d\n" n k;
  let g = Generators.random_k_degenerate (rng ()) n ~k in
  let p = Core.Degeneracy_protocol.reconstruct ~k () in
  let reference = Core.Simulator.local_phase ~domains:1 p g in
  let identical = ref true in
  let times =
    List.map
      (fun d ->
        let msgs = Core.Simulator.local_phase ~domains:d p g in
        if not (Array.for_all2 Core.Message.equal reference msgs) then identical := false;
        let out, t = Core.Simulator.run ~domains:d p g in
        if out <> Some g || t.Core.Simulator.message_bits <> (Core.Simulator.transcript_of_messages reference).Core.Simulator.message_bits
        then identical := false;
        let dt = time_best ~reps:3 (fun () -> Core.Simulator.run ~domains:d p g) in
        Printf.printf "  domains=%d  %8.1f ms\n%!" d (1000.0 *. dt);
        (d, dt))
      widths
  in
  let t1 = List.assoc 1 times in
  List.iter (fun (d, dt) -> if d > 1 then Printf.printf "  (x%d vs sequential: %.2fx)\n" d (t1 /. dt)) times;
  Printf.printf "  transcripts byte-identical across widths: %b\n" !identical;
  { workload = "degeneracy-reconstruction"; params = [ ("n", string_of_int n); ("k", string_of_int k) ]; times; identical = !identical }

let scaling_gadget_sweep () =
  let n = 64 in
  Printf.printf "\nS2: diameter-gadget O(n^2) sweep (Theorem 2), n=%d\n" n;
  let g = Generators.gnp (rng ()) n 0.3 in
  let pairs = ref [] in
  for s = n downto 1 do
    for t = n downto s + 1 do
      pairs := (s, t) :: !pairs
    done
  done;
  let pairs = Array.of_list !pairs in
  let sweep d =
    (* One pre-sized incremental builder per domain; verdicts land by
       pair index, so the vector is width-independent. *)
    Core.Parallel.map_array_ctx ~domains:d
      (fun () -> Core.Gadgets.Batch.diameter g)
      (fun batch (s, t) ->
        Distance.diameter_at_most (Core.Gadgets.Batch.instantiate batch ~s ~t) 3)
      pairs
  in
  let reference = sweep 1 in
  let identical = ref true in
  let times =
    List.map
      (fun d ->
        if sweep d <> reference then identical := false;
        let dt = time_best ~reps:3 (fun () -> sweep d) in
        Printf.printf "  domains=%d  %8.1f ms\n%!" d (1000.0 *. dt);
        (d, dt))
      widths
  in
  let t1 = List.assoc 1 times in
  List.iter (fun (d, dt) -> if d > 1 then Printf.printf "  (x%d vs sequential: %.2fx)\n" d (t1 /. dt)) times;
  (* Cross-check the incremental builder against the from-scratch gadget
     on a sample of pairs. *)
  let batch = Core.Gadgets.Batch.diameter g in
  Array.iteri
    (fun i (s, t) ->
      if i mod 97 = 0 && not (Graph.equal (Core.Gadgets.Batch.instantiate batch ~s ~t) (Core.Gadgets.diameter g s t))
      then identical := false)
    pairs;
  Printf.printf "  verdict vectors identical across widths: %b\n" !identical;
  { workload = "diameter-gadget-sweep"; params = [ ("n", string_of_int n); ("pairs", string_of_int (Array.length pairs)) ]; times; identical = !identical }

(* ------------------------------------------------------------------ *)
(* S3: streaming referees keep O(1) allocation per absorbed message     *)
(* ------------------------------------------------------------------ *)

type alloc_row = { referee_name : string; small_n : int; big_n : int; small_bytes : float; big_bytes : float }

(* Bytes allocated per [Protocol.feed] across a full n-message stream,
   measured with [Gc.allocated_bytes] deltas.  The state itself is
   allocated once at [Protocol.start]; what must not grow with [n] is
   the per-absorb cost. *)
let bytes_per_absorb referee ~n msgs ~check =
  let feed = ref (Core.Protocol.start referee ~n) in
  let before = Gc.allocated_bytes () in
  Array.iteri (fun i m -> feed := Core.Protocol.feed !feed ~id:(i + 1) m) msgs;
  let after = Gc.allocated_bytes () in
  check (Core.Protocol.finish !feed);
  (after -. before) /. float_of_int n

let forest_absorb_bytes n =
  let g = Generators.random_tree (rng ()) n in
  let msgs = Core.Simulator.local_phase Core.Forest_protocol.reconstruct g in
  bytes_per_absorb Core.Forest_protocol.reconstruct.Core.Protocol.referee ~n msgs
    ~check:(fun out ->
      match out with
      | Some h when Graph.equal g h -> ()
      | _ -> failwith "S3: forest referee failed to reconstruct after the timed feed")

let coalition_absorb_bytes n =
  let g = Generators.random_tree (rng ()) n in
  let parts = Core.Coalition.partition_by_ranges ~n ~parts:4 in
  let inbox = Array.make n Core.Message.empty in
  List.iter
    (fun members ->
      let view =
        { Core.Coalition.members; neighborhoods = List.map (fun v -> (v, Graph.neighbors g v)) members }
      in
      List.iter
        (fun (id, m) -> inbox.(id - 1) <- m)
        (Core.Connectivity_parts.decide.Core.Coalition.local ~n view))
    parts;
  bytes_per_absorb Core.Connectivity_parts.decide.Core.Coalition.referee ~n inbox
    ~check:(fun ok -> if not ok then failwith "S3: coalition referee rejected a connected tree")

let scaling_allocation () =
  Printf.printf "\nS3: streaming-referee allocation per absorb (Gc.allocated_bytes deltas)\n";
  let small_n = 512 and big_n = 4096 in
  let measure name per =
    ignore (per small_n);
    (* warm-up: one full stream outside the comparison *)
    let small_bytes = per small_n and big_bytes = per big_n in
    let ratio = big_bytes /. small_bytes in
    let ok = ratio < 2.0 && big_bytes < 2048.0 in
    Printf.printf "  %-24s n=%d: %7.1f B/absorb   n=%d: %7.1f B/absorb   ratio %.2f  %s\n"
      name small_n small_bytes big_n big_bytes ratio
      (if ok then "O(1) ok" else "NOT O(1)");
    if not ok then
      failwith (name ^ ": streaming referee allocates super-constant bytes per absorb");
    { referee_name = name; small_n; big_n; small_bytes; big_bytes }
  in
  let forest = measure "forest-reconstruct" forest_absorb_bytes in
  let coalition = measure "coalition-connectivity" coalition_absorb_bytes in
  [ forest; coalition ]

let write_scaling_json rows alloc_rows =
  let oc = open_out "BENCH_refnet.json" in
  let t1 row = List.assoc 1 row.times in
  Printf.fprintf oc "{\n";
  Printf.fprintf oc "  \"bench\": \"refnet-scaling\",\n";
  Printf.fprintf oc "  \"unix_time\": %.0f,\n" (Unix.time ());
  Printf.fprintf oc "  \"recommended_domains\": %d,\n" (Domain.recommended_domain_count ());
  Printf.fprintf oc "  \"default_pool_width\": %d,\n" (Core.Parallel.domain_count ());
  Printf.fprintf oc "  \"workloads\": [\n";
  List.iteri
    (fun i row ->
      Printf.fprintf oc "    {\n      \"name\": \"%s\",\n" row.workload;
      List.iter (fun (key, v) -> Printf.fprintf oc "      \"%s\": %s,\n" key v) row.params;
      Printf.fprintf oc "      \"identical_outputs\": %b,\n" row.identical;
      Printf.fprintf oc "      \"runs\": [\n";
      List.iteri
        (fun j (d, dt) ->
          Printf.fprintf oc "        {\"domains\": %d, \"seconds\": %.6f, \"speedup\": %.3f}%s\n" d dt
            (t1 row /. dt)
            (if j = List.length row.times - 1 then "" else ","))
        row.times;
      Printf.fprintf oc "      ]\n    }%s\n" (if i = List.length rows - 1 then "" else ","))
    rows;
  Printf.fprintf oc "  ],\n";
  Printf.fprintf oc "  \"streaming_alloc_bytes_per_absorb\": [\n";
  List.iteri
    (fun i a ->
      Printf.fprintf oc
        "    {\"referee\": \"%s\", \"n_small\": %d, \"bytes_small\": %.1f, \"n_big\": %d, \"bytes_big\": %.1f, \"ratio\": %.3f}%s\n"
        a.referee_name a.small_n a.small_bytes a.big_n a.big_bytes
        (a.big_bytes /. a.small_bytes)
        (if i = List.length alloc_rows - 1 then "" else ","))
    alloc_rows;
  Printf.fprintf oc "  ]\n}\n";
  close_out oc;
  Printf.printf "\nwrote BENCH_refnet.json\n"

let scaling () =
  section "S1-S3" "Multicore scaling and streaming-referee allocation";
  Printf.printf "(host reports %d recommended domain(s); speedups track physical cores)\n"
    (Domain.recommended_domain_count ());
  let s1 = scaling_degeneracy () in
  let s2 = scaling_gadget_sweep () in
  let s3 = scaling_allocation () in
  write_scaling_json [ s1; s2 ] s3

(* ------------------------------------------------------------------ *)
(* F-bench: fault campaign — hardening overhead and crash degradation  *)
(* ------------------------------------------------------------------ *)

type fault_overhead_row = {
  fo_name : string;
  fo_n : int;
  fo_plain_ns : float;
  fo_hardened_ns : float;
}

type fault_degrade_row = {
  fd_rate : float;
  fd_hits : int;
  fd_outcome : string;
  fd_determined : int;
}

(* Seconds for one full feed of [msgs] into a fresh referee, best of 5. *)
let feed_time referee ~n msgs =
  time_best ~reps:5 (fun () ->
      let feed = ref (Core.Protocol.start referee ~n) in
      Array.iteri (fun i m -> feed := Core.Protocol.feed !feed ~id:(i + 1) m) msgs;
      Core.Protocol.finish !feed)

let coalition_inbox (p : 'a Core.Coalition.t) g ~parts =
  let n = Graph.order g in
  let parts = Core.Coalition.partition_by_ranges ~n ~parts in
  let inbox = Array.make n Core.Message.empty in
  List.iter
    (fun members ->
      let view =
        { Core.Coalition.members; neighborhoods = List.map (fun v -> (v, Graph.neighbors g v)) members }
      in
      List.iter (fun (id, m) -> inbox.(id - 1) <- m) (p.Core.Coalition.local ~n view))
    parts;
  inbox

let faults_overhead () =
  Printf.printf "\nF1: hardened-vs-plain referee absorb cost (clean channel, best of 5)\n";
  let row name n plain_t hardened_t =
    let per t = 1e9 *. t /. float_of_int n in
    Printf.printf "  %-24s n=%d  plain %7.1f ns/absorb   hardened %7.1f ns/absorb   x%.2f\n"
      name n (per plain_t) (per hardened_t) (hardened_t /. plain_t);
    { fo_name = name; fo_n = n; fo_plain_ns = per plain_t; fo_hardened_ns = per hardened_t }
  in
  (* Forest reconstruction over a random tree. *)
  let n = 2048 in
  let g = Generators.random_tree (rng ()) n in
  let plain = Core.Forest_protocol.reconstruct in
  let hardened = Core.Forest_protocol.hardened in
  let plain_msgs = Core.Simulator.local_phase plain g in
  let hard_msgs = Core.Simulator.local_phase hardened g in
  (match fst (Core.Simulator.run_faulty hardened g) with
  | Core.Verdict.Decided (Some h) when Graph.equal g h -> ()
  | _ -> failwith "F1: hardened forest referee not Decided on a clean channel");
  let forest =
    row "forest-reconstruct" n
      (feed_time plain.Core.Protocol.referee ~n plain_msgs)
      (feed_time hardened.Core.Protocol.referee ~n hard_msgs)
  in
  (* Coalition connectivity over the same tree, 4 coalitions. *)
  let cplain = Core.Connectivity_parts.decide in
  let chard = Core.Connectivity_parts.hardened in
  let cplain_inbox = coalition_inbox cplain g ~parts:4 in
  let chard_inbox = coalition_inbox chard g ~parts:4 in
  (match
     fst
       (Core.Coalition.run_faulty chard g
          ~parts:(Core.Coalition.partition_by_ranges ~n ~parts:4))
   with
  | Core.Verdict.Decided true -> ()
  | _ -> failwith "F1: hardened coalition referee not Decided on a clean channel");
  let coalition =
    row "coalition-connectivity" n
      (feed_time cplain.Core.Coalition.referee ~n cplain_inbox)
      (feed_time chard.Core.Coalition.referee ~n chard_inbox)
  in
  [ forest; coalition ]

let faults_degradation () =
  let n = 512 in
  Printf.printf
    "\nF2: forest reconstruction under crash faults (n=%d tree, seed-driven plans)\n" n;
  let g = Generators.random_tree (rng ()) n in
  List.map
    (fun rate ->
      let faults = Core.Faults.random ~seed:11 ~n ~crash:rate () in
      let verdict, t = Core.Simulator.run_faulty ~faults Core.Forest_protocol.hardened g in
      let hits = List.length t.Core.Simulator.faulted_ids in
      let outcome, determined =
        match verdict with
        | Core.Verdict.Decided (Some h) when Graph.equal g h -> ("decided", n)
        | Core.Verdict.Decided _ -> failwith "F2: wrong Decided under crash faults"
        | Core.Verdict.Degraded (Some h, report) ->
          (* Every surviving edge must be a true edge of g. *)
          List.iter
            (fun (u, v) ->
              if not (Graph.has_edge g u v) then failwith "F2: Degraded invented an edge")
            (Graph.edges h);
          ("degraded", n - List.length report.Core.Verdict.undetermined)
        | Core.Verdict.Degraded (None, report) ->
          ("degraded", n - List.length report.Core.Verdict.undetermined)
        | Core.Verdict.Inconclusive _ -> ("inconclusive", 0)
      in
      Printf.printf "  crash=%.2f  hits=%3d  %-12s determined %d/%d nodes\n" rate hits
        outcome determined n;
      { fd_rate = rate; fd_hits = hits; fd_outcome = outcome; fd_determined = determined })
    [ 0.0; 0.05; 0.1; 0.2; 0.4 ]

let write_faults_json overhead sweep =
  let oc = open_out "BENCH_refnet.json" in
  Printf.fprintf oc "{\n";
  Printf.fprintf oc "  \"bench\": \"refnet-faults\",\n";
  Printf.fprintf oc "  \"unix_time\": %.0f,\n" (Unix.time ());
  Printf.fprintf oc "  \"hardening_overhead_ns_per_absorb\": [\n";
  List.iteri
    (fun i r ->
      Printf.fprintf oc
        "    {\"protocol\": \"%s\", \"n\": %d, \"plain_ns\": %.1f, \"hardened_ns\": %.1f, \"ratio\": %.3f}%s\n"
        r.fo_name r.fo_n r.fo_plain_ns r.fo_hardened_ns
        (r.fo_hardened_ns /. r.fo_plain_ns)
        (if i = List.length overhead - 1 then "" else ","))
    overhead;
  Printf.fprintf oc "  ],\n";
  Printf.fprintf oc "  \"crash_degradation_forest_n512\": [\n";
  List.iteri
    (fun i r ->
      Printf.fprintf oc
        "    {\"crash_rate\": %.2f, \"faults_hit\": %d, \"outcome\": \"%s\", \"determined_nodes\": %d}%s\n"
        r.fd_rate r.fd_hits r.fd_outcome r.fd_determined
        (if i = List.length sweep - 1 then "" else ","))
    sweep;
  Printf.fprintf oc "  ]\n}\n";
  close_out oc;
  Printf.printf "\nwrote BENCH_refnet.json\n"

let faults () =
  section "F1-F2" "Fault campaign: hardening overhead and detect-or-degrade sweep";
  let overhead = faults_overhead () in
  let sweep = faults_degradation () in
  write_faults_json overhead sweep

(* ------------------------------------------------------------------ *)
(* M1: metrics-overhead microbench                                      *)
(* ------------------------------------------------------------------ *)

type metrics_row = {
  mr_name : string;
  mr_n : int;
  mr_plain_ns : float;  (** ns per run, no registry (the default fast path) *)
  mr_null_ns : float;  (** ns per run with an explicit Trace.null sink *)
  mr_live_ns : float;  (** ns per run with a live registry recording *)
  mr_overhead : float;  (** min over rounds of per-round live/plain *)
  mr_null_ratio : float;  (** same for null/plain — the noise control, ~1.0 *)
  mr_alloc_delta : float;  (** bytes per run: explicit-null minus plain *)
}

let alloc_per_run ~reps f =
  ignore (f ());
  let before = Gc.allocated_bytes () in
  for _ = 1 to reps do
    ignore (f ())
  done;
  (Gc.allocated_bytes () -. before) /. float_of_int reps

let metrics_workload name n (plain : ?trace:Core.Trace.sink -> unit -> unit) live =
  let per t = 1e9 *. t /. float_of_int n in
  let null = fun () -> plain ~trace:Core.Trace.null () in
  let plain = fun () -> plain ?trace:None () in
  (* The host is noisy (shared cores, frequency drift), so absolute
     best-of times across variants are unreliable: plain and null are
     the same code path yet drift apart by several percent when timed
     in separate blocks.  Instead, each round times all three variants
     back-to-back and the overhead estimate is the {e median} of the
     per-round ratios live/plain — drift within a round hits both sides
     of a ratio, and the median discards the rounds a noise spike hit
     only one side of. *)
  ignore (plain ());
  ignore (null ());
  ignore (live ());
  let rounds = 15 in
  let plain_t = ref infinity and null_t = ref infinity and live_t = ref infinity in
  let null_ratios = Array.make rounds 0. and live_ratios = Array.make rounds 0. in
  for round = 0 to rounds - 1 do
    let _, pt = wall plain in
    let _, nt = wall null in
    let _, lt = wall live in
    if pt < !plain_t then plain_t := pt;
    if nt < !null_t then null_t := nt;
    if lt < !live_t then live_t := lt;
    null_ratios.(round) <- nt /. pt;
    live_ratios.(round) <- lt /. pt
  done;
  let median a =
    let a = Array.copy a in
    Array.sort compare a;
    a.(Array.length a / 2)
  in
  let null_ratio = ref (median null_ratios) and live_ratio = ref (median live_ratios) in
  let plain_t = !plain_t and null_t = !null_t and live_t = !live_t in
  let reps = 20 in
  (* An unobserved run must not even allocate differently: passing the
     Null sink explicitly takes the same branch as passing nothing. *)
  let alloc_delta = alloc_per_run ~reps null -. alloc_per_run ~reps plain in
  let overhead = !live_ratio in
  Printf.printf
    "  %-24s n=%d  plain %7.1f ns/node   null %7.1f ns/node   live %7.1f ns/node   overhead %.3fx (null control %.3fx)  null-alloc-delta %+.1f B\n"
    name n (per plain_t) (per null_t) (per live_t) overhead !null_ratio alloc_delta;
  if overhead > 1.05 then
    failwith (name ^ ": live metrics overhead exceeds the 5% budget");
  if Float.abs alloc_delta > 64.0 then
    failwith (name ^ ": the Null sink is not allocation-free");
  {
    mr_name = name;
    mr_n = n;
    mr_plain_ns = per plain_t;
    mr_null_ns = per null_t;
    mr_live_ns = per live_t;
    mr_overhead = overhead;
    mr_null_ratio = !null_ratio;
    mr_alloc_delta = alloc_delta;
  }

let metrics_overhead () =
  Printf.printf
    "\nM1: per-run cost of observability (best of 5; live = registry recording\n\
    \    every series Simulator documents, sampled absorb latency included)\n";
  let r = rng () in
  (* Forest reconstruction: cheap local phase, stream-dominated — the
     worst case for per-absorb instrumentation. *)
  let n = 4096 in
  let tree = Generators.random_tree r n in
  let forest =
    metrics_workload "forest-reconstruct" n
      (fun ?trace () -> ignore (Core.Simulator.run ~domains:1 ?trace Core.Forest_protocol.reconstruct tree))
      (fun () ->
        let m = Core.Metrics.create () in
        ignore (Core.Simulator.run ~domains:1 ~metrics:m Core.Forest_protocol.reconstruct tree))
  in
  (* Degeneracy reconstruction: encode/decode-dominated — the typical
     case, where instrumentation should disappear in the noise. *)
  let n = 512 and k = 3 in
  let g = Generators.random_k_degenerate r n ~k in
  let p = Core.Degeneracy_protocol.reconstruct ~k () in
  let degeneracy =
    metrics_workload "degeneracy-3-reconstruct" n
      (fun ?trace () -> ignore (Core.Simulator.run ~domains:1 ?trace p g))
      (fun () ->
        let m = Core.Metrics.create () in
        ignore (Core.Simulator.run ~domains:1 ~metrics:m p g))
  in
  [ forest; degeneracy ]

let write_metrics_json rows =
  let oc = open_out "BENCH_refnet.json" in
  Printf.fprintf oc "{\n";
  Printf.fprintf oc "  \"bench\": \"refnet-metrics\",\n";
  Printf.fprintf oc "  \"unix_time\": %.0f,\n" (Unix.time ());
  Printf.fprintf oc "  \"overhead_budget\": 1.05,\n";
  Printf.fprintf oc "  \"workloads\": [\n";
  List.iteri
    (fun i r ->
      Printf.fprintf oc
        "    {\"name\": \"%s\", \"n\": %d, \"plain_ns_per_node\": %.1f, \"null_ns_per_node\": %.1f, \"live_ns_per_node\": %.1f, \"live_overhead\": %.3f, \"null_control_ratio\": %.3f, \"null_alloc_delta_bytes\": %.1f}%s\n"
        r.mr_name r.mr_n r.mr_plain_ns r.mr_null_ns r.mr_live_ns r.mr_overhead r.mr_null_ratio
        r.mr_alloc_delta
        (if i = List.length rows - 1 then "" else ","))
    rows;
  Printf.fprintf oc "  ]\n}\n";
  close_out oc;
  Printf.printf "\nwrote BENCH_refnet.json\n"

let metrics_bench () =
  section "M1" "Metrics overhead: unobserved runs pay nothing, live stays under 5%";
  write_metrics_json (metrics_overhead ())

(* ------------------------------------------------------------------ *)
(* G1/G2: Graph_source campaign — backend equivalence, then the        *)
(* million-node frontier run                                           *)
(* ------------------------------------------------------------------ *)

type gs_equiv_row = { ge_family : string; ge_n : int; ge_identical : bool }

type gs_scale_row = {
  gs_n : int;
  gs_backend : string;
  gs_chunk : int option;
  gs_seconds : float;
  gs_ns_per_node : float;
  gs_alloc_bytes_per_node : float;
  gs_top_heap_bytes : int;  (** absolute process peak after the run *)
  gs_max_bits : int;
  gs_matches_implicit : bool;
      (** twin transcript bit-identical to the implicit run at this n *)
}

(* The whole-process high-water mark: the one number the incidence
   matrix cannot hide behind (at n = 10^6 it alone would be ~125 GB). *)
let top_heap_bytes () = 8 * (Gc.stat ()).Gc.top_heap_words

let gs_same (o1, (t1 : Core.Simulator.transcript)) (o2, (t2 : Core.Simulator.transcript)) =
  o1 = o2 && t1.Core.Simulator.message_bits = t2.Core.Simulator.message_bits

let graphsource_equivalence () =
  Printf.printf
    "\nG1: backend equivalence — forest recognition transcripts must be bit-identical\n\
    \    on materialized / CSR / implicit, at every chunk size and pool width\n";
  let p = Core.Forest_protocol.recognize in
  List.map
    (fun spec ->
      let imp = Implicit.parse spec in
      let g = Implicit.materialize imp in
      let n = Graph.order g in
      let reference = Core.Simulator.run p g in
      let identical = ref true in
      let check run = if not (gs_same reference (run ())) then identical := false in
      List.iter
        (fun (_, src) ->
          check (fun () -> Core.Simulator.run_source p src);
          List.iter
            (fun chunk -> check (fun () -> Core.Simulator.run_source ~chunk p src))
            [ 1; 7; 64; n ];
          check (fun () -> Core.Simulator.run_source ~domains:4 p src))
        [
          ("materialized", Graph_source.of_graph g);
          ("csr", Graph_source.of_csr (Csr.of_graph g));
          ("implicit", Graph_source.of_implicit imp);
        ];
      Printf.printf "  %-22s n=%4d  transcripts identical: %b\n" spec n !identical;
      if not !identical then failwith ("graphsource: backend divergence on " ^ spec);
      { ge_family = spec; ge_n = n; ge_identical = !identical })
    [
      "path:512"; "cycle:512"; "star:512"; "grid:16x32"; "hypercube:9";
      "regular:512:4:7"; "degenerate:512:3:5";
    ]

(* Peak-heap budget for the n = 10^6 implicit run: the referee tables
   (2 x 8 MB), the transcript (8 MB), the chunk of in-flight messages
   and GC slack — far under the 125 GB incidence matrix or even the
   ~60 MB full message vector an unchunked schedule would hold live. *)
let gs_heap_budget = 256 * 1024 * 1024

let graphsource_scaling () =
  Printf.printf
    "\nG2: forest recognition on implicit paths, chunked referee feed (chunk = 65536)\n";
  let p = Core.Forest_protocol.recognize in
  let chunk = 65536 in
  let rows = ref [] in
  let timed ~n ~backend ~chunk ~reps run =
    Gc.compact ();
    let a0 = Gc.allocated_bytes () in
    let (ok, t), dt = wall run in
    let alloc = (Gc.allocated_bytes () -. a0) /. float_of_int n in
    let dt = ref dt in
    for _ = 2 to reps do
      let _, d = wall run in
      if d < !dt then dt := d
    done;
    if not ok then failwith "graphsource: a path was not recognized as a forest";
    ( t,
      {
        gs_n = n;
        gs_backend = backend;
        gs_chunk = chunk;
        gs_seconds = !dt;
        gs_ns_per_node = 1e9 *. !dt /. float_of_int n;
        gs_alloc_bytes_per_node = alloc;
        gs_top_heap_bytes = top_heap_bytes ();
        gs_max_bits = t.Core.Simulator.max_bits;
        gs_matches_implicit = true;
      } )
  in
  let report r =
    Printf.printf
      "  n=%8d  %-13s %s  %8.1f ns/node  %7.1f B/node alloc  top-heap %5.1f MB  twin-identical %b\n"
      r.gs_n r.gs_backend
      (match r.gs_chunk with Some c -> Printf.sprintf "chunk=%-6d" c | None -> "unchunked   ")
      r.gs_ns_per_node r.gs_alloc_bytes_per_node
      (float_of_int r.gs_top_heap_bytes /. 1048576.0)
      r.gs_matches_implicit;
    rows := r :: !rows
  in
  List.iter
    (fun n ->
      let reps = if n >= 1_000_000 then 1 else 3 in
      let imp = Implicit.parse (Printf.sprintf "path:%d" n) in
      let src = Graph_source.of_implicit imp in
      let t_imp, row =
        timed ~n ~backend:"implicit:path" ~chunk:(Some chunk) ~reps (fun () ->
            Core.Simulator.run_source ~chunk p src)
      in
      report row;
      let twin backend mk =
        let s = mk () in
        let t2, row =
          timed ~n ~backend ~chunk:None ~reps (fun () -> Core.Simulator.run_source p s)
        in
        let matches = t2.Core.Simulator.message_bits = t_imp.Core.Simulator.message_bits in
        report { row with gs_matches_implicit = matches };
        if not matches then
          failwith (Printf.sprintf "graphsource: %s transcript diverges at n=%d" backend n)
      in
      (* CSR holds 2m+n+1 words — fine well past 10^5; the incidence
         matrix is n^2 bits, so the materialized twin stops at 10^4. *)
      if n <= 100_000 then twin "csr" (fun () -> Graph_source.of_csr (Graph_source.to_csr src));
      if n <= 10_000 then
        twin "materialized" (fun () -> Graph_source.of_graph (Graph_source.materialize src)))
    [ 1_000; 10_000; 100_000; 1_000_000 ];
  let rows = List.rev !rows in
  let peak = top_heap_bytes () in
  Printf.printf "  peak heap across the campaign: %.1f MB (budget %d MB)  %s\n"
    (float_of_int peak /. 1048576.0)
    (gs_heap_budget / 1048576)
    (if peak < gs_heap_budget then "O(frontier) ok" else "OVER BUDGET");
  if peak >= gs_heap_budget then
    failwith "graphsource: million-node campaign exceeded the peak-heap budget";
  (rows, peak)

let write_graphsource_json equiv rows peak =
  let oc = open_out "BENCH_refnet.json" in
  Printf.fprintf oc "{\n";
  Printf.fprintf oc "  \"bench\": \"refnet-graphsource\",\n";
  Printf.fprintf oc "  \"unix_time\": %.0f,\n" (Unix.time ());
  Printf.fprintf oc "  \"equivalence\": [\n";
  List.iteri
    (fun i r ->
      Printf.fprintf oc "    {\"family\": \"%s\", \"n\": %d, \"identical_transcripts\": %b}%s\n"
        r.ge_family r.ge_n r.ge_identical
        (if i = List.length equiv - 1 then "" else ","))
    equiv;
  Printf.fprintf oc "  ],\n";
  Printf.fprintf oc "  \"forest_recognition_scaling\": [\n";
  List.iteri
    (fun i r ->
      Printf.fprintf oc
        "    {\"n\": %d, \"backend\": \"%s\", \"chunk\": %s, \"seconds\": %.6f, \
         \"ns_per_node\": %.1f, \"alloc_bytes_per_node\": %.1f, \"top_heap_bytes\": %d, \
         \"max_bits\": %d, \"transcript_matches_implicit\": %b}%s\n"
        r.gs_n r.gs_backend
        (match r.gs_chunk with Some c -> string_of_int c | None -> "null")
        r.gs_seconds r.gs_ns_per_node r.gs_alloc_bytes_per_node r.gs_top_heap_bytes r.gs_max_bits
        r.gs_matches_implicit
        (if i = List.length rows - 1 then "" else ","))
    rows;
  Printf.fprintf oc "  ],\n";
  Printf.fprintf oc "  \"peak_heap_bytes\": %d,\n" peak;
  Printf.fprintf oc "  \"peak_heap_budget_bytes\": %d\n" gs_heap_budget;
  Printf.fprintf oc "}\n";
  close_out oc;
  Printf.printf "\nwrote BENCH_refnet.json\n"

let graphsource () =
  section "G1-G2" "Graph_source: backend equivalence and the million-node frontier run";
  let equiv = graphsource_equivalence () in
  let rows, peak = graphsource_scaling () in
  write_graphsource_json equiv rows peak

(* ------------------------------------------------------------------ *)
(* B1-B3: broadcast congested clique — rounds vs bits                   *)
(* ------------------------------------------------------------------ *)

(* The paper's one-round model needs Theta(n / log n)-bit messages for
   connectivity (Theorem 6 regime); the BCC campaign measures the
   escape route the closing question points at: a constant number of
   rounds at c * id_bits n bits per round decides it outright.  Every
   verdict is checked against the materialized oracle. *)

type bcc_row = {
  bc_family : string;
  bc_n : int;
  bc_bandwidth : int;
  bc_rounds_budget : int;
  bc_rounds_used : int;
  bc_bits_limit : int;
  bc_max_bits : int;
  bc_total_bits : int;
  bc_connected : bool;
  bc_ok : bool;
}

(* The deciding round: the last one that carried uplink bits — every
   later round is free-wheeling after the referee's resolved flag. *)
let bcc_rounds_used (t : Core.Bcc.transcript) =
  let last = ref 1 in
  Array.iteri (fun i b -> if b > 0 then last := i + 1) t.Core.Bcc.per_round_total_bits;
  !last

let bcc_sweep () =
  Printf.printf
    "\nB1: connectivity rounds-vs-bits sweep — implicit families x n x bandwidth c,\n\
    \    budget c * id_bits n per message, verdicts checked against the oracle\n\n";
  Printf.printf "  %-14s %6s %3s %7s %6s %10s %9s %11s %3s\n" "family" "n" "c" "budget"
    "rounds" "used" "max-bits" "total-bits" "ok";
  let rows = ref [] in
  List.iter
    (fun spec ->
      List.iter
        (fun n ->
          let fam = Implicit.parse_family spec n in
          let src = Graph_source.of_implicit fam in
          let oracle = Connectivity.is_connected (Implicit.materialize fam) in
          let max_degree = ref 0 in
          for v = 1 to n do
            max_degree := max !max_degree (Graph_source.degree src v)
          done;
          List.iter
            (fun bandwidth ->
              let rounds = Core.Bcc_connectivity.rounds_for ~bandwidth ~max_degree:!max_degree in
              let verdict, t =
                Core.Bcc.run_source ~chunk:4096
                  (Core.Bcc_connectivity.protocol ~rounds ~bandwidth ())
                  src
              in
              let ok = verdict = Some oracle in
              let row =
                {
                  bc_family = spec;
                  bc_n = n;
                  bc_bandwidth = bandwidth;
                  bc_rounds_budget = rounds;
                  bc_rounds_used = bcc_rounds_used t;
                  bc_bits_limit = t.Core.Bcc.bits_limit;
                  bc_max_bits = t.Core.Bcc.max_bits;
                  bc_total_bits = t.Core.Bcc.total_bits;
                  bc_connected = oracle;
                  bc_ok = ok;
                }
              in
              Printf.printf "  %-14s %6d %3d %7d %6d %10d %9d %11d %3b\n" spec n bandwidth
                t.Core.Bcc.bits_limit rounds row.bc_rounds_used row.bc_max_bits row.bc_total_bits
                ok;
              if not ok then
                failwith
                  (Printf.sprintf "bcc: wrong verdict on %s n=%d bandwidth=%d" spec n bandwidth);
              rows := row :: !rows)
            [ 1; 2; 4; 8 ])
        [ 512; 2048; 8192 ])
    [ "path"; "cycle"; "star"; "grid"; "hypercube"; "regular:4:7"; "degenerate:3:5" ];
  List.rev !rows

(* One-round anchors for the same decision problem: the deliberately
   non-frugal full-information protocol (n-bit rows) and the
   O(log^3 n)-bit sketch — the BCC rows above sit far under both. *)
let bcc_anchors () =
  Printf.printf
    "\nB2: one-round anchors — the message sizes the multi-round budget competes with\n\n";
  Printf.printf "  %-22s %6s %10s\n" "protocol" "n" "max-bits";
  let rows = ref [] in
  List.iter
    (fun n ->
      let g = Implicit.materialize (Implicit.parse_family "cycle" n) in
      let anchor label out_bits =
        Printf.printf "  %-22s %6d %10d\n" label n out_bits;
        rows := (label, n, out_bits) :: !rows
      in
      let h, t_full = Core.Simulator.run Core.Bounded_degree.full_information g in
      if not (Connectivity.is_connected h) then failwith "bcc: full-information oracle diverged";
      anchor "full-information" t_full.Core.Simulator.max_bits;
      (* The sketch is one-sided Monte Carlo — its verdict may miss; it
         anchors message size only. *)
      let _, t_sketch = Core.Simulator.run (Core.Sketch_connectivity.protocol ~seed:7 ()) g in
      anchor "sketch-connectivity" t_sketch.Core.Simulator.max_bits;
      let verdict, t_bcc =
        Core.Bcc.run (Core.Bcc_connectivity.protocol ~rounds:3 ~bandwidth:2 ()) g
      in
      if verdict <> Some true then failwith "bcc: connectivity missed a connected cycle";
      anchor "bcc-connectivity-2" t_bcc.Core.Bcc.max_bits)
    [ 512; 2048; 8192 ];
  List.rev !rows

(* Transcript equivalence of the engine itself: same labelled graph
   through all three backends, chunked and unchunked, one and four
   domains — byte-for-byte equal transcripts. *)
let bcc_equivalence () =
  Printf.printf
    "\nB3: engine equivalence — connectivity transcripts across backends, chunks, widths\n\n";
  List.map
    (fun spec ->
      let imp = Implicit.parse spec in
      let g = Implicit.materialize imp in
      let n = Graph.order g in
      let p = Core.Bcc_connectivity.protocol ~rounds:4 ~bandwidth:2 () in
      let reference = Core.Bcc.run p g in
      let identical = ref true in
      let check run = if run () <> reference then identical := false in
      List.iter
        (fun src ->
          check (fun () -> Core.Bcc.run_source p src);
          List.iter (fun chunk -> check (fun () -> Core.Bcc.run_source ~chunk p src)) [ 1; 7; n ];
          check (fun () -> Core.Bcc.run_source ~domains:4 p src))
        [
          Graph_source.of_graph g;
          Graph_source.of_csr (Csr.of_graph g);
          Graph_source.of_implicit imp;
        ];
      Printf.printf "  %-22s n=%4d  transcripts identical: %b\n" spec n !identical;
      if not !identical then failwith ("bcc: backend divergence on " ^ spec);
      (spec, n, !identical))
    [ "path:512"; "cycle:512"; "grid:16x32"; "regular:512:4:7"; "degenerate:512:3:5" ]

let write_bcc_json sweep anchors equiv =
  let oc = open_out "BENCH_refnet.json" in
  Printf.fprintf oc "{\n";
  Printf.fprintf oc "  \"bench\": \"refnet-bcc\",\n";
  Printf.fprintf oc "  \"unix_time\": %.0f,\n" (Unix.time ());
  Printf.fprintf oc "  \"connectivity_sweep\": [\n";
  List.iteri
    (fun i r ->
      Printf.fprintf oc
        "    {\"family\": \"%s\", \"n\": %d, \"bandwidth\": %d, \"bits_per_round\": %d, \
         \"rounds_budget\": %d, \"rounds_used\": %d, \"max_bits\": %d, \"total_bits\": %d, \
         \"connected\": %b, \"verdict_ok\": %b}%s\n"
        r.bc_family r.bc_n r.bc_bandwidth r.bc_bits_limit r.bc_rounds_budget r.bc_rounds_used
        r.bc_max_bits r.bc_total_bits r.bc_connected r.bc_ok
        (if i = List.length sweep - 1 then "" else ","))
    sweep;
  Printf.fprintf oc "  ],\n";
  Printf.fprintf oc "  \"one_round_anchors\": [\n";
  List.iteri
    (fun i (label, n, bits) ->
      Printf.fprintf oc "    {\"protocol\": \"%s\", \"n\": %d, \"max_bits\": %d}%s\n" label n bits
        (if i = List.length anchors - 1 then "" else ","))
    anchors;
  Printf.fprintf oc "  ],\n";
  Printf.fprintf oc "  \"equivalence\": [\n";
  List.iteri
    (fun i (spec, n, same) ->
      Printf.fprintf oc "    {\"family\": \"%s\", \"n\": %d, \"identical_transcripts\": %b}%s\n"
        spec n same
        (if i = List.length equiv - 1 then "" else ","))
    equiv;
  Printf.fprintf oc "  ]\n";
  Printf.fprintf oc "}\n";
  close_out oc;
  Printf.printf "\nwrote BENCH_refnet.json\n"

let bcc_bench () =
  section "B1-B3" "Broadcast congested clique: rounds-vs-bits sweep and engine equivalence";
  let sweep = bcc_sweep () in
  let anchors = bcc_anchors () in
  let equiv = bcc_equivalence () in
  write_bcc_json sweep anchors equiv

let tables () =
  experiment_f1 ();
  experiment_f2 ();
  experiment_t1 ();
  experiment_t2 ();
  experiment_t3 ();
  experiment_reductions ();
  experiment_t7 ();
  experiment_t9 ();
  experiment_t10 ();
  experiment_t11 ();
  experiment_t12 ();
  experiment_t13 ();
  experiment_t14 ();
  experiment_t15 ();
  experiment_t16 ();
  experiment_t17 ();
  experiment_t18 ();
  experiment_t19 ()

(* ---------- D1: the serve daemon under load and chaos ---------- *)

(* The whole campaign runs through the in-process selftest: the same
   byte path a socket client exercises, minus the kernel, so rates are
   engine rates, not loopback rates.  Each run re-checks the robustness
   gates (no wrong Decided, no quarantine escapes, no unterminated
   sessions); a violated gate aborts the bench loudly. *)
let serve_run ~sessions ~faulty =
  let cfg =
    { Serve.Selftest.default_cfg with sessions; conns = 64; faulty }
  in
  let o = Serve.Selftest.run cfg in
  (match Serve.Selftest.passed o with
  | Ok () -> ()
  | Error e -> failwith (Printf.sprintf "D1: selftest gate violated: %s" e));
  o

let serve_clean () =
  Printf.printf "\n-- D1a: clean throughput (protocol=count, n=8) --\n%!";
  let o = serve_run ~sessions:20_000 ~faulty:0.0 in
  Printf.printf "  %d sessions in %.2fs  ->  %.0f sessions/s (all decided: %b)\n"
    o.Serve.Selftest.o_sessions o.Serve.Selftest.o_wall_s o.Serve.Selftest.o_rate
    (o.Serve.Selftest.o_decided = o.Serve.Selftest.o_sessions);
  o

let serve_chaos_sweep () =
  Printf.printf "\n-- D1b: chaos sweep (rising faulty fraction) --\n%!";
  List.map
    (fun faulty ->
      let o = serve_run ~sessions:8_000 ~faulty in
      Printf.printf
        "  faulty=%.2f  decided=%d degraded=%d inconclusive=%d aborted=%d  \
         quarantines=%d timeouts=%d+%d  %.0f/s\n%!"
        faulty o.Serve.Selftest.o_decided o.Serve.Selftest.o_degraded
        o.Serve.Selftest.o_inconclusive o.Serve.Selftest.o_aborted
        o.Serve.Selftest.o_quarantines o.Serve.Selftest.o_timeouts_idle
        o.Serve.Selftest.o_timeouts_deadline o.Serve.Selftest.o_rate;
      (faulty, o))
    [ 0.0; 0.05; 0.1; 0.2; 0.3 ]

let write_serve_json clean sweep =
  let oc = open_out "BENCH_refnet.json" in
  Printf.fprintf oc "{\n";
  Printf.fprintf oc "  \"bench\": \"refnet-serve\",\n";
  Printf.fprintf oc "  \"unix_time\": %.0f,\n" (Unix.time ());
  Printf.fprintf oc "  \"clean_throughput\": {\"protocol\": \"%s\", \"n\": %d, \"sessions\": %d, \"wall_s\": %.3f, \"sessions_per_s\": %.0f},\n"
    clean.Serve.Selftest.o_protocol clean.Serve.Selftest.o_n
    clean.Serve.Selftest.o_sessions clean.Serve.Selftest.o_wall_s
    clean.Serve.Selftest.o_rate;
  Printf.fprintf oc "  \"chaos_sweep\": [\n";
  List.iteri
    (fun i (faulty, o) ->
      Printf.fprintf oc
        "    {\"faulty\": %.2f, \"sessions\": %d, \"decided\": %d, \"degraded\": %d, \
         \"inconclusive\": %d, \"aborted\": %d, \"quarantines\": %d, \
         \"quarantine_escapes\": %d, \"timeouts_idle\": %d, \"timeouts_deadline\": %d, \
         \"wrong_decided\": %d, \"sessions_per_s\": %.0f}%s\n"
        faulty o.Serve.Selftest.o_sessions o.Serve.Selftest.o_decided
        o.Serve.Selftest.o_degraded o.Serve.Selftest.o_inconclusive
        o.Serve.Selftest.o_aborted o.Serve.Selftest.o_quarantines
        o.Serve.Selftest.o_escapes o.Serve.Selftest.o_timeouts_idle
        o.Serve.Selftest.o_timeouts_deadline o.Serve.Selftest.o_wrong_decided
        o.Serve.Selftest.o_rate
        (if i = List.length sweep - 1 then "" else ","))
    sweep;
  Printf.fprintf oc "  ]\n}\n";
  close_out oc;
  Printf.printf "\nwrote BENCH_refnet.json\n"

let serve_bench () =
  section "D1" "Referee daemon: session throughput and chaos degradation";
  let clean = serve_clean () in
  let sweep = serve_chaos_sweep () in
  write_serve_json clean sweep

(* ---------- D2: flight-recorder overhead ---------- *)

(* Rings on vs rings off under the same chaos mix, timed back-to-back
   per round.  The gate compares the best-of-rounds times: noise on a
   shared host only ever makes a run slower, so the minima are the two
   clean measurements.  The recorder must cost < 5% or operators will
   switch it off exactly when the evidence matters. *)
let flight_bench () =
  section "D2" "Flight recorder: ring cost under chaos must stay under 5%";
  let sessions = 16_000 and faulty = 0.2 in
  let cfg = { Serve.Selftest.default_cfg with sessions; conns = 64; faulty } in
  let fl = Core.Flight.create ~capacity:(1 lsl 16) () in
  let gate o =
    match Serve.Selftest.passed o with
    | Ok () -> o
    | Error e -> failwith ("D2: selftest gate violated: " ^ e)
  in
  let off () = gate (Serve.Selftest.run cfg) in
  let on () =
    Core.Flight.reset fl;
    gate (Serve.Selftest.run ~flight:fl cfg)
  in
  (* warm both variants before timing *)
  ignore (off ());
  ignore (on ());
  let rounds = 5 in
  let off_best = ref infinity and on_best = ref infinity in
  let last_on = ref None in
  for round = 0 to rounds - 1 do
    let o_off = off () in
    let o_on = on () in
    last_on := Some o_on;
    let t_off = o_off.Serve.Selftest.o_wall_s and t_on = o_on.Serve.Selftest.o_wall_s in
    if t_off < !off_best then off_best := t_off;
    if t_on < !on_best then on_best := t_on;
    Printf.printf "  round %d: off %.3fs  on %.3fs  ratio %.3f\n%!" (round + 1) t_off t_on
      (t_on /. t_off)
  done;
  let overhead = !on_best /. !off_best in
  let o_on = match !last_on with Some o -> o | None -> failwith "D2: no timed run" in
  let dump_bytes = String.length (Core.Flight.dump fl) in
  Printf.printf
    "  sessions=%d faulty=%.2f  best off %.3fs  on %.3fs  best-of overhead %.3fx  \
     recorded=%d dropped=%d dump=%d B\n"
    sessions faulty !off_best !on_best overhead o_on.Serve.Selftest.o_flight_recorded
    o_on.Serve.Selftest.o_flight_dropped dump_bytes;
  if overhead > 1.05 then failwith "D2: flight recorder overhead exceeds the 5% budget";
  let oc = open_out "BENCH_refnet.json" in
  Printf.fprintf oc "{\n";
  Printf.fprintf oc "  \"bench\": \"refnet-flight\",\n";
  Printf.fprintf oc "  \"unix_time\": %.0f,\n" (Unix.time ());
  Printf.fprintf oc "  \"overhead_budget\": 1.05,\n";
  Printf.fprintf oc "  \"sessions\": %d,\n" sessions;
  Printf.fprintf oc "  \"faulty\": %.2f,\n" faulty;
  Printf.fprintf oc "  \"off_best_s\": %.4f,\n" !off_best;
  Printf.fprintf oc "  \"on_best_s\": %.4f,\n" !on_best;
  Printf.fprintf oc "  \"best_of_overhead\": %.4f,\n" overhead;
  Printf.fprintf oc "  \"flight_recorded\": %d,\n" o_on.Serve.Selftest.o_flight_recorded;
  Printf.fprintf oc "  \"flight_dropped\": %d,\n" o_on.Serve.Selftest.o_flight_dropped;
  Printf.fprintf oc "  \"flight_findings\": %d,\n" o_on.Serve.Selftest.o_flight_findings;
  Printf.fprintf oc "  \"dump_bytes\": %d\n" dump_bytes;
  Printf.fprintf oc "}\n";
  close_out oc;
  Printf.printf "\nwrote BENCH_refnet.json\n"

let () =
  let mode = if Array.length Sys.argv > 1 then Sys.argv.(1) else "all" in
  (match mode with
  | "tables" -> tables ()
  | "timings" -> timing_benches ()
  | "scaling" -> scaling ()
  | "faults" -> faults ()
  | "metrics" -> metrics_bench ()
  | "graphsource" -> graphsource ()
  | "bcc" -> bcc_bench ()
  | "serve" -> serve_bench ()
  | "flight" -> flight_bench ()
  | _ ->
    tables ();
    timing_benches ();
    scaling ();
    faults ();
    metrics_bench ();
    graphsource ();
    bcc_bench ());
  Printf.printf "\n%s\nAll experiments completed.\n" line
