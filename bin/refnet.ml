(* refnet — command-line front end for the referee-model library.

   Subcommands:
     generate      emit a graph from a named family (edge list or graph6)
     reconstruct   run the degeneracy / forest protocol on a graph
     recognize     decide degeneracy <= k in one round
     gadget        build the Theorem 1/2/3 gadgets for a vertex pair
     count         Lemma 1 family counting and budgets
     sizes         message-size tables for the protocols
     stats         structural parameters of a graph
     search        exhaustive protocol-existence search at tiny n
     connectivity  coalition connectivity audit
     serve         always-on referee daemon (sessions over TCP/Unix sockets) *)

open Cmdliner
open Refnet_graph

(* ---------- shared converters and helpers ---------- *)

let read_graph path =
  let ic = open_in path in
  (* Close the channel even when reading or parsing raises. *)
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let len = in_channel_length ic in
      let s = really_input_string ic len in
      let s = String.trim s in
      if
        String.length s > 0
        && (s.[0] = '~' || not (String.contains s '\n'))
        && not (String.contains s ' ')
      then Gio.of_graph6 s
      else Gio.of_edge_list s)

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE" ~doc:"Write a JSONL execution trace to $(docv).")

(* Runs [f] with a JSONL sink on the given file, or the null sink.  The
   channel is closed on normal return; commands that [exit] inside [f]
   still get their buffers flushed by [Stdlib.exit] (and the sink itself
   flushes after every Referee_done — see trace.mli). *)
let with_trace path f =
  match path with
  | None -> f Core.Trace.null
  | Some file ->
    let oc = open_out file in
    Fun.protect ~finally:(fun () -> close_out_noerr oc) (fun () -> f (Core.Trace.jsonl oc))

let metrics_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics" ] ~docv:"FILE"
        ~doc:
          "Record a metrics snapshot of the run into $(docv): Prometheus text exposition if the \
           name ends in .prom, canonical JSON otherwise.")

let write_metrics file m =
  let snap = Core.Metrics.snapshot m in
  let data =
    if Filename.check_suffix file ".prom" then Core.Metrics.to_prometheus snap
    else Core.Metrics.to_json snap ^ "\n"
  in
  let oc = open_out file in
  Fun.protect ~finally:(fun () -> close_out_noerr oc) (fun () -> output_string oc data)

(* Combines the trace sink with an optional metrics registry.  Several
   subcommands [exit] with a verdict code from inside [f], which skips
   Fun.protect's finalizer — the at_exit hook makes sure the snapshot
   still lands on disk on those paths (exactly once). *)
let with_observability trace metrics_file f =
  match metrics_file with
  | None -> with_trace trace (fun sink -> f sink None)
  | Some file ->
    let m = Core.Metrics.create () in
    let written = ref false in
    let flush_metrics () =
      if not !written then begin
        written := true;
        write_metrics file m
      end
    in
    at_exit flush_metrics;
    Fun.protect ~finally:flush_metrics (fun () -> with_trace trace (fun sink -> f sink (Some m)))

let write_graph fmt g =
  match fmt with
  | `Edges -> print_string (Gio.to_edge_list g)
  | `Graph6 -> print_endline (Gio.to_graph6 g)
  | `Dot -> print_string (Gio.to_dot g)

let fmt_conv = Arg.enum [ ("edges", `Edges); ("graph6", `Graph6); ("dot", `Dot) ]

let fmt_arg =
  Arg.(value & opt fmt_conv `Edges & info [ "f"; "format" ] ~docv:"FMT" ~doc:"Output format: edges, graph6 or dot.")

let seed_arg =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"Random seed.")

let graph_file_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"GRAPH" ~doc:"Graph file (edge list or graph6).")

let k_arg =
  Arg.(value & opt int 3 & info [ "k" ] ~docv:"K" ~doc:"Degeneracy budget.")

let source_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "source" ] ~docv:"SRC"
        ~doc:
          "Graph backend: $(b,materialized), $(b,csr) (both wrap the GRAPH file), or \
           $(b,implicit:<family-spec>) — e.g. implicit:path:100000 or implicit:regular:1000:4:7 \
           — which needs no file at all.  Engine runs record the backend in their span and \
           metrics labels as a [src=...] decoration.")

(* Resolves [--source] against an optional graph file: [materialized]
   and [csr] wrap the file's graph, [implicit:...] stands alone.
   Without [--source], the file (when given) is the materialized
   backend. *)
let resolve_source source g =
  match (source, g) with
  | None, Some g -> Some (Graph_source.of_graph g)
  | None, None -> None
  | Some spec, g -> Some (Graph_source.parse ?graph:g spec)

(* ---------- generate ---------- *)

let family_conv =
  Arg.enum
    [
      ("path", `Path); ("cycle", `Cycle); ("complete", `Complete); ("star", `Star);
      ("wheel", `Wheel); ("grid", `Grid); ("torus", `Torus); ("hypercube", `Hypercube);
      ("petersen", `Petersen); ("tree", `Tree); ("forest", `Forest);
      ("k-tree", `Ktree); ("apollonian", `Apollonian); ("outerplanar", `Outerplanar);
      ("gnp", `Gnp); ("bipartite", `Bipartite); ("k-degenerate", `Kdeg);
    ]

let generate family n k p seed fmt =
  let rng = Random.State.make [| seed |] in
  let g =
    match family with
    | `Path -> Generators.path n
    | `Cycle -> Generators.cycle n
    | `Complete -> Generators.complete n
    | `Star -> Generators.star n
    | `Wheel -> Generators.wheel n
    | `Grid ->
      let side = int_of_float (sqrt (float_of_int n)) in
      Generators.grid side (max 1 ((n + side - 1) / side))
    | `Torus ->
      let side = max 3 (int_of_float (sqrt (float_of_int n))) in
      Generators.torus side side
    | `Hypercube ->
      let rec dim d = if 1 lsl d >= n then d else dim (d + 1) in
      Generators.hypercube (dim 0)
    | `Petersen -> Generators.petersen ()
    | `Tree -> Generators.random_tree rng n
    | `Forest -> Generators.random_forest rng n ~trees:(max 1 (n / 20))
    | `Ktree -> Generators.random_k_tree rng n ~k
    | `Apollonian -> Generators.random_apollonian rng n
    | `Outerplanar -> Generators.random_maximal_outerplanar rng n
    | `Gnp -> Generators.gnp rng n p
    | `Bipartite -> Generators.random_bipartite rng ~left:(n / 2) ~right:(n - (n / 2)) p
    | `Kdeg -> Generators.random_k_degenerate rng n ~k
  in
  write_graph fmt g

let generate_cmd =
  let family =
    Arg.(required & pos 0 (some family_conv) None & info [] ~docv:"FAMILY" ~doc:"Graph family.")
  in
  let n = Arg.(value & opt int 16 & info [ "n" ] ~docv:"N" ~doc:"Number of vertices.") in
  let p = Arg.(value & opt float 0.3 & info [ "p" ] ~docv:"P" ~doc:"Edge probability.") in
  Cmd.v
    (Cmd.info "generate" ~doc:"Generate a graph from a named family")
    Term.(const generate $ family $ n $ k_arg $ p $ seed_arg $ fmt_arg)

(* ---------- reconstruct ---------- *)

let reconstruct path k forest trace metrics fmt =
  let g = read_graph path in
  let n = Graph.order g in
  let run p =
    with_observability trace metrics (fun sink m -> Core.Simulator.run ~trace:sink ?metrics:m p g)
  in
  if forest then begin
    match run Core.Forest_protocol.reconstruct with
    | Some h, t ->
      Printf.eprintf "forest protocol: %d bits/node, exact=%b\n%!" t.Core.Simulator.max_bits
        (Graph.equal g h);
      write_graph fmt h
    | None, _ ->
      prerr_endline "forest protocol: rejected (graph has a cycle)";
      exit 1
  end
  else begin
    match run (Core.Degeneracy_protocol.reconstruct ~k ()) with
    | Some h, t ->
      Printf.eprintf "degeneracy-%d protocol: %d bits/node (bound %d), exact=%b\n%!" k
        t.Core.Simulator.max_bits
        (Core.Degeneracy_protocol.message_bits ~k n)
        (Graph.equal g h);
      write_graph fmt h
    | None, _ ->
      Printf.eprintf "degeneracy-%d protocol: rejected (degeneracy(G) = %d > %d)\n%!" k
        (Degeneracy.degeneracy g) k;
      exit 1
  end

let reconstruct_cmd =
  let forest =
    Arg.(value & flag & info [ "forest" ] ~doc:"Use the forest (Section III.A) protocol.")
  in
  Cmd.v
    (Cmd.info "reconstruct" ~doc:"Reconstruct a graph at the referee in one frugal round")
    Term.(const reconstruct $ graph_file_arg $ k_arg $ forest $ trace_arg $ metrics_arg $ fmt_arg)

(* ---------- recognize ---------- *)

let recognize path k generalized trace metrics =
  let g = read_graph path in
  let protocol =
    if generalized then Core.Generalized_degeneracy.recognize k
    else Core.Recognition.degeneracy_at_most k
  in
  let verdict, t =
    with_observability trace metrics (fun sink m ->
        Core.Simulator.run ~trace:sink ?metrics:m protocol g)
  in
  Printf.printf "%s degeneracy <= %d : %b   (%d bits/node; true %s = %d)\n"
    (if generalized then "generalized" else "plain")
    k verdict t.Core.Simulator.max_bits
    (if generalized then "generalized degeneracy" else "degeneracy")
    (if generalized then Degeneracy.generalized_degeneracy g else Degeneracy.degeneracy g);
  exit (if verdict then 0 else 1)

let recognize_cmd =
  let generalized =
    Arg.(value & flag & info [ "generalized" ] ~doc:"Use the generalized-degeneracy protocol.")
  in
  Cmd.v
    (Cmd.info "recognize" ~doc:"Decide degeneracy <= k in one round")
    Term.(const recognize $ graph_file_arg $ k_arg $ generalized $ trace_arg $ metrics_arg)

(* ---------- gadget ---------- *)

let gadget_kind_conv =
  Arg.enum [ ("square", `Square); ("diameter", `Diameter); ("triangle", `Triangle) ]

let gadget path kind s t fmt =
  let g = read_graph path in
  let g' =
    match kind with
    | `Square -> Core.Gadgets.square g s t
    | `Diameter -> Core.Gadgets.diameter g s t
    | `Triangle -> Core.Gadgets.triangle g s t
  in
  let verdict =
    match kind with
    | `Square -> Cycles.has_square g'
    | `Diameter -> Distance.diameter_at_most g' 3
    | `Triangle -> Cycles.has_triangle g'
  in
  Printf.eprintf "gadget property holds: %b   edge {%d,%d} present: %b\n%!" verdict s t
    (Graph.has_edge g s t);
  write_graph fmt g'

let gadget_cmd =
  let kind =
    Arg.(required & pos 1 (some gadget_kind_conv) None & info [] ~docv:"KIND"
           ~doc:"square, diameter or triangle.")
  in
  let s = Arg.(required & pos 2 (some int) None & info [] ~docv:"S" ~doc:"First vertex.") in
  let t = Arg.(required & pos 3 (some int) None & info [] ~docv:"T" ~doc:"Second vertex.") in
  Cmd.v
    (Cmd.info "gadget" ~doc:"Build the G'_{s,t} gadget of Theorems 1-3")
    Term.(const gadget $ graph_file_arg $ kind $ s $ t $ fmt_arg)

(* ---------- count ---------- *)

let count max_n c =
  Printf.printf "%4s %16s %16s %8s\n" "n" "log2 g(n)" "budget" "fits";
  print_endline "family: square-free (exhaustive enumeration)";
  for n = 1 to min max_n 7 do
    let lg = Core.Counting.log2_family_size Core.Counting.Square_free n in
    let b = Core.Counting.budget ~c n in
    Printf.printf "%4d %16.1f %16.1f %8s\n" n lg b (if lg <= b then "yes" else "NO")
  done;
  List.iter
    (fun (name, fam) ->
      match Core.Counting.crossover ~c fam ~max_n with
      | Some n -> Printf.printf "family %s: crossover at n = %d (c = %d)\n" name n c
      | None -> Printf.printf "family %s: no crossover up to n = %d\n" name max_n)
    [ ("all-graphs", Core.Counting.All_graphs); ("bipartite", Core.Counting.Bipartite_fixed_halves) ]

let count_cmd =
  let max_n = Arg.(value & opt int 256 & info [ "max-n" ] ~docv:"N" ~doc:"Search limit.") in
  let c = Arg.(value & opt int 4 & info [ "c" ] ~docv:"C" ~doc:"Frugality constant.") in
  Cmd.v
    (Cmd.info "count" ~doc:"Lemma 1 counting: family sizes vs the frugal budget")
    Term.(const count $ max_n $ c)

(* ---------- sizes ---------- *)

let sizes n graph source trace metrics =
  let g = Option.map read_graph graph in
  let src = resolve_source source g in
  let n = match src with Some s -> Graph_source.order s | None -> n in
  Printf.printf "message sizes at n = %d (id width %d bits):\n" n (Core.Bounds.id_bits n);
  Printf.printf "  forest protocol          : %4d bits\n" (Core.Bounds.forest_message_bits n);
  List.iter
    (fun k ->
      Printf.printf "  degeneracy protocol k=%-2d : %4d bits   generalized: %4d bits\n" k
        (Core.Bounds.degeneracy_message_bits ~k n)
        (Core.Bounds.generalized_message_bits ~k n))
    [ 1; 2; 3; 5; 8 ];
  List.iter
    (fun d ->
      Printf.printf "  bounded-degree (d=%-2d)    : %4d bits\n" d
        (Core.Bounded_degree.message_bits ~max_degree:d n))
    [ 2; 4; 8 ];
  (* With a concrete graph (file or implicit spec), confront the closed
     forms with measured transcripts (and exercise the trace sink on
     real runs). *)
  match src with
  | None -> ()
  | Some src ->
    with_observability trace metrics (fun sink m ->
        let run p = Core.Simulator.run_source ~trace:sink ?metrics:m p src in
        let is_forest, tf = run Core.Forest_protocol.recognize in
        Printf.printf "measured on %s (n = %d, m = %d, backend %s):\n"
          (match graph with Some path -> path | None -> Graph_source.describe src)
          n (Graph_source.size src) (Graph_source.backend src);
        Printf.printf "  forest protocol          : %4d bits/node (is forest: %b)\n"
          tf.Core.Simulator.max_bits is_forest;
        (* The true degeneracy needs the materialized graph; backend-only
           sources fall back to the recognition threshold k = 2. *)
        let k = match g with Some g -> max 1 (Degeneracy.degeneracy g) | None -> 2 in
        let ok, td = run (Core.Recognition.degeneracy_at_most k) in
        Printf.printf "  degeneracy protocol k=%-2d : %4d bits/node (accepted: %b)\n" k
          td.Core.Simulator.max_bits ok)

let sizes_cmd =
  let n = Arg.(value & opt int 1024 & info [ "n" ] ~docv:"N" ~doc:"Network size.") in
  let graph =
    Arg.(
      value
      & pos 0 (some file) None
      & info [] ~docv:"GRAPH"
          ~doc:"Optional graph file: also run the protocols and report measured sizes.")
  in
  Cmd.v
    (Cmd.info "sizes" ~doc:"Closed-form message-size tables")
    Term.(const sizes $ n $ graph $ source_arg $ trace_arg $ metrics_arg)

(* ---------- connectivity ---------- *)

let connectivity path parts trace metrics =
  let g = read_graph path in
  let n = Graph.order g in
  let partition = Core.Coalition.partition_by_ranges ~n ~parts in
  let verdict, t =
    with_observability trace metrics (fun sink m ->
        Core.Coalition.run ~trace:sink ?metrics:m Core.Connectivity_parts.decide g
          ~parts:partition)
  in
  Printf.printf "connected: %b   (coalitions: %d, max %d bits/node, bound %d)\n" verdict parts
    t.Core.Simulator.max_bits
    (Core.Connectivity_parts.per_node_bound ~n ~parts);
  exit (if verdict then 0 else 1)

(* ---------- faults ---------- *)

let fault_proto_conv =
  Arg.enum
    [
      ("forest", `Forest); ("degeneracy", `Degeneracy); ("bounded", `Bounded);
      ("sketch", `Sketch); ("connectivity", `Connectivity);
    ]

let faults path proto k parts seed crash truncate flip flip_bits duplicate spoof source trace
    metrics =
  let g = Option.map read_graph path in
  let src =
    match resolve_source source g with
    | Some src -> src
    | None -> invalid_arg "faults: provide a GRAPH file or --source implicit:<family-spec>"
  in
  let n = Graph_source.order src in
  let plan = Core.Faults.random ~seed ~n ~crash ~truncate ~flip ~flip_bits ~duplicate ~spoof () in
  Format.printf "fault plan: %a@." Core.Faults.pp plan;
  let report pp_payload (verdict, t) =
    Format.printf "verdict: %a@." (Core.Verdict.pp pp_payload) verdict;
    Format.printf "transcript: %a@." Core.Simulator.pp_transcript t;
    exit (match verdict with Core.Verdict.Inconclusive _ -> 1 | _ -> 0)
  in
  let pp_graph fmt = function
    | Some h -> Format.fprintf fmt "graph(n=%d, m=%d)" (Graph.order h) (Graph.size h)
    | None -> Format.pp_print_string fmt "rejected"
  in
  with_observability trace metrics (fun sink m ->
      let run p = Core.Simulator.run_faulty_source ~faults:plan ~trace:sink ?metrics:m p src in
      match proto with
      | `Forest -> report pp_graph (run Core.Forest_protocol.hardened)
      | `Degeneracy -> report pp_graph (run (Core.Degeneracy_protocol.hardened ~k ()))
      | `Bounded -> report pp_graph (run (Core.Bounded_degree.hardened ~max_degree:k))
      | `Sketch -> report Format.pp_print_bool (run (Core.Sketch_connectivity.hardened ~seed ()))
      | `Connectivity ->
        let partition = Core.Coalition.partition_by_ranges ~n ~parts in
        report Format.pp_print_bool
          (Core.Coalition.run_faulty_source ~faults:plan ~trace:sink ?metrics:m
             Core.Connectivity_parts.hardened src ~parts:partition))

let faults_cmd =
  let proto =
    Arg.(
      value
      & opt fault_proto_conv `Forest
      & info [ "protocol" ] ~docv:"P"
          ~doc:"Hardened protocol: forest, degeneracy, bounded, sketch or connectivity.")
  in
  let parts = Arg.(value & opt int 4 & info [ "parts" ] ~docv:"K" ~doc:"Coalition count.") in
  let rate name doc =
    Arg.(value & opt float 0. & info [ name ] ~docv:"P" ~doc)
  in
  let crash = rate "crash" "Per-node crash (message loss) probability." in
  let truncate = rate "truncate" "Per-node truncation probability." in
  let flip = rate "flip" "Per-node bit-flip probability." in
  let flip_bits =
    Arg.(value & opt int 1 & info [ "flip-bits" ] ~docv:"B" ~doc:"Bits flipped per hit message.")
  in
  let duplicate = rate "duplicate" "Per-node duplicate-delivery probability." in
  let spoof = rate "spoof" "Per-node sender-spoofing probability." in
  let graph =
    Arg.(
      value
      & pos 0 (some file) None
      & info [] ~docv:"GRAPH"
          ~doc:"Graph file (edge list or graph6); optional when --source is implicit.")
  in
  Cmd.v
    (Cmd.info "faults" ~doc:"Run a hardened protocol under a seeded fault-injection campaign")
    Term.(
      const faults $ graph $ proto $ k_arg $ parts $ seed_arg $ crash $ truncate $ flip
      $ flip_bits $ duplicate $ spoof $ source_arg $ trace_arg $ metrics_arg)

(* ---------- bcc ---------- *)

(* Multi-round runs over the broadcast congested clique engine.  The
   default protocol is the deterministic connectivity of
   Bcc_connectivity (O(1) rounds, O(log n) bits per round — the regime
   the one-round model cannot reach); [--adaptive] runs the two-round
   adaptive degeneracy reconstruction instead.  A size-free implicit
   spec ([--source implicit:cycle]) is instantiated at [-n]. *)

let pp_bcc_transcript src (t : Core.Bcc.transcript) =
  Printf.printf "source: %s   n=%d\n" (Graph_source.describe src) (Graph_source.order src);
  Printf.printf "rounds: %d   budget: %s bits per message\n" t.Core.Bcc.rounds
    (if t.Core.Bcc.bits_limit = max_int then "unbounded"
     else string_of_int t.Core.Bcc.bits_limit);
  Array.iteri
    (fun i mx ->
      let bcast =
        if i < Array.length t.Core.Bcc.broadcast_bits then
          Printf.sprintf "   broadcast %d bits" t.Core.Bcc.broadcast_bits.(i)
        else ""
      in
      Printf.printf "  round %d: max %d bits   total %d bits%s\n" (i + 1) mx
        t.Core.Bcc.per_round_total_bits.(i) bcast)
    t.Core.Bcc.per_round_max_bits;
  Printf.printf "total: %d bits uplink, max message %d bits\n" t.Core.Bcc.total_bits
    t.Core.Bcc.max_bits

let bcc path source n_default rounds bandwidth adaptive chunk crash truncate seed trace metrics =
  let g = Option.map read_graph path in
  let src =
    match (source, g) with
    | None, None -> invalid_arg "bcc: provide a GRAPH file or --source implicit:<family-spec>"
    | None, Some g -> Graph_source.of_graph g
    | Some spec, g -> (
      try Graph_source.parse ?graph:g spec
      with Invalid_argument _ when g = None ->
        (* A size-free family spec: instantiate it at the requested n. *)
        Graph_source.of_implicit (Implicit.parse_family spec n_default))
  in
  let n = Graph_source.order src in
  let rounds =
    match rounds with
    | Some r -> r
    | None ->
      let max_degree = ref 0 in
      for v = 1 to n do
        max_degree := max !max_degree (Graph_source.degree src v)
      done;
      Core.Bcc_connectivity.rounds_for ~bandwidth ~max_degree:!max_degree
  in
  with_observability trace metrics (fun sink m ->
      if adaptive then begin
        let h, t =
          Core.Bcc.run_source ?chunk ~trace:sink ?metrics:m
            (Core.Bcc.Adaptive_degeneracy.protocol ())
            src
        in
        pp_bcc_transcript src t;
        match h with
        | Some h ->
          Printf.printf "reconstructed: n=%d m=%d\n" (Graph.order h) (Graph.size h);
          exit 0
        | None ->
          print_endline "reconstructed: rejected";
          exit 1
      end
      else if crash = 0. && truncate = 0. then begin
        let verdict, t =
          Core.Bcc.run_source ?chunk ~trace:sink ?metrics:m
            (Core.Bcc_connectivity.protocol ~rounds ~bandwidth ())
            src
        in
        pp_bcc_transcript src t;
        match verdict with
        | Some true ->
          print_endline "connectivity: connected";
          exit 0
        | Some false ->
          print_endline "connectivity: disconnected";
          exit 1
        | None ->
          Printf.printf "connectivity: undecided after %d rounds (raise --rounds)\n" rounds;
          exit 1
      end
      else begin
        let plan = Core.Faults.random ~seed ~n ~crash ~truncate () in
        Format.printf "fault plan: %a@." Core.Faults.pp plan;
        let verdict, t =
          Core.Bcc.run_faulty_source ~faults:plan ~trace:sink ?metrics:m
            (Core.Bcc_connectivity.hardened ~rounds ~bandwidth ())
            src
        in
        pp_bcc_transcript src t;
        Format.printf "verdict: %a@."
          (Core.Verdict.pp (fun fmt v ->
               Format.pp_print_string fmt
                 (match v with
                 | Some true -> "connected"
                 | Some false -> "disconnected"
                 | None -> "undecided")))
          verdict;
        exit (match verdict with Core.Verdict.Inconclusive _ -> 1 | _ -> 0)
      end)

let bcc_cmd =
  let graph =
    Arg.(
      value
      & pos 0 (some file) None
      & info [] ~docv:"GRAPH"
          ~doc:"Graph file (edge list or graph6); optional when --source is implicit.")
  in
  let n =
    Arg.(
      value
      & opt int 512
      & info [ "n" ] ~docv:"N" ~doc:"Size used to instantiate a size-free implicit family spec.")
  in
  let rounds =
    Arg.(
      value
      & opt (some int) None
      & info [ "rounds" ] ~docv:"R"
          ~doc:"Round budget (default: enough to decide either way at the given bandwidth).")
  in
  let bandwidth =
    Arg.(
      value
      & opt int 2
      & info [ "bandwidth" ] ~docv:"C" ~doc:"Per-round budget in units of id_bits n.")
  in
  let adaptive =
    Arg.(
      value
      & flag
      & info [ "adaptive" ]
          ~doc:"Run the two-round adaptive degeneracy reconstruction instead of connectivity.")
  in
  let chunk =
    Arg.(
      value
      & opt (some int) None
      & info [ "chunk" ] ~docv:"K" ~doc:"Stream the referee feed in chunks of $(docv) messages.")
  in
  let rate doc_name doc = Arg.(value & opt float 0. & info [ doc_name ] ~docv:"P" ~doc) in
  let crash = rate "crash" "Per-node crash probability (switches to the hardened protocol)." in
  let truncate = rate "truncate" "Per-node truncation probability (hardened protocol)." in
  Cmd.v
    (Cmd.info "bcc" ~doc:"Run a broadcast-congested-clique protocol under a round/bit budget")
    Term.(
      const bcc $ graph $ source_arg $ n $ rounds $ bandwidth $ adaptive $ chunk $ crash
      $ truncate $ seed_arg $ trace_arg $ metrics_arg)

(* ---------- sweep ---------- *)

(* One traced run of every flagship protocol per size: the trace feeds
   [refnet report]'s bound audit, the metrics file a live snapshot.
   Graphs are seeded per (seed, n), so a sweep is reproducible.

   [--source materialized|csr] routes the same generated graphs through
   the chosen backend (transcripts are bit-identical; only the [src=]
   label differs).  [--source implicit:<family>] takes a size-free
   family spec instead — the family is instantiated at each sweep size
   without ever materializing, so sizes beyond the incidence-matrix
   wall (n = 10^6+) are in reach; reconstruction protocols need a known
   graph class, so the implicit sweep runs the recognition ones. *)
let sweep sizes seed k parts source chunk trace metrics =
  with_observability trace metrics (fun sink m ->
      let implicit_family =
        match source with
        | Some spec when spec <> "materialized" && spec <> "csr" ->
          Some (fun n -> Implicit.parse_family spec n)
        | _ -> None
      in
      List.iter
        (fun n ->
          match implicit_family with
          | Some fam ->
            let src = Graph_source.of_implicit (fam n) in
            let run p =
              ignore (Core.Simulator.run_source ?chunk ~trace:sink ?metrics:m p src)
            in
            run Core.Forest_protocol.recognize;
            (* The reconstructing degeneracy referee keeps an n^2-bit
               matrix and the sketch referee ~log^3 n bits per node:
               past these sizes only the O(n)-word referees run, which
               is what makes the million-node sweep fit in memory. *)
            let degeneracy_ok = n <= 20_000 and sketch_ok = n <= 200_000 in
            if degeneracy_ok then run (Core.Recognition.degeneracy_at_most k);
            if sketch_ok then run (Core.Sketch_connectivity.protocol ~seed ());
            let partition = Core.Coalition.partition_by_ranges ~n ~parts:(min parts n) in
            ignore
              (Core.Coalition.run_source ~trace:sink ?metrics:m Core.Connectivity_parts.decide
                 src ~parts:partition);
            Printf.printf "n=%7d: forest-recognize%s%s, coalition(%d parts) on %s done\n%!" n
              (if degeneracy_ok then Printf.sprintf ", degeneracy<=%d" k else "")
              (if sketch_ok then ", sketch" else "")
              (min parts n) (Graph_source.describe src)
          | None ->
            let rng = Random.State.make [| seed; n |] in
            let run p g =
              match source with
              | None -> ignore (Core.Simulator.run ~trace:sink ?metrics:m p g)
              | Some spec ->
                ignore
                  (Core.Simulator.run_source ?chunk ~trace:sink ?metrics:m p
                     (Graph_source.parse ~graph:g spec))
            in
            run Core.Forest_protocol.reconstruct (Generators.random_tree rng n);
            run
              (Core.Degeneracy_protocol.reconstruct ~k ())
              (Generators.random_k_degenerate rng n ~k);
            let side = max 2 (int_of_float (sqrt (float_of_int n))) in
            run (Core.Bounded_degree.reconstruct ~max_degree:4) (Generators.grid side side);
            let connected = Generators.random_connected rng n 0.15 in
            let partition = Core.Coalition.partition_by_ranges ~n ~parts:(min parts n) in
            (match source with
            | None ->
              ignore
                (Core.Coalition.run ~trace:sink ?metrics:m Core.Connectivity_parts.decide
                   connected ~parts:partition)
            | Some spec ->
              ignore
                (Core.Coalition.run_source ~trace:sink ?metrics:m Core.Connectivity_parts.decide
                   (Graph_source.parse ~graph:connected spec)
                   ~parts:partition));
            run (Core.Sketch_connectivity.protocol ~seed ()) connected;
            Printf.printf
              "n=%4d: forest, degeneracy-%d, bounded-degree-4, coalition(%d parts), sketch done\n%!"
              n k (min parts n))
        sizes)

let sweep_cmd =
  let sizes =
    Arg.(
      value
      & opt (list int) [ 32; 64; 128 ]
      & info [ "sizes" ] ~docv:"N,N,..." ~doc:"Comma-separated network sizes to sweep.")
  in
  let parts = Arg.(value & opt int 4 & info [ "parts" ] ~docv:"K" ~doc:"Coalition count.") in
  let source =
    Arg.(
      value
      & opt (some string) None
      & info [ "source" ] ~docv:"SRC"
          ~doc:
            "Graph backend for the sweep: $(b,materialized), $(b,csr), or a size-free \
             $(b,implicit:<family>) spec (implicit:path, implicit:grid, implicit:regular:D, \
             implicit:degenerate:K, ...) instantiated at each size.")
  in
  let chunk =
    Arg.(
      value
      & opt (some int) None
      & info [ "chunk" ] ~docv:"C"
          ~doc:
            "Feed the referee in chunks of $(docv) messages: peak live-message storage drops \
             from O(n) to O(C) with a bit-identical transcript.")
  in
  Cmd.v
    (Cmd.info "sweep"
       ~doc:
         "Run every flagship protocol across a size sweep, recording traces and metrics for \
          offline bound auditing with $(b,refnet report)")
    Term.(const sweep $ sizes $ seed_arg $ k_arg $ parts $ source $ chunk $ trace_arg $ metrics_arg)

(* ---------- report ---------- *)

let report traces json_out =
  let r = Core.Report.create () in
  List.iter (Core.Report.ingest_file r) traces;
  Format.printf "%a@?" Core.Report.pp r;
  (match json_out with
  | Some file ->
    let oc = open_out file in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () ->
        output_string oc (Core.Report.to_json r);
        output_char oc '\n')
  | None -> ());
  match Core.Report.violations r with
  | [] -> ()
  | vs ->
    Printf.eprintf "refnet report: %d bound audit violation%s\n" (List.length vs)
      (if List.length vs = 1 then "" else "s");
    exit 1

let report_cmd =
  let traces =
    Arg.(non_empty & pos_all file [] & info [] ~docv:"TRACE" ~doc:"JSONL trace file(s).")
  in
  let json_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:"Also write the aggregate report as canonical JSON to $(docv).")
  in
  Cmd.v
    (Cmd.info "report"
       ~doc:
         "Aggregate JSONL traces offline: per-protocol bit histograms, fault counts and \
          bound-audit verdicts (exit 1 on any violated budget)")
    Term.(const report $ traces $ json_out)

(* ---------- flight ---------- *)

(* Decode crash-dump flight recordings and replay their trace events
   through the same Report pipeline as live JSONL traces — the audit
   verdicts must agree with what a live trace of the same sessions
   would produce.  Decode is total: malformed bytes become findings,
   which are reported, never raised. *)
let flight dumps json_out =
  let r = Core.Report.create () in
  let recorded = ref 0 and dropped = ref 0 in
  let findings = ref [] and items = ref 0 and notes = ref 0 in
  let all_items = ref [] in
  List.iter
    (fun path ->
      match Core.Flight.decode_file path with
      | Error msg ->
        Printf.eprintf "refnet flight: %s\n" msg;
        exit 2
      | Ok d ->
        recorded := !recorded + d.Core.Flight.d_recorded;
        dropped := !dropped + d.Core.Flight.d_dropped;
        findings :=
          !findings @ List.map (fun f -> (path, f)) d.Core.Flight.d_findings;
        all_items := !all_items @ d.Core.Flight.d_items;
        List.iter
          (fun it ->
            incr items;
            match it.Core.Flight.i_line with
            | Some line -> Core.Report.ingest_line r line
            | None -> incr notes)
          d.Core.Flight.d_items)
    dumps;
  let open_sessions = Core.Flight.open_traces !all_items in
  (match json_out with
  | true ->
    let sessions_json =
      String.concat ", "
        (List.map
           (fun (trace, summary) ->
             Printf.sprintf "{\"trace\": \"%s\", \"summary\": %S}"
               (Core.Flight.hex_of_trace trace)
               summary)
           open_sessions)
    in
    Printf.printf
      "{\"files\": %d, \"flight_recorded\": %d, \"flight_drops_total\": %d, \
       \"flight_findings\": %d, \"items\": %d, \"notes\": %d, \
       \"open_sessions\": [%s], \"report\": %s}\n"
      (List.length dumps) !recorded !dropped
      (List.length !findings)
      !items !notes sessions_json
      (Core.Report.to_json r)
  | false ->
    Printf.printf "flight: %d file%s, %d recorded, %d dropped, %d items (%d notes)\n"
      (List.length dumps)
      (if List.length dumps = 1 then "" else "s")
      !recorded !dropped !items !notes;
    List.iter
      (fun (path, f) ->
        Printf.printf "  finding %s@%d: %s\n" path f.Core.Flight.f_offset
          f.Core.Flight.f_reason)
      !findings;
    List.iter
      (fun (trace, summary) ->
        Printf.printf "  open session %s: %s\n"
          (Core.Flight.hex_of_trace trace)
          summary)
      open_sessions;
    Format.printf "%a@?" Core.Report.pp r);
  match Core.Report.violations r with
  | [] -> ()
  | vs ->
    Printf.eprintf "refnet flight: %d bound audit violation%s\n" (List.length vs)
      (if List.length vs = 1 then "" else "s");
    exit 1

let flight_cmd =
  let dumps =
    Arg.(non_empty & pos_all file [] & info [] ~docv:"DUMP" ~doc:".flight dump file(s).")
  in
  let json =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:
            "Print a JSON object (decode counters, open sessions, embedded report) instead of \
             the human-readable rendering.")
  in
  Cmd.v
    (Cmd.info "flight"
       ~doc:
         "Decode flight-recorder crash dumps, list sessions found mid-flight, and replay the \
          recorded events through the $(b,refnet report) bound audit (exit 1 on any violated \
          budget)")
    Term.(const flight $ dumps $ json)

(* ---------- search ---------- *)

let goal_conv =
  Arg.enum
    [
      ("triangle", `Triangle); ("square", `Square); ("connectivity", `Connectivity);
      ("bipartite", `Bip); ("reconstruct", `Reconstruct); ("forest-family", `Forest_family);
    ]

let search n bits goal =
  let colors = 1 lsl bits in
  let result =
    match goal with
    | `Triangle -> Core.Protocol_search.search_decider ~n ~colors ~property:Cycles.has_triangle ()
    | `Square -> Core.Protocol_search.search_decider ~n ~colors ~property:Cycles.has_square ()
    | `Connectivity ->
      Core.Protocol_search.search_decider ~n ~colors ~property:Connectivity.is_connected ()
    | `Bip -> Core.Protocol_search.search_decider ~n ~colors ~property:Bipartite.is_bipartite ()
    | `Reconstruct -> Core.Protocol_search.search_reconstructor ~n ~colors ()
    | `Forest_family ->
      Core.Protocol_search.search_family_reconstructor ~n ~colors ~family:Spanning.is_forest ()
  in
  match result with
  | Core.Protocol_search.Found w ->
    Printf.printf "A %d-bit one-round protocol EXISTS at n = %d.  Witness tables:\n" bits n;
    Array.iteri
      (fun i table ->
        Printf.printf "  node %d:" (i + 1);
        Array.iteri (fun mask v -> Printf.printf " N#%d->%d" mask v) table;
        print_newline ())
      w
  | Impossible ->
    Printf.printf
      "IMPOSSIBLE: no one-round protocol with %d-bit messages achieves this at n = %d\n\
       (exhaustively verified over every local-function assignment).\n"
      bits n;
    exit 1
  | Aborted ->
    print_endline "search aborted (budget)";
    exit 2

let search_cmd =
  let n = Arg.(value & opt int 4 & info [ "n" ] ~docv:"N" ~doc:"Network size (<= 4).") in
  let bits = Arg.(value & opt int 1 & info [ "bits" ] ~docv:"B" ~doc:"Message bits per node.") in
  let goal =
    Arg.(required & pos 0 (some goal_conv) None & info [] ~docv:"GOAL"
           ~doc:"triangle, square, connectivity, bipartite, reconstruct or forest-family.")
  in
  Cmd.v
    (Cmd.info "search" ~doc:"Exhaustively decide whether ANY b-bit one-round protocol exists")
    Term.(const search $ n $ bits $ goal)

(* ---------- lint ---------- *)

(* Thin wrapper over lib/lint — the same engine as the standalone
   refnet_lint.exe, reachable from the shipped binary. *)
let lint paths json deep baseline =
  let paths = match paths with [] -> [ "lib"; "bin"; "bench"; "examples" ] | ps -> ps in
  (* lint: allow determinism -- lint wall-time for the report, not a model run *)
  let t0 = Unix.gettimeofday () in
  let files, findings, roots =
    if deep then
      let d = Lint.Driver.deep_paths paths in
      ( d.Lint.Driver.deep_files,
        d.deep_findings,
        Some (d.deep_roots_proven, d.deep_roots_total) )
    else
      let files, findings = Lint.Driver.lint_paths paths in
      (files, findings, None)
  in
  (* lint: allow determinism -- lint wall-time for the report, not a model run *)
  let wall_ms = int_of_float ((Unix.gettimeofday () -. t0) *. 1000.) in
  let gating =
    match baseline with
    | None -> findings
    | Some file -> (
      match Lint.Baseline.load file with
      | Error msg ->
        Printf.eprintf "refnet lint: %s\n" msg;
        exit 2
      | Ok base -> Lint.Baseline.diff ~baseline:base findings)
  in
  if json then
    print_endline (Lint.Finding.report_json ~wall_ms ~files:(List.length files) findings)
  else begin
    List.iter (fun f -> print_endline (Lint.Finding.to_string f)) findings;
    (match roots with
    | Some (proven, total) ->
      Printf.printf
        "refnet lint: exn-escape proved %d/%d referee roots confined to the malformed class \
         (%s)\n"
        proven total
        (String.concat ", " Lint.Exnflow.allowed)
    | None -> ());
    Printf.printf "refnet lint: %d finding%s%s in %d scanned file%s, %d ms\n"
      (List.length findings)
      (if List.length findings = 1 then "" else "s")
      (if baseline = None then ""
       else Printf.sprintf " (%d new vs baseline)" (List.length gating))
      (List.length files)
      (if List.length files = 1 then "" else "s")
      wall_ms
  end;
  exit (if gating = [] then 0 else 1)

let lint_cmd =
  let paths =
    Arg.(
      value
      & pos_all string []
      & info [] ~docv:"PATH"
          ~doc:"Files or directories to lint (default: lib bin bench examples).")
  in
  let json =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit the findings as a canonical JSON report.")
  in
  let deep =
    Arg.(
      value & flag
      & info [ "deep" ]
          ~doc:
            "Also run the whole-repo call-graph passes: exception-escape totality over the \
             registered referees, Parallel capture races, blocking-call reachability from \
             the serve loop, and stale-suppression detection.")
  in
  let baseline =
    Arg.(
      value
      & opt (some string) None
      & info [ "baseline" ] ~docv:"FILE"
          ~doc:
            "Diff findings against a committed schema-v2 JSON report; known findings are \
             reported but only new ones fail the run (exit 2 if $(docv) is unreadable).")
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "Statically enforce the model's invariants (view boundary, determinism, referee \
          totality, span grammar, bit accounting — plus, with $(b,--deep), exception-escape \
          totality, parallel races and blocking-call reachability over the repo call graph); \
          exit 1 on any new finding")
    Term.(const lint $ paths $ json $ deep $ baseline)

(* ---------- stats ---------- *)

let stats path =
  let g = read_graph path in
  print_endline (Parameters.summary g);
  Printf.printf "girth: %s   diameter: %s   bipartite: %b   connected: %b\n"
    (match Cycles.girth g with Some d -> string_of_int d | None -> "acyclic")
    (match Distance.diameter g with Some d -> string_of_int d | None -> "inf")
    (Bipartite.is_bipartite g)
    (Connectivity.is_connected g);
  let lo, hi = Parameters.arboricity_bounds g in
  Printf.printf "arboricity in [%d, %d]   triangles: %d   has C4: %b\n" lo hi
    (Cycles.triangle_count g) (Cycles.has_square g);
  if Graph.order g <= 18 then
    Printf.printf "treewidth (exact): %d\n" (Treewidth.treewidth g)
  else print_endline "treewidth: skipped (n > 18)";
  let k = max 1 (Degeneracy.degeneracy g) in
  Printf.printf "one-round reconstruction budget: k=%d, %d bits/node (forest protocol: %s)\n" k
    (Core.Bounds.degeneracy_message_bits ~k (Graph.order g))
    (if Spanning.is_forest g then Printf.sprintf "%d bits" (Core.Bounds.forest_message_bits (Graph.order g))
     else "n/a")

let stats_cmd =
  Cmd.v
    (Cmd.info "stats" ~doc:"Structural parameters of a graph (degeneracy, treewidth, ...)")
    Term.(const stats $ graph_file_arg)

(* ---------- serve ---------- *)

let serve_probe addr =
  let ( let* ) r f = match r with Ok v -> f v | Error e -> Error e in
  let result =
    let* listen = Serve.Daemon.parse_listen addr in
    let* c = Serve.Client.connect listen in
    Fun.protect
      ~finally:(fun () -> Serve.Client.close c)
      (fun () ->
        let* () = Serve.Client.handshake c in
        let n = 4 in
        match Serve.Registry.lookup ~spec:"count" ~n with
        | Error e -> Error e
        | Ok (Serve.Registry.Entry { protocol = p; _ }) ->
          let msgs =
            Core.Simulator.local_phase p (Generators.path n)
            |> Array.to_list
            |> List.mapi (fun i m -> (i + 1, m))
          in
          Serve.Client.run_session c ~protocol:"count" ~n msgs)
  in
  match result with
  | Ok v ->
    let status =
      match v.Serve.Client.status with
      | Serve.Frame.Decided -> "decided"
      | Serve.Frame.Degraded -> "degraded"
      | Serve.Frame.Inconclusive -> "inconclusive"
    in
    Printf.printf "probe ok: %s %s\n" status v.Serve.Client.payload;
    exit (match v.Serve.Client.status with Serve.Frame.Decided -> 0 | _ -> 1)
  | Error msg ->
    Printf.eprintf "probe failed: %s\n" msg;
    exit 1

let serve listen metrics_listen selftest probe sessions conns nodes protocol chaos seed min_rate
    json deadline idle_timeout max_sessions credit domains max_run flight_dir flight_capacity
    trace metrics_file =
  match probe with
  | Some addr -> serve_probe addr
  | None ->
    if selftest then
      with_observability trace metrics_file (fun sink m ->
          let cfg =
            {
              Serve.Selftest.default_cfg with
              Serve.Selftest.sessions;
              conns;
              n = nodes;
              protocol;
              faulty = chaos;
              seed;
            }
          in
          let engine_cfg =
            {
              Serve.Selftest.default_engine_cfg with
              Serve.Engine.max_sessions;
              session_credit = credit;
              domains;
            }
          in
          (* the selftest always records flight data: the outcome audits
             that every verdict left decodable evidence in the rings *)
          let fl = Core.Flight.create ~capacity:flight_capacity () in
          let outcome =
            Serve.Selftest.run ~trace:sink ?metrics:m ~flight:fl ~engine_cfg cfg
          in
          if json then print_endline (Serve.Selftest.to_json outcome)
          else Format.printf "%a@." Serve.Selftest.pp outcome;
          match Serve.Selftest.passed ?min_rate outcome with
          | Ok () -> exit 0
          | Error msg ->
            Printf.eprintf "selftest failed: %s\n" msg;
            exit 1)
    else begin
      match Serve.Daemon.parse_listen listen with
      | Error msg ->
        Printf.eprintf "refnet serve: %s\n" msg;
        exit 1
      | Ok listen_spec ->
        let metrics_listen_spec =
          match metrics_listen with
          | None -> None
          | Some s -> (
            match Serve.Daemon.parse_listen s with
            | Ok l -> Some l
            | Error msg ->
              Printf.eprintf "refnet serve: %s\n" msg;
              exit 1)
        in
        with_trace trace (fun sink ->
            (* the daemon keeps a registry whenever anything consumes it:
               a scrape endpoint or a shutdown snapshot file *)
            let m =
              if metrics_listen_spec <> None || metrics_file <> None then
                Some (Core.Metrics.create ())
              else None
            in
            let opts =
              {
                (Serve.Daemon.default_opts ~listen:listen_spec) with
                Serve.Daemon.metrics_listen = metrics_listen_spec;
                metrics_file;
                engine_cfg =
                  {
                    Serve.Engine.default_config with
                    Serve.Engine.deadline_s = deadline;
                    idle_timeout_s = idle_timeout;
                    max_sessions;
                    session_credit = credit;
                    domains;
                  };
                trace = sink;
                metrics = m;
                flight_dir;
                flight_capacity = Some flight_capacity;
                max_run_s = max_run;
              }
            in
            exit (Serve.Daemon.run opts))
    end

let serve_cmd =
  let listen =
    Arg.(
      value
      & opt string "tcp:127.0.0.1:7477"
      & info [ "listen" ] ~docv:"ADDR" ~doc:"Listen address: tcp:HOST:PORT, tcp:PORT or unix:PATH.")
  in
  let metrics_listen =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics-listen" ] ~docv:"ADDR"
          ~doc:"Serve a Prometheus text snapshot to HTTP scrapes on $(docv).")
  in
  let selftest =
    Arg.(
      value & flag
      & info [ "selftest" ]
          ~doc:
            "Run the in-process load generator against the engine instead of listening; exits 0 \
             only if every robustness invariant held.")
  in
  let probe =
    Arg.(
      value
      & opt (some string) None
      & info [ "probe" ] ~docv:"ADDR"
          ~doc:"Connect to a running daemon, run one tiny session, and exit 0 on a Decided verdict.")
  in
  let sessions =
    Arg.(value & opt int 20_000 & info [ "sessions" ] ~docv:"N" ~doc:"Selftest: sessions to run.")
  in
  let conns =
    Arg.(value & opt int 64 & info [ "conns" ] ~docv:"N" ~doc:"Selftest: concurrent client workers.")
  in
  let nodes =
    Arg.(value & opt int 8 & info [ "nodes" ] ~docv:"N" ~doc:"Selftest: nodes per session.")
  in
  let protocol =
    Arg.(
      value & opt string "count"
      & info [ "protocol" ] ~docv:"SPEC"
          ~doc:"Session protocol: count, forest, degeneracy:K, bounded:D or sketch:SEED.")
  in
  let chaos =
    Arg.(
      value & opt float 0.0
      & info [ "chaos" ] ~docv:"FRAC"
          ~doc:
            "Selftest: fraction of sessions given a hostile behaviour (channel faults, crashes, \
             truncated frames, corrupt bytes, stalls).")
  in
  let min_rate =
    Arg.(
      value
      & opt (some float) None
      & info [ "min-rate" ] ~docv:"RATE" ~doc:"Selftest: fail below $(docv) sessions/second.")
  in
  let json = Arg.(value & flag & info [ "json" ] ~doc:"Selftest: print the outcome as JSON.") in
  let deadline =
    Arg.(
      value & opt float 30.
      & info [ "deadline" ] ~docv:"SECONDS" ~doc:"Per-session wall-clock budget before a forced verdict.")
  in
  let idle_timeout =
    Arg.(
      value & opt float 10.
      & info [ "idle-timeout" ] ~docv:"SECONDS"
          ~doc:"Max quiet gap on a session before a forced verdict.")
  in
  let max_sessions =
    Arg.(
      value & opt int 4096
      & info [ "max-sessions" ] ~docv:"N" ~doc:"Admission cap: shed load above this many live sessions.")
  in
  let credit =
    Arg.(
      value & opt int 256
      & info [ "credit" ] ~docv:"N" ~doc:"Per-session ingress window (Msg frames in flight).")
  in
  let domains =
    Arg.(
      value
      & opt (some int) None
      & info [ "domains" ] ~docv:"W" ~doc:"Parallel pool width for session folding.")
  in
  let max_run =
    Arg.(
      value
      & opt (some float) None
      & info [ "max-run" ] ~docv:"SECONDS" ~doc:"Stop (as if SIGTERM) after $(docv); for smoke tests.")
  in
  let flight_dir =
    Arg.(
      value
      & opt (some string) None
      & info [ "flight-dir" ] ~docv:"DIR"
          ~doc:
            "Attach a crash-safe flight recorder: ring dumps land in $(docv) on every anomaly, \
             on SIGUSR1 and at exit; on boot the directory is scanned and mid-flight sessions \
             are refused with evidence ($(b,refnet flight) decodes the dumps).")
  in
  let flight_capacity =
    Arg.(
      value & opt int 65536
      & info [ "flight-capacity" ] ~docv:"N"
          ~doc:"Flight recorder ring entries per domain (oldest entries overwrite beyond this).")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Always-on referee daemon: clients open sessions over a length-framed binary protocol, \
          stream node messages, and receive a sound Verdict; degrades under faults instead of dying")
    Term.(
      const serve $ listen $ metrics_listen $ selftest $ probe $ sessions $ conns $ nodes
      $ protocol $ chaos $ seed_arg $ min_rate $ json $ deadline $ idle_timeout $ max_sessions
      $ credit $ domains $ max_run $ flight_dir $ flight_capacity $ trace_arg $ metrics_arg)

let connectivity_cmd =
  let parts = Arg.(value & opt int 4 & info [ "parts" ] ~docv:"K" ~doc:"Coalition count.") in
  Cmd.v
    (Cmd.info "connectivity" ~doc:"Coalition connectivity audit (conclusion protocol)")
    Term.(const connectivity $ graph_file_arg $ parts $ trace_arg $ metrics_arg)

let () =
  let info =
    Cmd.info "refnet" ~version:"1.0.0"
      ~doc:"One-round referee protocols on interconnection networks (IPDPS 2011 reproduction)"
  in
  (* [~catch:false] so stray exceptions reach us instead of cmdliner's
     multi-line backtrace dump: one diagnostic line on stderr, exit 2 —
     distinct from the 0/1 verdict codes the subcommands use. *)
  match
    Cmd.eval ~catch:false
      (Cmd.group info
         [
           generate_cmd; reconstruct_cmd; recognize_cmd; gadget_cmd; count_cmd; sizes_cmd; stats_cmd; search_cmd;
           connectivity_cmd; faults_cmd; bcc_cmd; sweep_cmd; report_cmd; flight_cmd; lint_cmd; serve_cmd;
         ])
  with
  | code -> exit code
  | exception e ->
    let msg = Printexc.to_string e in
    let msg = match String.index_opt msg '\n' with Some i -> String.sub msg 0 i | None -> msg in
    Printf.eprintf "refnet: %s\n" msg;
    exit 2
