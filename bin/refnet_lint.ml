(* refnet-lint — the standalone entry point for the repo's AST-level
   invariant checker (lib/lint).  `refnet lint` exposes the same linter
   from the main CLI; this thin binary is what CI gates on.

     refnet_lint [--json] PATH...

   PATHs are .ml files or directories (recursed, _build and
   dot-directories skipped; defaults to lib bin bench examples).  Exits
   1 when any finding survives policy and suppressions, 0 on a clean
   tree. *)

let usage = "refnet-lint [--json] PATH...  (default paths: lib bin bench examples)"

let () =
  let json = ref false in
  let paths = ref [] in
  Arg.parse
    [ ("--json", Arg.Set json, " emit the findings as a canonical JSON report on stdout") ]
    (fun p -> paths := p :: !paths)
    usage;
  let paths = match List.rev !paths with [] -> [ "lib"; "bin"; "bench"; "examples" ] | ps -> ps in
  let files, findings = Lint.Driver.lint_paths paths in
  if !json then print_endline (Lint.Finding.report_json findings)
  else begin
    List.iter (fun f -> print_endline (Lint.Finding.to_string f)) findings;
    if findings = [] then
      Printf.printf "refnet-lint: clean (%d files)\n" (List.length files)
    else
      Printf.printf "refnet-lint: %d finding%s in %d scanned file%s\n" (List.length findings)
        (if List.length findings = 1 then "" else "s")
        (List.length files)
        (if List.length files = 1 then "" else "s")
  end;
  exit (if findings = [] then 0 else 1)
