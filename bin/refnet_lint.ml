(* refnet-lint — the standalone entry point for the repo's AST-level
   invariant checker (lib/lint).  `refnet lint` exposes the same linter
   from the main CLI; this thin binary is what CI gates on.

     refnet_lint [--json] [--deep] [--baseline FILE] PATH...

   PATHs are .ml files or directories (recursed, _build and
   dot-directories skipped; defaults to lib bin bench examples).

   --deep adds the whole-repo call-graph passes (exception-escape
   totality over the registered referees, Parallel capture races,
   blocking-call reachability from the serve loop) and the
   stale-suppression check.  --baseline FILE diffs the findings against
   a committed schema-v2 report: known findings are reported but do not
   fail the run.

   Exits 0 on a clean tree (or all findings baselined), 1 when any new
   finding survives policy / suppressions / baseline, 2 when the
   baseline file is unreadable or malformed. *)

let usage =
  "refnet-lint [--json] [--deep] [--baseline FILE] PATH...  (default paths: lib bin bench \
   examples)"

let () =
  let json = ref false in
  let deep = ref false in
  let baseline = ref "" in
  let paths = ref [] in
  Arg.parse
    [
      ("--json", Arg.Set json, " emit the findings as a canonical JSON report on stdout");
      ("--deep", Arg.Set deep, " also run the whole-repo call-graph passes");
      ( "--baseline",
        Arg.Set_string baseline,
        "FILE fail only on findings absent from this committed report" );
    ]
    (fun p -> paths := p :: !paths)
    usage;
  let paths = match List.rev !paths with [] -> [ "lib"; "bin"; "bench"; "examples" ] | ps -> ps in
  (* lint: allow determinism -- lint wall-time for the report, not a model run *)
  let t0 = Unix.gettimeofday () in
  let files, findings, roots =
    if !deep then
      let d = Lint.Driver.deep_paths paths in
      (d.Lint.Driver.deep_files, d.deep_findings, Some (d.deep_roots_proven, d.deep_roots_total))
    else
      let files, findings = Lint.Driver.lint_paths paths in
      (files, findings, None)
  in
  (* lint: allow determinism -- lint wall-time for the report, not a model run *)
  let wall_ms = int_of_float ((Unix.gettimeofday () -. t0) *. 1000.) in
  let gating =
    if !baseline = "" then findings
    else
      match Lint.Baseline.load !baseline with
      | Error msg ->
        Printf.eprintf "refnet-lint: %s\n" msg;
        exit 2
      | Ok base -> Lint.Baseline.diff ~baseline:base findings
  in
  if !json then
    print_endline (Lint.Finding.report_json ~wall_ms ~files:(List.length files) findings)
  else begin
    List.iter (fun f -> print_endline (Lint.Finding.to_string f)) findings;
    (match roots with
    | Some (proven, total) ->
      Printf.printf "refnet-lint: exn-escape proved %d/%d referee roots confined to the \
                     malformed class (%s)\n"
        proven total
        (String.concat ", " Lint.Exnflow.allowed)
    | None -> ());
    if findings = [] then
      Printf.printf "refnet-lint: clean (%d files, %d ms)\n" (List.length files) wall_ms
    else
      Printf.printf "refnet-lint: %d finding%s%s in %d scanned file%s, %d ms\n"
        (List.length findings)
        (if List.length findings = 1 then "" else "s")
        (if !baseline = "" then ""
         else Printf.sprintf " (%d new vs baseline)" (List.length gating))
        (List.length files)
        (if List.length files = 1 then "" else "s")
        wall_ms
  end;
  exit (if gating = [] then 0 else 1)
