(* The impossibility machinery, end to end.

   The paper's negative results all follow one recipe: IF a one-round
   protocol Γ could decide property P frugally, THEN the reduction
   protocol Δ would reconstruct an exponentially large graph family from
   O(n log n) bits — contradicting the counting bound (Lemma 1).  This
   demo runs every piece of that argument as real code:

     1. a (non-frugal) oracle Γ for each property,
     2. the reduction Δ simulating Γ on the gadgets G'_{s,t},
     3. exact reconstruction of the hidden graph,
     4. the counting bound showing why a frugal Γ cannot exist.

   Run with:  dune exec examples/impossibility_demo.exe *)

open Refnet_graph

let show_reduction name delta g =
  let out, t = Core.Simulator.run delta g in
  Printf.printf "  %-10s hidden graph n=%d m=%d -> reconstructed %s (Δ sends %d bits/node)\n"
    name (Graph.order g) (Graph.size g)
    (if Graph.equal out g then "EXACTLY" else "WRONG")
    t.Core.Simulator.max_bits

let () =
  let rng = Random.State.make [| 0x1dea |] in

  print_endline "Step 1-3: reductions Δ reconstruct hidden graphs through decision oracles.";
  show_reduction "square" (Core.Reduction.square Core.Reduction.square_oracle)
    (Generators.random_square_free rng 12 ~attempts:300);
  show_reduction "diameter" (Core.Reduction.diameter Core.Reduction.diameter3_oracle)
    (Generators.gnp rng 12 0.35);
  show_reduction "triangle" (Core.Reduction.triangle Core.Reduction.triangle_oracle)
    (Generators.random_bipartite rng ~left:6 ~right:6 0.5);

  print_endline "\nStep 4: the counting bound (Lemma 1).";
  let c = 4 in
  Printf.printf
    "  A frugal protocol (%d log n bits/node) gives the referee c*n*log n bits total.\n" c;
  List.iter
    (fun (name, fam) ->
      match Core.Counting.crossover ~c fam ~max_n:4096 with
      | Some n ->
        Printf.printf
          "  %-30s outgrows that budget from n = %d on -> no frugal one-round protocol\n" name n
      | None -> Printf.printf "  %-30s stays within budget below n = 4096\n" name)
    [
      ("all graphs (diameter red.)", Core.Counting.All_graphs);
      ("bipartite graphs (triangle red.)", Core.Counting.Bipartite_fixed_halves);
    ];

  (* Square-free graphs: exact counts by exhaustive enumeration at small
     n; the Kleitman-Winston 2^Theta(n^1.5) growth takes over. *)
  print_endline "\n  Exact counts of labelled square-free graphs (Kleitman-Winston family):";
  for n = 2 to 7 do
    Printf.printf "    n=%d: log2 g(n) = %5.1f   vs budget %5.1f\n" n
      (Core.Counting.log2_family_size Core.Counting.Square_free n)
      (Core.Counting.budget ~c n)
  done;

  print_endline "\nConclusion: the oracles above shipped whole incidence vectors (n bits).";
  print_endline "Any frugal Γ for squares / triangles / diameter<=3 would compress these";
  print_endline "families below their entropy — impossible.  (Theorems 1, 2, 3.)"
