(* Quickstart: reconstruct a small network at the referee from one round
   of O(log n)-bit messages.

   Run with:  dune exec examples/quickstart.exe *)

open Refnet_graph

let () =
  (* A 9-node network: the 3x3 grid (planar, degeneracy 2). *)
  let g = Generators.grid 3 3 in
  Printf.printf "Network: 3x3 grid, n = %d, m = %d edges\n" (Graph.order g) (Graph.size g);

  (* Every node runs the Algorithm 3 local function with k = 2 and sends
     one message to the referee. *)
  let protocol = Core.Degeneracy_protocol.reconstruct ~k:2 () in
  let reconstruction, transcript = Core.Simulator.run protocol g in

  Printf.printf "Messages: max %d bits, total %d bits (%.1f x log n per node)\n"
    transcript.Core.Simulator.max_bits transcript.Core.Simulator.total_bits
    (Core.Simulator.frugality_ratio transcript);

  (* The referee decodes the power sums and rebuilds the graph. *)
  (match reconstruction with
  | Some h when Graph.equal g h -> print_endline "Referee reconstructed the network exactly."
  | Some _ -> print_endline "BUG: reconstruction differs!"
  | None -> print_endline "BUG: reconstruction failed!");

  (* The referee now knows the topology and can answer anything. *)
  (match reconstruction with
  | Some h ->
    Printf.printf "Referee's answers: connected=%b, diameter=%s, bipartite=%b\n"
      (Connectivity.is_connected h)
      (match Distance.diameter h with Some d -> string_of_int d | None -> "inf")
      (Bipartite.is_bipartite h)
  | None -> ());

  (* Every run is observable: plug a trace sink into the simulator to see
     each node's message length and view queries, and every referee
     absorb event.  Here the forest protocol rejects the grid (it has
     cycles) — watch it happen. *)
  print_endline "Trace of the forest protocol on the same grid:";
  let sink, events = Core.Trace.memory () in
  let verdict, _ = Core.Simulator.run ~trace:sink Core.Forest_protocol.recognize g in
  let absorbs =
    List.length
      (List.filter (function Core.Trace.Referee_absorb _ -> true | _ -> false) (events ()))
  in
  Printf.printf "  referee absorbed %d messages, verdict: forest=%b\n" absorbs verdict;
  List.iter
    (fun ev ->
      match ev with
      | Core.Trace.Node_local { id; _ } when id <= 3 ->
        Printf.printf "  %s\n" (Core.Trace.json_of_event ev)
      | _ -> ())
    (events ());

  (* Compare with what one round CANNOT do on arbitrary graphs: the same
     grid hidden inside a diameter gadget flips its answer with a single
     edge, which is the engine of the impossibility proof (Theorem 2). *)
  let with_edge = Core.Gadgets.diameter g 1 2 in
  let without_edge = Core.Gadgets.diameter g 1 9 in
  Printf.printf
    "Gadget check (Theorem 2): diam(G'_{1,2}) <= 3 is %b ({1,2} is an edge), \
     diam(G'_{1,9}) <= 3 is %b ({1,9} is not)\n"
    (Distance.diameter_at_most with_edge 3)
    (Distance.diameter_at_most without_edge 3)
