(* Sensor-network census.

   Scenario: a field of battery-powered sensors organized as a spanning
   forest (cluster trees).  Each sensor knows only its own ID and its
   tree neighbours, and can afford to radio a single tiny packet to the
   base station.  The Section III.A protocol lets the base station
   rebuild the entire forest from one (ID, degree, neighbour-ID-sum)
   triple per sensor — under 4 log n bits each.

   Run with:  dune exec examples/sensor_forest.exe *)

open Refnet_graph

let () =
  let rng = Random.State.make [| 2026; 7; 4 |] in
  let n = 500 and clusters = 8 in
  let field = Generators.random_forest rng n ~trees:clusters in
  Printf.printf "Sensor field: %d sensors in %d cluster trees (%d links)\n" n
    (Connectivity.component_count field) (Graph.size field);

  let reconstruction, transcript = Core.Simulator.run Core.Forest_protocol.reconstruct field in
  Printf.printf "Uplink: every sensor sent exactly %d bits (paper bound: %d bits = 4 log n)\n"
    transcript.Core.Simulator.max_bits
    (Core.Forest_protocol.message_bits n);

  (match reconstruction with
  | Some h when Graph.equal field h ->
    Printf.printf "Base station recovered all %d links exactly.\n" (Graph.size h);
    let members = Connectivity.component_members h in
    Printf.printf "Cluster sizes: %s\n"
      (String.concat ", " (List.map (fun c -> string_of_int (List.length c)) members))
  | Some _ | None -> print_endline "BUG: census failed");

  (* Link-failure drill: drop one link and rerun — the base station sees
     the partition immediately. *)
  let victim = List.hd (Graph.edges field) in (* lint: allow referee-totality -- a 500-sensor forest with 8 trees always has links *)
  let n_edges = List.filter (fun e -> e <> victim) (Graph.edges field) in
  let degraded = Graph.of_edges n n_edges in
  (match fst (Core.Simulator.run Core.Forest_protocol.reconstruct degraded) with
  | Some h ->
    Printf.printf "After dropping link (%d,%d): %d clusters detected (was %d)\n" (fst victim)
      (snd victim) (Connectivity.component_count h) clusters
  | None -> print_endline "BUG: degraded census failed");

  (* A rogue cross-link creates a cycle: the one-round protocol detects
     that the topology is no longer a forest and refuses to guess. *)
  let tree = List.find (fun c -> List.length c >= 3) (Connectivity.component_members field) in
  let rogue =
    (* Any two non-adjacent sensors of one tree close a cycle. *)
    let rec pick = function
      | x :: rest -> (
        match List.find_opt (fun y -> not (Graph.has_edge field x y)) rest with
        | Some y -> (x, y)
        | None -> pick rest)
      | [] -> failwith "no non-adjacent pair in a tree of size >= 3" (* lint: allow referee-totality -- unreachable: a tree on >= 3 vertices is never complete *)
    in
    pick tree
  in
  let cyclic = Graph.add_edges field [ rogue ] in
  match fst (Core.Simulator.run Core.Forest_protocol.reconstruct cyclic) with
  | None ->
    Printf.printf "Rogue link (%d,%d) detected: topology rejected as non-forest.\n" (fst rogue)
      (snd rogue)
  | Some _ -> print_endline "BUG: cycle went unnoticed"
