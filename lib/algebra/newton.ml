open Refnet_bigint

let elementary_of_power_sums p_list =
  let p = Array.of_list p_list in
  let d = Array.length p in
  let e = Array.make (d + 1) Bigint.zero in
  e.(0) <- Bigint.one;
  for m = 1 to d do
    (* m * e_m = sum_{i=1..m} (-1)^(i-1) e_(m-i) p_i *)
    let acc = ref Bigint.zero in
    for i = 1 to m do
      let term = Bigint.mul e.(m - i) p.(i - 1) in
      acc := if i land 1 = 1 then Bigint.add !acc term else Bigint.sub !acc term
    done;
    (* lint: allow exn-escape -- divisor is of_int m with m >= 1: structurally nonzero *)
    e.(m) <- Bigint.div_exact !acc (Bigint.of_int m)
  done;
  Array.to_list (Array.sub e 1 d)

let power_sums_of_elementary e_list ~upto =
  if upto < 0 then invalid_arg "Newton.power_sums_of_elementary: negative bound";
  let d = List.length e_list in
  let e = Array.make (upto + 1) Bigint.zero in
  e.(0) <- Bigint.one;
  List.iteri (fun i v -> if i + 1 <= upto then e.(i + 1) <- v) e_list;
  (* Beyond the number of values, e_m = 0 is already in place. *)
  let eff m = if m <= d then e.(m) else Bigint.zero in
  let p = Array.make (upto + 1) Bigint.zero in
  for m = 1 to upto do
    (* p_m = sum_{i=1..m-1} (-1)^(i-1) e_i p_(m-i) + (-1)^(m-1) m e_m *)
    let acc = ref Bigint.zero in
    for i = 1 to m - 1 do
      let term = Bigint.mul (eff i) p.(m - i) in
      acc := if i land 1 = 1 then Bigint.add !acc term else Bigint.sub !acc term
    done;
    let last = Bigint.mul (Bigint.of_int m) (eff m) in
    p.(m) <- (if m land 1 = 1 then Bigint.add !acc last else Bigint.sub !acc last)
  done;
  Array.to_list (Array.sub p 1 upto)

let power_sums values ~upto =
  if upto < 0 then invalid_arg "Newton.power_sums: negative bound";
  List.init upto (fun i ->
      let p = i + 1 in
      List.fold_left (fun acc v -> Bigint.add acc (Bigint.pow v p)) Bigint.zero values)

let elementary values =
  (* Expand prod (1 + v t) incrementally; coefficient of t^m is e_m. *)
  let d = List.length values in
  let e = Array.make (d + 1) Bigint.zero in
  e.(0) <- Bigint.one;
  List.iteri
    (fun i v ->
      for m = i + 1 downto 1 do
        e.(m) <- Bigint.add e.(m) (Bigint.mul v e.(m - 1))
      done)
    values;
  Array.to_list (Array.sub e 1 d)

let polynomial_from_power_sums p_list =
  let e = elementary_of_power_sums p_list in
  let d = List.length e in
  let coeffs = Array.make (d + 1) Bigint.zero in
  coeffs.(d) <- Bigint.one;
  List.iteri
    (fun i em ->
      let m = i + 1 in
      coeffs.(d - m) <- (if m land 1 = 1 then Bigint.neg em else em))
    e;
  Poly.of_coeffs coeffs
