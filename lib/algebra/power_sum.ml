open Refnet_bigint

type encoding = Nat.t array

(* Memoized power table: [row p] caches [i^(p+1)] for [i = 1..len].  In a
   simulation every node encodes the same small exponents over ids from
   the same [{1..n}], so each power is computed once per process instead
   of once per node.  Rows are immutable once published through the
   [Atomic.t] (publication creates the happens-before edge that makes the
   cached [Nat.t]s safe to read from any domain); growth is serialized by
   [memo_mu] and doubles, so rebuilds are logarithmic. *)
let max_memo_pow = 16

let pow_memo : Nat.t array Atomic.t array =
  Array.init max_memo_pow (fun _ -> Atomic.make [||])

let memo_mu = Mutex.create ()

let pow_id i p =
  if i <= 0 then invalid_arg "Power_sum: non-positive id";
  if p > max_memo_pow then Nat.pow (Nat.of_int i) p
  else begin
    let row = Atomic.get pow_memo.(p - 1) in
    if i <= Array.length row then Array.unsafe_get row (i - 1) (* lint: allow referee-totality -- guarded by the bound check on this line *)
    else begin
      Mutex.lock memo_mu;
      let row = Atomic.get pow_memo.(p - 1) in
      let result =
        if i <= Array.length row then row.(i - 1)
        else begin
          let len = max i (2 * Array.length row) in
          let grown =
            Array.init len (fun j ->
                if j < Array.length row then row.(j) else Nat.pow (Nat.of_int (j + 1)) p)
          in
          Atomic.set pow_memo.(p - 1) grown;
          grown.(i - 1)
        end
      in
      Mutex.unlock memo_mu;
      result
    end
  end

let check_ids ids k =
  (* Single sorted scan: adjacent equality catches repeats, the same walk
     validates positivity and counts the length. *)
  let sorted = List.sort Stdlib.compare ids in
  let rec scan count = function
    | [] -> count
    | [ i ] ->
      if i <= 0 then invalid_arg "Power_sum.encode: non-positive id";
      count + 1
    | i :: (j :: _ as rest) ->
      if i = j then invalid_arg "Power_sum.encode: repeated id";
      if i <= 0 then invalid_arg "Power_sum.encode: non-positive id";
      scan (count + 1) rest
  in
  if scan 0 sorted > k then invalid_arg "Power_sum.encode: more ids than k"

let encode ?coords ~k ids =
  if k < 0 then invalid_arg "Power_sum.encode: negative k";
  let coords =
    match coords with
    | None -> k
    | Some c ->
      if c < 0 || c > k then invalid_arg "Power_sum.encode: bad coords";
      c
  in
  check_ids ids k;
  Array.init coords (fun p ->
      List.fold_left (fun acc i -> Nat.add acc (pow_id i (p + 1))) Nat.zero ids)

let subtract enc ~id ~upto =
  if id <= 0 then invalid_arg "Power_sum.subtract: non-positive id";
  if upto > Array.length enc then invalid_arg "Power_sum.subtract: upto exceeds encoding";
  Array.mapi
    (fun p b ->
      if p < upto then begin
        let ip = pow_id id (p + 1) in
        if Nat.compare b ip < 0 then invalid_arg "Power_sum.subtract: id not a member";
        Nat.sub b ip
      end
      else b)
    enc

let decode ~n ~deg enc =
  if deg < 0 || deg > Array.length enc then invalid_arg "Power_sum.decode: bad degree";
  if deg = 0 then Some []
  else begin
    let sums = List.init deg (fun p -> Bigint.of_nat enc.(p)) in
    match Newton.polynomial_from_power_sums sums with
    | poly ->
      let roots = Poly.integer_roots_in poly ~lo:1 ~hi:n in
      if List.length roots = deg then begin
        (* Root extraction can in principle return spurious factorizations
           for malformed input; re-encode to confirm. *)
        let check = encode ~k:deg roots in
        let matches = ref true in
        Array.iteri (fun p b -> if not (Nat.equal b enc.(p)) then matches := false) check;
        if !matches then Some roots else None
      end
      else None
    | exception Invalid_argument _ -> None
  end

module Table = struct
  module Key = struct
    type t = string
    let of_encoding (enc : encoding) ~deg =
      let buf = Buffer.create 32 in
      for p = 0 to deg - 1 do
        Buffer.add_string buf (Nat.to_string enc.(p));
        Buffer.add_char buf ','
      done;
      Buffer.contents buf
  end

  type t = { n : int; k : int; table : (Key.t, int list) Hashtbl.t }

  let build ~n ~k =
    if n < 0 || k < 0 then invalid_arg "Power_sum.Table.build: negative parameter";
    let table = Hashtbl.create 1024 in
    (* Enumerate subsets of {1..n} of size exactly d for d = 0..k. *)
    let rec subsets first remaining acc =
      if remaining = 0 then begin
        let ids = List.rev acc in
        let enc = encode ~k:(List.length ids) ids in
        Hashtbl.replace table (Key.of_encoding enc ~deg:(List.length ids)) ids
      end
      else
        for i = first to n - remaining + 1 do
          subsets (i + 1) (remaining - 1) (i :: acc)
        done
    in
    for d = 0 to min k n do
      subsets 1 d []
    done;
    { n; k; table }

  let entries t = Hashtbl.length t.table

  let lookup t enc ~deg =
    if deg < 0 || deg > t.k then None
    else Hashtbl.find_opt t.table (Key.of_encoding enc ~deg)
end
