(** Power-sum set encodings (the paper's Algorithm 3 payload).

    A set [S] of at most [k] identifiers drawn from [{1..n}] is encoded as
    the vector [b] with [b_p = sum_{i in S} i^p] for [p = 1..k] — exactly
    the product [A(k,n) . x] of Definition 3, where [x] is the incidence
    vector of [S].  By Wright's theorem on equal sums of like powers
    (Theorem 4 of the paper), the encoding is injective on sets of size at
    most [k], so a decoder exists.

    Two decoders are provided:
    - {!decode}, via Newton's identities and integer root extraction
      ([O(d^2)] bigint operations plus [O(n d)] trial evaluations, no
      precomputation) — the practical decoder;
    - {!Table}, the paper's Lemma 3 lookup table over all subsets of size
      at most [k] ([O(n^k)] space) — feasible only for tiny [n], kept as a
      cross-check oracle. *)

open Refnet_bigint

type encoding = Nat.t array
(** [encoding.(p - 1)] holds [b_p]; length is the protocol parameter [k]. *)

(** [encode ?coords ~k ids] encodes the set [ids] (distinct positives, in
    any order) into power sums [b_1..b_coords], validating [|ids| <= k].
    [coords] defaults to [k]; passing [coords < k] computes only a prefix
    of the encoding — Algorithm 3 transmits [k] coordinates even from
    nodes whose degree (and hence validation bound) is larger.  Powers
    [i^p] are memoized process-wide, so across a simulation each power is
    computed once per graph rather than once per node; the memo is safe
    to share between domains.
    @raise Invalid_argument if [ids] has repeats, non-positive entries, or
    more than [k] elements, or if [coords] is negative or exceeds [k]. *)
val encode : ?coords:int -> k:int -> int list -> encoding

(** [subtract enc ~id ~upto] removes a member [id] from an encoding in
    place of re-encoding: subtracts [id^p] from [b_p] for [p = 1..upto].
    This is the referee's pruning update in Algorithm 4.
    @raise Invalid_argument if a subtraction would go negative (meaning
    [id] was not a member). *)
val subtract : encoding -> id:int -> upto:int -> encoding

(** [decode ~n ~deg enc] recovers the unique set of [deg] identifiers in
    [{1..n}] whose power sums match [enc] (using the first [deg]
    coordinates), as an increasing list.  Returns [None] when no such set
    exists (malformed message).
    @raise Invalid_argument if [deg] exceeds the length of [enc]. *)
val decode : n:int -> deg:int -> encoding -> int list option

(** The Lemma 3 table decoder. *)
module Table : sig
  type t

  (** [build ~n ~k] enumerates all subsets of [{1..n}] of size at most
      [k] and indexes them by encoding.  Size [O(n^k)]; intended for
      small instances and as a test oracle. *)
  val build : n:int -> k:int -> t

  (** [entries t] is the number of stored subsets. *)
  val entries : t -> int

  (** [lookup t enc ~deg] finds the stored subset of size [deg] matching
      the first [deg] coordinates of [enc]. *)
  val lookup : t -> encoding -> deg:int -> int list option
end
