(* Sign-magnitude representation; zero has sign 0 and magnitude Nat.zero. *)

type t = { sign : int; mag : Nat.t }

let mk sign mag = if Nat.is_zero mag then { sign = 0; mag = Nat.zero } else { sign; mag }

let zero = { sign = 0; mag = Nat.zero }
let one = { sign = 1; mag = Nat.one }
let minus_one = { sign = -1; mag = Nat.one }

let of_int v = if v >= 0 then mk 1 (Nat.of_int v) else mk (-1) (Nat.of_int (-v))

let to_int_opt n =
  match Nat.to_int_opt n.mag with
  | Some v -> Some (n.sign * v)
  | None -> None

let to_int n =
  match to_int_opt n with
  | Some v -> v
  | None -> failwith "Bigint.to_int: overflow" (* lint: allow referee-totality -- documented contract; use to_int_opt for the total variant *)

let of_nat m = mk 1 m

let to_nat n =
  if n.sign < 0 then invalid_arg "Bigint.to_nat: negative";
  n.mag

let sign n = n.sign

let neg n = mk (-n.sign) n.mag
let abs n = mk 1 n.mag

let add a b =
  match (a.sign, b.sign) with
  | 0, _ -> b
  | _, 0 -> a
  | sa, sb when sa = sb -> mk sa (Nat.add a.mag b.mag)
  | sa, _ ->
    let c = Nat.compare a.mag b.mag in
    if c = 0 then zero
    else if c > 0 then mk sa (Nat.sub a.mag b.mag)
    else mk (-sa) (Nat.sub b.mag a.mag)

let sub a b = add a (neg b)

let mul a b = mk (a.sign * b.sign) (Nat.mul a.mag b.mag)

let divmod a b =
  if b.sign = 0 then raise Division_by_zero;
  let q, r = Nat.divmod a.mag b.mag in
  (mk (a.sign * b.sign) q, mk a.sign r)

let div a b = fst (divmod a b)
let rem a b = snd (divmod a b)

let div_exact a b =
  let q, r = divmod a b in
  if not (Nat.is_zero r.mag) then invalid_arg "Bigint.div_exact: inexact division";
  q

let pow b e =
  if e < 0 then invalid_arg "Bigint.pow: negative exponent";
  let sign = if b.sign < 0 && e land 1 = 1 then -1 else if b.sign = 0 && e > 0 then 0 else 1 in
  mk sign (Nat.pow b.mag e)

let equal a b = a.sign = b.sign && Nat.equal a.mag b.mag

let compare a b =
  if a.sign <> b.sign then Stdlib.compare a.sign b.sign
  else a.sign * Nat.compare a.mag b.mag

let is_zero n = n.sign = 0

let of_string s =
  if String.length s > 0 && s.[0] = '-' then
    mk (-1) (Nat.of_string (String.sub s 1 (String.length s - 1)))
  else Nat.of_string s |> of_nat

let to_string n = (if n.sign < 0 then "-" else "") ^ Nat.to_string n.mag

let pp fmt n = Format.pp_print_string fmt (to_string n)

let hash n = Hashtbl.hash (n.sign, Nat.hash n.mag)
