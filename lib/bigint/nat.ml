(* Little-endian base-2^30 digits, no trailing zero digit; zero is [||]. *)

type t = int array

let base_bits = 30
let base = 1 lsl base_bits
let digit_mask = base - 1

let zero : t = [||]
let one : t = [| 1 |]

let is_zero n = Array.length n = 0

(* Drop trailing zero digits so representations are canonical. *)
let normalize (d : int array) : t =
  let len = ref (Array.length d) in
  while !len > 0 && d.(!len - 1) = 0 do
    decr len
  done;
  if !len = Array.length d then d else Array.sub d 0 !len

let of_int v =
  if v < 0 then invalid_arg "Nat.of_int: negative";
  if v = 0 then zero
  else begin
    let rec count acc v = if v = 0 then acc else count (acc + 1) (v lsr base_bits) in
    let len = count 0 v in
    Array.init len (fun i -> (v lsr (i * base_bits)) land digit_mask)
  end

let to_int_opt n =
  (* 63-bit native ints hold at most three digits, and only some of those. *)
  if Array.length n > 3 then None
  else begin
    let acc = ref 0 and ok = ref true in
    for i = Array.length n - 1 downto 0 do
      if !acc > (max_int - n.(i)) lsr base_bits then ok := false
      else acc := (!acc lsl base_bits) lor n.(i)
    done;
    if !ok then Some !acc else None
  end

let to_int n =
  match to_int_opt n with
  | Some v -> v
  | None -> failwith "Nat.to_int: overflow" (* lint: allow referee-totality -- documented contract; use to_int_opt for the total variant *)

let equal (a : t) (b : t) = a = b

let compare (a : t) (b : t) =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then Stdlib.compare la lb
  else begin
    let rec go i =
      if i < 0 then 0
      else if a.(i) <> b.(i) then Stdlib.compare a.(i) b.(i)
      else go (i - 1)
    in
    go (la - 1)
  end

let add (a : t) (b : t) : t =
  let la = Array.length a and lb = Array.length b in
  let lr = max la lb + 1 in
  let r = Array.make lr 0 in
  let carry = ref 0 in
  for i = 0 to lr - 1 do
    let s = (if i < la then a.(i) else 0) + (if i < lb then b.(i) else 0) + !carry in
    r.(i) <- s land digit_mask;
    carry := s lsr base_bits
  done;
  normalize r

let sub (a : t) (b : t) : t =
  if compare a b < 0 then invalid_arg "Nat.sub: result would be negative";
  let la = Array.length a and lb = Array.length b in
  let r = Array.make la 0 in
  let borrow = ref 0 in
  for i = 0 to la - 1 do
    let d = a.(i) - (if i < lb then b.(i) else 0) - !borrow in
    if d < 0 then begin
      r.(i) <- d + base;
      borrow := 1
    end else begin
      r.(i) <- d;
      borrow := 0
    end
  done;
  normalize r

let mul_schoolbook (a : t) (b : t) : t =
  let la = Array.length a and lb = Array.length b in
  if la = 0 || lb = 0 then zero
  else begin
    let r = Array.make (la + lb) 0 in
    for i = 0 to la - 1 do
      let carry = ref 0 in
      let ai = a.(i) in
      for j = 0 to lb - 1 do
        (* ai * b.(j) < 2^60, plus digit and carry stays below 2^62. *)
        let s = r.(i + j) + (ai * b.(j)) + !carry in
        r.(i + j) <- s land digit_mask;
        carry := s lsr base_bits
      done;
      let k = ref (i + lb) in
      while !carry <> 0 do
        let s = r.(!k) + !carry in
        r.(!k) <- s land digit_mask;
        carry := s lsr base_bits;
        incr k
      done
    done;
    normalize r
  end

let karatsuba_threshold = 32

let split (a : t) (h : int) : t * t =
  if Array.length a <= h then (a, zero)
  else (normalize (Array.sub a 0 h), normalize (Array.sub a h (Array.length a - h)))

let shift_digits (a : t) (k : int) : t =
  if is_zero a then zero
  else begin
    let r = Array.make (Array.length a + k) 0 in
    Array.blit a 0 r k (Array.length a);
    r
  end

let rec mul (a : t) (b : t) : t =
  let la = Array.length a and lb = Array.length b in
  if la < karatsuba_threshold || lb < karatsuba_threshold then mul_schoolbook a b
  else begin
    let h = (max la lb + 1) / 2 in
    let a0, a1 = split a h and b0, b1 = split b h in
    let z0 = mul a0 b0 in
    let z2 = mul a1 b1 in
    let z1 = sub (mul (add a0 a1) (add b0 b1)) (add z0 z2) in
    add (add z0 (shift_digits z1 h)) (shift_digits z2 (2 * h))
  end

(* Division by a single digit, used directly and by string conversion. *)
let divmod_digit (a : t) (d : int) : t * int =
  if d = 0 then raise Division_by_zero;
  let la = Array.length a in
  let q = Array.make la 0 in
  let rem = ref 0 in
  for i = la - 1 downto 0 do
    let cur = (!rem lsl base_bits) lor a.(i) in
    q.(i) <- cur / d;
    rem := cur mod d
  done;
  (normalize q, !rem)

let shift_left (a : t) (k : int) : t =
  if k < 0 then invalid_arg "Nat.shift_left: negative shift";
  if is_zero a || k = 0 then a
  else begin
    let dk = k / base_bits and bk = k mod base_bits in
    let la = Array.length a in
    let r = Array.make (la + dk + 1) 0 in
    for i = 0 to la - 1 do
      let v = a.(i) lsl bk in
      r.(i + dk) <- r.(i + dk) lor (v land digit_mask);
      r.(i + dk + 1) <- r.(i + dk + 1) lor (v lsr base_bits)
    done;
    normalize r
  end

let shift_right (a : t) (k : int) : t =
  if k < 0 then invalid_arg "Nat.shift_right: negative shift";
  let dk = k / base_bits and bk = k mod base_bits in
  let la = Array.length a in
  if dk >= la then zero
  else begin
    let lr = la - dk in
    let r = Array.make lr 0 in
    for i = 0 to lr - 1 do
      let lo = a.(i + dk) lsr bk in
      let hi = if bk > 0 && i + dk + 1 < la then (a.(i + dk + 1) lsl (base_bits - bk)) land digit_mask else 0 in
      r.(i) <- lo lor hi
    done;
    normalize r
  end

let num_bits (a : t) =
  let la = Array.length a in
  if la = 0 then 0
  else begin
    let top = a.(la - 1) in
    let rec count acc v = if v = 0 then acc else count (acc + 1) (v lsr 1) in
    ((la - 1) * base_bits) + count 0 top
  end

(* Knuth algorithm D.  [a] and [b] with [b] of at least two digits. *)
let divmod_knuth (a : t) (b : t) : t * t =
  let n = Array.length b in
  (* Normalize so the top divisor digit is at least base/2. *)
  let s = base_bits - num_bits [| b.(n - 1) |] in
  let u' = shift_left a s and v = shift_left b s in
  let m = Array.length u' - n in
  let u = Array.make (Array.length u' + 1) 0 in
  Array.blit u' 0 u 0 (Array.length u');
  let q = Array.make (m + 1) 0 in
  for j = m downto 0 do
    let top2 = (u.(j + n) lsl base_bits) lor u.(j + n - 1) in
    let qhat = ref (top2 / v.(n - 1)) in
    let rhat = ref (top2 mod v.(n - 1)) in
    let v2 = if n >= 2 then v.(n - 2) else 0 in
    let u2 = u.(j + n - 2) in
    while
      !qhat >= base
      || (!rhat < base && !qhat * v2 > (!rhat lsl base_bits) lor u2)
    do
      decr qhat;
      rhat := !rhat + v.(n - 1)
    done;
    (* Multiply and subtract qhat * v from u[j .. j+n]. *)
    let borrow = ref 0 and carry = ref 0 in
    for i = 0 to n - 1 do
      let p = !qhat * v.(i) + !carry in
      carry := p lsr base_bits;
      let d = u.(i + j) - (p land digit_mask) - !borrow in
      if d < 0 then begin
        u.(i + j) <- d + base;
        borrow := 1
      end else begin
        u.(i + j) <- d;
        borrow := 0
      end
    done;
    let d = u.(j + n) - !carry - !borrow in
    if d < 0 then begin
      (* qhat was one too large: add v back and decrement. *)
      u.(j + n) <- d + base;
      decr qhat;
      let carry = ref 0 in
      for i = 0 to n - 1 do
        let s = u.(i + j) + v.(i) + !carry in
        u.(i + j) <- s land digit_mask;
        carry := s lsr base_bits
      done;
      u.(j + n) <- (u.(j + n) + !carry) land digit_mask
    end else u.(j + n) <- d;
    q.(j) <- !qhat
  done;
  let r = normalize (Array.sub u 0 n) in
  (normalize q, shift_right r s)

let divmod (a : t) (b : t) : t * t =
  if is_zero b then raise Division_by_zero;
  if compare a b < 0 then (zero, a)
  else if Array.length b = 1 then begin
    let q, r = divmod_digit a b.(0) in
    (q, of_int r)
  end
  else divmod_knuth a b

let div a b = fst (divmod a b)
let rem a b = snd (divmod a b)

let pow b e =
  if e < 0 then invalid_arg "Nat.pow: negative exponent";
  let rec go acc b e =
    if e = 0 then acc
    else begin
      let acc = if e land 1 = 1 then mul acc b else acc in
      go acc (mul b b) (e lsr 1)
    end
  in
  go one b e

let of_string s =
  if String.length s = 0 then invalid_arg "Nat.of_string: empty";
  let acc = ref zero in
  let ten = of_int 10 in
  String.iter
    (fun c ->
      if c < '0' || c > '9' then invalid_arg "Nat.of_string: not a digit";
      acc := add (mul !acc ten) (of_int (Char.code c - Char.code '0')))
    s;
  !acc

let to_string n =
  if is_zero n then "0"
  else begin
    let buf = Buffer.create 16 in
    let rec go n =
      if not (is_zero n) then begin
        (* 10^9 fits a single base-2^30 digit. *)
        let q, r = divmod_digit n 1_000_000_000 in
        if is_zero q then Buffer.add_string buf (string_of_int r)
        else begin
          go q;
          Buffer.add_string buf (Printf.sprintf "%09d" r)
        end
      end
    in
    go n;
    Buffer.contents buf
  end

let pp fmt n = Format.pp_print_string fmt (to_string n)

let hash (n : t) = Hashtbl.hash n

let to_digits (n : t) = Array.copy n

let of_digits d =
  Array.iter (fun x -> if x < 0 || x >= base then invalid_arg "Nat.of_digits: digit out of range") d;
  normalize (Array.copy d)
