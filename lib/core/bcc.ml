open Refnet_bits
open Refnet_graph

type budget = { rounds : int; bits_per_round : int -> int }

let budget ~rounds ~bits_per_round =
  if rounds < 1 then
    invalid_arg
      (Printf.sprintf "Bcc.budget: field rounds is %d, must be at least 1" rounds);
  { rounds; bits_per_round }

(* The cap function can only be checked once [n] is known; entry points
   validate [bits_per_round n] so a nonsensical cap surfaces as
   [Invalid_argument] naming the field instead of a confusing
   [Budget_exceeded] at send time. *)
let check_budget_fields ~entry b ~n =
  if b.rounds < 1 then
    invalid_arg
      (Printf.sprintf "%s: budget field rounds is %d, must be at least 1" entry
         b.rounds);
  let limit = b.bits_per_round n in
  if limit < 1 then
    invalid_arg
      (Printf.sprintf
         "%s: budget field bits_per_round yields %d at n = %d, must be at least 1"
         entry limit n);
  limit

let unbounded _ = max_int

let log_budget ~c n =
  if c < 1 then invalid_arg "Bcc.log_budget: c must be at least 1";
  c * Bounds.id_bits n

exception Budget_exceeded of { round : int; id : int; bits : int; limit : int }

type node_state = { view : View.t; extra : Message.t list }

let make_state view = { view; extra = [] }
let state_view s = s.view
let state_extra s = s.extra
let push_extra s m = { s with extra = m :: s.extra }

type ('s, 'a) round_stream = {
  r_init : n:int -> 's;
  r_absorb : n:int -> round:int -> 's -> id:int -> Message.t -> 's;
  r_broadcast : n:int -> round:int -> 's -> 's * Message.t;
  r_finish : n:int -> 's -> 'a;
}

type 'a referee = Referee : ('s, 'a) round_stream -> 'a referee

type 'a t = {
  name : string;
  budget : budget;
  init : View.t -> node_state;
  send : round:int -> node_state -> Message.t * node_state;
  receive : round:int -> broadcast:Message.t -> node_state -> node_state;
  referee : 'a referee;
}

type transcript = {
  rounds : int;
  bits_limit : int;
  per_round_max_bits : int array;
  per_round_total_bits : int array;
  broadcast_bits : int array;
  max_bits : int;
  total_bits : int;
  faulted_ids : int list;
}

(* The engine-side view constructor, as in {!Simulator}: one view per
   node, backed directly by the source's neighbour slice. *)
let view_of src ~n i =
  let nbrs, off, len = Graph_source.neighbors_slice src (i + 1) in
  View.of_slice ~n ~id:(i + 1) nbrs ~off ~len

let maybe_time metrics name f =
  match metrics with Some m -> Metrics.time m name f | None -> f ()

let observe_source metrics src =
  match metrics with
  | None -> ()
  | Some m ->
    Metrics.Counter.incr
      (Metrics.Counter.counter m
         (Metrics.series "refnet_source_runs_total" [ ("backend", Graph_source.backend src) ]))

let query_total (c : View.counts) = c.id_reads + c.n_reads + c.deg_reads + c.neighbor_reads

(* View audits accumulate across rounds (one view lives through the
   whole run), so per-round [Node_local] events report the delta since
   the previous snapshot. *)
let sub_counts (a : View.counts) (b : View.counts) : View.counts =
  {
    id_reads = a.id_reads - b.id_reads;
    n_reads = a.n_reads - b.n_reads;
    deg_reads = a.deg_reads - b.deg_reads;
    neighbor_reads = a.neighbor_reads - b.neighbor_reads;
  }

(* Per-round spans are labelled [name[round=r]]; the [src=<backend>]
   decoration stays outermost — outside [round=] exactly as it sits
   outside [parts=] for coalitions — so {!Bound_audit.classify_label}
   peels src first, then the round, and every round audits under the
   protocol's per-round budget. *)
let decorated base ~round ~src =
  let s =
    match round with None -> base | Some r -> Printf.sprintf "%s[round=%d]" base r
  in
  match src with None -> s | Some tok -> Printf.sprintf "%s[src=%s]" s tok

let check_budget ~round ~id ~limit bits =
  if bits > limit then raise (Budget_exceeded { round; id; bits; limit })

let finish_transcript ~rounds ~limit ~per_round_max ~per_round_total ~bcast ~faulted_ids =
  {
    rounds;
    bits_limit = limit;
    per_round_max_bits = per_round_max;
    per_round_total_bits = per_round_total;
    broadcast_bits = bcast;
    max_bits = Array.fold_left max 0 per_round_max;
    total_bits = Array.fold_left ( + ) 0 per_round_total;
    faulted_ids;
  }

let observe_run metrics ~rounds (t : transcript) =
  match metrics with
  | None -> ()
  | Some m ->
    Metrics.Counter.add (Metrics.Counter.counter m "refnet_bcc_rounds_total") rounds;
    Metrics.Counter.incr (Metrics.Counter.counter m "refnet_runs_total");
    Metrics.Histogram.observe (Metrics.Histogram.histogram m "refnet_run_max_bits") t.max_bits;
    Metrics.Counter.add (Metrics.Counter.counter m "refnet_run_bits_total") t.total_bits

let observe_broadcast metrics bits =
  match metrics with
  | None -> ()
  | Some m ->
    Metrics.Histogram.observe (Metrics.Histogram.histogram m "refnet_bcc_broadcast_bits") bits

(* Shared budget-check / stats / per-node observability step, applied in
   identifier order on the submitting domain after each parallel send
   batch — the transcript is bit-identical at any width and chunk, and
   the first budget violation raised is deterministic. *)
let account ~trace ~metrics ~quiet ~round ~limit ~per_round_max ~per_round_total ~prev
    ~(states : node_state array) ~id bits =
  check_budget ~round ~id ~limit bits;
  if bits > per_round_max.(round - 1) then per_round_max.(round - 1) <- bits;
  per_round_total.(round - 1) <- per_round_total.(round - 1) + bits;
  if not quiet then begin
    let now = View.audit states.(id - 1).view in
    let delta = sub_counts now prev.(id - 1) in
    if not (Trace.is_null trace) then
      Trace.emit trace (Trace.Node_local { id; bits; queries = delta });
    (match metrics with
    | Some m ->
      Metrics.Histogram.observe (Metrics.Histogram.histogram m "refnet_message_bits") bits;
      Metrics.Histogram.observe
        (Metrics.Histogram.histogram m "refnet_view_queries")
        (query_total delta)
    | None -> ());
    prev.(id - 1) <- now
  end

let broadcast_phase ~trace ~metrics ~round ~limit ~bcast ~(states : node_state array) p r rst =
  let st, reply =
    maybe_time metrics "refnet_referee_phase" (fun () -> r.r_broadcast ~n:(Array.length states) ~round !rst)
  in
  rst := st;
  let bits = Message.bits reply in
  check_budget ~round ~id:0 ~limit bits;
  bcast.(round - 1) <- bits;
  Trace.emit trace (Trace.Referee_broadcast { round; bits });
  observe_broadcast metrics bits;
  for i = 0 to Array.length states - 1 do
    states.(i) <- p.receive ~round ~broadcast:reply states.(i)
  done

let run_core ?domains ?chunk ~trace ~metrics ~src (p : 'a t) source =
  let n = Graph_source.order source in
  let limit = check_budget_fields ~entry:"Bcc.run" p.budget ~n in
  let rounds = p.budget.rounds in
  let quiet = Trace.is_null trace && metrics = None in
  let outer = decorated p.name ~round:None ~src in
  Trace.emit trace (Trace.Span_begin { label = outer; n });
  let states =
    maybe_time metrics "refnet_local_phase" (fun () ->
        Parallel.init ?domains ?metrics n (fun i -> p.init (view_of source ~n i)))
  in
  let prev = if quiet then [||] else Array.map (fun s -> View.audit s.view) states in
  let per_round_max = Array.make rounds 0 in
  let per_round_total = Array.make rounds 0 in
  let bcast = Array.make (max 0 (rounds - 1)) 0 in
  let ck = match chunk with Some c when c >= 1 && c < n -> c | _ -> max n 1 in
  let out =
    match p.referee with
    | Referee r ->
      let rst = ref (r.r_init ~n) in
      for round = 1 to rounds do
        let rl = decorated p.name ~round:(Some round) ~src in
        Trace.emit trace (Trace.Span_begin { label = rl; n });
        (* Blocked schedule within the round: compute [ck] messages in
           parallel, absorb them in identifier order, release them —
           O(ck) live messages, bit-identical transcript at every chunk
           size (same discipline as {!Simulator.run_chunked}). *)
        let pos = ref 0 in
        while !pos < n do
          let b = !pos in
          let len = min ck (n - b) in
          let sent =
            maybe_time metrics "refnet_local_phase" (fun () ->
                Parallel.init ?domains ?metrics len (fun i -> p.send ~round states.(b + i)))
          in
          maybe_time metrics "refnet_referee_phase" (fun () ->
              for i = 0 to len - 1 do
                let id = b + i + 1 in
                let msg, s = sent.(i) in
                states.(b + i) <- s;
                let bits = Message.bits msg in
                account ~trace ~metrics ~quiet ~round ~limit ~per_round_max ~per_round_total
                  ~prev ~states ~id bits;
                rst := r.r_absorb ~n ~round !rst ~id msg;
                if not (Trace.is_null trace) then
                  Trace.emit trace (Trace.Referee_absorb { id; bits })
              done);
          (match metrics with
          | Some m ->
            Metrics.Counter.add (Metrics.Counter.counter m "refnet_messages_total") len;
            Metrics.Counter.add (Metrics.Counter.counter m "refnet_absorbs_total") len
          | None -> ());
          pos := b + len
        done;
        if round < rounds then
          broadcast_phase ~trace ~metrics ~round ~limit ~bcast ~states p r rst;
        Trace.emit trace
          (Trace.Referee_done
             {
               label = rl;
               n;
               max_bits = per_round_max.(round - 1);
               total_bits = per_round_total.(round - 1);
             });
        Trace.emit trace (Trace.Span_end { label = rl; n })
      done;
      maybe_time metrics "refnet_referee_phase" (fun () -> r.r_finish ~n !rst)
  in
  let t = finish_transcript ~rounds ~limit ~per_round_max ~per_round_total ~bcast ~faulted_ids:[] in
  observe_run metrics ~rounds t;
  Trace.emit trace
    (Trace.Referee_done { label = outer; n; max_bits = t.max_bits; total_bits = t.total_bits });
  Trace.emit trace (Trace.Span_end { label = outer; n });
  (out, t)

let run ?domains ?chunk ?(trace = Trace.null) ?metrics (p : 'a t) g =
  run_core ?domains ?chunk ~trace ~metrics ~src:None p (Graph_source.of_graph g)

let run_source ?domains ?chunk ?(trace = Trace.null) ?metrics (p : 'a t) source =
  observe_source metrics source;
  run_core ?domains ?chunk ~trace ~metrics ~src:(Some (Graph_source.backend source)) p source

let run_faulty_core ?domains ~faults ~trace ~metrics ~src (p : 'a t) source =
  (* The plan rewrites each round's uplink delivery schedule; message
     {e production} — and with it the transcript and the budget check —
     is untouched, so an empty plan is bit-identical to [run_core]'s
     output and transcript.  A crashed id stays crashed: the plan is
     re-applied every round.  Plans address the full vector, so this
     entry point does not chunk. *)
  let n = Graph_source.order source in
  let limit = check_budget_fields ~entry:"Bcc.run_faulty" p.budget ~n in
  let rounds = p.budget.rounds in
  let quiet = Trace.is_null trace && metrics = None in
  let outer = decorated p.name ~round:None ~src in
  Trace.emit trace (Trace.Span_begin { label = outer; n });
  let states =
    maybe_time metrics "refnet_local_phase" (fun () ->
        Parallel.init ?domains ?metrics n (fun i -> p.init (view_of source ~n i)))
  in
  let prev = if quiet then [||] else Array.map (fun s -> View.audit s.view) states in
  let per_round_max = Array.make rounds 0 in
  let per_round_total = Array.make rounds 0 in
  let bcast = Array.make (max 0 (rounds - 1)) 0 in
  let faulted = ref [] in
  let out =
    match p.referee with
    | Referee r ->
      let rst = ref (r.r_init ~n) in
      for round = 1 to rounds do
        let rl = decorated p.name ~round:(Some round) ~src in
        Trace.emit trace (Trace.Span_begin { label = rl; n });
        let sent =
          maybe_time metrics "refnet_local_phase" (fun () ->
              Parallel.init ?domains ?metrics n (fun i -> p.send ~round states.(i)))
        in
        let msgs = Array.make (max 1 n) Message.empty in
        for i = 0 to n - 1 do
          let msg, s = sent.(i) in
          states.(i) <- s;
          msgs.(i) <- msg;
          account ~trace ~metrics ~quiet ~round ~limit ~per_round_max ~per_round_total ~prev
            ~states ~id:(i + 1) (Message.bits msg)
        done;
        let deliveries, injected = Faults.apply faults (if n = 0 then [||] else msgs) in
        (match metrics with
        | Some m when injected <> [] ->
          Metrics.Counter.add
            (Metrics.Counter.counter m "refnet_faults_injected_total")
            (List.length injected)
        | _ -> ());
        if not (Trace.is_null trace) then
          List.iter
            (fun (id, fault) -> Trace.emit trace (Trace.Fault_injected { id; fault }))
            injected;
        faulted := List.rev_append (List.map fst injected) !faulted;
        maybe_time metrics "refnet_referee_phase" (fun () ->
            List.iter
              (fun (id, msg) ->
                rst := r.r_absorb ~n ~round !rst ~id msg;
                if not (Trace.is_null trace) then
                  Trace.emit trace (Trace.Referee_absorb { id; bits = Message.bits msg }))
              deliveries);
        (match metrics with
        | Some m ->
          Metrics.Counter.add (Metrics.Counter.counter m "refnet_messages_total") n;
          Metrics.Counter.add
            (Metrics.Counter.counter m "refnet_absorbs_total")
            (List.length deliveries)
        | None -> ());
        if round < rounds then
          broadcast_phase ~trace ~metrics ~round ~limit ~bcast ~states p r rst;
        Trace.emit trace
          (Trace.Referee_done
             {
               label = rl;
               n;
               max_bits = per_round_max.(round - 1);
               total_bits = per_round_total.(round - 1);
             });
        Trace.emit trace (Trace.Span_end { label = rl; n })
      done;
      maybe_time metrics "refnet_referee_phase" (fun () -> r.r_finish ~n !rst)
  in
  let t =
    finish_transcript ~rounds ~limit ~per_round_max ~per_round_total ~bcast
      ~faulted_ids:(List.sort_uniq Stdlib.compare !faulted)
  in
  observe_run metrics ~rounds t;
  Trace.emit trace
    (Trace.Referee_done { label = outer; n; max_bits = t.max_bits; total_bits = t.total_bits });
  Trace.emit trace (Trace.Span_end { label = outer; n });
  (out, t)

let run_faulty ?(faults = Faults.empty) ?domains ?(trace = Trace.null) ?metrics (p : 'a t) g =
  run_faulty_core ?domains ~faults ~trace ~metrics ~src:None p (Graph_source.of_graph g)

let run_faulty_source ?(faults = Faults.empty) ?domains ?(trace = Trace.null) ?metrics (p : 'a t)
    source =
  observe_source metrics source;
  run_faulty_core ?domains ~faults ~trace ~metrics
    ~src:(Some (Graph_source.backend source))
    p source

(* ---------- hardening ---------- *)

type 's bcc_hardened = {
  bh_inner : 's;
  bh_seen : bool array; (* this round's arrivals; reset at round close *)
  mutable bh_missing : int list;
  mutable bh_malformed : int list;
  mutable bh_duplicated : int list;
  mutable bh_broke : bool; (* the inner broadcast raised *)
}

(* A round closes when the referee must speak (broadcast, or finish):
   any id that never arrived this round is missing.  In a fault-free
   run the engine absorbs every id every round, so the scan never
   fires. *)
let close_round ~n h =
  for id = n downto 1 do
    if not h.bh_seen.(id - 1) then h.bh_missing <- id :: h.bh_missing
  done;
  Array.fill h.bh_seen 0 n false

let bcc_report h =
  {
    Verdict.missing = List.sort_uniq Stdlib.compare h.bh_missing;
    malformed = List.sort_uniq Stdlib.compare h.bh_malformed;
    duplicated = List.sort_uniq Stdlib.compare h.bh_duplicated;
    undetermined = [];
  }

let harden_referee ?(malformed = Protocol.default_malformed) ?on_fault (Referee s) =
  Referee
    {
      r_init =
        (fun ~n ->
          {
            bh_inner = s.r_init ~n;
            bh_seen = Array.make n false;
            bh_missing = [];
            bh_malformed = [];
            bh_duplicated = [];
            bh_broke = false;
          });
      r_absorb =
        (fun ~n ~round h ~id msg ->
          if id < 1 || id > n then begin
            (* A sender id outside the network is itself channel
               corruption; there is no slot to mark missing. *)
            h.bh_malformed <- id :: h.bh_malformed;
            h
          end
          else if h.bh_seen.(id - 1) then begin
            h.bh_duplicated <- id :: h.bh_duplicated;
            h
          end
          else begin
            h.bh_seen.(id - 1) <- true;
            match s.r_absorb ~n ~round h.bh_inner ~id msg with
            | inner -> { h with bh_inner = inner }
            | exception e when malformed e ->
              h.bh_malformed <- id :: h.bh_malformed;
              h
          end);
      r_broadcast =
        (fun ~n ~round h ->
          close_round ~n h;
          match s.r_broadcast ~n ~round h.bh_inner with
          | inner, reply -> ({ h with bh_inner = inner }, reply)
          | exception e when malformed e ->
            (* The inner referee choked on a faulted transcript; keep
               its last consistent state and broadcast nothing.  The
               run can no longer end [Decided]. *)
            h.bh_broke <- true;
            (h, Message.empty));
      r_finish =
        (fun ~n h ->
          close_round ~n h;
          let report = bcc_report h in
          if h.bh_broke then
            Verdict.Inconclusive
              ("the referee could not form a broadcast: " ^ Verdict.report_summary report)
          else if Verdict.channel_clean report then
            match s.r_finish ~n h.bh_inner with
            | v -> Verdict.Decided v
            | exception e when malformed e ->
              Verdict.Inconclusive "the referee could not decode a clean transcript"
          else begin
            let partial =
              match s.r_finish ~n h.bh_inner with
              | v -> Some v
              | exception e when malformed e -> None
            in
            match on_fault with
            | Some f -> f report partial
            | None ->
              Verdict.Inconclusive ("channel faults detected: " ^ Verdict.report_summary report)
          end);
    }

let harden ?malformed ?on_fault (p : 'a t) =
  {
    name = p.name ^ "+hardened";
    budget = p.budget;
    init = p.init;
    send = p.send;
    receive = p.receive;
    referee = harden_referee ?malformed ?on_fault p.referee;
  }

(* ---------- embeddings ---------- *)

let of_one_round (p : 'a Protocol.t) : 'a t =
  {
    name = p.Protocol.name;
    budget = { rounds = 1; bits_per_round = unbounded };
    init = make_state;
    send = (fun ~round:_ s -> (p.Protocol.local s.view, s));
    receive = (fun ~round:_ ~broadcast:_ s -> s);
    referee =
      Referee
        {
          r_init = (fun ~n -> Protocol.start p.Protocol.referee ~n);
          r_absorb = (fun ~n:_ ~round:_ f ~id msg -> Protocol.feed f ~id msg);
          r_broadcast = (fun ~n:_ ~round:_ f -> (f, Message.empty));
          r_finish = (fun ~n:_ f -> Protocol.finish f);
        };
  }

module Adaptive_degeneracy = struct
  let degree_bound degrees =
    (* Largest d with at least d + 1 vertices of degree >= d.  A subgraph
       of minimum degree delta has delta + 1 vertices whose G-degrees are
       all >= delta, so degeneracy(G) <= this bound. *)
    let sorted = Array.copy degrees in
    Array.sort (fun a b -> Stdlib.compare b a) sorted;
    let best = ref 0 in
    Array.iteri
      (fun i d ->
        (* i is 0-based: position i+1 in the descending order. *)
        let candidate = min d i in
        if candidate > !best then best := candidate)
      sorted;
    !best

  type adeg_state = {
    ad_degrees : int array;
    ad_feed : Graph.t option Protocol.feed option; (* live from round 2 *)
  }

  let protocol () : Graph.t option t =
    {
      name = "bcc-adaptive-degeneracy";
      budget = { rounds = 2; bits_per_round = unbounded };
      init = make_state;
      send =
        (fun ~round s ->
          let v = s.view in
          match round with
          | 1 ->
            let w = Bit_writer.create () in
            Codes.write_fixed w ~width:(Bounds.id_bits (View.n v)) (View.deg v);
            (Message.of_writer w, s)
          | _ ->
            (* Round 2: the broadcast carries k-hat. *)
            let k_hat =
              match s.extra with
              | b :: _ -> Codes.read_fixed (Message.reader b) ~width:(Bounds.id_bits (View.n v))
              | [] -> invalid_arg "bcc-adaptive-degeneracy: missing broadcast"
            in
            let k = max 1 k_hat in
            let q = Degeneracy_protocol.reconstruct ~k () in
            (q.Protocol.local v, s));
      receive = (fun ~round:_ ~broadcast s -> push_extra s broadcast);
      referee =
        Referee
          {
            r_init = (fun ~n -> { ad_degrees = Array.make (max 1 n) 0; ad_feed = None });
            r_absorb =
              (fun ~n ~round st ~id msg ->
                match round with
                | 1 ->
                  st.ad_degrees.(id - 1) <-
                    Codes.read_fixed (Message.reader msg) ~width:(Bounds.id_bits n);
                  st
                | _ -> (
                  match st.ad_feed with
                  | Some f -> { st with ad_feed = Some (Protocol.feed f ~id msg) }
                  | None -> invalid_arg "bcc-adaptive-degeneracy: round 2 before broadcast"));
            r_broadcast =
              (fun ~n ~round:_ st ->
                let k_hat = degree_bound (Array.sub st.ad_degrees 0 n) in
                let w = Bit_writer.create () in
                Codes.write_fixed w ~width:(Bounds.id_bits n) k_hat;
                let k = max 1 k_hat in
                let q = Degeneracy_protocol.reconstruct ~k () in
                ( { st with ad_feed = Some (Protocol.start q.Protocol.referee ~n) },
                  Message.of_writer w ));
            r_finish =
              (fun ~n st ->
                if n = 0 then Some (Graph.empty 0)
                else
                  match st.ad_feed with
                  | Some f -> Protocol.finish f
                  | None -> invalid_arg "bcc-adaptive-degeneracy: finish before round 2");
          };
    }
end
