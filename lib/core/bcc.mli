(** Broadcast congested clique (BCC) engine — the paper's closing
    question ("investigate properties that can(not) be decided by a
    frugal protocol with fixed number of rounds") as a
    bandwidth-parameterized executable model.

    The model extends Definition 1 round-wise: in each of a fixed
    number of rounds every node sends one message to the referee, then
    the referee broadcasts one reply heard by all nodes (the referee is
    a universal vertex, so a broadcast is one message per incident edge
    with identical content).  Nodes carry state between rounds.  The
    {!budget} makes the bandwidth explicit: no node message — and no
    referee broadcast — may exceed [bits_per_round n] bits, enforced at
    send time ({!Budget_exceeded}), so a protocol's rounds-vs-bits
    claim is checked on every run rather than asserted in a comment.

    The engine is re-based on the full execution stack: node inits
    consume {!View.t} slices built from {!Graph_source} backends
    (materialized / CSR / implicit), send phases fan across the
    {!Parallel} domain pool, the referee absorbs through a streaming
    per-round {!round_stream} (constant live messages under [?chunk]),
    and every round emits {!Trace} spans and {!Metrics}.  Per-round
    spans are labelled [name[round=r]] — the decoration is peeled by
    {!Bound_audit.classify_label} exactly like the engine's outermost
    [[src=...]] token, so each round's bits audit against the
    protocol's per-round budget in [refnet report].

    Transcripts are bit-identical at every domain count, chunk size and
    {!Graph_source} backend presenting the same labelled graph. *)

open Refnet_graph

(** The explicit bandwidth contract: [rounds] node->referee phases,
    each message at most [bits_per_round n] bits (the broadcast is held
    to the same cap). *)
type budget = { rounds : int; bits_per_round : int -> int }

(** [budget ~rounds ~bits_per_round] — the checked constructor.
    Prefer it over a record literal: a nonsensical contract is rejected
    here, at construction, rather than surfacing later.
    @raise Invalid_argument if [rounds < 1], naming the field.  The cap
    function can only be validated once [n] is known; {!run} and
    {!run_faulty} reject [bits_per_round n < 1] at entry, before any
    message is produced. *)
val budget : rounds:int -> bits_per_round:(int -> int) -> budget

(** [unbounded] — no per-round cap ([fun _ -> max_int]); for lifted
    one-round protocols and adaptive protocols whose message sizes are
    data-dependent. *)
val unbounded : int -> int

(** [log_budget ~c] is [fun n -> c * Bounds.id_bits n] — the
    O(log n)-bits-per-round regime at constant [c].
    @raise Invalid_argument if [c < 1]. *)
val log_budget : c:int -> int -> int

(** Raised at send time when a message breaks the budget.  [id] is the
    offending node, or [0] when the referee's broadcast itself is over
    the cap. *)
exception Budget_exceeded of { round : int; id : int; bits : int; limit : int }

type node_state
(** Opaque per-node memory between rounds: the node's {!View.t} (built
    once by the engine, straight from the backend's neighbour slice —
    no [int list] copy) plus a message stash. *)

val make_state : View.t -> node_state
(** [make_state view] is the fresh state around an engine-built view
    with an empty stash. *)

val state_view : node_state -> View.t
(** [state_view s] is the node's view — the only window onto the graph
    a node-local function has, as in the one-round model. *)

(** [state_extra s] is the stashed messages, most recent first
    (broadcasts land here via the conventional {!push_extra} in
    [receive]). *)
val state_extra : node_state -> Message.t list

val push_extra : node_state -> Message.t -> node_state

(** The referee side of a BCC protocol: streaming state threaded
    through all rounds.  [r_absorb] consumes one node message at a
    time (the chunked feed discipline of {!Protocol.stream});
    [r_broadcast] closes rounds [1 .. rounds - 1] with the reply;
    [r_finish] closes the last round with the decision. *)
type ('s, 'a) round_stream = {
  r_init : n:int -> 's;
  r_absorb : n:int -> round:int -> 's -> id:int -> Message.t -> 's;
  r_broadcast : n:int -> round:int -> 's -> 's * Message.t;
  r_finish : n:int -> 's -> 'a;
}

type 'a referee = Referee : ('s, 'a) round_stream -> 'a referee

type 'a t = {
  name : string;
  budget : budget;
  init : View.t -> node_state;  (** initial state from the node's view *)
  send : round:int -> node_state -> Message.t * node_state;
      (** per-round message; must fit the budget *)
  receive : round:int -> broadcast:Message.t -> node_state -> node_state;
      (** deliver the referee's broadcast after a round *)
  referee : 'a referee;
}

type transcript = {
  rounds : int;
  bits_limit : int;  (** the enforced per-round cap, [bits_per_round n] *)
  per_round_max_bits : int array;  (** largest node message, per round *)
  per_round_total_bits : int array;  (** summed node bits, per round *)
  broadcast_bits : int array;  (** referee broadcasts (rounds - 1 entries) *)
  max_bits : int;  (** largest node message overall *)
  total_bits : int;  (** all node bits over all rounds *)
  faulted_ids : int list;
}

(** [run p g] executes the rounds over the materialized graph.
    @raise Invalid_argument if [p.budget.rounds < 1] or
    [p.budget.bits_per_round n < 1], naming the offending field —
    checked before any message is produced, never reported as a
    spurious {!Budget_exceeded}.
    @raise Budget_exceeded when a message breaks the budget. *)
val run :
  ?domains:int ->
  ?chunk:int ->
  ?trace:Trace.sink ->
  ?metrics:Metrics.t ->
  'a t ->
  Graph.t ->
  'a * transcript

(** [run_source p src] is {!run} over any backend; spans and metrics
    carry the [[src=<backend>]] decoration outermost (outside
    [[round=r]]), and [?chunk] bounds live messages per round to
    O(chunk) with a bit-identical transcript. *)
val run_source :
  ?domains:int ->
  ?chunk:int ->
  ?trace:Trace.sink ->
  ?metrics:Metrics.t ->
  'a t ->
  Graph_source.t ->
  'a * transcript

(** [run_faulty ~faults p g] re-applies the fault plan to every round's
    uplink (a crashed node stays crashed; the channel is hit once per
    round).  Message production — and hence the transcript and the
    budget check — measures what nodes {e sent}; the referee sees the
    post-fault deliveries.  An empty plan is bit-identical to {!run}.
    Fault plans address the full message vector, so this entry point
    does not chunk. *)
val run_faulty :
  ?faults:Faults.plan ->
  ?domains:int ->
  ?trace:Trace.sink ->
  ?metrics:Metrics.t ->
  'a t ->
  Graph.t ->
  'a * transcript

val run_faulty_source :
  ?faults:Faults.plan ->
  ?domains:int ->
  ?trace:Trace.sink ->
  ?metrics:Metrics.t ->
  'a t ->
  Graph_source.t ->
  'a * transcript

(** [harden_referee r] is the BCC analogue of
    {!Protocol.harden_referee}: absorbs that raise a decoding exception
    ([malformed], defaulting to {!Protocol.default_malformed}) are
    contained and recorded, out-of-range senders and per-round
    duplicates are recorded, and ids whose message never arrived in
    some round are reported missing — so a crashed node degrades the
    run to [Degraded]/[Inconclusive] instead of raising.  A clean
    channel yields [Decided] of the inner answer.  [on_fault] receives
    the accumulated report and the inner referee's salvage answer (or
    [None] if finishing raised). *)
val harden_referee :
  ?malformed:(exn -> bool) ->
  ?on_fault:(Verdict.fault_report -> 'a option -> 'a Verdict.t) ->
  'a referee ->
  'a Verdict.t referee

(** [harden p] wraps the whole protocol: referee hardened as above,
    name suffixed [+hardened] (which exempts it from the bound audit,
    as for one-round protocols). *)
val harden :
  ?malformed:(exn -> bool) ->
  ?on_fault:(Verdict.fault_report -> 'a option -> 'a Verdict.t) ->
  'a t ->
  'a Verdict.t t

(** [of_one_round p] embeds a one-round protocol: one round, unbounded
    budget, the streaming referee fed through {!Protocol.start} /
    {!Protocol.feed} / {!Protocol.finish} — no message vector is ever
    materialized. *)
val of_one_round : 'a Protocol.t -> 'a t

(** The two-round adaptive reconstruction: the one-round protocol of
    Theorem 5 must fix [k] in advance — every node needs it to size the
    power sums — whereas two rounds reconstruct {e any} graph with
    message sizes matched to its actual degeneracy.  Round 1 ships the
    degree sequence, the referee derives an upper bound
    [k-hat >= degeneracy(G)] and broadcasts it, round 2 is Algorithm 3
    at [k = k-hat] (streamed straight into the degeneracy referee's
    feed). *)
module Adaptive_degeneracy : sig
  (** [degree_bound degrees] is the referee's round-1 inference: the
      largest [d] such that at least [d + 1] nodes have degree at least
      [d] — an upper bound on the degeneracy computable from degrees
      alone (any subgraph of minimum degree [delta] has [delta + 1]
      vertices of degree at least [delta] in [G]). *)
  val degree_bound : int array -> int

  (** [protocol ()] reconstructs arbitrary graphs in two rounds with
      round-2 messages of [O(k_hat^2 log n)] bits (data-dependent, so
      the budget is {!unbounded} and the label is audit-exempt). *)
  val protocol : unit -> Graph.t option t
end
