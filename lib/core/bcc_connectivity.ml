open Refnet_bits
open Refnet_graph

(* The referee's evolving picture of the graph: degrees from round 1,
   how many neighbours each node has announced so far, a union-find over
   the announced (real) edges, and the decision once one is locked in.
   [degrees.(i) = -1] until node [i + 1]'s round-1 message parses, so a
   salvaged run never mistakes a crashed degree for 0. *)
type ref_state = {
  degrees : int array;
  announced : int array;
  uf : Union_find.t;
  mutable decision : bool option;
}

(* Sound either way: a one-component union-find over announced edges is
   a connectivity certificate (announced edges are real), and
   "disconnected" is claimed only once every node has announced exactly
   its round-1 degree — full adjacency knowledge. *)
let decide ~n st =
  if n = 0 then Some true
  else if Union_find.count st.uf = 1 then Some true
  else begin
    let full = ref true in
    for i = 0 to n - 1 do
      if st.degrees.(i) < 0 || st.announced.(i) <> st.degrees.(i) then full := false
    done;
    if !full then Some false else None
  end

(* The broadcast is a single resolved bit; nodes parse defensively so a
   faulted (empty) broadcast reads as "keep going". *)
let resolved_of extra =
  match extra with
  | b :: _ -> Message.bits b >= 1 && Bit_reader.read_bit (Message.reader b)
  | [] -> false

let protocol ~rounds ~bandwidth () : bool option Bcc.t =
  if rounds < 1 then invalid_arg "Bcc_connectivity.protocol: rounds must be at least 1";
  if bandwidth < 1 then invalid_arg "Bcc_connectivity.protocol: bandwidth must be at least 1";
  {
    Bcc.name = Printf.sprintf "bcc-connectivity-%d" bandwidth;
    budget = { Bcc.rounds; bits_per_round = Bcc.log_budget ~c:bandwidth };
    init = Bcc.make_state;
    send =
      (fun ~round s ->
        let v = Bcc.state_view s in
        let w = Bounds.id_bits (View.n v) in
        if round = 1 then begin
          let wtr = Bit_writer.create () in
          Codes.write_fixed wtr ~width:w (View.deg v);
          (Message.of_writer wtr, s)
        end
        else if resolved_of (Bcc.state_extra s) then (Message.empty, s)
        else begin
          (* The next batch of up to [bandwidth] neighbours, smallest
             first; nothing once the list is exhausted. *)
          let start = (round - 2) * bandwidth in
          let stop = start + bandwidth in
          if start >= View.deg v then (Message.empty, s)
          else begin
            let wtr = Bit_writer.create () in
            let _ =
              View.fold_neighbors v 0 (fun idx nb ->
                  if idx >= start && idx < stop then Codes.write_fixed wtr ~width:w nb;
                  idx + 1)
            in
            (Message.of_writer wtr, s)
          end
        end);
    receive = (fun ~round:_ ~broadcast s -> Bcc.push_extra s broadcast);
    referee =
      Bcc.Referee
        {
          r_init =
            (fun ~n ->
              {
                degrees = Array.make (max 1 n) (-1);
                announced = Array.make (max 1 n) 0;
                uf = Union_find.create (max 1 n);
                decision = None;
              });
          r_absorb =
            (fun ~n ~round st ~id msg ->
              let w = Bounds.id_bits n in
              let bits = Message.bits msg in
              if round = 1 then begin
                if bits <> w then raise Message.Malformed;
                let d = Codes.read_fixed (Message.reader msg) ~width:w in
                if d > n - 1 then raise Message.Malformed;
                st.degrees.(id - 1) <- d;
                st
              end
              else begin
                if w > 0 && bits mod w <> 0 then raise Message.Malformed;
                let count = if w = 0 then 0 else bits / w in
                let r = Message.reader msg in
                for _ = 1 to count do
                  let nb = Codes.read_fixed r ~width:w in
                  if nb < 1 || nb > n || nb = id then raise Message.Malformed;
                  ignore (Union_find.union st.uf (id - 1) (nb - 1))
                done;
                st.announced.(id - 1) <- st.announced.(id - 1) + count;
                st
              end);
          r_broadcast =
            (fun ~n ~round:_ st ->
              (match st.decision with
              | Some _ -> ()
              | None -> st.decision <- decide ~n st);
              if n = 0 then (st, Message.empty)
              else begin
                let wtr = Bit_writer.create () in
                Bit_writer.add_bit wtr (st.decision <> None);
                (st, Message.of_writer wtr)
              end);
          r_finish =
            (fun ~n st ->
              if n = 0 then Some true
              else
                match st.decision with Some b -> Some b | None -> decide ~n st);
        };
  }

let rounds_for ~bandwidth ~max_degree =
  if bandwidth < 1 then invalid_arg "Bcc_connectivity.rounds_for: bandwidth must be at least 1";
  if max_degree < 0 then invalid_arg "Bcc_connectivity.rounds_for: max_degree must be nonnegative";
  max 2 (1 + ((max_degree + bandwidth - 1) / bandwidth))

let hardened ~rounds ~bandwidth () =
  Bcc.harden
    ~on_fault:(fun report partial ->
      match partial with
      | Some (Some true)
        when report.Verdict.malformed = [] && report.Verdict.duplicated = [] ->
        (* A one-component union-find over the surviving announcements
           is still a true certificate; crashes only hide edges. *)
        Verdict.Degraded (Some true, report)
      | _ ->
        Verdict.Inconclusive
          ("connectivity not salvageable: " ^ Verdict.report_summary report))
    (protocol ~rounds ~bandwidth ())

let circulant_connected ~n offsets =
  if n <= 1 then true
  else begin
    let rec gcd a b = if b = 0 then a else gcd b (a mod b) in
    List.fold_left (fun acc o -> gcd acc (abs o)) n offsets = 1
  end
