open Refnet_graph

let bipartiteness_oracle : bool Protocol.t =
  Protocol.rename "bipartiteness-oracle"
    (Protocol.map_output Bipartite.is_bipartite Bounded_degree.full_information)

let odd_cycle_gadget g s t =
  let n = Graph.order g in
  if s < 1 || s > n || t < 1 || t > n || s = t then
    invalid_arg "Bipartite_reduction.odd_cycle_gadget: bad vertex pair";
  Graph.add_edges (Graph.add_vertices g 2) [ (s, n + 1); (n + 1, n + 2); (n + 2, t) ]

let connectivity ~(oracle : bool Protocol.t) ~left ~right : bool Protocol.t =
  let local v =
    let n = View.n v in
    let id = View.id v in
    let neighbors = View.neighbors v in
    let size = n + 2 in
    let gview nbrs = View.make ~n:size ~id ~neighbors:nbrs in
    (* Three shapes, as in Algorithm 2: unchanged, playing s (sees n+1),
       playing t (sees n+2). *)
    let m0 = oracle.local (gview neighbors) in
    let ms = oracle.local (gview (neighbors @ [ n + 1 ])) in
    let mt = oracle.local (gview (neighbors @ [ n + 2 ])) in
    (* Degree travels along for the isolated-vertex corner case. *)
    let w = Refnet_bits.Bit_writer.create () in
    Refnet_bits.Codes.write_nonneg w (List.length neighbors);
    Message.concat [ Message.of_writer w; Message.bundle [ m0; ms; mt ] ]
  in
  let global ~n msgs =
    let size = n + 2 in
    let parse i =
      let r = Message.reader msgs.(i - 1) in
      let deg = Refnet_bits.Codes.read_nonneg r in
      (* An array, not a list: [part] is read per membership probe.
         Framed parts must be decoded left to right, so spell the reads
         out rather than lean on Array.init's traversal order. *)
      let m0 = Message.read_framed r in
      let ms = Message.read_framed r in
      let mt = Message.read_framed r in
      (deg, [| m0; ms; mt |])
    in
    let parsed = Parallel.init n (fun i -> parse (i + 1)) in
    let deg i = fst parsed.(i - 1) in
    let part i j = (snd parsed.(i - 1)).(j) in
    (* Same-component query through the bipartiteness oracle: feed its
       streaming referee directly, fabricating the two gadget vertices'
       messages on the fly. *)
    let connected s t =
      let feed = ref (Protocol.start oracle.referee ~n:size) in
      for i = 1 to n do
        feed :=
          Protocol.feed !feed ~id:i
            (if i = s then part i 1 else if i = t then part i 2 else part i 0)
      done;
      feed :=
        Protocol.feed !feed ~id:(n + 1)
          (oracle.local (View.make ~n:size ~id:(n + 1) ~neighbors:[ s; n + 2 ]));
      feed :=
        Protocol.feed !feed ~id:(n + 2)
          (oracle.local (View.make ~n:size ~id:(n + 2) ~neighbors:[ t; n + 1 ]));
      (* Bipartite gadget <=> s,t disconnected. *)
      not (Protocol.finish !feed)
    in
    match (left, right) with
    | [], [] -> true
    | [], [ _ ] | [ _ ], [] -> true
    | _ ->
      if n >= 2 && Array.exists (fun (d, _) -> d = 0) parsed then false
      else begin
        let class_connected = function
          | [] | [ _ ] -> true
          | anchor :: rest ->
            (* Each membership query is an independent gadget simulation;
               fan them out like the other reduction sweeps. *)
            Array.for_all Fun.id
              (Parallel.map_array (fun v -> connected anchor v) (Array.of_list rest))
        in
        (* No isolated vertices, so if both classes are internally single
           components, any edge (there is one: degrees are positive)
           bridges them. *)
        ignore deg;
        class_connected left && class_connected right
      end
  in
  { name = "delta-connectivity[" ^ oracle.name ^ "]"; local; referee = Protocol.batch global }
