type shape = Log_n | K_log_n of int | K2_log_n of int | Log_sq | Linear

let shape_units shape n =
  let w = Bounds.id_bits n in
  match shape with
  | Log_n -> w
  | K_log_n k -> max 1 (k * w)
  | K2_log_n k -> max 1 (k * k * w)
  | Log_sq -> max 1 (w * w)
  | Linear -> max 1 n

let pp_shape fmt = function
  | Log_n -> Format.pp_print_string fmt "log n"
  | K_log_n k -> Format.fprintf fmt "%d*log n" k
  | K2_log_n k -> Format.fprintf fmt "%d^2*log n" k
  | Log_sq -> Format.pp_print_string fmt "log^2 n"
  | Linear -> Format.pp_print_string fmt "n"

let shape_string s = Format.asprintf "%a" pp_shape s

type budget = { b_shape : shape; c_max : float; n_min : int }

(* ---------- label parsing ---------- *)

let has_substring s sub =
  let ls = String.length s and lb = String.length sub in
  let rec go i = i + lb <= ls && (String.sub s i lb = sub || go (i + 1)) in
  go 0

let prefixed ~prefix s =
  let lp = String.length prefix in
  if String.length s >= lp && String.sub s 0 lp = prefix then
    Some (String.sub s lp (String.length s - lp))
  else None

(* ["3-reconstruct..."] -> [Some 3] when the digits are followed by the
   expected marker. *)
let leading_int s =
  let n = String.length s in
  let rec stop i = if i < n && s.[i] >= '0' && s.[i] <= '9' then stop (i + 1) else i in
  let i = stop 0 in
  if i = 0 then None
  else match int_of_string_opt (String.sub s 0 i) with
    | Some k -> Some (k, String.sub s i (n - i))
    | None -> None

(* ["...[trace=<16hex>]"]: the serve layer tags every session span with
   its 64-bit flight-recorder trace id, outside every other decoration —
   peeled before [src=].  Budget-transparent: the same protocol sends
   the same bits whoever asked for the run. *)
let split_trace label =
  let l = String.length label in
  if l < 8 || label.[l - 1] <> ']' then None
  else
    let rec find i =
      if i < 0 then None
      else if String.sub label i 7 = "[trace=" then Some i
      else find (i - 1)
    in
    match find (l - 8) with
    | None -> None
    | Some i ->
      let tok = String.sub label (i + 7) (l - 1 - (i + 7)) in
      let hex_ok c = (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f') in
      if String.length tok = 16 && String.for_all hex_ok tok then
        Some (String.sub label 0 i, tok)
      else None

(* ["...[src=<backend>]"]: the engine's *_source entry points append
   the graph backend outermost — after [parts=] and the
   +sealed/+hardened suffixes — so it is peeled first.  The token
   charset is the backend names' ([a-z0-9:.-], possibly empty so
   sprintf-format instantiation in the lint classifies). *)
let src_token_ok tok =
  String.for_all
    (fun c -> (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c = ':' || c = '.' || c = '-')
    tok

let split_src label =
  let l = String.length label in
  if l < 6 || label.[l - 1] <> ']' then None
  else
    let rec find i =
      if i < 0 then None
      else if String.sub label i 5 = "[src=" then Some i
      else find (i - 1)
    in
    match find (l - 6) with
    | None -> None
    | Some i ->
      let tok = String.sub label (i + 5) (l - 1 - (i + 5)) in
      if src_token_ok tok then Some (String.sub label 0 i, tok) else None

(* ["...[round=<r>]"]: {!Bcc} labels each round's span with the round
   index, inside the [src=] decoration — peeled second, right after
   [src=].  Rounds are 1-based, so [r >= 1]; budgets are
   round-transparent (the per-round cap is the same every round). *)
let split_round label =
  let l = String.length label in
  if l < 9 || label.[l - 1] <> ']' then None
  else
    let rec find i =
      if i < 0 then None
      else if String.sub label i 7 = "[round=" then Some i
      else find (i - 1)
    in
    match find (l - 9) with
    | None -> None
    | Some i ->
      let tok = String.sub label (i + 7) (l - 1 - (i + 7)) in
      if tok <> "" && String.for_all (fun c -> c >= '0' && c <= '9') tok then
        match int_of_string_opt tok with
        | Some r when r >= 1 -> Some (String.sub label 0 i, r)
        | _ -> None
      else None

(* ["...[parts=4]"] -> [Some 4]. *)
let parts_of label =
  match String.index_opt label '[' with
  | None -> None
  | Some i -> (
    match prefixed ~prefix:"parts=" (String.sub label (i + 1) (String.length label - i - 1)) with
    | Some rest -> (
      match leading_int rest with Some (k, "]") -> Some k | _ -> None)
    | None -> None)

(* The constants are derived from the exact message layouts in the
   protocol modules (DESIGN.md §10 walks through each derivation):

   - forest: 4 * id_bits exactly (Bounds.forest_message_bits).
   - degeneracy-k (fixed layout): (2 + k(k+3)/2) * id_bits, and
     (2 + k(k+3)/2) / k^2 <= 4 for every k >= 1 (equality at k = 1).
     The compact layout gamma-codes the power sums, which can exceed the
     fixed layout on dense small graphs; 9 covers its worst framing
     overhead.
   - generalized degeneracy: (2 + k(k+3)) * id_bits <= 6 k^2 id_bits
     (equality at k = 1).
   - bounded-degree-d: (1 + d) * id_bits <= 2 d id_bits (equality at
     d = 1).
   - coalition with k parts: per_node_bound of Connectivity_parts —
     roughly 2 * ceil((n-1)/(n/k)) * id_bits + a header, which peaks at
     small n/uneven parts; 6 covers every partition the CLI can build
     once n >= 4.
   - sketch: rounds * levels * 93 bits with rounds ≈ log n + 2 and
     levels ≈ 2 log n + 2 over a fixed 31-bit field, i.e. ≈ 186 log² n
     plus lower-order terms; 256 absorbs the additive terms from n >= 8.
   - full-information: exactly n bits (an incidence row). *)
let budget_of_label label =
  (* The session trace id is peeled outermost: observability tags never
     change what the protocol sends. *)
  let label = match split_trace label with Some (stem, _) -> stem | None -> label in
  (* Backend decorations never change the budget: the same protocol on
     the same graph sends the same bits whatever representation the
     engine reads it from. *)
  let label = match split_src label with Some (stem, _) -> stem | None -> label in
  (* The round index is budget-transparent too: the BCC cap applies to
     every round alike, so [p[round=r]] audits under [p]'s budget. *)
  let label = match split_round label with Some (stem, _) -> stem | None -> label in
  if has_substring label "+sealed" || has_substring label "+hardened" then None
  else if label = "forest-reconstruct" || label = "forest-recognize" then
    Some { b_shape = Log_n; c_max = 4.0; n_min = 1 }
  else if label = "full-information" then Some { b_shape = Linear; c_max = 1.0; n_min = 1 }
  else
    match prefixed ~prefix:"bcc-connectivity-" label with
    | Some rest -> (
      (* Every message is at most bandwidth * id_bits n bits — enforced
         at send time by {!Bcc.check_budget} — so the fitted constant
         is exactly 1. *)
      match leading_int rest with
      | Some (c, "") when c >= 1 -> Some { b_shape = K_log_n c; c_max = 1.0; n_min = 1 }
      | _ -> None)
    | None -> (
    match prefixed ~prefix:"degeneracy-" label with
    | Some rest -> (
      match leading_int rest with
      | Some (k, "-reconstruct") -> Some { b_shape = K2_log_n k; c_max = 4.0; n_min = 1 }
      | Some (k, "-reconstruct-compact") -> Some { b_shape = K2_log_n k; c_max = 9.0; n_min = 1 }
      | _ -> None)
    | None -> (
      match prefixed ~prefix:"generalized-degeneracy-" label with
      | Some rest -> (
        match leading_int rest with
        | Some (k, "-reconstruct") -> Some { b_shape = K2_log_n k; c_max = 6.0; n_min = 1 }
        | _ -> None)
      | None -> (
        match prefixed ~prefix:"bounded-degree-" label with
        | Some rest -> (
          match leading_int rest with
          | Some (d, "") -> Some { b_shape = K_log_n d; c_max = 2.0; n_min = 1 }
          | _ -> None)
        | None ->
          if prefixed ~prefix:"coalition-connectivity" label <> None then
            match parts_of label with
            | Some k -> Some { b_shape = K_log_n k; c_max = 6.0; n_min = 4 }
            | None -> None
          else if prefixed ~prefix:"sketch-connectivity" label <> None then
            Some { b_shape = Log_sq; c_max = 256.0; n_min = 8 }
          else None)))

(* ---------- grammar classification ---------- *)

type label_class = Budgeted of budget | Exempt | Malformed of string

let strip_suffix ~suffix s =
  let ls = String.length s and lx = String.length suffix in
  if ls >= lx && String.sub s (ls - lx) lx = suffix then Some (String.sub s 0 (ls - lx))
  else None

(* Validates the stem (decorations already peeled): either it belongs to
   one of the budgeted families above and parses exactly, or it is
   outside every budgeted family (no theorem to audit).  [Ok true] means
   budgeted-family stem, [Ok false] means foreign, [Error] means a
   near-miss spelling that would silently escape the audit. *)
let check_stem stem =
  if stem = "forest-reconstruct" || stem = "forest-recognize" || stem = "full-information" then
    Ok true
  else
    match prefixed ~prefix:"generalized-degeneracy-" stem with
    | Some rest -> (
      match leading_int rest with
      | Some (_, "-reconstruct") -> Ok true
      | _ -> Error "must read generalized-degeneracy-<k>-reconstruct")
    | None -> (
      match prefixed ~prefix:"degeneracy-" stem with
      | Some rest -> (
        match leading_int rest with
        | Some (_, "-reconstruct") | Some (_, "-reconstruct-compact") -> Ok true
        | _ -> Error "must read degeneracy-<k>-reconstruct[-compact]")
      | None -> (
        match prefixed ~prefix:"bounded-degree-" stem with
        | Some rest -> (
          match leading_int rest with
          | Some (_, "") -> Ok true
          | _ -> Error "must read bounded-degree-<d>")
        | None -> (
          match prefixed ~prefix:"coalition-connectivity" stem with
          | Some "" -> Ok true
          | Some _ -> Error "coalition-connectivity takes only the [parts=<k>] decoration"
          | None -> (
            match prefixed ~prefix:"sketch-connectivity" stem with
            | Some "" -> Ok true
            | Some rest -> (
              match prefixed ~prefix:"(seed=" rest with
              | Some r -> (
                match leading_int r with
                | Some (_, ")") -> Ok true
                | _ -> Error "sketch-connectivity seed must read (seed=<n>)")
              | None -> Error "sketch-connectivity takes only the (seed=<n>) decoration")
            | None -> (
              match prefixed ~prefix:"forest-" stem with
              | Some _ -> Error "unknown forest- label (forest-reconstruct / forest-recognize)"
              | None -> (
                match prefixed ~prefix:"bcc-connectivity-" stem with
                | Some rest -> (
                  match leading_int rest with
                  | Some (c, "") when c >= 1 -> Ok true
                  | _ -> Error "must read bcc-connectivity-<c> with c >= 1")
                | None ->
                  if stem = "bcc-adaptive-degeneracy" then Ok true
                  else (
                    match prefixed ~prefix:"bcc-" stem with
                    | Some _ ->
                      Error
                        "unknown bcc- label (bcc-connectivity-<c> / bcc-adaptive-degeneracy)"
                    | None -> Ok false)))))))

let classify_label label =
  if label = "" then Malformed "empty label"
  else if String.exists (fun c -> Char.code c < 0x20) label then
    Malformed "label contains control characters"
  else begin
    (* Peel the session trace id first — the serve layer tags it outside
       every other decoration.  A leftover "[trace=" is a near-miss
       (wrong placement, or not 16 lowercase hex digits). *)
    let label =
      match split_trace label with
      | Some (stem, _) -> stem
      | None -> label
    in
    if has_substring label "[trace=" then
      Malformed "bad [trace=<id>] decoration (must be outermost, id is 16 lowercase hex digits)"
    else begin
    (* Peel the backend decoration next — the *_source engines append
       it outside everything but the trace tag.  A label that contains
       "[src=" but does not end in a well-formed "[src=<token>]" is a
       near-miss that would dodge both the budget lookup and the
       [parts=] parse below. *)
    let label =
      match split_src label with
      | Some (stem, _) -> stem
      | None -> label
    in
    if has_substring label "[src=" then
      Malformed "bad [src=<backend>] decoration (must be outermost, token charset [a-z0-9:.-])"
    else begin
    (* Peel the round index next — {!Bcc} appends it just inside the
       backend decoration.  A leftover "[round=" is a near-miss (wrong
       placement, or a round below 1). *)
    let label =
      match split_round label with
      | Some (stem, _) -> stem
      | None -> label
    in
    if has_substring label "[round=" then
      Malformed "bad [round=<r>] decoration (must sit just inside [src=], with r >= 1)"
    else begin
    (* Peel the coalition decoration next — {!Coalition.labelled}
       appends it outside any +sealed/+hardened suffix. *)
    let parts_error = ref None in
    let parts, stem0 =
      match String.index_opt label '[' with
      | Some i when String.length label - i > 7 && String.sub label i 7 = "[parts=" -> (
        let inner = String.sub label (i + 7) (String.length label - i - 7) in
        match leading_int inner with
        | Some (k, "]") when k >= 1 -> (Some k, String.sub label 0 i)
        | _ ->
          parts_error := Some "bad [parts=<k>] decoration";
          (None, label))
      | _ -> (None, label)
    in
    let rec peel stem decorated =
      match strip_suffix ~suffix:"+hardened" stem with
      | Some s -> peel s true
      | None -> (
        match strip_suffix ~suffix:"+sealed" stem with
        | Some s -> peel s true
        | None -> (stem, decorated))
    in
    let stem, decorated = peel stem0 false in
    match !parts_error with
    | Some msg -> Malformed msg
    | None -> (
      if String.contains stem '+' then Malformed "unknown +decoration (expected +hardened or +sealed)"
      else
        match check_stem stem with
        | Error msg -> Malformed msg
        | Ok false -> Exempt (* foreign families have no theorem to audit *)
        | Ok true -> (
          match parts with
          | Some _ when stem <> "coalition-connectivity" ->
            Malformed "only coalition-connectivity carries [parts=<k>]"
          | _ ->
            if decorated then Exempt (* hardened/sealed layouts opt out of the audit by design *)
            else
              let canonical =
                match parts with
                | Some k -> Printf.sprintf "%s[parts=%d]" stem k
                | None -> stem
              in
              (match budget_of_label canonical with
              | Some b -> Budgeted b
              | None -> Exempt (* bare coalition-connectivity: parts arrive at run time *))))
    end
    end
    end
  end

(* ---------- auditing ---------- *)

type observation = { o_n : int; o_max_bits : int }

type verdict = {
  v_label : string;
  v_shape : shape;
  v_c_max : float;
  v_c_fit : float;
  v_observations : int;
  v_skipped : int;
  v_worst_n : int;
  v_passed : bool;
}

let audit ~label budget observations =
  let c_fit = ref 0.0 and worst_n = ref 0 and audited = ref 0 and skipped = ref 0 in
  List.iter
    (fun o ->
      if o.o_n < budget.n_min then incr skipped
      else begin
        incr audited;
        let c = float_of_int o.o_max_bits /. float_of_int (shape_units budget.b_shape o.o_n) in
        if c > !c_fit then begin
          c_fit := c;
          worst_n := o.o_n
        end
      end)
    observations;
  {
    v_label = label;
    v_shape = budget.b_shape;
    v_c_max = budget.c_max;
    v_c_fit = !c_fit;
    v_observations = !audited;
    v_skipped = !skipped;
    v_worst_n = !worst_n;
    v_passed = !audited = 0 || !c_fit <= budget.c_max +. 1e-9;
  }

let audit_label label observations =
  match budget_of_label label with
  | None -> None
  | Some b -> Some (audit ~label b observations)

let pp_verdict fmt v =
  Format.fprintf fmt "%-44s %-10s c_max=%-6g c_fit=%-8.3f (worst n=%d, %d obs%s)  %s" v.v_label
    (shape_string v.v_shape) v.v_c_max v.v_c_fit v.v_worst_n v.v_observations
    (if v.v_skipped > 0 then Printf.sprintf ", %d below n_min" v.v_skipped else "")
    (if v.v_passed then "PASS" else "VIOLATED")

let verdict_json v =
  Printf.sprintf
    {|{"c_fit":%.6f,"c_max":%g,"label":%s,"observations":%d,"passed":%b,"shape":%s,"skipped":%d,"worst_n":%d}|}
    v.v_c_fit v.v_c_max
    (Printf.sprintf "%S" v.v_label)
    v.v_observations v.v_passed
    (Printf.sprintf "%S" (shape_string v.v_shape))
    v.v_skipped v.v_worst_n
