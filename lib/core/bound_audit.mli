(** Auditing observed message sizes against the paper's asymptotic
    budgets.

    Each flagship protocol comes with a theorem-shaped budget — e.g.
    Theorem 5's degeneracy reconstruction must fit in [O(k²·log n)] bits
    per node, the coalition connectivity protocol in [O(k·log n)] — and
    an audit checks every observed per-run [max_bits] against
    [c_max · shape(n)], where [shape] is the theorem's growth law in
    units of [Bounds.id_bits n] and [c_max] a concrete constant derived
    from the implementation's exact message layout (see DESIGN.md §10).
    The audit also {e fits} the constant: [c_fit] is the largest
    observed [max_bits / shape(n)] over the sweep, so a protocol passes
    when [c_fit <= c_max] and the report shows how much headroom the
    implementation actually has.

    Small sizes are excluded via [n_min]: a budget is an asymptotic
    claim and additive lower-order terms ([+2] flag bits, sketch header
    fields) dominate at tiny [n], which would force meaninglessly large
    constants. *)

(** The growth law in front of the constant, in units of
    [w = Bounds.id_bits n]: *)
type shape =
  | Log_n  (** [w] — forest reconstruction/recognition (§III.A) *)
  | K_log_n of int  (** [k·w] — bounded-degree, coalition (k parts) *)
  | K2_log_n of int  (** [k²·w] — degeneracy reconstruction (Theorem 5) *)
  | Log_sq  (** [w²] — sketch connectivity (fixed field width) *)
  | Linear  (** [n] — the deliberately non-frugal full-information protocol *)

(** [shape_units shape n] is [shape(n)]: the budget at size [n] with
    [c = 1], always ≥ 1. *)
val shape_units : shape -> int -> int

val pp_shape : Format.formatter -> shape -> unit

type budget = {
  b_shape : shape;
  c_max : float;  (** audited bound: observed [max_bits <= c_max * shape(n)] *)
  n_min : int;  (** sizes below this are recorded but not audited *)
}

(** [budget_of_label label] recovers the budget from a protocol's span
    label as it appears in traces — e.g. ["degeneracy-3-reconstruct"],
    ["coalition-connectivity[parts=4]"], ["sketch-connectivity(seed=7)"].
    [None] for labels without a quantitative theorem to audit
    (hardened/sealed variants change the message layout, reductions are
    deliberately non-frugal, unknown labels). *)
val budget_of_label : string -> budget option

(** Grammar-level classification of a span label.  [budget_of_label]
    answers "does this label carry a budget?"; [classify_label]
    additionally distinguishes labels that are {e deliberately}
    unbudgeted from near-miss spellings that would silently escape the
    audit — the property refnet-lint's span-grammar rule enforces on
    label literals at build time. *)
type label_class =
  | Budgeted of budget
      (** parses inside a budgeted family; round-trips: [classify_label l
          = Budgeted b] iff [budget_of_label l = Some b] *)
  | Exempt
      (** grammatically fine but unaudited by design: [+hardened] /
          [+sealed] layouts, bare ["coalition-connectivity"] (the
          [[parts=k]] decoration arrives at run time), and labels outside
          every budgeted family (reductions, oracles, demo protocols) *)
  | Malformed of string
      (** inside a budgeted family but fails its grammar (typo'd
          decoration, missing [k], unknown [forest-] variant...) — the
          label would silently skip its theorem's audit *)

val classify_label : string -> label_class

type observation = { o_n : int; o_max_bits : int }

type verdict = {
  v_label : string;
  v_shape : shape;
  v_c_max : float;
  v_c_fit : float;  (** max over audited observations of [max_bits / shape(n)] *)
  v_observations : int;  (** audited observations ([n >= n_min]) *)
  v_skipped : int;  (** observations below [n_min] *)
  v_worst_n : int;  (** the [n] attaining [c_fit] (0 if none audited) *)
  v_passed : bool;  (** true when nothing audited or [c_fit <= c_max] *)
}

(** [audit ~label budget observations] checks a sweep's observations
    against the budget. *)
val audit : label:string -> budget -> observation list -> verdict

(** [audit_label label observations] is [audit] with the budget looked
    up from the label; [None] when the label has no budget. *)
val audit_label : string -> observation list -> verdict option

val pp_verdict : Format.formatter -> verdict -> unit

(** [verdict_json v] is one canonical JSON object (sorted keys, no
    whitespace) for report export. *)
val verdict_json : verdict -> string
