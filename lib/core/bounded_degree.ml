open Refnet_bits
open Refnet_graph

let message_bits ~max_degree n =
  let w = Bounds.id_bits n in
  w + (max_degree * w)

let local_row ~max_degree v =
  let n = View.n v in
  let w = Bounds.id_bits n in
  let wr = Bit_writer.create () in
  let d = View.deg v in
  if d > max_degree then begin
    (* Signal overflow in-band with the reserved degree value. *)
    Codes.write_fixed wr ~width:w 0;
    Message.of_writer wr
  end
  else begin
    Codes.write_fixed wr ~width:w (d + 1);
    View.iter_neighbors v (fun u -> Codes.write_fixed wr ~width:w u);
    Message.of_writer wr
  end

let reconstruct ~max_degree : Graph.t option Protocol.t =
  if max_degree < 0 then invalid_arg "Bounded_degree.reconstruct: negative bound";
  let local = local_row ~max_degree in
  (* Streaming referee: each message contributes its edges to a shared
     builder (edge insertion is idempotent and order-insensitive), so no
     message array is ever materialized. *)
  let init ~n = (Graph.Builder.create n, true) in
  let absorb ~n (b, ok) ~id msg =
    if not ok then (b, ok)
    else begin
      let w = Bounds.id_bits n in
      match
        let r = Message.reader msg in
        let tag = Codes.read_fixed r ~width:w in
        if tag = 0 then None
        else begin
          let d = tag - 1 in
          Some (List.init d (fun _ -> Codes.read_fixed r ~width:w))
        end
      with
      | None -> (b, false)
      | exception Bit_reader.Exhausted -> (b, false)
      | Some nbrs ->
        let ok = ref true in
        List.iter
          (fun u ->
            if u < 1 || u > n || u = id then ok := false else Graph.Builder.add_edge b id u)
          nbrs;
        (b, !ok)
    end
  in
  let finish ~n:_ (b, ok) = if ok then Some (Graph.Builder.build b) else None in
  {
    name = Printf.sprintf "bounded-degree-%d" max_degree;
    local;
    referee = Protocol.streaming ~init ~absorb ~finish;
  }

(* ---------- crash/corruption-tolerant variant ---------- *)

type brow = B_unknown | B_overflow | B_nbrs of int list

type bstate = {
  rows : brow array;
  b_seen : bool array;
  mutable b_mal : int list;
  mutable b_dup : int list;
}

(* Honest adjacency rows list neighbours strictly increasing, in range,
   never the sender itself, and fill the payload exactly — anything else
   is channel damage (or a forged seal). *)
let parse_row ~max_degree ~n ~id payload =
  let w = Bounds.id_bits n in
  let r = Message.reader payload in
  let tag = Codes.read_fixed r ~width:w in
  let row =
    if tag = 0 then B_overflow
    else begin
      let d = tag - 1 in
      if d > max_degree then raise Message.Malformed;
      let prev = ref 0 in
      let nbrs =
        List.init d (fun _ ->
            let u = Codes.read_fixed r ~width:w in
            if u < 1 || u > n || u = id || u <= !prev then raise Message.Malformed;
            prev := u;
            u)
      in
      B_nbrs nbrs
    end
  in
  if Bit_reader.remaining r <> 0 then raise Message.Malformed;
  row

let hardened ~max_degree : Graph.t option Verdict.t Protocol.t =
  if max_degree < 0 then invalid_arg "Bounded_degree.hardened: negative bound";
  let init ~n =
    {
      rows = Array.make n B_unknown;
      b_seen = Array.make n false;
      b_mal = [];
      b_dup = [];
    }
  in
  let absorb ~n st ~id msg =
    if id < 1 || id > n then st.b_mal <- id :: st.b_mal
    else if st.b_seen.(id - 1) then st.b_dup <- id :: st.b_dup
    else begin
      st.b_seen.(id - 1) <- true;
      match Message.unseal ~n ~id msg with
      | None -> st.b_mal <- id :: st.b_mal
      | Some payload -> (
        match parse_row ~max_degree ~n ~id payload with
        | row -> st.rows.(id - 1) <- row
        | exception (Message.Malformed | Bit_reader.Exhausted | Invalid_argument _) ->
          st.b_mal <- id :: st.b_mal)
    end;
    st
  in
  let finish ~n st =
    let missing = ref [] in
    for id = n downto 1 do
      if not st.b_seen.(id - 1) then missing := id :: !missing
    done;
    let report =
      {
        Verdict.missing = !missing;
        malformed = List.sort_uniq Stdlib.compare st.b_mal;
        duplicated = List.sort_uniq Stdlib.compare st.b_dup;
        undetermined = [];
      }
    in
    let overflow = Array.exists (function B_overflow -> true | _ -> false) st.rows in
    let union () =
      let b = Graph.Builder.create n in
      Array.iteri
        (fun i row ->
          match row with
          | B_nbrs nbrs -> List.iter (fun u -> Graph.Builder.add_edge b (i + 1) u) nbrs
          | B_overflow | B_unknown -> ())
        st.rows;
      Graph.Builder.build b
    in
    if overflow then
      (* An authentic overflow row alone proves the fault-free answer is
         [None] — the one verdict the referee may still [Decide] under a
         faulty channel. *)
      Verdict.Decided None
    else if Verdict.channel_clean report then Verdict.Decided (Some (union ()))
    else begin
      (* Cross-check symmetry between pairs of trusted rows: honest rows
         agree on shared edges, so a one-sided claim means a forged
         seal. *)
      match
        Array.iteri
          (fun i row ->
            match row with
            | B_nbrs nbrs ->
              List.iter
                (fun u ->
                  match st.rows.(u - 1) with
                  | B_nbrs unbrs -> if not (List.mem (i + 1) unbrs) then raise Exit
                  | B_overflow | B_unknown -> ())
                nbrs
            | B_overflow | B_unknown -> ())
          st.rows
      with
      | () ->
        let undetermined = ref [] in
        for v = n downto 1 do
          if st.rows.(v - 1) = B_unknown then undetermined := v :: !undetermined
        done;
        Verdict.Degraded (Some (union ()), { report with Verdict.undetermined = !undetermined })
      | exception Exit -> Verdict.Inconclusive "authenticated messages are mutually inconsistent"
    end
  in
  {
    name = Printf.sprintf "bounded-degree-%d+sealed" max_degree;
    local = (fun v -> Message.seal ~n:(View.n v) ~id:(View.id v) (local_row ~max_degree v));
    referee = Protocol.streaming ~init ~absorb ~finish;
  }

let full_information : Graph.t Protocol.t =
  let local v =
    let row = Bitvec.create (View.n v) in
    View.iter_neighbors v (fun u -> Bitvec.set row (u - 1));
    row
  in
  let init ~n = Graph.Builder.create n in
  let absorb ~n:_ b ~id row =
    Bitvec.iter_set row (fun j -> if id - 1 < j then Graph.Builder.add_edge b id (j + 1));
    b
  in
  let finish ~n:_ b = Graph.Builder.build b in
  { name = "full-information"; local; referee = Protocol.streaming ~init ~absorb ~finish }
