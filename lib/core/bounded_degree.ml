open Refnet_bits
open Refnet_graph

let message_bits ~max_degree n =
  let w = Bounds.id_bits n in
  w + (max_degree * w)

let reconstruct ~max_degree : Graph.t option Protocol.t =
  if max_degree < 0 then invalid_arg "Bounded_degree.reconstruct: negative bound";
  let local v =
    let n = View.n v in
    let w = Bounds.id_bits n in
    let wr = Bit_writer.create () in
    let d = View.deg v in
    if d > max_degree then begin
      (* Signal overflow in-band with the reserved degree value. *)
      Codes.write_fixed wr ~width:w 0;
      Message.of_writer wr
    end
    else begin
      Codes.write_fixed wr ~width:w (d + 1);
      View.iter_neighbors v (fun u -> Codes.write_fixed wr ~width:w u);
      Message.of_writer wr
    end
  in
  (* Streaming referee: each message contributes its edges to a shared
     builder (edge insertion is idempotent and order-insensitive), so no
     message array is ever materialized. *)
  let init ~n = (Graph.Builder.create n, true) in
  let absorb ~n (b, ok) ~id msg =
    if not ok then (b, ok)
    else begin
      let w = Bounds.id_bits n in
      match
        let r = Message.reader msg in
        let tag = Codes.read_fixed r ~width:w in
        if tag = 0 then None
        else begin
          let d = tag - 1 in
          Some (List.init d (fun _ -> Codes.read_fixed r ~width:w))
        end
      with
      | None -> (b, false)
      | exception Bit_reader.Exhausted -> (b, false)
      | Some nbrs ->
        let ok = ref true in
        List.iter
          (fun u ->
            if u < 1 || u > n || u = id then ok := false else Graph.Builder.add_edge b id u)
          nbrs;
        (b, !ok)
    end
  in
  let finish ~n:_ (b, ok) = if ok then Some (Graph.Builder.build b) else None in
  {
    name = Printf.sprintf "bounded-degree-%d" max_degree;
    local;
    referee = Protocol.streaming ~init ~absorb ~finish;
  }

let full_information : Graph.t Protocol.t =
  let local v =
    let row = Bitvec.create (View.n v) in
    View.iter_neighbors v (fun u -> Bitvec.set row (u - 1));
    row
  in
  let init ~n = Graph.Builder.create n in
  let absorb ~n:_ b ~id row =
    Bitvec.iter_set row (fun j -> if id - 1 < j then Graph.Builder.add_edge b id (j + 1));
    b
  in
  let finish ~n:_ b = Graph.Builder.build b in
  { name = "full-information"; local; referee = Protocol.streaming ~init ~absorb ~finish }
