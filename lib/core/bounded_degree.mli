(** The paper's footnote 1: on networks of maximum degree [d], the trivial
    protocol — every node sends its whole adjacency list — is already
    frugal when [d] is constant, and the referee reconstructs the graph
    outright.

    Kept both as a baseline against the power-sum protocol (it beats it on
    very low-degree graphs, loses as soon as max degree exceeds the
    degeneracy, and is not frugal at all on stars — which have degeneracy
    1) and as the "cheating oracle" building block of the reduction
    experiments. *)

(** [reconstruct ~max_degree] sends up to [max_degree] neighbour
    identifiers per node (length-prefixed).  Output is [None] when some
    node's degree exceeds the bound. *)
val reconstruct : max_degree:int -> Refnet_graph.Graph.t option Protocol.t

(** [full_information] is the degenerate variant with no degree bound:
    every node ships its entire incidence vector ([n] bits — deliberately
    non-frugal).  The referee learns the graph exactly; reductions use it
    as a correct-by-construction oracle [Γ]. *)
val full_information : Refnet_graph.Graph.t Protocol.t

(** [hardened ~max_degree] is the crash/corruption-tolerant variant:
    rows are {!Message.seal}ed and the referee keeps only authenticated
    ones.  Clean channel: [Decided] of {!reconstruct}'s answer.  An
    authentic overflow row proves the fault-free answer is [None] even
    under faults, so it stays [Decided None].  Otherwise, under faults,
    the union of the trusted rows' edges — every one asserted by an
    honest sender — is returned as [Degraded (Some partial, report)],
    with the untrusted ids undetermined; a symmetry violation between
    two trusted rows (impossible for honest senders) is
    [Inconclusive]. *)
val hardened : max_degree:int -> Refnet_graph.Graph.t option Verdict.t Protocol.t

(** [message_bits ~max_degree n] is the worst-case message size of
    {!reconstruct}. *)
val message_bits : max_degree:int -> int -> int
