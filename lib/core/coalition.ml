open Refnet_graph

type view = { members : int list; neighborhoods : (int * int list) list }

type 'a t = {
  name : string;
  local : n:int -> view -> (int * Message.t) list;
  referee : 'a Protocol.referee;
}

let partition_by_ranges ~n ~parts =
  if parts < 1 || parts > max n 1 then invalid_arg "Coalition.partition_by_ranges: bad count";
  let base = n / parts and extra = n mod parts in
  let rec go start part acc =
    if part > parts then List.rev acc
    else begin
      let size = base + (if part <= extra then 1 else 0) in
      let members = List.init size (fun i -> start + i) in
      go (start + size) (part + 1) (members :: acc)
    end
  in
  go 1 1 []

(* Shared local phase of [run]/[run_faulty]: validate the partition and
   collect the full message vector, one slot per vertex. *)
let collect (p : 'a t) src ~parts =
  let n = Graph_source.order src in
  (* [owner.(v-1)] is the 1-based index of the coalition holding [v]:
     one array is both the partition check and the O(1) membership test
     below (a [List.mem] here is quadratic in coalition size, which at
     n = 10^6 with a handful of parts dominates the whole run). *)
  let owner = Array.make n 0 in
  List.iteri
    (fun ci members ->
      List.iter
        (fun v ->
          if v < 1 || v > n || owner.(v - 1) <> 0 then
            invalid_arg "Coalition.run: parts do not partition the vertices";
          owner.(v - 1) <- ci + 1)
        members)
    parts;
  if Array.exists (fun o -> o = 0) owner then
    invalid_arg "Coalition.run: parts do not cover the vertices";
  let inbox = Array.make n None in
  List.iteri
    (fun ci members ->
      let members = List.sort Stdlib.compare members in
      let view =
        { members; neighborhoods = List.map (fun v -> (v, Graph_source.neighbors src v)) members }
      in
      let out = p.local ~n view in
      if List.length out <> List.length members then
        invalid_arg "Coalition.run: local function must emit one message per member";
      List.iter
        (fun (id, msg) ->
          if id < 1 || id > n || owner.(id - 1) <> ci + 1 then
            invalid_arg "Coalition.run: message for a non-member";
          match inbox.(id - 1) with
          | Some _ -> invalid_arg "Coalition.run: duplicate message"
          | None -> inbox.(id - 1) <- Some msg)
        out)
    parts;
  Array.map (function Some m -> m | None -> assert false) inbox (* lint: allow referee-totality -- the cover check above fills every slot *)

(* Span and done events carry the part count in the label — the
   coalition bound is O(k·log n) in the number of parts, so offline
   analysis ({!Bound_audit}, [refnet report]) needs [k] recoverable
   from the trace alone. *)
let labelled p ~parts = Printf.sprintf "%s[parts=%d]" p.name (List.length parts)

(* The backend decoration sits outside [parts=] — outermost — and is
   peeled first by {!Bound_audit.classify_label}, so source-tagged
   coalition runs audit under the same O(k log n) budget. *)
let labelled_src p ~parts src =
  Printf.sprintf "%s[parts=%d][src=%s]" p.name (List.length parts) (Graph_source.backend src)

let observe_source metrics src =
  match metrics with
  | None -> ()
  | Some m ->
    Metrics.Counter.incr
      (Metrics.Counter.counter m
         (Metrics.series "refnet_source_runs_total" [ ("backend", Graph_source.backend src) ]))

let observe_local metrics msgs =
  match metrics with
  | None -> ()
  | Some m ->
    Metrics.Counter.add (Metrics.Counter.counter m "refnet_messages_total") (Array.length msgs);
    let bits = Metrics.Histogram.histogram m "refnet_message_bits" in
    Array.iter (fun msg -> Metrics.Histogram.observe bits (Message.bits msg)) msgs

let observe_transcript metrics (t : Simulator.transcript) =
  match metrics with
  | None -> ()
  | Some m ->
    Metrics.Counter.incr (Metrics.Counter.counter m "refnet_runs_total");
    Metrics.Histogram.observe (Metrics.Histogram.histogram m "refnet_run_max_bits") t.max_bits;
    Metrics.Counter.add (Metrics.Counter.counter m "refnet_run_bits_total") t.total_bits

let maybe_time metrics name f =
  match metrics with Some m -> Metrics.time m name f | None -> f ()

let run_core ~trace ~metrics ~label (p : 'a t) src ~parts =
  let n = Graph_source.order src in
  Trace.emit trace (Trace.Span_begin { label; n });
  let msgs = maybe_time metrics "refnet_local_phase" (fun () -> collect p src ~parts) in
  observe_local metrics msgs;
  let out =
    maybe_time metrics "refnet_referee_phase" (fun () ->
        Protocol.run_referee ~trace ?metrics p.referee ~n msgs)
  in
  let t = Simulator.transcript_of_messages msgs in
  observe_transcript metrics t;
  Trace.emit trace
    (Trace.Referee_done
       { label; n; max_bits = t.Simulator.max_bits; total_bits = t.Simulator.total_bits });
  Trace.emit trace (Trace.Span_end { label; n });
  (out, t)

let run ?(trace = Trace.null) ?metrics (p : 'a t) g ~parts =
  run_core ~trace ~metrics ~label:(labelled p ~parts) p (Graph_source.of_graph g) ~parts

let run_source ?(trace = Trace.null) ?metrics (p : 'a t) src ~parts =
  observe_source metrics src;
  run_core ~trace ~metrics ~label:(labelled_src p ~parts src) p src ~parts

let run_faulty_core ~faults ~trace ~metrics ~label (p : 'a t) src ~parts =
  let n = Graph_source.order src in
  Trace.emit trace (Trace.Span_begin { label; n });
  let msgs = maybe_time metrics "refnet_local_phase" (fun () -> collect p src ~parts) in
  observe_local metrics msgs;
  let deliveries, injected = Faults.apply faults msgs in
  (match metrics with
  | Some m when injected <> [] ->
    Metrics.Counter.add
      (Metrics.Counter.counter m "refnet_faults_injected_total")
      (List.length injected)
  | _ -> ());
  if not (Trace.is_null trace) then
    List.iter (fun (id, fault) -> Trace.emit trace (Trace.Fault_injected { id; fault })) injected;
  let out =
    maybe_time metrics "refnet_referee_phase" (fun () ->
        Protocol.feed_deliveries ~trace ?metrics p.referee ~n deliveries)
  in
  let t =
    { (Simulator.transcript_of_messages msgs) with
      Simulator.faulted_ids = List.map fst injected
    }
  in
  observe_transcript metrics t;
  Trace.emit trace
    (Trace.Referee_done
       { label; n; max_bits = t.Simulator.max_bits; total_bits = t.Simulator.total_bits });
  Trace.emit trace (Trace.Span_end { label; n });
  (out, t)

let run_faulty ?(faults = Faults.empty) ?(trace = Trace.null) ?metrics (p : 'a t) g ~parts =
  run_faulty_core ~faults ~trace ~metrics ~label:(labelled p ~parts) p (Graph_source.of_graph g)
    ~parts

let run_faulty_source ?(faults = Faults.empty) ?(trace = Trace.null) ?metrics (p : 'a t) src
    ~parts =
  observe_source metrics src;
  run_faulty_core ~faults ~trace ~metrics ~label:(labelled_src p ~parts src) p src ~parts
