open Refnet_graph

type view = { members : int list; neighborhoods : (int * int list) list }

type 'a t = {
  name : string;
  local : n:int -> view -> (int * Message.t) list;
  referee : 'a Protocol.referee;
}

let partition_by_ranges ~n ~parts =
  if parts < 1 || parts > max n 1 then invalid_arg "Coalition.partition_by_ranges: bad count";
  let base = n / parts and extra = n mod parts in
  let rec go start part acc =
    if part > parts then List.rev acc
    else begin
      let size = base + (if part <= extra then 1 else 0) in
      let members = List.init size (fun i -> start + i) in
      go (start + size) (part + 1) (members :: acc)
    end
  in
  go 1 1 []

(* Shared local phase of [run]/[run_faulty]: validate the partition and
   collect the full message vector, one slot per vertex. *)
let collect (p : 'a t) g ~parts =
  let n = Graph.order g in
  let seen = Array.make n false in
  List.iter
    (List.iter (fun v ->
         if v < 1 || v > n || seen.(v - 1) then
           invalid_arg "Coalition.run: parts do not partition the vertices";
         seen.(v - 1) <- true))
    parts;
  if Array.exists not seen then invalid_arg "Coalition.run: parts do not cover the vertices";
  let inbox = Array.make n None in
  List.iter
    (fun members ->
      let members = List.sort Stdlib.compare members in
      let view = { members; neighborhoods = List.map (fun v -> (v, Graph.neighbors g v)) members } in
      let out = p.local ~n view in
      if List.length out <> List.length members then
        invalid_arg "Coalition.run: local function must emit one message per member";
      List.iter
        (fun (id, msg) ->
          if not (List.mem id members) then
            invalid_arg "Coalition.run: message for a non-member";
          match inbox.(id - 1) with
          | Some _ -> invalid_arg "Coalition.run: duplicate message"
          | None -> inbox.(id - 1) <- Some msg)
        out)
    parts;
  Array.map (function Some m -> m | None -> assert false) inbox

let run ?(trace = Trace.null) (p : 'a t) g ~parts =
  let n = Graph.order g in
  Trace.emit trace (Trace.Span_begin { label = p.name; n });
  let msgs = collect p g ~parts in
  let out = Protocol.run_referee ~trace p.referee ~n msgs in
  let t = Simulator.transcript_of_messages msgs in
  Trace.emit trace
    (Trace.Referee_done
       { label = p.name; n; max_bits = t.Simulator.max_bits; total_bits = t.Simulator.total_bits });
  Trace.emit trace (Trace.Span_end { label = p.name; n });
  (out, t)

let run_faulty ?(faults = Faults.empty) ?(trace = Trace.null) (p : 'a t) g ~parts =
  let n = Graph.order g in
  Trace.emit trace (Trace.Span_begin { label = p.name; n });
  let msgs = collect p g ~parts in
  let deliveries, injected = Faults.apply faults msgs in
  if not (Trace.is_null trace) then
    List.iter (fun (id, fault) -> Trace.emit trace (Trace.Fault_injected { id; fault })) injected;
  let feed = ref (Protocol.start p.referee ~n) in
  List.iter
    (fun (id, msg) ->
      feed := Protocol.feed !feed ~id msg;
      Trace.emit trace (Trace.Referee_absorb { id; bits = Message.bits msg }))
    deliveries;
  let out = Protocol.finish !feed in
  let t =
    { (Simulator.transcript_of_messages msgs) with
      Simulator.faulted_ids = List.map fst injected
    }
  in
  Trace.emit trace
    (Trace.Referee_done
       { label = p.name; n; max_bits = t.Simulator.max_bits; total_bits = t.Simulator.total_bits });
  Trace.emit trace (Trace.Span_end { label = p.name; n });
  (out, t)
