(** The partition (coalition) variant of the model.

    The paper's hardness proofs and its connectivity discussion both use
    the following strengthening: the vertices are split into parts, and
    the vertices of a part may pool their local information before each
    sends its own [O(log n)]-bit message.  Formally a coalition protocol's
    local function sees a whole part — every member's identifier and
    neighbour list — and emits one message {e per member}; the referee
    still receives [n] individual messages.

    The conclusion's observation "if a graph is split into [k] parts ...
    there is an algorithm for connectivity using [O(k log n)] bits per
    node" lives in this model; {!Connectivity_parts} implements it. *)

type view = { members : int list; neighborhoods : (int * int list) list }
(** What a part jointly knows: its member identifiers and each member's
    neighbour set (in increasing member order). *)

type 'a t = {
  name : string;
  local : n:int -> view -> (int * Message.t) list;
      (** Messages for the part's members, tagged by member id; must
          cover exactly the part's members. *)
  referee : 'a Protocol.referee;
      (** The referee still receives [n] individual messages, streamed
          in identifier order; {!Protocol.batch} keeps the array-style
          spelling available. *)
}

(** [partition_by_ranges ~n ~parts] splits [1..n] into [parts] contiguous
    ranges of near-equal size.
    @raise Invalid_argument if [parts < 1] or [parts > n]. *)
val partition_by_ranges : n:int -> parts:int -> int list list

(** [run ?trace ?metrics p g ~parts] executes a coalition protocol over
    the given partition of the vertices; with a live [trace], span,
    absorb and done events are emitted as in {!Simulator.run} — with the
    part count baked into the span label as
    ["name[parts=k]"], so the O(k·log n) coalition bound is auditable
    from the trace alone.  [?metrics] records the same series as
    {!Simulator.run} (minus [refnet_view_queries] — coalition views are
    pooled, not per-node audited).
    @raise Invalid_argument if [parts] does not partition [1..n] or the
    local function mislabels a message. *)
val run :
  ?trace:Trace.sink ->
  ?metrics:Metrics.t ->
  'a t ->
  Refnet_graph.Graph.t ->
  parts:int list list ->
  'a * Simulator.transcript

(** [run_source p src ~parts] is {!run} over any {!Graph_source}
    backend.  The label gains the outermost [\[src=<backend>\]]
    decoration (["name[parts=k][src=csr]"]) — peeled first by
    {!Bound_audit.classify_label}, so backend-tagged coalition runs
    audit under the same O(k·log n) budget — and counter
    [refnet_source_runs_total\{backend="..."\}] is bumped when metrics
    are on. *)
val run_source :
  ?trace:Trace.sink ->
  ?metrics:Metrics.t ->
  'a t ->
  Refnet_graph.Graph_source.t ->
  parts:int list list ->
  'a * Simulator.transcript

(** [run_faulty ?faults ?trace ?metrics p g ~parts] is {!run} with a fault plan
    applied between the pooled local phase and the referee, exactly as
    in {!Simulator.run_faulty}: per-member messages are computed
    honestly, then the channel applies [faults] ({!Faults.apply}),
    [Fault_injected] events fire per in-scope plan entry, and the
    transcript's [faulted_ids] records the hit ids.  An empty plan is
    bit-identical to {!run}. *)
val run_faulty :
  ?faults:Faults.plan ->
  ?trace:Trace.sink ->
  ?metrics:Metrics.t ->
  'a t ->
  Refnet_graph.Graph.t ->
  parts:int list list ->
  'a * Simulator.transcript

(** [run_faulty_source] is {!run_faulty} over any backend, with the
    [\[src=...\]] label decoration of {!run_source}. *)
val run_faulty_source :
  ?faults:Faults.plan ->
  ?trace:Trace.sink ->
  ?metrics:Metrics.t ->
  'a t ->
  Refnet_graph.Graph_source.t ->
  parts:int list list ->
  'a * Simulator.transcript
