open Refnet_bits
open Refnet_graph

let owned_edges (view : Coalition.view) =
  let members = view.Coalition.members in
  let member = Hashtbl.create 16 in
  List.iter (fun m -> Hashtbl.replace member m ()) members;
  let is_member v = Hashtbl.mem member v in
  List.concat_map
    (fun (m, nbrs) ->
      List.filter_map
        (fun u ->
          let lo = min m u and hi = max m u in
          (* Edge owned here iff its smaller endpoint is a member; when
             both endpoints are members, let the smaller endpoint's entry
             report it so it is listed once. *)
          if is_member lo then if m = lo then Some (lo, hi) else None else None)
        nbrs)
    view.Coalition.neighborhoods

let spanning_forest_messages ~n (view : Coalition.view) =
  let forest = Spanning.forest_of_edges ~n (owned_edges view) in
  let members = Array.of_list view.Coalition.members in
  let count = Array.length members in
  if count = 0 then []
  else begin
    let w = Bounds.id_bits n in
    let writers = Array.init count (fun _ -> Bit_writer.create ()) in
    let shares = Array.make count [] in
    List.iteri (fun i e -> shares.(i mod count) <- e :: shares.(i mod count)) forest;
    Array.iteri
      (fun i share ->
        Codes.write_nonneg writers.(i) (List.length share);
        List.iter
          (fun (u, v) ->
            Codes.write_fixed writers.(i) ~width:w u;
            Codes.write_fixed writers.(i) ~width:w v)
          share)
      shares;
    Array.to_list (Array.mapi (fun i m -> (m, Message.of_writer writers.(i))) members)
  end

let decide : bool Coalition.t =
  let local ~n view = spanning_forest_messages ~n view in
  (* Streaming referee: a union-find over the vertices is the whole
     state — each absorbed message's forest-edge share is unioned in on
     the spot, so referee memory stays O(n) words with no edge list and
     no rebuilt graph.  Edge insertion commutes, so any arrival order
     yields the same component count. *)
  let init ~n = (Union_find.create (max n 1), true) in
  let absorb ~n (uf, ok) ~id:_ msg =
    let w = Bounds.id_bits n in
    let ok = ref ok in
    (try
       let r = Message.reader msg in
       let count = Codes.read_nonneg r in
       for _ = 1 to count do
         let u = Codes.read_fixed r ~width:w in
         let v = Codes.read_fixed r ~width:w in
         if u < 1 || u > n || v < 1 || v > n || u = v then ok := false
         else ignore (Union_find.union uf (u - 1) (v - 1))
       done
     with Bit_reader.Exhausted -> ());
    (uf, !ok)
  in
  let finish ~n (uf, ok) = ok && (n = 0 || Union_find.count uf <= 1) in
  { name = "coalition-connectivity"; local; referee = Protocol.streaming ~init ~absorb ~finish }

let per_node_bound ~n ~parts =
  let w = Bounds.id_bits n in
  if n = 0 then 0
  else begin
    let part_size = max 1 (n / parts) in
    let forest_edges = n - 1 in
    let per_member = (forest_edges + part_size - 1) / part_size in
    (* count prefix (gamma code of e+1 <= 2 log(e) + 1) + e edges. *)
    ((2 * Bounds.id_bits (per_member + 1)) + 1) + (per_member * 2 * w)
  end
