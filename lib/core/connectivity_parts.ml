open Refnet_bits
open Refnet_graph

let owned_edges (view : Coalition.view) =
  let members = view.Coalition.members in
  let member = Hashtbl.create 16 in
  List.iter (fun m -> Hashtbl.replace member m ()) members;
  let is_member v = Hashtbl.mem member v in
  List.concat_map
    (fun (m, nbrs) ->
      List.filter_map
        (fun u ->
          let lo = min m u and hi = max m u in
          (* Edge owned here iff its smaller endpoint is a member; when
             both endpoints are members, let the smaller endpoint's entry
             report it so it is listed once. *)
          if is_member lo then if m = lo then Some (lo, hi) else None else None)
        nbrs)
    view.Coalition.neighborhoods

let spanning_forest_messages ~n (view : Coalition.view) =
  let forest = Spanning.forest_of_edges ~n (owned_edges view) in
  let members = Array.of_list view.Coalition.members in
  let count = Array.length members in
  if count = 0 then []
  else begin
    let w = Bounds.id_bits n in
    let writers = Array.init count (fun _ -> Bit_writer.create ()) in
    let shares = Array.make count [] in
    List.iteri (fun i e -> shares.(i mod count) <- e :: shares.(i mod count)) forest;
    Array.iteri
      (fun i share ->
        Codes.write_nonneg writers.(i) (List.length share);
        List.iter
          (fun (u, v) ->
            Codes.write_fixed writers.(i) ~width:w u;
            Codes.write_fixed writers.(i) ~width:w v)
          share)
      shares;
    Array.to_list (Array.mapi (fun i m -> (m, Message.of_writer writers.(i))) members)
  end

let decide : bool Coalition.t =
  let local ~n view = spanning_forest_messages ~n view in
  (* Streaming referee: a union-find over the vertices is the whole
     state — each absorbed message's forest-edge share is unioned in on
     the spot, so referee memory stays O(n) words with no edge list and
     no rebuilt graph.  Edge insertion commutes, so any arrival order
     yields the same component count. *)
  let init ~n = (Union_find.create (max n 1), true) in
  let absorb ~n (uf, ok) ~id:_ msg =
    let w = Bounds.id_bits n in
    let ok = ref ok in
    (try
       let r = Message.reader msg in
       let count = Codes.read_nonneg r in
       for _ = 1 to count do
         let u = Codes.read_fixed r ~width:w in
         let v = Codes.read_fixed r ~width:w in
         if u < 1 || u > n || v < 1 || v > n || u = v then ok := false
         else ignore (Union_find.union uf (u - 1) (v - 1))
       done
     with Bit_reader.Exhausted -> ());
    (uf, !ok)
  in
  let finish ~n (uf, ok) = ok && (n = 0 || Union_find.count uf <= 1) in
  { name = "coalition-connectivity"; local; referee = Protocol.streaming ~init ~absorb ~finish }

(* ---------- crash/corruption-tolerant variant ---------- *)

type cstate = {
  c_uf : Union_find.t;
  c_seen : bool array;
  mutable c_mal : int list;
  mutable c_dup : int list;
}

(* Fully parse an edge-share payload before unioning anything: an
   authentic share never fails these checks, so a mid-message failure
   means a forged seal and none of its edges can be believed. *)
let parse_share ~n payload =
  let w = Bounds.id_bits n in
  let r = Message.reader payload in
  let count = Codes.read_nonneg r in
  if count < 0 || count * 2 * w > Bit_reader.remaining r then raise Message.Malformed;
  let edges =
    List.init count (fun _ ->
        let u = Codes.read_fixed r ~width:w in
        let v = Codes.read_fixed r ~width:w in
        if u < 1 || u > n || v < 1 || v > n || u = v then raise Message.Malformed;
        (u, v))
  in
  if Bit_reader.remaining r <> 0 then raise Message.Malformed;
  edges

let hardened : bool Verdict.t Coalition.t =
  let local ~n view =
    List.map (fun (id, m) -> (id, Message.seal ~n ~id m)) (spanning_forest_messages ~n view)
  in
  let init ~n =
    { c_uf = Union_find.create (max n 1); c_seen = Array.make n false; c_mal = []; c_dup = [] }
  in
  let absorb ~n st ~id msg =
    if id < 1 || id > n then st.c_mal <- id :: st.c_mal
    else if st.c_seen.(id - 1) then st.c_dup <- id :: st.c_dup
    else begin
      st.c_seen.(id - 1) <- true;
      match Message.unseal ~n ~id msg with
      | None -> st.c_mal <- id :: st.c_mal
      | Some payload -> (
        match parse_share ~n payload with
        | edges ->
          List.iter (fun (u, v) -> ignore (Union_find.union st.c_uf (u - 1) (v - 1))) edges
        | exception (Message.Malformed | Bit_reader.Exhausted | Invalid_argument _) ->
          st.c_mal <- id :: st.c_mal)
    end;
    st
  in
  let finish ~n st =
    let missing = ref [] in
    for id = n downto 1 do
      if not st.c_seen.(id - 1) then missing := id :: !missing
    done;
    let report =
      {
        Verdict.missing = !missing;
        malformed = List.sort_uniq Stdlib.compare st.c_mal;
        duplicated = List.sort_uniq Stdlib.compare st.c_dup;
        undetermined = [];
      }
    in
    let connected = n = 0 || Union_find.count st.c_uf <= 1 in
    if Verdict.channel_clean report then Verdict.Decided connected
    else if connected then
      (* Surviving shares carry only true edges, so if they already
         connect the graph, it is connected — the lost shares could only
         have added more edges. *)
      Verdict.Degraded (true, report)
    else
      Verdict.Inconclusive "lost edge shares may hide the connecting edges"
  in
  {
    Coalition.name = "coalition-connectivity+sealed";
    local;
    referee = Protocol.streaming ~init ~absorb ~finish;
  }

let per_node_bound ~n ~parts =
  let w = Bounds.id_bits n in
  if n = 0 then 0
  else begin
    let part_size = max 1 (n / parts) in
    let forest_edges = n - 1 in
    let per_member = (forest_edges + part_size - 1) / part_size in
    (* count prefix (gamma code of e+1 <= 2 log(e) + 1) + e edges. *)
    ((2 * Bounds.id_bits (per_member + 1)) + 1) + (per_member * 2 * w)
  end
