(** The conclusion's coalition connectivity protocol: "if a graph is
    split into [k] parts and vertices of each part are allowed to
    communicate to each other, there is an algorithm for connectivity
    using [O(k log n)] bits per node."

    Construction.  Assign every edge to the part owning its smaller
    endpoint — a partition of the edge set computable inside each
    coalition from its pooled views.  Each coalition computes a spanning
    forest of its edge class and spreads the forest edges round-robin
    over its members' messages.  The referee unions the forests and runs
    an ordinary connectivity check.

    Correctness is the forest-union lemma (see {!Refnet_graph.Spanning}):
    replacing each class of an edge partition by a spanning forest of the
    subgraph it induces preserves connectivity.  Cost: a forest owned by
    part [P] has at most [|P| + |boundary(P)| - 1 <= n - 1] edges, so
    balanced parts of size [n/k] send [O((k + n/|P|) log n) = O(k log n)]
    bits per node. *)

(** [decide] is the coalition protocol; run it with
    {!Coalition.run}[ ~parts]. *)
val decide : bool Coalition.t

(** [hardened] is the crash/corruption-tolerant variant; run it with
    {!Coalition.run_faulty}.  Shares are {!Message.seal}ed; the referee
    unions only authenticated ones.  Clean channel: [Decided] of the
    plain answer.  Under faults the verdict is one-sided: surviving
    shares carry only true edges, so if they already connect the graph
    the answer is [Degraded (true, report)]; if they do not, the lost
    shares could have held the connecting edges, so the referee returns
    [Inconclusive] rather than a possibly-wrong [false]. *)
val hardened : bool Verdict.t Coalition.t

(** [spanning_forest_messages ~n view] is the per-member payload the
    protocol generates — exposed for tests and size accounting. *)
val spanning_forest_messages : n:int -> Coalition.view -> (int * Message.t) list

(** [per_node_bound ~n ~parts] is the closed-form per-node bit bound for
    balanced parts: [(ceil((n - 1) / (n / parts)) + 1) * 2 * id_bits + overhead]
    — printed by the T7 experiment next to measured sizes. *)
val per_node_bound : n:int -> parts:int -> int
