open Refnet_bits
open Refnet_bigint
open Refnet_algebra
open Refnet_graph

type decoder = n:int -> deg:int -> Power_sum.encoding -> int list option

let newton_decoder : decoder = fun ~n ~deg enc -> Power_sum.decode ~n ~deg enc

let table_decoder table : decoder =
 fun ~n:_ ~deg enc -> Power_sum.Table.lookup table enc ~deg

let message_bits = Bounds.degeneracy_message_bits

let local_time_operations ~k n = k * n

(* Power sum b_p is at most n * n^p = n^(p+1): width (p+1) * id_bits. *)
let coord_width ~w p = (p + 2) * w
(* p is 0-based here: coordinate p holds sums of (p+1)-th powers. *)

type layout = Fixed | Compact

let local ~layout ~k ~n ~id ~neighbors =
  let w = Bounds.id_bits n in
  let wr = Bit_writer.create () in
  Codes.write_fixed wr ~width:w id;
  (* Validation allows any degree, but only the k transmitted coordinates
     are computed — a hub of degree d no longer pays for d power sums. *)
  let enc = Power_sum.encode ~coords:k ~k:(max k (List.length neighbors)) neighbors in
  (match layout with
  | Fixed ->
    Codes.write_fixed wr ~width:w (List.length neighbors);
    for p = 0 to k - 1 do
      Nat_codec.write wr ~width:(coord_width ~w p) enc.(p)
    done
  | Compact ->
    Codes.write_nonneg wr (List.length neighbors);
    for p = 0 to k - 1 do
      let bits = Refnet_bigint.Nat.num_bits enc.(p) in
      Codes.write_nonneg wr bits;
      Nat_codec.write wr ~width:bits enc.(p)
    done);
  Message.of_writer wr

exception Malformed

(* Streaming referee state: the (degree, power-sum encoding) tables,
   allocated once at [init]; each absorb decodes one message into its
   slot.  A malformed message poisons the state instead of raising, so
   the referee tolerates any absorb order. *)
type state = { s_deg : int array; s_enc : Power_sum.encoding array; mutable s_bad : bool }

let init ~n = { s_deg = Array.make n 0; s_enc = Array.make n [||]; s_bad = false }

(* Decode one (id echo, degree, k power sums) row; raises [Malformed] on
   any inconsistency with the declared sender and size. *)
let parse ~layout ~k ~n ~id r =
  let w = Bounds.id_bits n in
  if Codes.read_fixed r ~width:w <> id then raise Malformed;
  match layout with
  | Fixed ->
    let d = Codes.read_fixed r ~width:w in
    if d > n - 1 then raise Malformed;
    (d, Array.init k (fun p -> Nat_codec.read r ~width:(coord_width ~w p)))
  | Compact ->
    let d = Codes.read_nonneg r in
    if d < 0 || d > n - 1 then raise Malformed;
    ( d,
      Array.init k (fun p ->
          let bits = Codes.read_nonneg r in
          if bits < 0 || bits > coord_width ~w p then raise Malformed;
          Nat_codec.read r ~width:bits) )

let absorb ~layout ~k ~n st ~id msg =
  let i = id - 1 in
  (try
     let d, enc = parse ~layout ~k ~n ~id (Message.reader msg) in
     st.s_deg.(i) <- d;
     st.s_enc.(i) <- enc
   with Malformed | Bit_reader.Exhausted -> st.s_bad <- true);
  st

let finish ~(decoder : decoder) ~k ~n st =
  if st.s_bad then None
  else
    let deg = st.s_deg and enc = st.s_enc in
    let removed = Array.make n false in
    let b = Graph.Builder.create n in
    (* Queue of vertices whose degree dropped to at most k; entries may be
       stale, the degree is rechecked on pop. *)
    let queue = Queue.create () in
    for v = 1 to n do
      if deg.(v - 1) <= k then Queue.add v queue
    done;
    let processed = ref 0 in
    let ok = ref true in
    (try
       while !ok && not (Queue.is_empty queue) do
         let v = Queue.pop queue in (* lint: allow exn-escape -- pop guarded by is_empty in the loop condition *)
         if not removed.(v - 1) then begin
           (* A queued vertex's degree only decreases; it is still <= k. *)
           let d = deg.(v - 1) in
           let nbrs =
             if d = 0 then Some []
             else if d = 1 then begin
               (* Fast path: b_1 is the single neighbour's identifier. *)
               match Nat.to_int_opt enc.(v - 1).(0) with
               | Some u when u >= 1 && u <= n -> Some [ u ]
               | _ -> None
             end
             else decoder ~n ~deg:d enc.(v - 1)
           in
           match nbrs with
           | None -> ok := false
           | Some nbrs ->
             List.iter
               (fun u ->
                 if u < 1 || u > n || u = v || removed.(u - 1) || deg.(u - 1) = 0 then
                   ok := false
                 else begin
                   Graph.Builder.add_edge b v u;
                   deg.(u - 1) <- deg.(u - 1) - 1;
                   enc.(u - 1) <- Power_sum.subtract enc.(u - 1) ~id:v ~upto:k;
                   if deg.(u - 1) <= k then Queue.add u queue
                 end)
               nbrs;
             if !ok then begin
               removed.(v - 1) <- true;
               incr processed
             end
         end
       done
     with Invalid_argument _ -> ok := false);
    if !ok && !processed = n then Some (Graph.Builder.build b) else None

let reconstruct ?(decoder = newton_decoder) ?(layout = Fixed) ~k () :
    Graph.t option Protocol.t =
  if k < 1 then invalid_arg "Degeneracy_protocol.reconstruct: k must be positive";
  {
    name =
      Printf.sprintf "degeneracy-%d-reconstruct%s" k
        (match layout with Fixed -> "" | Compact -> "-compact");
    local =
      (fun v -> local ~layout ~k ~n:(View.n v) ~id:(View.id v) ~neighbors:(View.neighbors v));
    referee =
      Protocol.streaming ~init
        ~absorb:(fun ~n st ~id msg -> absorb ~layout ~k ~n st ~id msg)
        ~finish:(fun ~n st -> finish ~decoder ~k ~n st);
  }

(* ---------- crash/corruption-tolerant variant ---------- *)

type hstate = {
  g_deg : int array;
  g_enc : Power_sum.encoding array;
  g_trusted : bool array;
  g_seen : bool array;
  mutable g_mal : int list;
  mutable g_dup : int list;
}

let hinit ~n =
  {
    g_deg = Array.make n 0;
    g_enc = Array.make n [||];
    g_trusted = Array.make n false;
    g_seen = Array.make n false;
    g_mal = [];
    g_dup = [];
  }

let habsorb ~layout ~k ~n st ~id msg =
  if id < 1 || id > n then st.g_mal <- id :: st.g_mal
  else if st.g_seen.(id - 1) then st.g_dup <- id :: st.g_dup
  else begin
    st.g_seen.(id - 1) <- true;
    match Message.unseal ~n ~id msg with
    | None -> st.g_mal <- id :: st.g_mal
    | Some payload -> (
      match
        let r = Message.reader payload in
        let row = parse ~layout ~k ~n ~id r in
        if Bit_reader.remaining r <> 0 then raise Malformed;
        row
      with
      | d, enc ->
        st.g_deg.(id - 1) <- d;
        st.g_enc.(id - 1) <- enc;
        st.g_trusted.(id - 1) <- true
      | exception (Malformed | Bit_reader.Exhausted | Invalid_argument _) ->
        st.g_mal <- id :: st.g_mal)
  end;
  st

(* The Algorithm 4 prune restricted to authenticated rows.  Every edge
   recorded is asserted by an authentic row of residual degree <= k, so
   the output is sound; ids whose row never resolved are reported
   undetermined.  A trusted row that fails to decode, or that contradicts
   another trusted row, is impossible for honest senders — forged seal —
   so the referee refuses. *)
let partial_decode ~(decoder : decoder) ~k ~n st =
  let deg = st.g_deg and enc = st.g_enc and trusted = st.g_trusted in
  let resolved = Array.make n false in
  let b = Graph.Builder.create n in
  let queue = Queue.create () in
  for v = 1 to n do
    if trusted.(v - 1) && deg.(v - 1) <= k then Queue.add v queue
  done;
  match
    while not (Queue.is_empty queue) do
      let v = Queue.pop queue in (* lint: allow exn-escape -- pop guarded by is_empty in the loop condition *)
      if not resolved.(v - 1) then begin
        let d = deg.(v - 1) in
        let nbrs =
          if d = 0 then Some []
          else if d = 1 then begin
            match Nat.to_int_opt enc.(v - 1).(0) with
            | Some u when u >= 1 && u <= n -> Some [ u ]
            | _ -> None
          end
          else decoder ~n ~deg:d enc.(v - 1)
        in
        match nbrs with
        | None -> raise Exit
        | Some nbrs ->
          List.iter
            (fun u ->
              if u < 1 || u > n || u = v || Graph.Builder.has_edge b v u then raise Exit;
              if trusted.(u - 1) then begin
                if resolved.(u - 1) || deg.(u - 1) = 0 then raise Exit;
                Graph.Builder.add_edge b v u;
                deg.(u - 1) <- deg.(u - 1) - 1;
                enc.(u - 1) <- Power_sum.subtract enc.(u - 1) ~id:v ~upto:k;
                if deg.(u - 1) <= k then Queue.add u queue
              end
              else Graph.Builder.add_edge b v u)
            nbrs;
          resolved.(v - 1) <- true
      end
    done
  with
  | () ->
    let undetermined = ref [] in
    for v = n downto 1 do
      if not resolved.(v - 1) then undetermined := v :: !undetermined
    done;
    Some (Graph.Builder.build b, !undetermined)
  | exception (Exit | Invalid_argument _) -> None

let hfinish ~(decoder : decoder) ~k ~n st =
  let missing = ref [] in
  for id = n downto 1 do
    if not st.g_seen.(id - 1) then missing := id :: !missing
  done;
  let report =
    {
      Verdict.missing = !missing;
      malformed = List.sort_uniq Stdlib.compare st.g_mal;
      duplicated = List.sort_uniq Stdlib.compare st.g_dup;
      undetermined = [];
    }
  in
  if Verdict.channel_clean report then
    Verdict.Decided (finish ~decoder ~k ~n { s_deg = st.g_deg; s_enc = st.g_enc; s_bad = false })
  else
    match partial_decode ~decoder ~k ~n st with
    | None -> Verdict.Inconclusive "authenticated messages are mutually inconsistent"
    | Some (g, undetermined) -> Verdict.Degraded (Some g, { report with Verdict.undetermined })

let hardened ?(decoder = newton_decoder) ?(layout = Fixed) ~k () :
    Graph.t option Verdict.t Protocol.t =
  if k < 1 then invalid_arg "Degeneracy_protocol.hardened: k must be positive";
  {
    name =
      Printf.sprintf "degeneracy-%d-reconstruct%s+sealed" k
        (match layout with Fixed -> "" | Compact -> "-compact");
    local =
      (fun v ->
        let n = View.n v and id = View.id v in
        Message.seal ~n ~id (local ~layout ~k ~n ~id ~neighbors:(View.neighbors v)));
    referee =
      Protocol.streaming ~init:hinit
        ~absorb:(fun ~n st ~id msg -> habsorb ~layout ~k ~n st ~id msg)
        ~finish:(fun ~n st -> hfinish ~decoder ~k ~n st);
  }
