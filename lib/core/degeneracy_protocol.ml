open Refnet_bits
open Refnet_bigint
open Refnet_algebra
open Refnet_graph

type decoder = n:int -> deg:int -> Power_sum.encoding -> int list option

let newton_decoder : decoder = fun ~n ~deg enc -> Power_sum.decode ~n ~deg enc

let table_decoder table : decoder =
 fun ~n:_ ~deg enc -> Power_sum.Table.lookup table enc ~deg

let message_bits = Bounds.degeneracy_message_bits

let local_time_operations ~k n = k * n

(* Power sum b_p is at most n * n^p = n^(p+1): width (p+1) * id_bits. *)
let coord_width ~w p = (p + 2) * w
(* p is 0-based here: coordinate p holds sums of (p+1)-th powers. *)

type layout = Fixed | Compact

let local ~layout ~k ~n ~id ~neighbors =
  let w = Bounds.id_bits n in
  let wr = Bit_writer.create () in
  Codes.write_fixed wr ~width:w id;
  (* Validation allows any degree, but only the k transmitted coordinates
     are computed — a hub of degree d no longer pays for d power sums. *)
  let enc = Power_sum.encode ~coords:k ~k:(max k (List.length neighbors)) neighbors in
  (match layout with
  | Fixed ->
    Codes.write_fixed wr ~width:w (List.length neighbors);
    for p = 0 to k - 1 do
      Nat_codec.write wr ~width:(coord_width ~w p) enc.(p)
    done
  | Compact ->
    Codes.write_nonneg wr (List.length neighbors);
    for p = 0 to k - 1 do
      let bits = Refnet_bigint.Nat.num_bits enc.(p) in
      Codes.write_nonneg wr bits;
      Nat_codec.write wr ~width:bits enc.(p)
    done);
  Message.of_writer wr

exception Malformed

(* Streaming referee state: the (degree, power-sum encoding) tables,
   allocated once at [init]; each absorb decodes one message into its
   slot.  A malformed message poisons the state instead of raising, so
   the referee tolerates any absorb order. *)
type state = { s_deg : int array; s_enc : Power_sum.encoding array; mutable s_bad : bool }

let init ~n = { s_deg = Array.make n 0; s_enc = Array.make n [||]; s_bad = false }

let absorb ~layout ~k ~n st ~id msg =
  let i = id - 1 in
  (try
     let w = Bounds.id_bits n in
     let r = Message.reader msg in
     if Codes.read_fixed r ~width:w <> id then raise Malformed;
     match layout with
     | Fixed ->
       st.s_deg.(i) <- Codes.read_fixed r ~width:w;
       if st.s_deg.(i) > n - 1 then raise Malformed;
       st.s_enc.(i) <- Array.init k (fun p -> Nat_codec.read r ~width:(coord_width ~w p))
     | Compact ->
       st.s_deg.(i) <- Codes.read_nonneg r;
       if st.s_deg.(i) > n - 1 then raise Malformed;
       st.s_enc.(i) <-
         Array.init k (fun p ->
             let bits = Codes.read_nonneg r in
             if bits > coord_width ~w p then raise Malformed;
             Nat_codec.read r ~width:bits)
   with Malformed | Bit_reader.Exhausted -> st.s_bad <- true);
  st

let finish ~(decoder : decoder) ~k ~n st =
  if st.s_bad then None
  else
    let deg = st.s_deg and enc = st.s_enc in
    let removed = Array.make n false in
    let b = Graph.Builder.create n in
    (* Queue of vertices whose degree dropped to at most k; entries may be
       stale, the degree is rechecked on pop. *)
    let queue = Queue.create () in
    for v = 1 to n do
      if deg.(v - 1) <= k then Queue.add v queue
    done;
    let processed = ref 0 in
    let ok = ref true in
    (try
       while !ok && not (Queue.is_empty queue) do
         let v = Queue.pop queue in
         if not removed.(v - 1) then begin
           (* A queued vertex's degree only decreases; it is still <= k. *)
           let d = deg.(v - 1) in
           let nbrs =
             if d = 0 then Some []
             else if d = 1 then begin
               (* Fast path: b_1 is the single neighbour's identifier. *)
               match Nat.to_int_opt enc.(v - 1).(0) with
               | Some u when u >= 1 && u <= n -> Some [ u ]
               | _ -> None
             end
             else decoder ~n ~deg:d enc.(v - 1)
           in
           match nbrs with
           | None -> ok := false
           | Some nbrs ->
             List.iter
               (fun u ->
                 if u < 1 || u > n || u = v || removed.(u - 1) || deg.(u - 1) = 0 then
                   ok := false
                 else begin
                   Graph.Builder.add_edge b v u;
                   deg.(u - 1) <- deg.(u - 1) - 1;
                   enc.(u - 1) <- Power_sum.subtract enc.(u - 1) ~id:v ~upto:k;
                   if deg.(u - 1) <= k then Queue.add u queue
                 end)
               nbrs;
             if !ok then begin
               removed.(v - 1) <- true;
               incr processed
             end
         end
       done
     with Invalid_argument _ -> ok := false);
    if !ok && !processed = n then Some (Graph.Builder.build b) else None

let reconstruct ?(decoder = newton_decoder) ?(layout = Fixed) ~k () :
    Graph.t option Protocol.t =
  if k < 1 then invalid_arg "Degeneracy_protocol.reconstruct: k must be positive";
  {
    name =
      Printf.sprintf "degeneracy-%d-reconstruct%s" k
        (match layout with Fixed -> "" | Compact -> "-compact");
    local =
      (fun v -> local ~layout ~k ~n:(View.n v) ~id:(View.id v) ~neighbors:(View.neighbors v));
    referee =
      Protocol.streaming ~init
        ~absorb:(fun ~n st ~id msg -> absorb ~layout ~k ~n st ~id msg)
        ~finish:(fun ~n st -> finish ~decoder ~k ~n st);
  }
