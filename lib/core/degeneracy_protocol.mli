(** The paper's main positive result (Theorem 5, Algorithms 3 and 4):
    one-round frugal reconstruction of graphs of degeneracy at most [k].

    {b Local phase} (Algorithm 3).  Node [x] sends
    [(ID(x), deg(x), b(x))] where [b_p(x) = sum of ID(w)^p] over
    neighbours [w], for [p = 1..k] — the product [A(k,n) x] of the
    incidence vector of [N(x)] by the power matrix of Definition 3.
    Fixed-width layout; exact size {!Bounds.degeneracy_message_bits},
    i.e. [O(k^2 log n)] (Lemma 2).

    {b Global phase} (Algorithm 4).  While vertices remain, the referee
    takes any remaining vertex of (current) degree at most [k], decodes
    its remaining neighbourhood from its first [deg] power sums — unique
    by Wright's theorem (Theorem 4) — records the edges, and "removes"
    the vertex by patching each neighbour's triple:
    [deg <- deg - 1], [b_p <- b_p - ID^p].  If no vertex of degree at
    most [k] remains, the graph has degeneracy exceeding [k] and the
    referee rejects. *)

open Refnet_algebra

type decoder = n:int -> deg:int -> Power_sum.encoding -> int list option
(** How the referee inverts a power-sum encoding. *)

(** [newton_decoder] — Newton identities + integer root extraction; no
    precomputation, polynomial cost.  The default. *)
val newton_decoder : decoder

(** [table_decoder table] — the paper's Lemma 3 lookup table.  The table
    must have been built for the same [n] (and [k] at least the message
    parameter); [O(n^k)] space. *)
val table_decoder : Power_sum.Table.t -> decoder

type layout =
  | Fixed
      (** The paper's layout: every field at its worst-case width
          ([(p+1) * ceil(log2(n+1))] bits for the [p]-th power sum).
          Message sizes are data-independent — all nodes send exactly
          {!message_bits} bits. *)
  | Compact
      (** Ablation: degree and power sums written self-delimiting (Elias
          gamma length + minimal-width payload).  Low-degree nodes send
          far fewer bits; the worst case gains a [O(k log log n)]
          framing overhead.  Same decoding semantics. *)

(** [reconstruct ?decoder ?layout ~k ()] is the one-round protocol.
    Output [Some g] reproduces the input graph exactly whenever its
    degeneracy is at most [k]; [None] means degeneracy above [k] (or
    malformed messages).  [layout] defaults to [Fixed]. *)
val reconstruct :
  ?decoder:decoder -> ?layout:layout -> k:int -> unit -> Refnet_graph.Graph.t option Protocol.t

(** [hardened ?decoder ?layout ~k ()] is the crash/corruption-tolerant
    variant: messages are {!Message.seal}ed, and the referee runs the
    Algorithm 4 prune over authenticated rows only.  Clean channel:
    [Decided] of {!reconstruct}'s answer.  Under faults: the prune
    restricted to trusted rows records only edges asserted by authentic
    messages — sound for {e any} input graph — and reports unresolved
    ids as undetermined, giving [Degraded (Some partial, report)].
    Trusted rows that cannot be decoded or contradict one another
    (impossible for honest senders) yield [Inconclusive]. *)
val hardened :
  ?decoder:decoder ->
  ?layout:layout ->
  k:int ->
  unit ->
  Refnet_graph.Graph.t option Verdict.t Protocol.t

(** [message_bits ~k n] is the exact message size at parameters [(k, n)]
    (equals {!Bounds.degeneracy_message_bits}). *)
val message_bits : k:int -> int -> int

(** [local_time_operations ~k n] is the paper's [O(n)] local-work claim
    in concrete form: number of bigint additions the local phase
    performs, [k * deg(x)] in the worst case [k * n]. *)
val local_time_operations : k:int -> int -> int
