open Refnet_bits

let degree_message ~n ~deg =
  let w = Bit_writer.create () in
  Codes.write_fixed w ~width:(Bounds.id_bits n) deg;
  Message.of_writer w

let degree_local v = degree_message ~n:(View.n v) ~deg:(View.deg v)

let read_degree ~n msg = Codes.read_fixed (Message.reader msg) ~width:(Bounds.id_bits n)

(* Degree-fold protocols: every referee below is a commutative fold over
   the degree multiset — O(1) words of state, one decode per absorb, no
   message array ever materialized. *)
let on_degrees name ~init ~step ~out : 'a Protocol.t =
  {
    name;
    local = degree_local;
    referee =
      Protocol.streaming
        ~init:(fun ~n:_ -> init)
        ~absorb:(fun ~n acc ~id:_ msg -> step ~n acc (read_degree ~n msg))
        ~finish:(fun ~n:_ acc -> out acc);
  }

let degree_sequence : int list Protocol.t =
  on_degrees "degree-sequence" ~init:[]
    ~step:(fun ~n:_ ds d -> d :: ds)
    ~out:(List.sort (fun a b -> Stdlib.compare b a))

let edge_count =
  on_degrees "edge-count" ~init:0 ~step:(fun ~n:_ m d -> m + d) ~out:(fun m -> m / 2)

let has_edge =
  on_degrees "has-edge" ~init:false ~step:(fun ~n:_ a d -> a || d > 0) ~out:Fun.id

let max_degree = on_degrees "max-degree" ~init:0 ~step:(fun ~n:_ a d -> max a d) ~out:Fun.id

let min_degree =
  on_degrees "min-degree" ~init:None
    ~step:(fun ~n:_ a d -> match a with None -> Some d | Some m -> Some (min m d))
    ~out:(Option.value ~default:0)

let is_regular =
  on_degrees "is-regular" ~init:None
    ~step:(fun ~n:_ a d ->
      match a with None -> Some (d, true) | Some (d0, eq) -> Some (d0, eq && d = d0))
    ~out:(function None -> true | Some (_, eq) -> eq)

let has_isolated_vertex =
  on_degrees "has-isolated" ~init:false ~step:(fun ~n:_ a d -> a || d = 0) ~out:Fun.id

let has_universal_vertex : bool Protocol.t =
  on_degrees "has-universal" ~init:false ~step:(fun ~n a d -> a || d = n - 1) ~out:Fun.id

let all_degrees_even =
  on_degrees "all-degrees-even" ~init:true ~step:(fun ~n:_ a d -> a && d land 1 = 0) ~out:Fun.id

let sum_of_ids_check : bool Protocol.t =
  {
    name = "handshake-fingerprint";
    local =
      (fun v ->
        let n = View.n v in
        let w = Bit_writer.create () in
        Codes.write_fixed w ~width:(Bounds.id_bits n) (View.deg v);
        Codes.write_fixed w ~width:(2 * Bounds.id_bits n) (View.fold_neighbors v 0 ( + ));
        Message.of_writer w);
    referee =
      (* Each edge {u,v} contributes u + v to the total of neighbour-ID
         sums, and also u + v to sum over nodes of deg * id when viewed
         from the other side; the two running totals must agree. *)
      Protocol.streaming
        ~init:(fun ~n:_ -> (0, 0))
        ~absorb:(fun ~n (total_sums, weighted_degrees) ~id msg ->
          let w = Bounds.id_bits n in
          let r = Message.reader msg in
          let deg = Codes.read_fixed r ~width:w in
          let s = Codes.read_fixed r ~width:(2 * w) in
          (total_sums + s, weighted_degrees + (deg * id)))
        ~finish:(fun ~n:_ (total_sums, weighted_degrees) -> total_sums = weighted_degrees);
  }
