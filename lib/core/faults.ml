open Refnet_bits

type fault =
  | Crash
  | Truncate of int
  | Flip of int list
  | Duplicate
  | Spoof of int

(* Sorted by id, ids unique and >= 1.  The plan is independent of any
   particular network: entries whose id exceeds the run's [n] are
   silently out of scope at [apply] time. *)
type plan = (int * fault) list

let empty = []

let is_empty plan = plan = []

let normalize_fault = function
  | Crash -> Crash
  | Truncate k ->
    if k < 0 then invalid_arg "Faults.of_list: negative truncation";
    Truncate k
  | Flip ps ->
    if List.exists (fun p -> p < 0) ps then invalid_arg "Faults.of_list: negative flip position";
    Flip (List.sort_uniq compare ps)
  | Duplicate -> Duplicate
  | Spoof j ->
    if j < 1 then invalid_arg "Faults.of_list: spoof target must be a positive id";
    Spoof j

let of_list entries =
  let entries =
    List.map
      (fun (id, f) ->
        if id < 1 then invalid_arg "Faults.of_list: ids start at 1";
        (id, normalize_fault f))
      entries
  in
  let sorted = List.sort (fun (a, _) (b, _) -> compare a b) entries in
  let rec check = function
    | (a, _) :: ((b, _) :: _ as rest) ->
      if a = b then invalid_arg "Faults.of_list: duplicate id";
      check rest
    | _ -> ()
  in
  check sorted;
  sorted

let to_list plan = plan

let find plan id = List.assoc_opt id plan

let ids plan = List.map fst plan

let random ~seed ~n ?(crash = 0.0) ?(truncate = 0.0) ?(flip = 0.0) ?(flip_bits = 1)
    ?(duplicate = 0.0) ?(spoof = 0.0) () =
  if n < 0 then invalid_arg "Faults.random: negative n";
  if flip_bits < 1 then invalid_arg "Faults.random: flip_bits must be positive";
  let rng = Random.State.make [| 0xfa017; seed; n |] in
  (* Positions and truncation points are drawn on the scale of a typical
     frugal message; [apply] reduces them modulo the actual length. *)
  let bit_scale = (8 * Codes.id_width n) + 32 in
  let draw id =
    let u = Random.State.float rng 1.0 in
    if u < crash then Some Crash
    else if u < crash +. truncate then Some (Truncate (Random.State.int rng (bit_scale + 1)))
    else if u < crash +. truncate +. flip then
      Some
        (Flip
           (List.sort_uniq compare
              (List.init flip_bits (fun _ -> Random.State.int rng bit_scale))))
    else if u < crash +. truncate +. flip +. duplicate then Some Duplicate
    else if u < crash +. truncate +. flip +. duplicate +. spoof && n > 1 then begin
      let rec target () =
        let j = 1 + Random.State.int rng n in
        if j = id then target () else j
      in
      Some (Spoof (target ()))
    end
    else None
  in
  let rec go id acc =
    if id > n then List.rev acc
    else
      match draw id with
      | None -> go (id + 1) acc
      | Some f -> go (id + 1) ((id, f) :: acc)
  in
  go 1 []

(* ---------- applying a plan to a message vector ---------- *)

let truncate_prefix m ~keep =
  let len = min keep (Bitvec.length m) in
  let out = Bitvec.create len in
  for i = 0 to len - 1 do
    if Bitvec.get m i then Bitvec.set out i
  done;
  out

let flip_positions m ps =
  let len = Bitvec.length m in
  if len = 0 then m
  else begin
    let out = Bitvec.copy m in
    List.iter
      (fun p ->
        let i = p mod len in
        Bitvec.assign out i (not (Bitvec.get out i)))
      ps;
    out
  end

let apply plan msgs =
  let n = Array.length msgs in
  let deliveries = ref [] and injected = ref [] in
  let deliver id m = deliveries := (id, m) :: !deliveries in
  for id = 1 to n do
    let m = msgs.(id - 1) in
    match find plan id with
    | None -> deliver id m
    | Some f ->
      injected := (id, f) :: !injected;
      (match f with
      | Crash -> ()
      | Truncate keep -> deliver id (truncate_prefix m ~keep)
      | Flip ps -> deliver id (flip_positions m ps)
      | Duplicate ->
        deliver id m;
        deliver id m
      | Spoof j ->
        (* A spoof target outside the live network degenerates to a
           crash: there is no slot to misdeliver into. *)
        if j >= 1 && j <= n && j <> id then deliver j m)
  done;
  (List.rev !deliveries, List.rev !injected)

(* ---------- rendering ---------- *)

let fault_to_string = function
  | Crash -> "crash"
  | Truncate k -> Printf.sprintf "truncate:%d" k
  | Flip ps -> Printf.sprintf "flip:%s" (String.concat "," (List.map string_of_int ps))
  | Duplicate -> "duplicate"
  | Spoof j -> Printf.sprintf "spoof:%d" j

let pp_fault fmt f = Format.pp_print_string fmt (fault_to_string f)

let pp fmt plan =
  match plan with
  | [] -> Format.pp_print_string fmt "(no faults)"
  | entries ->
    Format.fprintf fmt "@[<hov 1>{";
    List.iteri
      (fun i (id, f) ->
        if i > 0 then Format.fprintf fmt ";@ ";
        Format.fprintf fmt "%d->%a" id pp_fault f)
      entries;
    Format.fprintf fmt "}@]"
