(** Deterministic fault-injection channel model.

    The paper's referee model assumes a perfect uplink: every node's
    message arrives intact, exactly once, under the right identifier.
    This module is the layer between the local phase and the referee
    where that assumption is deliberately broken.  A {!plan} names, per
    node, what the channel does to its message; {!apply} turns a clean
    message vector into the delivery sequence the referee actually
    sees.  Plans are plain data — seed-driven when built with
    {!random} — so every fault campaign is reproducible byte-for-byte
    and printable with {!pp}.

    The model is {e channel} faults, not Byzantine nodes: senders are
    honest, so any message that survives integrity checks is a true
    statement about the input graph.  That asymmetry is what the
    hardened referees exploit to detect-or-degrade instead of lying. *)

(** What the channel does to one node's message. *)
type fault =
  | Crash  (** the message never arrives *)
  | Truncate of int  (** only the first [k] bits arrive *)
  | Flip of int list
      (** the bits at these positions arrive inverted (positions are
          reduced modulo the message length) *)
  | Duplicate  (** the message is absorbed twice *)
  | Spoof of int  (** the message is delivered under sender id [j] *)

(** A reproducible fault assignment: at most one fault per node id. *)
type plan

(** The faultless plan; {!apply}ing it is the identity delivery. *)
val empty : plan

val is_empty : plan -> bool

(** [of_list entries] builds a plan from explicit [(id, fault)] pairs.
    @raise Invalid_argument on ids < 1, duplicate ids, negative
    truncation lengths or flip positions, or spoof targets < 1. *)
val of_list : (int * fault) list -> plan

(** [to_list plan] is the plan's entries in increasing id order. *)
val to_list : plan -> (int * fault) list

(** [find plan id] is node [id]'s fault, if any. *)
val find : plan -> int -> fault option

(** [ids plan] is the increasing list of ids the plan touches. *)
val ids : plan -> int list

(** [random ~seed ~n ?crash ?truncate ?flip ?flip_bits ?duplicate
    ?spoof ()] draws an independent fault for each node of a network of
    size [n]: with probability [crash] the message crashes, else with
    probability [truncate] it is cut to a random prefix, else with
    probability [flip] it has [flip_bits] random bit positions flipped,
    else with probability [duplicate] it is duplicated, else with
    probability [spoof] it is delivered under a random other id.  All
    probabilities default to [0.].  The same [(seed, n)] and rates
    reproduce the same plan byte-for-byte.
    @raise Invalid_argument if [n < 0] or [flip_bits < 1]. *)
val random :
  seed:int ->
  n:int ->
  ?crash:float ->
  ?truncate:float ->
  ?flip:float ->
  ?flip_bits:int ->
  ?duplicate:float ->
  ?spoof:float ->
  unit ->
  plan

(** [apply plan msgs] runs the channel over a clean message vector
    ([msgs.(i - 1)] is node [i]'s message).  Returns the deliveries —
    [(sender_id_as_seen, message)] in delivery order, faultless nodes
    in identifier order — and the [(id, fault)] injections that were in
    scope (entries with [id > Array.length msgs] are ignored; a spoof
    whose target is outside [1..n] or equals its source degenerates to
    a crash).  Messages are never mutated in place; tampered deliveries
    are fresh copies. *)
val apply : plan -> Message.t array -> (int * Message.t) list * (int * fault) list

(** Compact single-token rendering, e.g. ["flip:2,5"] — used by the
    trace layer's JSONL schema. *)
val fault_to_string : fault -> string

val pp_fault : Format.formatter -> fault -> unit

(** [pp] prints a whole plan, e.g. [{3->crash; 7->truncate:12}]. *)
val pp : Format.formatter -> plan -> unit
