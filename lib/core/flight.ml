(* Per-domain ring buffers of binary-encoded trace events; see
   flight.mli for the contract and DESIGN.md §15 for the byte format.

   Layout of a dump:

     magic "RFLIGHT1"                                      8 bytes
     recorded (u64)  lifetime entries at dump time
     dropped  (u64)  overwritten-before-dump entries
     count    (u32)  records that follow
     records, each:  len (u32) | fnv1a32(body) (u32) | body

   Record body:

     seq (u64) | trace (u64) | tag (u8) | tag-specific fields

   Tags 1..7 mirror Trace.event constructor order; tag 8 is a Note.
   Strings are u16-length-prefixed; all integers big-endian. *)

let magic = "RFLIGHT1"
let max_record = 1 lsl 20
let max_domains = 64
let default_capacity = 4096

type ev = E_event of Trace.event | E_note of string * string
type entry = { e_seq : int; e_trace : int64; e_ev : ev }

(* One ring per domain slot: single writer (its domain), so [written]
   needs no atomicity — dumps read a snapshot of it.  Entries are
   immutable records, so a concurrent reader sees either the old or the
   new pointer, never a torn entry. *)
type slot = { arr : entry option array; mutable written : int }

type t = {
  cap : int;
  slots : slot option array;
  seq : int Atomic.t;
}

let create ?(capacity = default_capacity) () =
  let cap = max 16 capacity in
  { cap; slots = Array.make max_domains None; seq = Atomic.make 0 }

let slot_of t =
  let i = (Domain.self () :> int) land (max_domains - 1) in
  match t.slots.(i) with
  | Some s -> s
  | None ->
    let s = { arr = Array.make t.cap None; written = 0 } in
    t.slots.(i) <- Some s;
    s

let push t ~trace ev =
  let seq = Atomic.fetch_and_add t.seq 1 in
  let s = slot_of t in
  s.arr.(s.written mod t.cap) <- Some { e_seq = seq; e_trace = trace; e_ev = ev };
  s.written <- s.written + 1

let record t ~trace event = push t ~trace (E_event event)
let note t ~trace ~code ~detail = push t ~trace (E_note (code, detail))
let recorded t = Atomic.get t.seq

let fold_slots t f acc =
  Array.fold_left
    (fun acc -> function None -> acc | Some s -> f acc s)
    acc t.slots

let dropped t = fold_slots t (fun acc s -> acc + max 0 (s.written - t.cap)) 0
let occupancy t = fold_slots t (fun acc s -> acc + min s.written t.cap) 0
let capacity t = t.cap

let reset t =
  Atomic.set t.seq 0;
  Array.iteri (fun i _ -> t.slots.(i) <- None) t.slots

let hex_of_trace id = Printf.sprintf "%016Lx" id

let trace_of_hex s =
  if String.length s <> 16 then None
  else
    let ok =
      String.for_all
        (fun c -> (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f'))
        s
    in
    if not ok then None else Int64.of_string_opt ("0x" ^ s)

(* ---------- binary encoding ---------- *)

(* Same FNV-1a as Wire.fnv32; duplicated because core cannot depend on
   the serve transport. *)
let fnv32 s =
  let h = ref 0x811c9dc5 in
  String.iter
    (fun c ->
      h := !h lxor Char.code c;
      h := !h * 16777619 land 0xFFFFFFFF)
    s;
  !h

let put_u8 b v = Buffer.add_char b (Char.chr (v land 0xFF))

let put_u16 b v =
  put_u8 b (v lsr 8);
  put_u8 b v

let put_u32 b v =
  put_u16 b (v lsr 16);
  put_u16 b v

let put_u64i b v =
  put_u32 b (v lsr 32);
  put_u32 b v

let put_u64 b v =
  put_u32 b (Int64.to_int (Int64.shift_right_logical v 32) land 0xFFFFFFFF);
  put_u32 b (Int64.to_int v land 0xFFFFFFFF)

let put_str b s =
  let s = if String.length s > 0xFFFF then String.sub s 0 0xFFFF else s in
  put_u16 b (String.length s);
  Buffer.add_string b s

let encode_body e =
  let b = Buffer.create 64 in
  put_u64i b e.e_seq;
  put_u64 b e.e_trace;
  (match e.e_ev with
  | E_event (Trace.Span_begin { label; n }) ->
    put_u8 b 1;
    put_str b label;
    put_u32 b n
  | E_event (Trace.Span_end { label; n }) ->
    put_u8 b 2;
    put_str b label;
    put_u32 b n
  | E_event (Trace.Node_local { id; bits; queries = q }) ->
    put_u8 b 3;
    put_u32 b id;
    put_u32 b bits;
    put_u32 b q.View.id_reads;
    put_u32 b q.View.n_reads;
    put_u32 b q.View.deg_reads;
    put_u32 b q.View.neighbor_reads
  | E_event (Trace.Referee_absorb { id; bits }) ->
    put_u8 b 4;
    put_u32 b id;
    put_u32 b bits
  | E_event (Trace.Fault_injected { id; fault }) ->
    put_u8 b 5;
    put_u32 b id;
    put_str b (Faults.fault_to_string fault)
  | E_event (Trace.Referee_broadcast { round; bits }) ->
    put_u8 b 6;
    put_u32 b round;
    put_u32 b bits
  | E_event (Trace.Referee_done { label; n; max_bits; total_bits }) ->
    put_u8 b 7;
    put_str b label;
    put_u32 b n;
    put_u32 b max_bits;
    put_u32 b total_bits
  | E_note (code, detail) ->
    put_u8 b 8;
    put_str b code;
    put_str b detail);
  Buffer.contents b

let dump t =
  let entries =
    fold_slots t
      (fun acc s ->
        let w = s.written in
        let lo = max 0 (w - t.cap) in
        let acc = ref acc in
        for k = lo to w - 1 do
          match s.arr.(k mod t.cap) with
          | Some e -> acc := e :: !acc
          | None -> ()
        done;
        !acc)
      []
  in
  let entries =
    List.sort (fun a b -> compare a.e_seq b.e_seq) entries
  in
  let b = Buffer.create 4096 in
  Buffer.add_string b magic;
  put_u64i b (recorded t);
  put_u64i b (dropped t);
  put_u32 b (List.length entries);
  List.iter
    (fun e ->
      let body = encode_body e in
      put_u32 b (String.length body);
      put_u32 b (fnv32 body);
      Buffer.add_string b body)
    entries;
  Buffer.contents b

let dump_to_file t path =
  match open_out_bin path with
  | oc ->
    output_string oc (dump t);
    close_out oc;
    Ok ()
  | exception Sys_error e -> Error e

(* ---------- decoding ---------- *)

type item = {
  i_seq : int;
  i_trace : int64;
  i_kind : string;
  i_line : string option;
  i_note : (string * string) option;
}

type finding = { f_offset : int; f_reason : string }

type decoded = {
  d_recorded : int;
  d_dropped : int;
  d_items : item list;
  d_findings : finding list;
}

exception Bad of string

let need s pos n =
  if !pos + n > String.length s then
    raise (Bad (Printf.sprintf "truncated: need %d bytes at offset %d" n !pos))

let gu8 s pos =
  need s pos 1;
  let v = Char.code s.[!pos] in
  pos := !pos + 1;
  v

let gu16 s pos =
  let hi = gu8 s pos in
  (hi lsl 8) lor gu8 s pos

let gu32 s pos =
  let hi = gu16 s pos in
  (hi lsl 16) lor gu16 s pos

let gu64i s pos =
  let hi = gu32 s pos in
  (hi lsl 32) lor gu32 s pos

let gu64 s pos =
  let hi = gu32 s pos in
  let lo = gu32 s pos in
  Int64.logor
    (Int64.shift_left (Int64.of_int hi) 32)
    (Int64.of_int lo)

let gstr s pos =
  let len = gu16 s pos in
  need s pos len;
  let v = String.sub s !pos len in
  pos := !pos + len;
  v

(* A record body, already digest-checked.  Raises [Bad] on malformed
   contents; the caller turns that into a finding. *)
let decode_body body =
  let pos = ref 0 in
  let seq = gu64i body pos in
  let trace = gu64 body pos in
  let tag = gu8 body pos in
  let session = trace in
  let event_item kind ev =
    {
      i_seq = seq;
      i_trace = trace;
      i_kind = kind;
      i_line = Some (Trace.json_of_event ~session ev);
      i_note = None;
    }
  in
  let item =
    match tag with
    | 1 ->
      let label = gstr body pos in
      let n = gu32 body pos in
      event_item "span_begin" (Trace.Span_begin { label; n })
    | 2 ->
      let label = gstr body pos in
      let n = gu32 body pos in
      event_item "span_end" (Trace.Span_end { label; n })
    | 3 ->
      let id = gu32 body pos in
      let bits = gu32 body pos in
      let id_reads = gu32 body pos in
      let n_reads = gu32 body pos in
      let deg_reads = gu32 body pos in
      let neighbor_reads = gu32 body pos in
      let queries = { View.id_reads; n_reads; deg_reads; neighbor_reads } in
      event_item "local" (Trace.Node_local { id; bits; queries })
    | 4 ->
      let id = gu32 body pos in
      let bits = gu32 body pos in
      event_item "absorb" (Trace.Referee_absorb { id; bits })
    | 5 ->
      (* no parser back to Faults.fault exists; render the line with
         the fault's string form, matching Trace.json_of_event *)
      let id = gu32 body pos in
      let fault = gstr body pos in
      {
        i_seq = seq;
        i_trace = trace;
        i_kind = "fault";
        i_line =
          Some
            (Printf.sprintf {|{"session_id":"%s","event":"fault","id":%d,"fault":%s}|}
               (hex_of_trace trace) id (Trace.json_string fault));
        i_note = None;
      }
    | 6 ->
      let round = gu32 body pos in
      let bits = gu32 body pos in
      event_item "broadcast" (Trace.Referee_broadcast { round; bits })
    | 7 ->
      let label = gstr body pos in
      let n = gu32 body pos in
      let max_bits = gu32 body pos in
      let total_bits = gu32 body pos in
      event_item "done" (Trace.Referee_done { label; n; max_bits; total_bits })
    | 8 ->
      let code = gstr body pos in
      let detail = gstr body pos in
      {
        i_seq = seq;
        i_trace = trace;
        i_kind = "note";
        i_line = None;
        i_note = Some (code, detail);
      }
    | t -> raise (Bad (Printf.sprintf "unknown record tag %d" t))
  in
  if !pos <> String.length body then
    raise (Bad (Printf.sprintf "trailing bytes in record body at %d" !pos));
  item

let decode s =
  let findings = ref [] in
  let flag off reason = findings := { f_offset = off; f_reason = reason } :: !findings in
  let header_len = String.length magic + 8 + 8 + 4 in
  if String.length s < header_len then begin
    flag 0 (Printf.sprintf "truncated header: %d bytes, need %d" (String.length s) header_len);
    { d_recorded = 0; d_dropped = 0; d_items = []; d_findings = List.rev !findings }
  end
  else if String.sub s 0 (String.length magic) <> magic then begin
    flag 0 "bad magic: not a .flight file";
    { d_recorded = 0; d_dropped = 0; d_items = []; d_findings = List.rev !findings }
  end
  else begin
    let pos = ref (String.length magic) in
    let d_recorded = gu64i s pos in
    let d_dropped = gu64i s pos in
    let count = gu32 s pos in
    let items = ref [] in
    let parsed = ref 0 in
    let stop = ref false in
    while (not !stop) && !pos < String.length s do
      let frame_off = !pos in
      if String.length s - !pos < 8 then begin
        flag frame_off
          (Printf.sprintf "truncated record header: %d trailing bytes" (String.length s - !pos));
        stop := true
      end
      else begin
        let len = gu32 s pos in
        let digest = gu32 s pos in
        if len > max_record then begin
          flag frame_off (Printf.sprintf "declared record length %d exceeds limit %d" len max_record);
          stop := true
        end
        else if !pos + len > String.length s then begin
          flag frame_off
            (Printf.sprintf "truncated record body: declared %d, %d available" len
               (String.length s - !pos));
          stop := true
        end
        else begin
          let body = String.sub s !pos len in
          pos := !pos + len;
          if fnv32 body <> digest then flag frame_off "record digest mismatch"
          else
            match decode_body body with
            | item ->
              items := item :: !items;
              incr parsed
            | exception Bad reason -> flag frame_off reason
        end
      end
    done;
    if !parsed <> count then
      flag (String.length s)
        (Printf.sprintf "header declares %d records, decoded %d intact" count !parsed);
    { d_recorded; d_dropped; d_items = List.rev !items; d_findings = List.rev !findings }
  end

let decode_file path =
  match open_in_bin path with
  | ic -> (
    match really_input_string ic (in_channel_length ic) with
    | s ->
      close_in ic;
      Ok (decode s)
    | exception End_of_file ->
      close_in ic;
      Error (path ^ ": file shrank while reading")
    | exception Sys_error e ->
      close_in ic;
      Error e)
  | exception Sys_error e -> Error e

(* ---------- mid-flight session detection ---------- *)

(* Terminal markers: a session that reached any disposition — a
   Referee_done event or a verdict / quarantine / reject / evidence
   note — is not mid-flight. *)
let terminal_note = function
  | "verdict" | "quarantine" | "reject" | "evidence" -> true
  | _ -> false

type probe = {
  mutable p_events : int;
  mutable p_absorbed : int;
  mutable p_last : string;
  mutable p_last_seq : int;
  mutable p_terminal : bool;
}

let open_traces items =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun it ->
      if not (Int64.equal it.i_trace 0L) then begin
        let p =
          match Hashtbl.find_opt tbl it.i_trace with
          | Some p -> p
          | None ->
            let p =
              { p_events = 0; p_absorbed = 0; p_last = ""; p_last_seq = 0; p_terminal = false }
            in
            Hashtbl.add tbl it.i_trace p;
            p
        in
        p.p_events <- p.p_events + 1;
        if it.i_kind = "absorb" then p.p_absorbed <- p.p_absorbed + 1;
        if it.i_seq >= p.p_last_seq then begin
          p.p_last_seq <- it.i_seq;
          p.p_last <-
            (match it.i_note with
            | Some (code, _) -> code
            | None -> it.i_kind)
        end;
        (match it.i_note with
        | Some (code, _) when terminal_note code -> p.p_terminal <- true
        | _ -> ());
        if it.i_kind = "done" then p.p_terminal <- true
      end)
    items;
  Hashtbl.fold
    (fun trace p acc ->
      if p.p_terminal then acc
      else
        ( trace,
          Printf.sprintf "mid-flight: events=%d absorbed=%d last=%s seq=%d" p.p_events
            p.p_absorbed p.p_last p.p_last_seq )
        :: acc)
    tbl []
  |> List.sort compare
