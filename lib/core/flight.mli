(** Crash-safe flight recorder: per-domain ring buffers of
    binary-encoded trace events.

    The referee daemon's evidence trail — which frames arrived, which
    bits were charged, which referee state a session reached — must
    survive the process that produced it.  A {!t} holds one
    fixed-capacity ring per domain; {!record} appends a {!Trace.event}
    (and {!note} an out-of-band lifecycle fact) tagged with a 64-bit
    session trace id and a globally unique sequence number.  When a ring
    is full the {e oldest} entry is overwritten and a drop counter
    ticks; recording never blocks and never allocates beyond the entry
    itself.

    {b Determinism.} Sequence numbers come from one atomic counter, and
    {!dump} renders entries sorted by sequence number with a fixed
    binary layout — two processes that record the same entries in the
    same order produce byte-identical dumps, whatever the domain width.

    {b Hostile input.} {!decode} is total: truncated headers, corrupt
    digests and malformed bodies become {!finding}s, never exceptions —
    a half-written dump from a [kill -9] still yields every intact
    record.

    The dump format is documented in DESIGN.md §15. *)

type t

(** [create ?capacity ()] is a recorder whose per-domain rings hold
    [capacity] entries each (default 4096, clamped to at least 16). *)
val create : ?capacity:int -> unit -> t

(** [record t ~trace ev] appends [ev] under session id [trace] to the
    calling domain's ring. *)
val record : t -> trace:int64 -> Trace.event -> unit

(** [note t ~trace ~code ~detail] appends an out-of-band lifecycle fact
    (quarantine, credit violation, typed reject, …).  Notes share the
    sequence space with events but are {e not} fed to {!Report} on
    decode — the report parser owns the trace-event schema only. *)
val note : t -> trace:int64 -> code:string -> detail:string -> unit

(** Entries ever recorded (including since-overwritten ones). *)
val recorded : t -> int

(** Entries overwritten before any dump could capture them. *)
val dropped : t -> int

(** Entries currently held across all rings. *)
val occupancy : t -> int

(** Per-domain ring capacity. *)
val capacity : t -> int

(** Forget everything, including counters.  For benchmarks and tests;
    not crash-safe bookkeeping. *)
val reset : t -> unit

(** [dump t] is the [.flight] byte image of the current contents:
    header, then every live entry sorted by sequence number,
    length-framed and digest-protected. *)
val dump : t -> string

(** [dump_to_file t path] writes {!dump} atomically enough for a crash
    dump (single [open]/[write]/[close]); [Error] carries the reason. *)
val dump_to_file : t -> string -> (unit, string) result

(** One decoded entry.  [i_line] is a {!Trace}-schema JSONL line with a
    ["session_id"] field injected — exactly what {!Report.ingest_line}
    accepts — for trace events, and [None] for notes; [i_note] is the
    [(code, detail)] pair for notes. *)
type item = {
  i_seq : int;
  i_trace : int64;
  i_kind : string;  (** event tag: ["span_begin"] … ["done"], or ["note"] *)
  i_line : string option;
  i_note : (string * string) option;
}

type finding = { f_offset : int; f_reason : string }

type decoded = {
  d_recorded : int;  (** recorder's lifetime count at dump time *)
  d_dropped : int;  (** recorder's drop count at dump time *)
  d_items : item list;  (** intact records, in sequence order *)
  d_findings : finding list;  (** everything wrong with the byte image *)
}

(** Total: any byte string decodes to records plus findings. *)
val decode : string -> decoded

(** [decode_file path] reads and {!decode}s; [Error] only for I/O
    failures (a corrupt {e readable} file still decodes). *)
val decode_file : string -> (decoded, string) result

(** [open_traces items] lists sessions found mid-flight: trace ids with
    recorded activity but no terminal ["done"] event and no terminal
    note, each with a one-line evidence summary suitable for a
    [Rejected {reason = Evidence}] frame.  Trace id 0 (unsessioned
    activity) is ignored. *)
val open_traces : item list -> (int64 * string) list

(** 16-digit lowercase hex, zero-padded — the wire/JSON spelling. *)
val hex_of_trace : int64 -> string

val trace_of_hex : string -> int64 option
