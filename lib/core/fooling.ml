open Refnet_bits
open Refnet_graph

type 'a pair = { g1 : Graph.t; g2 : Graph.t; out1 : 'a; out2 : 'a }

let truncate ~budget (p : 'a Protocol.t) : 'a Protocol.t =
  {
    p with
    name = Printf.sprintf "%s|%d log n" p.Protocol.name budget;
    local =
      (fun v ->
        let m = p.Protocol.local v in
        let limit = budget * Bounds.id_bits (View.n v) in
        if Message.bits m <= limit then m
        else begin
          let r = Message.reader m in
          Bit_reader.read_bitvec r ~len:limit
        end);
  }

let vector_key ~n ~local g =
  let buf = Buffer.create 64 in
  for id = 1 to n do
    let m = local (View.make ~n ~id ~neighbors:(Graph.neighbors g id)) in
    Buffer.add_string buf (Bitvec.to_string m);
    Buffer.add_char buf '|'
  done;
  Buffer.contents buf

let find_pair ~n ~property ~local enum =
  let seen : (string, Graph.t) Hashtbl.t = Hashtbl.create 1024 in
  let found = ref None in
  (try
     enum (fun g ->
         let key = vector_key ~n ~local g in
         match Hashtbl.find_opt seen key with
         | None -> Hashtbl.add seen key g
         | Some g' ->
           let out1 = property g' and out2 = property g in
           if out1 <> out2 then begin
             found := Some { g1 = g'; g2 = g; out1; out2 };
             raise Exit
           end)
   with Exit -> ());
  !found

let fooling_pair_for ~n ~budget p ~property =
  let clipped = truncate ~budget p in
  find_pair ~n ~property ~local:clipped.Protocol.local (Enumerate.iter n)

let certify = find_pair

let vector_count ~n ~local enum =
  let seen = Hashtbl.create 1024 in
  enum (fun g -> Hashtbl.replace seen (vector_key ~n ~local g) ());
  Hashtbl.length seen
