(** Constructive refutation of concrete frugal protocols.

    Lemma 1 is an existence argument: too many graphs, too few message
    vectors.  This module makes it constructive for any {e given}
    protocol: enumerate a graph family, index graphs by their full
    message vector, and return a {e fooling pair} — two graphs the
    referee provably cannot tell apart (identical message vectors) that
    disagree on the property.  One pair is a complete proof that this
    protocol fails; finding none over a family certifies the protocol on
    it.

    {!truncate} turns any protocol into a "best-effort frugal" one by
    clipping each message to a bit budget — modelling the inevitably
    lossy compression a frugal square/triangle/diameter protocol would
    need, and giving the search something to refute. *)

open Refnet_graph

type 'a pair = { g1 : Graph.t; g2 : Graph.t; out1 : 'a; out2 : 'a }
(** Two indistinguishable graphs and the property values they should
    have produced. *)

(** [truncate ~budget p] clips every local message of [p] to
    [budget * ceil(log2 (n + 1))] bits (dropping the tail).  The global
    function is unchanged and receives the clipped messages — decision
    protocols whose referee reads beyond the clip see zero-padding
    (reader exhaustion is the caller's concern; the reference oracles
    read fixed layouts and simply see fewer distinct inputs). *)
val truncate : budget:int -> 'a Protocol.t -> 'a Protocol.t

(** [find_pair ~n ~property ~local enum] enumerates graphs of order [n]
    via [enum] (e.g. {!Refnet_graph.Enumerate.iter}), computes each
    graph's message vector with [local] (evaluated on engine-built views),
    and returns the first two
    graphs with equal vectors but different [property] values. *)
val find_pair :
  n:int ->
  property:(Graph.t -> 'a) ->
  local:(View.t -> Message.t) ->
  ((Graph.t -> unit) -> unit) ->
  'a pair option

(** [fooling_pair_for ~n ~budget p ~property] specializes {!find_pair}
    to the truncation of [p] over all labelled graphs of order [n]. *)
val fooling_pair_for :
  n:int -> budget:int -> 'b Protocol.t -> property:(Graph.t -> 'a) -> 'a pair option

(** [certify ~n ~property ~local enum] is [None] when no fooling pair
    exists — the message vectors separate every pair of graphs the
    property separates (injectivity where it matters). *)
val certify :
  n:int ->
  property:(Graph.t -> 'a) ->
  local:(View.t -> Message.t) ->
  ((Graph.t -> unit) -> unit) ->
  'a pair option

(** [vector_count ~n ~local enum] is the number of distinct message
    vectors over the enumeration — the protocol's effective capacity,
    to compare against the family size (Lemma 1 numerically). *)
val vector_count :
  n:int ->
  local:(View.t -> Message.t) ->
  ((Graph.t -> unit) -> unit) ->
  int
