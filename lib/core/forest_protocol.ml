open Refnet_bits
open Refnet_graph

let message_bits = Bounds.forest_message_bits

let local v =
  let n = View.n v in
  let w = Bounds.id_bits n in
  let wr = Bit_writer.create () in
  Codes.write_fixed wr ~width:w (View.id v);
  Codes.write_fixed wr ~width:w (View.deg v);
  (* Sum of at most n identifiers of at most n: fits 2w bits. *)
  Codes.write_fixed wr ~width:(2 * w) (View.fold_neighbors v 0 ( + ));
  Message.of_writer wr

exception Malformed

(* Streaming referee state: the (degree, neighbour-ID-sum) tables,
   allocated once at [init] — each absorb decodes one triple in place,
   so referee memory is O(n) words total and O(1) per message. *)
type state = { deg : int array; sum : int array; mutable bad : bool }

let init ~n = { deg = Array.make n 0; sum = Array.make n 0; bad = false }

let absorb ~n st ~id msg =
  (try
     let w = Bounds.id_bits n in
     let r = Message.reader msg in
     if Codes.read_fixed r ~width:w <> id then raise Malformed;
     let d = Codes.read_fixed r ~width:w in
     if d > n - 1 then raise Malformed;
     st.deg.(id - 1) <- d;
     st.sum.(id - 1) <- Codes.read_fixed r ~width:(2 * w)
   with Malformed | Bit_reader.Exhausted -> st.bad <- true);
  st

let finish ~n { deg; sum; bad } =
  if bad then None
  else begin
    let removed = Array.make n false in
    let b = Graph.Builder.create n in
    (* Queue of candidate prune points; stale entries are skipped. *)
    let queue = Queue.create () in
    for v = 1 to n do
      if deg.(v - 1) <= 1 then Queue.add v queue
    done;
    let processed = ref 0 in
    let ok = ref true in
    while !ok && not (Queue.is_empty queue) do
      let v = Queue.pop queue in
      if not removed.(v - 1) then begin
        if deg.(v - 1) = 1 then begin
          let u = sum.(v - 1) in
          if u < 1 || u > n || u = v || removed.(u - 1) || deg.(u - 1) = 0 then ok := false
          else begin
            Graph.Builder.add_edge b v u;
            deg.(u - 1) <- deg.(u - 1) - 1;
            sum.(u - 1) <- sum.(u - 1) - v;
            if deg.(u - 1) <= 1 then Queue.add u queue
          end
        end
        else if deg.(v - 1) <> 0 || sum.(v - 1) <> 0 then ok := false;
        if !ok then begin
          removed.(v - 1) <- true;
          incr processed
        end
      end
    done;
    if !ok && !processed = n then Some (Graph.Builder.build b) else None
  end

let reconstruct : Graph.t option Protocol.t =
  { name = "forest-reconstruct"; local; referee = Protocol.streaming ~init ~absorb ~finish }

let recognize : bool Protocol.t =
  Protocol.rename "forest-recognize" (Protocol.map_output Option.is_some reconstruct)
