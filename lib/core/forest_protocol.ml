open Refnet_bits
open Refnet_graph

let message_bits = Bounds.forest_message_bits

let local v =
  let n = View.n v in
  let w = Bounds.id_bits n in
  let wr = Bit_writer.create () in
  Codes.write_fixed wr ~width:w (View.id v);
  Codes.write_fixed wr ~width:w (View.deg v);
  (* Sum of at most n identifiers of at most n: fits 2w bits. *)
  Codes.write_fixed wr ~width:(2 * w) (View.fold_neighbors v 0 ( + ));
  Message.of_writer wr

exception Malformed

(* Streaming referee state: the (degree, neighbour-ID-sum) tables,
   allocated once at [init] — each absorb decodes one triple in place,
   so referee memory is O(n) words total and O(1) per message. *)
type state = { deg : int array; sum : int array; mutable bad : bool }

let init ~n = { deg = Array.make n 0; sum = Array.make n 0; bad = false }

let absorb ~n st ~id msg =
  (try
     let w = Bounds.id_bits n in
     let r = Message.reader msg in
     if Codes.read_fixed r ~width:w <> id then raise Malformed;
     let d = Codes.read_fixed r ~width:w in
     if d > n - 1 then raise Malformed;
     st.deg.(id - 1) <- d;
     st.sum.(id - 1) <- Codes.read_fixed r ~width:(2 * w)
   with Malformed | Bit_reader.Exhausted -> st.bad <- true);
  st

(* Leaf-prune over complete (degree, sum) tables; mutates them.  Each
   recovered edge is reported through [on_edge]; returns whether the
   tables were a consistent forest.  Memory beyond the tables is O(n)
   bits + the queue — in particular no [Graph.Builder] (whose n^2-bit
   incidence matrix is what caps reconstruction at moderate n; the
   recognizer below skips it and runs at n = 10^6+). *)
let prune_tables ~n ~on_edge deg sum =
  let removed = Array.make n false in
  (* Queue of candidate prune points; stale entries are skipped. *)
  let queue = Queue.create () in
  for v = 1 to n do
    if deg.(v - 1) <= 1 then Queue.add v queue
  done;
  let processed = ref 0 in
  let ok = ref true in
  while !ok && not (Queue.is_empty queue) do
    let v = Queue.pop queue in (* lint: allow exn-escape -- pop guarded by is_empty in the loop condition *)
    if not removed.(v - 1) then begin
      if deg.(v - 1) = 1 then begin
        let u = sum.(v - 1) in
        if u < 1 || u > n || u = v || removed.(u - 1) || deg.(u - 1) = 0 then ok := false
        else begin
          on_edge v u;
          deg.(u - 1) <- deg.(u - 1) - 1;
          sum.(u - 1) <- sum.(u - 1) - v;
          if deg.(u - 1) <= 1 then Queue.add u queue
        end
      end
      else if deg.(v - 1) <> 0 || sum.(v - 1) <> 0 then ok := false;
      if !ok then begin
        removed.(v - 1) <- true;
        incr processed
      end
    end
  done;
  !ok && !processed = n

let decode_tables ~n deg sum =
  let b = Graph.Builder.create n in
  if prune_tables ~n ~on_edge:(fun v u -> Graph.Builder.add_edge b v u) deg sum then
    Some (Graph.Builder.build b)
  else None

let finish ~n { deg; sum; bad } = if bad then None else decode_tables ~n deg sum

let reconstruct : Graph.t option Protocol.t =
  { name = "forest-reconstruct"; local; referee = Protocol.streaming ~init ~absorb ~finish }

(* Same messages, same prune, no reconstruction: the recognizer's
   referee never allocates an incidence matrix, so its peak memory is
   the two int tables — O(n) words at any n.  Output is exactly
   [Option.is_some] of {!reconstruct}'s by construction ([prune_tables]
   is the shared decision procedure). *)
let recognize : bool Protocol.t =
  {
    name = "forest-recognize";
    local;
    referee =
      Protocol.streaming ~init ~absorb
        ~finish:(fun ~n { deg; sum; bad } ->
          (not bad) && prune_tables ~n ~on_edge:(fun _ _ -> ()) deg sum);
  }

(* ---------- crash/corruption-tolerant variant ---------- *)

(* Same tables plus per-id channel bookkeeping.  [trusted] marks rows
   that survived {!Message.unseal} — in the honest-senders fault model
   an authenticated row is a true statement about the input. *)
type hstate = {
  hdeg : int array;
  hsum : int array;
  trusted : bool array;
  hseen : bool array;
  mutable hmal : int list;
  mutable hdup : int list;
}

let hinit ~n =
  {
    hdeg = Array.make n 0;
    hsum = Array.make n 0;
    trusted = Array.make n false;
    hseen = Array.make n false;
    hmal = [];
    hdup = [];
  }

let habsorb ~n st ~id msg =
  if id < 1 || id > n then st.hmal <- id :: st.hmal
  else if st.hseen.(id - 1) then st.hdup <- id :: st.hdup
  else begin
    st.hseen.(id - 1) <- true;
    match Message.unseal ~n ~id msg with
    | None -> st.hmal <- id :: st.hmal
    | Some payload -> (
      match
        let w = Bounds.id_bits n in
        if Message.bits payload <> message_bits n then raise Malformed;
        let r = Message.reader payload in
        if Codes.read_fixed r ~width:w <> id then raise Malformed;
        let d = Codes.read_fixed r ~width:w in
        if d > n - 1 then raise Malformed;
        (d, Codes.read_fixed r ~width:(2 * w))
      with
      | d, s ->
        st.hdeg.(id - 1) <- d;
        st.hsum.(id - 1) <- s;
        st.trusted.(id - 1) <- true
      | exception (Malformed | Bit_reader.Exhausted) -> st.hmal <- id :: st.hmal)
  end;
  st

(* Leaf-prune restricted to trusted rows.  Every edge added is asserted
   by an authentic degree-1 row, so under crash-only plans the result is
   exactly the set of input edges incident to a resolved node; a row
   pointing at an already-exhausted partner means the authenticated rows
   are mutually inconsistent (impossible for honest rows on any simple
   graph), so we refuse rather than guess. *)
let partial_prune ~n ~trusted deg sum =
  let resolved = Array.make n false in
  let b = Graph.Builder.create n in
  let queue = Queue.create () in
  for v = 1 to n do
    if trusted.(v - 1) && deg.(v - 1) <= 1 then Queue.add v queue
  done;
  match
    while not (Queue.is_empty queue) do
      let v = Queue.pop queue in (* lint: allow exn-escape -- pop guarded by is_empty in the loop condition *)
      if not resolved.(v - 1) then begin
        if deg.(v - 1) = 1 then begin
          let u = sum.(v - 1) in
          if u < 1 || u > n || u = v then raise Exit;
          if trusted.(u - 1) then begin
            if resolved.(u - 1) || deg.(u - 1) = 0 then raise Exit;
            Graph.Builder.add_edge b v u;
            deg.(u - 1) <- deg.(u - 1) - 1;
            sum.(u - 1) <- sum.(u - 1) - v;
            if sum.(u - 1) < 0 then raise Exit;
            if deg.(u - 1) <= 1 then Queue.add u queue
          end
          else Graph.Builder.add_edge b v u
        end
        else if sum.(v - 1) <> 0 then raise Exit;
        resolved.(v - 1) <- true
      end
    done
  with
  | () ->
    let undetermined = ref [] in
    for v = n downto 1 do
      if not resolved.(v - 1) then undetermined := v :: !undetermined
    done;
    Some (Graph.Builder.build b, !undetermined)
  | exception (Exit | Invalid_argument _) -> None

let hfinish ~n st =
  let missing = ref [] in
  for id = n downto 1 do
    if not st.hseen.(id - 1) then missing := id :: !missing
  done;
  let report =
    {
      Verdict.missing = !missing;
      malformed = List.sort_uniq Stdlib.compare st.hmal;
      duplicated = List.sort_uniq Stdlib.compare st.hdup;
      undetermined = [];
    }
  in
  if Verdict.channel_clean report then Verdict.Decided (decode_tables ~n st.hdeg st.hsum)
  else
    match partial_prune ~n ~trusted:st.trusted st.hdeg st.hsum with
    | None -> Verdict.Inconclusive "authenticated messages are mutually inconsistent"
    | Some (g, undetermined) -> Verdict.Degraded (Some g, { report with Verdict.undetermined })

let hardened : Graph.t option Verdict.t Protocol.t =
  {
    name = "forest-reconstruct+sealed";
    local = (fun v -> Message.seal ~n:(View.n v) ~id:(View.id v) (local v));
    referee = Protocol.streaming ~init:hinit ~absorb:habsorb ~finish:hfinish;
  }

let hardened_message_bits n = message_bits n + Message.digest_bits
