(** The Section III.A protocol: one-round reconstruction of forests.

    Each node sends the triple (identifier, degree, sum of neighbour
    identifiers) — under [4 log n] bits.  The referee repeatedly prunes a
    leaf: a degree-1 triple pins its unique neighbour (the sum {e is} the
    neighbour), and the neighbour's triple is patched as if the leaf had
    never existed.  If pruning stalls before the graph is exhausted, the
    input contained a cycle. *)

(** [reconstruct] outputs [Some g] when the input is a forest, [None]
    when it contains a cycle (or messages are inconsistent). *)
val reconstruct : Refnet_graph.Graph.t option Protocol.t

(** [recognize] decides "is the input a forest?" with the same
    messages. *)
val recognize : bool Protocol.t

(** [message_bits n] is the exact fixed-width message length used at
    size [n] (= {!Bounds.forest_message_bits}). *)
val message_bits : int -> int

(** [hardened] is the crash/corruption-tolerant variant: each node
    {!Message.seal}s its triple, and the referee keeps only
    authenticated rows.  On a clean channel the verdict is
    [Decided (reconstruct's answer)].  Under faults it leaf-prunes the
    trusted rows alone: senders are honest, so every surviving row is
    true, and the pruned edges are {e exactly} the input edges incident
    to a node the prune fully resolved (under crash-only plans); the
    verdict is [Degraded (Some partial, report)] with the unresolved
    ids in [report.undetermined].  Authenticated rows that contradict
    each other — impossible for honest rows on any simple graph, hence
    evidence of a forged seal — yield [Inconclusive].  Never a wrong
    [Decided]: corruption is either detected by the seal (up to the
    [2^-32] digest collision rate) or surfaces as missing rows. *)
val hardened : Refnet_graph.Graph.t option Verdict.t Protocol.t

(** [hardened_message_bits n] = [message_bits n + Message.digest_bits]. *)
val hardened_message_bits : int -> int
