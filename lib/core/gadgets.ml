open Refnet_graph

let check g s t name =
  let n = Graph.order g in
  if s < 1 || s > n || t < 1 || t > n || s = t then
    invalid_arg ("Gadgets." ^ name ^ ": bad vertex pair")

let square g s t =
  check g s t "square";
  let n = Graph.order g in
  let extra =
    ((n + s, n + t) :: List.init n (fun i -> (i + 1, n + i + 1)))
  in
  Graph.add_edges (Graph.add_vertices g n) extra

let diameter g s t =
  check g s t "diameter";
  let n = Graph.order g in
  let extra =
    ((s, n + 1) :: (t, n + 2) :: List.init n (fun v -> (v + 1, n + 3)))
  in
  Graph.add_edges (Graph.add_vertices g 3) extra

let triangle g s t =
  check g s t "triangle";
  let n = Graph.order g in
  Graph.add_edges (Graph.add_vertices g 1) [ (s, n + 1); (t, n + 1) ]

(* Incremental gadget instantiation: a sweep over all O(n^2) vertex
   pairs re-reads the same base graph every time, so the pair-independent
   part (base edges, pendants, universal vertex) is loaded once into a
   pre-sized builder and only the pair-specific edges are toggled around
   each [build].  One [Batch.t] per domain makes the O(n^2) sweep safe to
   distribute over the pool. *)
module Batch = struct
  type kind = Square | Diameter | Triangle

  type t = { base : Graph.Builder.t; n : int; kind : kind }

  let load b g =
    Graph.iter_edges g (fun u v -> Graph.Builder.add_edge b u v)

  let square g =
    let n = Graph.order g in
    let b = Graph.Builder.create (2 * n) in
    load b g;
    for i = 1 to n do
      Graph.Builder.add_edge b i (n + i)
    done;
    { base = b; n; kind = Square }

  let diameter g =
    let n = Graph.order g in
    let b = Graph.Builder.create (n + 3) in
    load b g;
    for v = 1 to n do
      Graph.Builder.add_edge b v (n + 3)
    done;
    { base = b; n; kind = Diameter }

  let triangle g =
    let n = Graph.order g in
    let b = Graph.Builder.create (n + 1) in
    load b g;
    { base = b; n; kind = Triangle }

  let check_pair batch s t =
    let n = batch.n in
    if s < 1 || s > n || t < 1 || t > n || s = t then
      invalid_arg "Gadgets.Batch.instantiate: bad vertex pair"

  let with_edges b edges =
    List.iter (fun (u, v) -> Graph.Builder.add_edge b u v) edges;
    let g = Graph.Builder.build b in
    List.iter (fun (u, v) -> Graph.Builder.remove_edge b u v) edges;
    g

  let instantiate batch ~s ~t =
    check_pair batch s t;
    let n = batch.n in
    match batch.kind with
    | Square -> with_edges batch.base [ (n + s, n + t) ]
    | Diameter -> with_edges batch.base [ (s, n + 1); (t, n + 2) ]
    | Triangle -> with_edges batch.base [ (s, n + 1); (t, n + 1) ]
end

let square_fictitious ~n ~s ~t j =
  if j <= n || j > 2 * n then invalid_arg "Gadgets.square_fictitious: not a fictitious vertex";
  if j = n + s then [ s; n + t ]
  else if j = n + t then [ t; n + s ]
  else [ j - n ]

let diameter_fictitious ~n ~s ~t j =
  if j = n + 1 then [ s ]
  else if j = n + 2 then [ t ]
  else if j = n + 3 then List.init n (fun i -> i + 1)
  else invalid_arg "Gadgets.diameter_fictitious: not a fictitious vertex"

let triangle_fictitious ~n ~s ~t j =
  if j = n + 1 then [ min s t; max s t ]
  else invalid_arg "Gadgets.triangle_fictitious: not a fictitious vertex"
