(** The auxiliary graphs [G'_{s,t}] of the impossibility proofs
    (Section II).  Each construction turns "is [{s,t}] an edge of [G]?"
    into an instance of the target decision problem.

    All three take a base graph [G] on [1..n] and a vertex pair
    [s <> t]; extra vertices are appended after [n]. *)

open Refnet_graph

(** [square g s t] (Theorem 1) has [2n] vertices: [G], a pendant
    [i -- n+i] for every [i], and the edge [n+s -- n+t].  When [G] is
    square-free, [G'] contains a 4-cycle iff [{s,t}] is an edge of [G].
    @raise Invalid_argument if [s = t] or out of range. *)
val square : Graph.t -> int -> int -> Graph.t

(** [diameter g s t] (Theorem 2, Figure 1) has [n + 3] vertices: [G] plus
    [s -- n+1], [t -- n+2], and a universal [n+3] adjacent to [1..n].
    [G'] has diameter at most 3 iff [{s,t}] is an edge of [G]. *)
val diameter : Graph.t -> int -> int -> Graph.t

(** [triangle g s t] (Theorem 3, Figure 2) has [n + 1] vertices: [G] plus
    [n+1] adjacent to [s] and [t].  When [G] is triangle-free, [G']
    contains a triangle iff [{s,t}] is an edge of [G]. *)
val triangle : Graph.t -> int -> int -> Graph.t

(** Incremental instantiation for O(n²) gadget sweeps.  A [Batch.t]
    pre-loads everything pair-independent — the base graph, the square
    gadget's pendants, the diameter gadget's universal vertex — into one
    pre-sized builder; {!Batch.instantiate} then toggles only the
    pair-specific edges around each build, so a full sweep costs one base
    load instead of n² of them.

    A batch is single-threaded mutable state: when sweeping across the
    {!Parallel} pool, give each domain its own batch (e.g. via
    [Parallel.map_array_ctx]).  Graphs built from the same batch are
    equal to the corresponding {!square} / {!diameter} / {!triangle}
    construction. *)
module Batch : sig
  type t

  val square : Graph.t -> t
  val diameter : Graph.t -> t
  val triangle : Graph.t -> t

  (** [instantiate batch ~s ~t] is the gadget [G'_{s,t}].
      @raise Invalid_argument if [s = t] or out of range. *)
  val instantiate : t -> s:int -> t:int -> Graph.t
end

(** Predicted neighbourhoods of the {e fictitious} vertices — what the
    referee computes locally when simulating an oracle on [G'_{s,t}]
    without seeing [G] (they depend only on [n], [s], [t]). *)

(** [square_fictitious ~n ~s ~t j] is the neighbour set of vertex
    [j in n+1..2n] inside [square g s t]. *)
val square_fictitious : n:int -> s:int -> t:int -> int -> int list

(** [diameter_fictitious ~n ~s ~t j] for [j in n+1..n+3]. *)
val diameter_fictitious : n:int -> s:int -> t:int -> int -> int list

(** [triangle_fictitious ~n ~s ~t j] for [j = n+1]. *)
val triangle_fictitious : n:int -> s:int -> t:int -> int -> int list
