open Refnet_bits
open Refnet_algebra
open Refnet_graph

let message_bits = Bounds.generalized_message_bits

let coord_width ~w p = (p + 2) * w

let local ~k ~n ~id ~neighbors =
  let w = Bounds.id_bits n in
  let wr = Bit_writer.create () in
  Codes.write_fixed wr ~width:w id;
  Codes.write_fixed wr ~width:w (List.length neighbors);
  let is_nbr = Array.make (n + 1) false in
  List.iter (fun u -> is_nbr.(u) <- true) neighbors;
  let non_neighbors =
    List.filter (fun u -> u <> id && not is_nbr.(u)) (List.init n (fun i -> i + 1))
  in
  let encode ids =
    (* Only the k transmitted coordinates are computed; validation still
       admits sets larger than k. *)
    Power_sum.encode ~coords:k ~k:(max k (List.length ids)) ids
  in
  let write enc =
    for p = 0 to k - 1 do
      Nat_codec.write wr ~width:(coord_width ~w p) enc.(p)
    done
  in
  write (encode neighbors);
  write (encode non_neighbors);
  Message.of_writer wr

exception Malformed

(* Streaming referee: both encoding tables allocated once at [init],
   one message decoded per absorb, malformed input poisons the state. *)
type state = {
  s_deg : int array;
  s_enc_n : Power_sum.encoding array;
  s_enc_c : Power_sum.encoding array;
  mutable s_bad : bool;
}

let init ~n =
  { s_deg = Array.make n 0; s_enc_n = Array.make n [||]; s_enc_c = Array.make n [||]; s_bad = false }

let absorb ~k ~n st ~id msg =
  let i = id - 1 in
  (try
     let w = Bounds.id_bits n in
     let r = Message.reader msg in
     if Codes.read_fixed r ~width:w <> id then raise Malformed;
     st.s_deg.(i) <- Codes.read_fixed r ~width:w;
     if st.s_deg.(i) > n - 1 then raise Malformed;
     st.s_enc_n.(i) <- Array.init k (fun p -> Nat_codec.read r ~width:(coord_width ~w p));
     st.s_enc_c.(i) <- Array.init k (fun p -> Nat_codec.read r ~width:(coord_width ~w p))
   with Malformed | Bit_reader.Exhausted -> st.s_bad <- true);
  st

let finish ~(decoder : Degeneracy_protocol.decoder) ~k ~n st =
  if st.s_bad then None
  else
    let deg = st.s_deg and enc_n = st.s_enc_n and enc_c = st.s_enc_c in
    let removed = Array.make n false in
    let remaining = ref n in
    let b = Graph.Builder.create n in
    let ok = ref true in
    (try
       while !ok && !remaining > 0 do
         (* Find a prunable vertex: sparse side or dense side. *)
         let r = !remaining in
         let pick = ref 0 in
         (try
            for v = 1 to n do
              if not removed.(v - 1) then begin
                if deg.(v - 1) <= k || deg.(v - 1) >= r - 1 - k then begin
                  pick := v;
                  raise Exit
                end
              end
            done
          with Exit -> ());
         if !pick = 0 then ok := false
         else begin
           let y = !pick in
           let d = deg.(y - 1) in
           let nbrs =
             if d <= k then decoder ~n ~deg:d enc_n.(y - 1)
             else begin
               (* Decode the complement within the remaining set and
                  invert it. *)
               match decoder ~n ~deg:(r - 1 - d) enc_c.(y - 1) with
               | None -> None
               | Some non ->
                 let keep = Array.make (n + 1) true in
                 List.iter (fun u -> keep.(u) <- false) non;
                 let nbrs = ref [] in
                 for u = n downto 1 do
                   if u <> y && (not removed.(u - 1)) && keep.(u) then nbrs := u :: !nbrs
                 done;
                 (* The decoded complement must consist of remaining
                    vertices. *)
                 if List.exists (fun u -> u = y || u < 1 || u > n || removed.(u - 1)) non
                 then None
                 else Some !nbrs
             end
           in
           match nbrs with
           | None -> ok := false
           | Some nbrs ->
             if List.length nbrs <> d then ok := false
             else begin
               let is_nbr = Array.make (n + 1) false in
               List.iter
                 (fun u ->
                   if u < 1 || u > n || u = y || removed.(u - 1) then ok := false
                   else is_nbr.(u) <- true)
                 nbrs;
               if !ok then begin
                 List.iter (fun u -> Graph.Builder.add_edge b y u) nbrs;
                 for u = 1 to n do
                   if u <> y && not removed.(u - 1) then begin
                     if is_nbr.(u) then begin
                       deg.(u - 1) <- deg.(u - 1) - 1;
                       enc_n.(u - 1) <- Power_sum.subtract enc_n.(u - 1) ~id:y ~upto:k
                     end
                     else enc_c.(u - 1) <- Power_sum.subtract enc_c.(u - 1) ~id:y ~upto:k
                   end
                 done;
                 removed.(y - 1) <- true;
                 decr remaining
               end
             end
         end
       done
     with Invalid_argument _ -> ok := false);
    if !ok then Some (Graph.Builder.build b) else None

let reconstruct ?(decoder = Degeneracy_protocol.newton_decoder) ~k () :
    Graph.t option Protocol.t =
  if k < 0 then invalid_arg "Generalized_degeneracy.reconstruct: negative k";
  {
    name = Printf.sprintf "generalized-degeneracy-%d-reconstruct" k;
    local = (fun v -> local ~k ~n:(View.n v) ~id:(View.id v) ~neighbors:(View.neighbors v));
    referee =
      Protocol.streaming ~init
        ~absorb:(fun ~n st ~id msg -> absorb ~k ~n st ~id msg)
        ~finish:(fun ~n st -> finish ~decoder ~k ~n st);
  }

let recognize ?decoder k =
  Protocol.rename
    (Printf.sprintf "generalized-degeneracy<=%d" k)
    (Protocol.map_output Option.is_some (reconstruct ?decoder ~k ()))
