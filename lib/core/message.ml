open Refnet_bits

type t = Bitvec.t

let bits = Bitvec.length

let of_writer = Bit_writer.contents

let reader = Bit_reader.of_bitvec

let empty = Bitvec.create 0

let concat ms =
  let w = Bit_writer.create () in
  List.iter (fun m -> Bit_writer.add_bitvec w m) ms;
  Bit_writer.contents w

let write_framed w m =
  Codes.write_nonneg w (Bitvec.length m);
  Bit_writer.add_bitvec w m

let read_framed r =
  let len = Codes.read_nonneg r in
  Bit_reader.read_bitvec r ~len

let bundle parts =
  let w = Bit_writer.create () in
  List.iter (write_framed w) parts;
  Bit_writer.contents w

let unbundle ~count msg =
  let r = Bit_reader.of_bitvec msg in
  List.init count (fun _ -> read_framed r)

let equal = Bitvec.equal

let pp = Bitvec.pp
