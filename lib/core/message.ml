open Refnet_bits

type t = Bitvec.t

let bits = Bitvec.length

let of_writer = Bit_writer.contents

let reader = Bit_reader.of_bitvec

let empty = Bitvec.create 0

let concat ms =
  let w = Bit_writer.create () in
  List.iter (fun m -> Bit_writer.add_bitvec w m) ms;
  Bit_writer.contents w

exception Malformed

let write_framed w m =
  Codes.write_nonneg w (Bitvec.length m);
  Bit_writer.add_bitvec w m

let read_framed r =
  (* The declared length is attacker-controlled: check it against the
     bits actually present before touching the payload, and fold every
     decoder failure (truncated gamma header, absurd widths) into the
     one documented exception. *)
  match
    let len = Codes.read_nonneg r in
    if len < 0 || len > Bit_reader.remaining r then raise Malformed;
    Bit_reader.read_bitvec r ~len
  with
  | part -> part
  | exception (Bit_reader.Exhausted | Invalid_argument _) -> raise Malformed

let bundle parts =
  let w = Bit_writer.create () in
  List.iter (write_framed w) parts;
  Bit_writer.contents w

let unbundle ~count msg =
  let r = Bit_reader.of_bitvec msg in
  List.init count (fun _ -> read_framed r)

(* ---------- integrity seals ---------- *)

let digest_bits = 32

let fnv_prime = 16777619
let fnv_mask = 0xffffffff

let fnv_byte h b = ((h lxor b) * fnv_prime) land fnv_mask

let fnv_int h v =
  let h = ref h in
  for i = 0 to 7 do
    h := fnv_byte !h ((v lsr (8 * i)) land 0xff)
  done;
  !h

let digest ~n ~id payload =
  let h = ref 0x811c9dc5 in
  h := fnv_int !h n;
  h := fnv_int !h id;
  h := fnv_int !h (Bitvec.length payload);
  let acc = ref 0 and filled = ref 0 in
  for i = 0 to Bitvec.length payload - 1 do
    acc := (!acc lsl 1) lor (if Bitvec.get payload i then 1 else 0);
    incr filled;
    if !filled = 8 then begin
      h := fnv_byte !h !acc;
      acc := 0;
      filled := 0
    end
  done;
  if !filled > 0 then h := fnv_byte !h !acc;
  !h

let seal ~n ~id payload =
  let w = Bit_writer.create () in
  Bit_writer.add_bitvec w payload;
  Codes.write_fixed w ~width:digest_bits (digest ~n ~id payload);
  Bit_writer.contents w

let unseal ~n ~id sealed =
  let len = Bitvec.length sealed - digest_bits in
  if len < 0 then None
  else begin
    let r = Bit_reader.of_bitvec sealed in
    let payload = Bit_reader.read_bitvec r ~len in
    let tag = Bit_reader.read_bits r ~width:digest_bits in
    if tag = digest ~n ~id payload then Some payload else None
  end

let equal = Bitvec.equal

let pp = Bitvec.pp
