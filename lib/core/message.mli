(** Messages sent to the referee.

    A message is a genuine bit string — frugality ([O(log n)] bits per
    node, Definition 1) is measured on real lengths, never estimated. *)

open Refnet_bits

type t = Bitvec.t

(** [bits m] is the exact length in bits. *)
val bits : t -> int

(** [of_writer w] freezes a writer's contents into a message. *)
val of_writer : Bit_writer.t -> t

(** [reader m] starts decoding the message. *)
val reader : t -> Bit_reader.t

val empty : t

(** [concat ms] joins messages; used by reduction protocols that bundle
    several simulated oracle messages into one (each should be written
    self-delimiting by the caller). *)
val concat : t list -> t

(** Self-delimiting framing: each part is written as a gamma-coded
    length followed by the raw bits, so a bundle of [count] parts —
    including empty ones — splits back exactly. *)

(** [bundle parts] frames and concatenates. *)
val bundle : t list -> t

(** [unbundle ~count m] splits a bundle back into [count] parts.
    @raise Refnet_bits.Bit_reader.Exhausted on truncated input. *)
val unbundle : count:int -> t -> t list

(** [write_framed w m] appends one framed part to a writer. *)
val write_framed : Bit_writer.t -> t -> unit

(** [read_framed r] reads one framed part. *)
val read_framed : Bit_reader.t -> t

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
