(** Messages sent to the referee.

    A message is a genuine bit string — frugality ([O(log n)] bits per
    node, Definition 1) is measured on real lengths, never estimated. *)

open Refnet_bits

type t = Bitvec.t

(** [bits m] is the exact length in bits. *)
val bits : t -> int

(** [of_writer w] freezes a writer's contents into a message. *)
val of_writer : Bit_writer.t -> t

(** [reader m] starts decoding the message. *)
val reader : t -> Bit_reader.t

val empty : t

(** [concat ms] joins messages; used by reduction protocols that bundle
    several simulated oracle messages into one (each should be written
    self-delimiting by the caller). *)
val concat : t list -> t

(** Self-delimiting framing: each part is written as a gamma-coded
    length followed by the raw bits, so a bundle of [count] parts —
    including empty ones — splits back exactly. *)

exception Malformed
(** The one exception the framing decoders raise on adversarial input:
    a truncated length header, a declared length exceeding the bits
    actually present, or an absurd gamma width.  It wraps (and replaces
    at this API) {!Refnet_bits.Bit_reader.Exhausted} and the
    [Invalid_argument] failures of the underlying bit decoders, so
    referees need to contain exactly one exception family. *)

(** [bundle parts] frames and concatenates. *)
val bundle : t list -> t

(** [unbundle ~count m] splits a bundle back into [count] parts.
    @raise Malformed if a declared part length exceeds the remaining
    bits, or a length header is truncated or overflows.  Never raises
    [Bit_reader.Exhausted] or [Invalid_argument]. *)
val unbundle : count:int -> t -> t list

(** [write_framed w m] appends one framed part to a writer. *)
val write_framed : Bit_writer.t -> t -> unit

(** [read_framed r] reads one framed part.
    @raise Malformed under the same conditions as {!unbundle}. *)
val read_framed : Bit_reader.t -> t

(** Integrity seals for the hardened (fault-tolerant) protocols.

    A seal appends a {!digest_bits}-bit FNV-1a digest of [(n, id,
    payload)] to the payload.  The digest binds the message to its
    claimed sender, so a referee that [unseal]s with the {e delivery}
    identifier detects bit flips, truncation and spoofed sender ids in
    one check.  This is an error-{e detecting} code against channel
    faults, not a MAC: collisions exist but are a [2^-32] event for the
    fault model's oblivious corruptions. *)

(** Number of digest bits appended by {!seal}. *)
val digest_bits : int

(** [seal ~n ~id m] is [m] followed by its digest. *)
val seal : n:int -> id:int -> t -> t

(** [unseal ~n ~id m] recovers the payload when the digest matches the
    claimed [(n, id)]; [None] when the message is too short or the
    digest disagrees. *)
val unseal : n:int -> id:int -> t -> t option

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
