(* Zero-dependency metrics: one hashtable of named metrics per registry.
   Everything here is plain mutable state touched from the submitting
   domain only (Parallel folds per-domain times in after each join), so
   there is no locking; determinism of a snapshot reduces to determinism
   of the instrumented run plus the injected clock. *)

let domain_slots = 64 (* matches Parallel.width_cap *)

type counter = { mutable c_value : int }
type gauge = { mutable g_value : float }

type histogram = {
  mutable h_count : int;
  mutable h_sum : int;
  mutable h_max : int;
  h_buckets : int array; (* 64 log2 buckets covers every OCaml int *)
}

type timer = {
  mutable t_count : int;
  mutable t_total : float;
  t_domains : float array;
}

type item = C of counter | G of gauge | H of histogram | T of timer

type t = { clock : unit -> float; items : (string, item) Hashtbl.t }

let create ?(clock = Unix.gettimeofday) () = { clock; items = Hashtbl.create 32 }
let now t = t.clock ()

let escape_label_value s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun ch ->
      match ch with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | ch -> Buffer.add_char b ch)
    s;
  Buffer.contents b

let series base labels =
  match labels with
  | [] -> base
  | _ ->
    let b = Buffer.create 32 in
    Buffer.add_string b base;
    Buffer.add_char b '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char b ',';
        Buffer.add_string b k;
        Buffer.add_string b "=\"";
        Buffer.add_string b (escape_label_value v);
        Buffer.add_char b '"')
      labels;
    Buffer.add_char b '}';
    Buffer.contents b

let saturating_add a b = if a > max_int - b then max_int else a + b

module Counter = struct
  type nonrec counter = counter

  let counter t name =
    match Hashtbl.find_opt t.items name with
    | Some (C c) -> c
    | Some _ -> invalid_arg ("Metrics.Counter.counter: " ^ name ^ " is not a counter")
    | None ->
      let c = { c_value = 0 } in
      Hashtbl.add t.items name (C c);
      c

  let add c k =
    if k < 0 then invalid_arg "Metrics.Counter.add: negative increment";
    c.c_value <- saturating_add c.c_value k

  let incr c = add c 1
  let value c = c.c_value
end

module Gauge = struct
  type nonrec gauge = gauge

  let gauge t name =
    match Hashtbl.find_opt t.items name with
    | Some (G g) -> g
    | Some _ -> invalid_arg ("Metrics.Gauge.gauge: " ^ name ^ " is not a gauge")
    | None ->
      let g = { g_value = 0. } in
      Hashtbl.add t.items name (G g);
      g

  let set g v = g.g_value <- v
  let value g = g.g_value
end

module Histogram = struct
  type nonrec histogram = histogram

  let histogram t name =
    match Hashtbl.find_opt t.items name with
    | Some (H h) -> h
    | Some _ -> invalid_arg ("Metrics.Histogram.histogram: " ^ name ^ " is not a histogram")
    | None ->
      let h = { h_count = 0; h_sum = 0; h_max = 0; h_buckets = Array.make 64 0 } in
      Hashtbl.add t.items name (H h);
      h

  (* bucket 0 = {0}; bucket i >= 1 = [2^(i-1), 2^i - 1]: the index is
     the bit width of the value. *)
  let bucket_index v =
    let rec go acc v = if v = 0 then acc else go (acc + 1) (v lsr 1) in
    go 0 v

  let bucket_range i =
    if i <= 0 then (0, 0)
    else if i >= 63 then (1 lsl 62, max_int)
    else ((1 lsl (i - 1)), (1 lsl i) - 1)

  let observe h v =
    if v < 0 then invalid_arg "Metrics.Histogram.observe: negative value";
    h.h_count <- saturating_add h.h_count 1;
    h.h_sum <- saturating_add h.h_sum v;
    if v > h.h_max then h.h_max <- v;
    let i = bucket_index v in
    h.h_buckets.(i) <- saturating_add h.h_buckets.(i) 1

  let count h = h.h_count
  let sum h = h.h_sum
  let max_value h = h.h_max

  let buckets h =
    let out = ref [] in
    for i = Array.length h.h_buckets - 1 downto 0 do
      if h.h_buckets.(i) > 0 then out := (i, h.h_buckets.(i)) :: !out
    done;
    !out

  (* The reported quantile is the upper bound of the first bucket whose
     cumulative count reaches ceil(q·count), clamped to the observed
     max — exact at the log2 resolution the buckets keep. *)
  let quantile_of ~count ~max_value bucket_list q =
    if count = 0 then 0
    else begin
      let q = if q < 0. then 0. else if q > 1. then 1. else q in
      let target = int_of_float (ceil (q *. float_of_int count)) in
      let target = if target < 1 then 1 else target in
      let rec go cum = function
        | [] -> max_value
        | (i, c) :: rest ->
          let cum = cum + c in
          if cum >= target then
            let _, hi = bucket_range i in
            min hi max_value
          else go cum rest
      in
      go 0 bucket_list
    end

  let quantile h q = quantile_of ~count:h.h_count ~max_value:h.h_max (buckets h) q
end

module Timer = struct
  type nonrec timer = timer

  let timer t name =
    match Hashtbl.find_opt t.items name with
    | Some (T tm) -> tm
    | Some _ -> invalid_arg ("Metrics.Timer.timer: " ^ name ^ " is not a timer")
    | None ->
      let tm = { t_count = 0; t_total = 0.; t_domains = Array.make domain_slots 0. } in
      Hashtbl.add t.items name (T tm);
      tm

  let add tm ?(domain = 0) seconds =
    let seconds = if seconds > 0. then seconds else 0. in
    let slot = if domain < 0 then 0 else if domain >= domain_slots then domain_slots - 1 else domain in
    tm.t_total <- tm.t_total +. seconds;
    tm.t_domains.(slot) <- tm.t_domains.(slot) +. seconds

  let count tm = tm.t_count
  let total tm = tm.t_total

  let by_domain tm =
    let out = ref [] in
    for i = domain_slots - 1 downto 0 do
      if tm.t_domains.(i) <> 0. then out := (i, tm.t_domains.(i)) :: !out
    done;
    !out
end

type span = { sp_timer : timer; sp_clock : unit -> float; sp_t0 : float }

let start_span t name =
  let tm = Timer.timer t name in
  { sp_timer = tm; sp_clock = t.clock; sp_t0 = t.clock () }

let stop_span _t ?domain sp =
  Timer.add sp.sp_timer ?domain (sp.sp_clock () -. sp.sp_t0);
  sp.sp_timer.t_count <- saturating_add sp.sp_timer.t_count 1

let time t name f =
  let sp = start_span t name in
  Fun.protect ~finally:(fun () -> stop_span t sp) f

(* ---------- snapshots ---------- *)

type histogram_snapshot = {
  h_count : int;
  h_sum : int;
  h_max : int;
  h_buckets : (int * int) list;
}

type timer_snapshot = { t_count : int; t_total : float; t_by_domain : (int * float) list }

let snapshot_quantile (h : histogram_snapshot) q =
  Histogram.quantile_of ~count:h.h_count ~max_value:h.h_max h.h_buckets q

type snapshot = {
  counters : (string * int) list;
  gauges : (string * float) list;
  histograms : (string * histogram_snapshot) list;
  timers : (string * timer_snapshot) list;
}

let snapshot t =
  let counters = ref [] and gauges = ref [] and histograms = ref [] and timers = ref [] in
  Hashtbl.iter
    (fun name item ->
      match item with
      | C c -> counters := (name, c.c_value) :: !counters
      | G g -> gauges := (name, g.g_value) :: !gauges
      | H h ->
        histograms :=
          ( name,
            { h_count = h.h_count; h_sum = h.h_sum; h_max = h.h_max; h_buckets = Histogram.buckets h }
          )
          :: !histograms
      | T tm ->
        timers :=
          (name, { t_count = tm.t_count; t_total = tm.t_total; t_by_domain = Timer.by_domain tm })
          :: !timers)
    t.items;
  let by_name l = List.sort (fun (a, _) (b, _) -> String.compare a b) l in
  {
    counters = by_name !counters;
    gauges = by_name !gauges;
    histograms = by_name !histograms;
    timers = by_name !timers;
  }

(* ---------- JSON export ---------- *)

let json_string s =
  let b = Buffer.create (String.length s + 2) in
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"';
  Buffer.contents b

let json_float f =
  (* %.9g never prints a partial float as an integer-looking "nan". *)
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else Printf.sprintf "%.9g" f

let to_json s =
  let b = Buffer.create 1024 in
  let obj add_entry entries =
    Buffer.add_char b '{';
    List.iteri
      (fun i e ->
        if i > 0 then Buffer.add_char b ',';
        add_entry e)
      entries;
    Buffer.add_char b '}'
  in
  Buffer.add_string b "{\"counters\":";
  obj
    (fun (name, v) -> Buffer.add_string b (Printf.sprintf "%s:%d" (json_string name) v))
    s.counters;
  Buffer.add_string b ",\"gauges\":";
  obj
    (fun (name, v) -> Buffer.add_string b (Printf.sprintf "%s:%s" (json_string name) (json_float v)))
    s.gauges;
  Buffer.add_string b ",\"histograms\":";
  obj
    (fun (name, h) ->
      Buffer.add_string b (json_string name);
      Buffer.add_string b
        (Printf.sprintf ":{\"count\":%d,\"sum\":%d,\"max\":%d,\"p50\":%d,\"p90\":%d,\"p99\":%d,\"buckets\":{"
           h.h_count h.h_sum h.h_max (snapshot_quantile h 0.5) (snapshot_quantile h 0.9)
           (snapshot_quantile h 0.99));
      List.iteri
        (fun i (idx, c) ->
          if i > 0 then Buffer.add_char b ',';
          Buffer.add_string b (Printf.sprintf "\"%d\":%d" idx c))
        h.h_buckets;
      Buffer.add_string b "}}")
    s.histograms;
  Buffer.add_string b ",\"timers\":";
  obj
    (fun (name, tm) ->
      Buffer.add_string b (json_string name);
      Buffer.add_string b
        (Printf.sprintf ":{\"count\":%d,\"total_seconds\":%s,\"by_domain\":{" tm.t_count
           (json_float tm.t_total));
      List.iteri
        (fun i (slot, sec) ->
          if i > 0 then Buffer.add_char b ',';
          Buffer.add_string b (Printf.sprintf "\"%d\":%s" slot (json_float sec)))
        tm.t_by_domain;
      Buffer.add_string b "}}")
    s.timers;
  Buffer.add_char b '}';
  Buffer.contents b

(* ---------- Prometheus text exposition ---------- *)

(* Series names may carry a label set: [base{k="v"}].  Split it back so
   histogram buckets can merge their [le] label in. *)
let split_series name =
  match String.index_opt name '{' with
  | None -> (name, "")
  | Some i ->
    let base = String.sub name 0 i in
    let rest = String.sub name (i + 1) (String.length name - i - 2) in
    (base, rest)

let sanitize_base base =
  String.map
    (fun c ->
      match c with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> c | _ -> '_')
    base

let label_set labels extra =
  match (labels, extra) with
  | "", "" -> ""
  | "", e -> "{" ^ e ^ "}"
  | l, "" -> "{" ^ l ^ "}"
  | l, e -> "{" ^ l ^ "," ^ e ^ "}"

let to_prometheus s =
  let b = Buffer.create 2048 in
  let seen_types = Hashtbl.create 16 in
  let type_line base kind =
    if not (Hashtbl.mem seen_types base) then begin
      Hashtbl.add seen_types base ();
      Buffer.add_string b (Printf.sprintf "# TYPE %s %s\n" base kind)
    end
  in
  List.iter
    (fun (name, v) ->
      let base, labels = split_series name in
      let base = sanitize_base base in
      type_line base "counter";
      Buffer.add_string b (Printf.sprintf "%s%s %d\n" base (label_set labels "") v))
    s.counters;
  List.iter
    (fun (name, v) ->
      let base, labels = split_series name in
      let base = sanitize_base base in
      type_line base "gauge";
      Buffer.add_string b (Printf.sprintf "%s%s %s\n" base (label_set labels "") (json_float v)))
    s.gauges;
  List.iter
    (fun (name, h) ->
      let base, labels = split_series name in
      let base = sanitize_base base in
      type_line base "histogram";
      let top = List.fold_left (fun acc (i, _) -> max acc i) 0 h.h_buckets in
      let cum = ref 0 in
      for i = 0 to top do
        (match List.assoc_opt i h.h_buckets with Some c -> cum := !cum + c | None -> ());
        let _, hi = Histogram.bucket_range i in
        Buffer.add_string b
          (Printf.sprintf "%s_bucket%s %d\n" base (label_set labels (Printf.sprintf "le=\"%d\"" hi)) !cum)
      done;
      Buffer.add_string b
        (Printf.sprintf "%s_bucket%s %d\n" base (label_set labels "le=\"+Inf\"") h.h_count);
      Buffer.add_string b (Printf.sprintf "%s_sum%s %d\n" base (label_set labels "") h.h_sum);
      Buffer.add_string b (Printf.sprintf "%s_count%s %d\n" base (label_set labels "") h.h_count);
      (* summary-convention quantile lines alongside the histogram *)
      List.iter
        (fun (tag, q) ->
          Buffer.add_string b
            (Printf.sprintf "%s%s %d\n" base
               (label_set labels (Printf.sprintf "quantile=\"%s\"" tag))
               (snapshot_quantile h q)))
        [ ("0.5", 0.5); ("0.9", 0.9); ("0.99", 0.99) ])
    s.histograms;
  List.iter
    (fun (name, tm) ->
      let base, labels = split_series name in
      let base = sanitize_base base in
      type_line (base ^ "_seconds_total") "counter";
      Buffer.add_string b
        (Printf.sprintf "%s_seconds_total%s %s\n" base (label_set labels "") (json_float tm.t_total));
      List.iter
        (fun (slot, sec) ->
          Buffer.add_string b
            (Printf.sprintf "%s_seconds_total%s %s\n" base
               (label_set labels (Printf.sprintf "domain=\"%d\"" slot))
               (json_float sec)))
        tm.t_by_domain;
      type_line (base ^ "_spans_total") "counter";
      Buffer.add_string b
        (Printf.sprintf "%s_spans_total%s %d\n" base (label_set labels "") tm.t_count))
    s.timers;
  Buffer.contents b

let pp_snapshot fmt s =
  List.iter (fun (name, v) -> Format.fprintf fmt "counter   %-48s %d@." name v) s.counters;
  List.iter (fun (name, v) -> Format.fprintf fmt "gauge     %-48s %g@." name v) s.gauges;
  List.iter
    (fun (name, h) ->
      Format.fprintf fmt "histogram %-48s count=%d sum=%d max=%d p50=%d p90=%d p99=%d@." name
        h.h_count h.h_sum h.h_max (snapshot_quantile h 0.5) (snapshot_quantile h 0.9)
        (snapshot_quantile h 0.99);
      List.iter
        (fun (i, c) ->
          let lo, hi = Histogram.bucket_range i in
          Format.fprintf fmt "          [%d..%d] %d@." lo hi c)
        h.h_buckets)
    s.histograms;
  List.iter
    (fun (name, tm) ->
      Format.fprintf fmt "timer     %-48s spans=%d total=%.6fs@." name tm.t_count tm.t_total;
      List.iter (fun (d, sec) -> Format.fprintf fmt "          domain %d: %.6fs@." d sec) tm.t_by_domain)
    s.timers
