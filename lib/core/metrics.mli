(** A zero-dependency metrics registry: counters, gauges, log₂-bucketed
    histograms and wall-clock timers, with snapshot export in JSON and
    Prometheus text format.

    The paper's claims are quantitative — Theorem 5's protocol must fit
    in O(k²·log n) bits per node, the coalition protocol in O(k·log n) —
    so the engine surfaces exact bit and time accounting as first-class
    telemetry instead of burying it in per-run transcripts.  Every
    engine entry point ({!Simulator}, {!Coalition}, {!Protocol.run_referee},
    {!Parallel}) takes an optional registry; when absent the
    instrumented branches are never entered, so an unobserved run pays
    nothing (the [bench/main.exe metrics] microbench asserts this).

    {b Clock.} [create ?clock] takes the time source; the default is
    [Unix.gettimeofday].  Tests that need bit-identical snapshots across
    {!Parallel} widths pass [~clock:(fun () -> 0.)] — every duration
    collapses to zero and the remaining contents (counters, histograms)
    are deterministic by the engine's determinism contract.  The clock
    is called from worker domains during parallel sections, so a custom
    clock must be safe to call from any domain.

    {b Sampling.} Per-absorb latency is expensive to clock one message
    at a time, so the engine observes every 64th absorb (see
    {!Protocol.run_referee}); all other instrumentation is exact.

    {b Thread-safety.} The registry itself is {e not} thread-safe:
    metrics are recorded from the submitting domain only, after each
    parallel section completes — the same discipline as {!Trace}
    sinks.  ({!Parallel} accumulates per-domain busy time in batch-local
    arrays and folds them into the registry after the join.) *)

type t
(** A registry.  Metrics are created on first use by name; asking for
    the same name twice returns the same metric, and asking for a name
    already registered as a different kind raises [Invalid_argument]. *)

val create : ?clock:(unit -> float) -> unit -> t

(** [now t] reads the registry's clock (seconds). *)
val now : t -> float

(** [series base labels] formats a Prometheus-style series name,
    [base{k="v",...}] — label values are escaped.  The exporters split
    the name back at the first ['{'], so labelled series render as
    proper Prometheus label sets. *)
val series : string -> (string * string) list -> string

module Counter : sig
  type counter

  (** [counter t name] finds or creates the named counter. *)
  val counter : t -> string -> counter

  val incr : counter -> unit

  (** [add c k] adds [k].  Counters are monotone: [k < 0] raises
      [Invalid_argument], and additions {e saturate} at [max_int]
      instead of wrapping to a negative value. *)
  val add : counter -> int -> unit

  val value : counter -> int
end

module Gauge : sig
  type gauge

  val gauge : t -> string -> gauge
  val set : gauge -> float -> unit
  val value : gauge -> float
end

module Histogram : sig
  type histogram

  (** Buckets are base-2 logarithmic: bucket 0 holds the value 0 and
      bucket [i >= 1] holds values in [[2^(i-1), 2^i - 1]] — boundaries
      at exact powers of two, so a frugal protocol's message sizes land
      in a handful of adjacent buckets and a super-budget message is a
      visible outlier. *)

  val histogram : t -> string -> histogram

  (** [observe h v] records the (non-negative) value [v].
      @raise Invalid_argument if [v < 0]. *)
  val observe : histogram -> int -> unit

  (** [bucket_index v] is the bucket [observe] files [v] under:
      [0 -> 0], [v -> ceil(log2 (v + 1))] otherwise. *)
  val bucket_index : int -> int

  (** [bucket_range i] is the inclusive [(lo, hi)] range of bucket [i]:
      [(0, 0)] for bucket 0, [(2^(i-1), 2^i - 1)] for [i >= 1]. *)
  val bucket_range : int -> int * int

  val count : histogram -> int

  (** [sum h] — saturating, like {!Counter.add}. *)
  val sum : histogram -> int

  val max_value : histogram -> int

  (** [buckets h] is the non-empty buckets as [(index, count)] pairs in
      increasing index order. *)
  val buckets : histogram -> (int * int) list

  (** [quantile h q] is the value at quantile [q] (clamped to [0..1]):
      the upper bound of the first bucket whose cumulative count reaches
      [ceil(q·count)], clamped to {!max_value} — exact at the log₂
      resolution the buckets keep.  [0] on an empty histogram. *)
  val quantile : histogram -> float -> int
end

module Timer : sig
  type timer

  val timer : t -> string -> timer

  (** [add tm ?domain seconds] folds [seconds] of busy time into the
      timer, attributed to domain slot [domain] (default 0; clamped to
      the 64-slot attribution table).  Negative durations (a
      non-monotonic clock stepping backwards) are clamped to zero.
      [add] does not bump the span count — it is the accumulation
      primitive {!Parallel} uses for per-domain attribution. *)
  val add : timer -> ?domain:int -> float -> unit

  val count : timer -> int
  val total : timer -> float

  (** [by_domain tm] is the per-domain totals as [(slot, seconds)]
      pairs, non-zero entries only, increasing slot order. *)
  val by_domain : timer -> (int * float) list
end

(** [time t name f] runs [f ()] inside a span: on return (or raise) the
    elapsed wall time is added to timer [name] and its span count is
    bumped. *)
val time : t -> string -> (unit -> 'a) -> 'a

type span

(** [start_span t name] opens a span by hand; {!stop_span} closes it
    (attributing to [?domain], like {!Timer.add}) and bumps the span
    count.  For the common case prefer {!time}. *)
val start_span : t -> string -> span

val stop_span : t -> ?domain:int -> span -> unit

(** {1 Snapshots} *)

type histogram_snapshot = {
  h_count : int;
  h_sum : int;
  h_max : int;
  h_buckets : (int * int) list;  (** non-empty buckets, increasing index *)
}

type timer_snapshot = {
  t_count : int;
  t_total : float;
  t_by_domain : (int * float) list;  (** non-zero slots, increasing *)
}

type snapshot = {
  counters : (string * int) list;
  gauges : (string * float) list;
  histograms : (string * histogram_snapshot) list;
  timers : (string * timer_snapshot) list;
}
(** All four sections are sorted by metric name, so a snapshot of a
    deterministic run renders to a byte-identical export. *)

val snapshot : t -> snapshot

(** {!Histogram.quantile} over an already-taken snapshot. *)
val snapshot_quantile : histogram_snapshot -> float -> int

(** [to_json s] is a single canonical JSON object (sorted keys, no
    whitespace) — the machine-readable export.  Histogram objects carry
    [p50]/[p90]/[p99] fields alongside count/sum/max. *)
val to_json : snapshot -> string

(** [to_prometheus s] is the Prometheus text exposition format:
    [# TYPE] headers, cumulative [_bucket{le="..."}] lines for
    histograms (log₂ upper bounds), [_sum]/[_count] plus
    summary-convention [{quantile="0.5|0.9|0.99"}] lines, and timers as
    [_seconds_total] / [_spans_total] series with per-domain
    [{domain="i"}] breakdowns. *)
val to_prometheus : snapshot -> string

val pp_snapshot : Format.formatter -> snapshot -> unit
