open Refnet_bits
open Refnet_graph

type node_state = { n : int; id : int; neighbors : int list; extra : Message.t list }

type 'a t = {
  name : string;
  rounds : int;
  init : n:int -> id:int -> neighbors:int list -> node_state;
  send : round:int -> node_state -> Message.t * node_state;
  receive : round:int -> broadcast:Message.t -> node_state -> node_state;
  referee : round:int -> n:int -> Message.t array -> Message.t;
  output : n:int -> Message.t array -> 'a;
}

let make_state ~n ~id ~neighbors ~extra = { n; id; neighbors; extra }

let state_n s = s.n
let state_id s = s.id
let state_neighbors s = s.neighbors
let state_extra s = s.extra
let push_extra s m = { s with extra = m :: s.extra }

type transcript = {
  rounds : int;
  per_round_max_bits : int list;
  broadcast_bits : int list;
  max_bits : int;
}

let run (p : 'a t) g =
  if p.rounds < 1 then invalid_arg "Multi_round.run: need at least one round";
  let n = Graph.order g in
  let states =
    Array.init n (fun i -> p.init ~n ~id:(i + 1) ~neighbors:(Graph.neighbors g (i + 1)))
  in
  let per_round = ref [] and broadcasts = ref [] in
  let last_msgs = ref [||] in
  for round = 1 to p.rounds do
    let msgs =
      Array.map
        (fun _ -> Message.empty)
        states
    in
    Array.iteri
      (fun i s ->
        let m, s' = p.send ~round s in
        msgs.(i) <- m;
        states.(i) <- s')
      states;
    per_round := Array.fold_left (fun acc m -> max acc (Message.bits m)) 0 msgs :: !per_round;
    last_msgs := msgs;
    if round < p.rounds then begin
      let b = p.referee ~round ~n msgs in
      broadcasts := Message.bits b :: !broadcasts;
      Array.iteri (fun i s -> states.(i) <- p.receive ~round ~broadcast:b s) states
    end
  done;
  let out = p.output ~n !last_msgs in
  let per_round_max_bits = List.rev !per_round in
  ( out,
    {
      rounds = p.rounds;
      per_round_max_bits;
      broadcast_bits = List.rev !broadcasts;
      max_bits = List.fold_left max 0 per_round_max_bits;
    } )

let of_one_round (p : 'a Protocol.t) : 'a t =
  {
    name = p.Protocol.name;
    rounds = 1;
    init = (fun ~n ~id ~neighbors -> make_state ~n ~id ~neighbors ~extra:[]);
    send =
      (fun ~round:_ s ->
        (p.Protocol.local (View.make ~n:s.n ~id:s.id ~neighbors:s.neighbors), s));
    receive = (fun ~round:_ ~broadcast:_ s -> s);
    referee = (fun ~round:_ ~n:_ _ -> Message.empty);
    output = (fun ~n msgs -> Protocol.apply p ~n msgs);
  }

module Adaptive_degeneracy = struct
  let degree_bound degrees =
    (* Largest d with at least d + 1 vertices of degree >= d.  A subgraph
       of minimum degree delta has delta + 1 vertices whose G-degrees are
       all >= delta, so degeneracy(G) <= this bound. *)
    let sorted = Array.copy degrees in
    Array.sort (fun a b -> Stdlib.compare b a) sorted;
    let best = ref 0 in
    Array.iteri
      (fun i d ->
        (* i is 0-based: position i+1 in the descending order. *)
        let candidate = min d i in
        if candidate > !best then best := candidate)
      sorted;
    !best

  let protocol () : Graph.t option t =
    let width n = Bounds.id_bits n in
    {
      name = "adaptive-degeneracy (2 rounds)";
      rounds = 2;
      init = (fun ~n ~id ~neighbors -> make_state ~n ~id ~neighbors ~extra:[]);
      send =
        (fun ~round s ->
          match round with
          | 1 ->
            let w = Bit_writer.create () in
            Codes.write_fixed w ~width:(width s.n) (List.length s.neighbors);
            (Message.of_writer w, s)
          | _ ->
            (* Round 2: the broadcast carries k-hat. *)
            let k_hat =
              match s.extra with
              | b :: _ -> Codes.read_fixed (Message.reader b) ~width:(width s.n)
              | [] -> invalid_arg "adaptive: missing broadcast"
            in
            let k = max 1 k_hat in
            let p = Degeneracy_protocol.reconstruct ~k () in
            (p.Protocol.local (View.make ~n:s.n ~id:s.id ~neighbors:s.neighbors), s));
      receive = (fun ~round:_ ~broadcast s -> push_extra s broadcast);
      referee =
        (fun ~round:_ ~n msgs ->
          let degrees =
            Array.map (fun m -> Codes.read_fixed (Message.reader m) ~width:(width n)) msgs
          in
          let k_hat = degree_bound degrees in
          let w = Bit_writer.create () in
          Codes.write_fixed w ~width:(width n) k_hat;
          Message.of_writer w);
      output =
        (fun ~n msgs ->
          if n = 0 then Some (Graph.empty 0)
          else begin
            (* The referee recomputes k-hat from its own round-1 record.
               In this implementation the degree is also recoverable from
               the round-2 header, which keeps the output function a pure
               function of the final messages as in Definition 1. *)
            let w = Bounds.id_bits n in
            let degrees =
              Array.map
                (fun m ->
                  let r = Message.reader m in
                  let _id = Codes.read_fixed r ~width:w in
                  Codes.read_fixed r ~width:w)
                msgs
            in
            let k = max 1 (degree_bound degrees) in
            let p = Degeneracy_protocol.reconstruct ~k () in
            Protocol.apply p ~n msgs
          end);
    }
end
