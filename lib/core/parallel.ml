(* A small persistent domain pool with chunked work stealing.

   Worker domains are spawned lazily on first use and kept parked on a
   condition variable between batches, so repeated parallel sections (the
   simulator runs one per protocol execution) pay no spawn cost.  Work is
   handed out in chunks through an atomic cursor; every participant —
   including the submitting domain — claims chunks until the batch is
   exhausted, so stragglers are stolen from automatically.

   Determinism contract: results are written into their final slot by
   index, so for a pure task function the output is bit-identical
   whatever the domain count or the scheduling. *)

let width_cap = 64

let env_domains () =
  match Sys.getenv_opt "REFNET_DOMAINS" with
  | None -> None
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some d when d >= 1 -> Some (min d width_cap)
    | _ -> None)

let default_domains =
  lazy
    (match env_domains () with
    | Some d -> d
    | None -> max 1 (min width_cap (Domain.recommended_domain_count ())))

let domain_count () = Lazy.force default_domains

type batch = {
  run : slot:int -> int -> int -> unit; (* ~slot start stop: items [start, stop) *)
  total : int;
  chunk : int;
  width : int;
  next : int Atomic.t;
  finished : int Atomic.t;
  cancelled : bool Atomic.t;
  mutable error : exn option; (* protected by the pool mutex *)
}

type pool = {
  mu : Mutex.t;
  work : Condition.t; (* parked workers wait here for a new generation *)
  done_ : Condition.t; (* the submitter waits here for batch completion *)
  mutable generation : int;
  mutable current : batch option;
  mutable spawned : int;
  mutable workers : unit Domain.t list;
  mutable shutdown : bool;
}

let execute pool b ~slot =
  let rec loop () =
    let start = Atomic.fetch_and_add b.next b.chunk in
    if start < b.total then begin
      let stop = min b.total (start + b.chunk) in
      if not (Atomic.get b.cancelled) then begin
        try b.run ~slot start stop
        with e ->
          Atomic.set b.cancelled true;
          Mutex.lock pool.mu;
          if b.error = None then b.error <- Some e;
          Mutex.unlock pool.mu
      end;
      (* Claimed items count as retired even when cancellation skipped
         them, so [finished] always converges to [total]. *)
      let retired = stop - start in
      if Atomic.fetch_and_add b.finished retired + retired >= b.total then begin
        Mutex.lock pool.mu;
        Condition.broadcast pool.done_;
        Mutex.unlock pool.mu
      end;
      loop ()
    end
  in
  loop ()

let rec worker_loop p ~slot ~last =
  Mutex.lock p.mu;
  while (not p.shutdown) && p.generation = last do
    Condition.wait p.work p.mu
  done;
  if p.shutdown then Mutex.unlock p.mu
  else begin
    let gen = p.generation in
    let b = p.current in
    Mutex.unlock p.mu;
    (match b with
    | Some b when slot < b.width -> execute p b ~slot
    | _ -> ());
    worker_loop p ~slot ~last:gen
  end

let pool =
  lazy
    (let p =
       {
         mu = Mutex.create ();
         work = Condition.create ();
         done_ = Condition.create ();
         generation = 0;
         current = None;
         spawned = 0;
         workers = [];
         shutdown = false;
       }
     in
     at_exit (fun () ->
         Mutex.lock p.mu;
         p.shutdown <- true;
         Condition.broadcast p.work;
         Mutex.unlock p.mu;
         List.iter Domain.join p.workers);
     p)

let ensure_workers p width =
  if p.spawned < width - 1 then begin
    Mutex.lock p.mu;
    while p.spawned < width - 1 do
      let slot = p.spawned + 1 in
      p.workers <- Domain.spawn (fun () -> worker_loop p ~slot ~last:(-1)) :: p.workers;
      p.spawned <- p.spawned + 1
    done;
    Mutex.unlock p.mu
  end

(* One batch at a time; a parallel call issued from inside a running
   batch (or from a worker) falls back to inline sequential execution
   rather than deadlocking the pool. *)
let busy = Atomic.make false

let effective_width domains total =
  let w = match domains with Some d -> max 1 (min d width_cap) | None -> domain_count () in
  min w (max 1 total)

(* The chunk-level core: [run_chunk ~slot start stop] must process the
   items in [[start, stop)].  Chunk granularity is also the
   instrumentation granularity — see [run_batch]. *)
let run_batch_chunks ?domains ~total run_chunk =
  if total > 0 then begin
    let width = effective_width domains total in
    if width = 1 || not (Atomic.compare_and_set busy false true) then
      run_chunk ~slot:0 0 total
    else
      Fun.protect
        ~finally:(fun () -> Atomic.set busy false)
        (fun () ->
          let p = Lazy.force pool in
          ensure_workers p width;
          let b =
            {
              run = run_chunk;
              total;
              chunk = max 1 (total / (width * 8));
              width;
              next = Atomic.make 0;
              finished = Atomic.make 0;
              cancelled = Atomic.make false;
              error = None;
            }
          in
          Mutex.lock p.mu;
          p.current <- Some b;
          p.generation <- p.generation + 1;
          Condition.broadcast p.work;
          Mutex.unlock p.mu;
          execute p b ~slot:0;
          Mutex.lock p.mu;
          while Atomic.get b.finished < b.total do
            Condition.wait p.done_ p.mu
          done;
          p.current <- None;
          let err = b.error in
          Mutex.unlock p.mu;
          match err with Some e -> raise e | None -> ())
  end

(* Busy time is accumulated in a batch-local per-slot array — each slot
   is written by exactly one domain — and folded into the registry by
   the submitting domain after the join, honouring the Metrics
   single-writer discipline.  The clock is called from worker domains,
   which {!Metrics.create} documents as a requirement on custom clocks.
   Clocking happens once per {e chunk}, not per item, so instrumentation
   stays off the per-item hot path (the [bench/main.exe metrics]
   microbench holds live overhead under 5%). *)
let run_batch ?domains ?metrics ~total run_item =
  let run_chunk ~slot start stop =
    for i = start to stop - 1 do
      run_item ~slot i
    done
  in
  match metrics with
  | None -> run_batch_chunks ?domains ~total run_chunk
  | Some m ->
    if total > 0 then begin
      let busy = Array.make width_cap 0. in
      let wall0 = Metrics.now m in
      let instrumented ~slot start stop =
        let s = Metrics.now m in
        run_chunk ~slot start stop;
        busy.(slot) <- busy.(slot) +. (Metrics.now m -. s)
      in
      Fun.protect
        ~finally:(fun () ->
          let wall = Metrics.now m -. wall0 in
          Metrics.Counter.incr (Metrics.Counter.counter m "refnet_pool_batches_total");
          let tb = Metrics.Timer.timer m "refnet_pool_busy" in
          let ti = Metrics.Timer.timer m "refnet_pool_idle" in
          Array.iteri
            (fun slot b ->
              if b > 0. then begin
                Metrics.Timer.add tb ~domain:slot b;
                Metrics.Timer.add ti ~domain:slot (Float.max 0. (wall -. b))
              end)
            busy)
        (fun () -> run_batch_chunks ?domains ~total instrumented)
    end

let init ?domains ?metrics n f =
  if n < 0 then invalid_arg "Parallel.init: negative length";
  if n = 0 then [||]
  else begin
    let out = Array.make n (f 0) in
    run_batch ?domains ?metrics ~total:(n - 1) (fun ~slot:_ i -> out.(i + 1) <- f (i + 1));
    out
  end

let map_array ?domains ?metrics f a =
  let n = Array.length a in
  if n = 0 then [||]
  else begin
    let out = Array.make n (f a.(0)) in
    run_batch ?domains ?metrics ~total:(n - 1) (fun ~slot:_ i -> out.(i + 1) <- f a.(i + 1));
    out
  end

let map_array_ctx ?domains ?metrics mk f a =
  let n = Array.length a in
  if n = 0 then [||]
  else begin
    (* One context per participating domain, created lazily by the domain
       itself; slots are never shared, so the array needs no locking. *)
    let ctxs = Array.make width_cap None in
    let ctx_of slot =
      match ctxs.(slot) with
      | Some c -> c
      | None ->
        let c = mk () in
        ctxs.(slot) <- Some c;
        c
    in
    let out = Array.make n (f (ctx_of 0) a.(0)) in
    run_batch ?domains ?metrics ~total:(n - 1) (fun ~slot i -> out.(i + 1) <- f (ctx_of slot) a.(i + 1));
    out
  end

let iter_range ?domains ?metrics n f = run_batch ?domains ?metrics ~total:n (fun ~slot:_ i -> f i)
