(** A reusable domain pool for the embarrassingly parallel phases of the
    model: every node's local function is independent of every other's,
    and the reduction drivers probe O(n²) vertex pairs independently.

    Worker domains (OCaml 5 [Domain]s) are spawned lazily on first use,
    parked between batches, and joined at process exit.  Work is
    distributed by chunked work stealing over an atomic cursor; the
    calling domain participates, so a pool of width [w] uses [w - 1]
    spawned domains.

    {b Determinism.} Each result is written into its slot by index, so
    for pure task functions the output array is bit-identical whatever
    the width or scheduling.  The simulator relies on this to keep
    parallel transcripts byte-equal to sequential ones.

    {b Width selection.} Every entry point takes [?domains]; when
    omitted, the width is [REFNET_DOMAINS] if that environment variable
    is a positive integer (so [REFNET_DOMAINS=1] opts out of parallelism
    entirely), else [Domain.recommended_domain_count ()].

    {b Exceptions.} If a task raises, the batch is cancelled (chunks not
    yet started are skipped), and the first exception observed is
    re-raised in the caller after all in-flight chunks retire.

    {b Nesting.} A parallel call made while another batch is running —
    including from inside a task — degrades to inline sequential
    execution instead of deadlocking.

    {b Metrics.} Every entry point takes [?metrics]; when given, each
    batch accumulates per-slot busy wall time in a batch-local array and
    folds it into the registry {e after} the join, on the submitting
    domain: timers [refnet_pool_busy] / [refnet_pool_idle] (idle = batch
    wall time minus that slot's busy time) attributed per domain slot,
    and counter [refnet_pool_batches_total].  When absent, the
    uninstrumented code path runs — no clock calls at all. *)

(** [domain_count ()] is the default pool width. *)
val domain_count : unit -> int

(** [init ?domains ?metrics n f] is [Array.init n f] with [f] applied
    across the pool.  [f] must be pure (safe to run on any domain, any
    order). *)
val init : ?domains:int -> ?metrics:Metrics.t -> int -> (int -> 'a) -> 'a array

(** [map_array ?domains ?metrics f a] maps [f] over [a] across the pool. *)
val map_array : ?domains:int -> ?metrics:Metrics.t -> ('a -> 'b) -> 'a array -> 'b array

(** [map_array_ctx ?domains ?metrics mk f a] is [map_array] for tasks
    needing mutable per-domain scratch (e.g. a pre-sized graph builder):
    each participating domain lazily creates one context with [mk ()]
    and reuses it for all its chunks.  [f] may mutate its context freely
    but must stay pure with respect to everything else. *)
val map_array_ctx :
  ?domains:int -> ?metrics:Metrics.t -> (unit -> 'c) -> ('c -> 'a -> 'b) -> 'a array -> 'b array

(** [iter_range ?domains ?metrics n f] runs [f i] for [i = 0 .. n - 1]
    across the pool. *)
val iter_range : ?domains:int -> ?metrics:Metrics.t -> int -> (int -> unit) -> unit
