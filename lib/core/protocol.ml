type ('s, 'a) stream = {
  init : n:int -> 's;
  absorb : n:int -> 's -> id:int -> Message.t -> 's;
  finish : n:int -> 's -> 'a;
}

type 'a referee = Referee : ('s, 'a) stream -> 'a referee

type 'a t = { name : string; local : View.t -> Message.t; referee : 'a referee }

let streaming ~init ~absorb ~finish = Referee { init; absorb; finish }

let batch global =
  Referee
    {
      init = (fun ~n -> Array.make n Message.empty);
      absorb =
        (fun ~n:_ msgs ~id msg ->
          msgs.(id - 1) <- msg;
          msgs);
      finish = (fun ~n msgs -> global ~n msgs);
    }

(* A feed pairs a stream with its in-flight state; the existential keeps
   the state type private to the referee. *)
type 'a feed = Feed : ('s, 'a) stream * int * 's -> 'a feed

let start (Referee s) ~n = Feed (s, n, s.init ~n)
let feed (Feed (s, n, st)) ~id msg = Feed (s, n, s.absorb ~n st ~id msg)
let finish (Feed (s, n, st)) = s.finish ~n st

(* Absorb latency is sampled (every 64th absorb) rather than clocked
   per message: two clock reads per absorb would dominate the referees'
   O(1) per-message work and defeat the <5%-overhead budget the metrics
   microbench asserts.  Counters are bumped once per fold, not per
   message, for the same reason. *)
let absorb_sample_mask = 63

let observe_absorbs metrics ~n = Metrics.Counter.add (Metrics.Counter.counter metrics "refnet_absorbs_total") n

let sampled_absorb metrics hist s ~n st ~id msg i =
  if i land absorb_sample_mask = 0 then begin
    let t0 = Metrics.now metrics in
    let st = s.absorb ~n st ~id msg in
    let ns = int_of_float ((Metrics.now metrics -. t0) *. 1e9) in
    Metrics.Histogram.observe hist (if ns < 0 then 0 else ns);
    st
  end
  else s.absorb ~n st ~id msg

let run_referee ?(trace = Trace.null) ?metrics (Referee s) ~n msgs =
  if Array.length msgs <> n then invalid_arg "Protocol.run_referee: wrong message count";
  let st = ref (s.init ~n) in
  (match metrics with
  | None ->
    for i = 0 to n - 1 do
      st := s.absorb ~n !st ~id:(i + 1) msgs.(i);
      if not (Trace.is_null trace) then
        Trace.emit trace (Trace.Referee_absorb { id = i + 1; bits = Message.bits msgs.(i) })
    done
  | Some m ->
    let hist = Metrics.Histogram.histogram m "refnet_absorb_ns" in
    for i = 0 to n - 1 do
      st := sampled_absorb m hist s ~n !st ~id:(i + 1) msgs.(i) i;
      if not (Trace.is_null trace) then
        Trace.emit trace (Trace.Referee_absorb { id = i + 1; bits = Message.bits msgs.(i) })
    done;
    observe_absorbs m ~n);
  s.finish ~n !st

let feed_deliveries ?(trace = Trace.null) ?metrics (Referee s) ~n deliveries =
  let st = ref (s.init ~n) in
  let hist =
    match metrics with Some m -> Some (Metrics.Histogram.histogram m "refnet_absorb_ns") | None -> None
  in
  let count = ref 0 in
  List.iter
    (fun (id, msg) ->
      (match (metrics, hist) with
      | Some m, Some h -> st := sampled_absorb m h s ~n !st ~id msg !count
      | _ -> st := s.absorb ~n !st ~id msg);
      incr count;
      if not (Trace.is_null trace) then
        Trace.emit trace (Trace.Referee_absorb { id; bits = Message.bits msg }))
    deliveries;
  (match metrics with Some m -> observe_absorbs m ~n:!count | None -> ());
  s.finish ~n !st

let apply p ~n msgs = run_referee p.referee ~n msgs

let map_referee f (Referee s) = Referee { s with finish = (fun ~n st -> f (s.finish ~n st)) }
let map_output f p = { p with referee = map_referee f p.referee }
let rename name p = { p with name }

(* ---------- generic hardening ---------- *)

let default_malformed = function
  | Refnet_bits.Bit_reader.Exhausted | Message.Malformed -> true
  | Invalid_argument _ | Failure _ -> true
  | _ -> false

type 's hardened_state = {
  h_inner : 's;
  h_seen : bool array;
  mutable h_malformed : int list; (* reversed *)
  mutable h_duplicated : int list; (* reversed *)
}

let report_of ~n h =
  let missing = ref [] in
  for id = n downto 1 do
    if not h.h_seen.(id - 1) then missing := id :: !missing
  done;
  {
    Verdict.missing = !missing;
    malformed = List.rev h.h_malformed;
    duplicated = List.rev h.h_duplicated;
    undetermined = [];
  }

let harden_referee ?(malformed = default_malformed) ?on_fault (Referee s) =
  Referee
    {
      init =
        (fun ~n ->
          {
            h_inner = s.init ~n;
            h_seen = Array.make n false;
            h_malformed = [];
            h_duplicated = [];
          });
      absorb =
        (fun ~n h ~id msg ->
          if id < 1 || id > n then begin
            (* A sender id outside the network is itself channel
               corruption; there is no slot to mark missing. *)
            h.h_malformed <- id :: h.h_malformed;
            h
          end
          else if h.h_seen.(id - 1) then begin
            h.h_duplicated <- id :: h.h_duplicated;
            h
          end
          else begin
            h.h_seen.(id - 1) <- true;
            match s.absorb ~n h.h_inner ~id msg with
            | inner -> { h with h_inner = inner }
            | exception e when malformed e ->
              h.h_malformed <- id :: h.h_malformed;
              h
          end);
      finish =
        (fun ~n h ->
          let report = report_of ~n h in
          if Verdict.channel_clean report then
            match s.finish ~n h.h_inner with
            | v -> Verdict.Decided v
            | exception e when malformed e ->
              Verdict.Inconclusive "the referee could not decode a clean transcript"
          else begin
            let partial =
              match s.finish ~n h.h_inner with
              | v -> Some v
              | exception e when malformed e -> None
            in
            match on_fault with
            | Some f -> f report partial
            | None ->
              Verdict.Inconclusive
                ("channel faults detected: " ^ Verdict.report_summary report)
          end);
    }

let harden ?malformed ?on_fault p =
  {
    name = p.name ^ "+hardened";
    local = p.local;
    referee = harden_referee ?malformed ?on_fault p.referee;
  }
