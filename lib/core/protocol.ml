type ('s, 'a) stream = {
  init : n:int -> 's;
  absorb : n:int -> 's -> id:int -> Message.t -> 's;
  finish : n:int -> 's -> 'a;
}

type 'a referee = Referee : ('s, 'a) stream -> 'a referee

type 'a t = { name : string; local : View.t -> Message.t; referee : 'a referee }

let streaming ~init ~absorb ~finish = Referee { init; absorb; finish }

let batch global =
  Referee
    {
      init = (fun ~n -> Array.make n Message.empty);
      absorb =
        (fun ~n:_ msgs ~id msg ->
          msgs.(id - 1) <- msg;
          msgs);
      finish = (fun ~n msgs -> global ~n msgs);
    }

(* A feed pairs a stream with its in-flight state; the existential keeps
   the state type private to the referee. *)
type 'a feed = Feed : ('s, 'a) stream * int * 's -> 'a feed

let start (Referee s) ~n = Feed (s, n, s.init ~n)
let feed (Feed (s, n, st)) ~id msg = Feed (s, n, s.absorb ~n st ~id msg)
let finish (Feed (s, n, st)) = s.finish ~n st

let run_referee ?(trace = Trace.null) (Referee s) ~n msgs =
  if Array.length msgs <> n then invalid_arg "Protocol.run_referee: wrong message count";
  let st = ref (s.init ~n) in
  for i = 0 to n - 1 do
    st := s.absorb ~n !st ~id:(i + 1) msgs.(i);
    if not (Trace.is_null trace) then
      Trace.emit trace (Trace.Referee_absorb { id = i + 1; bits = Message.bits msgs.(i) })
  done;
  s.finish ~n !st

let apply p ~n msgs = run_referee p.referee ~n msgs

let map_referee f (Referee s) = Referee { s with finish = (fun ~n st -> f (s.finish ~n st)) }
let map_output f p = { p with referee = map_referee f p.referee }
let rename name p = { p with name }
