(** One-round protocols (the paper's Definition 1).

    A protocol is a family of pairs [(local_n, referee_n)]: the local
    function maps a node's knowledge — its {!View}: identifier,
    neighbour set, network size — to a message, and the referee maps the
    [n] collected messages to the output.  Following the paper, the
    local function must be evaluable at {e any} view [(i, N)] with
    [N ⊆ {1..n}], not only views arising from an actual input graph; the
    reduction protocols of Section II exploit exactly this by evaluating
    an oracle's local function on fictitious gadget vertices.

    The referee is {e streaming}: it starts from [init], [absorb]s one
    message at a time, and [finish]es into the output.  The paper's
    referee waits for all [n] messages and knows which node sent which
    ([absorb] carries the sender's identifier), so this is the same
    model — but incremental referees (the forest sums of §III.A,
    coalition connectivity, Lemma 1 counting) can hold O(1)-per-node
    state instead of a materialized message array, and the reduction
    referees can feed a simulated oracle without allocating per-pair
    message arrays.  Array-style referees keep a one-line spelling via
    {!batch}.

    Referee contract: [absorb] must be insensitive to arrival order —
    for any permutation π of [1..n], folding the messages in order π
    must [finish] to the same output as identifier order (the simulator
    checks this under {!Simulator.run_async}).  [init]/[absorb]/[finish]
    must not mutate anything outside the state they thread.

    The output type is a parameter: reconstruction protocols produce
    [Graph.t option], decision protocols produce [bool].  This mirrors
    the paper's untyped [{0,1}*] output without forcing callers to
    re-parse bit strings. *)

(** A streaming referee with state ['s]: [Γ^g_n] as a fold.  [absorb]
    receives the sender's identifier — the referee knows who sent what,
    faithful to the model. *)
type ('s, 'a) stream = {
  init : n:int -> 's;
  absorb : n:int -> 's -> id:int -> Message.t -> 's;
  finish : n:int -> 's -> 'a;
}

(** A referee with its state type hidden. *)
type 'a referee = Referee : ('s, 'a) stream -> 'a referee

type 'a t = {
  name : string;  (** for reports and transcripts *)
  local : View.t -> Message.t;
      (** [Γ^l_n(i, N)]: the message a node sends given its view.  The
          view is the {e only} source of local knowledge; implementations
          must be pure — same view contents, same message. *)
  referee : 'a referee;  (** [Γ^g_n] as a streaming fold *)
}

(** [streaming ~init ~absorb ~finish] packs a referee. *)
val streaming :
  init:(n:int -> 's) ->
  absorb:(n:int -> 's -> id:int -> Message.t -> 's) ->
  finish:(n:int -> 's -> 'a) ->
  'a referee

(** [batch global] adapts an array-style referee: state is the message
    vector indexed by identifier ([msgs.(i - 1)] for node [i]), filled
    by [absorb], decoded whole by [global] at [finish]. *)
val batch : (n:int -> Message.t array -> 'a) -> 'a referee

(** A referee mid-fold.  [feed]ing is how engine code (and the reduction
    referees simulating an oracle) streams messages without ever
    materializing an array. *)
type 'a feed

(** [start r ~n] opens a fold over [n] messages. *)
val start : 'a referee -> n:int -> 'a feed

(** [feed f ~id msg] absorbs node [id]'s message. *)
val feed : 'a feed -> id:int -> Message.t -> 'a feed

(** [finish f] closes the fold into the output. *)
val finish : 'a feed -> 'a

(** [run_referee ?trace ?metrics r ~n msgs] folds a full message vector
    in identifier order, emitting one [Referee_absorb] event per
    message.  With [?metrics], bumps counter [refnet_absorbs_total] once
    per fold and samples absorb latency into histogram
    [refnet_absorb_ns] on every 64th absorb (clocking each one would
    swamp the referees' O(1) per-message work).
    @raise Invalid_argument if [Array.length msgs <> n]. *)
val run_referee : ?trace:Trace.sink -> ?metrics:Metrics.t -> 'a referee -> n:int -> Message.t array -> 'a

(** [feed_deliveries ?trace ?metrics r ~n deliveries] folds an explicit
    delivery list — [(sender id, message)] pairs in arrival order, which
    need not be identifier order and may (under channel faults) repeat,
    skip, or forge sender ids.  Instrumentation matches {!run_referee};
    [refnet_absorbs_total] counts actual deliveries, not [n].  This is
    the engine's single feeding loop for faulty and asynchronous runs
    ({!Simulator.run_faulty}, {!Simulator.run_async},
    {!Coalition.run_faulty}). *)
val feed_deliveries :
  ?trace:Trace.sink -> ?metrics:Metrics.t -> 'a referee -> n:int -> (int * Message.t) list -> 'a

(** [apply p ~n msgs] is [run_referee p.referee ~n msgs] — the old
    array-style global, for tests and harnesses that fabricate message
    vectors. *)
val apply : 'a t -> n:int -> Message.t array -> 'a

(** [map_referee f r] maps over the finished output. *)
val map_referee : ('a -> 'b) -> 'a referee -> 'b referee

(** [map_output f p] is [p] with [f] applied to the referee's result. *)
val map_output : ('a -> 'b) -> 'a t -> 'b t

(** [rename name p]. *)
val rename : string -> 'a t -> 'a t

(** [default_malformed e] classifies the exceptions a referee may raise
    while decoding a corrupted message: {!Refnet_bits.Bit_reader.Exhausted},
    {!Message.Malformed}, [Invalid_argument] and [Failure].  Anything
    else (assertion failures, [Out_of_memory], ...) is a bug, not a
    channel fault, and is re-raised. *)
val default_malformed : exn -> bool

(** [harden_referee ?malformed ?on_fault r] contains per-message decoding
    failures of [r]: an [absorb] that raises an exception satisfying
    [malformed] (default {!default_malformed}) marks the sender id
    malformed and continues the fold instead of aborting it; repeated
    ids are counted once and the extra copies dropped; ids outside
    [1..n] are recorded as malformed.

    [finish] then classifies the run ({!Verdict.t}): if the channel was
    clean — every id absorbed exactly once, nothing malformed — the
    inner output is returned as [Decided].  Otherwise [on_fault report
    partial] chooses the verdict, where [partial] is the inner finish
    result if it still computes ([None] if it too raises a malformed
    exception).  The default [on_fault] returns [Inconclusive]; hardened
    protocols that can salvage a sound partial answer pass a smarter
    one. *)
val harden_referee :
  ?malformed:(exn -> bool) ->
  ?on_fault:(Verdict.fault_report -> 'a option -> 'a Verdict.t) ->
  'a referee ->
  'a Verdict.t referee

(** [harden ?malformed ?on_fault p] is [p] with {!harden_referee}
    applied and ["+hardened"] appended to the name.  The local function
    is unchanged — hardening is purely referee-side, so it composes
    with any protocol.  Note: without redundancy in the messages
    themselves (see {!Message.seal}), a hardened referee can only
    contain faults that {e break} parsing; a bit flip that yields
    another well-formed message is indistinguishable from honest input
    to a generic wrapper.  The shipped [*.hardened] protocols seal their
    messages precisely to close that gap. *)
val harden :
  ?malformed:(exn -> bool) ->
  ?on_fault:(Verdict.fault_report -> 'a option -> 'a Verdict.t) ->
  'a t ->
  'a Verdict.t t
