open Refnet_bits
open Refnet_graph

type witness = int array array

type result = Found of witness | Impossible | Aborted

let others ~n ~id = List.filter (fun v -> v <> id) (List.init n (fun i -> i + 1))

let neighborhood_mask ~n ~id neighbors =
  let mask = ref 0 in
  List.iteri
    (fun j v -> if List.mem v neighbors then mask := !mask lor (1 lsl j))
    (others ~n ~id);
  !mask

(* Internal search state: cells are (node, neighbourhood-mask) table
   entries; a "pair" is a pair of graphs that must be separated, with
   its options = the coordinate cell pairs where the two graphs show a
   node different neighbourhoods. *)

type pair_state = {
  options : (int * int) array;  (* (cell of G, cell of H), cells differ *)
  mutable satisfied : int;      (* depth at which satisfied, -1 if not *)
  mutable open_options : int;   (* options not yet decided-equal *)
}

let search ?(budget = 20_000_000) ~n ~colors ~pairs_of () =
  if n < 1 || n > 4 then invalid_arg "Protocol_search: n must be within 1..4";
  if colors < 1 then invalid_arg "Protocol_search: colors must be positive";
  let masks = 1 lsl (n - 1) in
  let cells = n * masks in
  let cell i mask = ((i - 1) * masks) + mask in
  (* Enumerate graphs and their per-node cell signatures. *)
  let graphs = ref [] in
  Enumerate.iter n (fun g -> graphs := g :: !graphs);
  let graphs = Array.of_list (List.rev !graphs) in
  let signature g =
    Array.init n (fun i ->
        cell (i + 1) (neighborhood_mask ~n ~id:(i + 1) (Graph.neighbors g (i + 1))))
  in
  let signatures = Array.map signature graphs in
  let pairs =
    pairs_of graphs
    |> List.map (fun (a, b) ->
           let options = ref [] in
           for i = 0 to n - 1 do
             let ca = signatures.(a).(i) and cb = signatures.(b).(i) in
             if ca <> cb then options := (ca, cb) :: !options
           done;
           { options = Array.of_list !options; satisfied = -1; open_options = List.length !options })
    |> Array.of_list
  in
  (* Index: which (pair, option) touch a given cell. *)
  let touching = Array.make cells [] in
  Array.iteri
    (fun pi p ->
      Array.iter
        (fun (ca, cb) ->
          touching.(ca) <- (pi, ca, cb) :: touching.(ca);
          if cb <> ca then touching.(cb) <- (pi, ca, cb) :: touching.(cb))
        p.options)
    pairs;
  let value = Array.make cells (-1) in
  let nodes_visited = ref 0 in
  let aborted = ref false in
  (* Assign cells in order; per-node colour-permutation symmetry lets us
     cap each cell's colour at (max used in its node's block) + 1. *)
  let rec assign c =
    if !aborted then false
    else if c >= cells then true
    else begin
      let node_start = c - (c mod masks) in
      let max_used = ref (-1) in
      for c' = node_start to c - 1 do
        if value.(c') > !max_used then max_used := value.(c')
      done;
      let limit = min (colors - 1) (!max_used + 1) in
      let rec try_value v =
        if v > limit then false
        else begin
          incr nodes_visited;
          if !nodes_visited > budget then begin
            aborted := true;
            false
          end
          else begin
            value.(c) <- v;
            (* Propagate into pairs touching this cell. *)
            let changed_sat = ref [] and changed_open = ref [] in
            let ok = ref true in
            List.iter
              (fun (pi, ca, cb) ->
                let p = pairs.(pi) in
                if !ok && p.satisfied < 0 then begin
                  let va = value.(ca) and vb = value.(cb) in
                  if va >= 0 && vb >= 0 then
                    if va <> vb then begin
                      p.satisfied <- c;
                      changed_sat := pi :: !changed_sat
                    end
                    else begin
                      p.open_options <- p.open_options - 1;
                      changed_open := pi :: !changed_open;
                      if p.open_options = 0 then ok := false
                    end
                end)
              touching.(c);
            let undo () =
              List.iter (fun pi -> pairs.(pi).satisfied <- -1) !changed_sat;
              List.iter (fun pi -> pairs.(pi).open_options <- pairs.(pi).open_options + 1)
                !changed_open;
              value.(c) <- -1
            in
            if !ok && assign (c + 1) then true
            else begin
              undo ();
              try_value (v + 1)
            end
          end
        end
      in
      try_value 0
    end
  in
  (* Pairs with no options are unseparable: distinct labelled graphs
     always differ somewhere, so this means the pair list was built from
     identical graphs — treat as immediately impossible. *)
  if Array.exists (fun p -> Array.length p.options = 0) pairs then Impossible
  else if assign 0 then begin
    let w =
      Array.init n (fun i -> Array.init masks (fun m -> max 0 value.(cell (i + 1) m)))
    in
    Found w
  end
  else if !aborted then Aborted
  else Impossible

let conflict_pairs ~property graphs =
  let acc = ref [] in
  let m = Array.length graphs in
  for a = 0 to m - 1 do
    for b = a + 1 to m - 1 do
      if property graphs.(a) <> property graphs.(b) then acc := (a, b) :: !acc
    done
  done;
  !acc

let all_pairs graphs =
  let acc = ref [] in
  let m = Array.length graphs in
  for a = 0 to m - 1 do
    for b = a + 1 to m - 1 do
      acc := (a, b) :: !acc
    done
  done;
  !acc

let search_decider ?budget ~n ~colors ~property () =
  search ?budget ~n ~colors ~pairs_of:(conflict_pairs ~property) ()

let search_reconstructor ?budget ~n ~colors () = search ?budget ~n ~colors ~pairs_of:all_pairs ()

let search_family_reconstructor ?budget ~n ~colors ~family () =
  let family_pairs graphs =
    let acc = ref [] in
    let m = Array.length graphs in
    for a = 0 to m - 1 do
      if family graphs.(a) then
        for b = a + 1 to m - 1 do
          if family graphs.(b) then acc := (a, b) :: !acc
        done
    done;
    !acc
  in
  search ?budget ~n ~colors ~pairs_of:family_pairs ()

let to_protocol ~n ~colors (w : witness) ~property : bool Protocol.t =
  let width = max 1 (Codes.bits_needed (colors - 1)) in
  let local view =
    if View.n view <> n then invalid_arg "Protocol_search.to_protocol: wrong network size";
    let id = View.id view in
    let wr = Bit_writer.create () in
    Codes.write_fixed wr ~width w.(id - 1).(neighborhood_mask ~n ~id (View.neighbors view));
    Message.of_writer wr
  in
  let global ~n:n' msgs =
    if n' <> n then invalid_arg "Protocol_search.to_protocol: wrong network size";
    let received = Array.map (fun m -> Codes.read_fixed (Message.reader m) ~width) msgs in
    (* Classify by matching against every graph's predicted vector. *)
    let verdict = ref false in
    (try
       Enumerate.iter n (fun g ->
           let matches = ref true in
           for i = 1 to n do
             let v = w.(i - 1).(neighborhood_mask ~n ~id:i (Graph.neighbors g i)) in
             if v <> received.(i - 1) then matches := false
           done;
           if !matches then begin
             verdict := property g;
             raise Exit
           end)
     with Exit -> ());
    !verdict
  in
  {
    name = Printf.sprintf "searched-protocol(n=%d,colors=%d)" n colors;
    local;
    referee = Protocol.batch global;
  }
