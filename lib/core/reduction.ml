open Refnet_graph

let square_oracle : bool Protocol.t =
  Protocol.rename "square-oracle"
    (Protocol.map_output Cycles.has_square Bounded_degree.full_information)

let diameter3_oracle : bool Protocol.t =
  Protocol.rename "diameter<=3-oracle"
    (Protocol.map_output (fun g -> Distance.diameter_at_most g 3) Bounded_degree.full_information)

let triangle_oracle : bool Protocol.t =
  Protocol.rename "triangle-oracle"
    (Protocol.map_output Cycles.has_triangle Bounded_degree.full_information)

(* Every vertex pair of [1..n], (s, t) with s < t, in lexicographic
   order — the iteration space of the referee's O(n^2) probe sweep. *)
let all_pairs n =
  let pairs = Array.make (n * (n - 1) / 2) (0, 0) in
  let idx = ref 0 in
  for s = 1 to n do
    for t = s + 1 to n do
      pairs.(!idx) <- (s, t);
      incr idx
    done
  done;
  pairs

(* Rebuild a graph from one oracle run per vertex pair.  The probes are
   independent referee-side simulations of G'_{s,t}, so they fan out
   across the domain pool; verdicts land in a fixed slot per pair, and
   the builder replays them in lexicographic order, keeping the result
   identical to the sequential sweep. *)
let graph_of_probe ?metrics ~n probe =
  let pairs = all_pairs n in
  let verdicts = Parallel.map_array ?metrics (fun (s, t) -> probe s t) pairs in
  (* Probes are counted once per sweep, on the submitting domain; the
     workers never touch the registry. *)
  (match metrics with
  | Some m ->
    Metrics.Counter.add (Metrics.Counter.counter m "refnet_oracle_probes_total") (Array.length pairs)
  | None -> ());
  let b = Graph.Builder.create n in
  Array.iteri (fun i yes -> if yes then let s, t = pairs.(i) in Graph.Builder.add_edge b s t) verdicts;
  Graph.Builder.build b

(* The referee simulates the oracle's own (streaming) referee per probe:
   real nodes' recorded Γ-messages are fed first, then the fictitious
   vertices' messages are fabricated and fed on the fly — no per-pair
   message array of the gadget's size is ever materialized. *)
let oracle_view ~size ~id ~neighbors = View.make ~n:size ~id ~neighbors

let square ?metrics (oracle : bool Protocol.t) : Graph.t Protocol.t =
  let local v =
    let n = View.n v in
    let id = View.id v in
    (* Node id's neighbourhood in every G'_{s,t} is N(id) + its pendant —
       independent of s and t, so one Γ-message covers all pairs. *)
    oracle.local (oracle_view ~size:(2 * n) ~id ~neighbors:(View.neighbors v @ [ id + n ]))
  in
  let global ~n msgs =
    graph_of_probe ?metrics ~n (fun s t ->
        let size = 2 * n in
        let feed = ref (Protocol.start oracle.referee ~n:size) in
        for i = 1 to n do
          feed := Protocol.feed !feed ~id:i msgs.(i - 1)
        done;
        for j = n + 1 to size do
          feed :=
            Protocol.feed !feed ~id:j
              (oracle.local
                 (oracle_view ~size ~id:j ~neighbors:(Gadgets.square_fictitious ~n ~s ~t j)))
        done;
        Protocol.finish !feed)
  in
  { name = "delta-square[" ^ oracle.name ^ "]"; local; referee = Protocol.batch global }

(* Bundled messages: each part written as a gamma length prefix followed
   by the raw bits, so the referee can split the bundle.  The framing
   itself lives in {!Message}; these aliases keep the historical
   spellings. *)
let write_part = Message.write_framed
let read_part = Message.read_framed
let bundle = Message.bundle
let unbundle = Message.unbundle

let diameter ?metrics (oracle : bool Protocol.t) : Graph.t Protocol.t =
  let local v =
    let n = View.n v in
    let id = View.id v in
    let neighbors = View.neighbors v in
    let size = n + 3 in
    (* m0: id keeps only the universal vertex; ms: id additionally sees
       n+1 (id plays s); mt: id additionally sees n+2 (id plays t). *)
    let m0 = oracle.local (oracle_view ~size ~id ~neighbors:(neighbors @ [ n + 3 ])) in
    let ms = oracle.local (oracle_view ~size ~id ~neighbors:(neighbors @ [ n + 1; n + 3 ])) in
    let mt = oracle.local (oracle_view ~size ~id ~neighbors:(neighbors @ [ n + 2; n + 3 ])) in
    bundle [ m0; ms; mt ]
  in
  let global ~n msgs =
    let size = n + 3 in
    (* Parts are materialized as arrays once: [part] sits inside the
       O(n^2)-probe sweep below, where a per-lookup list walk compounds
       into quadratic referee work. *)
    let parts =
      Parallel.map_array ?metrics (fun m -> Array.of_list (unbundle ~count:3 m)) msgs
    in
    let part i j = parts.(i - 1).(j) in
    graph_of_probe ?metrics ~n (fun s t ->
        let feed = ref (Protocol.start oracle.referee ~n:size) in
        for i = 1 to n do
          feed :=
            Protocol.feed !feed ~id:i
              (if i = s then part i 1 else if i = t then part i 2 else part i 0)
        done;
        for j = n + 1 to n + 3 do
          feed :=
            Protocol.feed !feed ~id:j
              (oracle.local
                 (oracle_view ~size ~id:j ~neighbors:(Gadgets.diameter_fictitious ~n ~s ~t j)))
        done;
        Protocol.finish !feed)
  in
  { name = "delta-diameter[" ^ oracle.name ^ "]"; local; referee = Protocol.batch global }

let triangle ?metrics (oracle : bool Protocol.t) : Graph.t Protocol.t =
  let local v =
    let n = View.n v in
    let id = View.id v in
    let neighbors = View.neighbors v in
    let size = n + 1 in
    let plain = oracle.local (oracle_view ~size ~id ~neighbors) in
    let touched = oracle.local (oracle_view ~size ~id ~neighbors:(neighbors @ [ n + 1 ])) in
    bundle [ plain; touched ]
  in
  let global ~n msgs =
    let size = n + 1 in
    let parts =
      Parallel.map_array ?metrics (fun m -> Array.of_list (unbundle ~count:2 m)) msgs
    in
    let part i j = parts.(i - 1).(j) in
    graph_of_probe ?metrics ~n (fun s t ->
        let feed = ref (Protocol.start oracle.referee ~n:size) in
        for i = 1 to n do
          feed := Protocol.feed !feed ~id:i (if i = s || i = t then part i 1 else part i 0)
        done;
        feed :=
          Protocol.feed !feed ~id:(n + 1)
            (oracle.local
               (oracle_view ~size ~id:(n + 1)
                  ~neighbors:(Gadgets.triangle_fictitious ~n ~s ~t (n + 1))));
        Protocol.finish !feed)
  in
  { name = "delta-triangle[" ^ oracle.name ^ "]"; local; referee = Protocol.batch global }
