open Refnet_bits
open Refnet_graph

let square_oracle : bool Protocol.t =
  Protocol.rename "square-oracle"
    (Protocol.map_output Cycles.has_square Bounded_degree.full_information)

let diameter3_oracle : bool Protocol.t =
  Protocol.rename "diameter<=3-oracle"
    (Protocol.map_output (fun g -> Distance.diameter_at_most g 3) Bounded_degree.full_information)

let triangle_oracle : bool Protocol.t =
  Protocol.rename "triangle-oracle"
    (Protocol.map_output Cycles.has_triangle Bounded_degree.full_information)

(* Every vertex pair of [1..n], (s, t) with s < t, in lexicographic
   order — the iteration space of the referee's O(n^2) probe sweep. *)
let all_pairs n =
  let pairs = Array.make (n * (n - 1) / 2) (0, 0) in
  let idx = ref 0 in
  for s = 1 to n do
    for t = s + 1 to n do
      pairs.(!idx) <- (s, t);
      incr idx
    done
  done;
  pairs

(* Rebuild a graph from one oracle run per vertex pair.  The probes are
   independent referee-side simulations of G'_{s,t}, so they fan out
   across the domain pool; verdicts land in a fixed slot per pair, and
   the builder replays them in lexicographic order, keeping the result
   identical to the sequential sweep. *)
let graph_of_probe ~n probe =
  let pairs = all_pairs n in
  let verdicts = Parallel.map_array (fun (s, t) -> probe s t) pairs in
  let b = Graph.Builder.create n in
  Array.iteri (fun i yes -> if yes then let s, t = pairs.(i) in Graph.Builder.add_edge b s t) verdicts;
  Graph.Builder.build b

let square ~(oracle : bool Protocol.t) : Graph.t Protocol.t =
  let local ~n ~id ~neighbors =
    (* Node id's neighbourhood in every G'_{s,t} is N(id) + its pendant —
       independent of s and t, so one Γ-message covers all pairs. *)
    oracle.local ~n:(2 * n) ~id ~neighbors:(neighbors @ [ id + n ])
  in
  let global ~n msgs =
    graph_of_probe ~n (fun s t ->
        let full = Array.make (2 * n) Message.empty in
        Array.blit msgs 0 full 0 n;
        for j = n + 1 to 2 * n do
          full.(j - 1) <-
            oracle.local ~n:(2 * n) ~id:j ~neighbors:(Gadgets.square_fictitious ~n ~s ~t j)
        done;
        oracle.global ~n:(2 * n) full)
  in
  { name = "delta-square[" ^ oracle.name ^ "]"; local; global }

(* Bundled messages: each part written as a gamma length prefix followed
   by the raw bits, so the referee can split the bundle. *)
let write_part w msg =
  Codes.write_nonneg w (Message.bits msg);
  Bit_writer.add_bitvec w msg

let read_part r =
  let len = Codes.read_nonneg r in
  Bit_reader.read_bitvec r ~len

let bundle parts =
  let w = Bit_writer.create () in
  List.iter (write_part w) parts;
  Message.of_writer w

let unbundle ~count msg =
  let r = Message.reader msg in
  List.init count (fun _ -> read_part r)

let diameter ~(oracle : bool Protocol.t) : Graph.t Protocol.t =
  let local ~n ~id ~neighbors =
    let size = n + 3 in
    (* m0: id keeps only the universal vertex; ms: id additionally sees
       n+1 (id plays s); mt: id additionally sees n+2 (id plays t). *)
    let m0 = oracle.local ~n:size ~id ~neighbors:(neighbors @ [ n + 3 ]) in
    let ms = oracle.local ~n:size ~id ~neighbors:(neighbors @ [ n + 1; n + 3 ]) in
    let mt = oracle.local ~n:size ~id ~neighbors:(neighbors @ [ n + 2; n + 3 ]) in
    bundle [ m0; ms; mt ]
  in
  let global ~n msgs =
    let size = n + 3 in
    let parts = Parallel.map_array (unbundle ~count:3) msgs in
    let part i j = List.nth parts.(i - 1) j in
    graph_of_probe ~n (fun s t ->
        let full = Array.make size Message.empty in
        for i = 1 to n do
          full.(i - 1) <- (if i = s then part i 1 else if i = t then part i 2 else part i 0)
        done;
        for j = n + 1 to n + 3 do
          full.(j - 1) <-
            oracle.local ~n:size ~id:j ~neighbors:(Gadgets.diameter_fictitious ~n ~s ~t j)
        done;
        oracle.global ~n:size full)
  in
  { name = "delta-diameter[" ^ oracle.name ^ "]"; local; global }

let triangle ~(oracle : bool Protocol.t) : Graph.t Protocol.t =
  let local ~n ~id ~neighbors =
    let size = n + 1 in
    let plain = oracle.local ~n:size ~id ~neighbors in
    let touched = oracle.local ~n:size ~id ~neighbors:(neighbors @ [ n + 1 ]) in
    bundle [ plain; touched ]
  in
  let global ~n msgs =
    let size = n + 1 in
    let parts = Parallel.map_array (unbundle ~count:2) msgs in
    let part i j = List.nth parts.(i - 1) j in
    graph_of_probe ~n (fun s t ->
        let full = Array.make size Message.empty in
        for i = 1 to n do
          full.(i - 1) <- (if i = s || i = t then part i 1 else part i 0)
        done;
        full.(n) <-
          oracle.local ~n:size ~id:(n + 1)
            ~neighbors:(Gadgets.triangle_fictitious ~n ~s ~t (n + 1));
        oracle.global ~n:size full)
  in
  { name = "delta-triangle[" ^ oracle.name ^ "]"; local; global }
