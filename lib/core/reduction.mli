(** The reduction protocols Δ of Section II, executable.

    Each takes an {e oracle}: any one-round protocol Γ deciding the
    target property (squares / diameter ≤ 3 / triangles) at every network
    size.  From it, Δ reconstructs the input graph in one round by
    simulating Γ on the gadgets [G'_{s,t}] of {!Gadgets} for every vertex
    pair — real nodes send Γ-messages computed on their gadget
    neighbourhoods, and the referee fabricates the fictitious vertices'
    messages itself (they do not depend on [G]).

    Running Δ with a {e correct} oracle demonstrates the simulation is
    faithful (tests check exact reconstruction); measuring Δ's message
    sizes demonstrates the accounting of the theorems — [k(2n)] /
    [3 k(n+3)] / [2 k(n+1)] bits for an oracle using [k(n)] bits — which
    combined with Lemma 1's counting (see {!Counting}) yields the
    impossibility of a frugal Γ. *)

open Refnet_graph

(** Each constructor takes [?metrics]: the returned protocol's referee
    captures the registry and records one [refnet_oracle_probes_total]
    increment per simulated gadget pair during its O(n²) probe sweep
    (plus the {!Parallel} pool timers).  Omitted, the referee runs the
    uninstrumented path. *)

(** [square ?metrics oracle] (Theorem 1 / Algorithm 1): reconstructs
    square-free graphs.  Messages are single Γ-messages at size [2n]. *)
val square : ?metrics:Metrics.t -> bool Protocol.t -> Graph.t Protocol.t

(** [diameter ?metrics oracle] (Theorem 2 / Algorithm 2): reconstructs
    arbitrary graphs from a diameter-3 decider.  Messages bundle the
    three Γ-messages [(m0, ms, mt)], length-prefixed. *)
val diameter : ?metrics:Metrics.t -> bool Protocol.t -> Graph.t Protocol.t

(** [triangle ?metrics oracle] (Theorem 3): reconstructs triangle-free
    (in the paper, bipartite) graphs from a triangle decider.  Messages
    bundle two Γ-messages. *)
val triangle : ?metrics:Metrics.t -> bool Protocol.t -> Graph.t Protocol.t

(** Reference oracles, correct by construction but deliberately
    non-frugal ([n] bits per node): each node ships its incidence vector
    and the referee decides exactly.  These close the loop in tests: a
    correct oracle exists, the reductions work, and only frugality is
    impossible. *)

val square_oracle : bool Protocol.t
val diameter3_oracle : bool Protocol.t
val triangle_oracle : bool Protocol.t

(** Message framing shared by reductions that bundle several oracle
    messages into one: each part is written as a gamma-coded length
    followed by the raw bits. *)

(** [bundle parts] frames and concatenates. *)
val bundle : Message.t list -> Message.t

(** [unbundle ~count m] splits a bundle back into [count] parts. *)
val unbundle : count:int -> Message.t -> Message.t list

(** [write_part w m] appends one framed part to a writer. *)
val write_part : Refnet_bits.Bit_writer.t -> Message.t -> unit

(** [read_part r] reads one framed part. *)
val read_part : Refnet_bits.Bit_reader.t -> Message.t

