(* ---------- a parser for the flat JSON objects Trace.jsonl writes ----------

   One object per line, values are strings or integers, no nesting.
   Hand-rolled so the analysis pipeline stays dependency-free. *)

type jvalue = S of string | I of int

exception Parse of string

let parse_line line =
  let n = String.length line in
  let pos = ref 0 in
  let fail msg = raise (Parse (Printf.sprintf "%s at column %d" msg (!pos + 1))) in
  let peek () = if !pos < n then Some line.[!pos] else None in
  let advance () = incr pos in
  let expect c =
    match peek () with
    | Some d when d = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let skip_ws () =
    while !pos < n && (line.[!pos] = ' ' || line.[!pos] = '\t' || line.[!pos] = '\r') do
      advance ()
    done
  in
  let hex c =
    match c with
    | '0' .. '9' -> Char.code c - Char.code '0'
    | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
    | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
    | _ -> fail "bad \\u escape"
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' ->
        advance ();
        (match peek () with
        | Some '"' -> Buffer.add_char b '"'; advance ()
        | Some '\\' -> Buffer.add_char b '\\'; advance ()
        | Some '/' -> Buffer.add_char b '/'; advance ()
        | Some 'n' -> Buffer.add_char b '\n'; advance ()
        | Some 't' -> Buffer.add_char b '\t'; advance ()
        | Some 'r' -> Buffer.add_char b '\r'; advance ()
        | Some 'u' ->
          advance ();
          if !pos + 4 > n then fail "truncated \\u escape";
          let code =
            (hex line.[!pos] lsl 12) lor (hex line.[!pos + 1] lsl 8)
            lor (hex line.[!pos + 2] lsl 4) lor hex line.[!pos + 3]
          in
          pos := !pos + 4;
          (* The writer only \u-escapes control characters, which are
             single bytes; anything else round-trips as UTF-8 already. *)
          if code < 0x80 then Buffer.add_char b (Char.chr code) else fail "non-ASCII \\u escape"
        | _ -> fail "bad escape");
        go ()
      | Some c -> Buffer.add_char b c; advance (); go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_int () =
    let start = !pos in
    if peek () = Some '-' then advance ();
    while (match peek () with Some ('0' .. '9') -> true | _ -> false) do
      advance ()
    done;
    if !pos = start then fail "expected a number";
    match int_of_string_opt (String.sub line start (!pos - start)) with
    | Some v -> v
    | None -> fail "number out of range"
  in
  skip_ws ();
  expect '{';
  let fields = ref [] in
  skip_ws ();
  if peek () = Some '}' then advance ()
  else begin
    let rec members () =
      skip_ws ();
      let key = parse_string () in
      skip_ws ();
      expect ':';
      skip_ws ();
      let value = match peek () with Some '"' -> S (parse_string ()) | _ -> I (parse_int ()) in
      fields := (key, value) :: !fields;
      skip_ws ();
      match peek () with
      | Some ',' -> advance (); members ()
      | Some '}' -> advance ()
      | _ -> fail "expected ',' or '}'"
    in
    members ()
  end;
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  List.rev !fields

let str fields key =
  match List.assoc_opt key fields with
  | Some (S s) -> s
  | _ -> raise (Parse (Printf.sprintf "missing string field %S" key))

let int_ fields key =
  match List.assoc_opt key fields with
  | Some (I v) -> v
  | _ -> raise (Parse (Printf.sprintf "missing integer field %S" key))

(* ---------- aggregation ---------- *)

type proto = {
  mutable runs : int;
  mutable n_lo : int;
  mutable n_hi : int;
  mutable locals : int;
  mutable absorbs : int;
  mutable bits_sum : int;
  mutable bits_max : int;
  bits_buckets : int array; (* log2 buckets over Node_local bits *)
  mutable queries_sum : int;
  mutable broadcasts : int; (* Bcc referee broadcasts *)
  mutable bcast_bits : int; (* summed broadcast payload bits *)
  faults : (string, int) Hashtbl.t; (* fault kind -> count *)
  mutable total_bits : int; (* summed over Referee_done events *)
  mutable obs : Bound_audit.observation list; (* reversed *)
}

type t = {
  protocols : (string, proto) Hashtbl.t;
  mutable stack : string list; (* open span labels, innermost first *)
  mutable n_events : int;
}

let create () = { protocols = Hashtbl.create 8; stack = []; n_events = 0 }
let events t = t.n_events

let unattributed = "(unattributed)"

let proto t label =
  match Hashtbl.find_opt t.protocols label with
  | Some p -> p
  | None ->
    let p =
      {
        runs = 0;
        n_lo = max_int;
        n_hi = 0;
        locals = 0;
        absorbs = 0;
        bits_sum = 0;
        bits_max = 0;
        bits_buckets = Array.make 64 0;
        queries_sum = 0;
        broadcasts = 0;
        bcast_bits = 0;
        faults = Hashtbl.create 4;
        total_bits = 0;
        obs = [];
      }
    in
    Hashtbl.add t.protocols label p;
    p

let current_label t = match t.stack with l :: _ -> l | [] -> unattributed

let fault_kind fault =
  match String.index_opt fault ':' with
  | Some i -> String.sub fault 0 i
  | None -> fault

let ingest_fields t fields =
  (match str fields "event" with
  | "span_begin" -> t.stack <- str fields "label" :: t.stack
  | "span_end" -> (
    match t.stack with
    | _ :: rest -> t.stack <- rest
    | [] -> raise (Parse "span_end without an open span"))
  | "local" ->
    let p = proto t (current_label t) in
    let bits = int_ fields "bits" in
    p.locals <- p.locals + 1;
    p.bits_sum <- p.bits_sum + bits;
    if bits > p.bits_max then p.bits_max <- bits;
    let b = Metrics.Histogram.bucket_index bits in
    p.bits_buckets.(b) <- p.bits_buckets.(b) + 1;
    p.queries_sum <-
      p.queries_sum + int_ fields "id_reads" + int_ fields "n_reads" + int_ fields "deg_reads"
      + int_ fields "neighbor_reads"
  | "absorb" ->
    let p = proto t (current_label t) in
    ignore (int_ fields "id");
    ignore (int_ fields "bits");
    p.absorbs <- p.absorbs + 1
  | "broadcast" ->
    (* Emitted inside the round span, so it lands on the [round=r]
       label — the budget the broadcast is held to is per-round too. *)
    let p = proto t (current_label t) in
    ignore (int_ fields "round");
    p.broadcasts <- p.broadcasts + 1;
    p.bcast_bits <- p.bcast_bits + int_ fields "bits"
  | "fault" ->
    let p = proto t (current_label t) in
    let kind = fault_kind (str fields "fault") in
    Hashtbl.replace p.faults kind (1 + Option.value ~default:0 (Hashtbl.find_opt p.faults kind))
  | "done" ->
    (* Attributed to its own label, not the span stack: the done event
       is the authoritative per-run record used for bound auditing. *)
    let p = proto t (str fields "label") in
    let n = int_ fields "n" in
    p.runs <- p.runs + 1;
    if n < p.n_lo then p.n_lo <- n;
    if n > p.n_hi then p.n_hi <- n;
    p.total_bits <- p.total_bits + int_ fields "total_bits";
    p.obs <- { Bound_audit.o_n = n; o_max_bits = int_ fields "max_bits" } :: p.obs
  | other -> raise (Parse (Printf.sprintf "unknown event %S" other)));
  t.n_events <- t.n_events + 1

let is_blank line = String.for_all (fun c -> c = ' ' || c = '\t' || c = '\r') line

let ingest_line t line =
  if not (is_blank line) then
    match parse_line line with
    | fields -> (
      (* ingest_fields can itself reject a well-formed object (unknown
         event tag, missing field) — surface that as Failure too. *)
      try ingest_fields t fields
      with Parse msg -> failwith (Printf.sprintf "bad trace line (%s): %s" msg line)) (* lint: allow referee-totality -- documented ingest contract: bad lines raise Failure *)
    | exception Parse msg -> failwith (Printf.sprintf "bad trace line (%s): %s" msg line) (* lint: allow referee-totality -- documented ingest contract: bad lines raise Failure *)

let ingest_event t ev = ingest_line t (Trace.json_of_event ev)
let sink t = Trace.make (fun ev -> ingest_event t ev)

let ingest_file t path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let lineno = ref 0 in
      try
        while true do
          let line = input_line ic in
          incr lineno;
          try ingest_line t line
          with Failure msg -> failwith (Printf.sprintf "%s:%d: %s" path !lineno msg) (* lint: allow referee-totality -- re-raise with file:line context *)
        done
      with End_of_file -> ())

(* ---------- audits ---------- *)

let sorted_protocols t =
  Hashtbl.fold (fun label p acc -> (label, p) :: acc) t.protocols []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let verdicts t =
  List.filter_map
    (fun (label, p) -> Bound_audit.audit_label label (List.rev p.obs))
    (sorted_protocols t)

let violations t = List.filter (fun v -> not v.Bound_audit.v_passed) (verdicts t)

(* ---------- rendering ---------- *)

let json_string s =
  let b = Buffer.create (String.length s + 2) in
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"';
  Buffer.contents b

let sorted_faults p =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) p.faults []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

(* p50/p90/p99 of per-node message bits, straight off the log2 buckets
   the proto already keeps (same resolution as Metrics histograms). *)
let bits_quantiles p =
  let buckets = ref [] in
  for idx = Array.length p.bits_buckets - 1 downto 0 do
    if p.bits_buckets.(idx) > 0 then buckets := (idx, p.bits_buckets.(idx)) :: !buckets
  done;
  let snap =
    { Metrics.h_count = p.locals; h_sum = p.bits_sum; h_max = p.bits_max; h_buckets = !buckets }
  in
  ( Metrics.snapshot_quantile snap 0.5,
    Metrics.snapshot_quantile snap 0.9,
    Metrics.snapshot_quantile snap 0.99 )

let to_json t =
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\"audits\":[";
  List.iteri
    (fun i v ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b (Bound_audit.verdict_json v))
    (verdicts t);
  Buffer.add_string b "],\"protocols\":{";
  List.iteri
    (fun i (label, p) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b (json_string label);
      Buffer.add_string b
        (Printf.sprintf ":{\"absorbs\":%d,\"bits_buckets\":{" p.absorbs);
      let first = ref true in
      Array.iteri
        (fun idx c ->
          if c > 0 then begin
            if not !first then Buffer.add_char b ',';
            first := false;
            Buffer.add_string b (Printf.sprintf "\"%d\":%d" idx c)
          end)
        p.bits_buckets;
      let p50, p90, p99 = bits_quantiles p in
      Buffer.add_string b
        (Printf.sprintf
           "},\"bits_max\":%d,\"bits_p50\":%d,\"bits_p90\":%d,\"bits_p99\":%d,\"bits_sum\":%d,\"broadcast_bits\":%d,\"broadcasts\":%d,\"faults\":{"
           p.bits_max p50 p90 p99 p.bits_sum p.bcast_bits p.broadcasts);
      List.iteri
        (fun j (k, v) ->
          if j > 0 then Buffer.add_char b ',';
          Buffer.add_string b (Printf.sprintf "%s:%d" (json_string k) v))
        (sorted_faults p);
      Buffer.add_string b
        (Printf.sprintf
           "},\"locals\":%d,\"n_max\":%d,\"n_min\":%d,\"queries\":%d,\"runs\":%d,\"total_bits\":%d}"
           p.locals p.n_hi
           (if p.n_lo = max_int then 0 else p.n_lo)
           p.queries_sum p.runs p.total_bits))
    (sorted_protocols t);
  Buffer.add_string b (Printf.sprintf "},\"trace_events\":%d}" t.n_events);
  Buffer.contents b

let pp fmt t =
  Format.fprintf fmt "trace events: %d@." t.n_events;
  List.iter
    (fun (label, p) ->
      Format.fprintf fmt "@.%s@." label;
      if p.runs > 0 then begin
        if p.n_lo = p.n_hi then Format.fprintf fmt "  runs: %d (n=%d)@." p.runs p.n_lo
        else Format.fprintf fmt "  runs: %d (n=%d..%d)@." p.runs p.n_lo p.n_hi
      end;
      if p.locals > 0 then begin
        let p50, p90, p99 = bits_quantiles p in
        Format.fprintf fmt "  locals: %d  bits max=%d sum=%d p50=%d p90=%d p99=%d  view queries=%d@."
          p.locals p.bits_max p.bits_sum p50 p90 p99 p.queries_sum
      end;
      if p.absorbs > 0 then Format.fprintf fmt "  absorbs: %d@." p.absorbs;
      if p.broadcasts > 0 then
        Format.fprintf fmt "  broadcasts: %d  bits sum=%d@." p.broadcasts p.bcast_bits;
      if p.total_bits > 0 then Format.fprintf fmt "  total bits over runs: %d@." p.total_bits;
      Array.iteri
        (fun idx c ->
          if c > 0 then begin
            let lo, hi = Metrics.Histogram.bucket_range idx in
            Format.fprintf fmt "  bits [%d..%d]: %d message%s@." lo hi c
              (if c = 1 then "" else "s")
          end)
        p.bits_buckets;
      List.iter (fun (k, v) -> Format.fprintf fmt "  faults %s: %d@." k v) (sorted_faults p))
    (sorted_protocols t);
  match verdicts t with
  | [] -> Format.fprintf fmt "@.no auditable protocols in this trace@."
  | vs ->
    Format.fprintf fmt "@.bound audit@.";
    List.iter
      (fun v ->
        (* quantile columns ride along from the label's message-size
           buckets; a label with no locals shows p50=p90=p99=0 *)
        let q =
          match Hashtbl.find_opt t.protocols v.Bound_audit.v_label with
          | Some p when p.locals > 0 ->
            let p50, p90, p99 = bits_quantiles p in
            Printf.sprintf "  p50=%d p90=%d p99=%d" p50 p90 p99
          | _ -> ""
        in
        Format.fprintf fmt "  %a%s@." Bound_audit.pp_verdict v q)
      vs
