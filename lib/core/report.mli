(** Offline trace analysis: aggregate a JSONL trace (or a live event
    stream) into per-protocol bit histograms, fault counts and
    bound-audit verdicts.

    The aggregator consumes {!Trace} events one at a time.  The offline
    path parses the JSONL lines {!Trace.jsonl} wrote; the live path
    ({!ingest_event}) renders each event through {!Trace.json_of_event}
    and feeds the same line parser — the two paths are the same code by
    construction, which is what makes [refnet report] reproduce a live
    run's aggregates byte-for-byte (tested in [test_metrics]).

    Events between a [Span_begin]/[Span_end] pair are attributed to the
    innermost open span's label; [Referee_done] events carry their own
    label and contribute one bound-audit observation [(n, max_bits)]
    each.  Message-bit histograms bucket with
    {!Metrics.Histogram.bucket_index} (log₂ buckets), so the report and
    a live {!Metrics} snapshot bucket identically. *)

type t

val create : unit -> t

(** [ingest_line t line] parses and aggregates one JSONL trace line
    (empty/whitespace lines are ignored).
    @raise Failure on a line that does not parse as a trace event. *)
val ingest_line : t -> string -> unit

(** [ingest_event t ev] aggregates a live event — defined as
    [ingest_line t (Trace.json_of_event ev)]. *)
val ingest_event : t -> Trace.event -> unit

(** [sink t] wraps {!ingest_event} as a {!Trace.sink}, so a live run can
    aggregate directly: [Simulator.run ~trace:(Report.sink t) ...]. *)
val sink : t -> Trace.sink

(** [ingest_file t path] ingests a whole JSONL trace file.
    @raise Failure as [ingest_line], prefixed with [path:lineno];
    @raise Sys_error if the file cannot be read. *)
val ingest_file : t -> string -> unit

(** [events t] is the number of events aggregated so far. *)
val events : t -> int

(** [verdicts t] audits every protocol label that has a budget
    ({!Bound_audit.budget_of_label}), sorted by label. *)
val verdicts : t -> Bound_audit.verdict list

(** [violations t] is the failed subset of {!verdicts}. *)
val violations : t -> Bound_audit.verdict list

(** [to_json t] is one canonical JSON object (sorted keys, no
    whitespace): [{"audits":[...],"protocols":{...},"trace_events":N}].
    Two aggregators fed the same events render identical strings. *)
val to_json : t -> string

(** [pp fmt t] renders the human report: per-protocol aggregates with
    log₂ bit histograms and fault counts, then the audit table. *)
val pp : Format.formatter -> t -> unit
