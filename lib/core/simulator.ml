open Refnet_graph

type transcript = {
  n : int;
  message_bits : int array;
  max_bits : int;
  total_bits : int;
  faulted_ids : int list;
}

let transcript_of_messages msgs =
  let message_bits = Array.map Message.bits msgs in
  {
    n = Array.length msgs;
    message_bits;
    max_bits = Array.fold_left max 0 message_bits;
    total_bits = Array.fold_left ( + ) 0 message_bits;
    faulted_ids = [];
  }

let transcript_of_bits message_bits =
  {
    n = Array.length message_bits;
    message_bits;
    max_bits = Array.fold_left max 0 message_bits;
    total_bits = Array.fold_left ( + ) 0 message_bits;
    faulted_ids = [];
  }

let emit_node_events trace views msgs =
  Array.iteri
    (fun i msg ->
      Trace.emit trace
        (Trace.Node_local { id = i + 1; bits = Message.bits msg; queries = View.audit views.(i) }))
    msgs

let query_total (c : View.counts) = c.id_reads + c.n_reads + c.deg_reads + c.neighbor_reads

let observe_local metrics views msgs =
  match metrics with
  | None -> ()
  | Some m ->
    Metrics.Counter.add (Metrics.Counter.counter m "refnet_messages_total") (Array.length msgs);
    let bits = Metrics.Histogram.histogram m "refnet_message_bits" in
    Array.iter (fun msg -> Metrics.Histogram.observe bits (Message.bits msg)) msgs;
    let queries = Metrics.Histogram.histogram m "refnet_view_queries" in
    Array.iter (fun v -> Metrics.Histogram.observe queries (query_total (View.audit v))) views

let maybe_time metrics name f =
  match metrics with Some m -> Metrics.time m name f | None -> f ()

let observe_transcript metrics t =
  match metrics with
  | None -> ()
  | Some m ->
    Metrics.Counter.incr (Metrics.Counter.counter m "refnet_runs_total");
    Metrics.Histogram.observe (Metrics.Histogram.histogram m "refnet_run_max_bits") t.max_bits;
    Metrics.Counter.add (Metrics.Counter.counter m "refnet_run_bits_total") t.total_bits

(* The engine-side view constructor: one view record per node, backed
   directly by the source's neighbour slice — zero per-node copies for
   materialized/CSR backends, one fresh run for implicit ones. *)
let view_of src ~n i =
  let nbrs, off, len = Graph_source.neighbors_slice src (i + 1) in
  View.of_slice ~n ~id:(i + 1) nbrs ~off ~len

let local_phase_source ?domains ?(trace = Trace.null) ?metrics (p : 'a Protocol.t) src =
  (* The model makes this phase embarrassingly parallel: each node's
     message depends only on its view.  The engine is the only place
     views of real nodes are built; messages land in their slot by
     identifier, so the vector — and hence the transcript — is
     bit-identical to a sequential run at any domain count and over any
     backend presenting the same labelled graph. *)
  let n = Graph_source.order src in
  if Trace.is_null trace && metrics = None then
    Parallel.init ?domains n (fun i -> p.local (view_of src ~n i))
  else begin
    (* Prebuild the views so their audit tallies survive the parallel
       section; events and metrics are recorded from the submitting
       domain only, after the batch completes, in identifier order. *)
    let views = Array.init n (fun i -> view_of src ~n i) in
    let msgs = Parallel.init ?domains ?metrics n (fun i -> p.local views.(i)) in
    if not (Trace.is_null trace) then emit_node_events trace views msgs;
    observe_local metrics views msgs;
    msgs
  end

let local_phase ?domains ?trace ?metrics p g =
  local_phase_source ?domains ?trace ?metrics p (Graph_source.of_graph g)

(* Blocked schedule: compute [chunk] messages in parallel, feed them to
   the streaming referee, release them, repeat.  Live message storage is
   O(chunk) instead of O(n) — the transcript keeps every length in an
   int array.  Absorbs happen in identifier order exactly as in the
   full-vector schedule, so output and transcript are bit-identical for
   every chunk size; only the interleaving of [Node_local] /
   [Referee_absorb] trace events (and the per-absorb latency sampling,
   skipped here) differs. *)
let run_chunked ?domains ~chunk ~trace ~metrics (p : 'a Protocol.t) src =
  let n = Graph_source.order src in
  let message_bits = Array.make n 0 in
  let feed = ref (Protocol.start p.referee ~n) in
  let quiet = Trace.is_null trace && metrics = None in
  let base = ref 0 in
  while !base < n do
    let b = !base in
    let len = min chunk (n - b) in
    if quiet then begin
      let msgs = Parallel.init ?domains len (fun i -> p.local (view_of src ~n (b + i))) in
      for i = 0 to len - 1 do
        message_bits.(b + i) <- Message.bits msgs.(i);
        feed := Protocol.feed !feed ~id:(b + i + 1) msgs.(i)
      done
    end
    else begin
      let views = Array.init len (fun i -> view_of src ~n (b + i)) in
      let msgs =
        maybe_time metrics "refnet_local_phase" (fun () ->
            Parallel.init ?domains ?metrics len (fun i -> p.local views.(i)))
      in
      if not (Trace.is_null trace) then
        Array.iteri
          (fun i msg ->
            Trace.emit trace
              (Trace.Node_local
                 { id = b + i + 1; bits = Message.bits msg; queries = View.audit views.(i) }))
          msgs;
      observe_local metrics views msgs;
      maybe_time metrics "refnet_referee_phase" (fun () ->
          for i = 0 to len - 1 do
            message_bits.(b + i) <- Message.bits msgs.(i);
            feed := Protocol.feed !feed ~id:(b + i + 1) msgs.(i);
            if not (Trace.is_null trace) then
              Trace.emit trace (Trace.Referee_absorb { id = b + i + 1; bits = message_bits.(b + i) })
          done);
      match metrics with
      | Some m -> Metrics.Counter.add (Metrics.Counter.counter m "refnet_absorbs_total") len
      | None -> ()
    end;
    base := b + len
  done;
  (Protocol.finish !feed, transcript_of_bits message_bits)

let run_core ?domains ?chunk ~trace ~metrics ~label (p : 'a Protocol.t) src =
  let n = Graph_source.order src in
  Trace.emit trace (Trace.Span_begin { label; n });
  let out, t =
    match chunk with
    | Some c when c >= 1 && c < n -> run_chunked ?domains ~chunk:c ~trace ~metrics p src
    | _ ->
      let msgs =
        maybe_time metrics "refnet_local_phase" (fun () ->
            local_phase_source ?domains ~trace ?metrics p src)
      in
      let out =
        maybe_time metrics "refnet_referee_phase" (fun () ->
            Protocol.run_referee ~trace ?metrics p.referee ~n msgs)
      in
      (out, transcript_of_messages msgs)
  in
  observe_transcript metrics t;
  Trace.emit trace
    (Trace.Referee_done { label; n; max_bits = t.max_bits; total_bits = t.total_bits });
  Trace.emit trace (Trace.Span_end { label; n });
  (out, t)

(* [src=<backend>] is appended outermost — outside [parts=] and the
   +sealed/+hardened suffixes — and peeled first by
   {!Bound_audit.classify_label}, so backend-tagged runs audit under the
   same budget as their bare twins while staying distinguishable in
   [refnet report]. *)
let source_label (p : 'a Protocol.t) src = Printf.sprintf "%s[src=%s]" p.name (Graph_source.backend src)

let observe_source metrics src =
  match metrics with
  | None -> ()
  | Some m ->
    Metrics.Counter.incr
      (Metrics.Counter.counter m
         (Metrics.series "refnet_source_runs_total" [ ("backend", Graph_source.backend src) ]))

let run ?domains ?(trace = Trace.null) ?metrics (p : 'a Protocol.t) g =
  run_core ?domains ~trace ~metrics ~label:p.name p (Graph_source.of_graph g)

let run_source ?domains ?chunk ?(trace = Trace.null) ?metrics (p : 'a Protocol.t) src =
  observe_source metrics src;
  run_core ?domains ?chunk ~trace ~metrics ~label:(source_label p src) p src

let run_faulty_core ?domains ~faults ~trace ~metrics ~label (p : 'a Protocol.t) src =
  (* Identical to [run_core]'s full-vector schedule up to and including
     the local phase; the fault plan then rewrites the delivery
     schedule.  Message {e production} is untouched — the transcript
     keeps measuring what nodes sent, so an empty plan is bit-identical
     to [run] (output, transcript and event stream) at any domain
     count.  Fault plans address the full vector, so this entry point
     does not chunk. *)
  let n = Graph_source.order src in
  Trace.emit trace (Trace.Span_begin { label; n });
  let msgs =
    maybe_time metrics "refnet_local_phase" (fun () ->
        local_phase_source ?domains ~trace ?metrics p src)
  in
  let deliveries, injected = Faults.apply faults msgs in
  (match metrics with
  | Some m when injected <> [] ->
    Metrics.Counter.add
      (Metrics.Counter.counter m "refnet_faults_injected_total")
      (List.length injected)
  | _ -> ());
  if not (Trace.is_null trace) then
    List.iter (fun (id, fault) -> Trace.emit trace (Trace.Fault_injected { id; fault })) injected;
  let out =
    maybe_time metrics "refnet_referee_phase" (fun () ->
        Protocol.feed_deliveries ~trace ?metrics p.referee ~n deliveries)
  in
  let t = { (transcript_of_messages msgs) with faulted_ids = List.map fst injected } in
  observe_transcript metrics t;
  Trace.emit trace
    (Trace.Referee_done { label; n; max_bits = t.max_bits; total_bits = t.total_bits });
  Trace.emit trace (Trace.Span_end { label; n });
  (out, t)

let run_faulty ?(faults = Faults.empty) ?domains ?(trace = Trace.null) ?metrics
    (p : 'a Protocol.t) g =
  run_faulty_core ?domains ~faults ~trace ~metrics ~label:p.name p (Graph_source.of_graph g)

let run_faulty_source ?(faults = Faults.empty) ?domains ?(trace = Trace.null) ?metrics
    (p : 'a Protocol.t) src =
  observe_source metrics src;
  run_faulty_core ?domains ~faults ~trace ~metrics ~label:(source_label p src) p src

let shuffle rng a =
  let n = Array.length a in
  for i = n - 1 downto 1 do
    let j = Random.State.int rng (i + 1) in
    let t = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- t
  done

let run_async_core ?rng ?domains ~trace ~metrics ~label (p : 'a Protocol.t) src =
  let rng = match rng with Some r -> r | None -> Random.State.make [| 0x5eed |] in
  let n = Graph_source.order src in
  Trace.emit trace (Trace.Span_begin { label; n });
  let order = Array.init n (fun i -> i + 1) in
  shuffle rng order;
  (* Compute in scheduling order (now also interleaved across domains),
     deliver in yet another order: the streaming referee absorbs each
     message as it arrives, and its output must not depend on arrival
     order (one message per node, sender identified). *)
  let inbox = Array.make n None in
  let views = Array.make n None in
  maybe_time metrics "refnet_local_phase" (fun () ->
      Parallel.iter_range ?domains ?metrics n (fun i ->
          let id = order.(i) in
          let v = view_of src ~n (id - 1) in
          views.(id - 1) <- Some v;
          inbox.(id - 1) <- Some (p.local v)));
  let msgs = Array.map (function Some m -> m | None -> assert false) inbox in (* lint: allow referee-totality -- every slot was filled by the local phase above *)
  let views = Array.map (function Some v -> v | None -> assert false) views in (* lint: allow referee-totality -- every slot was filled by the local phase above *)
  if not (Trace.is_null trace) then emit_node_events trace views msgs;
  observe_local metrics views msgs;
  let arrival = Array.init n (fun i -> i + 1) in
  shuffle rng arrival;
  let deliveries = Array.to_list (Array.map (fun id -> (id, msgs.(id - 1))) arrival) in
  let out =
    maybe_time metrics "refnet_referee_phase" (fun () ->
        Protocol.feed_deliveries ~trace ?metrics p.referee ~n deliveries)
  in
  let t = transcript_of_messages msgs in
  observe_transcript metrics t;
  Trace.emit trace
    (Trace.Referee_done { label; n; max_bits = t.max_bits; total_bits = t.total_bits });
  Trace.emit trace (Trace.Span_end { label; n });
  (out, t)

let run_async ?rng ?domains ?(trace = Trace.null) ?metrics (p : 'a Protocol.t) g =
  run_async_core ?rng ?domains ~trace ~metrics ~label:p.name p (Graph_source.of_graph g)

let run_async_source ?rng ?domains ?(trace = Trace.null) ?metrics (p : 'a Protocol.t) src =
  observe_source metrics src;
  run_async_core ?rng ?domains ~trace ~metrics ~label:(source_label p src) p src

let ceil_log2 n =
  let rec go acc v = if v = 0 then acc else go (acc + 1) (v lsr 1) in
  max 1 (go 0 n)

let is_frugal t ~c = t.max_bits <= c * ceil_log2 t.n

let frugality_ratio t =
  if t.n = 0 then 0.0 else float_of_int t.max_bits /. float_of_int (ceil_log2 t.n)

let pp_transcript fmt t =
  Format.fprintf fmt "n=%d max=%d bits total=%d bits (%.2f x log n)" t.n t.max_bits
    t.total_bits (frugality_ratio t);
  match t.faulted_ids with
  | [] -> ()
  | ids -> Format.fprintf fmt " faults=%d" (List.length ids)
