open Refnet_graph

type transcript = {
  n : int;
  message_bits : int array;
  max_bits : int;
  total_bits : int;
}

let transcript_of_messages msgs =
  let message_bits = Array.map Message.bits msgs in
  {
    n = Array.length msgs;
    message_bits;
    max_bits = Array.fold_left max 0 message_bits;
    total_bits = Array.fold_left ( + ) 0 message_bits;
  }

let local_phase ?domains (p : 'a Protocol.t) g =
  (* The model makes this phase embarrassingly parallel: each node's
     message depends only on (n, id, N(id)).  Messages land in their slot
     by identifier, so the vector — and hence the transcript — is
     bit-identical to a sequential run at any domain count. *)
  let n = Graph.order g in
  Parallel.init ?domains n (fun i -> p.local ~n ~id:(i + 1) ~neighbors:(Graph.neighbors g (i + 1)))

let run ?domains (p : 'a Protocol.t) g =
  let msgs = local_phase ?domains p g in
  let out = p.global ~n:(Graph.order g) msgs in
  (out, transcript_of_messages msgs)

let run_async ?rng ?domains (p : 'a Protocol.t) g =
  let rng = match rng with Some r -> r | None -> Random.State.make [| 0x5eed |] in
  let n = Graph.order g in
  let order = Array.init n (fun i -> i + 1) in
  for i = n - 1 downto 1 do
    let j = Random.State.int rng (i + 1) in
    let t = order.(i) in
    order.(i) <- order.(j);
    order.(j) <- t
  done;
  (* Compute in scheduling order (now also interleaved across domains),
     deliver in another order, reassemble by identifier: the referee
     waits for one message per node. *)
  let inbox = Array.make n None in
  Parallel.iter_range ?domains n (fun i ->
      let id = order.(i) in
      inbox.(id - 1) <- Some (p.local ~n ~id ~neighbors:(Graph.neighbors g id)));
  let msgs =
    Array.map (function Some m -> m | None -> assert false) inbox
  in
  let out = p.global ~n msgs in
  (out, transcript_of_messages msgs)

let ceil_log2 n =
  let rec go acc v = if v = 0 then acc else go (acc + 1) (v lsr 1) in
  max 1 (go 0 n)

let is_frugal t ~c = t.max_bits <= c * ceil_log2 t.n

let frugality_ratio t =
  if t.n = 0 then 0.0 else float_of_int t.max_bits /. float_of_int (ceil_log2 t.n)

let pp_transcript fmt t =
  Format.fprintf fmt "n=%d max=%d bits total=%d bits (%.2f x log n)" t.n t.max_bits
    t.total_bits (frugality_ratio t)
