open Refnet_graph

type transcript = {
  n : int;
  message_bits : int array;
  max_bits : int;
  total_bits : int;
  faulted_ids : int list;
}

let transcript_of_messages msgs =
  let message_bits = Array.map Message.bits msgs in
  {
    n = Array.length msgs;
    message_bits;
    max_bits = Array.fold_left max 0 message_bits;
    total_bits = Array.fold_left ( + ) 0 message_bits;
    faulted_ids = [];
  }

let emit_node_events trace views msgs =
  Array.iteri
    (fun i msg ->
      Trace.emit trace
        (Trace.Node_local { id = i + 1; bits = Message.bits msg; queries = View.audit views.(i) }))
    msgs

let query_total (c : View.counts) = c.id_reads + c.n_reads + c.deg_reads + c.neighbor_reads

let observe_local metrics views msgs =
  match metrics with
  | None -> ()
  | Some m ->
    Metrics.Counter.add (Metrics.Counter.counter m "refnet_messages_total") (Array.length msgs);
    let bits = Metrics.Histogram.histogram m "refnet_message_bits" in
    Array.iter (fun msg -> Metrics.Histogram.observe bits (Message.bits msg)) msgs;
    let queries = Metrics.Histogram.histogram m "refnet_view_queries" in
    Array.iter (fun v -> Metrics.Histogram.observe queries (query_total (View.audit v))) views

let maybe_time metrics name f =
  match metrics with Some m -> Metrics.time m name f | None -> f ()

let observe_transcript metrics t =
  match metrics with
  | None -> ()
  | Some m ->
    Metrics.Counter.incr (Metrics.Counter.counter m "refnet_runs_total");
    Metrics.Histogram.observe (Metrics.Histogram.histogram m "refnet_run_max_bits") t.max_bits;
    Metrics.Counter.add (Metrics.Counter.counter m "refnet_run_bits_total") t.total_bits

let local_phase ?domains ?(trace = Trace.null) ?metrics (p : 'a Protocol.t) g =
  (* The model makes this phase embarrassingly parallel: each node's
     message depends only on its view.  The engine is the only place
     views of real nodes are built; messages land in their slot by
     identifier, so the vector — and hence the transcript — is
     bit-identical to a sequential run at any domain count. *)
  let n = Graph.order g in
  if Trace.is_null trace && metrics = None then
    Parallel.init ?domains n (fun i ->
        p.local (View.make ~n ~id:(i + 1) ~neighbors:(Graph.neighbors g (i + 1))))
  else begin
    (* Prebuild the views so their audit tallies survive the parallel
       section; events and metrics are recorded from the submitting
       domain only, after the batch completes, in identifier order. *)
    let views =
      Array.init n (fun i -> View.make ~n ~id:(i + 1) ~neighbors:(Graph.neighbors g (i + 1)))
    in
    let msgs = Parallel.init ?domains ?metrics n (fun i -> p.local views.(i)) in
    if not (Trace.is_null trace) then emit_node_events trace views msgs;
    observe_local metrics views msgs;
    msgs
  end

let run ?domains ?(trace = Trace.null) ?metrics (p : 'a Protocol.t) g =
  let n = Graph.order g in
  Trace.emit trace (Trace.Span_begin { label = p.name; n });
  let msgs = maybe_time metrics "refnet_local_phase" (fun () -> local_phase ?domains ~trace ?metrics p g) in
  let out =
    maybe_time metrics "refnet_referee_phase" (fun () ->
        Protocol.run_referee ~trace ?metrics p.referee ~n msgs)
  in
  let t = transcript_of_messages msgs in
  observe_transcript metrics t;
  Trace.emit trace
    (Trace.Referee_done { label = p.name; n; max_bits = t.max_bits; total_bits = t.total_bits });
  Trace.emit trace (Trace.Span_end { label = p.name; n });
  (out, t)

let run_faulty ?(faults = Faults.empty) ?domains ?(trace = Trace.null) ?metrics (p : 'a Protocol.t) g
    =
  (* Identical to [run] up to and including the local phase; the fault
     plan then rewrites the delivery schedule.  Message {e production}
     is untouched — the transcript keeps measuring what nodes sent, so
     an empty plan is bit-identical to [run] (output, transcript and
     event stream) at any domain count. *)
  let n = Graph.order g in
  Trace.emit trace (Trace.Span_begin { label = p.name; n });
  let msgs = maybe_time metrics "refnet_local_phase" (fun () -> local_phase ?domains ~trace ?metrics p g) in
  let deliveries, injected = Faults.apply faults msgs in
  (match metrics with
  | Some m when injected <> [] ->
    Metrics.Counter.add
      (Metrics.Counter.counter m "refnet_faults_injected_total")
      (List.length injected)
  | _ -> ());
  if not (Trace.is_null trace) then
    List.iter (fun (id, fault) -> Trace.emit trace (Trace.Fault_injected { id; fault })) injected;
  let out =
    maybe_time metrics "refnet_referee_phase" (fun () ->
        Protocol.feed_deliveries ~trace ?metrics p.referee ~n deliveries)
  in
  let t = { (transcript_of_messages msgs) with faulted_ids = List.map fst injected } in
  observe_transcript metrics t;
  Trace.emit trace
    (Trace.Referee_done { label = p.name; n; max_bits = t.max_bits; total_bits = t.total_bits });
  Trace.emit trace (Trace.Span_end { label = p.name; n });
  (out, t)

let shuffle rng a =
  let n = Array.length a in
  for i = n - 1 downto 1 do
    let j = Random.State.int rng (i + 1) in
    let t = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- t
  done

let run_async ?rng ?domains ?(trace = Trace.null) ?metrics (p : 'a Protocol.t) g =
  let rng = match rng with Some r -> r | None -> Random.State.make [| 0x5eed |] in
  let n = Graph.order g in
  Trace.emit trace (Trace.Span_begin { label = p.name; n });
  let order = Array.init n (fun i -> i + 1) in
  shuffle rng order;
  (* Compute in scheduling order (now also interleaved across domains),
     deliver in yet another order: the streaming referee absorbs each
     message as it arrives, and its output must not depend on arrival
     order (one message per node, sender identified). *)
  let inbox = Array.make n None in
  let views = Array.make n None in
  maybe_time metrics "refnet_local_phase" (fun () ->
      Parallel.iter_range ?domains ?metrics n (fun i ->
          let id = order.(i) in
          let v = View.make ~n ~id ~neighbors:(Graph.neighbors g id) in
          views.(id - 1) <- Some v;
          inbox.(id - 1) <- Some (p.local v)));
  let msgs = Array.map (function Some m -> m | None -> assert false) inbox in (* lint: allow referee-totality -- every slot was filled by the local phase above *)
  let views = Array.map (function Some v -> v | None -> assert false) views in (* lint: allow referee-totality -- every slot was filled by the local phase above *)
  if not (Trace.is_null trace) then emit_node_events trace views msgs;
  observe_local metrics views msgs;
  let arrival = Array.init n (fun i -> i + 1) in
  shuffle rng arrival;
  let deliveries = Array.to_list (Array.map (fun id -> (id, msgs.(id - 1))) arrival) in
  let out =
    maybe_time metrics "refnet_referee_phase" (fun () ->
        Protocol.feed_deliveries ~trace ?metrics p.referee ~n deliveries)
  in
  let t = transcript_of_messages msgs in
  observe_transcript metrics t;
  Trace.emit trace
    (Trace.Referee_done { label = p.name; n; max_bits = t.max_bits; total_bits = t.total_bits });
  Trace.emit trace (Trace.Span_end { label = p.name; n });
  (out, t)

let ceil_log2 n =
  let rec go acc v = if v = 0 then acc else go (acc + 1) (v lsr 1) in
  max 1 (go 0 n)

let is_frugal t ~c = t.max_bits <= c * ceil_log2 t.n

let frugality_ratio t =
  if t.n = 0 then 0.0 else float_of_int t.max_bits /. float_of_int (ceil_log2 t.n)

let pp_transcript fmt t =
  Format.fprintf fmt "n=%d max=%d bits total=%d bits (%.2f x log n)" t.n t.max_bits
    t.total_bits (frugality_ratio t);
  match t.faulted_ids with
  | [] -> ()
  | ids -> Format.fprintf fmt " faults=%d" (List.length ids)
