(** Protocol execution over a concrete network.

    The simulator enforces the model's information boundary: the local
    phase hands each node only [(n, id, N(id))]; the global phase hands
    the referee only the message vector.  Message lengths are recorded
    exactly, in bits. *)

type transcript = {
  n : int;
  message_bits : int array;  (** [message_bits.(i - 1)] for node [i] *)
  max_bits : int;
  total_bits : int;
}

(** [local_phase ?domains p g] runs every node's local function, fanned
    out across the {!Parallel} domain pool ([?domains] selects the pool
    width; the default honours [REFNET_DOMAINS]).  Local functions are
    pure by the model's information boundary, and each message is written
    into its slot by identifier, so the resulting vector is bit-identical
    to a sequential run at any width. *)
val local_phase : ?domains:int -> 'a Protocol.t -> Refnet_graph.Graph.t -> Message.t array

(** [run ?domains p g] executes both phases; returns the referee's output
    and the transcript.  The transcript is byte-identical whatever
    [domains] is — parallelism is an execution detail, never observable
    in the model. *)
val run : ?domains:int -> 'a Protocol.t -> Refnet_graph.Graph.t -> 'a * transcript

(** [run_async ?rng ?domains p g] is [run] but evaluates local functions
    in a random order and delivers messages in another random order
    before reassembling them by identifier — a check that nothing in a
    protocol depends on scheduling (the paper notes one-round protocols
    tolerate asynchrony). *)
val run_async :
  ?rng:Random.State.t -> ?domains:int -> 'a Protocol.t -> Refnet_graph.Graph.t -> 'a * transcript

(** [transcript_of_messages msgs] summarizes an externally-built message
    vector. *)
val transcript_of_messages : Message.t array -> transcript

(** [is_frugal t ~c] checks [max_bits <= c * ceil(log2 (n + 1))] — the
    frugality test at a specific constant [c]. *)
val is_frugal : transcript -> c:int -> bool

(** [frugality_ratio t] is [max_bits / ceil(log2 (n + 1))], the measured
    constant in front of [log n]. *)
val frugality_ratio : transcript -> float

val pp_transcript : Format.formatter -> transcript -> unit
