(** Protocol execution over a concrete network.

    The simulator enforces the model's information boundary: the local
    phase builds each node's {!View} — the engine is the only place
    views of real nodes are constructed — and the referee phase streams
    the message vector into the protocol's referee.  Message lengths are
    recorded exactly, in bits.

    Every entry point takes an optional {!Trace.sink}; the default
    {!Trace.null} costs nothing.  Events are emitted from the calling
    domain only, never from pool workers, so sinks need not be
    thread-safe.

    Every entry point also takes an optional {!Metrics.t} registry.
    When given, a run records: counter [refnet_runs_total]; counter
    [refnet_messages_total] and histograms [refnet_message_bits] /
    [refnet_view_queries] over the local phase; timers
    [refnet_local_phase] / [refnet_referee_phase] around the two
    phases (plus the {!Parallel} pool timers); histogram
    [refnet_run_max_bits] and counter [refnet_run_bits_total] from the
    transcript; and (under {!run_faulty}) counter
    [refnet_faults_injected_total].  Like trace events, metrics are
    recorded from the calling domain only.  When absent, the
    uninstrumented fast path runs. *)

type transcript = {
  n : int;
  message_bits : int array;  (** [message_bits.(i - 1)] for node [i] *)
  max_bits : int;
  total_bits : int;
  faulted_ids : int list;
      (** sender ids the channel hit during this run ({!run_faulty});
          [[]] for fault-free entry points.  Message lengths always
          measure what nodes {e sent}, pre-fault — frugality is a
          property of the protocol, not of the channel. *)
}

(** [local_phase ?domains ?trace p g] runs every node's local function,
    fanned out across the {!Parallel} domain pool ([?domains] selects
    the pool width; the default honours [REFNET_DOMAINS]).  Local
    functions are pure by the model's information boundary, and each
    message is written into its slot by identifier, so the resulting
    vector is bit-identical to a sequential run at any width.  With a
    live [trace], one [Node_local] event per node is emitted (in
    identifier order, after the parallel section).  Views are built on
    the allocation-lean slice path ({!View.of_slice}) — no per-node
    neighbour list is materialized. *)
val local_phase :
  ?domains:int ->
  ?trace:Trace.sink ->
  ?metrics:Metrics.t ->
  'a Protocol.t ->
  Refnet_graph.Graph.t ->
  Message.t array

(** [local_phase_source] is {!local_phase} over any {!Graph_source}
    backend.  All backends present identical neighbour runs for the
    same labelled graph, so the message vector is bit-identical across
    them. *)
val local_phase_source :
  ?domains:int ->
  ?trace:Trace.sink ->
  ?metrics:Metrics.t ->
  'a Protocol.t ->
  Refnet_graph.Graph_source.t ->
  Message.t array

(** [run ?domains ?trace p g] executes both phases; returns the
    referee's output and the transcript.  The referee absorbs messages
    in identifier order.  The transcript is byte-identical whatever
    [domains] is — parallelism is an execution detail, never observable
    in the model. *)
val run :
  ?domains:int ->
  ?trace:Trace.sink ->
  ?metrics:Metrics.t ->
  'a Protocol.t ->
  Refnet_graph.Graph.t ->
  'a * transcript

(** [run_source ?chunk p src] is {!run} over any {!Graph_source}
    backend.  The span/done labels gain a [\[src=<backend>\]]
    decoration (peeled by {!Bound_audit.classify_label} before budget
    lookup, so backend-tagged runs audit under the bare label's
    theorem), and counter
    [refnet_source_runs_total\{backend="..."\}] is bumped when metrics
    are on.

    [?chunk] bounds live message storage: with [chunk = c < n] the
    engine alternates computing [c] messages in parallel with feeding
    them to the streaming referee in identifier order, so peak memory
    is O(c) messages + O(n) ints (the transcript) + the referee state —
    the schedule that lets a million-node implicit source run in a
    frontier-sized footprint.  Output and transcript are bit-identical
    for every chunk size; only trace-event interleaving and the
    per-absorb latency sampling (skipped when chunked) differ.  Default:
    unchunked (the historical two-phase schedule). *)
val run_source :
  ?domains:int ->
  ?chunk:int ->
  ?trace:Trace.sink ->
  ?metrics:Metrics.t ->
  'a Protocol.t ->
  Refnet_graph.Graph_source.t ->
  'a * transcript

(** [run_faulty ?faults ?domains ?trace p g] is [run] with a
    deterministic fault plan applied between the two phases: nodes
    compute honestly, then the channel crashes, truncates, flips,
    duplicates or re-addresses individual messages per [faults] (see
    {!Faults.apply}).  One [Fault_injected] event fires per in-scope
    plan entry, after the local phase and before any absorb; the
    transcript records the hit ids in [faulted_ids].  With an empty
    plan the run is bit-identical to [run] — same output, same
    transcript, same event stream — at any [domains] width. *)
val run_faulty :
  ?faults:Faults.plan ->
  ?domains:int ->
  ?trace:Trace.sink ->
  ?metrics:Metrics.t ->
  'a Protocol.t ->
  Refnet_graph.Graph.t ->
  'a * transcript

(** [run_faulty_source] is {!run_faulty} over any backend, with the
    [\[src=...\]] label decoration of {!run_source}.  Fault plans
    address the full message vector, so this entry point never
    chunks. *)
val run_faulty_source :
  ?faults:Faults.plan ->
  ?domains:int ->
  ?trace:Trace.sink ->
  ?metrics:Metrics.t ->
  'a Protocol.t ->
  Refnet_graph.Graph_source.t ->
  'a * transcript

(** [run_async ?rng ?domains ?trace p g] is [run] but evaluates local
    functions in a random order and delivers messages to the streaming
    referee in {e another} random arrival order — a check that nothing
    in a protocol depends on scheduling, including the referee's absorb
    order (the paper notes one-round protocols tolerate asynchrony).
    [Referee_absorb] trace events fire in arrival order. *)
val run_async :
  ?rng:Random.State.t ->
  ?domains:int ->
  ?trace:Trace.sink ->
  ?metrics:Metrics.t ->
  'a Protocol.t ->
  Refnet_graph.Graph.t ->
  'a * transcript

(** [run_async_source] is {!run_async} over any backend, with the
    [\[src=...\]] label decoration of {!run_source}. *)
val run_async_source :
  ?rng:Random.State.t ->
  ?domains:int ->
  ?trace:Trace.sink ->
  ?metrics:Metrics.t ->
  'a Protocol.t ->
  Refnet_graph.Graph_source.t ->
  'a * transcript

(** [transcript_of_messages msgs] summarizes an externally-built message
    vector. *)
val transcript_of_messages : Message.t array -> transcript

(** [is_frugal t ~c] checks [max_bits <= c * ceil(log2 (n + 1))] — the
    frugality test at a specific constant [c]. *)
val is_frugal : transcript -> c:int -> bool

(** [frugality_ratio t] is [max_bits / ceil(log2 (n + 1))], the measured
    constant in front of [log n]. *)
val frugality_ratio : transcript -> float

val pp_transcript : Format.formatter -> transcript -> unit
