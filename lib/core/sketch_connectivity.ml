open Refnet_bits
open Refnet_graph
open Refnet_sketch

let edge_index ~u ~v =
  if u = v || u < 1 || v < 1 then invalid_arg "Sketch_connectivity.edge_index: bad edge";
  let lo = min u v and hi = max u v in
  ((hi - 1) * (hi - 2) / 2) + lo - 1

let edge_of_index idx =
  if idx < 0 then invalid_arg "Sketch_connectivity.edge_of_index: negative";
  (* Find hi with C(hi-1, 2) <= idx < C(hi, 2). *)
  let rec find hi = if (hi * (hi - 1)) / 2 > idx then hi else find (hi + 1) in
  let hi = find 2 in
  let lo = idx - ((hi - 1) * (hi - 2) / 2) + 1 in
  (lo, hi)

let default_rounds n =
  let rec lg acc v = if v <= 1 then acc else lg (acc + 1) ((v + 1) / 2) in
  lg 0 n + 2

let default_levels n =
  let rec lg acc v = if v <= 1 then acc else lg (acc + 1) ((v + 1) / 2) in
  (2 * lg 0 n) + 2

(* All nodes derive the same sampler templates from the public seed. *)
let templates ~seed ~rounds ~levels =
  let rng = Random.State.make [| 0xa6e1; seed |] in
  Array.init rounds (fun _ -> L0_sampler.create ~rng ~levels)

let protocol ~seed ?rounds ?levels () : bool Protocol.t =
  let name = Printf.sprintf "sketch-connectivity(seed=%d)" seed in
  let params n =
    let r = match rounds with Some r -> r | None -> default_rounds n in
    let l = match levels with Some l -> l | None -> default_levels n in
    (max 1 r, max 1 l)
  in
  let local view =
    let n = View.n view in
    let id = View.id view in
    let r, l = params n in
    let ts = templates ~seed ~rounds:r ~levels:l in
    let w = Bit_writer.create () in
    Array.iter
      (fun template ->
        let sampler =
          View.fold_neighbors view template (fun acc u ->
              L0_sampler.update acc ~index:(edge_index ~u ~v:id)
                ~delta:(if id < u then 1 else -1))
        in
        L0_sampler.write w sampler)
      ts;
    Message.of_writer w
  in
  (* Streaming referee: the per-node sampler banks are the state — one
     bank parsed per absorb — and the Borůvka phases run at finish, once
     all banks are in (component structure is inherently global). *)
  let init ~n = Array.make n [||] in
  let absorb ~n banks ~id msg =
    let r, l = params n in
    let ts = templates ~seed ~rounds:r ~levels:l in
    let reader = Message.reader msg in
    banks.(id - 1) <- Array.map (fun template -> L0_sampler.read reader ~template) ts;
    banks
  in
  let finish ~n banks =
    if n = 0 then true
    else begin
      let r, _l = params n in
      let uf = Union_find.create n in
      (* Borůvka phases: one fresh sampler bank column per phase. *)
      for round = 0 to r - 1 do
        if Union_find.count uf > 1 then begin
          (* Sum this round's samplers per current component. *)
          let sums = Hashtbl.create 16 in
          for v = 1 to n do
            let root = Union_find.find uf (v - 1) in
            let s = banks.(v - 1).(round) in
            match Hashtbl.find_opt sums root with
            | None -> Hashtbl.replace sums root s
            | Some acc -> Hashtbl.replace sums root (L0_sampler.combine acc s)
          done;
          (* Sample an outgoing edge per component and merge. *)
          Hashtbl.iter
            (fun _root sampler ->
              match L0_sampler.sample sampler with
              | Some (idx, value) when value = 1 || value = -1 ->
                let u, v = edge_of_index idx in
                if u >= 1 && v <= n then ignore (Union_find.union uf (u - 1) (v - 1))
              | Some _ | None -> ())
            sums
        end
      done;
      Union_find.count uf = 1
    end
  in
  { name; local; referee = Protocol.streaming ~init ~absorb ~finish }

let message_bits ~n ?rounds ?levels () =
  let r = match rounds with Some r -> r | None -> default_rounds n in
  let l = match levels with Some l -> l | None -> default_levels n in
  max 1 r * L0_sampler.bits ~levels:(max 1 l)

(* ---------- crash/corruption-tolerant variant ---------- *)

let hardened ~seed ?rounds ?levels () : bool Verdict.t Protocol.t =
  let plain = protocol ~seed ?rounds ?levels () in
  (* Borůvka sums need {e every} member of a component for internal
     edges to cancel, so there is no sound partial answer: the generic
     {!Protocol.harden_referee} wrapper — Decided on a clean channel,
     Inconclusive otherwise — is exactly the right policy.  The adapter
     underneath authenticates each bank and pins its exact size before
     the sampler parser ever sees it. *)
  let referee =
    match plain.referee with
    | Protocol.Referee s ->
      Protocol.harden_referee
        (Protocol.Referee
           {
             s with
             absorb =
               (fun ~n st ~id msg ->
                 match Message.unseal ~n ~id msg with
                 | None -> raise Message.Malformed
                 | Some payload ->
                   if Message.bits payload <> message_bits ~n ?rounds ?levels () then
                     raise Message.Malformed;
                   s.absorb ~n st ~id payload);
           })
  in
  {
    Protocol.name = plain.name ^ "+sealed";
    local = (fun v -> Message.seal ~n:(View.n v) ~id:(View.id v) (plain.local v));
    referee;
  }
