(** A randomized one-round connectivity protocol — the paper's main open
    question, answered in the public-coin model by graph sketching
    (Ahn–Guha–McGregor 2012, which appeared the year after the paper).

    The paper conjectures no deterministic frugal ([O(log n)] bits/node)
    one-round protocol decides connectivity.  With {e shared randomness}
    and [O(log^3 n)] bits per node, one round suffices:

    - every node sketches its signed edge-incidence vector (edge
      [{u,v}] at coordinate [idx(u,v)], sign [+1] at the smaller
      endpoint, [-1] at the larger) with [O(log n)] independent
      ℓ₀-samplers derived from the public seed;
    - sketches are linear, so the referee can sum a whole component's
      samplers: internal edges cancel and sampling yields an {e
      outgoing} edge;
    - the referee runs Borůvka: each phase consumes one fresh sampler
      per node, samples an outgoing edge per component and merges.

    Errors are one-sided: a disconnected graph is {e never} declared
    connected by a sound merge (components have zero crossing support,
    and fingerprint checks make spurious recoveries vanishing), while a
    connected graph may be declared disconnected if sampling fails;
    increasing [rounds] drives the failure probability down.

    This does not contradict the paper: the conjecture concerns
    deterministic protocols with [O(log n)]-bit messages; this uses
    randomness and [O(log^3 n)] bits.  It sharpens where the open
    question really lives. *)

(** [protocol ~seed ?rounds ?levels ()] — both parameters default to
    values derived from [n] at run time ([ceil(log2 n) + 2] Borůvka
    phases, [2 ceil(log2 n) + 2] sampler levels). *)
val protocol : seed:int -> ?rounds:int -> ?levels:int -> unit -> bool Protocol.t

(** [message_bits ~n ?rounds ?levels ()] — exact serialized size. *)
val message_bits : n:int -> ?rounds:int -> ?levels:int -> unit -> int

(** [hardened ~seed ?rounds ?levels ()] — the crash/corruption-tolerant
    variant: sampler banks are {!Message.seal}ed and authenticated
    before parsing.  Sketch sums need every node of a component for
    internal edges to cancel, so no sound partial verdict exists: a
    clean channel gives [Decided] of the plain answer, {e any} detected
    fault gives [Inconclusive]. *)
val hardened : seed:int -> ?rounds:int -> ?levels:int -> unit -> bool Verdict.t Protocol.t

(** [edge_index ~u ~v] is the coordinate of edge [{u,v}] ([u <> v]) in
    the incidence vector: [C(max-1, 2) + min - 1]. *)
val edge_index : u:int -> v:int -> int

(** [edge_of_index idx] inverts {!edge_index}, returning [(u, v)] with
    [u < v]. *)
val edge_of_index : int -> int * int
