type event =
  | Span_begin of { label : string; n : int }
  | Span_end of { label : string; n : int }
  | Node_local of { id : int; bits : int; queries : View.counts }
  | Referee_absorb of { id : int; bits : int }
  | Fault_injected of { id : int; fault : Faults.fault }
  | Referee_broadcast of { round : int; bits : int }
  | Referee_done of { label : string; n : int; max_bits : int; total_bits : int }

type sink =
  | Null
  | Emit of (event -> unit)
  | Emit_session of (int64 option -> event -> unit)

let null = Null
let is_null = function Null -> true | Emit _ | Emit_session _ -> false
let make f = Emit f

let emit sink ev =
  match sink with Null -> () | Emit f -> f ev | Emit_session f -> f None ev

let emit_session sink ~session ev =
  match sink with
  | Null -> ()
  | Emit f -> f ev
  | Emit_session f -> f (Some session) ev

let pp_event fmt = function
  | Span_begin { label; n } -> Format.fprintf fmt "begin %-12s n=%d" label n
  | Span_end { label; n } -> Format.fprintf fmt "end   %-12s n=%d" label n
  | Node_local { id; bits; queries = q } ->
    Format.fprintf fmt "local node=%d bits=%d queries=[id:%d n:%d deg:%d nbrs:%d]" id bits
      q.View.id_reads q.View.n_reads q.View.deg_reads q.View.neighbor_reads
  | Referee_absorb { id; bits } -> Format.fprintf fmt "absorb node=%d bits=%d" id bits
  | Fault_injected { id; fault } ->
    Format.fprintf fmt "fault node=%d %s" id (Faults.fault_to_string fault)
  | Referee_broadcast { round; bits } ->
    Format.fprintf fmt "bcast round=%d bits=%d" round bits
  | Referee_done { label; n; max_bits; total_bits } ->
    Format.fprintf fmt "done  %-12s n=%d max=%d bits total=%d bits" label n max_bits total_bits

let pretty fmt = Emit (fun ev -> Format.fprintf fmt "[trace] %a@." pp_event ev)

(* Every field is a string, an int or an event tag — no escaping beyond
   the label strings, which are protocol names (alphanumeric plus a few
   punctuation characters).  Escape anyway, defensively. *)
let json_string s =
  let b = Buffer.create (String.length s + 2) in
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"';
  Buffer.contents b

let json_body = function
  | Span_begin { label; n } ->
    Printf.sprintf {|{"event":"span_begin","label":%s,"n":%d}|} (json_string label) n
  | Span_end { label; n } ->
    Printf.sprintf {|{"event":"span_end","label":%s,"n":%d}|} (json_string label) n
  | Node_local { id; bits; queries = q } ->
    Printf.sprintf
      {|{"event":"local","id":%d,"bits":%d,"id_reads":%d,"n_reads":%d,"deg_reads":%d,"neighbor_reads":%d}|}
      id bits q.View.id_reads q.View.n_reads q.View.deg_reads q.View.neighbor_reads
  | Referee_absorb { id; bits } ->
    Printf.sprintf {|{"event":"absorb","id":%d,"bits":%d}|} id bits
  | Fault_injected { id; fault } ->
    Printf.sprintf {|{"event":"fault","id":%d,"fault":%s}|} id
      (json_string (Faults.fault_to_string fault))
  | Referee_broadcast { round; bits } ->
    Printf.sprintf {|{"event":"broadcast","round":%d,"bits":%d}|} round bits
  | Referee_done { label; n; max_bits; total_bits } ->
    Printf.sprintf {|{"event":"done","label":%s,"n":%d,"max_bits":%d,"total_bits":%d}|}
      (json_string label) n max_bits total_bits

(* The session id rides as an extra leading field: Report's parser
   tolerates fields it does not know, so tagged and untagged lines feed
   the same pipeline. *)
let json_of_event ?session ev =
  let base = json_body ev in
  match session with
  | None -> base
  | Some id ->
    Printf.sprintf {|{"session_id":"%016Lx",%s|} id
      (String.sub base 1 (String.length base - 1))

let jsonl oc =
  Emit_session
    (fun session ev ->
      output_string oc (json_of_event ?session ev);
      output_char oc '\n';
      (* Each Referee_done closes a run; flushing there bounds the loss
         window to the current run even when the process exits through
         the CLI's diagnostic path (exit 2) without closing the
         caller-owned channel. *)
      match ev with Referee_done _ -> flush oc | _ -> ())

let memory () =
  let events = ref [] in
  (Emit (fun ev -> events := ev :: !events), fun () -> List.rev !events)

let balanced_spans events =
  let rec go stack = function
    | [] -> stack = []
    | Span_begin { label; _ } :: rest -> go (label :: stack) rest
    | Span_end { label; _ } :: rest -> (
      match stack with l :: tl when String.equal l label -> go tl rest | _ -> false)
    | _ :: rest -> go stack rest
  in
  go [] events
