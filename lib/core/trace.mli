(** Structured execution traces.

    The engine emits one event per observable step of a run: a span pair
    around each phase, one [Node_local] per node (with its exact message
    length and its {!View} audit), one [Referee_absorb] per message the
    streaming referee consumes — in {e arrival} order, which under
    {!Simulator.run_async} is the randomized delivery order — and a
    final [Referee_done] with the transcript summary.

    Sinks are pluggable and cost nothing when disabled: {!null} is a
    constructor the engine branches away from before entering any hot
    loop, so an untraced run allocates no events.  Events are emitted
    from the submitting domain only, after each parallel section
    completes — sinks need not be thread-safe.

    The JSONL sink writes one JSON object per line; the schema is
    documented in [EXPERIMENTS.md]. *)

type event =
  | Span_begin of { label : string; n : int }
  | Span_end of { label : string; n : int }
  | Node_local of { id : int; bits : int; queries : View.counts }
      (** node [id] produced a [bits]-bit message, reading its view
          [queries] times *)
  | Referee_absorb of { id : int; bits : int }
      (** the referee consumed node [id]'s message, in arrival order *)
  | Fault_injected of { id : int; fault : Faults.fault }
      (** the channel hit node [id]'s message ({!Simulator.run_faulty} /
          {!Coalition.run_faulty}); emitted once per in-scope plan
          entry, after the local phase and before any absorb — under
          {!Bcc.run_faulty}, once per plan entry {e per round} *)
  | Referee_broadcast of { round : int; bits : int }
      (** the {!Bcc} referee closed round [round] with a [bits]-bit
          broadcast heard by every node (absent after the final round,
          which ends in the decision instead) *)
  | Referee_done of { label : string; n : int; max_bits : int; total_bits : int }

type sink =
  | Null
  | Emit of (event -> unit)
  | Emit_session of (int64 option -> event -> unit)
      (** a sink that also understands 64-bit session trace ids (the
          serve layer's flight-recorder ids); plain {!emit} delivers
          [None] *)

(** The disabled sink; emission is a no-op. *)
val null : sink

val is_null : sink -> bool

(** [make f] forwards every event to [f]. *)
val make : (event -> unit) -> sink

(** [emit sink ev] delivers [ev] (no-op on {!null}). *)
val emit : sink -> event -> unit

(** [emit_session sink ~session ev] delivers [ev] tagged with a session
    trace id.  Session-blind sinks ([Emit]) receive the bare event;
    {!jsonl} renders the id as a leading ["session_id"] field. *)
val emit_session : sink -> session:int64 -> event -> unit

(** [pretty fmt] renders events human-readably, one line each. *)
val pretty : Format.formatter -> sink

(** [jsonl oc] writes one JSON object per event per line.

    {b Flushing contract.} The sink flushes [oc] after every
    [Referee_done] event — each completed run is durable on disk even if
    the process then exits abnormally (the CLI's one-line-diagnostic
    exit-2 path does not unwind to the channel's closer).  Events of a
    run still in flight may be lost; the caller owns the channel and
    remains responsible for the final flush/close on the orderly path. *)
val jsonl : out_channel -> sink

(** [memory ()] is a sink that records events, and a function returning
    them in emission order — for tests (pair with {!balanced_spans}). *)
val memory : unit -> sink * (unit -> event list)

(** [balanced_spans events] checks the span discipline every engine
    entry point promises: [Span_begin]/[Span_end] pairs nest properly
    and matching pairs carry the same label, with nothing left open at
    the end. *)
val balanced_spans : event list -> bool

val pp_event : Format.formatter -> event -> unit

(** [json_of_event ?session ev] is the single-line JSON rendering used
    by {!jsonl}.  With [~session], a ["session_id"] field (16 lowercase
    hex digits) leads the object — an {e extra} field, so
    {!Report.ingest_line} accepts tagged and untagged lines alike. *)
val json_of_event : ?session:int64 -> event -> string

(** Defensive JSON string escaper shared with the decoders
    ({!Flight}). *)
val json_string : string -> string
