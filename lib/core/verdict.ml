type fault_report = {
  missing : int list;
  malformed : int list;
  duplicated : int list;
  undetermined : int list;
}

type 'a t =
  | Decided of 'a
  | Degraded of 'a * fault_report
  | Inconclusive of string

let empty_report = { missing = []; malformed = []; duplicated = []; undetermined = [] }

let channel_clean r = r.missing = [] && r.malformed = [] && r.duplicated = []

let map f = function
  | Decided v -> Decided (f v)
  | Degraded (v, r) -> Degraded (f v, r)
  | Inconclusive reason -> Inconclusive reason

let to_option = function
  | Decided v | Degraded (v, _) -> Some v
  | Inconclusive _ -> None

let is_decided = function Decided _ -> true | Degraded _ | Inconclusive _ -> false

let report_summary r =
  Printf.sprintf "%d missing, %d malformed, %d duplicated, %d undetermined"
    (List.length r.missing) (List.length r.malformed) (List.length r.duplicated)
    (List.length r.undetermined)

let pp_ids fmt = function
  | [] -> Format.pp_print_string fmt "-"
  | ids ->
    Format.pp_print_list
      ~pp_sep:(fun fmt () -> Format.pp_print_char fmt ',')
      Format.pp_print_int fmt ids

let pp_report fmt r =
  Format.fprintf fmt "@[<hov 2>{missing=%a;@ malformed=%a;@ duplicated=%a;@ undetermined=%a}@]"
    pp_ids r.missing pp_ids r.malformed pp_ids r.duplicated pp_ids r.undetermined

let pp pp_payload fmt = function
  | Decided v -> Format.fprintf fmt "@[<hov 2>decided:@ %a@]" pp_payload v
  | Degraded (v, r) ->
    Format.fprintf fmt "@[<hov 2>degraded:@ %a@ %a@]" pp_payload v pp_report r
  | Inconclusive reason -> Format.fprintf fmt "inconclusive: %s" reason
