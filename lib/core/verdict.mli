(** Detect-or-degrade referee outcomes.

    A hardened referee never lets a channel fault turn into a
    confidently wrong answer.  Its [finish] classifies the run:

    - {!Decided}: the channel was clean (every id absorbed exactly
      once, every message authentic) and the output is the same one the
      plain referee would produce — full trust.
    - {!Degraded}: faults were detected, but part of the output is
      still {e certain} from the surviving messages.  The payload is
      that sound part; the {!fault_report} names which ids were lost,
      mangled or left undetermined.  Senders are honest in the fault
      model, so every surviving (authenticated) message is a true
      statement about the input — degraded payloads are sound, just
      incomplete.
    - {!Inconclusive}: the faults (or an authentication anomaly that
      should be impossible under pure channel faults) leave nothing the
      referee is willing to assert.

    The invariant every hardened protocol maintains: under {e any}
    fault plan, a [Decided] output equals the fault-free output —
    detect or degrade, never lie. *)

(** Who was hit, as seen from the referee's side of the channel. *)
type fault_report = {
  missing : int list;  (** ids never absorbed (crashed, or spoofed away) *)
  malformed : int list;
      (** ids whose delivered message failed authentication or parsing
          (truncation, bit flips, spoofed sender) *)
  duplicated : int list;  (** ids absorbed more than once (extra copies dropped) *)
  undetermined : int list;
      (** ids whose local structure the degraded output does not pin
          down — every edge claim {e not} touching these ids is exact *)
}

type 'a t =
  | Decided of 'a
  | Degraded of 'a * fault_report
  | Inconclusive of string

val empty_report : fault_report

(** [channel_clean r] — no missing, malformed or duplicated ids
    ([undetermined] is an output-side attribute and does not count). *)
val channel_clean : fault_report -> bool

(** [map f v] maps over the payload of [Decided]/[Degraded]. *)
val map : ('a -> 'b) -> 'a t -> 'b t

(** [to_option v] is the payload when one exists. *)
val to_option : 'a t -> 'a option

(** [is_decided v] is true only for [Decided]. *)
val is_decided : 'a t -> bool

(** One-line count summary, e.g. ["2 missing, 1 malformed, ..."]. *)
val report_summary : fault_report -> string

val pp_report : Format.formatter -> fault_report -> unit

val pp : (Format.formatter -> 'a -> unit) -> Format.formatter -> 'a t -> unit
