type counts = {
  id_reads : int;
  n_reads : int;
  deg_reads : int;
  neighbor_reads : int;
}

(* Mutable tally, bumped by the accessors.  Counters are write-only from
   the protocol's point of view — no accessor exposes them back to the
   local function — so purity of local functions is unaffected. *)
type tally = {
  mutable t_id : int;
  mutable t_n : int;
  mutable t_deg : int;
  mutable t_nbr : int;
}

type t = { size : int; ident : int; nbrs : int list; degree : int; tally : tally }

let make ~n ~id ~neighbors =
  if n < 1 then invalid_arg "View.make: n must be positive";
  if id < 1 || id > n then invalid_arg "View.make: id out of range";
  {
    size = n;
    ident = id;
    nbrs = neighbors;
    degree = List.length neighbors;
    tally = { t_id = 0; t_n = 0; t_deg = 0; t_nbr = 0 };
  }

let id v =
  v.tally.t_id <- v.tally.t_id + 1;
  v.ident

let n v =
  v.tally.t_n <- v.tally.t_n + 1;
  v.size

let deg v =
  v.tally.t_deg <- v.tally.t_deg + 1;
  v.degree

let neighbors v =
  v.tally.t_nbr <- v.tally.t_nbr + 1;
  v.nbrs

let fold_neighbors v init f =
  v.tally.t_nbr <- v.tally.t_nbr + 1;
  List.fold_left f init v.nbrs

let iter_neighbors v f =
  v.tally.t_nbr <- v.tally.t_nbr + 1;
  List.iter f v.nbrs

let audit v =
  {
    id_reads = v.tally.t_id;
    n_reads = v.tally.t_n;
    deg_reads = v.tally.t_deg;
    neighbor_reads = v.tally.t_nbr;
  }

let queries v = v.tally.t_id + v.tally.t_n + v.tally.t_deg + v.tally.t_nbr
