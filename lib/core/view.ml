type counts = {
  id_reads : int;
  n_reads : int;
  deg_reads : int;
  neighbor_reads : int;
}

(* Mutable tally, bumped by the accessors.  Counters are write-only from
   the protocol's point of view — no accessor exposes them back to the
   local function — so purity of local functions is unaffected. *)
type tally = {
  mutable t_id : int;
  mutable t_n : int;
  mutable t_deg : int;
  mutable t_nbr : int;
}

(* The neighbour set is a slice [off, off + len) of an int array the
   view does not own: for materialized/CSR sources that is shared graph
   storage (zero copies per node), for implicit sources a fresh
   per-node array.  Accessors never let the array escape, so sharing is
   invisible to local functions. *)
type t = { size : int; ident : int; nbrs : int array; off : int; len : int; tally : tally }

let fresh_tally () = { t_id = 0; t_n = 0; t_deg = 0; t_nbr = 0 }

let of_slice ~n ~id nbrs ~off ~len =
  if n < 1 then invalid_arg "View.of_slice: n must be positive";
  if id < 1 || id > n then invalid_arg "View.of_slice: id out of range";
  if off < 0 || len < 0 || off + len > Array.length nbrs then
    invalid_arg "View.of_slice: slice out of bounds";
  { size = n; ident = id; nbrs; off; len; tally = fresh_tally () }

let make ~n ~id ~neighbors =
  if n < 1 then invalid_arg "View.make: n must be positive";
  if id < 1 || id > n then invalid_arg "View.make: id out of range";
  let nbrs = Array.of_list neighbors in
  { size = n; ident = id; nbrs; off = 0; len = Array.length nbrs; tally = fresh_tally () }

let id v =
  v.tally.t_id <- v.tally.t_id + 1;
  v.ident

let n v =
  v.tally.t_n <- v.tally.t_n + 1;
  v.size

let deg v =
  v.tally.t_deg <- v.tally.t_deg + 1;
  v.len

let neighbors v =
  v.tally.t_nbr <- v.tally.t_nbr + 1;
  List.init v.len (fun i -> v.nbrs.(v.off + i))

let fold_neighbors v init f =
  v.tally.t_nbr <- v.tally.t_nbr + 1;
  let acc = ref init in
  for i = v.off to v.off + v.len - 1 do
    acc := f !acc v.nbrs.(i)
  done;
  !acc

let iter_neighbors v f =
  v.tally.t_nbr <- v.tally.t_nbr + 1;
  for i = v.off to v.off + v.len - 1 do
    f v.nbrs.(i)
  done

let audit v =
  {
    id_reads = v.tally.t_id;
    n_reads = v.tally.t_n;
    deg_reads = v.tally.t_deg;
    neighbor_reads = v.tally.t_nbr;
  }

let queries v = v.tally.t_id + v.tally.t_n + v.tally.t_deg + v.tally.t_nbr
