(** The typed information boundary of Definition 1.

    A [View.t] is {e everything} a node is allowed to know in the
    one-round model: the network size [n], its own identifier, and its
    neighbour set.  Local functions take a view — not loose [~n ~id
    ~neighbors] arguments — so the boundary is a type-level guarantee:
    the only way a protocol implementation can read local knowledge is
    through these accessors, and the engine can audit exactly what each
    node queried.

    Views are cheap to construct and are built in exactly two kinds of
    places: the execution engine ({!Simulator}, {!Coalition}, {!Bcc})
    for real nodes, and referee-side oracle simulations
    ({!Reduction}, {!Bipartite_reduction}, {!Fooling}) for fictitious
    gadget vertices — the paper's requirement that local functions be
    evaluable at {e any} pair [(i, N)], not only pairs arising from an
    input graph.  The [view-boundary] lint rule enforces this list
    mechanically: [refnet-lint] flags any [View.make] outside these
    modules (the allowlist is [Lint.Policy.view_builders]) and any
    [Graph.*] access inside a protocol [local] function.

    Accessor calls are tallied per view (see {!audit}); the tally is
    invisible to the local function itself, so purity — same view
    contents, same message — is preserved. *)

type t

(** [make ~n ~id ~neighbors] builds the view of node [id] in a network
    of size [n] whose neighbour set is [neighbors] (by convention a
    strictly increasing list).
    @raise Invalid_argument if [n < 1] or [id] is out of [1..n]. *)
val make : n:int -> id:int -> neighbors:int list -> t

(** [of_slice ~n ~id nbrs ~off ~len] is {!make} over the array slice
    [nbrs.(off) .. nbrs.(off + len - 1)] without copying it — the
    allocation-lean path the engine feeds from {!Graph_source} slices
    (one view record per node, zero per-node neighbour copies for
    materialized/CSR backends).  The view never lets the array escape
    and never mutates it; the caller must not mutate it either while
    the view is live.  Subject to the same [view-boundary] lint rule as
    {!make}.
    @raise Invalid_argument if [n < 1], [id] is out of [1..n], or the
    slice is out of bounds. *)
val of_slice : n:int -> id:int -> int array -> off:int -> len:int -> t

(** [id v] is the node's identifier. *)
val id : t -> int

(** [n v] is the network size. *)
val n : t -> int

(** [deg v] is [List.length (neighbors v)], precomputed. *)
val deg : t -> int

(** [neighbors v] is the neighbour identifier list, increasing. *)
val neighbors : t -> int list

(** [fold_neighbors v init f] folds over the neighbour identifiers in
    increasing order (counted as one neighbour query). *)
val fold_neighbors : t -> 'a -> ('a -> int -> 'a) -> 'a

(** [iter_neighbors v f] iterates in increasing order (counted as one
    neighbour query). *)
val iter_neighbors : t -> (int -> unit) -> unit

(** Accessor tallies, for auditing what a local function actually read. *)
type counts = {
  id_reads : int;
  n_reads : int;
  deg_reads : int;
  neighbor_reads : int;
}

(** [audit v] is a snapshot of the accessor tallies so far. *)
val audit : t -> counts

(** [queries v] is the total number of accessor calls. *)
val queries : t -> int
