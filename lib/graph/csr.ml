type t = { n : int; row : int array; col : int array }
(* row.(v-1) .. row.(v) - 1 index the neighbour run of v in col, each
   run strictly increasing.  row has n+1 entries; row.(n) = 2m. *)

let check t v name =
  if v < 1 || v > t.n then invalid_arg ("Csr." ^ name ^ ": vertex out of range")

let order t = t.n
let size t = t.row.(t.n) / 2

let degree t v =
  check t v "degree";
  t.row.(v) - t.row.(v - 1)

let neighbors_slice t v =
  check t v "neighbors_slice";
  let off = t.row.(v - 1) in
  (t.col, off, t.row.(v) - off)

let iter_neighbors t v f =
  check t v "iter_neighbors";
  for i = t.row.(v - 1) to t.row.(v) - 1 do
    f t.col.(i)
  done

let fold_neighbors t v init f =
  check t v "fold_neighbors";
  let acc = ref init in
  for i = t.row.(v - 1) to t.row.(v) - 1 do
    acc := f !acc t.col.(i)
  done;
  !acc

let neighbors t v =
  check t v "neighbors";
  List.init (degree t v) (fun i -> t.col.(t.row.(v - 1) + i))

let has_edge t u v =
  check t u "has_edge";
  check t v "has_edge";
  u <> v
  &&
  (* Search the shorter run. *)
  let a, b = if degree t u <= degree t v then (u, v) else (v, u) in
  let lo = ref t.row.(a - 1) and hi = ref t.row.(a) in
  let found = ref false in
  while (not !found) && !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    let c = t.col.(mid) in
    if c = b then found := true else if c < b then lo := mid + 1 else hi := mid
  done;
  !found

let iter_edges t f =
  for u = 1 to t.n do
    for i = t.row.(u - 1) to t.row.(u) - 1 do
      let v = t.col.(i) in
      if u < v then f u v
    done
  done

let to_graph t =
  let b = Graph.Builder.create t.n in
  iter_edges t (fun u v -> Graph.Builder.add_edge b u v);
  Graph.Builder.build b

(* ---------- construction ---------- *)

let sort_run col lo hi =
  (* In-place insertion sort of col.[lo, hi): runs are one vertex's
     neighbours, already nearly sorted for most producers. *)
  for i = lo + 1 to hi - 1 do
    let x = col.(i) in
    let j = ref (i - 1) in
    while !j >= lo && col.(!j) > x do
      col.(!j + 1) <- col.(!j);
      decr j
    done;
    col.(!j + 1) <- x
  done

(* Sort every run, drop duplicate entries, and compact col / rebuild row
   in place.  Duplicate edges were written twice in *both* endpoint
   runs, so dropping repeats keeps the structure symmetric. *)
let dedupe n row col =
  let write = ref 0 in
  let run_start = ref 0 in
  for v = 1 to n do
    let lo = !run_start and hi = row.(v) in
    run_start := hi;
    sort_run col lo hi;
    let new_lo = !write in
    for i = lo to hi - 1 do
      if i = lo || col.(i) <> col.(i - 1) then begin
        col.(!write) <- col.(i);
        incr write
      end
    done;
    row.(v - 1) <- new_lo
  done;
  let total = !write in
  let starts = Array.make (n + 1) 0 in
  Array.blit row 0 starts 0 n;
  starts.(n) <- total;
  let col = if total = Array.length col then col else Array.sub col 0 total in
  { n; row = starts; col }

module Builder = struct
  type csr = t

  type t = {
    n : int;
    row : int array; (* counting pass: degrees; after freeze: write cursors *)
    ends : int array; (* after freeze: run end offsets *)
    mutable col : int array;
    mutable frozen : bool;
  }

  let create n =
    if n < 0 then invalid_arg "Csr.Builder.create: negative order";
    { n; row = Array.make (n + 1) 0; ends = Array.make (n + 1) 0; col = [||]; frozen = false }

  let check_pair b u v name =
    if u < 1 || u > b.n || v < 1 || v > b.n then
      invalid_arg ("Csr.Builder." ^ name ^ ": vertex out of range");
    if u = v then invalid_arg ("Csr.Builder." ^ name ^ ": self-loop")

  let count b u v =
    if b.frozen then invalid_arg "Csr.Builder.count: already frozen";
    check_pair b u v "count";
    b.row.(u - 1) <- b.row.(u - 1) + 1;
    b.row.(v - 1) <- b.row.(v - 1) + 1

  let freeze b =
    if b.frozen then invalid_arg "Csr.Builder.freeze: already frozen";
    b.frozen <- true;
    let acc = ref 0 in
    for v = 1 to b.n do
      let d = b.row.(v - 1) in
      b.row.(v - 1) <- !acc;
      acc := !acc + d;
      b.ends.(v - 1) <- !acc
    done;
    b.row.(b.n) <- !acc;
    b.ends.(b.n) <- !acc;
    b.col <- Array.make !acc 0

  let fill_one b u v =
    let cur = b.row.(u - 1) in
    if cur >= b.ends.(u - 1) then
      invalid_arg "Csr.Builder.fill: more edges than counted at a vertex";
    b.col.(cur) <- v;
    b.row.(u - 1) <- cur + 1

  let fill b u v =
    if not b.frozen then invalid_arg "Csr.Builder.fill: freeze first";
    check_pair b u v "fill";
    fill_one b u v;
    fill_one b v u

  let finish b : csr =
    if not b.frozen then invalid_arg "Csr.Builder.finish: freeze first";
    for v = 1 to b.n do
      if b.row.(v - 1) <> b.ends.(v - 1) then
        invalid_arg "Csr.Builder.finish: fill pass saw fewer edges than the counting pass"
    done;
    (* row currently holds cursors = run ends; rebuild starts from ends. *)
    let row = Array.make (b.n + 1) 0 in
    for v = 1 to b.n do
      row.(v) <- b.ends.(v - 1)
    done;
    dedupe b.n row b.col
end

let of_edges n edges =
  let b = Builder.create n in
  List.iter (fun (u, v) -> Builder.count b u v) edges;
  Builder.freeze b;
  List.iter (fun (u, v) -> Builder.fill b u v) edges;
  Builder.finish b

let of_graph g =
  let n = Graph.order g in
  let row = Array.make (n + 1) 0 in
  for v = 1 to n do
    row.(v) <- row.(v - 1) + Graph.degree g v
  done;
  let col = Array.make row.(n) 0 in
  let cursor = ref 0 in
  for v = 1 to n do
    Graph.iter_neighbors g v (fun u ->
        col.(!cursor) <- u;
        incr cursor)
  done;
  { n; row; col }
