(** Compressed sparse row adjacency.

    The same labelled simple graphs as {!Graph}, stored as two flat
    arrays: [row] (n+1 prefix offsets) and [col] (all neighbour
    identifiers, concatenated in vertex order, each run strictly
    increasing).  Memory is [O(n + m)] words — no [n^2]-bit incidence
    matrix — so million-node sparse graphs fit where {!Graph.t} cannot.

    Construction never builds an adjacency-set intermediate: degrees are
    counted first, offsets are prefix sums, and endpoints are written
    straight into [col] (then each run is sorted and duplicates are
    collapsed, matching {!Graph.of_edges} semantics).  The two-pass
    {!Builder} is the streaming entry point {!Gio.csr_of_file} feeds. *)

type t

(** [of_graph g] converts a materialized graph; [O(n + m)]. *)
val of_graph : Graph.t -> t

(** [of_edges n edges] builds from an edge list.  Duplicate edges (in
    either orientation) collapse.
    @raise Invalid_argument on loops or out-of-range vertices. *)
val of_edges : int -> (int * int) list -> t

(** Two-pass construction for streaming producers: replay the same edge
    sequence through {!Builder.count} and then {!Builder.fill}.  Peak
    memory beyond the final arrays is [O(1)]. *)
module Builder : sig
  type csr := t
  type t

  (** [create n] starts counting degrees for a graph on [1..n].
      @raise Invalid_argument if [n < 0]. *)
  val create : int -> t

  (** [count b u v] records one endpoint pair during the first pass.
      @raise Invalid_argument on loops or out-of-range vertices. *)
  val count : t -> int -> int -> unit

  (** [freeze b] ends the counting pass: offsets become prefix sums and
      [col] is allocated.  @raise Invalid_argument if called twice. *)
  val freeze : t -> unit

  (** [fill b u v] records the same pair during the second pass.
      @raise Invalid_argument if the pair stream diverges from the
      counting pass (more edges at a vertex than were counted). *)
  val fill : t -> int -> int -> unit

  (** [finish b] checks both passes agree, sorts each neighbour run and
      collapses duplicates.  The builder must not be reused.
      @raise Invalid_argument if some counted slot was never filled. *)
  val finish : t -> csr
end

val order : t -> int

(** [size t] is the number of edges. *)
val size : t -> int

(** [degree t v]
    @raise Invalid_argument if [v] is out of range. *)
val degree : t -> int -> int

(** [has_edge t u v] by binary search in the smaller run; [O(log deg)].
    @raise Invalid_argument if a vertex is out of range. *)
val has_edge : t -> int -> int -> bool

(** [iter_neighbors t v f] applies [f] in increasing order, allocation
    free. *)
val iter_neighbors : t -> int -> (int -> unit) -> unit

val fold_neighbors : t -> int -> 'a -> ('a -> int -> 'a) -> 'a

(** [neighbors t v] is the increasing neighbour list (allocates; compat
    accessor). *)
val neighbors : t -> int -> int list

(** [neighbors_slice t v] is [(col, off, len)]: the neighbour run of [v]
    inside the shared column array.  Callers must not mutate it. *)
val neighbors_slice : t -> int -> int array * int * int

(** [iter_edges t f] applies [f u v] to each edge with [u < v]. *)
val iter_edges : t -> (int -> int -> unit) -> unit

(** [to_graph t] materializes (allocates the [n^2]-bit incidence
    matrix — small [n] only). *)
val to_graph : t -> Graph.t
