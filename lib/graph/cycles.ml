open Refnet_bits

let find_triangle g =
  let n = Graph.order g in
  let found = ref None in
  (try
     for u = 1 to n do
       Graph.iter_neighbors g u (fun v ->
           if v > u then begin
             let common = Bitvec.inter (Graph.neighborhood g u) (Graph.neighborhood g v) in
             Bitvec.iter_set common (fun w0 ->
                 let w = w0 + 1 in
                 if w > v && !found = None then begin
                   found := Some (u, v, w);
                   raise Exit
                 end)
           end)
     done
   with Exit -> ());
  !found

let has_triangle g = find_triangle g <> None

let triangle_count g =
  let n = Graph.order g in
  let count = ref 0 in
  for u = 1 to n do
    Graph.iter_neighbors g u (fun v ->
        if v > u then begin
          let common = Bitvec.inter (Graph.neighborhood g u) (Graph.neighborhood g v) in
          Bitvec.iter_set common (fun w0 -> if w0 + 1 > v then incr count)
        end)
  done;
  !count

let find_square g =
  (* A 4-cycle exists iff two vertices share two common neighbours. *)
  let n = Graph.order g in
  let found = ref None in
  (try
     for u = 1 to n do
       for v = u + 1 to n do
         let common = Bitvec.inter (Graph.neighborhood g u) (Graph.neighborhood g v) in
         if Bitvec.popcount common >= 2 then begin
           match Bitvec.to_list common with
           | a0 :: b0 :: _ ->
             found := Some (u, a0 + 1, v, b0 + 1);
             raise Exit
           | _ -> assert false (* lint: allow referee-totality -- popcount >= 2 guarantees two set bits *)
         end
       done
     done
   with Exit -> ());
  !found

let has_square g = find_square g <> None

let girth g =
  (* BFS from each vertex; a non-tree edge closing at depths d1, d2 gives a
     cycle of length d1 + d2 + 1 through the root's BFS tree. *)
  let n = Graph.order g in
  let best = ref max_int in
  for src = 1 to n do
    let dist = Array.make n (-1) in
    let parent = Array.make n 0 in
    let queue = Queue.create () in
    dist.(src - 1) <- 0;
    Queue.add src queue;
    while not (Queue.is_empty queue) do
      let u = Queue.pop queue in
      Graph.iter_neighbors g u (fun v ->
          if dist.(v - 1) < 0 then begin
            dist.(v - 1) <- dist.(u - 1) + 1;
            parent.(v - 1) <- u;
            Queue.add v queue
          end
          else if parent.(u - 1) <> v && u < v then
            best := min !best (dist.(u - 1) + dist.(v - 1) + 1))
    done
  done;
  if !best = max_int then None else Some !best

let is_acyclic g = girth g = None
