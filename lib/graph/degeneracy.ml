(* Matula–Beck bucketed min-degree peeling: O(n + m). *)
let peel g =
  let n = Graph.order g in
  let deg = Array.init n (fun i -> Graph.degree g (i + 1)) in
  let maxd = Array.fold_left max 0 deg in
  (* bucket.(d) holds vertices of current degree d; pos/where track each
     vertex's slot so removal is O(1). *)
  let bucket = Array.make (maxd + 1) [] in
  for v = n downto 1 do
    bucket.(deg.(v - 1)) <- v :: bucket.(deg.(v - 1))
  done;
  let removed = Array.make n false in
  let order = ref [] in
  let degeneracy = ref 0 in
  let cur = ref 0 in
  for _ = 1 to n do
    (* Find the smallest non-empty bucket.  [cur] only needs to back up by
       at most one per removal, keeping the scan linear overall. *)
    while !cur <= maxd && bucket.(!cur) = [] do
      incr cur
    done;
    let rec pop d =
      match bucket.(d) with
      | [] -> pop (d + 1)
      | v :: rest ->
        if removed.(v - 1) || deg.(v - 1) <> d then begin
          (* Stale entry: the vertex moved buckets; skip it. *)
          bucket.(d) <- rest;
          pop d
        end
        else begin
          bucket.(d) <- rest;
          v
        end
    in
    let v = pop !cur in
    removed.(v - 1) <- true;
    degeneracy := max !degeneracy deg.(v - 1);
    order := v :: !order;
    Graph.iter_neighbors g v (fun u ->
        if not removed.(u - 1) then begin
          deg.(u - 1) <- deg.(u - 1) - 1;
          bucket.(deg.(u - 1)) <- u :: bucket.(deg.(u - 1));
          if deg.(u - 1) < !cur then cur := deg.(u - 1)
        end);
    (* After lazy skips [cur] may point past a refilled bucket. *)
    cur := max 0 (min !cur maxd)
  done;
  (!degeneracy, List.rev !order)

let degeneracy g = fst (peel g)

let elimination_order g = snd (peel g)

let is_elimination_order g ~k order =
  let n = Graph.order g in
  if List.length order <> n then invalid_arg "Degeneracy.is_elimination_order: wrong length";
  let seen = Array.make n false in
  List.iter
    (fun v ->
      if v < 1 || v > n || seen.(v - 1) then
        invalid_arg "Degeneracy.is_elimination_order: not a permutation";
      seen.(v - 1) <- true)
    order;
  let removed = Array.make n false in
  let ok = ref true in
  List.iter
    (fun v ->
      let live_deg =
        Graph.fold_neighbors g v 0 (fun acc u -> if removed.(u - 1) then acc else acc + 1)
      in
      if live_deg > k then ok := false;
      removed.(v - 1) <- true)
    order;
  !ok

let core_numbers g =
  let n = Graph.order g in
  let core = Array.make n 0 in
  let deg = Array.init n (fun i -> Graph.degree g (i + 1)) in
  let removed = Array.make n false in
  let current = ref 0 in
  for _ = 1 to n do
    (* O(n^2) scan variant: simple and adequate for core labelling. *)
    let best = ref 0 and best_deg = ref max_int in
    for v = 1 to n do
      if (not removed.(v - 1)) && deg.(v - 1) < !best_deg then begin
        best := v;
        best_deg := deg.(v - 1)
      end
    done;
    let v = !best in
    current := max !current deg.(v - 1);
    core.(v - 1) <- !current;
    removed.(v - 1) <- true;
    Graph.iter_neighbors g v (fun u ->
        if not removed.(u - 1) then deg.(u - 1) <- deg.(u - 1) - 1)
  done;
  core

(* Greedy peeling by min(degree, co-degree); exchange argument as for
   ordinary degeneracy shows greedy is optimal here too. *)
let generalized_peel g =
  let n = Graph.order g in
  let deg = Array.init n (fun i -> Graph.degree g (i + 1)) in
  let removed = Array.make n false in
  let remaining = ref n in
  let order = ref [] in
  let worst = ref 0 in
  for _ = 1 to n do
    let best = ref 0 and best_val = ref max_int in
    for v = 1 to n do
      if not removed.(v - 1) then begin
        let d = deg.(v - 1) in
        let value = min d (!remaining - 1 - d) in
        if value < !best_val then begin
          best := v;
          best_val := value
        end
      end
    done;
    let v = !best in
    let d = deg.(v - 1) in
    let side = if d <= !remaining - 1 - d then `Graph else `Complement in
    worst := max !worst !best_val;
    order := (v, side) :: !order;
    removed.(v - 1) <- true;
    decr remaining;
    Graph.iter_neighbors g v (fun u ->
        if not removed.(u - 1) then deg.(u - 1) <- deg.(u - 1) - 1)
  done;
  (!worst, List.rev !order)

let generalized_degeneracy g = fst (generalized_peel g)

let generalized_elimination_order g ~k =
  let worst, order = generalized_peel g in
  if worst <= k then begin
    (* Recompute sides against the threshold k rather than the greedy
       minimum: a vertex qualifies on whichever side is within k. *)
    let n = Graph.order g in
    let deg = Array.init n (fun i -> Graph.degree g (i + 1)) in
    let removed = Array.make n false in
    let remaining = ref n in
    let resolved =
      List.map
        (fun (v, _) ->
          let d = deg.(v - 1) in
          let side = if d <= k then `Graph else `Complement in
          removed.(v - 1) <- true;
          decr remaining;
          Graph.iter_neighbors g v (fun u ->
              if not removed.(u - 1) then deg.(u - 1) <- deg.(u - 1) - 1);
          (v, side))
        order
    in
    Some resolved
  end
  else None
