let pairwise g =
  Array.init (Graph.order g) (fun i -> Traversal.bfs_distances g (i + 1))

(* Eccentricity BFS over caller-provided scratch: diameter-style sweeps
   run n BFSes per graph (and the gadget experiments run n^2 graphs), so
   the distance array and queue are reused rather than reallocated.
   Returns [max_int] when the graph is disconnected from [src]. *)
let bfs_ecc g ~dist ~queue src =
  let n = Graph.order g in
  if src < 1 || src > n then invalid_arg "Distance: vertex out of range";
  Array.fill dist 0 n (-1);
  dist.(src - 1) <- 0;
  queue.(0) <- src;
  let head = ref 0 and tail = ref 1 in
  let ecc = ref 0 in
  while !head < !tail do
    let u = queue.(!head) in
    incr head;
    let du = dist.(u - 1) in
    Graph.iter_neighbors g u (fun v ->
        if dist.(v - 1) < 0 then begin
          dist.(v - 1) <- du + 1;
          if du + 1 > !ecc then ecc := du + 1;
          queue.(!tail) <- v;
          incr tail
        end)
  done;
  if !tail < n then max_int else !ecc

let eccentricity g v =
  let n = Graph.order g in
  bfs_ecc g ~dist:(Array.make (max n 1) (-1)) ~queue:(Array.make (max n 1) 0) v

let sweep g ~combine ~init ~stop =
  let n = Graph.order g in
  if n = 0 then None
  else begin
    let dist = Array.make n (-1) and queue = Array.make n 0 in
    let rec go v acc =
      if v > n then Some acc
      else begin
        let e = bfs_ecc g ~dist ~queue v in
        if stop e then None else go (v + 1) (combine acc e)
      end
    in
    go 1 init
  end

let diameter g = sweep g ~combine:max ~init:0 ~stop:(fun e -> e = max_int)

let radius g =
  match sweep g ~combine:min ~init:max_int ~stop:(fun e -> e = max_int) with
  | Some acc when acc = max_int -> None (* unreachable: n >= 1 gives finite ecc or stop *)
  | r -> r

let diameter_at_most g d =
  let n = Graph.order g in
  n = 0
  ||
  let dist = Array.make n (-1) and queue = Array.make n 0 in
  let rec go v = v > n || (bfs_ecc g ~dist ~queue v <= d && go (v + 1)) in
  go 1

let distance g u v =
  let dist = Traversal.bfs_distances g u in
  if dist.(v - 1) < 0 then None else Some dist.(v - 1)
