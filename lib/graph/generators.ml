let path n =
  Graph.of_edges n (List.init (max 0 (n - 1)) (fun i -> (i + 1, i + 2)))

let cycle n =
  if n < 3 then invalid_arg "Generators.cycle: need n >= 3";
  Graph.of_edges n ((n, 1) :: List.init (n - 1) (fun i -> (i + 1, i + 2)))

let complete n =
  let b = Graph.Builder.create n in
  for u = 1 to n do
    for v = u + 1 to n do
      Graph.Builder.add_edge b u v
    done
  done;
  Graph.Builder.build b

let complete_bipartite a bp =
  let b = Graph.Builder.create (a + bp) in
  for u = 1 to a do
    for v = a + 1 to a + bp do
      Graph.Builder.add_edge b u v
    done
  done;
  Graph.Builder.build b

let star n =
  Graph.of_edges n (List.init (max 0 (n - 1)) (fun i -> (1, i + 2)))

let wheel n =
  if n < 4 then invalid_arg "Generators.wheel: need n >= 4";
  let rim = (n, 2) :: List.init (n - 2) (fun i -> (i + 2, i + 3)) in
  let spokes = List.init (n - 1) (fun i -> (1, i + 2)) in
  Graph.of_edges n (rim @ spokes)

let grid w h =
  if w < 1 || h < 1 then invalid_arg "Generators.grid: need positive sides";
  let id x y = (y * w) + x + 1 in
  let b = Graph.Builder.create (w * h) in
  for y = 0 to h - 1 do
    for x = 0 to w - 1 do
      if x + 1 < w then Graph.Builder.add_edge b (id x y) (id (x + 1) y);
      if y + 1 < h then Graph.Builder.add_edge b (id x y) (id x (y + 1))
    done
  done;
  Graph.Builder.build b

let torus w h =
  if w < 3 || h < 3 then invalid_arg "Generators.torus: need sides >= 3";
  let id x y = (y * w) + x + 1 in
  let b = Graph.Builder.create (w * h) in
  for y = 0 to h - 1 do
    for x = 0 to w - 1 do
      Graph.Builder.add_edge b (id x y) (id ((x + 1) mod w) y);
      Graph.Builder.add_edge b (id x y) (id x ((y + 1) mod h))
    done
  done;
  Graph.Builder.build b

let hypercube d =
  if d < 0 then invalid_arg "Generators.hypercube: negative dimension";
  let n = 1 lsl d in
  let b = Graph.Builder.create n in
  for v = 0 to n - 1 do
    for bit = 0 to d - 1 do
      let u = v lxor (1 lsl bit) in
      if u > v then Graph.Builder.add_edge b (v + 1) (u + 1)
    done
  done;
  Graph.Builder.build b

let petersen () =
  (* Outer 5-cycle 1..5, inner pentagram 6..10, spokes i -> i+5. *)
  let outer = [ (1, 2); (2, 3); (3, 4); (4, 5); (5, 1) ] in
  let inner = [ (6, 8); (8, 10); (10, 7); (7, 9); (9, 6) ] in
  let spokes = List.init 5 (fun i -> (i + 1, i + 6)) in
  Graph.of_edges 10 (outer @ inner @ spokes)

let complete_binary_tree n =
  let acc = ref [] in
  for i = 2 to n do
    acc := (i / 2, i) :: !acc
  done;
  Graph.of_edges n !acc

let caterpillar ~spine ~legs =
  if spine < 1 || legs < 0 then invalid_arg "Generators.caterpillar: bad parameters";
  let n = spine * (legs + 1) in
  let b = Graph.Builder.create n in
  for s = 1 to spine - 1 do
    Graph.Builder.add_edge b s (s + 1)
  done;
  for s = 1 to spine do
    for l = 0 to legs - 1 do
      Graph.Builder.add_edge b s (spine + ((s - 1) * legs) + l + 1)
    done
  done;
  Graph.Builder.build b

let gnp rng n p =
  if p < 0.0 || p > 1.0 then invalid_arg "Generators.gnp: probability out of range";
  let b = Graph.Builder.create n in
  for u = 1 to n do
    for v = u + 1 to n do
      if Random.State.float rng 1.0 < p then Graph.Builder.add_edge b u v
    done
  done;
  Graph.Builder.build b

(* Linear-time Prüfer decoding. *)
let tree_of_pruefer n code =
  let deg = Array.make (n + 1) 1 in
  Array.iter (fun a -> deg.(a) <- deg.(a) + 1) code;
  let edges = ref [] in
  let ptr = ref 1 in
  while deg.(!ptr) <> 1 do
    incr ptr
  done;
  let leaf = ref !ptr in
  Array.iter
    (fun a ->
      edges := (!leaf, a) :: !edges;
      deg.(a) <- deg.(a) - 1;
      if deg.(a) = 1 && a < !ptr then leaf := a
      else begin
        incr ptr;
        while deg.(!ptr) <> 1 do
          incr ptr
        done;
        leaf := !ptr
      end)
    code;
  edges := (!leaf, n) :: !edges;
  Graph.of_edges n !edges

let random_tree rng n =
  if n <= 0 then invalid_arg "Generators.random_tree: need n >= 1";
  if n = 1 then Graph.empty 1
  else if n = 2 then Graph.of_edges 2 [ (1, 2) ]
  else tree_of_pruefer n (Array.init (n - 2) (fun _ -> 1 + Random.State.int rng n))

let shuffle rng a =
  for i = Array.length a - 1 downto 1 do
    let j = Random.State.int rng (i + 1) in
    let t = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- t
  done

let sample_distinct rng ~bound ~count =
  (* Distinct uniform picks from 1..bound; count is small. *)
  let picked = Hashtbl.create 8 in
  let rec pick acc remaining =
    if remaining = 0 then acc
    else begin
      let c = 1 + Random.State.int rng bound in
      if Hashtbl.mem picked c then pick acc remaining
      else begin
        Hashtbl.add picked c ();
        pick (c :: acc) (remaining - 1)
      end
    end
  in
  pick [] count

let random_forest rng n ~trees =
  if trees < 1 || trees > max n 1 then invalid_arg "Generators.random_forest: bad tree count";
  if n = 0 then Graph.empty 0
  else begin
    (* Deal shuffled labels into [trees] groups, then build a random tree
       on each group via relabelled Prüfer trees. *)
    let labels = Array.init n (fun i -> i + 1) in
    shuffle rng labels;
    (* Distinct cut points: exactly [trees] non-empty groups. *)
    let cuts = Array.of_list (sample_distinct rng ~bound:(n - 1) ~count:(trees - 1)) in
    Array.sort Stdlib.compare cuts;
    let groups = ref [] in
    let start = ref 0 in
    Array.iter
      (fun c ->
        if c > !start then begin
          groups := Array.sub labels !start (c - !start) :: !groups;
          start := c
        end)
      cuts;
    groups := Array.sub labels !start (n - !start) :: !groups;
    let b = Graph.Builder.create n in
    List.iter
      (fun group ->
        let size = Array.length group in
        if size > 1 then begin
          let t = random_tree rng size in
          Graph.iter_edges t (fun u v ->
              Graph.Builder.add_edge b group.(u - 1) group.(v - 1))
        end)
      !groups;
    Graph.Builder.build b
  end

let random_k_degenerate rng n ~k =
  if k < 0 then invalid_arg "Generators.random_k_degenerate: negative k";
  let b = Graph.Builder.create n in
  for i = 2 to n do
    let count = min k (i - 1) in
    List.iter (fun j -> Graph.Builder.add_edge b i j) (sample_distinct rng ~bound:(i - 1) ~count)
  done;
  Graph.Builder.build b

let random_k_tree rng n ~k =
  if n < k + 1 then invalid_arg "Generators.random_k_tree: need n >= k + 1";
  let b = Graph.Builder.create n in
  (* Seed clique on 1..k+1. *)
  for u = 1 to k + 1 do
    for v = u + 1 to k + 1 do
      Graph.Builder.add_edge b u v
    done
  done;
  (* cliques: the k-cliques available for extension. *)
  let cliques = ref [||] in
  let add_clique c = cliques := Array.append !cliques [| c |] in
  (* All k-subsets of the seed clique. *)
  let rec subsets first remaining acc =
    if remaining = 0 then add_clique (Array.of_list (List.rev acc))
    else
      for i = first to k + 1 - remaining + 1 do
        subsets (i + 1) (remaining - 1) (i :: acc)
      done
  in
  subsets 1 k [];
  for v = k + 2 to n do
    let c = !cliques.(Random.State.int rng (Array.length !cliques)) in
    Array.iter (fun u -> Graph.Builder.add_edge b v u) c;
    (* New k-cliques: v with each (k-1)-subset of c. *)
    for drop = 0 to k - 1 do
      let fresh = Array.mapi (fun i u -> if i = drop then v else u) c in
      add_clique fresh
    done
  done;
  Graph.Builder.build b

let random_apollonian rng n =
  if n < 3 then invalid_arg "Generators.random_apollonian: need n >= 3";
  let b = Graph.Builder.create n in
  Graph.Builder.add_edge b 1 2;
  Graph.Builder.add_edge b 2 3;
  Graph.Builder.add_edge b 1 3;
  let faces = ref [| (1, 2, 3) |] in
  for v = 4 to n do
    let idx = Random.State.int rng (Array.length !faces) in
    let a, bb, c = !faces.(idx) in
    Graph.Builder.add_edge b v a;
    Graph.Builder.add_edge b v bb;
    Graph.Builder.add_edge b v c;
    (* Replace the split face by the three new ones. *)
    !faces.(idx) <- (a, bb, v);
    faces := Array.append !faces [| (a, c, v); (bb, c, v) |]
  done;
  Graph.Builder.build b

let random_maximal_outerplanar rng n =
  if n < 3 then invalid_arg "Generators.random_maximal_outerplanar: need n >= 3";
  let b = Graph.Builder.create n in
  for i = 1 to n - 1 do
    Graph.Builder.add_edge b i (i + 1)
  done;
  Graph.Builder.add_edge b n 1;
  (* Triangulate the polygon by random splits. *)
  let rec split lo hi =
    (* Chord lo-hi is an edge; triangulate the open chain lo..hi. *)
    if hi - lo >= 2 then begin
      let mid = lo + 1 + Random.State.int rng (hi - lo - 1) in
      Graph.Builder.add_edge b lo mid;
      Graph.Builder.add_edge b mid hi;
      split lo mid;
      split mid hi
    end
  in
  split 1 n;
  Graph.Builder.build b

let random_bipartite rng ~left ~right p =
  if p < 0.0 || p > 1.0 then invalid_arg "Generators.random_bipartite: probability out of range";
  let b = Graph.Builder.create (left + right) in
  for u = 1 to left do
    for v = left + 1 to left + right do
      if Random.State.float rng 1.0 < p then Graph.Builder.add_edge b u v
    done
  done;
  Graph.Builder.build b

let random_connected rng n p =
  let g = gnp rng n p in
  match Connectivity.component_members g with
  | [] | [ _ ] -> g
  | first :: rest ->
    (* Arrays for O(1) member picks; components are non-empty by
       construction, so plain indexing is total here. *)
    let first = Array.of_list first in
    let patch =
      List.map
        (fun comp ->
          let comp = Array.of_list comp in
          let a = first.(Random.State.int rng (Array.length first)) in
          let bv = comp.(Random.State.int rng (Array.length comp)) in
          (a, bv))
        rest
    in
    Graph.add_edges g patch

let random_square_free rng n ~attempts =
  let b = Graph.Builder.create n in
  let closes_square u v =
    (* Adding u-v creates a C4 iff u and v already share two neighbours,
       or some neighbour pair short-circuits; equivalently the built graph
       plus the edge has a square through it.  Check: exists w != v
       adjacent to u and x != u adjacent to v with w-x an edge and
       w != x ... simpler: u,v share >= 2 common neighbours (C4 via
       u-a-v-b), or there is a path u - a - b - v of length 3 (C4
       u-a-b-v-u). *)
    let common = ref 0 in
    for w = 1 to n do
      if w <> u && w <> v && Graph.Builder.has_edge b u w && Graph.Builder.has_edge b v w then
        incr common
    done;
    if !common >= 2 then true
    else begin
      let found = ref false in
      for a = 1 to n do
        if (not !found) && a <> u && a <> v && Graph.Builder.has_edge b u a then
          for bb = 1 to n do
            if
              (not !found) && bb <> u && bb <> v && bb <> a
              && Graph.Builder.has_edge b a bb
              && Graph.Builder.has_edge b bb v
            then found := true
          done
      done;
      !found
    end
  in
  for _ = 1 to attempts do
    let u = 1 + Random.State.int rng n and v = 1 + Random.State.int rng n in
    if u <> v && (not (Graph.Builder.has_edge b u v)) && not (closes_square u v) then
      Graph.Builder.add_edge b u v
  done;
  Graph.Builder.build b

let random_regular rng n ~d =
  if n * d mod 2 = 1 then invalid_arg "Generators.random_regular: n * d must be even";
  if d < 0 || d >= max n 1 then invalid_arg "Generators.random_regular: need 0 <= d < n";
  if d = 0 then Graph.empty n
  else begin
    (* Pairing model: d stubs per vertex, random perfect matching on the
       stubs, reject on loops or parallel edges and retry. *)
    let stubs = Array.make (n * d) 0 in
    let rec attempt () =
      let idx = ref 0 in
      for v = 1 to n do
        for _ = 1 to d do
          stubs.(!idx) <- v;
          incr idx
        done
      done;
      shuffle rng stubs;
      let b = Graph.Builder.create n in
      let ok = ref true in
      let i = ref 0 in
      while !ok && !i < n * d do
        let u = stubs.(!i) and v = stubs.(!i + 1) in
        if u = v || Graph.Builder.has_edge b u v then ok := false
        else Graph.Builder.add_edge b u v;
        i := !i + 2
      done;
      if !ok then Graph.Builder.build b else attempt ()
    in
    attempt ()
  end
