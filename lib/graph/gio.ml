let to_edge_list g =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "%d %d\n" (Graph.order g) (Graph.size g));
  Graph.iter_edges g (fun u v -> Buffer.add_string buf (Printf.sprintf "%d %d\n" u v));
  Buffer.contents buf

(* Fields separated by any run of spaces, tabs or stray carriage
   returns: edge lists written on other platforms (CRLF endings,
   tab-separated columns, trailing blanks) load identically to native
   ones instead of failing mid-file. *)
let fields line =
  let is_ws c = c = ' ' || c = '\t' || c = '\r' in
  let len = String.length line in
  let rec go i acc =
    if i >= len then List.rev acc
    else if is_ws line.[i] then go (i + 1) acc
    else begin
      let j = ref i in
      while !j < len && not (is_ws line.[!j]) do
        incr j
      done;
      go !j (String.sub line i (!j - i) :: acc)
    end
  in
  go 0 []

let of_edge_list s =
  let lines =
    String.split_on_char '\n' s
    |> List.map String.trim
    |> List.filter (fun l -> l <> "")
  in
  match lines with
  | [] -> invalid_arg "Gio.of_edge_list: empty input"
  | header :: rest ->
    let parse_pair line =
      match fields line with
      | [ a; b ] -> (
        match (int_of_string_opt a, int_of_string_opt b) with
        | Some a, Some b -> (a, b)
        | _ -> invalid_arg "Gio.of_edge_list: bad integers")
      | _ -> invalid_arg "Gio.of_edge_list: expected two fields"
    in
    let n, m = parse_pair header in
    let edges = List.map parse_pair rest in
    if List.length edges <> m then invalid_arg "Gio.of_edge_list: edge count mismatch";
    Graph.of_edges n edges

(* ---------- streaming edge-list files ---------- *)

(* One pass over [path]: header callback once, edge callback per line,
   in file order.  Memory is one line at a time; errors carry
   [path:line:] so a bad row in a million-line file is findable. *)
let iter_edge_list_file path ~header ~edge =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let lineno = ref 0 in
      let parse_line line =
        match fields line with
        | [ a; b ] -> (
          match (int_of_string_opt a, int_of_string_opt b) with
          | Some a, Some b -> Some (a, b)
          | _ -> invalid_arg (Printf.sprintf "%s:%d: expected two integers" path !lineno))
        | [] -> None (* blank line *)
        | _ -> invalid_arg (Printf.sprintf "%s:%d: expected two fields" path !lineno)
      in
      let next () =
        match input_line ic with
        | line ->
          incr lineno;
          Some line
        | exception End_of_file -> None
      in
      let rec first_pair () =
        match next () with
        | None -> invalid_arg (Printf.sprintf "%s: empty input" path)
        | Some line -> ( match parse_line line with Some p -> p | None -> first_pair ())
      in
      let n, m = first_pair () in
      if n < 0 || m < 0 then
        invalid_arg (Printf.sprintf "%s:%d: negative order or size in header" path !lineno);
      header ~n ~m;
      let edges = ref 0 in
      let rec go () =
        match next () with
        | None -> ()
        | Some line ->
          (match parse_line line with
          | Some (u, v) -> (
            incr edges;
            (* Re-anchor consumer rejections (range, self-loop) to the
               offending line. *)
            try edge u v
            with Invalid_argument msg ->
              invalid_arg (Printf.sprintf "%s:%d: %s" path !lineno msg))
          | None -> ());
          go ()
      in
      go ();
      if !edges <> m then
        invalid_arg
          (Printf.sprintf "%s: edge count mismatch (header says %d, found %d)" path m !edges))

let csr_of_file path =
  (* Two streaming passes feed the CSR builder directly: no adjacency
     sets, no edge list — peak extra memory is one input line plus one
     row's sort scratch. *)
  let builder = ref None in
  iter_edge_list_file path
    ~header:(fun ~n ~m:_ -> builder := Some (Csr.Builder.create n))
    ~edge:(fun u v ->
      match !builder with Some b -> Csr.Builder.count b u v | None -> ());
  match !builder with
  | None -> invalid_arg (Printf.sprintf "%s: empty input" path)
  | Some b ->
    Csr.Builder.freeze b;
    iter_edge_list_file path ~header:(fun ~n:_ ~m:_ -> ()) ~edge:(Csr.Builder.fill b);
    Csr.Builder.finish b

let graph_of_file path =
  let builder = ref None in
  iter_edge_list_file path
    ~header:(fun ~n ~m:_ -> builder := Some (Graph.Builder.create n))
    ~edge:(fun u v ->
      match !builder with Some b -> Graph.Builder.add_edge b u v | None -> ());
  match !builder with
  | None -> invalid_arg (Printf.sprintf "%s: empty input" path)
  | Some b -> Graph.Builder.build b

let to_edge_list_file path g =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      Printf.fprintf oc "%d %d\n" (Graph.order g) (Graph.size g);
      Graph.iter_edges g (fun u v -> Printf.fprintf oc "%d %d\n" u v))

let to_dot ?(name = "G") g =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "graph %s {\n" name);
  List.iter (fun v -> Buffer.add_string buf (Printf.sprintf "  %d;\n" v)) (Graph.vertices g);
  Graph.iter_edges g (fun u v -> Buffer.add_string buf (Printf.sprintf "  %d -- %d;\n" u v));
  Buffer.add_string buf "}\n";
  Buffer.contents buf

(* graph6: N(n) header then the upper triangle read column by column
   ((1,2), (1,3), (2,3), (1,4), ...), packed 6 bits per character with
   offset 63. *)

let graph6_header n =
  if n < 0 then invalid_arg "Gio.to_graph6: negative order";
  if n <= 62 then String.make 1 (Char.chr (n + 63))
  else if n <= 258047 then begin
    let b = Bytes.create 4 in
    Bytes.set b 0 (Char.chr 126);
    Bytes.set b 1 (Char.chr (((n lsr 12) land 63) + 63));
    Bytes.set b 2 (Char.chr (((n lsr 6) land 63) + 63));
    Bytes.set b 3 (Char.chr ((n land 63) + 63));
    Bytes.to_string b
  end
  else invalid_arg "Gio.to_graph6: order too large"

let to_graph6 g =
  let n = Graph.order g in
  let buf = Buffer.create 64 in
  Buffer.add_string buf (graph6_header n);
  let bits = ref 0 and count = ref 0 in
  let flush_partial () =
    if !count > 0 then begin
      Buffer.add_char buf (Char.chr ((!bits lsl (6 - !count)) + 63));
      bits := 0;
      count := 0
    end
  in
  for v = 2 to n do
    for u = 1 to v - 1 do
      bits := (!bits lsl 1) lor (if Graph.has_edge g u v then 1 else 0);
      incr count;
      if !count = 6 then begin
        Buffer.add_char buf (Char.chr (!bits + 63));
        bits := 0;
        count := 0
      end
    done
  done;
  flush_partial ();
  Buffer.contents buf

let of_graph6 s =
  let len = String.length s in
  if len = 0 then invalid_arg "Gio.of_graph6: empty input";
  let byte i =
    if i >= len then invalid_arg "Gio.of_graph6: truncated input";
    let c = Char.code s.[i] - 63 in
    if c < 0 || c > 63 then invalid_arg "Gio.of_graph6: invalid character";
    c
  in
  let n, start =
    if s.[0] = '~' then begin
      if len >= 2 && s.[1] = '~' then invalid_arg "Gio.of_graph6: order too large"
      else (((byte 1 lsl 12) lor (byte 2 lsl 6) lor byte 3), 4)
    end
    else (byte 0, 1)
  in
  let b = Graph.Builder.create n in
  let idx = ref 0 in
  let bit pos = byte (start + (pos / 6)) land (1 lsl (5 - (pos mod 6))) <> 0 in
  for v = 2 to n do
    for u = 1 to v - 1 do
      if bit !idx then Graph.Builder.add_edge b u v;
      incr idx
    done
  done;
  Graph.Builder.build b
