(** Graph serialization: edge lists, Graphviz DOT, and graph6.

    graph6 is the standard compact ASCII interchange format (McKay's
    nauty): useful for pasting reconstructed topologies into external
    tools, and its encoder/decoder pair doubles as a strong round-trip
    test for the graph structure itself. *)

(** [to_edge_list g] is a line-oriented rendering: first line ["n m"],
    then one ["u v"] line per edge with [u < v]. *)
val to_edge_list : Graph.t -> string

(** [of_edge_list s] parses {!to_edge_list} output.
    @raise Invalid_argument on malformed input. *)
val of_edge_list : string -> Graph.t

(** [iter_edge_list_file path ~header ~edge] streams an edge-list file
    in one pass: [header ~n ~m] once for the first non-blank line, then
    [edge u v] per edge line, in file order.  Memory is one line at a
    time — no list of lines, no list of edges.  Malformed rows raise
    with a [path:line:] prefix; [Invalid_argument] raised by [edge]
    (range, self-loop) is re-anchored to the offending line; an edge
    count disagreeing with the header raises at end of file.
    @raise Invalid_argument on malformed input. *)
val iter_edge_list_file :
  string -> header:(n:int -> m:int -> unit) -> edge:(int -> int -> unit) -> unit

(** [csr_of_file path] streams the file twice through {!Csr.Builder},
    building the flat arrays directly — never an adjacency-set or
    edge-list intermediate.  Peak memory beyond the final CSR is one
    input line plus one row's sort scratch ([O(degree peak)]).
    @raise Invalid_argument on malformed input (with [path:line:]). *)
val csr_of_file : string -> Csr.t

(** [graph_of_file path] streams once into a {!Graph.Builder} (the
    [n^2]-bit incidence matrix is still allocated — prefer
    {!csr_of_file} at large [n]).
    @raise Invalid_argument on malformed input (with [path:line:]). *)
val graph_of_file : string -> Graph.t

(** [to_edge_list_file path g] writes {!to_edge_list} output directly to
    [path] without building the intermediate string. *)
val to_edge_list_file : string -> Graph.t -> unit

(** [to_dot g] renders an undirected Graphviz graph. *)
val to_dot : ?name:string -> Graph.t -> string

(** [to_graph6 g] encodes in graph6 (supports [n <= 258047]).
    @raise Invalid_argument beyond the supported range. *)
val to_graph6 : Graph.t -> string

(** [of_graph6 s] decodes a graph6 string.
    @raise Invalid_argument on malformed input. *)
val of_graph6 : string -> Graph.t
