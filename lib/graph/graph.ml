open Refnet_bits

type t = { n : int; adj : Bitvec.t array; nbrs : int array array; m : int }
(* adj.(v - 1) is the incidence vector of N(v); nbrs.(v - 1) its sorted
   list form, precomputed because every algorithm iterates neighbourhoods. *)

let check g v name =
  if v < 1 || v > g.n then invalid_arg ("Graph." ^ name ^ ": vertex out of range")

module Builder = struct
  type t = { n : int; adj : Bitvec.t array; mutable m : int }

  let create n =
    if n < 0 then invalid_arg "Graph.Builder.create: negative order";
    { n; adj = Array.init n (fun _ -> Bitvec.create n); m = 0 }

  let check b v =
    if v < 1 || v > b.n then invalid_arg "Graph.Builder: vertex out of range"

  let has_edge b u v =
    check b u;
    check b v;
    u <> v && Bitvec.get b.adj.(u - 1) (v - 1)

  let add_edge b u v =
    check b u;
    check b v;
    if u = v then invalid_arg "Graph.Builder.add_edge: self-loop";
    if not (Bitvec.get b.adj.(u - 1) (v - 1)) then begin
      Bitvec.set b.adj.(u - 1) (v - 1);
      Bitvec.set b.adj.(v - 1) (u - 1);
      b.m <- b.m + 1
    end

  let remove_edge b u v =
    check b u;
    check b v;
    if u <> v && Bitvec.get b.adj.(u - 1) (v - 1) then begin
      Bitvec.clear b.adj.(u - 1) (v - 1);
      Bitvec.clear b.adj.(v - 1) (u - 1);
      b.m <- b.m - 1
    end

  let build b =
    let adj = Array.map Bitvec.copy b.adj in
    (* Fill each neighbour array directly from its incidence row: size it
       by popcount, then write vertices in place during one indexed scan
       of the set bits — no intermediate lists. *)
    let nbrs =
      Array.map
        (fun row ->
          let out = Array.make (Bitvec.popcount row) 0 in
          let idx = ref 0 in
          Bitvec.iter_set row (fun i ->
              out.(!idx) <- i + 1;
              incr idx);
          out)
        adj
    in
    { n = b.n; adj; nbrs; m = b.m }
end

let empty n = Builder.build (Builder.create n)

let of_edges n edge_list =
  let b = Builder.create n in
  List.iter (fun (u, v) -> Builder.add_edge b u v) edge_list;
  Builder.build b

let order g = g.n
let size g = g.m

let has_edge g u v =
  check g u "has_edge";
  check g v "has_edge";
  u <> v && Bitvec.get g.adj.(u - 1) (v - 1)

let degree g v =
  check g v "degree";
  Array.length g.nbrs.(v - 1)

let neighbors g v =
  check g v "neighbors";
  Array.to_list g.nbrs.(v - 1)

let neighbors_row g v =
  check g v "neighbors_row";
  g.nbrs.(v - 1)

let iter_neighbors g v f =
  check g v "iter_neighbors";
  let row = g.nbrs.(v - 1) in
  for i = 0 to Array.length row - 1 do
    f (Array.unsafe_get row i) (* lint: allow referee-totality -- i < length row by the loop bound; BFS hot path *)
  done

let fold_neighbors g v init f =
  check g v "fold_neighbors";
  let row = g.nbrs.(v - 1) in
  let acc = ref init in
  for i = 0 to Array.length row - 1 do
    acc := f !acc (Array.unsafe_get row i) (* lint: allow referee-totality -- i < length row by the loop bound; BFS hot path *)
  done;
  !acc

let neighborhood g v =
  check g v "neighborhood";
  g.adj.(v - 1)

let vertices g = List.init g.n (fun i -> i + 1)

let iter_edges g f =
  for u = 1 to g.n do
    Array.iter (fun v -> if u < v then f u v) g.nbrs.(u - 1)
  done

let edges g =
  let acc = ref [] in
  iter_edges g (fun u v -> acc := (u, v) :: !acc);
  List.rev !acc

let fold_vertices g init f =
  let acc = ref init in
  for v = 1 to g.n do
    acc := f !acc v
  done;
  !acc

let max_degree g = fold_vertices g 0 (fun acc v -> max acc (degree g v))

let min_degree g =
  if g.n = 0 then 0 else fold_vertices g max_int (fun acc v -> min acc (degree g v))

let degree_sequence g =
  List.sort (fun a b -> Stdlib.compare b a) (List.map (degree g) (vertices g))

let equal g h =
  g.n = h.n
  &&
  let rec go i = i >= g.n || (Bitvec.equal g.adj.(i) h.adj.(i) && go (i + 1)) in
  go 0

let complement g =
  let b = Builder.create g.n in
  for u = 1 to g.n do
    for v = u + 1 to g.n do
      if not (has_edge g u v) then Builder.add_edge b u v
    done
  done;
  Builder.build b

let induced g vs =
  List.iter (fun v -> check g v "induced") vs;
  let sorted = List.sort_uniq Stdlib.compare vs in
  if List.length sorted <> List.length vs then invalid_arg "Graph.induced: repeated vertex";
  let old_of_new = Array.of_list vs in
  let new_of_old = Array.make g.n 0 in
  Array.iteri (fun i v -> new_of_old.(v - 1) <- i + 1) old_of_new;
  let b = Builder.create (Array.length old_of_new) in
  iter_edges g (fun u v ->
      let u' = new_of_old.(u - 1) and v' = new_of_old.(v - 1) in
      if u' > 0 && v' > 0 then Builder.add_edge b u' v');
  (Builder.build b, old_of_new)

let remove_vertex g v =
  check g v "remove_vertex";
  induced g (List.filter (fun u -> u <> v) (vertices g))

let relabel g perm =
  if Array.length perm <> g.n then invalid_arg "Graph.relabel: wrong length";
  let seen = Array.make g.n false in
  Array.iter
    (fun p ->
      if p < 1 || p > g.n || seen.(p - 1) then invalid_arg "Graph.relabel: not a permutation";
      seen.(p - 1) <- true)
    perm;
  let b = Builder.create g.n in
  iter_edges g (fun u v -> Builder.add_edge b perm.(u - 1) perm.(v - 1));
  Builder.build b

let disjoint_union g h =
  let b = Builder.create (g.n + h.n) in
  iter_edges g (fun u v -> Builder.add_edge b u v);
  iter_edges h (fun u v -> Builder.add_edge b (u + g.n) (v + g.n));
  Builder.build b

let add_vertices g m_extra =
  if m_extra < 0 then invalid_arg "Graph.add_vertices: negative count";
  let b = Builder.create (g.n + m_extra) in
  iter_edges g (fun u v -> Builder.add_edge b u v);
  Builder.build b

let add_edges g extra =
  let b = Builder.create g.n in
  iter_edges g (fun u v -> Builder.add_edge b u v);
  List.iter (fun (u, v) -> Builder.add_edge b u v) extra;
  Builder.build b

let is_subgraph g h =
  g.n = h.n
  &&
  let ok = ref true in
  iter_edges g (fun u v -> if not (has_edge h u v) then ok := false);
  !ok

let pp fmt g =
  Format.fprintf fmt "@[<h>graph(n=%d, m=%d: " g.n g.m;
  iter_edges g (fun u v -> Format.fprintf fmt "%d-%d " u v);
  Format.fprintf fmt ")@]"
