(** Labelled simple undirected graphs.

    Vertices are identified by integers [1..n], matching the paper's model
    where every node of an [n]-node network carries a unique identifier in
    [{1, ..., n}] ("graph" always means "labelled graph").  Graphs are
    immutable once built; use {!Builder} or {!of_edges} to construct
    them.  Self-loops and parallel edges are rejected. *)

open Refnet_bits

type t

(** Mutable construction buffer. *)
module Builder : sig
  type graph := t
  type t

  (** [create n] starts an empty graph on vertices [1..n].
      @raise Invalid_argument if [n < 0]. *)
  val create : int -> t

  (** [add_edge b u v] inserts the edge [{u, v}].  Inserting an existing
      edge is a no-op.
      @raise Invalid_argument if [u = v] or a vertex is out of range. *)
  val add_edge : t -> int -> int -> unit

  (** [has_edge b u v] tests membership during construction. *)
  val has_edge : t -> int -> int -> bool

  (** [remove_edge b u v] deletes the edge [{u, v}]; deleting an absent
      edge is a no-op.  Together with {!add_edge} this lets gadget sweeps
      reuse one pre-sized builder across many [G'_{s,t}] instantiations
      instead of rebuilding the base graph per vertex pair.
      @raise Invalid_argument if a vertex is out of range. *)
  val remove_edge : t -> int -> int -> unit

  (** [build b] freezes the buffer.  The builder may keep being used;
      later edges do not affect already-built graphs. *)
  val build : t -> graph
end

(** [empty n] is the edgeless graph on [1..n]. *)
val empty : int -> t

(** [of_edges n edges] builds a graph from an edge list.  Duplicate edges
    (in either orientation) are allowed and collapse.
    @raise Invalid_argument on loops or out-of-range vertices. *)
val of_edges : int -> (int * int) list -> t

(** [order g] is the number [n] of vertices. *)
val order : t -> int

(** [size g] is the number of edges. *)
val size : t -> int

(** [has_edge g u v] is edge membership.
    @raise Invalid_argument if a vertex is out of range. *)
val has_edge : t -> int -> int -> bool

(** [degree g v] is the number of neighbours of [v]. *)
val degree : t -> int -> int

(** [neighbors g v] is the increasing list of neighbours of [v] — exactly
    the local knowledge [{ID(y) | y in N(v)}] a node holds in the model. *)
val neighbors : t -> int -> int list

(** [neighbors_row g v] is the precomputed increasing neighbour array of
    [v], shared with the graph — callers must not mutate it.  This is
    the zero-copy slice {!Graph_source} hands the engine's view
    builder. *)
val neighbors_row : t -> int -> int array

(** [iter_neighbors g v f] applies [f] to each neighbour of [v] in
    increasing order, iterating the precomputed adjacency array directly —
    no list is allocated.  Preferred over {!neighbors} on hot paths. *)
val iter_neighbors : t -> int -> (int -> unit) -> unit

(** [fold_neighbors g v init f] folds [f] over the neighbours of [v] in
    increasing order, without allocating. *)
val fold_neighbors : t -> int -> 'a -> ('a -> int -> 'a) -> 'a

(** [neighborhood g v] is the incidence vector of [N(v)]: bit [i - 1] set
    iff [i] is a neighbour.  The returned vector is shared; callers must
    not mutate it. *)
val neighborhood : t -> int -> Bitvec.t

(** [vertices g] is [[1; ...; n]]. *)
val vertices : t -> int list

(** [edges g] lists each edge once as [(u, v)] with [u < v], in
    lexicographic order. *)
val edges : t -> (int * int) list

(** [iter_edges g f] applies [f u v] to each edge with [u < v]. *)
val iter_edges : t -> (int -> int -> unit) -> unit

(** [fold_vertices g init f] folds over [1..n]. *)
val fold_vertices : t -> 'a -> ('a -> int -> 'a) -> 'a

(** [max_degree g] is [0] on the empty graph. *)
val max_degree : t -> int

val min_degree : t -> int

(** [degree_sequence g] is the non-increasing degree sequence. *)
val degree_sequence : t -> int list

(** [equal g h] is equality as labelled graphs: same order, same edge
    set. *)
val equal : t -> t -> bool

(** [complement g] has edge [{u,v}] iff [g] does not. *)
val complement : t -> t

(** [induced g vs] is the subgraph induced by the vertex list [vs],
    relabelled to [1..|vs|] in the order given, together with the map
    from new labels to old ones.
    @raise Invalid_argument on repeats or out-of-range vertices. *)
val induced : t -> int list -> t * int array

(** [remove_vertex g v] deletes [v] and its edges, keeping remaining
    labels unchanged but compacting them down by one above [v]
    (the paper's [G \ r] pruning).  Returned map sends new to old. *)
val remove_vertex : t -> int -> t * int array

(** [relabel g perm] renames vertex [v] to [perm.(v - 1)].
    @raise Invalid_argument if [perm] is not a permutation of [1..n]. *)
val relabel : t -> int array -> t

(** [disjoint_union g h] places [h] after [g], shifting [h]'s labels by
    [order g]. *)
val disjoint_union : t -> t -> t

(** [add_vertices g m] appends [m] isolated vertices labelled
    [n+1 .. n+m]. *)
val add_vertices : t -> int -> t

(** [add_edges g edges] is [g] plus the listed edges. *)
val add_edges : t -> (int * int) list -> t

(** [is_subgraph g h] is true when [g] and [h] have the same order and
    every edge of [g] is an edge of [h]. *)
val is_subgraph : t -> t -> bool

val pp : Format.formatter -> t -> unit
