type t = Materialized of Graph.t | Csr of Csr.t | Implicit of Implicit.t

let of_graph g = Materialized g
let of_csr c = Csr c
let of_implicit i = Implicit i

let backend = function
  | Materialized _ -> "materialized"
  | Csr _ -> "csr"
  | Implicit i -> Implicit.label i

let describe = function
  | Materialized g -> Printf.sprintf "materialized:%d" (Graph.order g)
  | Csr c -> Printf.sprintf "csr:%d" (Csr.order c)
  | Implicit i -> Implicit.describe i

let order = function
  | Materialized g -> Graph.order g
  | Csr c -> Csr.order c
  | Implicit i -> Implicit.order i

let size = function
  | Materialized g -> Graph.size g
  | Csr c -> Csr.size c
  | Implicit i -> Implicit.size i

let degree t v =
  match t with
  | Materialized g -> Graph.degree g v
  | Csr c -> Csr.degree c v
  | Implicit i -> Implicit.degree i v

let has_edge t u v =
  match t with
  | Materialized g -> Graph.has_edge g u v
  | Csr c -> Csr.has_edge c u v
  | Implicit i -> Implicit.has_edge i u v

let iter_neighbors t v f =
  match t with
  | Materialized g -> Graph.iter_neighbors g v f
  | Csr c -> Csr.iter_neighbors c v f
  | Implicit i -> Implicit.iter_neighbors i v f

let fold_neighbors t v init f =
  match t with
  | Materialized g -> Graph.fold_neighbors g v init f
  | Csr c -> Csr.fold_neighbors c v init f
  | Implicit i -> Implicit.fold_neighbors i v init f

let neighbors t v =
  match t with
  | Materialized g -> Graph.neighbors g v
  | Csr c -> Csr.neighbors c v
  | Implicit i -> Implicit.neighbors i v

let neighbors_slice t v =
  match t with
  | Materialized g ->
    let row = Graph.neighbors_row g v in
    (row, 0, Array.length row)
  | Csr c -> Csr.neighbors_slice c v
  | Implicit i ->
    let arr = Implicit.neighbors_array i v in
    (arr, 0, Array.length arr)

let to_csr = function
  | Materialized g -> Csr.of_graph g
  | Csr c -> c
  | Implicit i ->
    let b = Csr.Builder.create (Implicit.order i) in
    let each pass =
      for v = 1 to Implicit.order i do
        Implicit.iter_neighbors i v (fun u -> if v < u then pass v u)
      done
    in
    each (Csr.Builder.count b);
    Csr.Builder.freeze b;
    each (Csr.Builder.fill b);
    Csr.Builder.finish b

let materialize = function
  | Materialized g -> g
  | Csr c -> Csr.to_graph c
  | Implicit i -> Implicit.materialize i

let parse ?graph spec =
  match spec with
  | "materialized" -> (
    match graph with
    | Some g -> Materialized g
    | None -> invalid_arg "Graph_source.parse: materialized source needs a graph")
  | "csr" -> (
    match graph with
    | Some g -> Csr (Csr.of_graph g)
    | None -> invalid_arg "Graph_source.parse: csr source needs a graph")
  | spec when String.length spec >= 9 && String.sub spec 0 9 = "implicit:" ->
    Implicit (Implicit.parse spec)
  | spec -> invalid_arg (Printf.sprintf "Graph_source.parse: unknown source %S" spec)
