(** One input-graph interface, three storage disciplines.

    The simulator only ever asks a graph for [n] and per-vertex sorted
    neighbour runs — exactly what a node's {!View} holds — so the engine
    can run against any representation that answers those queries:

    - {b materialized}: the incidence-matrix {!Graph.t} ([n^2] bits;
      the right tool up to a few thousand vertices);
    - {b csr}: flat-array {!Csr.t} ([O(n + m)] words; sparse graphs at
      any order);
    - {b implicit}: an {!Implicit.t} generator ([O(1)] words; the graph
      never exists in memory at all).

    All three backends present each neighbour run in the same strictly
    increasing order, so a protocol's message vector — and hence its
    transcript — is bit-identical across backends for the same labelled
    graph (the equivalence suite in [test_graph_source.ml] enforces
    this).  Engine entry points taking a source record {!backend} in
    their trace/metrics labels as a [\[src=<backend>\]] decoration. *)

type t

val of_graph : Graph.t -> t
val of_csr : Csr.t -> t
val of_implicit : Implicit.t -> t

(** [backend t] is the label token: ["materialized"], ["csr"], or
    ["implicit:<family>"] — always within the [\[src=...\]] grammar
    charset [a-z0-9:.-]. *)
val backend : t -> string

(** [describe t] is a human-readable spec including parameters. *)
val describe : t -> string

val order : t -> int
val size : t -> int
val degree : t -> int -> int
val has_edge : t -> int -> int -> bool

(** [iter_neighbors t v f] applies [f] in strictly increasing order. *)
val iter_neighbors : t -> int -> (int -> unit) -> unit

val fold_neighbors : t -> int -> 'a -> ('a -> int -> 'a) -> 'a

(** [neighbors t v] is the increasing neighbour list (allocates; compat
    accessor). *)
val neighbors : t -> int -> int list

(** [neighbors_slice t v] is [(arr, off, len)] describing the neighbour
    run of [v].  For materialized and CSR backends the array is shared
    storage — callers must not mutate it; for implicit backends it is a
    fresh [len]-word array.  This is the allocation-lean path the engine
    builds views from. *)
val neighbors_slice : t -> int -> int array * int * int

(** [to_csr t] converts without materializing: implicit backends stream
    their edges through {!Csr.Builder} in two passes. *)
val to_csr : t -> Csr.t

(** [materialize t] builds the twin {!Graph.t} (allocates the [n^2]-bit
    incidence matrix — small [n] only). *)
val materialize : t -> Graph.t

(** [parse ?graph spec] resolves a CLI [--source] value:
    ["materialized"] and ["csr"] wrap [?graph] (required),
    ["implicit:<family-spec>"] is parsed by {!Implicit.parse} and needs
    no graph.
    @raise Invalid_argument on unknown specs or a missing graph. *)
val parse : ?graph:Graph.t -> string -> t
