type family =
  | Path of int
  | Cycle of int
  | Complete of int
  | Star of int
  | Grid of int * int
  | Hypercube of int
  | Regular of { n : int; d : int; seed : int }
  | Degenerate of { n : int; k : int; seed : int }

let degenerate_window = 16

(* Stateless splitmix-style mixer: adjacency of the random families is a
   pure function of (parameters, vertex), so any domain can answer any
   query with no shared generator state. *)
let mix64 x =
  let x = x lxor (x lsr 30) in
  let x = x * 0x2545F4914F6CDD1D in
  let x = x lxor (x lsr 27) in
  let x = x * 0x1B03738712FAD5C9 in
  x lxor (x lsr 31)

type t = {
  fam : family;
  n : int;
  reg_offsets : int array; (* Regular: sorted half-offsets; [||] otherwise *)
  reg_half : bool; (* Regular with odd degree: include the antipodal offset *)
}

let family t = t.fam
let order t = t.n

(* ---------- Regular: seed-deterministic circulant offsets ---------- *)

let regular_offsets ~n ~d ~seed =
  let hmax = (n - 1) / 2 in
  let pairs = d / 2 in
  if pairs > hmax then
    invalid_arg "Implicit.make: regular degree too large for the circulant construction";
  let chosen = Array.make pairs 0 in
  let mem o upto =
    let rec go i = i < upto && (chosen.(i) = o || go (i + 1)) in
    go 0
  in
  let state = ref (mix64 (seed lxor 0x52656775)) in
  let next () =
    state := mix64 (!state + 0x632BE59B);
    !state land max_int
  in
  for i = 0 to pairs - 1 do
    let attempts = ref 0 in
    let pick = ref 0 in
    while
      !pick = 0
      &&
      (incr attempts;
       !attempts <= 128)
    do
      let o = 1 + (next () mod hmax) in
      if not (mem o i) then pick := o
    done;
    if !pick = 0 then begin
      (* Deterministic fallback: the smallest unused offset. *)
      let o = ref 1 in
      while mem !o i do
        incr o
      done;
      pick := !o
    end;
    chosen.(i) <- !pick
  done;
  Array.sort compare chosen;
  chosen

let make fam =
  let plain n name = if n < 0 then invalid_arg ("Implicit.make: negative order (" ^ name ^ ")") in
  match fam with
  | Path n ->
    plain n "path";
    { fam; n; reg_offsets = [||]; reg_half = false }
  | Cycle n ->
    if n < 3 then invalid_arg "Implicit.make: cycle requires n >= 3";
    { fam; n; reg_offsets = [||]; reg_half = false }
  | Complete n ->
    plain n "complete";
    { fam; n; reg_offsets = [||]; reg_half = false }
  | Star n ->
    plain n "star";
    { fam; n; reg_offsets = [||]; reg_half = false }
  | Grid (w, h) ->
    if w < 1 || h < 1 then invalid_arg "Implicit.make: grid sides must be positive";
    { fam; n = w * h; reg_offsets = [||]; reg_half = false }
  | Hypercube d ->
    if d < 0 || d > 30 then invalid_arg "Implicit.make: hypercube dimension out of range";
    { fam; n = 1 lsl d; reg_offsets = [||]; reg_half = false }
  | Regular { n; d; seed } ->
    if n < 1 then invalid_arg "Implicit.make: regular requires n >= 1";
    if d < 0 || d >= n then invalid_arg "Implicit.make: regular requires 0 <= d < n";
    if n * d mod 2 = 1 then invalid_arg "Implicit.make: regular requires n*d even";
    let reg_half = d mod 2 = 1 in
    { fam; n; reg_offsets = regular_offsets ~n ~d ~seed; reg_half }
  | Degenerate { n; k; seed = _ } ->
    if n < 0 then invalid_arg "Implicit.make: negative order (degenerate)";
    if k < 1 || k > degenerate_window then
      invalid_arg
        (Printf.sprintf "Implicit.make: degenerate requires 1 <= k <= %d" degenerate_window);
    { fam; n; reg_offsets = [||]; reg_half = false }

(* ---------- Degenerate: windowed planted back-neighbours ---------- *)

(* Back-offsets of vertex [v]: [min k (v-1)] distinct values in
   [1..min window (v-1)], chosen by a partial Fisher-Yates shuffle keyed
   on [(seed, v)].  Returned sorted increasing.  O(window) time and one
   small scratch array per call. *)
let back_offsets ~k ~seed v =
  let w = min degenerate_window (v - 1) in
  let kk = min k (v - 1) in
  let arr = Array.init w (fun i -> i + 1) in
  if kk < w then begin
    let state = ref (mix64 (seed lxor (v * 0x2E1B2138))) in
    let next () =
      state := mix64 (!state + 0x1D872B41);
      !state land max_int
    in
    for i = 0 to kk - 1 do
      let j = i + (next () mod (w - i)) in
      let tmp = arr.(i) in
      arr.(i) <- arr.(j);
      arr.(j) <- tmp
    done
  end;
  let out = Array.sub arr 0 kk in
  Array.sort compare out;
  out

let back_picks ~k ~seed u o =
  (* Does vertex [u] pick back-offset [o]?  (Forward adjacency probe.) *)
  let offs = back_offsets ~k ~seed u in
  let rec go i = i < Array.length offs && (offs.(i) = o || go (i + 1)) in
  go 0

(* ---------- per-family neighbourhoods, increasing order ---------- *)

let check t v name =
  if v < 1 || v > t.n then invalid_arg ("Implicit." ^ name ^ ": vertex out of range")

let iter_neighbors t v f =
  check t v "iter_neighbors";
  let n = t.n in
  match t.fam with
  | Path _ ->
    if v > 1 then f (v - 1);
    if v < n then f (v + 1)
  | Cycle _ ->
    if v = 1 then begin
      f 2;
      f n
    end
    else if v = n then begin
      f 1;
      f (n - 1)
    end
    else begin
      f (v - 1);
      f (v + 1)
    end
  | Complete _ ->
    for u = 1 to n do
      if u <> v then f u
    done
  | Star _ ->
    if v = 1 then
      for u = 2 to n do
        f u
      done
    else f 1
  | Grid (w, _) ->
    let x = (v - 1) mod w and y = (v - 1) / w in
    let h = t.n / w in
    if y > 0 then f (v - w);
    if x > 0 then f (v - 1);
    if x < w - 1 then f (v + 1);
    if y < h - 1 then f (v + w)
  | Hypercube d ->
    let v0 = v - 1 in
    for b = d - 1 downto 0 do
      if v0 land (1 lsl b) <> 0 then f (v0 - (1 lsl b) + 1)
    done;
    for b = 0 to d - 1 do
      if v0 land (1 lsl b) = 0 then f (v0 + (1 lsl b) + 1)
    done
  | Regular _ ->
    let offs = t.reg_offsets in
    let count = (2 * Array.length offs) + if t.reg_half then 1 else 0 in
    let out = Array.make count 0 in
    let idx = ref 0 in
    let v0 = v - 1 in
    Array.iter
      (fun o ->
        out.(!idx) <- (((v0 - o) mod n) + n) mod n;
        out.(!idx + 1) <- (v0 + o) mod n;
        idx := !idx + 2)
      offs;
    if t.reg_half then begin
      out.(!idx) <- (v0 + (n / 2)) mod n;
      incr idx
    end;
    Array.sort compare out;
    Array.iter (fun u -> f (u + 1)) out
  | Degenerate { k; seed; _ } ->
    let back = back_offsets ~k ~seed v in
    for i = Array.length back - 1 downto 0 do
      f (v - back.(i))
    done;
    let fwd_max = min degenerate_window (n - v) in
    for o = 1 to fwd_max do
      if back_picks ~k ~seed (v + o) o then f (v + o)
    done

let degree t v =
  check t v "degree";
  let n = t.n in
  match t.fam with
  | Path _ -> (if v > 1 then 1 else 0) + if v < n then 1 else 0
  | Cycle _ -> 2
  | Complete _ -> n - 1
  | Star _ -> if v = 1 then n - 1 else 1
  | Grid (w, _) ->
    let x = (v - 1) mod w and y = (v - 1) / w in
    let h = n / w in
    (if y > 0 then 1 else 0)
    + (if x > 0 then 1 else 0)
    + (if x < w - 1 then 1 else 0)
    + if y < h - 1 then 1 else 0
  | Hypercube d -> d
  | Regular { d; _ } -> d
  | Degenerate { k; seed; _ } ->
    let back = min k (v - 1) in
    let fwd = ref 0 in
    let fwd_max = min degenerate_window (n - v) in
    for o = 1 to fwd_max do
      if back_picks ~k ~seed (v + o) o then incr fwd
    done;
    back + !fwd

let size t =
  let n = t.n in
  match t.fam with
  | Path _ -> max 0 (n - 1)
  | Cycle _ -> n
  | Complete _ -> n * (n - 1) / 2
  | Star _ -> max 0 (n - 1)
  | Grid (w, _) ->
    let h = n / w in
    (h * (w - 1)) + (w * (h - 1))
  | Hypercube d -> d * (n / 2)
  | Regular { d; _ } -> n * d / 2
  | Degenerate { k; _ } ->
    if n <= k + 1 then n * (n - 1) / 2 else (k * (k + 1) / 2) + (k * (n - k - 1))

let fold_neighbors t v init f =
  let acc = ref init in
  iter_neighbors t v (fun u -> acc := f !acc u);
  !acc

let neighbors_array t v =
  let d = degree t v in
  let out = Array.make d 0 in
  let idx = ref 0 in
  iter_neighbors t v (fun u ->
      out.(!idx) <- u;
      incr idx);
  out

let neighbors t v = Array.to_list (neighbors_array t v)

let has_edge t u v =
  check t u "has_edge";
  check t v "has_edge";
  u <> v && fold_neighbors t u false (fun acc w -> acc || w = v)

let materialize t =
  let b = Graph.Builder.create t.n in
  for v = 1 to t.n do
    iter_neighbors t v (fun u -> if v < u then Graph.Builder.add_edge b v u)
  done;
  Graph.Builder.build b

(* ---------- naming and parsing ---------- *)

let label t =
  "implicit:"
  ^
  match t.fam with
  | Path _ -> "path"
  | Cycle _ -> "cycle"
  | Complete _ -> "complete"
  | Star _ -> "star"
  | Grid _ -> "grid"
  | Hypercube _ -> "hypercube"
  | Regular _ -> "regular"
  | Degenerate _ -> "degenerate"

let describe t =
  "implicit:"
  ^
  match t.fam with
  | Path n -> Printf.sprintf "path:%d" n
  | Cycle n -> Printf.sprintf "cycle:%d" n
  | Complete n -> Printf.sprintf "complete:%d" n
  | Star n -> Printf.sprintf "star:%d" n
  | Grid (w, h) -> Printf.sprintf "grid:%dx%d" w h
  | Hypercube d -> Printf.sprintf "hypercube:%d" d
  | Regular { n; d; seed } -> Printf.sprintf "regular:%d:%d:%d" n d seed
  | Degenerate { n; k; seed } -> Printf.sprintf "degenerate:%d:%d:%d" n k seed

let bad spec = invalid_arg (Printf.sprintf "Implicit.parse: bad spec %S" spec)

let int_field spec s = match int_of_string_opt s with Some v -> v | None -> bad spec

let strip_prefix spec =
  match String.index_opt spec ':' with
  | Some i when String.sub spec 0 i = "implicit" ->
    String.sub spec (i + 1) (String.length spec - i - 1)
  | _ -> spec

let grid_sides spec s =
  match String.index_opt s 'x' with
  | Some i ->
    (int_field spec (String.sub s 0 i), int_field spec (String.sub s (i + 1) (String.length s - i - 1)))
  | None -> bad spec

let parse spec =
  let body = strip_prefix spec in
  let fields = String.split_on_char ':' body in
  let fam =
    match fields with
    | [ "path"; n ] -> Path (int_field spec n)
    | [ "cycle"; n ] -> Cycle (int_field spec n)
    | [ "complete"; n ] -> Complete (int_field spec n)
    | [ "star"; n ] -> Star (int_field spec n)
    | [ "grid"; wh ] ->
      let w, h = grid_sides spec wh in
      Grid (w, h)
    | [ "hypercube"; d ] -> Hypercube (int_field spec d)
    | [ "regular"; n; d ] -> Regular { n = int_field spec n; d = int_field spec d; seed = 1 }
    | [ "regular"; n; d; seed ] ->
      Regular { n = int_field spec n; d = int_field spec d; seed = int_field spec seed }
    | [ "degenerate"; n; k ] -> Degenerate { n = int_field spec n; k = int_field spec k; seed = 1 }
    | [ "degenerate"; n; k; seed ] ->
      Degenerate { n = int_field spec n; k = int_field spec k; seed = int_field spec seed }
    | _ -> bad spec
  in
  make fam

let isqrt n =
  let r = ref 0 in
  while (!r + 1) * (!r + 1) <= n do
    incr r
  done;
  !r

let floor_log2 n =
  let r = ref 0 in
  while 1 lsl (!r + 1) <= n do
    incr r
  done;
  !r

let parse_family spec n =
  let body = strip_prefix spec in
  let fields = String.split_on_char ':' body in
  let fam =
    match fields with
    | [ "path" ] -> Path n
    | [ "cycle" ] -> Cycle n
    | [ "complete" ] -> Complete n
    | [ "star" ] -> Star n
    | [ "grid" ] ->
      (* Near-square factorization: the largest divisor <= sqrt n. *)
      let w = ref (max 1 (isqrt n)) in
      while n mod !w <> 0 do
        decr w
      done;
      Grid (!w, n / !w)
    | [ "hypercube" ] -> Hypercube (if n < 1 then 0 else floor_log2 n)
    | "regular" :: rest ->
      let d, seed =
        match rest with
        | [ d ] -> (int_field spec d, 1)
        | [ d; seed ] -> (int_field spec d, int_field spec seed)
        | _ -> bad spec
      in
      (* A sweep hits sizes below d+1 too: clamp, then keep n*d even.
         After clamping d <= n-1, so when n is odd (n-1 even) the bump
         stays in range. *)
      let d = min d (max 0 (n - 1)) in
      let d = if n mod 2 = 1 && d mod 2 = 1 then d + 1 else d in
      Regular { n; d; seed }
    | "degenerate" :: rest ->
      let k, seed =
        match rest with
        | [ k ] -> (int_field spec k, 1)
        | [ k; seed ] -> (int_field spec k, int_field spec seed)
        | _ -> bad spec
      in
      Degenerate { n; k; seed }
    | _ -> bad spec
  in
  make fam
