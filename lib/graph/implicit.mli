(** Generator-backed implicit graphs: neighbourhoods computed on demand.

    An implicit graph stores only its defining parameters — [O(1)] words
    however large [n] is — and answers neighbourhood queries from closed
    forms, so a million-node network costs nothing until its nodes'
    views are built.  Every family fixes the same labelled graph as its
    materialized twin in {!Generators} (where one exists), with
    neighbour runs emitted in strictly increasing order; the random
    families are seed-deterministic, so the same parameters always name
    the same labelled graph on every machine and at every {!Parallel}
    width.

    Random families use a private splitmix-style integer hash rather
    than [Random.State]: a vertex's adjacency must be recomputable from
    [(parameters, vertex)] alone, with no generator state threaded
    between queries. *)

type family =
  | Path of int
  | Cycle of int  (** requires [n >= 3] *)
  | Complete of int
  | Star of int  (** hub is vertex 1 *)
  | Grid of int * int  (** [Grid (w, h)]: vertex [(x, y)] is [y*w + x + 1] *)
  | Hypercube of int  (** dimension [d]; [2^d] vertices labelled bits+1 *)
  | Regular of { n : int; d : int; seed : int }
      (** seed-deterministic circulant: [d/2] distinct offsets drawn
          from the hash of [seed] (plus the antipodal offset when [d] is
          odd), so the graph is exactly [d]-regular.  Requires
          [0 <= d < n], [n*d] even, and [d/2 <= (n-1)/2]. *)
  | Degenerate of { n : int; k : int; seed : int }
      (** planted degeneracy-[k]: vertex [v] picks [min k (v-1)]
          distinct back-neighbours within a constant window
          {!degenerate_window}, from the hash of [(seed, v)].  The
          construction order witnesses degeneracy <= [k]; the window
          keeps forward adjacency recoverable in [O(window^2)] per
          query.  Requires [1 <= k <= degenerate_window]. *)

(** Window width of the {!Degenerate} family. *)
val degenerate_window : int

type t

(** [make family] validates the parameters.
    @raise Invalid_argument when the family's side conditions fail. *)
val make : family -> t

val family : t -> family
val order : t -> int

(** [size t] is the number of edges, from the family's closed form. *)
val size : t -> int

(** [degree t v]
    @raise Invalid_argument if [v] is out of range. *)
val degree : t -> int -> int

(** [iter_neighbors t v f] applies [f] in strictly increasing order. *)
val iter_neighbors : t -> int -> (int -> unit) -> unit

val fold_neighbors : t -> int -> 'a -> ('a -> int -> 'a) -> 'a

(** [neighbors_array t v] is a fresh increasing array — each call
    allocates [degree t v] words and nothing else. *)
val neighbors_array : t -> int -> int array

val neighbors : t -> int -> int list
val has_edge : t -> int -> int -> bool

(** [materialize t] builds the twin {!Graph.t} (allocates the
    [n^2]-bit incidence matrix — small [n] only; the equivalence tests
    use it as the oracle). *)
val materialize : t -> Graph.t

(** [label t] is the family tag recorded in trace/metrics labels:
    ["implicit:path"], ["implicit:regular"], ... — parameters excluded
    so runs of one family aggregate under one label. *)
val label : t -> string

(** [describe t] is the full round-trippable spec, e.g.
    ["implicit:regular:1000:4:7"]. *)
val describe : t -> string

(** [parse spec] reads a spec with or without the ["implicit:"] prefix:
    [path:N | cycle:N | complete:N | star:N | grid:WxH | hypercube:D |
    regular:N:D[:SEED] | degenerate:N:K[:SEED]] (seed defaults to 1).
    @raise Invalid_argument on malformed specs. *)
val parse : string -> t

(** [parse_family spec] reads a size-free family spec ([path], [grid],
    [regular:D[:SEED]], [degenerate:K[:SEED]], ...) and returns a
    constructor from [n], for sweeps that instantiate one family at many
    sizes.  Grids become near-square, hypercubes round [n] down to a
    power of two, and regular degrees are clamped to [n - 1] (and kept
    of the right parity) so every sweep size is valid.
    @raise Invalid_argument on malformed specs. *)
val parse_family : string -> int -> t
