let bfs_visit g src ~on_edge =
  let n = Graph.order g in
  if src < 1 || src > n then invalid_arg "Traversal: source out of range";
  let dist = Array.make n (-1) in
  let queue = Queue.create () in
  dist.(src - 1) <- 0;
  Queue.add src queue;
  let order = ref [ src ] in
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    Graph.iter_neighbors g u (fun v ->
        if dist.(v - 1) < 0 then begin
          dist.(v - 1) <- dist.(u - 1) + 1;
          on_edge u v;
          order := v :: !order;
          Queue.add v queue
        end)
  done;
  (dist, List.rev !order)

let bfs_distances g src = fst (bfs_visit g src ~on_edge:(fun _ _ -> ()))

let bfs_order g src = snd (bfs_visit g src ~on_edge:(fun _ _ -> ()))

let bfs_tree g src =
  let acc = ref [] in
  let _ = bfs_visit g src ~on_edge:(fun u v -> acc := (u, v) :: !acc) in
  List.rev !acc

let dfs_order g src =
  let n = Graph.order g in
  if src < 1 || src > n then invalid_arg "Traversal: source out of range";
  let seen = Array.make n false in
  let order = ref [] in
  let rec go v =
    if not seen.(v - 1) then begin
      seen.(v - 1) <- true;
      order := v :: !order;
      Graph.iter_neighbors g v go
    end
  in
  go src;
  List.rev !order
