(* Baseline reports: load a previously committed schema-v2 JSON report
   and diff a fresh run against it, so [refnet lint --deep --baseline]
   fails only on *new* findings — the ratchet that lets a rule land
   before every historical finding is burned down.

   Keys are [(rule, file, message)] as a multiset: line-insensitive, so
   unrelated edits that shift a known finding do not break CI, but a
   second occurrence of the same defect in the same file does.

   The parser below is a deliberately small recursive-descent JSON
   reader — enough for reports this linter wrote itself (and for
   hand-edited baselines), not a general-purpose library. *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

exception Bad of string

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Bad (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some d when d = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %c" c)
  in
  let literal word v =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      v
    end
    else fail ("expected " ^ word)
  in
  let string_body () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
        advance ();
        match peek () with
        | Some 'n' -> Buffer.add_char b '\n'; advance (); go ()
        | Some 't' -> Buffer.add_char b '\t'; advance (); go ()
        | Some 'r' -> Buffer.add_char b '\r'; advance (); go ()
        | Some 'b' -> Buffer.add_char b '\b'; advance (); go ()
        | Some 'f' -> Buffer.add_char b '\012'; advance (); go ()
        | Some ('"' | '\\' | '/') ->
          Buffer.add_char b s.[!pos];
          advance ();
          go ()
        | Some 'u' ->
          (* \uXXXX: decode the code point as UTF-8; surrogate pairs are
             out of scope for reports this linter writes (it emits raw
             UTF-8, escaping only the JSON metacharacters) *)
          if !pos + 4 >= n then fail "truncated \\u escape";
          let hex = String.sub s (!pos + 1) 4 in
          let code =
            try int_of_string ("0x" ^ hex) with _ -> fail "bad \\u escape"
          in
          (if code < 0x80 then Buffer.add_char b (Char.chr code)
           else if code < 0x800 then begin
             Buffer.add_char b (Char.chr (0xC0 lor (code lsr 6)));
             Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
           end
           else begin
             Buffer.add_char b (Char.chr (0xE0 lor (code lsr 12)));
             Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
             Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
           end);
          pos := !pos + 5;
          go ()
        | _ -> fail "bad escape")
      | Some c ->
        Buffer.add_char b c;
        advance ();
        go ()
    in
    go ();
    Buffer.contents b
  in
  let number () =
    let start = !pos in
    let is_num_char c =
      match c with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false
    in
    while (match peek () with Some c when is_num_char c -> true | _ -> false) do
      advance ()
    done;
    if !pos = start then fail "expected number";
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> Num f
    | None -> fail "bad number"
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> Str (string_body ())
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let rec members acc =
          skip_ws ();
          let k = string_body () in
          skip_ws ();
          expect ':';
          let v = value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            members ((k, v) :: acc)
          | Some '}' ->
            advance ();
            List.rev ((k, v) :: acc)
          | _ -> fail "expected , or } in object"
        in
        Obj (members [])
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        Arr []
      end
      else begin
        let rec elements acc =
          let v = value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            elements (v :: acc)
          | Some ']' ->
            advance ();
            List.rev (v :: acc)
          | _ -> fail "expected , or ] in array"
        in
        Arr (elements [])
      end
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> number ()
  in
  try
    let v = value () in
    skip_ws ();
    if !pos <> n then Error (Printf.sprintf "trailing bytes at offset %d" !pos)
    else Ok v
  with Bad msg -> Error msg

let member k = function Obj fields -> List.assoc_opt k fields | _ -> None

let str_member k o = match member k o with Some (Str s) -> Some s | _ -> None

(* [of_report src] extracts the [(rule, file, message)] multiset from a
   schema-v1-or-v2 report document. *)
let of_report src =
  match parse src with
  | Error e -> Error ("baseline is not valid JSON: " ^ e)
  | Ok doc -> (
    match member "findings" doc with
    | Some (Arr items) -> (
      try
        Ok
          (List.map
             (fun item ->
               match
                 (str_member "rule" item, str_member "file" item, str_member "message" item)
               with
               | Some r, Some f, Some m -> (r, f, m)
               | _ -> raise Exit)
             items)
      with Exit -> Error "baseline finding lacks rule/file/message")
    | _ -> Error "baseline has no \"findings\" array")

let load path =
  match
    try
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> Some (really_input_string ic (in_channel_length ic)))
    with Sys_error _ -> None
  with
  | None -> Error (Printf.sprintf "cannot read baseline %s" path)
  | Some src -> of_report src

(* [diff ~baseline findings] keeps the findings not accounted for by
   the baseline multiset. *)
let diff ~baseline findings =
  let budget = Hashtbl.create 64 in
  List.iter
    (fun key ->
      Hashtbl.replace budget key (1 + Option.value ~default:0 (Hashtbl.find_opt budget key)))
    baseline;
  List.filter
    (fun f ->
      let key = (Finding.rule_name f.Finding.rule, f.Finding.file, f.Finding.message) in
      match Hashtbl.find_opt budget key with
      | Some n when n > 0 ->
        Hashtbl.replace budget key (n - 1);
        false
      | _ -> true)
    findings
