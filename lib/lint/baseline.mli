(** Baseline reports for [--deep --baseline FILE]: load a committed
    schema-v2 JSON report and diff a fresh run against it, so the gate
    fails only on findings not present in the baseline.

    Keys are [(rule, file, message)] as a multiset — line-insensitive,
    so edits that merely shift a known finding do not trip CI, while a
    genuinely new occurrence (or a second copy of a known one) does. *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

(** Minimal strict JSON parser (sufficient for reports this linter
    writes and for hand-edited baselines). *)
val parse : string -> (json, string) result

(** Extract the baseline multiset from a report document. *)
val of_report : string -> ((string * string * string) list, string) result

(** Read and extract from a file; [Error] on unreadable or malformed. *)
val load : string -> ((string * string * string) list, string) result

(** The findings not accounted for by the baseline. *)
val diff : baseline:(string * string * string) list -> Finding.t list -> Finding.t list
