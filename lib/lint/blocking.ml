(* Blocking-call reachability.

   BFS over the resolved call graph from [Policy.blocking_roots] (the
   serve daemon's select loop).  Two tiers of [Unix] syscall sites on
   reachable definitions:

     - tier A, always-blocking (sleeps, [connect], DNS resolution,
       process waits): a finding wherever reachable — there is no
       non-blocking mode to appeal to, so each occurrence needs a
       per-line justification;
     - tier B, descriptor I/O ([read]/[write]/[accept]/...): blocking
       unless the definition sits at an allowlisted
       [Policy.poll_points] entry, where readiness was established by
       [select] (or the descriptor carries a deliberate short timeout).

   [Unix.select] itself is the scheduler and never flagged.  Each
   finding anchors at the syscall and carries the BFS call chain from
   the root, so the reviewer sees *why* the site is reachable. *)

let tier_a =
  [
    "sleep"; "sleepf"; "connect"; "getaddrinfo"; "gethostbyname"; "gethostbyaddr";
    "getprotobyname"; "getservbyname"; "system"; "wait"; "waitpid"; "lockf"; "flock";
  ]

let tier_b =
  [
    "read"; "write"; "write_substring"; "single_write"; "recv"; "send"; "recvfrom";
    "sendto"; "accept";
  ]

let at_poll_point (d : Callgraph.def) =
  List.exists
    (fun (file, fn) ->
      Policy.matches d.Callgraph.d_file [ file ]
      && List.exists (fun c -> c = fn) d.Callgraph.d_path)
    Policy.poll_points

let check g =
  let defs = Callgraph.defs g in
  let root_defs =
    List.filter
      (fun d ->
        List.exists
          (fun (file, fn) ->
            Policy.matches d.Callgraph.d_file [ file ] && d.Callgraph.d_path = [ fn ])
          Policy.blocking_roots)
      defs
  in
  (* BFS with parent pointers for trace reconstruction *)
  let parent : (string, string * Callgraph.call_site) Hashtbl.t = Hashtbl.create 128 in
  let visited = Hashtbl.create 128 in
  let queue = Queue.create () in
  List.iter
    (fun d ->
      Hashtbl.replace visited d.Callgraph.d_id ();
      Queue.add d.Callgraph.d_id queue)
    root_defs;
  while not (Queue.is_empty queue) do
    let id = Queue.take queue in
    match Callgraph.find_def g id with
    | None -> ()
    | Some d ->
      List.iter
        (fun cs ->
          match cs.Callgraph.cs_resolved with
          | Some callee when not (Hashtbl.mem visited callee) ->
            Hashtbl.replace visited callee ();
            Hashtbl.replace parent callee (id, cs);
            Queue.add callee queue
          | _ -> ())
        d.Callgraph.d_calls
  done;
  let chain_to id =
    let rec go id acc depth =
      if depth > 32 then acc
      else
        match Hashtbl.find_opt parent id with
        | None -> acc
        | Some (pid, cs) ->
          let pfn, pfile =
            match Callgraph.find_def g pid with
            | Some p -> (Callgraph.def_display p, p.Callgraph.d_file)
            | None -> (pid, "")
          in
          let this_fn =
            match Callgraph.find_def g id with
            | Some d -> Callgraph.def_display d
            | None -> id
          in
          go pid
            ({
               Finding.s_file = pfile;
               s_line = cs.Callgraph.cs_line;
               s_fn = pfn;
               s_note = "calls " ^ this_fn;
             }
            :: acc)
            (depth + 1)
    in
    go id [] 0
  in
  let findings = ref [] in
  Hashtbl.iter
    (fun id () ->
      match Callgraph.find_def g id with
      | None -> ()
      | Some d ->
        let open Callgraph in
        List.iter
          (fun us ->
            let flagged, why =
              if List.mem us.us_fn tier_a then
                ( true,
                  Printf.sprintf
                    "Unix.%s always blocks (no non-blocking mode applies)" us.us_fn )
              else if List.mem us.us_fn tier_b && not (at_poll_point d) then
                ( true,
                  Printf.sprintf
                    "Unix.%s is descriptor I/O outside the allowlisted poll points" us.us_fn )
              else (false, "")
            in
            if flagged then
              findings :=
                {
                  Finding.rule = Finding.Blocking_call;
                  file = d.d_file;
                  line = us.us_line;
                  col = us.us_col;
                  message =
                    Printf.sprintf
                      "%s, yet it is reachable from the serve select loop — a slow peer \
                       would stall every session on the shard; make it non-blocking, move \
                       it off the loop, or justify it per line"
                      why;
                  trace =
                    chain_to id
                    @ [
                        {
                          Finding.s_file = d.d_file;
                          s_line = us.us_line;
                          s_fn = def_display d;
                          s_note = "Unix." ^ us.us_fn;
                        };
                      ];
                }
                :: !findings)
          d.d_unix)
    visited;
  List.sort_uniq Finding.compare !findings
