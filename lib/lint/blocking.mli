(** Blocking-call reachability (deep pass).

    BFS from {!Policy.blocking_roots} over the resolved call graph;
    flags always-blocking [Unix] calls (tier A: sleeps, [connect], DNS,
    waits) wherever reachable, and descriptor I/O (tier B: [read],
    [write], [accept], ...) outside {!Policy.poll_points}.
    [Unix.select] is the scheduler and never flagged.  Findings carry
    the call chain from the root. *)

val tier_a : string list
val tier_b : string list
val check : Callgraph.t -> Finding.t list
