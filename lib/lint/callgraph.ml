(* Whole-repo, Parsetree-level call graph.

   One shared parse per file (handed in by the driver) is walked once to
   produce, per let-bound function ("def"), the facts the three deep
   passes consume:

     - raise sites, each tagged with the exception keys caught by the
       handlers enclosing it *within the same def*;
     - call/reference sites (every [Pexp_ident], so functions passed as
       values count as edges too — an over-approximation that is the
       sound direction for reachability), likewise tagged with the
       enclosing handler context;
     - [Unix.*] syscall sites for the blocking pass;
     - referee roots: the [~init]/[~absorb]/[~finish] arguments of
       [Protocol.streaming] applications and the [r_init]/[r_absorb]/
       [r_broadcast]/[r_finish] fields of Bcc round-stream records.

   Name resolution is by module-qualified longident with a small
   alias tracker ([module G = Refnet_graph.Graph]): a reference
   [A.B.f] resolves by treating [A] (after alias expansion and after
   dropping a dune library-wrapper prefix such as [Core.]) as the
   module of a scanned file and [B.f] as a definition path inside it;
   bare or partially-qualified references resolve inside their own file
   by suffix match, preferring the most top-level candidate.  [open]
   needs no handling under this scheme: an opened module only ever
   shortens the wrapper prefix, which is dropped anyway.

   Known approximations (see DESIGN.md §16): calls through record
   fields, parameters and functor results are opaque (treated as
   raising nothing and calling nothing); a nested let-bound function is
   assumed called by its parent; deferred closures stored in non-referee
   record fields are merged into the def that builds the record. *)

open Parsetree

type raise_site = {
  rs_exn : string;  (* last longident component; "?" for a re-raised variable *)
  rs_line : int;
  rs_col : int;
  rs_caught : string list;
  rs_catch_all : bool;
}

type call_site = {
  cs_path : string list;  (* as written, after nothing; aliases applied at resolution *)
  cs_line : int;
  cs_col : int;
  cs_caught : string list;
  cs_catch_all : bool;
  mutable cs_resolved : string option;  (* def id, filled by [resolve] *)
}

type unix_site = { us_fn : string; us_line : int; us_col : int }

type def = {
  d_id : string;
  d_file : string;
  d_path : string list;  (* nested-module + nested-binding path within the file *)
  d_line : int;
  d_col : int;
  d_body : expression;
  mutable d_raises : raise_site list;
  mutable d_calls : call_site list;
  mutable d_unix : unix_site list;
}

type root = {
  r_display : string;  (* e.g. "Forest_protocol.reconstruct#absorb" *)
  r_file : string;
  r_line : int;
  r_col : int;
  mutable r_def : string option;  (* def id; [None] if the reference never resolved *)
  r_ref : string list;  (* unresolved ident path for deferred resolution; [] if direct *)
}

type file_info = {
  fi_file : string;
  fi_module : string;
  mutable fi_aliases : (string * string list) list;
  mutable fi_defs : def list;
}

type t = {
  g_defs : (string, def) Hashtbl.t;
  g_files : (string, file_info) Hashtbl.t;
  g_modules : (string, string) Hashtbl.t;  (* module name -> file *)
  mutable g_roots : root list;
}

(* dune library wrappers: [Core.Forest_protocol.x] and
   [Forest_protocol.x] name the same module from inside/outside the
   library, so the wrapper component is transparent for resolution. *)
let library_wrappers =
  [
    "Core"; "Serve"; "Lint"; "Refnet_bits"; "Refnet_bigint"; "Refnet_algebra";
    "Refnet_graph"; "Refnet_sketch";
  ]

let flatten lid = try Longident.flatten lid with _ -> []
let last_comp path = match List.rev path with c :: _ -> Some c | [] -> None

let module_of_file file =
  String.capitalize_ascii (Filename.remove_extension (Filename.basename file))

let def_display d =
  let file_mod = module_of_file d.d_file in
  file_mod ^ "." ^ String.concat "." d.d_path

(* ---------- pattern helpers ---------- *)

let rec pattern_name p =
  match p.ppat_desc with
  | Ppat_var { txt; _ } -> Some txt
  | Ppat_constraint (p, _) | Ppat_alias (p, _) -> pattern_name p
  | _ -> None

(* The exception keys a handler case catches; [None] = catch-all.  A
   guarded case is conservatively treated as catching nothing: the
   guard may decline at runtime, so nothing is provably absorbed. *)
let rec pattern_exn_keys p =
  match p.ppat_desc with
  | Ppat_any | Ppat_var _ -> None
  | Ppat_alias (p, _) | Ppat_constraint (p, _) -> pattern_exn_keys p
  | Ppat_construct ({ txt; _ }, _) -> (
    match last_comp (flatten txt) with Some c -> Some [ c ] | None -> Some [])
  | Ppat_or (a, b) -> (
    match (pattern_exn_keys a, pattern_exn_keys b) with
    | Some ka, Some kb -> Some (ka @ kb)
    | _ -> None)
  | _ -> Some []

let caught_of_cases ~exception_only cases =
  List.fold_left
    (fun (keys, all) case ->
      let pat =
        if exception_only then
          match case.pc_lhs.ppat_desc with Ppat_exception p -> Some p | _ -> None
        else
          match case.pc_lhs.ppat_desc with
          | Ppat_exception p -> Some p
          | _ -> Some case.pc_lhs
      in
      match pat with
      | None -> (keys, all)
      | Some _ when case.pc_guard <> None -> (keys, all)
      | Some p -> (
        match pattern_exn_keys p with
        | None -> (keys, true)
        | Some ks -> (ks @ keys, all)))
    ([], false) cases

let has_exception_case cases =
  List.exists
    (fun c -> match c.pc_lhs.ppat_desc with Ppat_exception _ -> true | _ -> false)
    cases

let rec is_syntactic_function e =
  match e.pexp_desc with
  | Pexp_fun _ | Pexp_function _ -> true
  | Pexp_newtype (_, e) -> is_syntactic_function e
  | _ -> false

(* ---------- the walk ---------- *)

type builder = {
  g : t;
  fi : file_info;
  mutable b_def : def;
  mutable b_caught : string list;
  mutable b_catch_all : bool;
  mutable b_mods : string list;  (* nested-module path, outermost first *)
  mutable b_anon : int;
}

let new_def b ~name ~loc body =
  (* Nested defs inherit the parent path via [b_def]; the module chain
     is already a prefix of it, so only prepend modules for top-level
     defs (whose parent is the per-file pseudo-def). *)
  let path =
    if b.b_def.d_path = [ "(file)" ] then b.b_mods @ [ name ]
    else b.b_def.d_path @ [ name ]
  in
  let p = loc.Location.loc_start in
  let d =
    {
      d_id = b.fi.fi_file ^ "::" ^ String.concat "." path;
      d_file = b.fi.fi_file;
      d_path = path;
      d_line = p.Lexing.pos_lnum;
      d_col = p.Lexing.pos_cnum - p.Lexing.pos_bol;
      d_body = body;
      d_raises = [];
      d_calls = [];
      d_unix = [];
    }
  in
  (* Collisions (same name bound twice at the same level) keep the first
     def and give later ones a uniquified id so facts are not merged. *)
  let d =
    if Hashtbl.mem b.g.g_defs d.d_id then begin
      b.b_anon <- b.b_anon + 1;
      { d with d_id = d.d_id ^ "$" ^ string_of_int b.b_anon }
    end
    else d
  in
  Hashtbl.replace b.g.g_defs d.d_id d;
  b.fi.fi_defs <- d :: b.fi.fi_defs;
  d

let pos_of (loc : Location.t) =
  let p = loc.loc_start in
  (p.pos_lnum, p.pos_cnum - p.pos_bol)

let record_raise b loc key =
  let line, col = pos_of loc in
  b.b_def.d_raises <-
    {
      rs_exn = key;
      rs_line = line;
      rs_col = col;
      rs_caught = b.b_caught;
      rs_catch_all = b.b_catch_all;
    }
    :: b.b_def.d_raises

let record_call ?resolved b loc path =
  let line, col = pos_of loc in
  b.b_def.d_calls <-
    {
      cs_path = path;
      cs_line = line;
      cs_col = col;
      cs_caught = b.b_caught;
      cs_catch_all = b.b_catch_all;
      cs_resolved = resolved;
    }
    :: b.b_def.d_calls

let note_ref b loc path =
  (match path with
  | [ "Unix"; f ] ->
    let line, col = pos_of loc in
    b.b_def.d_unix <- { us_fn = f; us_line = line; us_col = col } :: b.b_def.d_unix
  | _ -> ());
  if path <> [] then record_call b loc path

(* Referee-root field names. *)
let round_fields = [ "r_init"; "r_absorb"; "r_broadcast"; "r_finish" ]
let stream_fields = [ "init"; "absorb"; "finish" ]
let deferred_fields = [ "local"; "send"; "receive" ]

let with_def b d f =
  let saved_def = b.b_def and saved_c = b.b_caught and saved_a = b.b_catch_all in
  b.b_def <- d;
  b.b_caught <- [];
  b.b_catch_all <- false;
  f ();
  b.b_def <- saved_def;
  b.b_caught <- saved_c;
  b.b_catch_all <- saved_a

let add_root b ~display ~loc ~ref_path ~def_id =
  let line, col = pos_of loc in
  b.g.g_roots <-
    {
      r_display = display;
      r_file = b.fi.fi_file;
      r_line = line;
      r_col = col;
      r_def = def_id;
      r_ref = ref_path;
    }
    :: b.g.g_roots

let make_iter b =
  let iter = Ast_iterator.default_iterator in
  let walk it e = it.Ast_iterator.expr it e in
  (* A root argument/field: a fun literal becomes an unconnected sub-def
     (it runs when the referee is fed, not when the record is built); an
     ident becomes a deferred reference resolved with the graph. *)
  let root_expr it ~field value =
    let parent = String.concat "." b.b_def.d_path in
    let display =
      Printf.sprintf "%s.%s#%s" (module_of_file b.fi.fi_file) parent field
    in
    if is_syntactic_function value then begin
      b.b_anon <- b.b_anon + 1;
      let d =
        new_def b
          ~name:(Printf.sprintf "#%s.%d" field b.b_anon)
          ~loc:value.pexp_loc value
      in
      with_def b d (fun () -> walk it value);
      add_root b ~display ~loc:value.pexp_loc ~ref_path:[] ~def_id:(Some d.d_id)
    end
    else
      match value.pexp_desc with
      | Pexp_ident { txt; _ } ->
        add_root b ~display ~loc:value.pexp_loc ~ref_path:(flatten txt) ~def_id:None
      | _ ->
        (* an arbitrary expression (e.g. a partial application): walk it
           in the parent — conservative, and rare in practice *)
        walk it value
  in
  let deferred_expr it value =
    if is_syntactic_function value then begin
      b.b_anon <- b.b_anon + 1;
      let d = new_def b ~name:(Printf.sprintf "#local.%d" b.b_anon) ~loc:value.pexp_loc value in
      with_def b d (fun () -> walk it value)
    end
    else walk it value
  in
  let expr it e =
    match e.pexp_desc with
    | Pexp_ident { txt; _ } -> note_ref b e.pexp_loc (flatten txt)
    | Pexp_assert { pexp_desc = Pexp_construct ({ txt = Lident "false"; _ }, None); _ } ->
      record_raise b e.pexp_loc "Assert_failure"
    | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, args) -> (
      let path = flatten txt in
      let mf =
        match List.rev path with
        | f :: m :: _ -> (m, f)
        | [ f ] -> ("", f)
        | [] -> ("", "")
      in
      match mf with
      | (("" | "Stdlib"), ("raise" | "raise_notrace")) -> (
        match args with
        | (_, { pexp_desc = Pexp_construct ({ txt = c; _ }, payload); _ }) :: rest ->
          (match last_comp (flatten c) with
          | Some key -> record_raise b e.pexp_loc key
          | None -> record_raise b e.pexp_loc "?");
          Option.iter (walk it) payload;
          List.iter (fun (_, a) -> walk it a) rest
        | args ->
          record_raise b e.pexp_loc "?";
          List.iter (fun (_, a) -> walk it a) args)
      | (("" | "Stdlib"), "failwith") ->
        record_raise b e.pexp_loc "Failure";
        List.iter (fun (_, a) -> walk it a) args
      | (("" | "Stdlib"), "invalid_arg") ->
        record_raise b e.pexp_loc "Invalid_argument";
        List.iter (fun (_, a) -> walk it a) args
      | _, "streaming" ->
        (* Protocol.streaming ~init ~absorb ~finish: each labelled
           argument is a referee root.  The constructor itself does not
           run them, so they do not feed the parent's may-raise set. *)
        note_ref b e.pexp_loc path;
        List.iter
          (fun (label, value) ->
            match label with
            | Asttypes.Labelled f when List.mem f stream_fields -> root_expr it ~field:f value
            | _ -> walk it value)
          args
      | _ ->
        note_ref b e.pexp_loc path;
        List.iter (fun (_, a) -> walk it a) args)
    | Pexp_record (fields, base) ->
      let field_names =
        List.filter_map (fun ({ Location.txt; _ }, _) -> last_comp (flatten txt)) fields
      in
      let is_round = List.exists (fun f -> List.mem f round_fields) field_names in
      let stream_count =
        List.length (List.filter (fun f -> List.mem f stream_fields) field_names)
      in
      Option.iter (walk it) base;
      List.iter
        (fun ({ Location.txt; _ }, value) ->
          match last_comp (flatten txt) with
          | Some f when is_round && List.mem f round_fields -> root_expr it ~field:f value
          | Some f when stream_count >= 2 && List.mem f stream_fields ->
            root_expr it ~field:f value
          | Some f when List.mem f deferred_fields -> deferred_expr it value
          | _ -> walk it value)
        fields
    | Pexp_try (body, cases) ->
      let keys, all = caught_of_cases ~exception_only:false cases in
      let saved_c = b.b_caught and saved_a = b.b_catch_all in
      b.b_caught <- keys @ b.b_caught;
      b.b_catch_all <- b.b_catch_all || all;
      walk it body;
      b.b_caught <- saved_c;
      b.b_catch_all <- saved_a;
      List.iter
        (fun c ->
          Option.iter (walk it) c.pc_guard;
          walk it c.pc_rhs)
        cases
    | Pexp_match (scrut, cases) when has_exception_case cases ->
      let keys, all = caught_of_cases ~exception_only:true cases in
      let saved_c = b.b_caught and saved_a = b.b_catch_all in
      b.b_caught <- keys @ b.b_caught;
      b.b_catch_all <- b.b_catch_all || all;
      walk it scrut;
      b.b_caught <- saved_c;
      b.b_catch_all <- saved_a;
      List.iter
        (fun c ->
          Option.iter (walk it) c.pc_guard;
          walk it c.pc_rhs)
        cases
    | Pexp_let (_, vbs, body) ->
      List.iter
        (fun vb ->
          match pattern_name vb.pvb_pat with
          | Some name when is_syntactic_function vb.pvb_expr ->
            (* a nested function: its own def, assumed called by the
               parent under the handler context of its binding point *)
            let d = new_def b ~name ~loc:vb.pvb_loc vb.pvb_expr in
            record_call ~resolved:d.d_id b vb.pvb_loc [ name ];
            with_def b d (fun () -> walk it vb.pvb_expr)
          | _ -> walk it vb.pvb_expr)
        vbs;
      walk it body
    | _ -> iter.Ast_iterator.expr it e
  in
  let structure_item it si =
    match si.pstr_desc with
    | Pstr_value (_, vbs) ->
      List.iter
        (fun vb ->
          let name =
            match pattern_name vb.pvb_pat with
            | Some n -> n
            | None ->
              b.b_anon <- b.b_anon + 1;
              Printf.sprintf "#top.%d" b.b_anon
          in
          let d = new_def b ~name ~loc:vb.pvb_loc vb.pvb_expr in
          with_def b d (fun () -> walk it vb.pvb_expr))
        vbs
    | Pstr_module mb -> (
      let name = match mb.pmb_name.Location.txt with Some n -> n | None -> "_" in
      let rec unwrap me =
        match me.pmod_desc with Pmod_constraint (me, _) -> unwrap me | _ -> me
      in
      match (unwrap mb.pmb_expr).pmod_desc with
      | Pmod_ident { txt; _ } -> b.fi.fi_aliases <- (name, flatten txt) :: b.fi.fi_aliases
      | Pmod_structure str ->
        let saved = b.b_mods and saved_def = b.b_def in
        b.b_mods <- b.b_mods @ [ name ];
        (* module-level bindings carry the module path via a pseudo
           parent whose path is the module chain *)
        b.b_def <- { b.b_def with d_path = b.b_mods };
        List.iter (fun si -> it.Ast_iterator.structure_item it si) str;
        b.b_mods <- saved;
        b.b_def <- saved_def
      | _ -> iter.Ast_iterator.structure_item it si)
    | _ -> iter.Ast_iterator.structure_item it si
  in
  { iter with expr; structure_item }

(* ---------- resolution ---------- *)

let suffix_matches path d =
  let lp = List.length path and ld = List.length d.d_path in
  lp <= ld
  &&
  let rec drop n l = if n = 0 then l else match l with [] -> [] | _ :: t -> drop (n - 1) t in
  drop (ld - lp) d.d_path = path

let shortest candidates =
  match candidates with
  | [] -> None
  | c :: rest ->
    Some
      (List.fold_left
         (fun best d -> if List.length d.d_path < List.length best.d_path then d else best)
         c rest)

(* Same-file candidate choice approximates lexical scoping: prefer the
   candidate sharing the longest path prefix with the *caller* (so the
   [go] inside [Nat.compare] resolves to [compare.go], not some other
   def's nested [go]), then the most top-level one. *)
let common_prefix_len a b =
  let rec go n = function
    | x :: xs, y :: ys when x = y -> go (n + 1) (xs, ys)
    | _ -> n
  in
  go 0 (a, b)

let best_candidate ~from candidates =
  match candidates with
  | [] -> None
  | c :: rest ->
    Some
      (List.fold_left
         (fun best d ->
           let pb = common_prefix_len from best.d_path
           and pd = common_prefix_len from d.d_path in
           if pd > pb then d
           else if pd < pb then best
           else if List.length d.d_path < List.length best.d_path then d
           else best)
         c rest)

let resolve_in ?(from = []) g ~file path =
  match Hashtbl.find_opt g.g_files file with
  | None -> None
  | Some fi -> (
    (* alias expansion on the head *)
    let path =
      match path with
      | head :: rest -> (
        match List.assoc_opt head fi.fi_aliases with
        | Some target -> target @ rest
        | None -> path)
      | [] -> path
    in
    (* same-file suffix match first *)
    match best_candidate ~from (List.filter (suffix_matches path) fi.fi_defs) with
    | Some d -> Some d
    | None -> (
      (* cross-file: drop a library wrapper, head names a file module *)
      let path = match path with h :: t when List.mem h library_wrappers -> t | p -> p in
      match path with
      | head :: (_ :: _ as rest) -> (
        match Hashtbl.find_opt g.g_modules head with
        | None -> None
        | Some target_file -> (
          match Hashtbl.find_opt g.g_files target_file with
          | None -> None
          | Some tfi -> shortest (List.filter (suffix_matches rest) tfi.fi_defs)))
      | _ -> None))

let resolve g =
  Hashtbl.iter
    (fun _ d ->
      List.iter
        (fun cs ->
          if cs.cs_resolved = None then
            cs.cs_resolved <-
              Option.map
                (fun t -> t.d_id)
                (resolve_in ~from:d.d_path g ~file:d.d_file cs.cs_path))
        d.d_calls)
    g.g_defs;
  g.g_roots <-
    List.map
      (fun r ->
        if r.r_def = None && r.r_ref <> [] then
          r.r_def <- Option.map (fun d -> d.d_id) (resolve_in g ~file:r.r_file r.r_ref);
        r)
      g.g_roots

(* ---------- build ---------- *)

let build sources =
  let g =
    {
      g_defs = Hashtbl.create 512;
      g_files = Hashtbl.create 64;
      g_modules = Hashtbl.create 64;
      g_roots = [];
    }
  in
  List.iter
    (fun (file, ast) ->
      let fi =
        { fi_file = file; fi_module = module_of_file file; fi_aliases = []; fi_defs = [] }
      in
      Hashtbl.replace g.g_files file fi;
      if not (Hashtbl.mem g.g_modules fi.fi_module) then
        Hashtbl.replace g.g_modules fi.fi_module file;
      let pseudo =
        {
          d_id = file ^ "::(file)";
          d_file = file;
          d_path = [ "(file)" ];
          d_line = 1;
          d_col = 0;
          d_body =
            {
              pexp_desc = Pexp_unreachable;
              pexp_loc = Location.none;
              pexp_loc_stack = [];
              pexp_attributes = [];
            };
          d_raises = [];
          d_calls = [];
          d_unix = [];
        }
      in
      Hashtbl.replace g.g_defs pseudo.d_id pseudo;
      let it =
        make_iter
          { g; fi; b_def = pseudo; b_caught = []; b_catch_all = false; b_mods = []; b_anon = 0 }
      in
      it.Ast_iterator.structure it ast)
    sources;
  resolve g;
  g

let find_def g id = Hashtbl.find_opt g.g_defs id
let roots g = List.rev g.g_roots

let defs g = Hashtbl.fold (fun _ d acc -> d :: acc) g.g_defs []
