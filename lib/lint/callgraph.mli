(** Whole-repo, Parsetree-level call graph for the deep lint passes.

    [build] walks each pre-parsed source once and produces one {!def}
    per let-bound function (top-level, module-nested, or nested
    [let f x = ...] — nested defs get a dotted path like ["run.pump_out"]
    and an implicit parent edge recording the handler context at the
    binding point).  Facts per def: raise sites and call/reference
    sites, each tagged with the exception keys caught by enclosing
    handlers, plus [Unix.*] syscall sites.

    Every [Pexp_ident] is a call edge — a function passed as a value
    counts as called, the sound over-approximation for reachability.

    Referee roots are the [~init]/[~absorb]/[~finish] arguments of
    [*.streaming] applications, the [r_init]/[r_absorb]/[r_broadcast]/
    [r_finish] fields of round-stream records, and record literals
    carrying at least two of [init]/[absorb]/[finish].  A fun-literal
    root becomes its own def with no parent edge (it runs when the
    referee is fed, not when the record is built).

    Known approximations are catalogued in DESIGN.md §16. *)

type raise_site = {
  rs_exn : string;
      (** last longident component; ["?"] for a re-raised variable,
          removed only by a catch-all handler *)
  rs_line : int;
  rs_col : int;
  rs_caught : string list;  (** keys absorbed by enclosing handlers *)
  rs_catch_all : bool;
}

type call_site = {
  cs_path : string list;  (** the longident as written *)
  cs_line : int;
  cs_col : int;
  cs_caught : string list;
  cs_catch_all : bool;
  mutable cs_resolved : string option;  (** def id, filled at build time *)
}

type unix_site = { us_fn : string; us_line : int; us_col : int }

type def = {
  d_id : string;  (** ["file::dotted.path"], unique *)
  d_file : string;
  d_path : string list;
  d_line : int;
  d_col : int;
  d_body : Parsetree.expression;  (** the binding's right-hand side *)
  mutable d_raises : raise_site list;
  mutable d_calls : call_site list;
  mutable d_unix : unix_site list;
}

type root = {
  r_display : string;  (** e.g. ["Forest_protocol.reconstruct#absorb"] *)
  r_file : string;
  r_line : int;
  r_col : int;
  mutable r_def : string option;
      (** the root body's def id; [None] when the referee field held a
          reference the resolver could not place (documented skip) *)
  r_ref : string list;
}

type t

(** [build sources] constructs and resolves the graph over
    [(normalized-file, parsed-ast)] pairs. *)
val build : (string * Parsetree.structure) list -> t

val defs : t -> def list
val find_def : t -> string -> def option
val roots : t -> root list

(** [resolve_in g ~file path] resolves a longident as seen from [file]:
    alias expansion, same-file suffix match (preferring the candidate
    sharing the longest path prefix with [?from], the caller's own
    path — an approximation of lexical scoping — then the most
    top-level one), then cross-file via the head component as a file
    module, with dune library wrappers ([Core.], ...) dropped. *)
val resolve_in : ?from:string list -> t -> file:string -> string list -> def option

(** ["Module.path.to.def"] for messages and trace steps. *)
val def_display : def -> string
