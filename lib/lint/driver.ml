let normalize path =
  let path = String.map (fun c -> if c = '\\' then '/' else c) path in
  if String.length path > 2 && String.sub path 0 2 = "./" then
    String.sub path 2 (String.length path - 2)
  else path

(* ---------- suppressions ---------- *)

(* Built by concatenation so this very literal does not register as a
   (malformed) suppression when the linter scans its own source. *)
let marker = "(* lint:" ^ " allow "

let find_sub s sub from =
  let ls = String.length s and lb = String.length sub in
  let rec go i = if i + lb > ls then None else if String.sub s i lb = sub then Some i else go (i + 1) in
  go from

(* One suppression comment.  [sp_standalone] comments (alone on their
   line) also cover the line below; [sp_used] is shared between both
   covered lines so the stale pass sees one comment, not two. *)
type supp = {
  sp_line : int;
  sp_rule : Finding.rule;
  sp_standalone : bool;
  sp_used : bool ref;
}

let covers supp ~line ~rule =
  supp.sp_rule = rule
  && (supp.sp_line = line || (supp.sp_standalone && supp.sp_line + 1 = line))

(* Scans raw source lines for suppression comments.  Returns the
   suppressions and any findings for comments naming an unknown rule. *)
let scan_suppressions ~file source =
  let lines = String.split_on_char '\n' source in
  let supps = ref [] in
  let errors = ref [] in
  List.iteri
    (fun i line ->
      let lineno = i + 1 in
      match find_sub line marker 0 with
      | None -> ()
      | Some at ->
        let rest = String.sub line (at + String.length marker) (String.length line - at - String.length marker) in
        let stop = ref 0 in
        while
          !stop < String.length rest
          && (match rest.[!stop] with 'a' .. 'z' | '-' -> true | _ -> false)
        do
          incr stop
        done;
        let name = String.sub rest 0 !stop in
        (match Finding.rule_of_name name with
        | Some rule ->
          supps :=
            {
              sp_line = lineno;
              sp_rule = rule;
              sp_standalone = String.trim (String.sub line 0 at) = "";
              sp_used = ref false;
            }
            :: !supps
        | None ->
          errors :=
            {
              Finding.rule = Finding.Parse_error;
              file;
              line = lineno;
              col = at;
              message = Printf.sprintf "suppression names unknown lint rule %S" name;
              trace = [];
            }
            :: !errors))
    lines;
  (List.rev !supps, List.rev !errors)

(* ---------- parsing ---------- *)

let parse_error_finding ~file ?(line = 1) ?(col = 0) message =
  { Finding.rule = Finding.Parse_error; file; line; col; message; trace = [] }

let finding_of_loc ~file (loc : Location.t) message =
  let p = loc.Location.loc_start in
  parse_error_finding ~file ~line:(max 1 p.pos_lnum) ~col:(max 0 (p.pos_cnum - p.pos_bol)) message

let parse ~file source =
  let lexbuf = Lexing.from_string source in
  Lexing.set_filename lexbuf file;
  match Parse.implementation lexbuf with
  | ast -> Ok ast
  | exception Syntaxerr.Error err ->
    Error (finding_of_loc ~file (Syntaxerr.location_of_error err) "syntax error")
  | exception Lexer.Error (_, loc) -> Error (finding_of_loc ~file loc "lexer error")
  | exception exn ->
    Error (parse_error_finding ~file (Printf.sprintf "parse failed: %s" (Printexc.to_string exn)))

(* ---------- shared load: parse each file exactly once ---------- *)

type loaded = {
  ld_file : string;
  ld_ast : Parsetree.structure option;
  ld_supps : supp list;
  ld_pre : Finding.t list;  (* parse-error / unknown-rule findings *)
}

let load ~file source =
  let file = normalize file in
  match parse ~file source with
  | Error finding -> { ld_file = file; ld_ast = None; ld_supps = []; ld_pre = [ finding ] }
  | Ok ast ->
    let supps, comment_errors = scan_suppressions ~file source in
    { ld_file = file; ld_ast = Some ast; ld_supps = supps; ld_pre = comment_errors }

(* A finding is suppressed when a comment covers its anchor *or any step
   of its call-graph trace* — so a deep finding can be justified at the
   raise/syscall/mutation site it actually points at, not only at the
   referee root where it is anchored.  Matching marks the comment used
   for the stale pass. *)
let suppressed supp_of_file f =
  let hit file line =
    List.exists
      (fun sp ->
        if covers sp ~line ~rule:f.Finding.rule then begin
          sp.sp_used := true;
          true
        end
        else false)
      (supp_of_file file)
  in
  (* evaluate all sites so every matching comment is marked used *)
  let anchor = hit f.Finding.file f.Finding.line in
  let steps =
    List.fold_left
      (fun acc s -> hit s.Finding.s_file s.Finding.s_line || acc)
      false f.Finding.trace
  in
  anchor || steps

(* ---------- shallow pipeline ---------- *)

let shallow_findings ld =
  match ld.ld_ast with
  | None -> ld.ld_pre
  | Some ast ->
    let raw = Rules.check ~file:ld.ld_file ast in
    let kept =
      List.filter
        (fun f ->
          not
            (List.exists
               (fun sp -> covers sp ~line:f.Finding.line ~rule:f.Finding.rule)
               ld.ld_supps))
        raw
    in
    List.sort Finding.compare (ld.ld_pre @ kept)

let lint_source ~file source = shallow_findings (load ~file source)

let lint_file path =
  match In_channel.with_open_bin path In_channel.input_all with
  | source -> lint_source ~file:path source
  | exception Sys_error msg ->
    [ parse_error_finding ~file:(normalize path) (Printf.sprintf "cannot read file: %s" msg) ]

let rec collect acc path =
  if Sys.file_exists path && Sys.is_directory path then
    Array.to_list (Sys.readdir path)
    |> List.sort String.compare
    |> List.fold_left
         (fun acc entry ->
           if entry = "_build" || (String.length entry > 0 && entry.[0] = '.') then acc
           else collect acc (Filename.concat path entry))
         acc
  else if Filename.check_suffix path ".ml" then path :: acc
  else acc

let collect_files paths =
  List.sort String.compare (List.fold_left collect [] paths)

let lint_paths paths =
  let files = collect_files paths in
  let findings = List.concat_map lint_file files in
  (files, List.sort Finding.compare findings)

(* ---------- deep pipeline ---------- *)

type deep = {
  deep_files : string list;
  deep_findings : Finding.t list;
  deep_roots_proven : int;
  deep_roots_total : int;
  deep_wall_ms : int;
}

(* Spelled by concatenation for the same reason as [marker]. *)
let stale_hint = "(* lint:" ^ " allow stale-suppression -- reason *)"

let deep_sources sources =
  let t0 = Unix.gettimeofday () in
  let loaded = List.map (fun (file, source) -> load ~file source) sources in
  let parsed =
    List.filter_map (fun ld -> Option.map (fun a -> (ld.ld_file, a)) ld.ld_ast) loaded
  in
  let g = Callgraph.build parsed in
  let exn_findings, _raw_proven, total = Exnflow.check g in
  let race_findings = Races.check g parsed in
  let blocking_findings = Blocking.check g in
  let shallow =
    List.concat_map
      (fun ld ->
        match ld.ld_ast with None -> [] | Some ast -> Rules.check ~file:ld.ld_file ast)
      loaded
  in
  let supp_map = Hashtbl.create (List.length loaded) in
  List.iter (fun ld -> Hashtbl.replace supp_map ld.ld_file ld.ld_supps) loaded;
  let supp_of_file file = Option.value ~default:[] (Hashtbl.find_opt supp_map file) in
  let kept =
    List.filter
      (fun f -> not (suppressed supp_of_file f))
      (shallow @ exn_findings @ race_findings @ blocking_findings)
  in
  (* Stale suppressions: a comment no finding matched in this run.  The
     shallow CLI never reports these (a shallow run of one file cannot
     know what the deep pass would match); the deep pass sees the whole
     repo, so an unused comment there really is dead.  [stale-suppression]
     comments themselves are exempt — they exist to *be* unused. *)
  let stale =
    List.concat_map
      (fun ld ->
        List.filter_map
          (fun sp ->
            if !(sp.sp_used) || sp.sp_rule = Finding.Stale_suppression then None
            else
              Some
                {
                  Finding.rule = Finding.Stale_suppression;
                  file = ld.ld_file;
                  line = sp.sp_line;
                  col = 0;
                  message =
                    Printf.sprintf
                      "suppression for %s matched no finding in the deep pass; dead \
                       suppressions hide future regressions — delete it or justify with %s"
                      (Finding.rule_name sp.sp_rule) stale_hint;
                  trace = [];
                })
          ld.ld_supps)
      loaded
  in
  let stale_kept = List.filter (fun f -> not (suppressed supp_of_file f)) stale in
  let pre = List.concat_map (fun ld -> ld.ld_pre) loaded in
  let findings = List.sort Finding.compare (pre @ kept @ stale_kept) in
  (* A root is proven when no escape finding against it survived the
     suppression filter: a justified per-line suppression is a reviewed
     proof obligation, so it counts.  Escape findings anchor at the
     root, so distinct surviving anchors = unproven roots. *)
  let unproven_roots =
    List.sort_uniq compare
      (List.filter_map
         (fun f ->
           if f.Finding.rule = Finding.Exn_escape then
             Some (f.Finding.file, f.Finding.line, f.Finding.col)
           else None)
         kept)
  in
  {
    deep_files = List.map (fun ld -> ld.ld_file) loaded;
    deep_findings = findings;
    deep_roots_proven = total - List.length unproven_roots;
    deep_roots_total = total;
    deep_wall_ms = int_of_float ((Unix.gettimeofday () -. t0) *. 1000.);
  }

let deep_paths paths =
  let files = collect_files paths in
  let sources =
    List.map
      (fun path ->
        match In_channel.with_open_bin path In_channel.input_all with
        | source -> Ok (path, source)
        | exception Sys_error msg -> Error (path, msg))
      files
  in
  let readable = List.filter_map (function Ok s -> Some s | Error _ -> None) sources in
  let unreadable =
    List.filter_map
      (function
        | Ok _ -> None
        | Error (path, msg) ->
          Some
            (parse_error_finding ~file:(normalize path)
               (Printf.sprintf "cannot read file: %s" msg)))
      sources
  in
  let d = deep_sources readable in
  {
    d with
    deep_files = List.map normalize files;
    deep_findings = List.sort Finding.compare (unreadable @ d.deep_findings);
  }
