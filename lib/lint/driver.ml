let normalize path =
  let path = String.map (fun c -> if c = '\\' then '/' else c) path in
  if String.length path > 2 && String.sub path 0 2 = "./" then
    String.sub path 2 (String.length path - 2)
  else path

(* ---------- suppressions ---------- *)

(* Built by concatenation so this very literal does not register as a
   (malformed) suppression when the linter scans its own source. *)
let marker = "(* lint:" ^ " allow "

let find_sub s sub from =
  let ls = String.length s and lb = String.length sub in
  let rec go i = if i + lb > ls then None else if String.sub s i lb = sub then Some i else go (i + 1) in
  go from

(* Scans raw source lines for suppression comments.  Returns the set of
   [(line, rule)] pairs covered and any findings for comments naming an
   unknown rule. *)
let scan_suppressions ~file source =
  let lines = String.split_on_char '\n' source in
  let covered = Hashtbl.create 8 in
  let errors = ref [] in
  List.iteri
    (fun i line ->
      let lineno = i + 1 in
      match find_sub line marker 0 with
      | None -> ()
      | Some at ->
        let rest = String.sub line (at + String.length marker) (String.length line - at - String.length marker) in
        let stop = ref 0 in
        while
          !stop < String.length rest
          && (match rest.[!stop] with 'a' .. 'z' | '-' -> true | _ -> false)
        do
          incr stop
        done;
        let name = String.sub rest 0 !stop in
        (match Finding.rule_of_name name with
        | Some rule ->
          Hashtbl.replace covered (lineno, rule) ();
          (* A comment alone on its line covers the line below. *)
          if String.trim (String.sub line 0 at) = "" then Hashtbl.replace covered (lineno + 1, rule) ()
        | None ->
          errors :=
            {
              Finding.rule = Finding.Parse_error;
              file;
              line = lineno;
              col = at;
              message = Printf.sprintf "suppression names unknown lint rule %S" name;
            }
            :: !errors))
    lines;
  (covered, List.rev !errors)

(* ---------- parsing ---------- *)

let parse_error_finding ~file ?(line = 1) ?(col = 0) message =
  { Finding.rule = Finding.Parse_error; file; line; col; message }

let finding_of_loc ~file (loc : Location.t) message =
  let p = loc.Location.loc_start in
  parse_error_finding ~file ~line:(max 1 p.pos_lnum) ~col:(max 0 (p.pos_cnum - p.pos_bol)) message

let parse ~file source =
  let lexbuf = Lexing.from_string source in
  Lexing.set_filename lexbuf file;
  match Parse.implementation lexbuf with
  | ast -> Ok ast
  | exception Syntaxerr.Error err ->
    Error (finding_of_loc ~file (Syntaxerr.location_of_error err) "syntax error")
  | exception Lexer.Error (_, loc) -> Error (finding_of_loc ~file loc "lexer error")
  | exception exn ->
    Error (parse_error_finding ~file (Printf.sprintf "parse failed: %s" (Printexc.to_string exn)))

(* ---------- pipeline ---------- *)

let lint_source ~file source =
  let file = normalize file in
  match parse ~file source with
  | Error finding -> [ finding ]
  | Ok ast ->
    let covered, comment_errors = scan_suppressions ~file source in
    let raw = Rules.check ~file ast in
    let kept = List.filter (fun f -> not (Hashtbl.mem covered (f.Finding.line, f.Finding.rule))) raw in
    List.sort Finding.compare (comment_errors @ kept)

let lint_file path =
  match In_channel.with_open_bin path In_channel.input_all with
  | source -> lint_source ~file:path source
  | exception Sys_error msg ->
    [ parse_error_finding ~file:(normalize path) (Printf.sprintf "cannot read file: %s" msg) ]

let rec collect acc path =
  if Sys.file_exists path && Sys.is_directory path then
    Array.to_list (Sys.readdir path)
    |> List.sort String.compare
    |> List.fold_left
         (fun acc entry ->
           if entry = "_build" || (String.length entry > 0 && entry.[0] = '.') then acc
           else collect acc (Filename.concat path entry))
         acc
  else if Filename.check_suffix path ".ml" then path :: acc
  else acc

let collect_files paths =
  List.sort String.compare (List.fold_left collect [] paths)

let lint_paths paths =
  let files = collect_files paths in
  let findings = List.concat_map lint_file files in
  (files, List.sort Finding.compare findings)
