(** The linting pipeline: parse (once per file), run {!Rules}, apply
    per-line suppressions, sort — plus the deep, whole-repo pass that
    builds the {!Callgraph} and runs {!Exnflow}, {!Races} and
    {!Blocking} over it.

    Suppression syntax — one rule per comment, reason recommended:
    {[ expr (* lint: allow referee-totality -- slots filled above *) ]}
    The comment suppresses that rule's findings on its own line; a
    comment alone on a line also covers the line below it.  A deep
    finding is also suppressed when a comment covers any step of its
    call-graph trace, so the justification can live at the raise /
    syscall / mutation site the trace points at.  Naming an unknown
    rule is itself a [parse-error] finding, so suppressions cannot rot
    silently; in the deep pass, a comment that matched no finding at
    all is a [stale-suppression] finding. *)

(** [lint_source ~file source] lints one implementation given as a
    string (shallow rules only).  A source that does not parse yields a
    single [parse-error] finding. *)
val lint_source : file:string -> string -> Finding.t list

(** [lint_file path] reads and lints [path]; an unreadable file is a
    [parse-error] finding. *)
val lint_file : string -> Finding.t list

(** [collect_files paths] expands files and directories into the sorted
    list of [.ml] files to lint, recursing into directories and skipping
    [_build] and dot-directories.  [.mli] files are not linted: every
    rule concerns implementation behaviour. *)
val collect_files : string list -> string list

(** [lint_paths paths] is [collect_files] + [lint_file] over the lot:
    the scanned files and all findings, sorted. *)
val lint_paths : string list -> string list * Finding.t list

(** Result of a deep run.  [deep_roots_proven] of [deep_roots_total]
    referee roots had their may-raise sets confined to
    {!Exnflow.allowed}; the wall time feeds the [--json] report. *)
type deep = {
  deep_files : string list;
  deep_findings : Finding.t list;
  deep_roots_proven : int;
  deep_roots_total : int;
  deep_wall_ms : int;
}

(** [deep_sources sources] runs shallow rules plus the three call-graph
    passes over [(file, source)] pairs given in memory (the test
    harness uses this to place fixtures at policy-relevant paths). *)
val deep_sources : (string * string) list -> deep

(** [collect_files] + read + {!deep_sources}. *)
val deep_paths : string list -> deep
