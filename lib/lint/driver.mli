(** The linting pipeline: parse, run {!Rules}, apply per-line
    suppressions, sort.

    Suppression syntax — one rule per comment, reason recommended:
    {[ expr (* lint: allow referee-totality -- slots filled above *) ]}
    The comment suppresses that rule's findings on its own line; a
    comment alone on a line also covers the line below it.  Naming an
    unknown rule is itself a [parse-error] finding, so suppressions
    cannot rot silently. *)

(** [lint_source ~file source] lints one implementation given as a
    string.  A source that does not parse yields a single [parse-error]
    finding. *)
val lint_source : file:string -> string -> Finding.t list

(** [lint_file path] reads and lints [path]; an unreadable file is a
    [parse-error] finding. *)
val lint_file : string -> Finding.t list

(** [collect_files paths] expands files and directories into the sorted
    list of [.ml] files to lint, recursing into directories and skipping
    [_build] and dot-directories.  [.mli] files are not linted: every
    rule concerns implementation behaviour. *)
val collect_files : string list -> string list

(** [lint_paths paths] is [collect_files] + [lint_file] over the lot:
    the scanned files and all findings, sorted. *)
val lint_paths : string list -> string list * Finding.t list
