(* Exception-escape totality prover.

   Computes, per definition in the call graph, the set of exception
   keys that may escape it — own raise sites minus enclosing handlers,
   plus every callee's escape set minus the handlers around the call
   site — as a monotone worklist fixpoint over the finite lattice of
   key sets.  A raised *variable* ([raise e]) contributes the wildcard
   key ["?"], which only a catch-all handler removes.

   Unresolved callees contribute nothing (the sound-for-nothing edge of
   the approximation — documented in DESIGN.md §16), except for a small
   table of partial stdlib primitives whose raising behaviour is
   modeled explicitly.

   The prover then checks every referee root (streaming init/absorb/
   finish, Bcc round functions): any escaping key outside the documented malformed
   class ([allowed]) is an [Exn_escape] finding carrying the chain of
   call sites from the root down to the offending raise. *)

module SS = Set.Make (String)

(* The documented malformed class: [Protocol.harden_referee] and
   [Bcc.harden_referee]'s [default_malformed] absorb exactly these. *)
let allowed = [ "Malformed"; "Exhausted"; "Invalid_argument"; "Failure" ]

let allowed_set = SS.of_list allowed

(* Partial stdlib primitives with modeled raising behaviour, keyed by
   the last two longident components.  Implicit failures (array bounds,
   Division_by_zero) are *not* modeled — bounds errors raise
   Invalid_argument, which is inside the allowed class anyway. *)
let primitive_raises = function
  | "List", ("hd" | "tl") -> [ "Failure" ]
  | "List", "nth" -> [ "Failure"; "Invalid_argument" ]
  | ("List" | "Hashtbl"), ("find" | "assoc") -> [ "Not_found" ]
  | "Option", "get" -> [ "Invalid_argument" ]
  | "Queue", ("pop" | "peek" | "take") -> [ "Empty" ]
  | "Stack", ("pop" | "top") -> [ "Empty" ]
  | ("" | "Stdlib"), ("int_of_string" | "float_of_string" | "bool_of_string") ->
    [ "Failure" ]
  | _ -> []

let prims_of_path path =
  match List.rev path with
  | f :: m :: _ -> primitive_raises (m, f)
  | [ f ] -> primitive_raises ("", f)
  | [] -> []

(* Witness for "key k escapes def d": either d raises it directly, or a
   call site lets it through from a callee (or a modeled primitive). *)
type witness =
  | W_raise of Callgraph.raise_site
  | W_call of Callgraph.call_site * string  (* callee def id *)
  | W_prim of Callgraph.call_site

type analysis = {
  may_raise : (string, SS.t) Hashtbl.t;  (* def id -> escaping keys *)
  witness : (string * string, witness) Hashtbl.t;  (* (def id, key) -> how *)
}

let escapes_site ~caught ~catch_all key =
  if catch_all then false
  else if key = "?" then true  (* only a catch-all absorbs an unknown exn *)
  else not (List.mem key caught)

let compute g =
  let a = { may_raise = Hashtbl.create 512; witness = Hashtbl.create 512 } in
  let defs = Callgraph.defs g in
  List.iter (fun d -> Hashtbl.replace a.may_raise d.Callgraph.d_id SS.empty) defs;
  (* reverse edges for the worklist *)
  let callers = Hashtbl.create 512 in
  List.iter
    (fun d ->
      List.iter
        (fun cs ->
          match cs.Callgraph.cs_resolved with
          | Some callee ->
            let prev = Option.value ~default:[] (Hashtbl.find_opt callers callee) in
            if not (List.mem d.Callgraph.d_id prev) then
              Hashtbl.replace callers callee (d.Callgraph.d_id :: prev)
          | None -> ())
        d.Callgraph.d_calls)
    defs;
  let step d =
    let open Callgraph in
    let set = ref (Option.value ~default:SS.empty (Hashtbl.find_opt a.may_raise d.d_id)) in
    let add key w =
      if not (SS.mem key !set) then begin
        set := SS.add key !set;
        Hashtbl.replace a.witness (d.d_id, key) w
      end
    in
    List.iter
      (fun rs ->
        if escapes_site ~caught:rs.rs_caught ~catch_all:rs.rs_catch_all rs.rs_exn then
          add rs.rs_exn (W_raise rs))
      d.d_raises;
    List.iter
      (fun cs ->
        let callee_keys, mk =
          match cs.cs_resolved with
          | Some id ->
            ( Option.value ~default:SS.empty (Hashtbl.find_opt a.may_raise id),
              fun () -> W_call (cs, id) )
          | None -> (SS.of_list (prims_of_path cs.cs_path), fun () -> W_prim cs)
        in
        SS.iter
          (fun key ->
            if escapes_site ~caught:cs.cs_caught ~catch_all:cs.cs_catch_all key then
              add key (mk ()))
          callee_keys)
      d.d_calls;
    let before = Option.value ~default:SS.empty (Hashtbl.find_opt a.may_raise d.d_id) in
    if SS.equal before !set then false
    else begin
      Hashtbl.replace a.may_raise d.d_id !set;
      true
    end
  in
  let queue = Queue.create () in
  let queued = Hashtbl.create 512 in
  let enqueue id =
    if not (Hashtbl.mem queued id) then begin
      Hashtbl.replace queued id ();
      Queue.add id queue
    end
  in
  List.iter (fun d -> enqueue d.Callgraph.d_id) defs;
  while not (Queue.is_empty queue) do
    let id = Queue.take queue in
    Hashtbl.remove queued id;
    match Callgraph.find_def g id with
    | None -> ()
    | Some d ->
      if step d then
        List.iter enqueue (Option.value ~default:[] (Hashtbl.find_opt callers id))
  done;
  a

(* Reconstruct the call chain from [id] down to the raise site of
   [key].  Cycle-guarded; at most 32 hops. *)
let trace_of g a id key =
  let open Callgraph in
  let rec go id key seen depth acc =
    if depth > 32 || List.mem id seen then List.rev acc
    else
      match Hashtbl.find_opt a.witness (id, key) with
      | None -> List.rev acc
      | Some w -> (
        let fn =
          match find_def g id with Some d -> def_display d | None -> id
        in
        let file = match find_def g id with Some d -> d.d_file | None -> "" in
        match w with
        | W_raise rs ->
          List.rev
            ({
               Finding.s_file = file;
               s_line = rs.rs_line;
               s_fn = fn;
               s_note =
                 (if rs.rs_exn = "?" then "re-raises a caught exception"
                  else "raise " ^ rs.rs_exn);
             }
            :: acc)
        | W_prim cs ->
          List.rev
            ({
               Finding.s_file = file;
               s_line = cs.cs_line;
               s_fn = fn;
               s_note =
                 Printf.sprintf "calls partial primitive %s (may raise %s)"
                   (String.concat "." cs.cs_path)
                   (String.concat ", " (prims_of_path cs.cs_path));
             }
            :: acc)
        | W_call (cs, callee) ->
          let callee_fn =
            match find_def g callee with Some d -> def_display d | None -> callee
          in
          go callee key (id :: seen) (depth + 1)
            ({
               Finding.s_file = file;
               s_line = cs.cs_line;
               s_fn = fn;
               s_note = "calls " ^ callee_fn;
             }
            :: acc))
  in
  go id key [] 0 []

(* [check g] proves or refutes totality for every resolved referee
   root.  Returns the findings plus [(roots_proven, roots_total)] for
   the deep report — a root counts as proven when its escape set is
   confined to [allowed]. *)
let check g =
  let a = compute g in
  let roots =
    List.filter_map
      (fun r -> match r.Callgraph.r_def with Some id -> Some (r, id) | None -> None)
      (Callgraph.roots g)
  in
  let findings = ref [] in
  let proven = ref 0 in
  List.iter
    (fun (r, id) ->
      let open Callgraph in
      let mr = Option.value ~default:SS.empty (Hashtbl.find_opt a.may_raise id) in
      let escaping = SS.diff mr allowed_set in
      if SS.is_empty escaping then incr proven
      else
        SS.iter
          (fun key ->
            findings :=
              {
                Finding.rule = Finding.Exn_escape;
                file = r.r_file;
                line = r.r_line;
                col = r.r_col;
                message =
                  Printf.sprintf
                    "%s may escape referee %s: hardened referees absorb only the documented \
                     malformed class (%s), so a hostile input could crash the referee instead \
                     of degrading the verdict"
                    (if key = "?" then "an unidentified exception" else "exception " ^ key)
                    r.r_display
                    (String.concat ", " allowed);
                trace = trace_of g a id key;
              }
              :: !findings)
          escaping)
    roots;
  (List.rev !findings, !proven, List.length roots)
