(** Exception-escape totality prover (deep pass).

    A monotone worklist fixpoint over the call graph computes each
    definition's may-raise set (raise sites minus enclosing handlers,
    plus callee sets minus call-site handlers; [raise e] on a variable
    is the wildcard key ["?"], removed only by a catch-all).  Every
    referee root must then be confined to the documented malformed
    class, or an [Exn_escape] finding is emitted with the witness call
    chain.

    Known approximations (DESIGN.md §16): unresolved callees raise
    nothing except for a small modeled-primitive table ([List.hd],
    [Queue.pop], ...); implicit failures (array bounds,
    [Division_by_zero]) are not modeled; guarded handlers absorb
    nothing. *)

(** The documented malformed class — exactly what
    [Protocol.harden_referee] / [Bcc.harden_referee] absorb by
    default: [Malformed], [Exhausted], [Invalid_argument],
    [Failure]. *)
val allowed : string list

(** [check g] is [(findings, roots_proven, roots_total)] over the
    resolved referee roots of [g]. *)
val check : Callgraph.t -> Finding.t list * int * int
