type rule =
  | View_boundary
  | Determinism
  | Referee_totality
  | Span_grammar
  | Bit_accounting
  | Parse_error

let all_rules =
  [ View_boundary; Determinism; Referee_totality; Span_grammar; Bit_accounting; Parse_error ]

let rule_name = function
  | View_boundary -> "view-boundary"
  | Determinism -> "determinism"
  | Referee_totality -> "referee-totality"
  | Span_grammar -> "span-grammar"
  | Bit_accounting -> "bit-accounting"
  | Parse_error -> "parse-error"

let rule_of_name name = List.find_opt (fun r -> rule_name r = name) all_rules

type t = { rule : rule; file : string; line : int; col : int; message : string }

let compare a b =
  Stdlib.compare
    (a.file, a.line, a.col, rule_name a.rule, a.message)
    (b.file, b.line, b.col, rule_name b.rule, b.message)

let to_string f =
  Printf.sprintf "%s:%d:%d: [%s] %s" f.file f.line f.col (rule_name f.rule) f.message

let json_string s =
  let b = Buffer.create (String.length s + 2) in
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"';
  Buffer.contents b

let to_json f =
  Printf.sprintf {|{"col":%d,"file":%s,"line":%d,"message":%s,"rule":%s}|} f.col
    (json_string f.file) f.line (json_string f.message)
    (json_string (rule_name f.rule))

let report_json findings =
  let b = Buffer.create 256 in
  Buffer.add_string b "{\"findings\":[";
  List.iteri
    (fun i f ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b (to_json f))
    findings;
  Buffer.add_string b "],\"version\":1}";
  Buffer.contents b
