type rule =
  | View_boundary
  | Determinism
  | Referee_totality
  | Span_grammar
  | Bit_accounting
  | Exn_escape
  | Parallel_race
  | Blocking_call
  | Stale_suppression
  | Parse_error

let all_rules =
  [
    View_boundary; Determinism; Referee_totality; Span_grammar; Bit_accounting;
    Exn_escape; Parallel_race; Blocking_call; Stale_suppression; Parse_error;
  ]

let rule_name = function
  | View_boundary -> "view-boundary"
  | Determinism -> "determinism"
  | Referee_totality -> "referee-totality"
  | Span_grammar -> "span-grammar"
  | Bit_accounting -> "bit-accounting"
  | Exn_escape -> "exn-escape"
  | Parallel_race -> "parallel-race"
  | Blocking_call -> "blocking-call"
  | Stale_suppression -> "stale-suppression"
  | Parse_error -> "parse-error"

let rule_of_name name = List.find_opt (fun r -> rule_name r = name) all_rules

(* One hop of a call-graph witness: how the analysis got from the
   finding's anchor to the defect (a raise site, a syscall, a mutation).
   The last step's note names the defect itself. *)
type step = { s_file : string; s_line : int; s_fn : string; s_note : string }

type t = {
  rule : rule;
  file : string;
  line : int;
  col : int;
  message : string;
  trace : step list;
}

let compare a b =
  Stdlib.compare
    (a.file, a.line, a.col, rule_name a.rule, a.message)
    (b.file, b.line, b.col, rule_name b.rule, b.message)

let to_string f =
  let head = Printf.sprintf "%s:%d:%d: [%s] %s" f.file f.line f.col (rule_name f.rule) f.message in
  match f.trace with
  | [] -> head
  | steps ->
    head
    ^ String.concat ""
        (List.map
           (fun s -> Printf.sprintf "\n    %s:%d: %s (%s)" s.s_file s.s_line s.s_fn s.s_note)
           steps)

let json_string s =
  let b = Buffer.create (String.length s + 2) in
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"';
  Buffer.contents b

let step_to_json s =
  Printf.sprintf {|{"file":%s,"fn":%s,"line":%d,"note":%s}|} (json_string s.s_file)
    (json_string s.s_fn) s.s_line (json_string s.s_note)

let to_json f =
  Printf.sprintf {|{"col":%d,"file":%s,"line":%d,"message":%s,"rule":%s,"trace":[%s]}|} f.col
    (json_string f.file) f.line (json_string f.message)
    (json_string (rule_name f.rule))
    (String.concat "," (List.map step_to_json f.trace))

(* Schema v2 (frozen): {"findings":[...],"version":2} with optional
   trailing "wall_ms" and "files" when the caller reports timing.  v1
   had no "trace" field and no timing; every consumer bumped together
   in the PR that introduced the deep passes. *)
let report_json ?wall_ms ?files findings =
  let b = Buffer.create 256 in
  Buffer.add_string b "{\"findings\":[";
  List.iteri
    (fun i f ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b (to_json f))
    findings;
  Buffer.add_string b "],\"version\":2";
  (match wall_ms with
  | Some ms -> Buffer.add_string b (Printf.sprintf ",\"wall_ms\":%d" ms)
  | None -> ());
  (match files with
  | Some n -> Buffer.add_string b (Printf.sprintf ",\"files\":%d" n)
  | None -> ());
  Buffer.add_string b "}";
  Buffer.contents b
