(** Lint findings: one invariant violation at one source location.

    Every rule is a named, documented repo invariant (see DESIGN.md §11
    for the catalogue); findings render either as classic
    [file:line:col: [rule] message] text lines or as a canonical JSON
    report whose schema is frozen by test_lint. *)

type rule =
  | View_boundary
      (** Definition 1: locals read a {!Core.View.t} and nothing else;
          [View.make] only in the engine/reduction modules of
          {!Lint.Policy.view_builders}. *)
  | Determinism
      (** transcripts must be bit-identical at any domain-pool width: no
          global PRNG, no wall clock outside Metrics, no raw
          [Domain.spawn] outside Parallel. *)
  | Referee_totality
      (** hardened referees must be total: no [failwith], [assert false]
          or partial stdlib ([List.hd], [List.nth], [Option.get],
          [Array.unsafe_get]) without a justified suppression. *)
  | Span_grammar
      (** span-label literals must classify cleanly under
          {!Core.Bound_audit.classify_label} — a near-miss spelling
          silently escapes the theorem audit. *)
  | Bit_accounting
      (** message bytes are constructed via [Message] / [lib/bits] only;
          raw [Bytes] / [Buffer] use is confined to the sanctioned byte
          layers of {!Lint.Policy.bytes_ok}. *)
  | Parse_error
      (** the file does not parse (or a suppression comment names an
          unknown rule) — reported as a finding, never as a crash. *)

val all_rules : rule list

(** [rule_name r] is the kebab-case name used in reports and in
    [(* lint: allow <rule> *)] suppressions. *)
val rule_name : rule -> string

val rule_of_name : string -> rule option

type t = {
  rule : rule;
  file : string;  (** normalized to '/' separators, as scanned *)
  line : int;  (** 1-based *)
  col : int;  (** 0-based, matching compiler diagnostics *)
  message : string;
}

(** Total order: file, line, col, rule name, message. *)
val compare : t -> t -> int

(** [to_string f] is ["file:line:col: [rule] message"]. *)
val to_string : t -> string

(** [to_json f] is one canonical JSON object (sorted keys, no
    whitespace). *)
val to_json : t -> string

(** [report_json findings] is the full report document:
    [{"findings":[...],"version":1}]. *)
val report_json : t list -> string
